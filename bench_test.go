// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment and reports the
// headline values as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The absolute numbers differ from the
// paper's 800 MHz ARM testbed (see DESIGN.md §1 for the substitutions); the
// reported ratios and shapes are the reproduction targets, recorded against
// the paper in EXPERIMENTS.md. cmd/zc-experiments prints the same data as
// paper-style tables with larger run budgets.
package zugchain_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/experiments"
	"zugchain/internal/netsim"
	"zugchain/internal/node"
	"zugchain/internal/testbed"
	"zugchain/internal/transport"
)

// benchOptions keeps benchmark runtime moderate; zc-experiments uses
// longer runs.
func benchOptions() experiments.Options {
	return experiments.Options{Cycles: 60, TimeScale: 8, Seed: 1}
}

// reportComparison publishes the ZugChain-vs-baseline ratios the paper
// reports: network (≈4x), latency (1.1–4.9x), CPU (baseline ≈3–4x), memory
// (≈1.6–1.8x).
func reportComparison(b *testing.B, rows []experiments.ComparisonRow) {
	b.Helper()
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	var net, lat, cpu, mem float64
	for _, r := range rows {
		net += r.NetRatio
		lat += r.LatRatio
		cpu += r.CPURatio
		mem += r.HeapRatio
	}
	n := float64(len(rows))
	b.ReportMetric(net/n, "net-ratio")
	b.ReportMetric(lat/n, "lat-ratio")
	b.ReportMetric(cpu/n, "cpu-ratio")
	b.ReportMetric(mem/n, "mem-ratio")
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.ZugChain.Latency.Median.Microseconds()), "zc-lat-us")
}

// BenchmarkFig6BusCycles reproduces Fig 6 (left): network utilization and
// latency for bus cycles 32–256 ms at 1 kB payloads, ZugChain vs baseline.
func BenchmarkFig6BusCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6BusCycles(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, rows)
	}
}

// BenchmarkFig6Payloads reproduces Fig 6 (right): payload sizes 32 B – 8 kB
// at the 64 ms bus cycle.
func BenchmarkFig6Payloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6Payloads(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, rows)
	}
}

// BenchmarkFig7BusCycles reproduces Fig 7 (left): the CPU and memory
// proxies over the bus-cycle sweep.
func BenchmarkFig7BusCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7BusCycles(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, rows)
	}
}

// BenchmarkFig7Payloads reproduces Fig 7 (right): resources over the
// payload sweep.
func BenchmarkFig7Payloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7Payloads(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, rows)
	}
}

// BenchmarkFig8ViewChange reproduces Fig 8: request latency through a view
// change for both systems, at real time scale (soft+hard 250 ms each for
// ZugChain, one-shot 500 ms for the baseline).
func BenchmarkFig8ViewChange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := experiments.Options{Cycles: 120, TimeScale: 1, Seed: 1}
		zc, err := experiments.Fig8(testbed.ZugChain, opt)
		if err != nil {
			b.Fatal(err)
		}
		bl, err := experiments.Fig8(testbed.Baseline, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(zc.RecoveredAfter.Milliseconds()), "zc-recover-ms")
		b.ReportMetric(float64(bl.RecoveredAfter.Milliseconds()), "bl-recover-ms")
		b.ReportMetric(float64(zc.WorstLatency.Milliseconds()), "zc-worst-ms")
		b.ReportMetric(float64(bl.WorstLatency.Milliseconds()), "bl-worst-ms")
	}
}

// BenchmarkTableIIExport reproduces Table II: read/delete/verify latency
// exporting 500–16,000 blocks over the LTE-shaped uplink. The benchmark
// sweeps a reduced block range; cmd/zc-experiments runs the full table.
func BenchmarkTableIIExport(b *testing.B) {
	counts := []int{500, 1000, 2000}
	for _, count := range counts {
		b.Run(fmt.Sprintf("blocks=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.TableII(experiments.TableIIOptions{
					BlockCounts: []int{count},
					Link:        netsim.LTE,
				})
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.Read.Seconds(), "read-s")
				b.ReportMetric(r.Delete.Seconds(), "delete-s")
				b.ReportMetric(r.Verify.Seconds(), "verify-s")
			}
		})
	}
}

// BenchmarkFig9Fabricated reproduces Fig 9 (fabricated requests): a faulty
// backup injects fabricated requests in 25/75/100 % of cycles; latency, CPU
// and memory inflate but stay bounded by the open-request limit.
func BenchmarkFig9Fabricated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Label {
			case "fabricate 100%":
				b.ReportMetric(r.LatPct, "lat-pct-100")
				b.ReportMetric(r.CPUPct, "cpu-pct-100")
			case "fabricate 25%":
				b.ReportMetric(r.LatPct, "lat-pct-25")
			}
		}
	}
}

// BenchmarkFig9DelayedPrimary reproduces Fig 9 (delayed preprepares): the
// primary delays proposals past the soft timeout; latency rises while
// network utilization drops.
func BenchmarkFig9DelayedPrimary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchOptions()
		clean, err := testbed.Run(testbed.Scenario{
			BusCycle: 64 * time.Millisecond, PayloadSize: 1024,
			Cycles: opt.Cycles, TimeScale: opt.TimeScale, Seed: opt.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		delayed, err := testbed.Run(testbed.Scenario{
			BusCycle: 64 * time.Millisecond, PayloadSize: 1024,
			Cycles: opt.Cycles, TimeScale: opt.TimeScale, Seed: opt.Seed,
			PrimaryDelay: 300 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(clean.Latency.Median.Microseconds()), "clean-lat-us")
		b.ReportMetric(float64(delayed.Latency.Median.Microseconds()), "delayed-lat-us")
	}
}

// BenchmarkJRURequirements checks the §V-B requirement: storage within
// 500 ms of arrival at 15.6 events/s, including block persistence.
func BenchmarkJRURequirements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		check, err := experiments.RunJRUCheck(b.TempDir(), experiments.Options{Cycles: 60, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !check.Pass {
			b.Fatalf("JRU requirement violated: %+v", check)
		}
		b.ReportMetric(float64(check.OrderLatency.Microseconds()), "order-lat-us")
		b.ReportMetric(float64(check.DiskWrite.Microseconds()), "disk-write-us")
	}
}

// BenchmarkAblationBlockSize sweeps the block/checkpoint size — the design
// choice DESIGN.md §3(4) calls out (one checkpoint per block).
func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBlockSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0].Result, rows[len(rows)-1].Result
		b.ReportMetric(float64(first.Blocks), "blocks-size1")
		b.ReportMetric(float64(last.Blocks), "blocks-size50")
		b.ReportMetric(first.NetBytesPerNodePerSec, "net-size1")
		b.ReportMetric(last.NetBytesPerNodePerSec, "net-size50")
	}
}

// BenchmarkAblationSoftTimeout shows the soft timeout bounding a lazy
// primary's damage: measured latency tracks the configured soft timeout.
func BenchmarkAblationSoftTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSoftTimeout(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := strings.TrimPrefix(r.Label, "soft=") + "-maxlat-ms"
			b.ReportMetric(float64(r.Result.Latency.Max.Milliseconds()), name)
		}
	}
}

// buildBenchBlocks constructs n linked single-entry blocks outside the timed
// region, so the store benchmarks measure persistence alone.
func buildBenchBlocks(n int) []*blockchain.Block {
	bd := blockchain.NewBuilder(blockchain.Genesis(), 1)
	payload := make([]byte, 256)
	blocks := make([]*blockchain.Block, 0, n)
	for seq := uint64(1); len(blocks) < n; seq++ {
		if blk := bd.Add(blockchain.Entry{Seq: seq, Origin: 0, Payload: payload}); blk != nil {
			blocks = append(blocks, blk)
		}
	}
	return blocks
}

// BenchmarkStoreAppend compares the three persistence modes of
// blockchain.Store: the in-memory map, fsync'd single appends (one durable
// group per block), and group commit via AppendBatch (64 blocks per fsync'd
// directory sync). The group-commit ratio is what the ordering pipeline's
// state transfers and catch-up batches gain.
func BenchmarkStoreAppend(b *testing.B) {
	const groupSize = 64
	b.Run("memory", func(b *testing.B) {
		blocks := buildBenchBlocks(b.N)
		s, err := blockchain.NewStore("")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for _, blk := range blocks {
			if err := s.Append(blk); err != nil {
				b.Fatal(err)
			}
		}
		reportBlocksPerSec(b, len(blocks))
	})
	b.Run("disk-single", func(b *testing.B) {
		blocks := buildBenchBlocks(b.N)
		s, err := blockchain.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for _, blk := range blocks {
			if err := s.Append(blk); err != nil {
				b.Fatal(err)
			}
		}
		reportBlocksPerSec(b, len(blocks))
	})
	b.Run(fmt.Sprintf("disk-group-%d", groupSize), func(b *testing.B) {
		blocks := buildBenchBlocks(b.N)
		s, err := blockchain.NewStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for lo := 0; lo < len(blocks); lo += groupSize {
			hi := lo + groupSize
			if hi > len(blocks) {
				hi = len(blocks)
			}
			if err := s.AppendBatch(blocks[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		reportBlocksPerSec(b, len(blocks))
	})
}

func reportBlocksPerSec(b *testing.B, n int) {
	b.Helper()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(n)/secs, "blocks/s")
	}
}

// BenchmarkOrderingThroughput measures end-to-end ordering throughput of a
// real four-node cluster (full PBFT, Ed25519, in-process transport) as the
// primary's request batching is swept over 1/8/64 records per proposal.
// batch=1 is the pre-batching hot path; the acceptance target for the
// batching work is ≥3x records/s at batch=64.
func BenchmarkOrderingThroughput(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			net := transport.NewNetwork()
			defer net.Close()
			trs := make(map[crypto.NodeID]transport.Transport)
			for _, id := range []crypto.NodeID{0, 1, 2, 3} {
				trs[id] = net.Endpoint(id)
			}
			benchOrderingThroughput(b, batch, trs)
		})
	}
}

// BenchmarkOrderingThroughputTCP is the same four-node ordering benchmark
// over real TCP loopback connections, exercising the transport's outbound
// write path (framing, syscalls, per-peer fan-out) instead of the in-process
// network. The acceptance target for the asynchronous transport pipeline is
// ≥1.5x records/s at batch=64 over the synchronous-send baseline
// (BENCH_transport.json).
func BenchmarkOrderingThroughputTCP(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ids := []crypto.NodeID{0, 1, 2, 3}
			tcps := make([]*transport.TCP, len(ids))
			addrs := make(map[crypto.NodeID]string)
			for i, id := range ids {
				tr, err := transport.NewTCP(id, "127.0.0.1:0", nil)
				if err != nil {
					b.Fatal(err)
				}
				defer tr.Close()
				tcps[i] = tr
				addrs[id] = tr.Addr()
			}
			trs := make(map[crypto.NodeID]transport.Transport)
			for i, id := range ids {
				tcps[i].SetPeers(addrs)
				trs[id] = tcps[i]
			}
			benchOrdering(b, batch, trs, 256)
		})
	}
}

func benchOrderingThroughput(b *testing.B, maxBatch int, trs map[crypto.NodeID]transport.Transport) {
	// The historical in-process window (BENCH_ordering.json): enough
	// concurrency to fill batches and the PBFT watermark, little enough
	// that tail latency stays far below the timeouts.
	benchOrdering(b, maxBatch, trs, 64)
}

func benchOrdering(b *testing.B, maxBatch int, trs map[crypto.NodeID]transport.Transport, maxOutstanding uint64) {
	const recordsPerIter = 512
	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)

	var nodes []*node.Node
	for _, id := range ids {
		n, err := node.New(node.Config{
			ID:       id,
			Replicas: ids,
			// Timeouts far above the windowed per-record latency (so the
			// steady state has no timeout churn) but finite, so Algorithm
			// 1's recovery machinery still clears any hiccup on the
			// flooded in-proc links instead of wedging the run.
			SoftTimeout:   2 * time.Second,
			HardTimeout:   2 * time.Second,
			ViewTimeout:   2 * time.Second,
			MaxBatch:      maxBatch,
			MaxBatchDelay: time.Millisecond,
		}, kps[id], reg, trs[id], clock.Real{})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// maxOutstanding windows the feed: it bounds how many records are in
	// flight at once, i.e. how many agreement slots the pipeline overlaps.
	ordered := func() uint64 {
		// Decides are totally ordered and the duplicate filter is
		// deterministic, so one correct node reaching a count proves a
		// 2f+1 quorum committed every record up to it. Replicas that lost
		// messages to the flooded in-proc links catch up via checkpoint
		// state transfer, which bypasses the layer's request counter —
		// gating on every node would stall on that path.
		best := uint64(0)
		for _, n := range nodes {
			if got := n.Layer().Counters().Snapshot().Requests; got > best {
				best = got
			}
		}
		return best
	}

	total, fed := uint64(0), uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += recordsPerIter
		deadline := time.Now().Add(2 * time.Minute)
		for {
			best := ordered()
			if best >= total {
				break
			}
			for fed < total && fed-best < maxOutstanding {
				payload := make([]byte, 200)
				copy(payload, fmt.Sprintf("bench-%d-%d", maxBatch, fed))
				nodes[0].Layer().OnBusRecord(0, payload)
				fed++
			}
			if time.Now().After(deadline) {
				counts := make([]uint64, len(nodes))
				dups := make([]uint64, len(nodes))
				for j, n := range nodes {
					s := n.Layer().Counters().Snapshot()
					counts[j], dups[j] = s.Requests, s.Duplicates
				}
				b.Fatalf("cluster ordered %v/%d records (duplicates %v) before deadline",
					counts, total, dups)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "records/s")
	}
	b.ReportMetric(float64(nodes[0].Layer().Batches().Snapshot().Flushes), "flushes")
}
