// Byzantine: the fault scenarios of §III-C and Fig 8/9 live. A faulty
// backup floods fabricated requests (bounded by the per-origin rate limit),
// and then the primary is destroyed mid-run — the hard timeouts detect the
// censorship, the cluster elects a new primary, and recording continues
// without losing a single record that any correct node observed.
//
//	go run ./examples/byzantine
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zugchain"
	"zugchain/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: a flooding faulty backup, via the evaluation testbed (it
	// has the fabrication machinery of Fig 9 built in).
	fmt.Println("== part 1: faulty backup fabricates a request every bus cycle ==")
	clean, err := testbed.Run(testbed.Scenario{
		BusCycle:  64 * time.Millisecond,
		Cycles:    60,
		TimeScale: 8,
	})
	if err != nil {
		return err
	}
	attacked, err := testbed.Run(testbed.Scenario{
		BusCycle:      64 * time.Millisecond,
		Cycles:        60,
		TimeScale:     8,
		FabricateRate: 1.0,
	})
	if err != nil {
		return err
	}
	fmt.Printf("normal:   ordered=%3d  median latency %8v\n",
		clean.Ordered, clean.Latency.Median.Round(time.Microsecond))
	fmt.Printf("attacked: ordered=%3d  median latency %8v (fabrications admitted but rate-limited)\n\n",
		attacked.Ordered, attacked.Latency.Median.Round(time.Microsecond))

	// Part 2: destroy the primary mid-drive and watch the view change.
	fmt.Println("== part 2: the primary is destroyed mid-drive ==")
	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)
	network := zugchain.NewSimNetwork()
	defer network.Close()

	bus := zugchain.NewBus(zugchain.BusConfig{CycleTime: 32 * time.Millisecond})
	bus.Attach(zugchain.NewSignalDevice(
		zugchain.NewSignalGenerator(zugchain.DefaultGeneratorConfig())))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*zugchain.Node
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{
			ID:          id,
			Replicas:    ids,
			SoftTimeout: 250 * time.Millisecond, // the paper's Fig 8 settings
			HardTimeout: 250 * time.Millisecond,
		}, keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			return err
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(zugchain.BusFaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go bus.Run(ctx, zugchain.RealClock())

	time.Sleep(2 * time.Second)
	before := nodes[1].Store().HeadIndex()
	fmt.Printf("t=0.0s  chain height %d, primary r0 healthy\n", before)

	network.Isolate(0) // "crash" that destroys the primary node
	crashAt := time.Now()
	fmt.Println("t=2.0s  PRIMARY DESTROYED (r0 isolated)")

	// The backups' soft timeouts (250 ms) broadcast the stalled requests;
	// the hard timeouts (250 ms) suspect r0; PBFT elects r1.
	time.Sleep(3 * time.Second)

	after := nodes[1].Store().HeadIndex()
	fmt.Printf("t=5.0s  chain height %d on the survivors (%d new blocks after the crash, detected+recovered in ~%v)\n",
		after, after-before, (500 * time.Millisecond).Round(time.Millisecond))
	_ = crashAt

	if after <= before {
		return fmt.Errorf("recording did not resume after the view change")
	}
	// The three survivors agree block by block.
	for idx := uint64(1); idx <= after; idx++ {
		a, errA := nodes[1].Store().Get(idx)
		b, errB := nodes[2].Store().Get(idx)
		c, errC := nodes[3].Store().Get(idx)
		if errA != nil || errB != nil || errC != nil {
			return fmt.Errorf("block %d missing on a survivor", idx)
		}
		if a.Hash() != b.Hash() || b.Hash() != c.Hash() {
			return fmt.Errorf("survivors diverge at block %d", idx)
		}
	}
	fmt.Println("all three survivors hold identical, verified chains — no record lost")
	return nil
}
