// Investigation: record a bus trace of a drive (as the paper's testbed
// does with the DDC generator), replay the identical trace through a
// ZugChain cluster that includes a fabricating Byzantine backup, and then
// run the post-operational lab analysis the paper defers out of the
// recorder (§III-B): the analysis flags the fabricated records by their
// attestation pattern while the legitimate drive reconstructs cleanly.
//
//	go run ./examples/investigation
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"zugchain"
	"zugchain/internal/analysis"
	"zugchain/internal/core"
	"zugchain/internal/mvb"
	"zugchain/internal/pbft"
	"zugchain/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Record a drive into a trace (the reproducible evidence source).
	genCfg := zugchain.GeneratorConfig{Seed: 42, StationSpacing: 600, MaxSpeed: 100}
	srcBus := zugchain.NewBus(zugchain.BusConfig{})
	srcBus.Attach(zugchain.NewSignalDevice(zugchain.NewSignalGenerator(genCfg)))
	var trace bytes.Buffer
	stopRec := mvb.RecordTrace(srcBus, &trace)
	const cycles = 300
	for i := 0; i < cycles; i++ {
		srcBus.Tick()
	}
	if err := stopRec(); err != nil {
		return err
	}
	fmt.Printf("recorded a %d-cycle drive trace (%d bytes)\n", cycles, trace.Len())

	// 2. Replay the trace through a live cluster.
	frames, err := mvb.ReadTrace(&trace)
	if err != nil {
		return err
	}
	replayBus := zugchain.NewBus(zugchain.BusConfig{CycleTime: 8 * time.Millisecond})
	replayBus.Attach(mvb.NewTraceDevice(frames))

	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)
	network := zugchain.NewSimNetwork()
	defer network.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*zugchain.Node
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{
			ID: id, Replicas: ids,
			SoftTimeout: 50 * time.Millisecond,
			HardTimeout: 50 * time.Millisecond,
		}, keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			return err
		}
		n.Start()
		n.RunBus(ctx, replayBus.NewReader(zugchain.BusFaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go replayBus.Run(ctx, zugchain.RealClock())

	// 3. Byzantine backup r3 fabricates "uniquely received" requests: it
	// signs payloads no bus ever carried and broadcasts them on the
	// communication-layer channel, exactly the Fig 9 attack.
	go func() {
		ep := network.Endpoint(3)
		for i := 0; i < 100; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			// Well-formed but invented: an ATP intervention nobody's bus
			// ever carried, with a plausible cycle stamp so it blends in.
			fake := zugchain.SignalRecord{Cycle: uint64(i), Signals: []zugchain.Signal{{
				Port: 0x106, Kind: 6 /* atp-command */, Discrete: 5, Cycle: uint64(i),
			}}}
			req := pbft.Request{Payload: fake.Marshal()}
			pbft.SignRequest(&req, keys[3])
			_ = ep.Broadcast(wire.Marshal(&core.ZCRequest{Req: req}))
		}
	}()

	// Let the replay finish.
	time.Sleep(time.Duration(cycles)*8*time.Millisecond + 2*time.Second)
	cancel()

	// 4. Lab analysis on one node's chain.
	store := nodes[1].Store()
	report, err := analysis.Analyze(store, analysis.Config{})
	if err != nil {
		return err
	}
	fmt.Printf("\nanalysis over %d blocks, %d records:\n", report.Blocks, report.Records)
	fmt.Println("records per attesting node:")
	for _, id := range ids {
		fmt.Printf("  r%d: %d\n", id, report.ByOrigin[zugchain.NodeID(id)])
	}
	flagged := false
	for _, f := range report.Findings {
		fmt.Printf("  FINDING [%s] origin=%v: %s\n", f.Kind, f.Origin, f.Detail)
		if f.Kind == analysis.FindingSingleSource && f.Origin == 3 {
			flagged = true
		}
	}
	if flagged {
		fmt.Println("\nthe fabricating node r3 was identified by its attestation pattern")
	} else {
		fmt.Println("\n(fabrication volume below the detection threshold this run)")
	}
	fmt.Printf("%d discrete events on the timeline (the flagged node's %d inventions included —\n"+
		"the blockchain records faithfully; judging is the analyst's job)\n",
		len(report.Timeline), report.ByOrigin[3])
	return nil
}
