// Train recorder: the workload the paper's introduction motivates — a full
// drive with station stops, ATP interventions and emergency braking,
// recorded over an unreliable bus (frame drops, bit flips, per-node
// divergence) by four ZugChain nodes. Afterwards the chain is queried like
// an accident investigator would: reconstruct the juridically relevant
// event sequence from any single surviving node.
//
//	go run ./examples/train-recorder
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zugchain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)
	network := zugchain.NewSimNetwork()
	defer network.Close()

	// A short commuter run: stations every ~400 cycles at a fast 16 ms
	// cycle so the whole drive fits in a few wall-clock seconds.
	genCfg := zugchain.GeneratorConfig{Seed: 7, StationSpacing: 400, MaxSpeed: 80}
	bus := zugchain.NewBus(zugchain.BusConfig{CycleTime: 16 * time.Millisecond})
	bus.Attach(zugchain.NewSignalDevice(zugchain.NewSignalGenerator(genCfg)))

	// Every node suffers its own bus faults — §III-B's fault model.
	faults := []zugchain.BusFaultConfig{
		{DropRate: 0.10},                     // r0 misses 10% of frames
		{BitFlipRate: 0.05},                  // r1 sees corrupted bits [9]
		{DelayRate: 0.05, DivergeRate: 0.02}, // r2 sees late + diverging data
		{},                                   // r3 reads cleanly
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*zugchain.Node
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{ID: id, Replicas: ids},
			keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			return err
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(faults[i], int64(i)+100))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go bus.Run(ctx, zugchain.RealClock())

	fmt.Println("driving: accelerate -> cruise -> brake -> station stop ...")
	time.Sleep(8 * time.Second)
	cancel()

	// Investigation: read the chain from ONE node (imagine the others
	// were destroyed in the incident) and reconstruct events.
	store := nodes[2].Store()
	if err := store.VerifyChain(); err != nil {
		return fmt.Errorf("surviving node's chain is corrupt: %w", err)
	}
	fmt.Printf("\nsurviving node r2 holds %d verified blocks\n", store.HeadIndex())

	type event struct {
		seq   uint64
		cycle uint64
		what  string
	}
	var (
		events    []event
		lastSpeed float64
		topSpeed  float64
		doorsOpen bool
		flagged   int
	)
	blocks, err := store.Range(1, store.HeadIndex())
	if err != nil {
		return err
	}
	records := 0
	for _, b := range blocks {
		for _, e := range b.Entries {
			rec, err := zugchain.UnmarshalRecord(e.Payload)
			if err != nil {
				continue // corrupted-at-source record, logged as-is
			}
			records++
			for _, s := range rec.Signals {
				switch {
				case s.Kind.String() == "speed":
					// Bus bit flips can corrupt values before any node
					// sees them; ZugChain logs them as-is (like the JRU)
					// and the post-operational analysis flags them.
					if s.Value < 0 || s.Value > 500 {
						flagged++
						continue
					}
					if s.Value > topSpeed {
						topSpeed = s.Value
					}
					if lastSpeed > 0 && s.Value == 0 {
						events = append(events, event{e.Seq, rec.Cycle, "train stopped"})
					}
					lastSpeed = s.Value
				case s.Kind.String() == "door-state":
					open := s.Discrete != 0
					if open != doorsOpen {
						state := "closed"
						if open {
							state = "OPENED"
						}
						events = append(events, event{e.Seq, rec.Cycle, "doors " + state})
						doorsOpen = open
					}
				case s.Kind.String() == "emergency-brake":
					events = append(events, event{e.Seq, rec.Cycle, "EMERGENCY BRAKE"})
				case s.Kind.String() == "atp-command":
					events = append(events, event{e.Seq, rec.Cycle,
						fmt.Sprintf("ATP intervention (code %d)", s.Discrete)})
				}
			}
		}
	}

	fmt.Printf("reconstructed from %d juridical records (top speed %.1f km/h, %d bit-corrupted readings flagged in analysis):\n\n",
		records, topSpeed, flagged)
	for _, ev := range events {
		fmt.Printf("  seq %5d  bus cycle %5d  %s\n", ev.seq, ev.cycle, ev.what)
	}
	if len(events) == 0 {
		fmt.Println("  (no discrete events in this window — try a longer run)")
	}
	return nil
}
