// Quickstart: a four-node ZugChain cluster on an in-process network,
// recording a simulated train drive for a few seconds, then printing the
// agreed blockchain.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zugchain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Identities: four replicas (n = 3f+1, f = 1) with Ed25519 keys,
	//    all public keys in a shared registry.
	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)

	// 2. The train's networks: a simulated Ethernet for consensus and a
	//    simulated MVB carrying the ATP's juridical signals.
	network := zugchain.NewSimNetwork()
	defer network.Close()

	bus := zugchain.NewBus(zugchain.BusConfig{CycleTime: 32 * time.Millisecond})
	bus.Attach(zugchain.NewSignalDevice(
		zugchain.NewSignalGenerator(zugchain.DefaultGeneratorConfig())))

	// 3. Four ZugChain nodes, each reading the bus independently.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*zugchain.Node
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{
			ID:       id,
			Replicas: ids,
		}, keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			return err
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(zugchain.BusFaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go bus.Run(ctx, zugchain.RealClock())

	// 4. Record for three seconds of (simulated) operation.
	fmt.Println("recording train events for 3 seconds ...")
	time.Sleep(3 * time.Second)

	// 5. Read back the chain from one node; all nodes agree.
	store := nodes[0].Store()
	if err := store.VerifyChain(); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fmt.Printf("chain height: %d blocks, all hash-linked and verified\n", store.HeadIndex())

	blocks, err := store.Range(1, min(store.HeadIndex(), 2))
	if err != nil {
		return err
	}
	for _, b := range blocks {
		hash := b.Hash()
		fmt.Printf("\nblock %d (hash %x..., %d records):\n", b.Index, hash[:4], len(b.Entries))
		for _, e := range b.Entries[:min(uint64(len(b.Entries)), 3)] {
			rec, err := zugchain.UnmarshalRecord(e.Payload)
			if err != nil {
				return err
			}
			fmt.Printf("  seq %d (read by r%d): cycle %d, %d signals:",
				e.Seq, e.Origin, rec.Cycle, len(rec.Signals))
			for _, s := range rec.Signals {
				fmt.Printf(" %s=%.4g", s.Kind, s.Value)
			}
			fmt.Println()
		}
		if len(b.Entries) > 3 {
			fmt.Printf("  ... %d more records\n", len(b.Entries)-3)
		}
	}

	// Every node holds the identical chain: that is what makes a single
	// surviving node after an accident sufficient.
	for i, n := range nodes[1:] {
		a, _ := nodes[0].Store().Get(1)
		b, err := n.Store().Get(1)
		if err != nil || a.Hash() != b.Hash() {
			return fmt.Errorf("node %d diverged", i+1)
		}
	}
	fmt.Println("\nall four replicas agree on every block")
	return nil
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
