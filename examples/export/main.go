// Export: two mutually distrustful railway companies' data centers pull the
// blockchain from the train over an LTE-shaped uplink (Fig 4), verify it
// against 2f+1-signed checkpoints, synchronize with each other, and
// authorize pruning — after which the on-train chains restart from the
// exported boundary block.
//
//	go run ./examples/export
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"zugchain"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Replica and data-center identities.
	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	dcIDs := []zugchain.NodeID{zugchain.DataCenterIDBase, zugchain.DataCenterIDBase + 1}
	dcKeys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	for _, id := range dcIDs {
		kp := zugchain.MustGenerateKeyPair(id)
		dcKeys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)
	network := zugchain.NewSimNetwork()
	defer network.Close()

	// The train: four nodes recording a drive. Pruning requires signed
	// deletes from BOTH companies (DeleteQuorum 2) — neither can erase
	// evidence alone.
	bus := zugchain.NewBus(zugchain.BusConfig{CycleTime: 16 * time.Millisecond})
	bus.Attach(zugchain.NewSignalDevice(
		zugchain.NewSignalGenerator(zugchain.DefaultGeneratorConfig())))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*zugchain.Node
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{
			ID:           id,
			Replicas:     ids,
			DataCenters:  dcIDs,
			DeleteQuorum: 2,
		}, keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			return err
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(zugchain.BusFaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go bus.Run(ctx, zugchain.RealClock())

	fmt.Println("recording 4 seconds of operation ...")
	time.Sleep(4 * time.Second)
	heightBefore := nodes[0].Store().HeadIndex()
	fmt.Printf("on-train chain height: %d blocks (base 0)\n\n", heightBefore)

	// Two data centers behind LTE-shaped uplinks. Export messages use the
	// 0x40-0x4f wire range — carve that channel out of each endpoint.
	var dcs []*zugchain.DataCenter
	for _, id := range dcIDs {
		archive, err := zugchain.NewChainStore("")
		if err != nil {
			return err
		}
		shaped := zugchain.NewShapedLink(network.Endpoint(id), zugchain.LTEUplink)
		defer shaped.Close()
		dcs = append(dcs, zugchain.NewDataCenter(zugchain.DataCenterConfig{
			ID:          id,
			Replicas:    ids,
			ReadTimeout: 60 * time.Second,
		}, dcKeys[id], registry, archive, shaped))
	}

	// One full export round per Fig 4: dc0 reads, the group syncs, both
	// sign deletes, replicas prune after 2f+1 acks.
	group := &zugchain.DataCenterGroup{DCs: dcs}
	exportCtx, cancelExport := context.WithTimeout(ctx, 2*time.Minute)
	defer cancelExport()
	report, err := group.ExportRound(exportCtx)
	if err != nil {
		return fmt.Errorf("export round: %w", err)
	}
	fmt.Printf("exported %d blocks through block %d over the LTE uplink:\n",
		report.BlocksExported, report.BlockIndex)
	fmt.Printf("  read   %v  (bandwidth-bound, like Table II)\n", report.ReadDuration.Round(time.Millisecond))
	fmt.Printf("  verify %v\n", report.VerifyDuration.Round(time.Millisecond))
	fmt.Printf("  delete %v\n\n", report.DeleteDuration.Round(time.Millisecond))

	for i, dc := range dcs {
		if err := dc.Archive().VerifyChain(); err != nil {
			return fmt.Errorf("company %d archive corrupt: %w", i, err)
		}
		fmt.Printf("company %d archive: %d blocks, verified\n", i, dc.LastExported())
	}

	// The replicas pruned everything below the exported boundary.
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range nodes {
		for n.Store().Base() < report.BlockIndex && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
	}
	n0 := nodes[0].Store()
	fmt.Printf("\non-train chain after pruning: base=%d height=%d (memory freed)\n",
		n0.Base(), n0.HeadIndex())
	if err := n0.VerifyChain(); err != nil {
		return fmt.Errorf("pruned chain: %w", err)
	}
	fmt.Println("pruned chain still verifies from its authorized base")
	return nil
}
