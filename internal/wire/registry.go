package wire

import (
	"fmt"
	"sync"
)

// Type tags a protocol message inside the wire envelope. Each protocol
// package owns a contiguous range so tags never collide:
//
//	0x10–0x2f  PBFT (internal/pbft)
//	0x30–0x3f  ZugChain communication layer (internal/core)
//	0x40–0x4f  export protocol (internal/export)
//	0x50–0x5f  baseline client handling (internal/baseline)
type Type uint16

// Message is any protocol message that can travel inside a wire envelope.
type Message interface {
	// WireType returns the registered envelope tag for this message.
	WireType() Type
	// EncodeWire appends the message body (without the envelope tag).
	EncodeWire(e *Encoder)
	// DecodeWire parses the message body. Implementations must leave the
	// receiver unmodified semantics-wise on decoder error (the caller
	// checks d.Err and discards the value).
	DecodeWire(d *Decoder)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[Type]func() Message)
)

// Register installs a factory for the given message type. It must be called
// before any Unmarshal of that type, typically from the owning package's
// init. Registering the same type twice panics: tag collisions are
// programming errors.
func Register(t Type, factory func() Message) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[t]; dup {
		panic(fmt.Sprintf("wire: duplicate registration for type %#x", uint16(t)))
	}
	registry[t] = factory
}

// Marshal encodes msg with its envelope tag prepended.
func Marshal(msg Message) []byte {
	e := NewEncoder(128)
	e.Uint16(uint16(msg.WireType()))
	msg.EncodeWire(e)
	return e.Data()
}

// Unmarshal decodes an enveloped message produced by Marshal. It rejects
// unknown type tags and trailing garbage so Byzantine peers cannot smuggle
// extra payload bytes past signature checks.
func Unmarshal(data []byte) (Message, error) {
	d := NewDecoder(data)
	t := Type(d.Uint16())
	if d.Err() != nil {
		return nil, d.Err()
	}
	registryMu.RLock()
	factory, ok := registry[t]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown message type %#x", uint16(t))
	}
	msg := factory()
	msg.DecodeWire(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: decode %#x: %w", uint16(t), err)
	}
	if d.Remaining() != 0 {
		return nil, ErrTrailingBytes
	}
	return msg, nil
}
