package wire

import "testing"

// FuzzUnmarshal hardens the envelope decoder against hostile bytes: it must
// never panic, and every successfully decoded message must re-encode.
func FuzzUnmarshal(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(&testMsg{A: 7, B: []byte("seed")}))
	f.Add([]byte{0xf0, 0xff})       // registered tag, empty body
	f.Add([]byte{0x99, 0x99, 0x01}) // unknown tag
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Whatever decoded must marshal back without panicking.
		_ = Marshal(msg)
	})
}

// FuzzDecoder drives the primitive decoder with arbitrary input.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		d.Uvarint()
		d.Bytes()
		_ = d.String()
		d.Uint64()
		d.Bytes32()
		d.Float64()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
	})
}
