package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	e := NewEncoder(0)
	e.Byte(0xab)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(0xbeef)
	e.Uint32(0xdeadbeef)
	e.Uint64(math.MaxUint64 - 7)
	e.Int64(-42)
	e.Float64(3.14159)
	e.Uvarint(1 << 40)
	e.Bytes([]byte("payload"))
	e.String("zugchain")
	e.Bytes32([32]byte{1, 2, 3})

	d := NewDecoder(e.Data())
	if got := d.Byte(); got != 0xab {
		t.Errorf("Byte() = %#x, want 0xab", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Uint16(); got != 0xbeef {
		t.Errorf("Uint16() = %#x", got)
	}
	if got := d.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32() = %#x", got)
	}
	if got := d.Uint64(); got != math.MaxUint64-7 {
		t.Errorf("Uint64() = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64() = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64() = %v", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint() = %d", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Bytes() = %q", got)
	}
	if got := d.String(); got != "zugchain" {
		t.Errorf("String() = %q", got)
	}
	if got := d.Bytes32(); got != ([32]byte{1, 2, 3}) {
		t.Errorf("Bytes32() = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining() = %d, want 0", d.Remaining())
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	tests := []struct {
		name string
		read func(d *Decoder)
	}{
		{"byte", func(d *Decoder) { d.Byte() }},
		{"uint16", func(d *Decoder) { d.Uint16() }},
		{"uint32", func(d *Decoder) { d.Uint32() }},
		{"uint64", func(d *Decoder) { d.Uint64() }},
		{"uvarint", func(d *Decoder) { d.Uvarint() }},
		{"bytes32", func(d *Decoder) { d.Bytes32() }},
		{"bytes", func(d *Decoder) { d.Bytes() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDecoder(nil)
			tt.read(d)
			if !errors.Is(d.Err(), ErrShortBuffer) {
				t.Errorf("Err() = %v, want ErrShortBuffer", d.Err())
			}
		})
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.Uint64() // fails: only 2 bytes
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads must not clear or replace the error and must return
	// zero values even though two readable bytes remain.
	if got := d.Uint16(); got != 0 {
		t.Errorf("Uint16 after error = %d, want 0", got)
	}
	if d.Err() != first {
		t.Errorf("error replaced: %v", d.Err())
	}
}

func TestDecoderBytesLengthLimit(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(MaxElementSize + 1)
	d := NewDecoder(e.Data())
	d.Bytes()
	if !errors.Is(d.Err(), ErrTooLarge) {
		t.Errorf("Err() = %v, want ErrTooLarge", d.Err())
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes([]byte{10, 20, 30})
	input := e.Data()

	d := NewDecoder(input)
	got := d.BytesCopy()
	input[len(input)-1] = 99
	if got[2] != 30 {
		t.Errorf("BytesCopy aliases input: got %v", got)
	}
}

func TestBytesEmpty(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes(nil)
	e.Bytes([]byte{})
	d := NewDecoder(e.Data())
	if got := d.Bytes(); got != nil {
		t.Errorf("Bytes() = %v, want nil", got)
	}
	if got := d.BytesCopy(); got != nil {
		t.Errorf("BytesCopy() = %v, want nil", got)
	}
	if d.Err() != nil {
		t.Fatalf("unexpected error: %v", d.Err())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.Uint64(7)
	e.Reset()
	if e.Len() != 0 {
		t.Errorf("Len() after Reset = %d", e.Len())
	}
	e.Byte(1)
	if !bytes.Equal(e.Data(), []byte{1}) {
		t.Errorf("Bytes() = %v", e.Data())
	}
}

func TestEncoderTruncate(t *testing.T) {
	e := NewEncoder(16)
	e.Byte(1)
	e.Byte(2)
	e.Byte(3)
	e.Truncate(1)
	if !bytes.Equal(e.Data(), []byte{1}) {
		t.Errorf("Data() after Truncate = %v, want [1]", e.Data())
	}
	// The encoder stays usable: appends continue from the cut point.
	e.Byte(9)
	if !bytes.Equal(e.Data(), []byte{1, 9}) {
		t.Errorf("Data() after append = %v, want [1 9]", e.Data())
	}
	e.Truncate(0)
	if e.Len() != 0 {
		t.Errorf("Len() after Truncate(0) = %d", e.Len())
	}
}

// Property: any (uint64, bytes, string) triple survives a round trip, and
// the encoding of the triple is a deterministic function of the values.
func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, b []byte, s string) bool {
		e1 := NewEncoder(0)
		e1.Uvarint(u)
		e1.Bytes(b)
		e1.String(s)
		e2 := NewEncoder(0)
		e2.Uvarint(u)
		e2.Bytes(b)
		e2.String(s)
		if !bytes.Equal(e1.Data(), e2.Data()) {
			return false // non-deterministic encoding
		}
		d := NewDecoder(e1.Data())
		gu := d.Uvarint()
		gb := d.Bytes()
		gs := d.String()
		return d.Err() == nil && gu == u && bytes.Equal(gb, b) && gs == s && d.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the decoder never panics on arbitrary input bytes, whatever the
// read sequence.
func TestDecoderNoPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		d.Uvarint()
		d.Bytes()
		d.Uint64()
		d.Bytes32()
		_ = d.String()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type testMsg struct {
	A uint64
	B []byte
}

const testMsgType Type = 0xfff0

func (m *testMsg) WireType() Type { return testMsgType }

func (m *testMsg) EncodeWire(e *Encoder) {
	e.Uint64(m.A)
	e.Bytes(m.B)
}

func (m *testMsg) DecodeWire(d *Decoder) {
	m.A = d.Uint64()
	m.B = d.BytesCopy()
}

func init() {
	Register(testMsgType, func() Message { return new(testMsg) })
}

func TestMarshalUnmarshal(t *testing.T) {
	in := &testMsg{A: 99, B: []byte("abc")}
	data := Marshal(in)
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got, ok := out.(*testMsg)
	if !ok {
		t.Fatalf("Unmarshal returned %T", out)
	}
	if got.A != in.A || !bytes.Equal(got.B, in.B) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	t.Run("unknown type", func(t *testing.T) {
		e := NewEncoder(0)
		e.Uint16(0xffee)
		if _, err := Unmarshal(e.Data()); err == nil {
			t.Error("want error for unknown type")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		data := Marshal(&testMsg{A: 1})
		data = append(data, 0x00)
		if _, err := Unmarshal(data); !errors.Is(err, ErrTrailingBytes) {
			t.Errorf("err = %v, want ErrTrailingBytes", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		data := Marshal(&testMsg{A: 1, B: []byte("xyz")})
		if _, err := Unmarshal(data[:len(data)-1]); err == nil {
			t.Error("want error for truncated body")
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := Unmarshal(nil); err == nil {
			t.Error("want error for empty input")
		}
	})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(testMsgType, func() Message { return new(testMsg) })
}

// TestDecoderNonCanonical checks that values with more than one plausible
// wire form are pinned to the one the encoder produces: zero-padded varints
// and boolean bytes other than 0/1 must be rejected, so a digest or
// signature over an encoding identifies exactly one value.
func TestDecoderNonCanonical(t *testing.T) {
	t.Run("padded uvarint", func(t *testing.T) {
		for _, in := range [][]byte{
			{0x80, 0x00},       // 0, padded to two bytes
			{0xb0, 0x00},       // 48, padded to two bytes
			{0x80, 0x80, 0x00}, // 0, padded to three bytes
			{0xff, 0x80, 0x00}, // 127, padded to three bytes
		} {
			d := NewDecoder(in)
			d.Uvarint()
			if !errors.Is(d.Err(), ErrNonCanonical) {
				t.Errorf("Uvarint(%x): err = %v, want ErrNonCanonical", in, d.Err())
			}
		}
	})
	t.Run("minimal uvarint still accepted", func(t *testing.T) {
		for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64} {
			e := NewEncoder(0)
			e.Uvarint(v)
			d := NewDecoder(e.Data())
			if got := d.Uvarint(); got != v || d.Err() != nil {
				t.Errorf("round trip %d: got %d, err %v", v, got, d.Err())
			}
		}
	})
	t.Run("bool", func(t *testing.T) {
		for b := 2; b < 256; b += 51 {
			d := NewDecoder([]byte{byte(b)})
			d.Bool()
			if !errors.Is(d.Err(), ErrNonCanonical) {
				t.Errorf("Bool(0x%02x): err = %v, want ErrNonCanonical", b, d.Err())
			}
		}
		for b, want := range map[byte]bool{0: false, 1: true} {
			d := NewDecoder([]byte{b})
			if got := d.Bool(); got != want || d.Err() != nil {
				t.Errorf("Bool(0x%02x) = %v, err %v", b, got, d.Err())
			}
		}
	})
}
