// Package wire implements the deterministic binary encoding used for all
// ZugChain protocol messages.
//
// The encoding is deliberately simple: fixed-width little-endian integers,
// unsigned varints for lengths, and length-prefixed byte strings. Two
// properties matter and are guaranteed:
//
//   - Determinism: the same message always encodes to the same bytes, so
//     Ed25519 signatures can be computed over encoded messages.
//   - Self-description at the envelope level: a registered message carries a
//     type tag so a single Unmarshal entry point can decode any protocol
//     message received from the network.
//
// The paper's prototype exchanges Protobuf; this package is the stdlib-only
// equivalent.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Common encoding errors.
var (
	// ErrShortBuffer is returned when a decoder runs out of input bytes.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrTooLarge is returned when a length prefix exceeds the decoder limit.
	ErrTooLarge = errors.New("wire: length exceeds limit")
	// ErrTrailingBytes is returned by Unmarshal when input remains after a
	// complete message has been decoded.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	// ErrNonCanonical is returned when input decodes to a value whose
	// re-encoding would differ from the input — a padded varint or an
	// out-of-range boolean byte. Rejecting these keeps every value to one
	// wire form, so digests and signatures over encodings are unambiguous.
	ErrNonCanonical = errors.New("wire: non-canonical encoding")
)

// MaxElementSize bounds any single length-prefixed element. It protects
// decoders against maliciously large length prefixes from Byzantine peers.
const MaxElementSize = 64 << 20 // 64 MiB

// Encoder appends primitive values to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Data returns the encoded buffer. The returned slice aliases the encoder's
// internal storage; callers must not retain it across further writes.
func (e *Encoder) Data() []byte { return e.buf }

// Len reports the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards all encoded data, retaining the buffer for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Truncate shortens the encoded data to n bytes, keeping the buffer for
// further writes. It panics if n is negative or beyond the current length.
// Used to rewrite a fixed tail in place — e.g. deriving signing bytes (empty
// signature) from a full message encoding without re-encoding the message.
func (e *Encoder) Truncate(n int) { e.buf = e.buf[:n] }

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
		return
	}
	e.Byte(0)
}

// Uint16 appends a fixed-width little-endian uint16.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// Uint32 appends a fixed-width little-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a fixed-width little-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 appends a fixed-width little-endian int64.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double in little-endian byte order.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Bytes32 appends a fixed 32-byte array without a length prefix.
func (e *Encoder) Bytes32(v [32]byte) { e.buf = append(e.buf, v[:]...) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(v []byte) {
	e.Uvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(v string) {
	e.Uvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Decoder reads primitive values from a byte slice. Errors are sticky: after
// the first failure all further reads return zero values and Err reports the
// original error. This lets message decoders chain reads and check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf. The decoder does not copy buf;
// decoded byte strings alias it unless otherwise documented.
func NewDecoder(buf []byte) *Decoder {
	return &Decoder{buf: buf}
}

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of bytes left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n bytes or records ErrShortBuffer.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean encoded as one byte. Only 0 and 1 are accepted —
// Encoder.Bool never writes anything else, and admitting other bytes would
// give true a second wire form (ErrNonCanonical).
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(ErrNonCanonical)
		return false
	}
}

// Uint16 reads a fixed-width little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a fixed-width little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed-width little-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Uvarint reads an unsigned varint. Only the minimal encoding is accepted:
// binary.Uvarint also consumes zero-padded forms (0x80 0x00 for 0), which
// would let one value travel under several wire encodings (ErrNonCanonical).
// A minimal varint's final byte is nonzero unless the whole value is one
// byte.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrShortBuffer)
		return 0
	}
	if n > 1 && d.buf[d.off+n-1] == 0 {
		d.fail(ErrNonCanonical)
		return 0
	}
	d.off += n
	return v
}

// Bytes32 reads a fixed 32-byte array.
func (d *Decoder) Bytes32() (v [32]byte) {
	b := d.take(32)
	if b != nil {
		copy(v[:], b)
	}
	return v
}

// Bytes reads a length-prefixed byte string. The result aliases the input
// buffer. A nil slice is returned for zero-length strings.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if n > MaxElementSize {
		d.fail(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
		return nil
	}
	b := d.take(int(n))
	if len(b) == 0 {
		return nil
	}
	return b
}

// BytesCopy reads a length-prefixed byte string into freshly allocated
// storage, safe to retain after the input buffer is reused.
func (d *Decoder) BytesCopy() []byte {
	b := d.Bytes()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	return string(d.Bytes())
}
