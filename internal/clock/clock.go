// Package clock abstracts time so every timeout in ZugChain — the
// communication layer's soft and hard timeouts, PBFT view timers, bus cycle
// scheduling — can be driven deterministically in tests via Fake and by the
// wall clock in deployments via Real.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and timer construction.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// After returns a channel that receives the fire time after d.
	After(d time.Duration) <-chan time.Time
}

// Timer is a single-shot timer.
type Timer interface {
	// C returns the channel on which the fire time is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the timer
	// was still pending.
	Stop() bool
}

// Real is the wall-clock implementation. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

// Fake is a manually advanced clock for deterministic tests. Timers fire
// synchronously during Advance, in deadline order.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64 // tiebreak for equal deadlines, preserves creation order
}

var _ Clock = (*Fake)(nil)

// NewFake returns a fake clock starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// NewTimer implements Clock. A non-positive duration fires on the next
// Advance (or immediately on Advance(0)).
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{
		clock:    f,
		ch:       make(chan time.Time, 1),
		deadline: f.now.Add(d),
		seq:      f.seq,
	}
	f.seq++
	heap.Push(&f.timers, t)
	return t
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C()
}

// Advance moves the clock forward by d, firing all timers whose deadlines
// are reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for len(f.timers) > 0 && !f.timers[0].deadline.After(target) {
		t := heap.Pop(&f.timers).(*fakeTimer)
		if t.stopped {
			continue
		}
		f.now = t.deadline
		t.fired = true
		// Buffered channel of size 1; a fake timer fires at most once.
		t.ch <- t.deadline
	}
	f.now = target
	f.mu.Unlock()
}

// PendingTimers reports how many timers are armed and not yet fired,
// useful for asserting that cleanup cancelled everything.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if !t.stopped && !t.fired {
			n++
		}
	}
	return n
}

type fakeTimer struct {
	clock    *Fake
	ch       chan time.Time
	deadline time.Time
	seq      uint64
	index    int // heap index
	stopped  bool
	fired    bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap orders fake timers by deadline, then creation order.
type timerHeap []*fakeTimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*fakeTimer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
