package clock

import (
	"testing"
	"time"
)

func TestFakeNowAdvances(t *testing.T) {
	f := NewFake()
	start := f.Now()
	f.Advance(3 * time.Second)
	if got := f.Now().Sub(start); got != 3*time.Second {
		t.Errorf("advanced %v, want 3s", got)
	}
}

func TestFakeTimerFires(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(100 * time.Millisecond)

	f.Advance(99 * time.Millisecond)
	select {
	case <-timer.C():
		t.Fatal("timer fired early")
	default:
	}

	f.Advance(1 * time.Millisecond)
	select {
	case fireTime := <-timer.C():
		if want := f.Now(); !fireTime.Equal(want) {
			t.Errorf("fire time %v, want %v", fireTime, want)
		}
	default:
		t.Fatal("timer did not fire")
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Second)
	if !timer.Stop() {
		t.Error("Stop() = false for pending timer")
	}
	f.Advance(2 * time.Second)
	select {
	case <-timer.C():
		t.Error("stopped timer fired")
	default:
	}
	if timer.Stop() {
		t.Error("Stop() = true for already-stopped timer")
	}
}

func TestFakeTimerStopAfterFire(t *testing.T) {
	f := NewFake()
	timer := f.NewTimer(time.Millisecond)
	f.Advance(time.Millisecond)
	if timer.Stop() {
		t.Error("Stop() = true for fired timer")
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake()
	var order []int
	t1 := f.NewTimer(30 * time.Millisecond)
	t2 := f.NewTimer(10 * time.Millisecond)
	t3 := f.NewTimer(20 * time.Millisecond)

	f.Advance(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		select {
		case <-t2.C():
			order = append(order, 2)
			t2 = f.NewTimer(time.Hour) // prevent re-selection
		case <-t3.C():
			order = append(order, 3)
			t3 = f.NewTimer(time.Hour)
		case <-t1.C():
			order = append(order, 1)
			t1 = f.NewTimer(time.Hour)
		default:
			t.Fatalf("only %d timers fired", len(order))
		}
	}
	// Channel receipt order in the select is not guaranteed, but all three
	// must have fired; the heap ordering is observable via fire timestamps.
	if len(order) != 3 {
		t.Fatalf("fired %d timers, want 3", len(order))
	}
}

func TestFakeTimerFireTimestampsAreDeadlines(t *testing.T) {
	f := NewFake()
	base := f.Now()
	ta := f.NewTimer(10 * time.Millisecond)
	tb := f.NewTimer(25 * time.Millisecond)
	f.Advance(time.Second)
	if got := <-ta.C(); !got.Equal(base.Add(10 * time.Millisecond)) {
		t.Errorf("ta fired at %v", got)
	}
	if got := <-tb.C(); !got.Equal(base.Add(25 * time.Millisecond)) {
		t.Errorf("tb fired at %v", got)
	}
}

func TestFakeAfter(t *testing.T) {
	f := NewFake()
	ch := f.After(time.Minute)
	f.Advance(time.Minute)
	select {
	case <-ch:
	default:
		t.Error("After channel did not fire")
	}
}

func TestFakePendingTimers(t *testing.T) {
	f := NewFake()
	a := f.NewTimer(time.Second)
	f.NewTimer(2 * time.Second)
	if got := f.PendingTimers(); got != 2 {
		t.Errorf("PendingTimers() = %d, want 2", got)
	}
	a.Stop()
	if got := f.PendingTimers(); got != 1 {
		t.Errorf("PendingTimers() = %d, want 1", got)
	}
	f.Advance(3 * time.Second)
	if got := f.PendingTimers(); got != 0 {
		t.Errorf("PendingTimers() = %d, want 0", got)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before) {
		t.Error("Real.Now went backwards")
	}
	timer := c.NewTimer(time.Millisecond)
	select {
	case <-timer.C():
	case <-time.After(time.Second):
		t.Error("real timer did not fire within 1s")
	}
	if timer.Stop() {
		t.Error("Stop() = true after fire")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("After did not fire within 1s")
	}
}
