package cli

import "testing"

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("0=localhost:7100, 1=10.0.0.2:7101,2=host:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers[0] != "localhost:7100" || peers[1] != "10.0.0.2:7101" {
		t.Errorf("peers = %v", peers)
	}
}

func TestParsePeersErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"whitespace", "   "},
		{"missing equals", "0localhost:7100"},
		{"missing addr", "0="},
		{"missing id", "=localhost:1"},
		{"non-numeric id", "abc=localhost:1"},
		{"duplicate id", "0=a:1,0=b:2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParsePeers(tt.in); err == nil {
				t.Errorf("ParsePeers(%q) succeeded", tt.in)
			}
		})
	}
}
