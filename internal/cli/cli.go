// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"zugchain/internal/crypto"
)

// ParsePeers parses the -peers/-replicas flag format: a comma-separated
// list of id=host:port entries, e.g.
//
//	0=localhost:7100,1=localhost:7101
func ParsePeers(s string) (map[crypto.NodeID]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty peer list")
	}
	peers := make(map[crypto.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad peer %q, want id=host:port", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", kv[0], err)
		}
		if _, dup := peers[crypto.NodeID(id)]; dup {
			return nil, fmt.Errorf("duplicate peer id %d", id)
		}
		peers[crypto.NodeID(id)] = kv[1]
	}
	return peers, nil
}
