package obsv

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// lcg is a tiny deterministic generator so the tests never depend on seed
// files or wall clocks.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l)
}

func TestBucketIndexBoundaries(t *testing.T) {
	// Linear region: singleton buckets.
	for v := uint64(0); v < histSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, got, v)
		}
	}

	check := func(v uint64) {
		t.Helper()
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, up, idx)
		}
		if idx > 0 {
			if lo := bucketUpper(idx - 1); v <= lo {
				t.Fatalf("value %d at or below previous bucket upper %d (idx %d)", v, lo, idx)
			}
		}
	}

	// Octave boundaries and their neighbours across the whole range.
	for shift := uint(histSubBits); shift < 63; shift++ {
		base := uint64(1) << shift
		for _, v := range []uint64{base - 1, base, base + 1} {
			check(v)
		}
	}
	check(math.MaxInt64)

	// Dense sweep over small values plus random probes over the full range.
	for v := uint64(0); v < 1<<12; v++ {
		check(v)
	}
	rng := lcg(7)
	for i := 0; i < 10000; i++ {
		check(rng.next() & math.MaxInt64)
	}

	// Upper bounds must be strictly increasing.
	prev := bucketUpper(0)
	for idx := 1; idx < histBuckets; idx++ {
		up := bucketUpper(idx)
		if up <= prev {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", idx, up, prev)
		}
		prev = up
	}
}

// TestHistogramQuantileVsExact checks the documented error bound: the
// log-linear scheme's quantile is the upper bound of the sample's bucket,
// at most 1/histSub = 12.5% above the exact order statistic.
func TestHistogramQuantileVsExact(t *testing.T) {
	h := NewHistogram()
	var exact []time.Duration
	rng := lcg(42)
	for i := 0; i < 20000; i++ {
		// 1µs .. ~67ms, roughly log-uniform.
		d := time.Duration(1000 + rng.next()%(1<<uint(10+rng.next()%17)))
		h.Observe(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	s := h.Snapshot()
	if s.Count != uint64(len(exact)) {
		t.Fatalf("count = %d, want %d", s.Count, len(exact))
	}
	if s.Max != exact[len(exact)-1] {
		t.Fatalf("max = %v, want %v", s.Max, exact[len(exact)-1])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(exact)))
		if rank >= len(exact) {
			rank = len(exact) - 1
		}
		want := exact[rank]
		got := s.Quantile(q)
		if got < want {
			t.Fatalf("q=%v: estimate %v below exact %v", q, got, want)
		}
		limit := want + want/histSub // ≤ 12.5% relative overestimate
		if got > limit {
			t.Fatalf("q=%v: estimate %v above %v (exact %v + 12.5%%)", q, got, limit, want)
		}
	}

	var sum time.Duration
	for _, d := range exact {
		sum += d
	}
	if s.Sum != sum {
		t.Fatalf("sum = %v, want %v", s.Sum, sum)
	}
	if mean := s.Mean(); mean != sum/time.Duration(len(exact)) {
		t.Fatalf("mean = %v, want %v", mean, sum/time.Duration(len(exact)))
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-time.Second) // clamps to zero
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("snapshot = %+v, want 2 zero samples", s)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("quantile of zeros = %v, want 0", q)
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count = %d", s.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := lcg(seed)
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.next() % uint64(time.Second)))
			}
		}(uint64(w + 1))
	}
	// Concurrent snapshots must stay internally consistent (bucket sum does
	// not exceed count seen after).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			var bucketTotal uint64
			for _, b := range s.Buckets {
				bucketTotal += b.Count
			}
			if bucketTotal > workers*per {
				t.Errorf("bucket total %d exceeds total observations", bucketTotal)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("final count = %d, want %d", s.Count, workers*per)
	}
}
