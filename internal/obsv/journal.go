package obsv

import (
	"fmt"
	"sync"
	"time"

	"zugchain/internal/crypto"
)

// EventKind classifies a consensus journal event.
type EventKind string

// Journal event kinds.
const (
	// EventRecovery: a restarting replica reconstructed state from disk.
	EventRecovery EventKind = "recovery"
	// EventNewPrimary: a view became active (view 0 at startup, or after
	// a view change — View > 0 entries are the primary elections).
	EventNewPrimary EventKind = "new-primary"
	// EventViewChangeSent: this replica gave up on the current primary
	// and broadcast a ViewChange.
	EventViewChangeSent EventKind = "view-change-sent"
	// EventWALRotation: the WAL compacted to a snapshot at a stable
	// checkpoint.
	EventWALRotation EventKind = "wal-rotation"
	// EventStateTransferNeeded: the quorum certified state beyond this
	// replica; a fetch was scheduled.
	EventStateTransferNeeded EventKind = "state-transfer-needed"
	// EventStateTransfer: transferred blocks were installed.
	EventStateTransfer EventKind = "state-transfer"
	// EventPersistFailure: the WAL rejected a protocol append; the
	// replica muted its outbound votes (sticky).
	EventPersistFailure EventKind = "persist-failure"
)

// Event is one structured consensus journal entry.
type Event struct {
	At   time.Time     `json:"at"`
	Kind EventKind     `json:"kind"`
	View uint64        `json:"view,omitempty"`
	Seq  uint64        `json:"seq,omitempty"`
	Node crypto.NodeID `json:"node,omitempty"`
	// Detail is free-form human-readable context.
	Detail string `json:"detail,omitempty"`
}

// String renders the event as one journal line.
func (e Event) String() string {
	s := fmt.Sprintf("%s %-21s view=%d seq=%d node=%v",
		e.At.Format("15:04:05.000"), e.Kind, e.View, e.Seq, e.Node)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// DefaultJournalSize is the journal's default event retention.
const DefaultJournalSize = 512

// Journal is a bounded ring of consensus events: view changes, primary
// elections, WAL rotations, state transfers, recovery outcomes. Recording
// is O(1) and allocation-free past the fixed ring; the oldest events are
// overwritten. All methods are nil-safe and safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	ring []Event
	n    uint64 // total recorded (monotonic)
}

// NewJournal returns a journal retaining size events (DefaultJournalSize
// when size <= 0).
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = DefaultJournalSize
	}
	return &Journal{ring: make([]Event, size)}
}

// Record appends one event, stamping At when unset.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	j.mu.Lock()
	j.ring[j.n%uint64(len(j.ring))] = e
	j.n++
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	size := uint64(len(j.ring))
	if j.n < size {
		size = j.n
	}
	out := make([]Event, 0, size)
	for i := uint64(0); i < size; i++ {
		out = append(out, j.ring[(j.n-size+i)%uint64(len(j.ring))])
	}
	return out
}

// Total reports how many events were recorded over the journal's lifetime
// (retained or overwritten).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// CountKind reports how many retained events have the given kind.
func (j *Journal) CountKind(kind EventKind) int {
	n := 0
	for _, e := range j.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// RegisterOn exports journal totals into a registry.
func (j *Journal) RegisterOn(r *Registry) {
	if j == nil {
		return
	}
	r.Register("journal", func() []Metric {
		return []Metric{
			{Name: "zugchain_events_total", Help: "Consensus journal events recorded", Value: float64(j.Total())},
		}
	})
}
