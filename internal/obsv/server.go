package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes an Observer over HTTP:
//
//	/metrics       Prometheus text exposition (all counter families +
//	               per-phase latency histograms)
//	/statusz       JSON snapshot (uptime, every metric, histogram summary)
//	/tracez        last-N record lifecycle traces + slow-record log (text)
//	/eventz        consensus event journal (text, ?json=1 for JSON)
//	/debug/pprof/  the standard Go profiler endpoints
//
// The server is read-only and unauthenticated: bind it to localhost or an
// operations network, as with any pprof endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the export server on addr (e.g. "127.0.0.1:9100").
func Serve(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(o), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the export mux for an observer (exposed separately so
// tests and embedding daemons can mount it).
func Handler(o *Observer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(statusSnapshot(o))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		writeTracez(w, o.Tracer)
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		events := o.Journal.Events()
		if r.URL.Query().Get("json") != "" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%d events (%d total recorded)\n", len(events), o.Journal.Total())
		for _, e := range events {
			fmt.Fprintln(w, e)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "zugchain observability: /metrics /statusz /tracez /eventz /debug/pprof/\n")
	})
	return mux
}

// histStatus summarizes one histogram for /statusz.
type histStatus struct {
	Count uint64  `json:"count"`
	Mean  string  `json:"mean"`
	P50   string  `json:"p50"`
	P99   string  `json:"p99"`
	Max   string  `json:"max"`
	SumS  float64 `json:"sum_seconds"`
}

func statusSnapshot(o *Observer) map[string]any {
	values := o.Registry.Values()
	ordered := make(map[string]float64, len(values))
	for _, k := range sortedKeys(values) {
		ordered[k] = values[k]
	}
	hists := make(map[string]histStatus)
	for _, name := range o.Registry.Histograms() {
		s, ok := o.Registry.Histogram(name)
		if !ok {
			continue
		}
		hists[name] = histStatus{
			Count: s.Count,
			Mean:  s.Mean().String(),
			P50:   s.Quantile(0.5).String(),
			P99:   s.Quantile(0.99).String(),
			Max:   s.Max.String(),
			SumS:  s.Sum.Seconds(),
		}
	}
	return map[string]any{
		"uptime":     o.Uptime().String(),
		"metrics":    ordered,
		"histograms": hists,
	}
}

func writeTracez(w http.ResponseWriter, t *Tracer) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if t == nil {
		fmt.Fprintln(w, "tracing disabled")
		return
	}
	traces := t.Traces()
	fmt.Fprintf(w, "%d traces retained (%d completed, %d evicted)\n\n",
		len(traces), t.Completed(), t.Evicted())
	fmt.Fprintln(w, "seq       digest    total      phases (latency from previous phase)")
	for i := len(traces) - 1; i >= 0; i-- { // newest first
		tr := traces[i]
		fmt.Fprintf(w, "%-9d %x  %-10v %s\n",
			tr.Seq, tr.Digest[:4], tr.Total().Round(time.Microsecond), tr.phaseSummary())
	}
	slow, total := t.SlowTraces()
	if total > 0 {
		fmt.Fprintf(w, "\n%d slow records (last %d retained):\n", total, len(slow))
		for i := len(slow) - 1; i >= 0; i-- {
			tr := slow[i]
			fmt.Fprintf(w, "%-9d %x  %-10v %s\n",
				tr.Seq, tr.Digest[:4], tr.Total().Round(time.Microsecond), tr.phaseSummary())
		}
	}
}
