package obsv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"zugchain/internal/crypto"
)

func digestFor(i int) crypto.Digest {
	return crypto.Hash([]byte(fmt.Sprintf("record-%d", i)))
}

func TestTracerLifecycleJoin(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 8})
	d := digestFor(1)

	tr.BeginRecord(d)
	tr.StampRecord(d, PhaseBatch)
	tr.StampSlot(7, PhasePrePrepare)
	tr.StampSlot(7, PhasePrepare)
	tr.StampSlot(7, PhaseCommit)
	tr.FinishRecord(d, 7)
	tr.Fsync(7)

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Digest != d || got.Seq != 7 {
		t.Fatalf("trace identity = (%x, %d), want (%x, 7)", got.Digest[:4], got.Seq, d[:4])
	}
	for p := PhaseIngest; p < numPhases; p++ {
		if got.Times[p].IsZero() {
			t.Fatalf("phase %v not stamped", p)
		}
	}
	// Stamps must be monotonically non-decreasing in pipeline order.
	for p := PhaseBatch; p < numPhases; p++ {
		if got.Times[p].Before(got.Times[p-1]) {
			t.Fatalf("phase %v (%v) before %v (%v)", p, got.Times[p], p-1, got.Times[p-1])
		}
	}
	if got.Total() <= 0 {
		t.Fatalf("total = %v, want > 0", got.Total())
	}
	if s := tr.TotalSnapshot(); s.Count != 1 {
		t.Fatalf("total histogram count = %d, want 1", s.Count)
	}
	if s := tr.PhaseSnapshot(PhaseFsync); s.Count != 1 {
		t.Fatalf("fsync histogram count = %d, want 1", s.Count)
	}
}

func TestTracerFirstWriteWins(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	d := digestFor(2)
	tr.BeginRecord(d)
	tr.StampRecord(d, PhaseBatch)
	first := time.Now()
	time.Sleep(time.Millisecond)
	tr.StampRecord(d, PhaseBatch) // retransmission: must not move the stamp
	tr.FinishRecord(d, 1)
	got := tr.Traces()[0]
	if got.Times[PhaseBatch].After(first) {
		t.Fatalf("batch stamp moved by re-stamp: %v after %v", got.Times[PhaseBatch], first)
	}
}

func TestTracerRingWraparound(t *testing.T) {
	const ring = 4
	tr := NewTracer(TracerOptions{Ring: ring})
	const total = 11
	for i := 0; i < total; i++ {
		d := digestFor(100 + i)
		tr.BeginRecord(d)
		tr.FinishRecord(d, uint64(i))
	}
	if got := tr.Completed(); got != total {
		t.Fatalf("completed = %d, want %d", got, total)
	}
	traces := tr.Traces()
	if len(traces) != ring {
		t.Fatalf("retained %d traces, want %d", len(traces), ring)
	}
	// Oldest-first: the retained window is the last `ring` finishes.
	for i, trc := range traces {
		want := uint64(total - ring + i)
		if trc.Seq != want {
			t.Fatalf("trace %d seq = %d, want %d", i, trc.Seq, want)
		}
	}
	// Fsync after wraparound must skip overwritten ring entries without
	// stamping the wrong trace.
	tr.Fsync(total)
	for _, trc := range tr.Traces() {
		if trc.Times[PhaseFsync].IsZero() {
			t.Fatalf("live trace seq=%d missed its fsync stamp", trc.Seq)
		}
	}
}

func TestTracerSlowLog(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 8, Slow: time.Nanosecond})
	tr.logSlow = false // keep the test log quiet; counting still runs
	for i := 0; i < 3; i++ {
		d := digestFor(200 + i)
		tr.BeginRecord(d)
		time.Sleep(10 * time.Microsecond) // total > 0 so the threshold fires
		tr.FinishRecord(d, uint64(i))
	}
	slow, total := tr.SlowTraces()
	if total != 3 || len(slow) != 3 {
		t.Fatalf("slow = (%d retained, %d total), want (3, 3)", len(slow), total)
	}
}

func TestTracerOpenEvictionBound(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 4})
	const extra = 64
	for i := 0; i < maxOpenRecords+extra; i++ {
		tr.BeginRecord(digestFor(1000 + i))
	}
	tr.mu.Lock()
	open := len(tr.open)
	tr.mu.Unlock()
	if open > maxOpenRecords {
		t.Fatalf("open records = %d, exceeds bound %d", open, maxOpenRecords)
	}
	if ev := tr.Evicted(); ev < extra {
		t.Fatalf("evicted = %d, want >= %d", ev, extra)
	}
	// An evicted (oldest) record finishing later is simply unknown: no
	// panic, no trace.
	tr.FinishRecord(digestFor(1000), 1)
	if got := tr.Completed(); got != 0 {
		t.Fatalf("completed = %d after finishing an evicted record, want 0", got)
	}
}

func TestTracerSlotEvictionBound(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	for i := 0; i < maxOpenSlots+32; i++ {
		tr.StampSlot(uint64(i), PhasePrePrepare)
	}
	tr.mu.Lock()
	slots := len(tr.slots)
	tr.mu.Unlock()
	if slots > maxOpenSlots {
		t.Fatalf("open slots = %d, exceeds bound %d", slots, maxOpenSlots)
	}
}

func TestTracerUnknownDigestIgnored(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	tr.FinishRecord(digestFor(9999), 1) // never begun (e.g. state transfer)
	if got := tr.Completed(); got != 0 {
		t.Fatalf("completed = %d, want 0", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	d := digestFor(3)
	tr.BeginRecord(d)
	tr.StampRecord(d, PhaseBatch)
	tr.StampSlot(1, PhaseCommit)
	tr.FinishRecord(d, 1)
	tr.Fsync(1)
	if tr.Traces() != nil || tr.Completed() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
	if s, n := tr.SlowTraces(); s != nil || n != 0 {
		t.Fatal("nil tracer must have no slow traces")
	}
	if s := tr.TotalSnapshot(); s.Count != 0 {
		t.Fatal("nil tracer snapshot must be empty")
	}
}

// TestTracerConcurrent exercises the full stamp surface from many
// goroutines; run under -race this is the data-race check for the tracer.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{Ring: 64, Slow: time.Hour})
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d := digestFor(w*per + i)
				seq := uint64(w*per + i)
				tr.BeginRecord(d)
				tr.StampRecord(d, PhaseBatch)
				tr.StampSlot(seq, PhasePrePrepare)
				tr.StampSlot(seq, PhaseCommit)
				tr.FinishRecord(d, seq)
				if i%64 == 0 {
					tr.Fsync(seq)
					tr.Traces()
					tr.TotalSnapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Completed(); got != workers*per {
		t.Fatalf("completed = %d, want %d", got, workers*per)
	}
}
