package obsv

import (
	"runtime"

	"zugchain/internal/metrics"
)

// This file adapts every existing counter family to registry sources. Each
// Register* helper installs one named source whose closure snapshots the
// family's atomics on demand — registration happens once at wiring time,
// scrapes pay only the atomic loads.

// RegisterCore registers the communication layer's counters (Fig 6/7's
// message and request accounting).
func RegisterCore(r *Registry, c *metrics.Counters) {
	r.Register("core", func() []Metric {
		s := c.Snapshot()
		return []Metric{
			{Name: "zugchain_core_msgs_sent_total", Help: "Layer messages sent", Value: float64(s.MsgsSent)},
			{Name: "zugchain_core_msgs_received_total", Help: "Layer messages received", Value: float64(s.MsgsReceived)},
			{Name: "zugchain_core_bytes_sent_total", Help: "Layer bytes sent", Value: float64(s.BytesSent)},
			{Name: "zugchain_core_bytes_received_total", Help: "Layer bytes received", Value: float64(s.BytesReceived)},
			{Name: "zugchain_core_signatures_total", Help: "Signatures generated", Value: float64(s.Signatures)},
			{Name: "zugchain_core_verifications_total", Help: "Signatures verified", Value: float64(s.Verifications)},
			{Name: "zugchain_core_ordered_total", Help: "Requests ordered and logged", Value: float64(s.Requests)},
			{Name: "zugchain_core_duplicates_total", Help: "Duplicate requests filtered", Value: float64(s.Duplicates)},
		}
	})
}

// RegisterBatch registers the primary's request-coalescing counters.
func RegisterBatch(r *Registry, b *metrics.BatchCounters) {
	r.Register("batch", func() []Metric {
		s := b.Snapshot()
		return []Metric{
			{Name: "zugchain_batch_flushes_total", Help: "Proposal batches flushed", Value: float64(s.Flushes)},
			{Name: "zugchain_batch_records_total", Help: "Records carried by flushed batches", Value: float64(s.Records)},
			{Name: "zugchain_batch_size_flushes_total", Help: "Flushes triggered by the size limit", Value: float64(s.SizeFlushes)},
			{Name: "zugchain_batch_delay_flushes_total", Help: "Flushes triggered by the delay timer", Value: float64(s.DelayFlushes)},
			{Name: "zugchain_batch_max_size", Help: "Largest single flush", Kind: KindGauge, Value: float64(s.MaxSize)},
			{Name: "zugchain_batch_wait_max_seconds", Help: "Longest batching wait", Kind: KindGauge, Value: s.WaitMax.Seconds()},
		}
	})
}

// RegisterPool registers the verification pipeline's counters.
func RegisterPool(r *Registry, snap func() metrics.PoolSnapshot) {
	r.Register("pool", func() []Metric {
		s := snap()
		return []Metric{
			{Name: "zugchain_pool_offloaded_total", Help: "Tasks run on pool workers", Value: float64(s.Offloaded)},
			{Name: "zugchain_pool_inline_total", Help: "Tasks run inline on the submitter", Value: float64(s.Inline)},
			{Name: "zugchain_pool_panics_total", Help: "Task panics contained by workers", Value: float64(s.Panics)},
			{Name: "zugchain_pool_queue_depth", Help: "Instantaneous task queue depth", Kind: KindGauge, Value: float64(s.QueueDepth)},
			{Name: "zugchain_pool_queue_peak", Help: "Peak task queue depth", Kind: KindGauge, Value: float64(s.QueuePeak)},
			{Name: "zugchain_pool_task_max_seconds", Help: "Longest task submit-to-completion latency", Kind: KindGauge, Value: s.TaskMax.Seconds()},
		}
	})
}

// RegisterCrypto registers the Ed25519 acceleration counters (batch
// verification shape, verified-signature cache traffic).
func RegisterCrypto(r *Registry, c *metrics.CryptoCounters) {
	r.Register("crypto", func() []Metric {
		s := c.Snapshot()
		return []Metric{
			{Name: "zugchain_crypto_scalar_verifies_total", Help: "Individual signature verifications", Value: float64(s.ScalarVerifies)},
			{Name: "zugchain_crypto_batched_sigs_total", Help: "Signatures settled via batch equations", Value: float64(s.BatchedSigs)},
			{Name: "zugchain_crypto_batch_ops_total", Help: "Batch equations evaluated", Value: float64(s.BatchOps)},
			{Name: "zugchain_crypto_batch_max", Help: "Largest single batch equation", Kind: KindGauge, Value: float64(s.BatchMax)},
			{Name: "zugchain_crypto_bisections_total", Help: "Bisection splits hunting corrupt signatures", Value: float64(s.Bisections)},
			{Name: "zugchain_crypto_cache_hits_total", Help: "Verified-signature cache hits", Value: float64(s.CacheHits)},
			{Name: "zugchain_crypto_cache_misses_total", Help: "Verified-signature cache misses", Value: float64(s.CacheMisses)},
			{Name: "zugchain_crypto_cache_evictions_total", Help: "Verified-signature cache evictions", Value: float64(s.CacheEvictions)},
		}
	})
}

// RegisterNet registers a transport's outbound-pipeline counters.
func RegisterNet(r *Registry, n *metrics.NetCounters) {
	r.Register("net", func() []Metric {
		s := n.Snapshot()
		return []Metric{
			{Name: "zugchain_net_enqueued_total", Help: "Frames accepted into send queues", Value: float64(s.Enqueued)},
			{Name: "zugchain_net_drops_total", Help: "Frames dropped by queue overflow", Value: float64(s.Drops)},
			{Name: "zugchain_net_write_errors_total", Help: "Frames lost to failed connection writes", Value: float64(s.WriteErrors)},
			{Name: "zugchain_net_write_ops_total", Help: "Write syscalls issued", Value: float64(s.WriteOps)},
			{Name: "zugchain_net_frames_total", Help: "Frames carried by write syscalls", Value: float64(s.Frames)},
			{Name: "zugchain_net_redials_total", Help: "Background reconnection attempts", Value: float64(s.Redials)},
			{Name: "zugchain_net_queue_depth", Help: "Instantaneous outbound backlog", Kind: KindGauge, Value: float64(s.QueueDepth)},
			{Name: "zugchain_net_queue_peak", Help: "Peak outbound backlog", Kind: KindGauge, Value: float64(s.QueuePeak)},
		}
	})
}

// RegisterWAL registers the consensus write-ahead log's counters.
func RegisterWAL(r *Registry, w *metrics.WALCounters) {
	r.Register("wal", func() []Metric {
		s := w.Snapshot()
		return []Metric{
			{Name: "zugchain_wal_groups_total", Help: "Fsynced WAL append groups", Value: float64(s.Groups)},
			{Name: "zugchain_wal_records_total", Help: "Records carried by append groups", Value: float64(s.Records)},
			{Name: "zugchain_wal_bytes_total", Help: "Payload bytes appended", Value: float64(s.Bytes)},
			{Name: "zugchain_wal_rotations_total", Help: "Checkpoint-triggered segment rotations", Value: float64(s.Rotations)},
			{Name: "zugchain_wal_replayed_total", Help: "Records replayed by recovery on open", Value: float64(s.Replayed)},
			{Name: "zugchain_wal_truncated_bytes_total", Help: "Corrupt tail bytes discarded by recovery", Value: float64(s.TruncatedBytes)},
		}
	})
}

// RegisterGroupCommit registers the blockchain store's group-commit writer
// counters.
func RegisterGroupCommit(r *Registry, g *metrics.GroupCommitCounters) {
	r.Register("store", func() []Metric {
		s := g.Snapshot()
		return []Metric{
			{Name: "zugchain_store_groups_total", Help: "Fsynced block write groups", Value: float64(s.Groups)},
			{Name: "zugchain_store_blocks_total", Help: "Blocks covered by write groups", Value: float64(s.Blocks)},
			{Name: "zugchain_store_syncs_total", Help: "Explicit Sync barriers", Value: float64(s.Syncs)},
		}
	})
}

// RegisterRuntime registers Go runtime gauges (the paper's memory proxy,
// Fig 7) plus goroutine count.
func RegisterRuntime(r *Registry) {
	r.Register("runtime", func() []Metric {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return []Metric{
			{Name: "zugchain_go_heap_alloc_bytes", Help: "Live heap bytes", Kind: KindGauge, Value: float64(ms.HeapAlloc)},
			{Name: "zugchain_go_total_alloc_bytes", Help: "Cumulative heap bytes allocated", Value: float64(ms.TotalAlloc)},
			{Name: "zugchain_go_gc_total", Help: "Completed GC cycles", Value: float64(ms.NumGC)},
			{Name: "zugchain_go_goroutines", Help: "Live goroutines", Kind: KindGauge, Value: float64(runtime.NumGoroutine())},
		}
	})
}
