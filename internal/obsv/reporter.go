package obsv

import (
	"fmt"
	"log"
	"strings"
	"time"
)

// Reporter is the shared periodic stats ticker all daemons print through —
// one implementation instead of the per-command copy-pasted ticker loops.
// Interval <= 0 disables it entirely (Stop stays safe to call), preserving
// the commands' "0 = off" flag semantics.
type Reporter struct {
	quit chan struct{}
	done chan struct{}
	off  bool
}

// NewReporter starts a ticker that calls line every interval and logs the
// result through logf (log.Printf when nil). Lines returning "" are
// skipped.
func NewReporter(interval time.Duration, line func() string, logf func(format string, args ...any)) *Reporter {
	r := &Reporter{quit: make(chan struct{}), done: make(chan struct{})}
	if interval <= 0 {
		r.off = true
		close(r.done)
		return r
	}
	if logf == nil {
		logf = log.Printf
	}
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.quit:
				return
			case <-ticker.C:
				if s := line(); s != "" {
					logf("%s", s)
				}
			}
		}
	}()
	return r
}

// Stop halts the ticker and waits for the loop to exit.
func (r *Reporter) Stop() {
	if r.off {
		return
	}
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
	<-r.done
}

// Summary renders one compact stats line from whatever families are
// registered in an observer — absent families are simply omitted, so the
// same formatter serves a full replica, the in-process simulation, and the
// data center daemon.
func Summary(o *Observer) string {
	v := o.Registry.Values()
	var b strings.Builder

	has := func(name string) bool { _, ok := v[name]; return ok }
	n := func(name string) uint64 { return uint64(v[name]) }

	if has("zugchain_chain_height") {
		fmt.Fprintf(&b, "height=%d base=%d", n("zugchain_chain_height"), n("zugchain_chain_base"))
	}
	if has("zugchain_core_ordered_total") {
		sep(&b)
		fmt.Fprintf(&b, "ordered=%d dup=%d open=%d",
			n("zugchain_core_ordered_total"), n("zugchain_core_duplicates_total"), n("zugchain_chain_open"))
	}
	if s, ok := o.Registry.Histogram("zugchain_trace_total_seconds"); ok && s.Count > 0 {
		sep(&b)
		fmt.Fprintf(&b, "lat(p50=%v p99=%v)",
			s.Quantile(0.5).Round(time.Microsecond), s.Quantile(0.99).Round(time.Microsecond))
	}
	if has("zugchain_net_enqueued_total") {
		sep(&b)
		fmt.Fprintf(&b, "net(q=%d drop=%d redial=%d)",
			n("zugchain_net_queue_depth"),
			n("zugchain_net_drops_total")+n("zugchain_net_write_errors_total"),
			n("zugchain_net_redials_total"))
	}
	if has("zugchain_crypto_scalar_verifies_total") {
		sep(&b)
		hits, misses := n("zugchain_crypto_cache_hits_total"), n("zugchain_crypto_cache_misses_total")
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses) * 100
		}
		fmt.Fprintf(&b, "crypto(batched=%d scalar=%d cache-hit=%.0f%%)",
			n("zugchain_crypto_batched_sigs_total"), n("zugchain_crypto_scalar_verifies_total"), rate)
	}
	if has("zugchain_wal_groups_total") {
		sep(&b)
		fmt.Fprintf(&b, "wal(groups=%d recs=%d rot=%d)",
			n("zugchain_wal_groups_total"), n("zugchain_wal_records_total"), n("zugchain_wal_rotations_total"))
	}
	if has("zugchain_events_total") && n("zugchain_events_total") > 0 {
		sep(&b)
		fmt.Fprintf(&b, "events=%d", n("zugchain_events_total"))
	}
	return b.String()
}

func sep(b *strings.Builder) {
	if b.Len() > 0 {
		b.WriteByte(' ')
	}
}
