package obsv

import (
	"time"
)

// Options parameterizes an Observer.
type Options struct {
	// TraceRing is the completed-trace retention (default
	// DefaultTraceRing); TraceSlow the slow-record threshold (0 = no slow
	// log).
	TraceRing int
	TraceSlow time.Duration
	// DisableTrace turns lifecycle tracing off entirely (the Tracer field
	// is nil; all stamp calls no-op). For A/B overhead measurement.
	DisableTrace bool
	// JournalSize is the consensus event retention (default
	// DefaultJournalSize).
	JournalSize int
}

// Observer bundles one process's observability state: the metrics registry,
// the record lifecycle tracer, and the consensus event journal. A node (or
// a daemon without a node, like zc-datacenter) builds one and registers its
// counter families into Registry; the HTTP server and the stats reporter
// read from it.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer // nil when tracing is disabled
	Journal  *Journal

	start time.Time
}

// NewObserver builds an observer with runtime, tracer, and journal sources
// pre-registered.
func NewObserver(opts Options) *Observer {
	o := &Observer{
		Registry: NewRegistry(),
		Journal:  NewJournal(opts.JournalSize),
		start:    time.Now(),
	}
	if !opts.DisableTrace {
		o.Tracer = NewTracer(TracerOptions{Ring: opts.TraceRing, Slow: opts.TraceSlow})
		o.Tracer.RegisterOn(o.Registry)
	}
	o.Journal.RegisterOn(o.Registry)
	RegisterRuntime(o.Registry)
	return o
}

// Uptime reports how long the observer has existed.
func (o *Observer) Uptime() time.Duration { return time.Since(o.start) }
