package obsv

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing scheme: log-linear (HDR-style). Values are nanosecond
// durations. Each power-of-two octave is split into histSub equal-width
// sub-buckets, so the relative width of any bucket — and therefore the worst
// case error of a quantile read against the exact distribution — is bounded
// by 1/histSub = 12.5%. Index arithmetic is two shifts and a mask; no
// floating point, no math.Log on the hot path.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave

	// histBuckets covers every non-negative int64 nanosecond value:
	// the largest index is reached at v = 2^62..2^63-1 (octave 62).
	histBuckets = (63-histSubBits+1)*histSub + histSub

	// histStripes spreads concurrent writers over independent counter
	// arrays (each cache-line padded) so a flood of Observe calls from
	// many cores does not serialize on one set of cache lines.
	histStripes = 4
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v) // linear region: singleton buckets
	}
	octave := uint(bits.Len64(v) - 1)
	return int((octave-histSubBits+1)*histSub + uint((v>>(octave-histSubBits))&(histSub-1)))
}

// bucketUpper returns the inclusive upper bound of bucket idx in nanoseconds.
func bucketUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	block := uint(idx >> histSubBits)
	m := uint64(idx & (histSub - 1))
	shift := block - 1
	return ((histSub + m + 1) << shift) - 1
}

// histStripe is one writer lane. The padding keeps stripes on separate cache
// lines so writers in different lanes never false-share.
type histStripe struct {
	_       [8]uint64
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
	maxNs   atomic.Int64
	_pad    [8]uint64
}

// Histogram is a bounded, striped, log-bucketed latency histogram. Observe
// is wait-free (a handful of atomic adds); memory is fixed at construction
// regardless of how many samples are recorded — the property that lets it
// replace sample-hoarding on paths that run for days. The zero value is
// ready to use.
type Histogram struct {
	stripes [histStripes]histStripe
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration sample. Negative durations clamp to zero.
// Nil-safe: a nil receiver records nothing.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	// Stripe selection: a multiplicative hash of the value spreads
	// concurrent writers with differing samples across lanes without any
	// shared state of its own. Identical values landing on one lane is
	// acceptable — atomic adds to the same bucket stay correct.
	s := &h.stripes[(v*0x9E3779B97F4A7C15)>>62&(histStripes-1)]
	s.buckets[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sumNs.Add(v)
	nv := int64(v)
	for {
		cur := s.maxNs.Load()
		if nv <= cur || s.maxNs.CompareAndSwap(cur, nv) {
			return
		}
	}
}

// HistBucket is one non-empty bucket of a snapshot: Count samples at or
// below Upper (and above the previous bucket's Upper).
type HistBucket struct {
	Upper time.Duration
	Count uint64
}

// HistSnapshot is a point-in-time merge of all stripes.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets []HistBucket // non-empty buckets in ascending Upper order
}

// Snapshot merges the stripes into one distribution. A nil receiver yields
// the zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var merged [histBuckets]uint64
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		s.Sum += time.Duration(st.sumNs.Load())
		if m := time.Duration(st.maxNs.Load()); m > s.Max {
			s.Max = m
		}
		for b := range st.buckets {
			if c := st.buckets[b].Load(); c > 0 {
				merged[b] += c
			}
		}
	}
	for b, c := range merged {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Upper: time.Duration(bucketUpper(b)), Count: c})
		}
	}
	return s
}

// Mean returns the arithmetic mean of the recorded samples.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket holding that rank — an overestimate by at most one bucket width
// (12.5% relative). Out-of-range q clamps.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > rank {
			if b.Upper > s.Max {
				return s.Max // the true max is a tighter bound
			}
			return b.Upper
		}
	}
	return s.Max
}
