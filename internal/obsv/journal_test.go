package obsv

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalRecordAndWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Event{Kind: EventWALRotation, Seq: uint64(i)})
	}
	if got := j.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	events := j.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
		if e.At.IsZero() {
			t.Fatalf("event %d missing auto timestamp", i)
		}
	}
}

func TestJournalCountKind(t *testing.T) {
	j := NewJournal(8)
	j.Record(Event{Kind: EventViewChangeSent, View: 1})
	j.Record(Event{Kind: EventNewPrimary, View: 1})
	j.Record(Event{Kind: EventViewChangeSent, View: 2})
	if got := j.CountKind(EventViewChangeSent); got != 2 {
		t.Fatalf("view-change count = %d, want 2", got)
	}
	if got := j.CountKind(EventRecovery); got != 0 {
		t.Fatalf("recovery count = %d, want 0", got)
	}
}

func TestJournalEventString(t *testing.T) {
	e := Event{
		At:     time.Date(2026, 8, 8, 12, 30, 45, 123e6, time.UTC),
		Kind:   EventNewPrimary,
		View:   3,
		Seq:    42,
		Node:   1,
		Detail: "after timeout",
	}
	s := e.String()
	for _, want := range []string{"12:30:45.123", "new-primary", "view=3", "seq=42", "after timeout"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event line %q missing %q", s, want)
		}
	}
}

func TestJournalEventJSON(t *testing.T) {
	e := Event{Kind: EventStateTransfer, Seq: 7, Detail: "installed 3 blocks"}
	e.At = time.Unix(100, 0)
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != e.Kind || back.Seq != e.Seq || back.Detail != e.Detail {
		t.Fatalf("round trip = %+v, want %+v", back, e)
	}
	// omitempty keeps quiet fields out of the wire form.
	if strings.Contains(string(raw), "view") {
		t.Fatalf("zero view serialized: %s", raw)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: EventRecovery})
	if j.Events() != nil || j.Total() != 0 || j.CountKind(EventRecovery) != 0 {
		t.Fatal("nil journal must report nothing")
	}
	j.RegisterOn(NewRegistry()) // must not panic
}

func TestJournalRegisterOn(t *testing.T) {
	j := NewJournal(0)
	r := NewRegistry()
	j.RegisterOn(r)
	j.Record(Event{Kind: EventWALRotation})
	j.Record(Event{Kind: EventNewPrimary})
	if v := r.Values(); v["zugchain_events_total"] != 2 {
		t.Fatalf("zugchain_events_total = %v, want 2", v["zugchain_events_total"])
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Record(Event{Kind: EventWALRotation, Seq: uint64(w*200 + i)})
				if i%32 == 0 {
					j.Events()
					j.Total()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := j.Total(); got != 8*200 {
		t.Fatalf("total = %d, want %d", got, 8*200)
	}
	if got := len(j.Events()); got != 64 {
		t.Fatalf("retained = %d, want 64", got)
	}
}
