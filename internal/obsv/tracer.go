package obsv

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"zugchain/internal/crypto"
)

// Phase enumerates a record's lifecycle transitions through the ordering
// pipeline (Fig 3 left to right).
type Phase uint8

// Lifecycle phases, in pipeline order.
const (
	// PhaseIngest: the record was first seen (bus read or peer broadcast)
	// and admitted into the request queue R.
	PhaseIngest Phase = iota
	// PhaseBatch: the record entered a proposal (the primary's batch, or a
	// direct unbatched proposal).
	PhaseBatch
	// PhasePrePrepare: the slot's preprepare was accepted (this replica
	// proposed, or voted prepare on the primary's proposal).
	PhasePrePrepare
	// PhasePrepare: the slot gathered a prepared certificate (the commit
	// vote left).
	PhasePrepare
	// PhaseCommit: the slot committed; delivery began.
	PhaseCommit
	// PhaseExecute: the record was deduplicated and logged to the block
	// builder (the LOG up-call).
	PhaseExecute
	// PhaseFsync: the record's block was sealed and fsync'd at a
	// checkpoint boundary.
	PhaseFsync

	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIngest:
		return "ingest"
	case PhaseBatch:
		return "batch"
	case PhasePrePrepare:
		return "preprepare"
	case PhasePrepare:
		return "prepare"
	case PhaseCommit:
		return "commit"
	case PhaseExecute:
		return "execute"
	case PhaseFsync:
		return "fsync"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Trace is one record's completed lifecycle: per-phase wall-clock stamps
// (zero = the phase was not observed on this replica; a backup that never
// proposed a record has no batch stamp).
type Trace struct {
	Digest crypto.Digest
	Seq    uint64
	Times  [numPhases]time.Time
}

// Total is ingest-to-execute: the end-to-end ordering latency this replica
// observed for the record.
func (t *Trace) Total() time.Duration {
	if t.Times[PhaseIngest].IsZero() || t.Times[PhaseExecute].IsZero() {
		return 0
	}
	return t.Times[PhaseExecute].Sub(t.Times[PhaseIngest])
}

// Bounds on the tracer's auxiliary state. Records stuck in flight (ordered
// by another replica first, dropped by a faulty primary) and slots whose
// records all deduplicated would otherwise accumulate; both tables evict
// oldest-first past these limits, counting the evictions.
const (
	DefaultTraceRing = 256
	maxOpenRecords   = 8192
	maxOpenSlots     = 4096
)

// Tracer stamps each record's lifecycle transitions and aggregates them
// into per-phase latency histograms, a ring of the last N completed traces,
// and a slow-record log. All methods are nil-safe (a nil *Tracer records
// nothing) and safe for concurrent use. Aggregate state is fixed-size:
// histograms are bounded buckets, traces live in rings, and the in-flight
// tables are eviction-bounded, so tracing a node for a month costs the same
// memory as tracing it for a minute.
type Tracer struct {
	slow time.Duration

	// phaseHist[p] holds the latency from the previous observed phase to
	// p; total is ingest-to-execute, fsync is execute-to-fsync per block.
	phaseHist [numPhases]*Histogram
	total     *Histogram

	mu    sync.Mutex
	open  map[crypto.Digest]*openTrace // in-flight records
	openQ []crypto.Digest              // eviction order for open
	slots map[uint64]*slotTimes        // in-flight slot stamps
	slotQ []uint64                     // eviction order for slots

	ring    []Trace // completed traces, ring[ringN % len] is next
	ringN   uint64  // completed count (monotonic)
	slowLog []Trace // last completed traces above the slow threshold
	slowN   uint64

	// pendingFsync references completed ring entries whose block has not
	// fsync'd yet: (ring position, seq). Resolved at the next checkpoint.
	pendingFsync []fsyncRef

	evicted   atomic.Uint64
	slowTotal atomic.Uint64
	logSlow   bool
}

type openTrace struct {
	times [numPhases]time.Time
}

type slotTimes struct {
	times [numPhases]time.Time
}

type fsyncRef struct {
	pos uint64 // absolute ring position (ringN at completion)
	seq uint64
}

// TracerOptions parameterizes a Tracer.
type TracerOptions struct {
	// Ring is the number of completed traces retained for /tracez
	// (default DefaultTraceRing).
	Ring int
	// Slow, when positive, marks records whose ingest-to-execute latency
	// meets the threshold: they are retained in a separate ring, counted,
	// and logged.
	Slow time.Duration
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Ring <= 0 {
		opts.Ring = DefaultTraceRing
	}
	t := &Tracer{
		slow:    opts.Slow,
		total:   NewHistogram(),
		open:    make(map[crypto.Digest]*openTrace),
		slots:   make(map[uint64]*slotTimes),
		ring:    make([]Trace, opts.Ring),
		slowLog: make([]Trace, 32),
		logSlow: opts.Slow > 0,
	}
	for p := range t.phaseHist {
		t.phaseHist[p] = NewHistogram()
	}
	return t
}

// BeginRecord stamps a record's ingest: it was admitted into the request
// queue. Re-begin of an already-open digest keeps the original stamp.
func (t *Tracer) BeginRecord(d crypto.Digest) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.open[d]; ok {
		return
	}
	for len(t.open) >= maxOpenRecords && len(t.openQ) > 0 {
		// Evict the oldest in-flight record; its trace is lost, which is
		// the bounded-memory deal. Queue heads whose digest already
		// finished (lazy removal) are skipped without counting.
		victim := t.openQ[0]
		t.openQ = t.openQ[1:]
		if _, live := t.open[victim]; live {
			delete(t.open, victim)
			t.evicted.Add(1)
		}
	}
	ot := &openTrace{}
	ot.times[PhaseIngest] = now
	t.open[d] = ot
	t.openQ = append(t.openQ, d)
}

// StampRecord stamps a record-level phase (PhaseBatch). First write wins.
func (t *Tracer) StampRecord(d crypto.Digest, p Phase) {
	if t == nil || p >= numPhases {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if ot, ok := t.open[d]; ok && ot.times[p].IsZero() {
		ot.times[p] = now
	}
}

// StampSlot stamps a slot-level phase (PhasePrePrepare, PhasePrepare,
// PhaseCommit): these transitions happen per agreement slot, and every
// record carried by the slot inherits them when it finishes. First write
// wins (a retransmitted vote must not move the stamp).
func (t *Tracer) StampSlot(seq uint64, p Phase) {
	if t == nil || p >= numPhases {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.slots[seq]
	if !ok {
		if len(t.slotQ) >= maxOpenSlots {
			victim := t.slotQ[0]
			t.slotQ = t.slotQ[1:]
			delete(t.slots, victim)
			t.evicted.Add(1)
		}
		st = &slotTimes{}
		t.slots[seq] = st
		t.slotQ = append(t.slotQ, seq)
	}
	if st.times[p].IsZero() {
		st.times[p] = now
	}
}

// FinishRecord stamps a record's execute (the LOG up-call at slot seq),
// joins the slot-level stamps into its trace, feeds the per-phase
// histograms, and retires the trace into the completed ring. Unknown
// digests (records this replica never ingested — e.g. installed by state
// transfer) are ignored.
func (t *Tracer) FinishRecord(d crypto.Digest, seq uint64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	ot, ok := t.open[d]
	if !ok {
		return
	}
	delete(t.open, d)
	// Lazy removal from openQ: entries whose digest is gone from the map
	// are skipped at eviction time. Compact here only when the queue has
	// drifted far from the map (bounded amortized cost).
	if len(t.openQ) > 2*len(t.open)+64 {
		q := t.openQ[:0]
		for _, od := range t.openQ {
			if _, live := t.open[od]; live {
				q = append(q, od)
			}
		}
		t.openQ = q
	}

	tr := Trace{Digest: d, Seq: seq, Times: ot.times}
	tr.Times[PhaseExecute] = now
	if st, ok := t.slots[seq]; ok {
		for _, p := range []Phase{PhasePrePrepare, PhasePrepare, PhaseCommit} {
			if tr.Times[p].IsZero() {
				tr.Times[p] = st.times[p]
			}
		}
	}

	// Per-phase histograms: latency from the previous observed phase.
	prev := tr.Times[PhaseIngest]
	for p := PhaseBatch; p <= PhaseExecute; p++ {
		cur := tr.Times[p]
		if cur.IsZero() || prev.IsZero() {
			continue
		}
		if d := cur.Sub(prev); d >= 0 {
			t.phaseHist[p].Observe(d)
		}
		prev = cur
	}
	if total := tr.Total(); total > 0 {
		t.total.Observe(total)
		if t.slow > 0 && total >= t.slow {
			t.slowLog[t.slowN%uint64(len(t.slowLog))] = tr
			t.slowN++
			t.slowTotal.Add(1)
			if t.logSlow {
				log.Printf("obsv: slow record %x seq=%d total=%v (%s)",
					tr.Digest[:4], tr.Seq, total.Round(time.Microsecond), tr.phaseSummary())
			}
		}
	}

	pos := t.ringN
	t.ring[pos%uint64(len(t.ring))] = tr
	t.ringN++
	t.pendingFsync = append(t.pendingFsync, fsyncRef{pos: pos, seq: seq})
	if len(t.pendingFsync) > len(t.ring) {
		t.pendingFsync = t.pendingFsync[len(t.pendingFsync)-len(t.ring):]
	}
}

// Fsync stamps the execute-to-fsync transition for every completed record
// at or below seq whose block just became durable, and garbage-collects
// slot stamps at or below seq (their records are all retired).
func (t *Tracer) Fsync(seq uint64) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	keep := t.pendingFsync[:0]
	for _, ref := range t.pendingFsync {
		if ref.seq > seq {
			keep = append(keep, ref)
			continue
		}
		// Still in the ring? ring positions [ringN-len, ringN) are live.
		if ref.pos+uint64(len(t.ring)) < t.ringN {
			continue
		}
		tr := &t.ring[ref.pos%uint64(len(t.ring))]
		if tr.Times[PhaseFsync].IsZero() && !tr.Times[PhaseExecute].IsZero() {
			tr.Times[PhaseFsync] = now
			t.phaseHist[PhaseFsync].Observe(now.Sub(tr.Times[PhaseExecute]))
		}
	}
	t.pendingFsync = keep

	q := t.slotQ[:0]
	for _, s := range t.slotQ {
		if s <= seq {
			delete(t.slots, s)
		} else {
			q = append(q, s)
		}
	}
	t.slotQ = q
}

// phaseSummary renders a trace's observed inter-phase latencies (callers
// hold no lock; Trace is a value).
func (t *Trace) phaseSummary() string {
	out := ""
	prev := t.Times[PhaseIngest]
	for p := PhaseBatch; p < numPhases; p++ {
		cur := t.Times[p]
		if cur.IsZero() || prev.IsZero() {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", p, cur.Sub(prev).Round(time.Microsecond))
		prev = cur
	}
	return out
}

// Traces returns the last completed traces, oldest first.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.ring, t.ringN)
}

// SlowTraces returns the retained slow traces, oldest first, and the total
// number of slow records observed.
func (t *Tracer) SlowTraces() ([]Trace, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return ringCopy(t.slowLog, t.slowN), t.slowTotal.Load()
}

func ringCopy(ring []Trace, n uint64) []Trace {
	size := uint64(len(ring))
	if n < size {
		size = n
	}
	out := make([]Trace, 0, size)
	for i := uint64(0); i < size; i++ {
		out = append(out, ring[(n-size+i)%uint64(len(ring))])
	}
	return out
}

// Completed reports how many traces finished; Evicted how many in-flight
// entries the bounds discarded.
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ringN
}

// Evicted reports in-flight records/slots dropped by the memory bounds.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// PhaseSnapshot returns the latency histogram for one phase transition.
func (t *Tracer) PhaseSnapshot(p Phase) HistSnapshot {
	if t == nil || p >= numPhases {
		return HistSnapshot{}
	}
	return t.phaseHist[p].Snapshot()
}

// TotalSnapshot returns the ingest-to-execute latency histogram.
func (t *Tracer) TotalSnapshot() HistSnapshot {
	if t == nil {
		return HistSnapshot{}
	}
	return t.total.Snapshot()
}

// RegisterOn exports the tracer's histograms and counters into a registry.
func (t *Tracer) RegisterOn(r *Registry) {
	if t == nil {
		return
	}
	for p := PhaseBatch; p < numPhases; p++ {
		name := fmt.Sprintf("zugchain_trace_%s_seconds", p)
		r.RegisterHistogram(name, "Latency from the previous lifecycle phase to "+p.String(), t.phaseHist[p])
	}
	r.RegisterHistogram("zugchain_trace_total_seconds", "Ingest-to-execute record latency", t.total)
	r.Register("tracer", func() []Metric {
		t.mu.Lock()
		completed := t.ringN
		inflight := len(t.open)
		t.mu.Unlock()
		return []Metric{
			{Name: "zugchain_trace_completed_total", Help: "Records with completed traces", Value: float64(completed)},
			{Name: "zugchain_trace_inflight", Help: "Records currently in flight", Kind: KindGauge, Value: float64(inflight)},
			{Name: "zugchain_trace_slow_total", Help: "Records above the slow threshold", Value: float64(t.slowTotal.Load())},
			{Name: "zugchain_trace_evicted_total", Help: "In-flight trace entries evicted by memory bounds", Value: float64(t.evicted.Load())},
		}
	})
}
