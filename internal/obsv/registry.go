// Package obsv is ZugChain's unified observability layer: a metrics
// registry every counter family self-registers into, bounded log-bucketed
// latency histograms, per-record lifecycle tracing through the ordering
// pipeline, a consensus event journal, an HTTP export server (Prometheus
// text, JSON status, pprof), and the shared stats reporter the daemons
// print through. Everything on a hot path is atomic counters and ring
// buffers; nothing here grows with the number of records ordered.
package obsv

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MetricKind distinguishes how an exported series behaves.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota // monotonically increasing
	KindGauge                     // instantaneous value
)

// Metric is one exported sample. Name must be a valid Prometheus metric
// name (snake_case, typically prefixed zugchain_); Labels, when non-empty,
// is the label body without braces, e.g. `phase="commit"`.
type Metric struct {
	Name   string
	Help   string
	Kind   MetricKind
	Labels string
	Value  float64
}

// Source produces a family's current samples. Sources must be safe to call
// concurrently (all counter families snapshot atomics, so this is free).
type Source func() []Metric

// Registry maps family names to snapshot functions. Counter families
// self-register once at wiring time; Gather and WritePrometheus then pull a
// consistent point-in-time view on every scrape. Registering a name again
// replaces the previous source (a restarted subsystem re-registers). All
// methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	order  []string
	srcs   map[string]Source
	hists  map[string]*histEntry
	horder []string
}

type histEntry struct {
	help string
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		srcs:  make(map[string]Source),
		hists: make(map[string]*histEntry),
	}
}

// Register adds (or replaces) a named source.
func (r *Registry) Register(name string, src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.srcs[name]; !exists {
		r.order = append(r.order, name)
	}
	r.srcs[name] = src
}

// RegisterHistogram adds (or replaces) a named histogram. name is the
// Prometheus base name; the exporter derives _bucket/_sum/_count series and
// the status/summary paths can read quantiles from it.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.hists[name]; !exists {
		r.horder = append(r.horder, name)
	}
	r.hists[name] = &histEntry{help: help, h: h}
}

// Sources returns the registered source names in registration order.
func (r *Registry) Sources() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Gather snapshots every source, in registration order.
func (r *Registry) Gather() []Metric {
	r.mu.RLock()
	srcs := make([]Source, 0, len(r.order))
	for _, name := range r.order {
		srcs = append(srcs, r.srcs[name])
	}
	r.mu.RUnlock()
	var out []Metric
	for _, src := range srcs {
		out = append(out, src()...)
	}
	return out
}

// Values flattens Gather into name{labels} -> value, the form the shared
// stats reporter reads.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.Gather() {
		key := m.Name
		if m.Labels != "" {
			key += "{" + m.Labels + "}"
		}
		out[key] = m.Value
	}
	return out
}

// Histogram returns the snapshot of a registered histogram, and whether the
// name is known.
func (r *Registry) Histogram(name string) (HistSnapshot, bool) {
	r.mu.RLock()
	e, ok := r.hists[name]
	r.mu.RUnlock()
	if !ok {
		return HistSnapshot{}, false
	}
	return e.h.Snapshot(), true
}

// Histograms returns the registered histogram names in registration order.
func (r *Registry) Histograms() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.horder...)
}

// WritePrometheus renders every source and histogram in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	metrics := r.Gather()

	// One HELP/TYPE header per metric name, covering all its label
	// variants; variants stay in gather order under the header.
	seen := make(map[string]bool)
	var names []string
	byName := make(map[string][]Metric)
	for _, m := range metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	for _, name := range names {
		ms := byName[name]
		if ms[0].Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, sanitizeHelp(ms[0].Help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, ms[0].Kind.promType())
		for _, m := range ms {
			if m.Labels != "" {
				fmt.Fprintf(w, "%s{%s} %v\n", m.Name, m.Labels, m.Value)
			} else {
				fmt.Fprintf(w, "%s %v\n", m.Name, m.Value)
			}
		}
	}

	r.mu.RLock()
	horder := append([]string(nil), r.horder...)
	hists := make(map[string]*histEntry, len(horder))
	for _, n := range horder {
		hists[n] = r.hists[n]
	}
	r.mu.RUnlock()
	for _, name := range horder {
		e := hists[name]
		s := e.h.Snapshot()
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, sanitizeHelp(e.help))
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum uint64
		for _, b := range s.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", name, b.Upper.Seconds(), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
		fmt.Fprintf(w, "%s_sum %v\n", name, s.Sum.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}

func (k MetricKind) promType() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

func sanitizeHelp(s string) string {
	return strings.NewReplacer("\n", " ", "\\", `\\`).Replace(s)
}

// sortedKeys is a tiny helper for deterministic JSON/status output.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
