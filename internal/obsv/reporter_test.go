package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReporterOffAtZeroInterval(t *testing.T) {
	called := false
	r := NewReporter(0, func() string { called = true; return "x" }, func(string, ...any) {})
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	r.Stop() // idempotent
	if called {
		t.Fatal("line func called with interval 0 (0 = off must be preserved)")
	}
}

func TestReporterTicksAndStops(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, args[0].(string))
		mu.Unlock()
	}
	n := 0
	r := NewReporter(5*time.Millisecond, func() string {
		n++
		if n == 2 {
			return "" // empty lines are skipped, not logged
		}
		return "tick"
	}, logf)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := len(lines)
		mu.Unlock()
		if got >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reporter produced %d lines in 2s, want >= 2", got)
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	mu.Lock()
	defer mu.Unlock()
	for _, l := range lines {
		if l != "tick" {
			t.Fatalf("logged %q, want only non-empty ticks", l)
		}
	}
}

func TestSummaryOmitsAbsentFamilies(t *testing.T) {
	o := NewObserver(Options{DisableTrace: true})
	// Only the journal/runtime families exist: no chain, core, net, crypto,
	// or WAL fragments may appear.
	s := Summary(o)
	for _, frag := range []string{"height=", "ordered=", "net(", "crypto(", "wal("} {
		if strings.Contains(s, frag) {
			t.Fatalf("summary %q contains %q for an unregistered family", s, frag)
		}
	}

	o.Registry.Register("chain", func() []Metric {
		return []Metric{
			{Name: "zugchain_chain_height", Kind: KindGauge, Value: 12},
			{Name: "zugchain_chain_base", Kind: KindGauge, Value: 3},
		}
	})
	s = Summary(o)
	if !strings.Contains(s, "height=12") || !strings.Contains(s, "base=3") {
		t.Fatalf("summary %q missing chain family", s)
	}
}

func TestSummaryLatencyFromTracer(t *testing.T) {
	o := NewObserver(Options{TraceRing: 8})
	d := digestFor(77)
	o.Tracer.BeginRecord(d)
	time.Sleep(time.Millisecond)
	o.Tracer.FinishRecord(d, 1)
	s := Summary(o)
	if !strings.Contains(s, "lat(p50=") {
		t.Fatalf("summary %q missing latency block after a completed trace", s)
	}
}
