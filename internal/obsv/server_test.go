package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testObserver() *Observer {
	o := NewObserver(Options{TraceRing: 8, JournalSize: 8})
	o.Registry.Register("test", func() []Metric {
		return []Metric{
			{Name: "zugchain_test_total", Help: "test counter", Value: 5},
		}
	})
	d := digestFor(1)
	o.Tracer.BeginRecord(d)
	o.Tracer.StampSlot(1, PhaseCommit)
	o.Tracer.FinishRecord(d, 1)
	o.Journal.Record(Event{Kind: EventNewPrimary, View: 0, Node: 1})
	o.Journal.Record(Event{Kind: EventViewChangeSent, View: 1, Node: 1})
	return o
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	h := Handler(testObserver())
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"zugchain_test_total 5",
		"zugchain_events_total 2",
		"zugchain_trace_completed_total 1",
		"zugchain_trace_total_seconds_count 1",
		"zugchain_go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerStatusz(t *testing.T) {
	h := Handler(testObserver())
	code, body := get(t, h, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var status struct {
		Uptime     string                `json:"uptime"`
		Metrics    map[string]float64    `json:"metrics"`
		Histograms map[string]histStatus `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if status.Uptime == "" {
		t.Fatal("statusz missing uptime")
	}
	if status.Metrics["zugchain_test_total"] != 5 {
		t.Fatalf("statusz metrics = %v", status.Metrics)
	}
	hs, ok := status.Histograms["zugchain_trace_total_seconds"]
	if !ok || hs.Count != 1 {
		t.Fatalf("statusz histograms = %v", status.Histograms)
	}
}

func TestHandlerTracez(t *testing.T) {
	h := Handler(testObserver())
	code, body := get(t, h, "/tracez")
	if code != http.StatusOK {
		t.Fatalf("/tracez = %d", code)
	}
	if !strings.Contains(body, "1 traces retained") {
		t.Fatalf("/tracez body:\n%s", body)
	}

	// Tracing disabled: the page must say so, not crash.
	off := NewObserver(Options{DisableTrace: true})
	code, body = get(t, Handler(off), "/tracez")
	if code != http.StatusOK || !strings.Contains(body, "tracing disabled") {
		t.Fatalf("/tracez with tracing off = %d:\n%s", code, body)
	}
}

func TestHandlerEventz(t *testing.T) {
	h := Handler(testObserver())
	code, body := get(t, h, "/eventz")
	if code != http.StatusOK {
		t.Fatalf("/eventz = %d", code)
	}
	if !strings.Contains(body, "view-change-sent") || !strings.Contains(body, "new-primary") {
		t.Fatalf("/eventz body:\n%s", body)
	}

	code, body = get(t, h, "/eventz?json=1")
	if code != http.StatusOK {
		t.Fatalf("/eventz?json=1 = %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("eventz json: %v\n%s", err, body)
	}
	if len(events) != 2 || events[1].Kind != EventViewChangeSent {
		t.Fatalf("eventz json events = %+v", events)
	}
}

func TestHandlerPprofAndRoot(t *testing.T) {
	h := Handler(testObserver())
	if code, _ := get(t, h, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, h, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("/ = %d:\n%s", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

func TestServeRealListener(t *testing.T) {
	o := testObserver()
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "zugchain_test_total") {
		t.Fatalf("live /metrics = %d:\n%s", resp.StatusCode, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
