package obsv

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRegisterAndGather(t *testing.T) {
	r := NewRegistry()
	r.Register("b", func() []Metric {
		return []Metric{{Name: "zugchain_b_total", Value: 2}}
	})
	r.Register("a", func() []Metric {
		return []Metric{
			{Name: "zugchain_a_total", Value: 1},
			{Name: "zugchain_a_by_kind", Labels: `kind="x"`, Value: 3},
			{Name: "zugchain_a_by_kind", Labels: `kind="y"`, Value: 4},
		}
	})

	if got := r.Sources(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("sources = %v, want registration order [b a]", got)
	}
	ms := r.Gather()
	if len(ms) != 4 || ms[0].Name != "zugchain_b_total" {
		t.Fatalf("gather = %+v, want 4 metrics with b first", ms)
	}

	v := r.Values()
	want := map[string]float64{
		"zugchain_b_total":             2,
		"zugchain_a_total":             1,
		`zugchain_a_by_kind{kind="x"}`: 3,
		`zugchain_a_by_kind{kind="y"}`: 4,
	}
	for k, x := range want {
		if v[k] != x {
			t.Fatalf("Values()[%s] = %v, want %v (all: %v)", k, v[k], x, v)
		}
	}

	// Re-registering a name replaces the source without duplicating it.
	r.Register("a", func() []Metric {
		return []Metric{{Name: "zugchain_a_total", Value: 10}}
	})
	if got := r.Sources(); len(got) != 2 {
		t.Fatalf("sources after re-register = %v, want 2", got)
	}
	if v := r.Values(); v["zugchain_a_total"] != 10 {
		t.Fatalf("re-registered value = %v, want 10", v["zugchain_a_total"])
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Register("fam", func() []Metric {
		return []Metric{
			{Name: "zugchain_reqs_total", Help: "Requests\nordered", Value: 7},
			{Name: "zugchain_depth", Help: "Queue depth", Kind: KindGauge, Value: 3},
			{Name: "zugchain_by_kind", Labels: `kind="x"`, Value: 1},
			{Name: "zugchain_by_kind", Labels: `kind="y"`, Value: 2},
		}
	})
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second)
	r.RegisterHistogram("zugchain_lat_seconds", "Latency", h)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP zugchain_reqs_total Requests ordered\n", // newline sanitized
		"# TYPE zugchain_reqs_total counter\n",
		"zugchain_reqs_total 7\n",
		"# TYPE zugchain_depth gauge\n",
		"zugchain_depth 3\n",
		"zugchain_by_kind{kind=\"x\"} 1\n",
		"zugchain_by_kind{kind=\"y\"} 2\n",
		"# TYPE zugchain_lat_seconds histogram\n",
		"zugchain_lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"zugchain_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per name even with label variants.
	if n := strings.Count(out, "# TYPE zugchain_by_kind"); n != 1 {
		t.Fatalf("got %d TYPE headers for zugchain_by_kind, want 1", n)
	}

	// Histogram buckets must be cumulative and non-decreasing, ending at the
	// total count.
	var cum []uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "zugchain_lat_seconds_bucket{le=") && !strings.Contains(line, "+Inf") {
			fields := strings.Fields(line)
			var c uint64
			if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &c); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			cum = append(cum, c)
		}
	}
	if len(cum) == 0 {
		t.Fatal("no bucket lines emitted")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative at %d: %v", i, cum)
		}
	}
	if last := cum[len(cum)-1]; last != 3 {
		t.Fatalf("last finite bucket = %d, want 3", last)
	}

	// The sum must equal the observations in seconds.
	wantSum := (time.Millisecond + 2*time.Millisecond + time.Second).Seconds()
	if !strings.Contains(out, fmt.Sprintf("zugchain_lat_seconds_sum %v\n", wantSum)) {
		t.Fatalf("exposition missing sum %v:\n%s", wantSum, out)
	}
}

func TestRegistryHistogramLookup(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram()
	h.Observe(time.Millisecond)
	r.RegisterHistogram("zugchain_x_seconds", "x", h)
	if got := r.Histograms(); len(got) != 1 || got[0] != "zugchain_x_seconds" {
		t.Fatalf("histograms = %v", got)
	}
	s, ok := r.Histogram("zugchain_x_seconds")
	if !ok || s.Count != 1 {
		t.Fatalf("lookup = (%+v, %v), want count 1", s, ok)
	}
	if _, ok := r.Histogram("nope"); ok {
		t.Fatal("unknown histogram reported as known")
	}
}

// TestRegistryConcurrent is the satellite race test: concurrent register,
// snapshot (Gather/WritePrometheus), and record (histogram observes) must be
// clean under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram()
	r.RegisterHistogram("zugchain_conc_seconds", "concurrency", h)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("src-%d-%d", w, i%8)
				val := float64(i)
				r.Register(name, func() []Metric {
					return []Metric{{Name: "zugchain_conc_total", Labels: fmt.Sprintf(`src="%s"`, name), Value: val}}
				})
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 100; i++ {
			r.Gather()
			r.Values()
			var b strings.Builder
			r.WritePrometheus(&b)
			r.Sources()
			r.Histogram("zugchain_conc_seconds")
		}
	}()
	wg.Wait()
	<-stop

	if got := len(r.Sources()); got != 4*8 {
		t.Fatalf("sources = %d, want %d", got, 4*8)
	}
}
