package experiments

import (
	"fmt"
	"strings"
	"time"

	"zugchain/internal/testbed"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Label  string
	Result testbed.Result
}

// AblationBlockSize sweeps the block/checkpoint size: smaller blocks mean
// more frequent checkpoints (earlier export eligibility, §III-C argues for
// a checkpoint per block) at the cost of more checkpoint traffic; larger
// blocks amortize signatures but delay exportability.
func AblationBlockSize(opt Options) ([]AblationRow, error) {
	sizes := []uint64{1, 5, 10, 20, 50}
	rows := make([]AblationRow, 0, len(sizes))
	for _, size := range sizes {
		res, err := testbed.Run(testbed.Scenario{
			BusCycle:    64 * time.Millisecond,
			PayloadSize: 1024,
			Cycles:      opt.Cycles,
			TimeScale:   opt.TimeScale,
			Seed:        opt.Seed,
			BlockSize:   size,
		})
		if err != nil {
			return nil, fmt.Errorf("block size %d: %w", size, err)
		}
		rows = append(rows, AblationRow{Label: fmt.Sprintf("block=%d", size), Result: *res})
	}
	return rows, nil
}

// AblationSoftTimeout sweeps the soft timeout with a primary that dies
// mid-run: detection time — and therefore the worst-case latency of the
// requests held through the outage — is bounded by soft + hard timeout
// before the view change can begin. The paper argues this is the knob for
// trading false-suspicion risk against recovery speed ("the view change
// timeout in ZugChain can be shortened further", §V-B); the sweep makes the
// trade-off measurable.
func AblationSoftTimeout(opt Options) ([]AblationRow, error) {
	timeouts := []time.Duration{
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		1000 * time.Millisecond,
	}
	cycles := opt.Cycles
	if cycles < 60 {
		cycles = 60
	}
	rows := make([]AblationRow, 0, len(timeouts))
	for _, soft := range timeouts {
		res, err := testbed.Run(testbed.Scenario{
			BusCycle:           64 * time.Millisecond,
			PayloadSize:        1024,
			Cycles:             cycles,
			TimeScale:          opt.TimeScale,
			Seed:               opt.Seed,
			SoftTimeout:        soft,
			HardTimeout:        250 * time.Millisecond, // fixed: isolates the soft knob
			KillPrimaryAtCycle: cycles / 2,
		})
		if err != nil {
			return nil, fmt.Errorf("soft timeout %v: %w", soft, err)
		}
		rows = append(rows, AblationRow{Label: fmt.Sprintf("soft=%v", soft), Result: *res})
	}
	return rows, nil
}

// FormatAblation renders an ablation sweep.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %8s %14s %10s\n",
		"point", "median-lat", "p99-lat", "max-lat", "blocks", "net(B/s)", "ordered")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12v %12v %12v %8d %14.0f %10d\n",
			r.Label,
			r.Result.Latency.Median.Round(time.Microsecond),
			r.Result.Latency.P99.Round(time.Microsecond),
			r.Result.Latency.Max.Round(time.Millisecond),
			r.Result.Blocks,
			r.Result.NetBytesPerNodePerSec,
			r.Result.Ordered)
	}
	return b.String()
}
