package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/netsim"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

// TableIIRow is one export measurement of Table II.
type TableIIRow struct {
	Blocks     int
	Read       time.Duration
	Delete     time.Duration
	Verify     time.Duration
	Exported   int
	TotalBytes int
}

// TableIIBlockCounts are the paper's export sizes (500 blocks ≈ 5 minutes of
// operation at a 64 ms cycle; 16,000 ≈ 3 hours).
var TableIIBlockCounts = []int{500, 1000, 2000, 4000, 8000, 16000}

// TableIIOptions tunes the export experiment.
type TableIIOptions struct {
	// BlockCounts overrides the default sweep.
	BlockCounts []int
	// Link is the shaped uplink; defaults to the paper's LTE profile.
	Link netsim.LinkProfile
	// EntriesPerBlock matches the paper's block size of 10 requests.
	EntriesPerBlock int
	// EntryPayload sizes each logged record; the paper's JRU traces are
	// compact (~100 B per filtered record).
	EntryPayload int
}

func (o *TableIIOptions) applyDefaults() {
	if len(o.BlockCounts) == 0 {
		o.BlockCounts = TableIIBlockCounts
	}
	if o.Link.BandwidthBps == 0 {
		o.Link = netsim.LTE
	}
	if o.EntriesPerBlock == 0 {
		o.EntriesPerBlock = 10
	}
	if o.EntryPayload == 0 {
		o.EntryPayload = 100
	}
}

// TableII reproduces the export experiment: read (checkpoints from 2f+1
// replicas plus all blocks from one), verification, and delete latency for
// 500–16,000 blocks over an LTE-shaped uplink. The replica chains are
// synthesized directly (running 3 hours of consensus to create 16,000 blocks
// is pointless for measuring the export path), with genuine 2f+1-signed
// checkpoint proofs.
func TableII(opt TableIIOptions) ([]TableIIRow, error) {
	opt.applyDefaults()

	rows := make([]TableIIRow, 0, len(opt.BlockCounts))
	for _, count := range opt.BlockCounts {
		row, err := runTableIIPoint(count, opt)
		if err != nil {
			return nil, fmt.Errorf("table II at %d blocks: %w", count, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runTableIIPoint(count int, opt TableIIOptions) (*TableIIRow, error) {
	net := transport.NewNetwork()
	defer net.Close()

	// Four replicas with identical synthesized chains.
	replicaIDs := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range replicaIDs {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	dcID := crypto.DataCenterIDBase
	dcKP := crypto.MustGenerateKeyPair(dcID)
	pairs = append(pairs, dcKP)
	reg := crypto.NewRegistry(pairs...)

	blocks, totalBytes := synthesizeChain(count, opt)

	servers := make([]*export.Server, 0, len(replicaIDs))
	for _, id := range replicaIDs {
		store, err := blockchain.NewStore("")
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			if err := store.Append(b); err != nil {
				return nil, err
			}
		}
		srv := export.NewServer(export.ServerConfig{
			ID:           id,
			DeleteQuorum: 1,
			DataCenters:  []crypto.NodeID{dcID},
		}, kps[id], reg, store, net.Endpoint(id))
		servers = append(servers, srv)
	}

	// One stable checkpoint proof for the chain head, signed by 2f+1.
	head := blocks[len(blocks)-1]
	proof := pbft.CheckpointProof{
		Seq:         head.Index * pbft.DefaultCheckpointInterval,
		StateDigest: head.Hash(),
	}
	for _, id := range replicaIDs[:3] {
		proof.Checkpoints = append(proof.Checkpoints,
			pbft.NewSignedCheckpoint(proof.Seq, head.Hash(), kps[id]))
	}
	for _, srv := range servers {
		srv.OnStableCheckpoint(proof)
	}

	// The data center behind the shaped LTE uplink.
	archive, err := blockchain.NewStore("")
	if err != nil {
		return nil, err
	}
	shaped := netsim.NewShaped(net.Endpoint(dcID), opt.Link)
	defer shaped.Close()
	dc := export.NewDataCenter(export.DataCenterConfig{
		ID:          dcID,
		Replicas:    replicaIDs,
		ReadTimeout: 10 * time.Minute,
	}, dcKP, reg, archive, shaped)

	ctx := context.Background()
	res, err := dc.Read(ctx)
	if err != nil {
		return nil, err
	}

	deleteStart := time.Now()
	dc.SendDelete(res.BlockIndex, res.BlockHash)
	if err := dc.WaitDeleteAcks(ctx, res.BlockIndex, 3); err != nil {
		return nil, err
	}
	deleteDur := time.Since(deleteStart)

	return &TableIIRow{
		Blocks:     count,
		Read:       res.ReadDuration,
		Delete:     deleteDur,
		Verify:     res.VerifyDuration,
		Exported:   res.NewBlocks,
		TotalBytes: totalBytes,
	}, nil
}

// synthesizeChain builds count blocks of JRU-like records and reports the
// total serialized size.
func synthesizeChain(count int, opt TableIIOptions) ([]*blockchain.Block, int) {
	builder := blockchain.NewBuilder(blockchain.Genesis(), opt.EntriesPerBlock)
	blocks := make([]*blockchain.Block, 0, count)
	totalBytes := 0
	seq := uint64(0)
	for len(blocks) < count {
		seq++
		rec := signal.Record{
			Cycle: seq,
			Signals: []signal.Signal{{
				Port:   signal.PortBulk,
				Kind:   signal.KindBulkData,
				Cycle:  seq,
				Opaque: make([]byte, opt.EntryPayload),
			}},
		}
		if b := builder.Add(blockchain.Entry{
			Seq:     seq,
			Origin:  crypto.NodeID(seq % 4),
			Payload: rec.Marshal(),
		}); b != nil {
			blocks = append(blocks, b)
			totalBytes += len(b.Marshal())
		}
	}
	return blocks, totalBytes
}

// FormatTableII renders the export latency table like the paper's Table II.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: latency of read, delete, and verify during export\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %10s %12s\n",
		"#blocks", "read", "delete", "verify", "exported", "bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12v %12v %12v %10d %12d\n",
			r.Blocks,
			r.Read.Round(10*time.Millisecond),
			r.Delete.Round(time.Millisecond),
			r.Verify.Round(time.Millisecond),
			r.Exported, r.TotalBytes)
	}
	return b.String()
}
