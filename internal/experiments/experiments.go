// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Fig 6 (network utilization and latency vs bus cycle and
// payload size), Fig 7 (CPU and memory proxies), Fig 8 (request latency
// through a view change), Table II (export latency), Fig 9 (Byzantine
// behaviours), and the JRU requirements check. Each experiment returns
// structured rows and renders a paper-style text table.
//
// Scenarios are scaled down from the paper's 5×5-minute runs (see
// testbed.Scenario.TimeScale); EXPERIMENTS.md records how the measured
// shapes compare to the published numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"zugchain/internal/testbed"
)

// Options tune experiment cost. Defaults reproduce the shapes quickly.
type Options struct {
	// Cycles per scenario run.
	Cycles int
	// TimeScale divides bus cycle and timeouts (see testbed).
	TimeScale int
	// Seed for reproducibility.
	Seed int64
}

// DefaultOptions runs each point for 80 cycles at 1/8 time scale.
func DefaultOptions() Options {
	return Options{Cycles: 80, TimeScale: 8, Seed: 1}
}

// ComparisonRow is one sweep point comparing ZugChain against the baseline.
type ComparisonRow struct {
	Label     string // e.g. "64ms" or "1024B"
	ZugChain  testbed.Result
	Baseline  testbed.Result
	NetRatio  float64 // baseline / zugchain network bytes per second
	LatRatio  float64 // baseline / zugchain median latency
	CPURatio  float64 // baseline / zugchain CPU work proxy
	HeapRatio float64 // baseline / zugchain allocation per node
}

func compareAt(s testbed.Scenario) (ComparisonRow, error) {
	zcScenario := s
	zcScenario.System = testbed.ZugChain
	zc, err := testbed.Run(zcScenario)
	if err != nil {
		return ComparisonRow{}, fmt.Errorf("zugchain run: %w", err)
	}
	blScenario := s
	blScenario.System = testbed.Baseline
	bl, err := testbed.Run(blScenario)
	if err != nil {
		return ComparisonRow{}, fmt.Errorf("baseline run: %w", err)
	}
	row := ComparisonRow{ZugChain: *zc, Baseline: *bl}
	row.NetRatio = ratio(bl.NetBytesPerNodePerSec, zc.NetBytesPerNodePerSec)
	row.LatRatio = ratio(float64(bl.Latency.Median), float64(zc.Latency.Median))
	row.CPURatio = ratio(bl.CPUWorkPerNode, zc.CPUWorkPerNode)
	row.HeapRatio = ratio(float64(bl.AllocPerNode), float64(zc.AllocPerNode))
	return row, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// BusCycles are the Fig 6/7 sweep points (32 ms is the MVB minimum).
var BusCycles = []time.Duration{
	32 * time.Millisecond,
	64 * time.Millisecond,
	128 * time.Millisecond,
	256 * time.Millisecond,
}

// PayloadSizes are the Fig 6/7 payload sweep points at a 64 ms cycle.
var PayloadSizes = []int{32, 1024, 2048, 4096, 8192}

// Fig6BusCycles reproduces Fig 6 (left): network utilization and latency
// for bus cycles from 32 to 256 ms at 1 kB payloads.
func Fig6BusCycles(opt Options) ([]ComparisonRow, error) {
	rows := make([]ComparisonRow, 0, len(BusCycles))
	for _, cycle := range BusCycles {
		row, err := compareAt(testbed.Scenario{
			BusCycle:    cycle,
			PayloadSize: 1024,
			Cycles:      opt.Cycles,
			TimeScale:   opt.TimeScale,
			Seed:        opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("%dms", cycle.Milliseconds())
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Payloads reproduces Fig 6 (right): payload sizes from 32 B to 8 kB at
// the common 64 ms bus cycle.
func Fig6Payloads(opt Options) ([]ComparisonRow, error) {
	rows := make([]ComparisonRow, 0, len(PayloadSizes))
	for _, size := range PayloadSizes {
		row, err := compareAt(testbed.Scenario{
			BusCycle:    64 * time.Millisecond,
			PayloadSize: size,
			Cycles:      opt.Cycles,
			TimeScale:   opt.TimeScale,
			Seed:        opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("%dB", size)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7BusCycles and Fig7Payloads share the runs of Fig 6 — the paper's
// Fig 7 reports CPU and memory from the same sweeps — so they simply rerun
// the sweep and present the resource columns.
func Fig7BusCycles(opt Options) ([]ComparisonRow, error) { return Fig6BusCycles(opt) }

// Fig7Payloads is the payload-size resource sweep (see Fig7BusCycles).
func Fig7Payloads(opt Options) ([]ComparisonRow, error) { return Fig6Payloads(opt) }

// FormatComparison renders comparison rows as a paper-style table. which
// selects the columns: "fig6" (network + latency) or "fig7" (CPU + memory).
func FormatComparison(title string, rows []ComparisonRow, which string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	switch which {
	case "fig6":
		fmt.Fprintf(&b, "%-8s %14s %14s %7s %12s %12s %7s\n",
			"point", "zc-net(B/s)", "bl-net(B/s)", "net-x",
			"zc-lat", "bl-lat", "lat-x")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-8s %14.0f %14.0f %6.1fx %12v %12v %6.1fx\n",
				r.Label,
				r.ZugChain.NetBytesPerNodePerSec, r.Baseline.NetBytesPerNodePerSec, r.NetRatio,
				r.ZugChain.Latency.Median.Round(time.Microsecond),
				r.Baseline.Latency.Median.Round(time.Microsecond), r.LatRatio)
		}
	case "fig7":
		fmt.Fprintf(&b, "%-8s %12s %12s %7s %12s %12s %7s\n",
			"point", "zc-cpu(wu)", "bl-cpu(wu)", "cpu-x",
			"zc-alloc(B)", "bl-alloc(B)", "mem-x")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-8s %12.0f %12.0f %6.1fx %12d %12d %6.1fx\n",
				r.Label,
				r.ZugChain.CPUWorkPerNode, r.Baseline.CPUWorkPerNode, r.CPURatio,
				r.ZugChain.AllocPerNode, r.Baseline.AllocPerNode, r.HeapRatio)
		}
	}
	return b.String()
}

// Fig8Result is the view-change latency timeline of Fig 8.
type Fig8Result struct {
	System testbed.System
	// FaultAt is when the primary was killed, relative to run start.
	FaultAt time.Duration
	// Timeline holds decide-time (relative to FaultAt) and latency.
	Timeline []testbed.TimelinePoint
	// SteadyBefore is the median latency before the fault.
	SteadyBefore time.Duration
	// RecoveredAfter is when latency returned to twice the pre-fault
	// median, relative to the fault.
	RecoveredAfter time.Duration
	// WorstLatency is the maximum latency observed (requests held through
	// the view change).
	WorstLatency time.Duration
}

// Fig8 reproduces the view-change experiment: at a 64 ms bus cycle the
// primary dies; ZugChain (soft+hard 250 ms each) and the baseline (one-shot
// 500 ms client timeout) recover through a view change. Run at TimeScale 1
// so the timeline is directly comparable to the paper's milliseconds.
func Fig8(system testbed.System, opt Options) (*Fig8Result, error) {
	cycles := opt.Cycles
	if cycles < 120 {
		cycles = 120
	}
	res, err := testbed.Run(testbed.Scenario{
		System:                system,
		BusCycle:              64 * time.Millisecond,
		Cycles:                cycles,
		TimeScale:             1,
		KillPrimaryAtCycle:    cycles / 2,
		SuspectOnFirstTimeout: true,
		Seed:                  opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	out := &Fig8Result{System: system, FaultAt: res.FaultAt}
	sort.Slice(res.Timeline, func(i, j int) bool {
		return res.Timeline[i].Since < res.Timeline[j].Since
	})
	var before []time.Duration
	for _, p := range res.Timeline {
		rel := p.Since - res.FaultAt
		out.Timeline = append(out.Timeline, testbed.TimelinePoint{Since: rel, Latency: p.Latency})
		if rel < 0 {
			before = append(before, p.Latency)
		}
		if p.Latency > out.WorstLatency {
			out.WorstLatency = p.Latency
		}
	}
	if len(before) > 0 {
		sort.Slice(before, func(i, j int) bool { return before[i] < before[j] })
		out.SteadyBefore = before[len(before)/2]
	}
	// Recovery: first post-fault decide whose latency is back within 2x
	// the pre-fault median, with everything after it also settled.
	threshold := 2 * out.SteadyBefore
	if threshold == 0 {
		threshold = 50 * time.Millisecond
	}
	for i := len(out.Timeline) - 1; i >= 0; i-- {
		p := out.Timeline[i]
		if p.Since <= 0 {
			break
		}
		if p.Latency > threshold {
			if i+1 < len(out.Timeline) {
				out.RecoveredAfter = out.Timeline[i+1].Since
			}
			break
		}
		out.RecoveredAfter = p.Since
	}
	return out, nil
}

// FormatFig8 renders both systems' view-change behaviour.
func FormatFig8(zc, bl *Fig8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: request latency through a view change (fault at t=0)\n")
	fmt.Fprintf(&b, "%-10s %14s %16s %14s\n", "system", "steady-lat", "worst-lat", "recovered-in")
	for _, r := range []*Fig8Result{zc, bl} {
		fmt.Fprintf(&b, "%-10s %14v %16v %14v\n",
			r.System, r.SteadyBefore.Round(time.Microsecond),
			r.WorstLatency.Round(time.Millisecond),
			r.RecoveredAfter.Round(time.Millisecond))
	}
	return b.String()
}

// Fig9Row is one Byzantine-behaviour measurement of Fig 9.
type Fig9Row struct {
	Label      string
	Result     testbed.Result
	LatPct     float64 // latency increase vs clean, percent
	CPUPct     float64 // CPU proxy increase vs clean, percent
	MemPct     float64 // allocation increase vs clean, percent
	NetPct     float64 // network change vs clean, percent
	Fabricated uint64  // extra ordered requests vs clean
}

// Fig9 reproduces the Byzantine-behaviour experiment: a faulty backup
// fabricates requests in 25/75/100 % of bus cycles, and a faulty primary
// delays its preprepares past the soft (but not hard) timeout.
func Fig9(opt Options) ([]Fig9Row, error) {
	base := testbed.Scenario{
		BusCycle:    64 * time.Millisecond,
		PayloadSize: 1024,
		Cycles:      opt.Cycles,
		TimeScale:   opt.TimeScale,
		Seed:        opt.Seed,
	}
	clean, err := testbed.Run(base)
	if err != nil {
		return nil, err
	}
	rows := []Fig9Row{{Label: "normal", Result: *clean}}

	for _, rate := range []float64{0.25, 0.75, 1.0} {
		s := base
		s.FabricateRate = rate
		res, err := testbed.Run(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, fig9Row(fmt.Sprintf("fabricate %.0f%%", rate*100), *res, *clean))
	}

	s := base
	s.PrimaryDelay = 300 * time.Millisecond // past soft (250), short of soft+hard
	res, err := testbed.Run(s)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig9Row("primary +delay", *res, *clean))
	return rows, nil
}

func fig9Row(label string, res, clean testbed.Result) Fig9Row {
	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return (a - b) / b * 100
	}
	row := Fig9Row{Label: label, Result: res}
	row.LatPct = pct(float64(res.Latency.Median), float64(clean.Latency.Median))
	row.CPUPct = pct(res.CPUWorkPerNode, clean.CPUWorkPerNode)
	row.MemPct = pct(float64(res.AllocPerNode), float64(clean.AllocPerNode))
	row.NetPct = pct(res.NetBytesPerNodePerSec, clean.NetBytesPerNodePerSec)
	if res.Ordered > clean.Ordered {
		row.Fabricated = res.Ordered - clean.Ordered
	}
	return row
}

// FormatFig9 renders the Byzantine-behaviour table.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: Byzantine behaviour (deltas vs normal operation)\n")
	fmt.Fprintf(&b, "%-16s %12s %8s %8s %8s %8s %8s\n",
		"behaviour", "median-lat", "lat%", "cpu%", "mem%", "net%", "extra")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12v %+7.0f%% %+7.0f%% %+7.0f%% %+7.0f%% %8d\n",
			r.Label, r.Result.Latency.Median.Round(time.Microsecond),
			r.LatPct, r.CPUPct, r.MemPct, r.NetPct, r.Fabricated)
	}
	return b.String()
}
