package experiments

import (
	"strings"
	"testing"
	"time"

	"zugchain/internal/metrics"
	"zugchain/internal/netsim"
	"zugchain/internal/testbed"
)

// tinyOptions keeps experiment tests fast; correctness of the shapes is
// asserted by the full runs in bench_test.go / cmd/zc-experiments.
func tinyOptions() Options {
	return Options{Cycles: 30, TimeScale: 16, Seed: 1}
}

func TestFig6PayloadsProducesRows(t *testing.T) {
	old := PayloadSizes
	PayloadSizes = []int{32, 1024}
	defer func() { PayloadSizes = old }()

	rows, err := Fig6Payloads(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ZugChain.Ordered == 0 || r.Baseline.Ordered == 0 {
			t.Errorf("%s: empty run", r.Label)
		}
		if r.NetRatio < 1 {
			t.Errorf("%s: baseline used less bandwidth (%.2fx)", r.Label, r.NetRatio)
		}
	}
	out := FormatComparison("t", rows, "fig6")
	if !strings.Contains(out, "32B") || !strings.Contains(out, "net-x") {
		t.Errorf("format output missing columns:\n%s", out)
	}
	out = FormatComparison("t", rows, "fig7")
	if !strings.Contains(out, "cpu-x") {
		t.Errorf("fig7 format missing columns:\n%s", out)
	}
}

func TestFig8ViewChangeRecovery(t *testing.T) {
	res, err := Fig8(testbed.ZugChain, Options{Cycles: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultAt == 0 {
		t.Fatal("no fault injected")
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	// Requests decided after the fault must exist (recovery happened).
	post := 0
	for _, p := range res.Timeline {
		if p.Since > 0 {
			post++
		}
	}
	if post == 0 {
		t.Error("no decides after the fault")
	}
	if res.WorstLatency < 250*time.Millisecond {
		t.Errorf("worst latency %v; requests held through the view change should exceed the soft timeout", res.WorstLatency)
	}
	out := FormatFig8(res, res)
	if !strings.Contains(out, "recovered-in") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestFig9RowsAndFormat(t *testing.T) {
	rows := []Fig9Row{
		{Label: "normal"},
		fig9Row("fabricate 100%",
			testbed.Result{Latency: doubled(), CPUWorkPerNode: 200, AllocPerNode: 150, NetBytesPerNodePerSec: 120, Ordered: 80},
			testbed.Result{Latency: single(), CPUWorkPerNode: 100, AllocPerNode: 100, NetBytesPerNodePerSec: 100, Ordered: 40}),
	}
	r := rows[1]
	if r.LatPct != 100 || r.CPUPct != 100 || r.MemPct != 50 || r.NetPct != 20 || r.Fabricated != 40 {
		t.Errorf("percent deltas wrong: %+v", r)
	}
	out := FormatFig9(rows)
	if !strings.Contains(out, "fabricate 100%") {
		t.Errorf("format output:\n%s", out)
	}
}

func doubled() (s metrics.LatencyStats) { s.Median = 20 * time.Millisecond; return }
func single() (s metrics.LatencyStats)  { s.Median = 10 * time.Millisecond; return }

func TestTableIISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth-shaped export is slow")
	}
	rows, err := TableII(TableIIOptions{
		BlockCounts: []int{50, 100},
		Link:        netsim.LinkProfile{BandwidthBps: 100e6, Latency: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Exported != r.Blocks {
			t.Errorf("%d blocks: exported %d", r.Blocks, r.Exported)
		}
		if r.Read <= 0 || r.Delete <= 0 {
			t.Errorf("%d blocks: zero durations %+v", r.Blocks, r)
		}
	}
	// Export time grows with block count (bandwidth-bound).
	if rows[1].Read < rows[0].Read {
		t.Errorf("read time shrank with more blocks: %v then %v", rows[0].Read, rows[1].Read)
	}
	out := FormatTableII(rows)
	if !strings.Contains(out, "#blocks") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestJRUCheck(t *testing.T) {
	check, err := RunJRUCheck(t.TempDir(), Options{Cycles: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !check.Pass {
		t.Errorf("JRU check failed: %+v", check)
	}
	if check.EventsPerSecond < 10 {
		t.Errorf("events/s = %v", check.EventsPerSecond)
	}
	out := FormatJRU(check)
	if !strings.Contains(out, "PASS") {
		t.Errorf("format output:\n%s", out)
	}
}
