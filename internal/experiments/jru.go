package experiments

import (
	"fmt"
	"strings"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/signal"
	"zugchain/internal/testbed"
)

// JRUCheck reports compliance with the JRU requirements of §V-B: data
// stored within 500 ms of arrival at ≥10 events/s (the 64 ms bus cycle
// yields 15.6 events/s), plus the cost of persisting a block to disk.
type JRUCheck struct {
	// EventsPerSecond at the evaluated bus cycle.
	EventsPerSecond float64
	// OrderLatency is the median receive-to-decide latency.
	OrderLatency time.Duration
	// P99Latency is the tail.
	P99Latency time.Duration
	// DiskWrite is the measured cost of persisting one block with 8 kB
	// payloads (the paper reports 5.03 ms on the M-COM's flash).
	DiskWrite time.Duration
	// Budget is the JRU requirement.
	Budget time.Duration
	// Pass reports whether order latency + disk write fit the budget.
	Pass bool
}

// RunJRUCheck measures the end-to-end recording pipeline against the JRU
// requirement at the common 64 ms bus cycle (TimeScale 1 for honest
// latencies).
func RunJRUCheck(dir string, opt Options) (*JRUCheck, error) {
	cycles := opt.Cycles
	if cycles < 60 {
		cycles = 60
	}
	res, err := testbed.Run(testbed.Scenario{
		BusCycle:    64 * time.Millisecond,
		PayloadSize: 1024,
		Cycles:      cycles,
		TimeScale:   1,
		Seed:        opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	disk, err := measureBlockPersistence(dir)
	if err != nil {
		return nil, err
	}

	check := &JRUCheck{
		EventsPerSecond: 1 / (64 * time.Millisecond).Seconds(),
		OrderLatency:    res.Latency.Median,
		P99Latency:      res.Latency.P99,
		DiskWrite:       disk,
		Budget:          500 * time.Millisecond,
	}
	check.Pass = check.OrderLatency+check.DiskWrite < check.Budget
	return check, nil
}

// measureBlockPersistence times writing a block of ten 8 kB-payload records
// to disk, the paper's worst-case block persistence cost.
func measureBlockPersistence(dir string) (time.Duration, error) {
	store, err := blockchain.NewStore(dir)
	if err != nil {
		return 0, err
	}
	builder := blockchain.NewBuilder(blockchain.Genesis(), 10)
	var block *blockchain.Block
	for seq := uint64(1); seq <= 10; seq++ {
		rec := signal.Record{
			Cycle: seq,
			Signals: []signal.Signal{{
				Port: signal.PortBulk, Kind: signal.KindBulkData,
				Cycle: seq, Opaque: make([]byte, 8192),
			}},
		}
		block = builder.Add(blockchain.Entry{
			Seq: seq, Origin: crypto.NodeID(seq % 4), Payload: rec.Marshal(),
		})
	}
	start := time.Now()
	if err := store.Append(block); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// FormatJRU renders the requirements check.
func FormatJRU(c *JRUCheck) string {
	var b strings.Builder
	fmt.Fprintf(&b, "JRU requirements check (§V-B)\n")
	fmt.Fprintf(&b, "events/s            %10.1f (requirement: >= 10)\n", c.EventsPerSecond)
	fmt.Fprintf(&b, "order latency (med) %10v (paper: ~14ms on 800MHz ARM)\n", c.OrderLatency.Round(time.Microsecond))
	fmt.Fprintf(&b, "order latency (p99) %10v\n", c.P99Latency.Round(time.Microsecond))
	fmt.Fprintf(&b, "block disk write    %10v (paper: 5.03ms)\n", c.DiskWrite.Round(time.Microsecond))
	fmt.Fprintf(&b, "budget              %10v\n", c.Budget)
	status := "PASS"
	if !c.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "within 500ms-after-arrival: %s\n", status)
	return b.String()
}
