package mvb

import (
	"bytes"
	"testing"

	"zugchain/internal/signal"
)

func TestTraceRoundTrip(t *testing.T) {
	bus, _ := newTestBus()
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	var recorded []Frame
	for i := 0; i < 10; i++ {
		f := bus.Tick()
		recorded = append(recorded, f)
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}

	frames, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 {
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if f.Cycle != recorded[i].Cycle || len(f.Ports) != len(recorded[i].Ports) {
			t.Fatalf("frame %d mismatch", i)
		}
		for j := range f.Ports {
			if f.Ports[j].Port != recorded[i].Ports[j].Port ||
				!bytes.Equal(f.Ports[j].Data, recorded[i].Ports[j].Data) {
				t.Fatalf("frame %d port %d mismatch", i, j)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"wrong magic", bytes.Repeat([]byte{0xaa}, 64)},
		{"truncated", append([]byte("ZCT1"), bytes.Repeat([]byte{0}, 30)...)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTrace(bytes.NewReader(tt.data)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestTraceDeviceReplaysThroughBus(t *testing.T) {
	// Record a drive...
	srcBus, _ := newTestBus()
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	var original []*signal.Record
	for i := 0; i < 15; i++ {
		f := srcBus.Tick()
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
		rec, errs := ParseFrame(f)
		if len(errs) > 0 {
			t.Fatal(errs)
		}
		original = append(original, rec)
	}

	// ... and replay it as a device on a fresh bus.
	frames, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayBus := NewBus(Config{})
	replayBus.Attach(NewTraceDevice(frames))
	reader := replayBus.NewReader(FaultConfig{}, 1)

	for i := 0; i < 15; i++ {
		replayBus.Tick()
		f := drain(t, reader)
		rec, errs := ParseFrame(f)
		if len(errs) > 0 {
			t.Fatal(errs)
		}
		// The replayed signal content equals the original recording
		// (signal-embedded cycle stamps included).
		if len(rec.Signals) != len(original[i].Signals) {
			t.Fatalf("frame %d: %d signals, want %d", i, len(rec.Signals), len(original[i].Signals))
		}
		for j := range rec.Signals {
			if rec.Signals[j].Value != original[i].Signals[j].Value ||
				rec.Signals[j].Cycle != original[i].Signals[j].Cycle {
				t.Fatalf("frame %d signal %d differs", i, j)
			}
		}
	}
	// Past the end, the device is silent.
	replayBus.Tick()
	f := drain(t, reader)
	if len(f.Ports) != 0 {
		t.Errorf("exhausted trace still produced %d ports", len(f.Ports))
	}
}

func TestRecordTraceHelper(t *testing.T) {
	bus, _ := newTestBus()
	var buf bytes.Buffer
	stop := RecordTrace(bus, &buf)
	for i := 0; i < 5; i++ {
		bus.Tick()
	}
	// stop drains frames already delivered to the recording reader; buf is
	// only safe to read after it returns.
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Errorf("recorded %d frames, want 5", len(frames))
	}
}
