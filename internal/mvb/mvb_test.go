package mvb

import (
	"context"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/signal"
)

func drain(t *testing.T, r *Reader) Frame {
	t.Helper()
	select {
	case f := <-r.C():
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("no frame delivered")
		return Frame{}
	}
}

func newTestBus() (*Bus, *signal.Generator) {
	gen := signal.NewGenerator(signal.DefaultGeneratorConfig())
	bus := NewBus(Config{})
	bus.Attach(NewSignalDevice(gen))
	return bus, gen
}

func TestBusTickDeliversToAllReaders(t *testing.T) {
	bus, _ := newTestBus()
	r1 := bus.NewReader(FaultConfig{}, 1)
	r2 := bus.NewReader(FaultConfig{}, 2)

	master := bus.Tick()
	f1 := drain(t, r1)
	f2 := drain(t, r2)

	if f1.Cycle != 0 || f2.Cycle != 0 {
		t.Errorf("cycles = %d, %d", f1.Cycle, f2.Cycle)
	}
	if len(master.Ports) == 0 {
		t.Fatal("master frame empty")
	}
	if len(f1.Ports) != len(master.Ports) || len(f2.Ports) != len(master.Ports) {
		t.Errorf("port counts differ: master=%d r1=%d r2=%d",
			len(master.Ports), len(f1.Ports), len(f2.Ports))
	}
}

func TestBusCycleIncrements(t *testing.T) {
	bus, _ := newTestBus()
	r := bus.NewReader(FaultConfig{}, 1)
	for want := uint64(0); want < 5; want++ {
		bus.Tick()
		if f := drain(t, r); f.Cycle != want {
			t.Fatalf("cycle = %d, want %d", f.Cycle, want)
		}
	}
	if bus.Cycle() != 5 {
		t.Errorf("Cycle() = %d", bus.Cycle())
	}
}

func TestBusIdenticalFramesAcrossReaders(t *testing.T) {
	bus, _ := newTestBus()
	r1 := bus.NewReader(FaultConfig{}, 1)
	r2 := bus.NewReader(FaultConfig{}, 2)

	for i := 0; i < 20; i++ {
		bus.Tick()
		f1, f2 := drain(t, r1), drain(t, r2)
		rec1, errs1 := ParseFrame(f1)
		rec2, errs2 := ParseFrame(f2)
		if len(errs1) != 0 || len(errs2) != 0 {
			t.Fatalf("parse errors on fault-free bus: %v %v", errs1, errs2)
		}
		if string(rec1.Marshal()) != string(rec2.Marshal()) {
			t.Fatalf("cycle %d: fault-free readers observed different data", i)
		}
	}
}

func TestBusUnknownPortsFiltered(t *testing.T) {
	bus := NewBus(Config{})
	bus.Attach(DeviceFunc(func(cycle uint64) []PortData {
		return []PortData{
			{Port: signal.PortSpeed, Data: signal.EncodePort(signal.Signal{Kind: signal.KindSpeed, Value: 1})},
			{Port: 0xbeef, Data: []byte{1, 2, 3}}, // not in NSDB
		}
	}))
	r := bus.NewReader(FaultConfig{}, 1)
	bus.Tick()
	f := drain(t, r)
	if len(f.Ports) != 1 || f.Ports[0].Port != signal.PortSpeed {
		t.Errorf("ports = %+v", f.Ports)
	}
}

func TestBusFirstWriterOwnsPort(t *testing.T) {
	bus := NewBus(Config{})
	mk := func(v float64) []byte {
		return signal.EncodePort(signal.Signal{Kind: signal.KindSpeed, Value: v})
	}
	bus.Attach(DeviceFunc(func(uint64) []PortData {
		return []PortData{{Port: signal.PortSpeed, Data: mk(1)}}
	}))
	bus.Attach(DeviceFunc(func(uint64) []PortData {
		return []PortData{{Port: signal.PortSpeed, Data: mk(2)}}
	}))
	r := bus.NewReader(FaultConfig{}, 1)
	bus.Tick()
	f := drain(t, r)
	if len(f.Ports) != 1 {
		t.Fatalf("ports = %+v", f.Ports)
	}
	s, err := signal.DecodePort(f.Ports[0].Port, f.Ports[0].Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != 1 {
		t.Errorf("port value = %v, want first device's 1", s.Value)
	}
}

func TestReaderDropFault(t *testing.T) {
	bus, _ := newTestBus()
	r := bus.NewReader(FaultConfig{DropRate: 1}, 1)
	for i := 0; i < 10; i++ {
		bus.Tick()
	}
	select {
	case f := <-r.C():
		t.Fatalf("frame %d delivered despite drop rate 1", f.Cycle)
	default:
	}
	if r.Dropped() != 10 {
		t.Errorf("Dropped() = %d, want 10", r.Dropped())
	}
}

func TestReaderBitFlipFaultIsLocal(t *testing.T) {
	bus, _ := newTestBus()
	faulty := bus.NewReader(FaultConfig{BitFlipRate: 1}, 1)
	clean := bus.NewReader(FaultConfig{}, 2)

	corrupted := 0
	for i := 0; i < 50; i++ {
		master := bus.Tick()
		ff, cf := drain(t, faulty), drain(t, clean)
		// The clean reader must see exactly the master data.
		for j := range master.Ports {
			if string(cf.Ports[j].Data) != string(master.Ports[j].Data) {
				t.Fatal("clean reader saw corrupted data")
			}
		}
		for j := range master.Ports {
			if string(ff.Ports[j].Data) != string(master.Ports[j].Data) {
				corrupted++
				break
			}
		}
	}
	if corrupted == 0 {
		t.Error("bit-flip injector never corrupted anything")
	}
}

func TestReaderDelayFaultShiftsCycle(t *testing.T) {
	bus, _ := newTestBus()
	r := bus.NewReader(FaultConfig{DelayRate: 1}, 1)

	bus.Tick() // frame 0: held back
	select {
	case f := <-r.C():
		t.Fatalf("frame %d delivered despite delay", f.Cycle)
	default:
	}
	bus.Tick() // frame 1: held back, frame 0 released
	f := drain(t, r)
	if f.Cycle != 0 {
		t.Errorf("released frame cycle = %d, want 0", f.Cycle)
	}
}

func TestReaderDivergeFaultChangesOnlyOneReader(t *testing.T) {
	bus, _ := newTestBus()
	diverging := bus.NewReader(FaultConfig{DivergeRate: 1}, 3)
	clean := bus.NewReader(FaultConfig{}, 4)

	diverged := 0
	for i := 0; i < 50; i++ {
		bus.Tick()
		df, cf := drain(t, diverging), drain(t, clean)
		recD, errsD := ParseFrame(df)
		recC, errsC := ParseFrame(cf)
		if len(errsC) != 0 {
			t.Fatalf("clean parse errors: %v", errsC)
		}
		// Diverged data must still parse: it models a legitimate
		// different reading, not garbage.
		if len(errsD) != 0 {
			t.Fatalf("diverged frame unparseable: %v", errsD)
		}
		if string(recD.Marshal()) != string(recC.Marshal()) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("diverge injector had no effect")
	}
}

func TestParseFrameSkipsCorruptPort(t *testing.T) {
	f := Frame{Cycle: 3, Ports: []PortData{
		{Port: signal.PortSpeed, Data: signal.EncodePort(signal.Signal{Kind: signal.KindSpeed, Value: 7})},
		{Port: signal.PortBrake, Data: []byte{0xff}}, // garbage
	}}
	rec, errs := ParseFrame(f)
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if len(rec.Signals) != 1 || rec.Signals[0].Value != 7 {
		t.Errorf("signals = %+v", rec.Signals)
	}
}

func TestBusRunWithFakeClock(t *testing.T) {
	bus, _ := newTestBus()
	r := bus.NewReader(FaultConfig{}, 1)
	clk := clock.NewFake()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		bus.Run(ctx, clk)
	}()

	for i := 0; i < 3; i++ {
		// Each Advance fires the armed cycle timer; the frame lands on
		// the reader channel shortly after.
		for bus.Cycle() == uint64(i) {
			clk.Advance(64 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
		if f := drain(t, r); f.Cycle != uint64(i) {
			t.Fatalf("frame cycle = %d, want %d", f.Cycle, i)
		}
	}
	cancel()
	clk.Advance(64 * time.Millisecond) // release a blocked timer wait
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
}

func TestNSDBKnows(t *testing.T) {
	nsdb := DefaultNSDB()
	if !nsdb.Knows(signal.PortSpeed) {
		t.Error("default NSDB missing speed port")
	}
	if nsdb.Knows(0xbeef) {
		t.Error("default NSDB claims unknown port")
	}
}
