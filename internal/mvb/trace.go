package mvb

import (
	"fmt"
	"io"
	"os"

	"zugchain/internal/wire"
)

// Trace recording and replay: the paper validates its bus simulation
// against real MVB data ("The results are consistent with the simulation",
// §V-A). TraceWriter captures the frames a bus produced; TraceDevice
// replays a captured trace as a bus device, so recorded real-bus data can
// drive the whole pipeline in place of the synthetic generator.

// traceMagic guards against feeding arbitrary files to the replayer.
var traceMagic = [4]byte{'Z', 'C', 'T', '1'}

// TraceWriter appends frames to a trace stream.
type TraceWriter struct {
	w     io.Writer
	wrote bool
}

// NewTraceWriter creates a writer emitting to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w}
}

// WriteFrame appends one frame.
func (t *TraceWriter) WriteFrame(f Frame) error {
	e := wire.NewEncoder(256)
	if !t.wrote {
		e.Bytes32([32]byte{traceMagic[0], traceMagic[1], traceMagic[2], traceMagic[3]})
		t.wrote = true
	}
	e.Uint64(f.Cycle)
	e.Uvarint(uint64(len(f.Ports)))
	for _, p := range f.Ports {
		e.Uint16(p.Port)
		e.Bytes(p.Data)
	}
	if _, err := t.w.Write(e.Data()); err != nil {
		return fmt.Errorf("mvb: write trace frame: %w", err)
	}
	return nil
}

// ReadTrace parses a complete trace stream into frames.
func ReadTrace(r io.Reader) ([]Frame, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("mvb: read trace: %w", err)
	}
	d := wire.NewDecoder(data)
	header := d.Bytes32()
	if d.Err() != nil || header[0] != traceMagic[0] || header[1] != traceMagic[1] ||
		header[2] != traceMagic[2] || header[3] != traceMagic[3] {
		return nil, fmt.Errorf("mvb: not a ZugChain bus trace")
	}
	var frames []Frame
	for d.Remaining() > 0 {
		f := Frame{Cycle: d.Uint64()}
		n := d.Uvarint()
		if n > 4096 {
			return nil, fmt.Errorf("mvb: trace frame claims %d ports", n)
		}
		for i := uint64(0); i < n; i++ {
			f.Ports = append(f.Ports, PortData{
				Port: d.Uint16(),
				Data: d.BytesCopy(),
			})
		}
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("mvb: corrupt trace: %w", err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// RecordTrace attaches a recording reader to the bus and streams everything
// it observes to w until the returned stop function is called.
func RecordTrace(bus *Bus, w io.Writer) (stop func() error) {
	reader := bus.NewReader(FaultConfig{}, 0)
	writer := NewTraceWriter(w)
	done := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		var firstErr error
		record := func(f Frame) {
			if err := writer.WriteFrame(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for {
			select {
			case <-done:
				// Drain frames already delivered before stopping.
				for {
					select {
					case f := <-reader.C():
						record(f)
					default:
						errCh <- firstErr
						return
					}
				}
			case f := <-reader.C():
				record(f)
			}
		}
	}()
	return func() error {
		close(done)
		return <-errCh
	}
}

// TraceDevice replays a recorded trace as a bus device: poll n returns the
// n-th recorded frame's ports (the recorded cycle numbers are preserved in
// the port payloads; the bus assigns fresh cycle numbers). After the trace
// is exhausted the device goes silent, like a disconnected source.
type TraceDevice struct {
	frames []Frame
}

// NewTraceDevice wraps recorded frames as a device.
func NewTraceDevice(frames []Frame) *TraceDevice {
	return &TraceDevice{frames: frames}
}

// LoadTraceDevice reads a trace file into a replay device.
func LoadTraceDevice(path string) (*TraceDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mvb: open trace: %w", err)
	}
	defer f.Close()
	frames, err := ReadTrace(f)
	if err != nil {
		return nil, err
	}
	return &TraceDevice{frames: frames}, nil
}

// Len reports the number of recorded frames.
func (t *TraceDevice) Len() int { return len(t.frames) }

// Poll implements Device.
func (t *TraceDevice) Poll(cycle uint64) []PortData {
	if cycle >= uint64(len(t.frames)) {
		return nil
	}
	return t.frames[cycle].Ports
}
