// Package mvb simulates the Multifunction Vehicle Bus (IEC 61375-3-1), the
// time-triggered train bus ZugChain reads its input from. A bus master polls
// the attached source devices once per cycle and delivers the consolidated
// process-data frame to every attached reader.
//
// The simulator reproduces the properties §III-B builds on:
//
//   - time-triggered: exactly one frame per cycle, paced by the bus master;
//   - unauthenticated: port data carries no source identification;
//   - unreliable per node: each reader has an independent fault injector
//     for dropped frames, bit flips [9], delayed (cycle-shifted) delivery,
//     and divergent reads, so different nodes can observe different input
//     in the same cycle.
//
// The paper's testbed accesses a real MVB through a proprietary Siemens
// library; this package is the drop-in substitute documented in DESIGN.md.
package mvb

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/signal"
)

// PortData is the raw content of one process-data port in one cycle.
type PortData struct {
	Port uint16
	Data []byte
}

// Frame is everything transmitted on the bus during one cycle.
type Frame struct {
	Cycle uint64
	Ports []PortData
}

// clonePorts deep-copies port data so per-reader corruption cannot leak
// between readers.
func clonePorts(ports []PortData) []PortData {
	out := make([]PortData, len(ports))
	for i, p := range ports {
		data := make([]byte, len(p.Data))
		copy(data, p.Data)
		out[i] = PortData{Port: p.Port, Data: data}
	}
	return out
}

// PortEntry describes one configured port, NSDB-style (§V-A: each component
// carries a node supervisor database file specifying its signals).
type PortEntry struct {
	Port uint16
	Name string
}

// NSDB is the bus configuration: the set of known ports.
type NSDB struct {
	Entries []PortEntry
}

// DefaultNSDB lists the juridical ports served by the signal generator.
func DefaultNSDB() NSDB {
	return NSDB{Entries: []PortEntry{
		{Port: signal.PortSpeed, Name: "speed"},
		{Port: signal.PortOdometer, Name: "odometer"},
		{Port: signal.PortBrake, Name: "brake-pressure"},
		{Port: signal.PortDoors, Name: "doors"},
		{Port: signal.PortCabSignal, Name: "cab-signal"},
		{Port: signal.PortTraction, Name: "traction"},
		{Port: signal.PortATP, Name: "atp-command"},
		{Port: signal.PortEmergency, Name: "emergency-brake"},
		{Port: signal.PortBulk, Name: "bulk-data"},
	}}
}

// Knows reports whether the port appears in the configuration.
func (n NSDB) Knows(port uint16) bool {
	for _, e := range n.Entries {
		if e.Port == port {
			return true
		}
	}
	return false
}

// Device is a data source polled by the bus master each cycle, e.g. the ATP.
type Device interface {
	// Poll returns the port data the device transmits in the given cycle.
	Poll(cycle uint64) []PortData
}

// DeviceFunc adapts a function to the Device interface.
type DeviceFunc func(cycle uint64) []PortData

// Poll implements Device.
func (f DeviceFunc) Poll(cycle uint64) []PortData { return f(cycle) }

// Config parameterizes a Bus.
type Config struct {
	// CycleTime is the bus cycle duration (the MVB minimum is 32 ms; the
	// paper's common value is 64 ms). Only used by Run; Tick ignores it.
	CycleTime time.Duration
	// NSDB is the port configuration. Unknown ports are discarded by the
	// master, as a real MVB master would not poll them.
	NSDB NSDB
}

// Bus is the simulated MVB with its master.
type Bus struct {
	cfg Config

	mu      sync.Mutex
	devices []Device
	readers []*Reader
	cycle   uint64
}

// NewBus creates a bus with the given configuration.
func NewBus(cfg Config) *Bus {
	if cfg.CycleTime <= 0 {
		cfg.CycleTime = 64 * time.Millisecond
	}
	if len(cfg.NSDB.Entries) == 0 {
		cfg.NSDB = DefaultNSDB()
	}
	return &Bus{cfg: cfg}
}

// Attach adds a source device.
func (b *Bus) Attach(dev Device) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.devices = append(b.devices, dev)
}

// NewReader attaches a reader with the given fault profile. seed
// de-correlates fault decisions between readers.
func (b *Bus) NewReader(faults FaultConfig, seed int64) *Reader {
	r := &Reader{
		faults: faults,
		rng:    rand.New(rand.NewSource(seed)),
		ch:     make(chan Frame, 256),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.readers = append(b.readers, r)
	return r
}

// Cycle reports the number of completed cycles.
func (b *Bus) Cycle() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cycle
}

// Tick runs exactly one bus cycle: the master polls all devices, merges
// their port data (first writer wins per port, as port ownership is unique
// on a real MVB), and delivers the frame to each reader through its fault
// injector. It returns the delivered master frame.
func (b *Bus) Tick() Frame {
	b.mu.Lock()
	cycle := b.cycle
	b.cycle++
	devices := make([]Device, len(b.devices))
	copy(devices, b.devices)
	readers := make([]*Reader, len(b.readers))
	copy(readers, b.readers)
	b.mu.Unlock()

	seen := make(map[uint16]bool)
	var ports []PortData
	for _, dev := range devices {
		for _, p := range dev.Poll(cycle) {
			if !b.cfg.NSDB.Knows(p.Port) || seen[p.Port] {
				continue
			}
			seen[p.Port] = true
			ports = append(ports, p)
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })

	frame := Frame{Cycle: cycle, Ports: ports}
	for _, r := range readers {
		r.offer(frame)
	}
	return frame
}

// Run drives Tick on every cycle boundary until ctx is cancelled. It uses
// clk so tests may pace the bus with a fake clock.
func (b *Bus) Run(ctx context.Context, clk clock.Clock) {
	for {
		timer := clk.NewTimer(b.cfg.CycleTime)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C():
			b.Tick()
		}
	}
}

// ParseFrame derives the parsed signals from a raw frame using the shared,
// verified transformation (§III-A). Ports that fail to parse — e.g. after a
// bit flip hit the encoding — are reported in errs but do not prevent the
// remaining ports from being parsed; a real JRU logs what it can read.
func ParseFrame(f Frame) (*signal.Record, []error) {
	rec := &signal.Record{Cycle: f.Cycle, Signals: make([]signal.Signal, 0, len(f.Ports))}
	var errs []error
	for _, p := range f.Ports {
		s, err := signal.DecodePort(p.Port, p.Data, f.Cycle)
		if err != nil {
			errs = append(errs, fmt.Errorf("cycle %d: %w", f.Cycle, err))
			continue
		}
		rec.Signals = append(rec.Signals, s)
	}
	return rec, errs
}

// SignalDevice adapts a signal.Generator to the bus Device interface,
// encoding each generated signal onto its port.
type SignalDevice struct {
	gen *signal.Generator
}

// NewSignalDevice wraps gen as a bus device.
func NewSignalDevice(gen *signal.Generator) *SignalDevice {
	return &SignalDevice{gen: gen}
}

// Poll implements Device.
func (d *SignalDevice) Poll(cycle uint64) []PortData {
	signals := d.gen.Generate(cycle)
	ports := make([]PortData, len(signals))
	for i, s := range signals {
		ports[i] = PortData{Port: s.Port, Data: signal.EncodePort(s)}
	}
	return ports
}
