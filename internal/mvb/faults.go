package mvb

import "math/rand"

// FaultConfig describes the per-reader bus fault profile of §III-B: "messages
// from the bus can be dropped or reordered ... It is also possible for nodes
// to read diverging input during the same bus cycle." Probabilities are per
// frame, independent across readers.
type FaultConfig struct {
	// DropRate is the probability that a reader misses a whole frame
	// ("a replica does not receive any signals in a cycle").
	DropRate float64
	// BitFlipRate is the probability that one random bit of one random
	// port's data is flipped during reception, per the MVB error study [9].
	BitFlipRate float64
	// DelayRate is the probability that a frame is not delivered in its
	// own cycle but held and delivered before the next one ("all signals
	// from one bus cycle are received during a different one").
	DelayRate float64
	// DivergeRate is the probability that one port's data is replaced by
	// a corrupted-but-well-formed variant only this reader sees, yielding
	// diverging input across nodes.
	DivergeRate float64
}

// Reader is one node's attachment to the bus.
type Reader struct {
	faults  FaultConfig
	rng     *rand.Rand
	ch      chan Frame
	delayed *Frame // frame held back by a delay fault
	dropped uint64
}

// C returns the channel on which received frames are delivered.
func (r *Reader) C() <-chan Frame { return r.ch }

// Dropped reports how many frames this reader lost to drops or a full
// buffer.
func (r *Reader) Dropped() uint64 { return r.dropped }

// offer runs the fault injector and enqueues the frame(s) for the reader.
// It is called by the bus master goroutine only, so reader-local state
// (rng, delayed) needs no locking.
func (r *Reader) offer(frame Frame) {
	// A frame held back by an earlier delay fault arrives together with
	// the current one, i.e. one cycle late and out of order.
	if r.delayed != nil {
		held := *r.delayed
		r.delayed = nil
		defer r.enqueue(held)
	}

	if r.faults.DropRate > 0 && r.rng.Float64() < r.faults.DropRate {
		r.dropped++
		return
	}

	needsMutation := false
	bitFlip := r.faults.BitFlipRate > 0 && r.rng.Float64() < r.faults.BitFlipRate
	diverge := r.faults.DivergeRate > 0 && r.rng.Float64() < r.faults.DivergeRate
	if bitFlip || diverge {
		needsMutation = true
	}
	if needsMutation {
		frame.Ports = clonePorts(frame.Ports)
		if bitFlip {
			r.flipRandomBit(&frame)
		}
		if diverge {
			r.divergePort(&frame)
		}
	}

	if r.faults.DelayRate > 0 && r.rng.Float64() < r.faults.DelayRate {
		held := frame
		r.delayed = &held
		return
	}
	r.enqueue(frame)
}

func (r *Reader) enqueue(frame Frame) {
	select {
	case r.ch <- frame:
	default:
		// Reader not draining: the frame is lost, exactly like a real
		// device missing its bus window.
		r.dropped++
	}
}

// flipRandomBit flips one random bit in one random port's data.
func (r *Reader) flipRandomBit(f *Frame) {
	if len(f.Ports) == 0 {
		return
	}
	p := &f.Ports[r.rng.Intn(len(f.Ports))]
	if len(p.Data) == 0 {
		return
	}
	bit := r.rng.Intn(len(p.Data) * 8)
	p.Data[bit/8] ^= 1 << (bit % 8)
}

// divergePort rewrites one port with well-formed but different bytes by
// perturbing the last data byte's low bits in a way that keeps the encoding
// parseable for small numeric fields. It models a node legitimately reading
// a slightly different value in the same cycle.
func (r *Reader) divergePort(f *Frame) {
	if len(f.Ports) == 0 {
		return
	}
	p := &f.Ports[r.rng.Intn(len(f.Ports))]
	if len(p.Data) < 14 {
		return
	}
	// Port layout (signal.EncodePort): kind(1) float64(8) uint32(4) bytes.
	// Perturb the Discrete field, which any uint32 value keeps valid.
	p.Data[9+r.rng.Intn(4)] ^= 0x01
}
