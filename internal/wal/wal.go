// Package wal is an append-only write-ahead log for the PBFT layer's
// stable-storage requirement: Castro–Liskov replicas must log protocol
// messages before sending them so a crashed replica comes back remembering
// what it vouched for. Records are CRC-32C framed inside numbered segment
// files; appends are group-committed (one fsync covers every append waiting
// at that moment, the same amortization blockchain.Store uses for blocks);
// recovery on open replays the longest contiguous valid prefix and reports
// — rather than silently drops — any torn tail a crash left behind.
// Checkpoint-based truncation is a segment rotation: the caller hands the
// log a compact snapshot of live state, which seeds a fresh segment, and
// every older segment is deleted.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"zugchain/internal/metrics"
	"zugchain/internal/wire"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// RecoveryReport describes what Open found on disk.
type RecoveryReport struct {
	// Segments counts segment files that survived recovery; Records the
	// records replayed from them.
	Segments int
	Records  int
	// TruncatedBytes counts corrupt tail bytes discarded from the last
	// valid segment; TruncatedSegments whole segments discarded because
	// they followed the corruption point.
	TruncatedBytes    int64
	TruncatedSegments int
}

// Truncated reports whether recovery discarded anything.
func (r RecoveryReport) Truncated() bool {
	return r.TruncatedBytes > 0 || r.TruncatedSegments > 0
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir      string
	counters metrics.WALCounters

	writeCh chan *appendReq
	quit    chan struct{}
	done    chan struct{}

	closeOnce sync.Once

	// Writer-goroutine state: only the writer touches these after Open.
	f   *os.File
	seg uint64
	enc *wire.Encoder
}

type appendReq struct {
	recs   []Record
	rotate bool
	err    chan error
}

const segPattern = "wal-%08d.log"

// Open opens (creating if necessary) the log in dir, replays every valid
// record in segment order, and starts the group-commit writer. The replayed
// records are returned in append order for the caller to interpret; the
// report says whether a torn tail was discarded.
func Open(dir string) (*Log, []Record, RecoveryReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryReport{}, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, RecoveryReport{}, err
	}

	var (
		records []Record
		report  RecoveryReport
		dirty   bool // recovery modified the directory
	)
	keep := len(segs)
	for i, seg := range segs {
		path := filepath.Join(dir, fmt.Sprintf(segPattern, seg))
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, RecoveryReport{}, err
		}
		off := 0
		torn := false
		for off < len(buf) {
			r, n, err := readFrame(buf[off:])
			if err != nil {
				torn = true
				break
			}
			records = append(records, r)
			off += n
		}
		if !torn {
			continue
		}
		// A torn frame marks the point the crash interrupted a write.
		// Nothing at or after it can be trusted: truncate this segment
		// and discard every later one.
		report.TruncatedBytes += int64(len(buf) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, nil, RecoveryReport{}, err
		}
		dirty = true
		keep = i + 1
		for _, later := range segs[i+1:] {
			lp := filepath.Join(dir, fmt.Sprintf(segPattern, later))
			if fi, err := os.Stat(lp); err == nil {
				report.TruncatedBytes += fi.Size()
			}
			if err := os.Remove(lp); err != nil {
				return nil, nil, RecoveryReport{}, err
			}
			report.TruncatedSegments++
		}
		break
	}
	segs = segs[:keep]
	report.Segments = len(segs)
	report.Records = len(records)

	active := uint64(1)
	if len(segs) > 0 {
		active = segs[len(segs)-1]
	} else {
		dirty = true
	}
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf(segPattern, active)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, RecoveryReport{}, err
	}
	if dirty {
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, RecoveryReport{}, err
		}
	}

	l := &Log{
		dir:     dir,
		writeCh: make(chan *appendReq),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		f:       f,
		seg:     active,
		enc:     wire.NewEncoder(4096),
	}
	l.counters.RecordReplay(len(records), report.TruncatedBytes)
	go l.commitLoop()
	return l, records, report, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Counters exposes the log's instrumentation.
func (l *Log) Counters() *metrics.WALCounters { return &l.counters }

// Append durably writes recs, returning once they (and every record queued
// before them) have been fsync'd. Concurrent appends are group-committed:
// all requests waiting when the writer gets the disk share one fsync.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	return l.submit(&appendReq{recs: recs, err: make(chan error, 1)})
}

// Rotate starts a fresh segment seeded with snapshot — the caller's compact
// restatement of all state still live after a stable checkpoint — then
// deletes every older segment. Appends queued behind the rotation land in
// the new segment.
func (l *Log) Rotate(snapshot []Record) error {
	return l.submit(&appendReq{recs: snapshot, rotate: true, err: make(chan error, 1)})
}

func (l *Log) submit(req *appendReq) error {
	select {
	case l.writeCh <- req:
		return <-req.err
	case <-l.quit:
		return ErrClosed
	}
}

// Close stops the writer and closes the active segment. Pending appends
// fail with ErrClosed.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { close(l.quit) })
	<-l.done
	return nil
}

// commitLoop is the single writer goroutine: it drains all waiting requests
// into one group, encodes their frames into one buffer, and retires the
// group with a single write+fsync. A sticky failure poisons the log — once
// an fsync fails nothing more may be acknowledged as durable.
func (l *Log) commitLoop() {
	defer close(l.done)
	defer l.f.Close()
	var failed error
	for {
		var first *appendReq
		select {
		case <-l.quit:
			return
		case first = <-l.writeCh:
		}
		group := []*appendReq{first}
		// A rotation runs alone; otherwise greedily absorb whatever else
		// is already waiting, stopping before a rotation.
		if !first.rotate {
		drain:
			for {
				select {
				case req := <-l.writeCh:
					group = append(group, req)
					if req.rotate {
						break drain
					}
				default:
					break drain
				}
			}
		}
		if failed != nil {
			for _, req := range group {
				req.err <- failed
			}
			continue
		}
		failed = l.commitGroup(group)
	}
}

// commitGroup writes the group. If the last request is a rotation, the
// preceding appends are flushed to the old segment first, then the rotation
// runs. Returns the sticky error, if any.
func (l *Log) commitGroup(group []*appendReq) error {
	last := group[len(group)-1]
	appends := group
	if last.rotate {
		appends = group[:len(group)-1]
	}
	if len(appends) > 0 {
		if err := l.writeGroup(appends); err != nil {
			for _, req := range group {
				req.err <- err
			}
			return err
		}
		for _, req := range appends {
			req.err <- nil
		}
	}
	if !last.rotate {
		return nil
	}
	err := l.rotate(last.recs)
	last.err <- err
	return err
}

func (l *Log) writeGroup(group []*appendReq) error {
	l.enc.Reset()
	n := 0
	for _, req := range group {
		for _, r := range req.recs {
			frameRecord(l.enc, r)
			n++
		}
	}
	if _, err := l.f.Write(l.enc.Data()); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.counters.RecordGroup(n, l.enc.Len())
	return nil
}

// rotate creates segment seg+1 seeded with snapshot, makes it durable, then
// deletes all older segments. Crash-safety: the new segment is fsync'd (file
// and directory entry) before any old segment is removed, so recovery always
// finds either the old segments intact or the snapshot — replaying both,
// when a crash lands between the two dir syncs, is harmless because snapshot
// records restate rather than contradict the old state.
func (l *Log) rotate(snapshot []Record) error {
	next := l.seg + 1
	path := filepath.Join(l.dir, fmt.Sprintf(segPattern, next))
	nf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.enc.Reset()
	for _, r := range snapshot {
		frameRecord(l.enc, r)
	}
	if _, err := nf.Write(l.enc.Data()); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return err
	}
	old := l.f
	oldSeg := l.seg
	l.f, l.seg = nf, next
	old.Close()
	for seg := oldSeg; seg >= 1; seg-- {
		op := filepath.Join(l.dir, fmt.Sprintf(segPattern, seg))
		if err := os.Remove(op); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return err
		}
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.counters.AddRotation()
	return nil
}

func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), segPattern, &n); err == nil && n > 0 {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
