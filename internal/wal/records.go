package wal

import (
	"errors"
	"fmt"
	"hash/crc32"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Kind identifies what protocol event a Record captures. The WAL itself
// treats records as opaque; these kinds are the vocabulary the PBFT layer
// writes and the node's recovery path interprets.
type Kind uint8

const (
	// KindView records the replica's view state: View is the active view,
	// Seq carries the highest view a ViewChange was sent for, and Flag
	// whether a view change was in progress.
	KindView Kind = 1
	// KindPrePrepare, KindPrepare and KindCommit pin the digest this
	// replica vouched for at (View, Seq) — written before the message is
	// sent so a restarted replica cannot equivocate on the slot.
	KindPrePrepare Kind = 2
	KindPrepare    Kind = 3
	KindCommit     Kind = 4
	// KindCheckpoint carries an encoded stable checkpoint proof in Data.
	KindCheckpoint Kind = 5
	// KindDedup records one communication-layer dedup window entry:
	// payload digest Digest was decided at sequence Seq.
	KindDedup Kind = 6
	// KindPreparedCert carries an encoded prepared certificate (the
	// accepted PrePrepare plus 2f matching Prepares) in Data — the
	// view-change P set entry for (View, Seq), written when the slot
	// reaches prepared.
	KindPreparedCert Kind = 7
)

// Record is one durable WAL entry. Field meaning depends on Kind; unused
// fields are zero.
type Record struct {
	Kind   Kind
	View   uint64
	Seq    uint64
	Digest crypto.Digest
	Flag   bool
	Data   []byte
}

// MaxRecordSize bounds one encoded record. Checkpoint proofs (the largest
// kind) carry ~100 bytes per replica signature; 1 MiB leaves three orders
// of magnitude of headroom while letting recovery reject garbage lengths
// without huge allocations.
const MaxRecordSize = 1 << 20

// castagnoli is the CRC-32C polynomial, the standard choice for storage
// framing (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	errShortFrame = errors.New("wal: short frame")
	errBadCRC     = errors.New("wal: frame checksum mismatch")
	errFrameSize  = errors.New("wal: frame exceeds max record size")
)

// appendRecord encodes r as one payload (no frame) onto enc.
func appendRecord(enc *wire.Encoder, r Record) {
	enc.Byte(byte(r.Kind))
	enc.Uvarint(r.View)
	enc.Uvarint(r.Seq)
	enc.Bytes32(r.Digest)
	enc.Bool(r.Flag)
	enc.Bytes(r.Data)
}

// DecodeRecord decodes one record payload produced by appendRecord. It is
// exported for the fuzz harness; the framing layer guarantees payload
// integrity via CRC before this runs.
func DecodeRecord(payload []byte) (Record, error) {
	d := wire.NewDecoder(payload)
	r := Record{
		Kind:   Kind(d.Byte()),
		View:   d.Uvarint(),
		Seq:    d.Uvarint(),
		Digest: d.Bytes32(),
		Flag:   d.Bool(),
	}
	r.Data = d.BytesCopy()
	if err := d.Err(); err != nil {
		return Record{}, err
	}
	if d.Remaining() != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after record", d.Remaining())
	}
	if r.Kind < KindView || r.Kind > KindPreparedCert {
		return Record{}, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return r, nil
}

// EncodeRecord returns the standalone payload encoding of r (no frame).
// Exported for the fuzz harness as the round-trip counterpart of
// DecodeRecord.
func EncodeRecord(r Record) []byte {
	enc := wire.NewEncoder(64 + len(r.Data))
	appendRecord(enc, r)
	out := make([]byte, enc.Len())
	copy(out, enc.Data())
	return out
}

// frameRecord appends the full on-disk frame for r onto enc:
//
//	[uint32 payload len][uint32 CRC-32C of payload][payload]
func frameRecord(enc *wire.Encoder, r Record) {
	headerAt := enc.Len()
	enc.Uint32(0) // length placeholder
	enc.Uint32(0) // crc placeholder
	payloadAt := enc.Len()
	appendRecord(enc, r)
	payload := enc.Data()[payloadAt:]
	patchFrameHeader(enc.Data()[headerAt:payloadAt], payload)
}

func patchFrameHeader(header, payload []byte) {
	n := uint32(len(payload))
	header[0] = byte(n)
	header[1] = byte(n >> 8)
	header[2] = byte(n >> 16)
	header[3] = byte(n >> 24)
	c := crc32.Checksum(payload, castagnoli)
	header[4] = byte(c)
	header[5] = byte(c >> 8)
	header[6] = byte(c >> 16)
	header[7] = byte(c >> 24)
}

// frameHeaderSize is the per-record framing overhead.
const frameHeaderSize = 8

// readFrame decodes the frame at the front of buf, returning the record and
// the number of bytes consumed. Any malformed prefix — short header, bogus
// length, CRC mismatch, undecodable payload — returns an error; recovery
// treats that position as the torn tail of a crashed write.
func readFrame(buf []byte) (Record, int, error) {
	if len(buf) < frameHeaderSize {
		return Record{}, 0, errShortFrame
	}
	n := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	if n > MaxRecordSize {
		return Record{}, 0, errFrameSize
	}
	want := uint32(buf[4]) | uint32(buf[5])<<8 | uint32(buf[6])<<16 | uint32(buf[7])<<24
	end := frameHeaderSize + int(n)
	if len(buf) < end {
		return Record{}, 0, errShortFrame
	}
	payload := buf[frameHeaderSize:end]
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, 0, errBadCRC
	}
	r, err := DecodeRecord(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, end, nil
}
