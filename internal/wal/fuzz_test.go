package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the record decoder: it must never
// panic, and everything it accepts must re-encode to the identical payload
// (the decoder and encoder agree on one canonical form).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(Record{Kind: KindView, View: 3, Seq: 7}))
	f.Add(EncodeRecord(Record{Kind: KindCheckpoint, Seq: 100, Data: []byte("proof")}))
	f.Add(EncodeRecord(Record{Kind: KindDedup, Seq: 42, Flag: true}))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err != nil {
			return
		}
		round := EncodeRecord(r)
		if !bytes.Equal(round, data) {
			t.Fatalf("accepted non-canonical encoding:\n in: %x\nout: %x", data, round)
		}
	})
}

// FuzzFrameDecode exercises the CRC framing layer the same way: arbitrary
// bytes must never panic, and any frame it accepts must decode to a record
// the framer can reproduce.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := readFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frame consumed %d of %d bytes", n, len(data))
		}
		if _, err := DecodeRecord(EncodeRecord(r)); err != nil {
			t.Fatalf("accepted frame re-encodes invalid: %v", err)
		}
	})
}
