package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"zugchain/internal/crypto"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Kind:   KindPrepare,
			View:   uint64(i % 3),
			Seq:    uint64(i + 1),
			Digest: crypto.Hash([]byte(fmt.Sprintf("payload-%d", i))),
			Flag:   i%2 == 0,
			Data:   []byte(fmt.Sprintf("data-%d", i)),
		}
	}
	return recs
}

func openEmpty(t *testing.T, dir string) *Log {
	t.Helper()
	l, recs, report, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || report.Truncated() {
		t.Fatalf("fresh dir replayed %d records, report %+v", len(recs), report)
	}
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openEmpty(t, dir)
	want := testRecords(20)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, report, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if report.Truncated() {
		t.Errorf("clean shutdown reported truncation: %+v", report)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].View != want[i].View ||
			got[i].Seq != want[i].Seq || got[i].Digest != want[i].Digest ||
			got[i].Flag != want[i].Flag || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openEmpty(t, dir)
	want := testRecords(5)
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A crash mid-write leaves a torn frame at the tail.
	path := filepath.Join(dir, fmt.Sprintf(segPattern, 1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, got, report, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if report.TruncatedBytes != int64(len(garbage)) {
		t.Errorf("TruncatedBytes = %d, want %d", report.TruncatedBytes, len(garbage))
	}
	// The torn tail is gone from disk: appends after recovery stay valid.
	if err := l2.Append(testRecords(1)...); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got3, report3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if len(got3) != len(want)+1 || report3.Truncated() {
		t.Errorf("after repair: %d records, report %+v", len(got3), report3)
	}
}

func TestRecoveryCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l := openEmpty(t, dir)
	if err := l.Append(testRecords(10)...); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte in the middle of the segment: everything from that frame
	// on is untrusted.
	path := filepath.Join(dir, fmt.Sprintf(segPattern, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got, report, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) >= 10 {
		t.Errorf("replayed %d records past corruption", len(got))
	}
	if !report.Truncated() {
		t.Error("corruption not reported")
	}
}

func TestRotateDropsOldSegments(t *testing.T) {
	dir := t.TempDir()
	l := openEmpty(t, dir)
	if err := l.Append(testRecords(50)...); err != nil {
		t.Fatal(err)
	}
	snapshot := []Record{
		{Kind: KindView, View: 2, Seq: 2},
		{Kind: KindCheckpoint, Seq: 100, Data: []byte("proof")},
	}
	if err := l.Rotate(snapshot); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindCommit, View: 2, Seq: 101}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("segments after rotate: %v", segs)
	}
	l2, got, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (snapshot + post-rotate append)", len(got))
	}
	if got[0].Kind != KindView || got[1].Kind != KindCheckpoint || got[2].Kind != KindCommit {
		t.Errorf("unexpected replay kinds: %v %v %v", got[0].Kind, got[1].Kind, got[2].Kind)
	}
	if c := l2.Counters().Snapshot(); c.Replayed != 3 {
		t.Errorf("counter replayed = %d", c.Replayed)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := openEmpty(t, dir)
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := Record{Kind: KindDedup, Seq: uint64(w*each + i)}
				if err := l.Append(r); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := l.Counters().Snapshot()
	if snap.Records != writers*each {
		t.Errorf("records = %d, want %d", snap.Records, writers*each)
	}
	if snap.Groups == 0 || snap.Groups > snap.Records {
		t.Errorf("groups = %d for %d records", snap.Groups, snap.Records)
	}
	l.Close()

	l2, got, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got) != writers*each {
		t.Errorf("replayed %d records, want %d", len(got), writers*each)
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	l := openEmpty(t, t.TempDir())
	l.Close()
	l.Close() // idempotent
	if err := l.Append(Record{Kind: KindView}); err != ErrClosed {
		t.Errorf("append after close: %v", err)
	}
	if err := l.Rotate(nil); err != ErrClosed {
		t.Errorf("rotate after close: %v", err)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range testRecords(10) {
		got, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != r.Kind || got.Seq != r.Seq || !bytes.Equal(got.Data, r.Data) {
			t.Errorf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestDecodeRecordRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xff},
		append(EncodeRecord(Record{Kind: KindView}), 0x00), // trailing byte
		{0x00, 0x00, 0x00}, // kind 0 + truncated
	}
	for i, c := range cases {
		if _, err := DecodeRecord(c); err == nil {
			t.Errorf("case %d: malformed input decoded", i)
		}
	}
}
