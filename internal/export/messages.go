// Package export implements ZugChain's secure data-center export protocol
// (§III-D, Fig 4). Data centers pull blocks from the on-train replicas over
// a bandwidth-limited uplink, validate them against stable PBFT checkpoints
// (2f+1 replica signatures), synchronize among each other, and authorize
// pruning with signed delete messages. Export deliberately bypasses the
// consensus protocol — it reads stable checkpoints only — so it can never
// delay agreement.
package export

import (
	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/wire"
)

// Wire type tags for export messages (range 0x40–0x4f).
const (
	typeReadRequest wire.Type = 0x40 + iota
	typeReadReply
	typeDelete
	typeDeleteAck
	typeStateRequest
	typeStateReply
)

func init() {
	wire.Register(typeReadRequest, func() wire.Message { return new(ReadRequest) })
	wire.Register(typeReadReply, func() wire.Message { return new(ReadReply) })
	wire.Register(typeDelete, func() wire.Message { return new(Delete) })
	wire.Register(typeDeleteAck, func() wire.Message { return new(DeleteAck) })
	wire.Register(typeStateRequest, func() wire.Message { return new(StateRequest) })
	wire.Register(typeStateReply, func() wire.Message { return new(StateReply) })
}

// ReadRequest is step ① of Fig 4: a data center asks the replicas for the
// latest stable checkpoint, carrying the index of its last successfully
// exported block (last_sn). WantBlocks marks the one randomly chosen
// replica that must also stream the full blocks.
type ReadRequest struct {
	// Round correlates replies with this request.
	Round uint64
	// LastIndex is the last block index the data center holds.
	LastIndex uint64
	// WantBlocks selects this replica as the full-block source.
	WantBlocks bool
	// DC identifies and Sig authenticates the requesting data center.
	DC  crypto.NodeID
	Sig []byte
}

// WireType implements wire.Message.
func (m *ReadRequest) WireType() wire.Type { return typeReadRequest }

// EncodeWire implements wire.Message.
func (m *ReadRequest) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.Round)
	e.Uint64(m.LastIndex)
	e.Bool(m.WantBlocks)
	e.Uint32(uint32(m.DC))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *ReadRequest) DecodeWire(d *wire.Decoder) {
	m.Round = d.Uint64()
	m.LastIndex = d.Uint64()
	m.WantBlocks = d.Bool()
	m.DC = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// ReadReply is step ② of Fig 4: a replica's latest stable checkpoint, plus
// the requested full blocks when this replica was chosen as the source.
type ReadReply struct {
	Round uint64
	// BlockIndex is the block the checkpoint covers.
	BlockIndex uint64
	// Ckpt is the stable checkpoint proof (2f+1 signatures).
	Ckpt pbft.CheckpointProof
	// Blocks are the encoded blocks (LastIndex+1 .. BlockIndex); empty
	// unless WantBlocks was set.
	Blocks [][]byte
	// FirstAvailable is the replica's pruning base: blocks below it are
	// gone from this replica (export error (iv)).
	FirstAvailable uint64
	Replica        crypto.NodeID
	Sig            []byte
}

// WireType implements wire.Message.
func (m *ReadReply) WireType() wire.Type { return typeReadReply }

// EncodeWire implements wire.Message.
func (m *ReadReply) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.Round)
	e.Uint64(m.BlockIndex)
	encodeProof(e, &m.Ckpt)
	e.Uvarint(uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		e.Bytes(b)
	}
	e.Uint64(m.FirstAvailable)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *ReadReply) DecodeWire(d *wire.Decoder) {
	m.Round = d.Uint64()
	m.BlockIndex = d.Uint64()
	m.Ckpt = decodeProof(d)
	n := d.Uvarint()
	if n > 1<<20 {
		d.Bytes32() // poison
		return
	}
	m.Blocks = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Blocks = append(m.Blocks, d.BytesCopy())
	}
	m.FirstAvailable = d.Uint64()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// Delete is step ⑤ of Fig 4: a data center confirms it holds all blocks up
// to BlockIndex (with BlockHash from the latest stable checkpoint) and
// authorizes the replicas to prune.
type Delete struct {
	BlockIndex uint64
	BlockHash  crypto.Digest
	DC         crypto.NodeID
	Sig        []byte
}

// WireType implements wire.Message.
func (m *Delete) WireType() wire.Type { return typeDelete }

// EncodeWire implements wire.Message.
func (m *Delete) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.BlockIndex)
	e.Bytes32(m.BlockHash)
	e.Uint32(uint32(m.DC))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *Delete) DecodeWire(d *wire.Decoder) {
	m.BlockIndex = d.Uint64()
	m.BlockHash = d.Bytes32()
	m.DC = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// DeleteAck is step ⑦ of Fig 4: a replica confirms it executed the delete
// up to BlockIndex. Its absence lets maintenance detect replicas that failed
// to free memory (§III-D error (v)).
type DeleteAck struct {
	BlockIndex uint64
	Replica    crypto.NodeID
	Sig        []byte
}

// WireType implements wire.Message.
func (m *DeleteAck) WireType() wire.Type { return typeDeleteAck }

// EncodeWire implements wire.Message.
func (m *DeleteAck) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.BlockIndex)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *DeleteAck) DecodeWire(d *wire.Decoder) {
	m.BlockIndex = d.Uint64()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// StateRequest asks a peer replica for the blocks needed to catch up after
// falling behind a stable checkpoint (§III-D error (ii): a checkpoint is
// transferred to another replica together with the blocks and the deletes
// justifying a pruned base).
type StateRequest struct {
	FromIndex uint64
	Replica   crypto.NodeID
	Sig       []byte
}

// WireType implements wire.Message.
func (m *StateRequest) WireType() wire.Type { return typeStateRequest }

// EncodeWire implements wire.Message.
func (m *StateRequest) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.FromIndex)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *StateRequest) DecodeWire(d *wire.Decoder) {
	m.FromIndex = d.Uint64()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// StateReply carries the blocks for a state transfer plus the prune
// authorization for the sender's base.
type StateReply struct {
	Blocks    [][]byte
	PruneAuth []byte
	Replica   crypto.NodeID
	Sig       []byte
}

// WireType implements wire.Message.
func (m *StateReply) WireType() wire.Type { return typeStateReply }

// EncodeWire implements wire.Message.
func (m *StateReply) EncodeWire(e *wire.Encoder) {
	e.Uvarint(uint64(len(m.Blocks)))
	for _, b := range m.Blocks {
		e.Bytes(b)
	}
	e.Bytes(m.PruneAuth)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *StateReply) DecodeWire(d *wire.Decoder) {
	n := d.Uvarint()
	if n > 1<<20 {
		d.Bytes32()
		return
	}
	m.Blocks = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Blocks = append(m.Blocks, d.BytesCopy())
	}
	m.PruneAuth = d.BytesCopy()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// DeleteCertificate is the quorum of signed deletes a replica stores as
// pruning authorization (persisted by the blockchain store so a pruned
// chain can justify its base).
type DeleteCertificate struct {
	BlockIndex uint64
	BlockHash  crypto.Digest
	Deletes    []Delete
}

// Marshal encodes the certificate.
func (c *DeleteCertificate) Marshal() []byte {
	e := wire.NewEncoder(128)
	e.Uint64(c.BlockIndex)
	e.Bytes32(c.BlockHash)
	e.Uvarint(uint64(len(c.Deletes)))
	for i := range c.Deletes {
		c.Deletes[i].EncodeWire(e)
	}
	return e.Data()
}

// UnmarshalDeleteCertificate decodes a certificate.
func UnmarshalDeleteCertificate(data []byte) (*DeleteCertificate, error) {
	d := wire.NewDecoder(data)
	c := &DeleteCertificate{
		BlockIndex: d.Uint64(),
		BlockHash:  d.Bytes32(),
	}
	n := d.Uvarint()
	if n > 1024 {
		return nil, wire.ErrTooLarge
	}
	for i := uint64(0); i < n; i++ {
		var del Delete
		del.DecodeWire(d)
		c.Deletes = append(c.Deletes, del)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// Verify checks that the certificate carries at least quorum valid delete
// signatures from distinct data centers over (BlockIndex, BlockHash).
func (c *DeleteCertificate) Verify(reg *crypto.Registry, quorum int) error {
	seen := make(map[crypto.NodeID]bool, len(c.Deletes))
	valid := 0
	for i := range c.Deletes {
		del := c.Deletes[i]
		if del.BlockIndex != c.BlockIndex || del.BlockHash != c.BlockHash {
			continue
		}
		if seen[del.DC] {
			continue
		}
		if err := verifyMsg(&del, reg); err != nil {
			continue
		}
		seen[del.DC] = true
		valid++
	}
	if valid < quorum {
		return ErrInsufficientDeletes
	}
	return nil
}

// encodeProof and decodeProof serialize a pbft.CheckpointProof inside export
// messages.
func encodeProof(e *wire.Encoder, p *pbft.CheckpointProof) {
	e.Uint64(p.Seq)
	e.Bytes32(p.StateDigest)
	e.Uvarint(uint64(len(p.Checkpoints)))
	for i := range p.Checkpoints {
		p.Checkpoints[i].EncodeWire(e)
	}
}

func decodeProof(d *wire.Decoder) pbft.CheckpointProof {
	p := pbft.CheckpointProof{
		Seq:         d.Uint64(),
		StateDigest: d.Bytes32(),
	}
	n := d.Uvarint()
	if n > 1024 {
		d.Bytes32()
		return p
	}
	for i := uint64(0); i < n; i++ {
		var c pbft.Checkpoint
		c.DecodeWire(d)
		p.Checkpoints = append(p.Checkpoints, c)
	}
	return p
}

// decodeBlocks unmarshals and returns the blocks carried in a reply.
func decodeBlocks(raw [][]byte) ([]*blockchain.Block, error) {
	blocks := make([]*blockchain.Block, 0, len(raw))
	for _, data := range raw {
		b, err := blockchain.Unmarshal(data)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}
