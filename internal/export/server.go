package export

import (
	"sync"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// ServerConfig parameterizes a replica-side export server.
type ServerConfig struct {
	// ID is the local replica.
	ID crypto.NodeID
	// CheckpointInterval maps checkpoint sequence numbers to block
	// indices (block index = seq / interval). Must match the PBFT
	// configuration.
	CheckpointInterval uint64
	// DeleteQuorum is the number of distinct data-center deletes required
	// before blocks are pruned ("a certain, configurable number", §III-D
	// step 6).
	DeleteQuorum int
	// DataCenters lists the authorized data centers, recipients of
	// delete acknowledgements.
	DataCenters []crypto.NodeID
}

// Server is the replica side of the export protocol: it answers data-center
// reads from the stable checkpoint store, executes quorums of signed
// deletes, and serves state transfers to lagging peers. It never touches
// the consensus path.
type Server struct {
	cfg   ServerConfig
	kp    *crypto.KeyPair
	reg   *crypto.Registry
	store *blockchain.Store
	tr    transport.Transport

	mu          sync.Mutex
	latestProof pbft.CheckpointProof
	latestIndex uint64 // block index covered by latestProof
	// deletes collects signed deletes per block index per data center.
	deletes map[uint64]map[crypto.NodeID]Delete
	// pending parks deletes whose block does not exist yet (error (i)).
	pending []Delete

	// onStateReply, when set, receives verified StateReply messages; the
	// node uses it to complete state transfers.
	onStateReply func(*StateReply)

	counters *metrics.Counters
}

// NewServer creates an export server and installs it as the transport
// handler for the export channel.
func NewServer(cfg ServerConfig, kp *crypto.KeyPair, reg *crypto.Registry, store *blockchain.Store, tr transport.Transport) *Server {
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = pbft.DefaultCheckpointInterval
	}
	if cfg.DeleteQuorum <= 0 {
		cfg.DeleteQuorum = 1
	}
	s := &Server{
		cfg:      cfg,
		kp:       kp,
		reg:      reg,
		store:    store,
		tr:       tr,
		deletes:  make(map[uint64]map[crypto.NodeID]Delete),
		counters: &metrics.Counters{},
	}
	tr.SetHandler(s.onMessage)
	return s
}

// Counters exposes export traffic statistics.
func (s *Server) Counters() *metrics.Counters { return s.counters }

// OnStableCheckpoint feeds a newly stable PBFT checkpoint into the export
// state. The node calls it from the PBFT application callback.
func (s *Server) OnStableCheckpoint(proof pbft.CheckpointProof) {
	s.mu.Lock()
	if proof.Seq > s.latestProof.Seq {
		s.latestProof = proof
		s.latestIndex = proof.Seq / s.cfg.CheckpointInterval
	}
	pending := s.pending
	s.pending = nil
	s.mu.Unlock()
	// Re-evaluate parked deletes now that new blocks/checkpoints exist.
	for _, del := range pending {
		s.handleDelete(del)
	}
}

// LatestExportable returns the newest block index backed by a stable
// checkpoint.
func (s *Server) LatestExportable() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latestIndex
}

func (s *Server) onMessage(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	s.counters.AddReceived(len(data))
	switch m := msg.(type) {
	case *ReadRequest:
		if verifyMsg(m, s.reg) == nil && m.DC == from {
			s.handleRead(m)
		}
	case *Delete:
		if verifyMsg(m, s.reg) == nil && m.DC == from {
			s.handleDelete(*m)
		}
	case *StateRequest:
		if verifyMsg(m, s.reg) == nil && m.Replica == from {
			s.handleStateRequest(m)
		}
	case *StateReply:
		if verifyMsg(m, s.reg) == nil && m.Replica == from {
			s.mu.Lock()
			h := s.onStateReply
			s.mu.Unlock()
			if h != nil {
				h(m)
			}
		}
	}
}

// SetStateReplyHandler installs the node's state-transfer completion hook.
func (s *Server) SetStateReplyHandler(h func(*StateReply)) {
	s.mu.Lock()
	s.onStateReply = h
	s.mu.Unlock()
}

// RequestStateTransfer asks a peer replica for blocks from fromIndex
// (§III-D error (ii)); the reply arrives via the StateReply handler.
func (s *Server) RequestStateTransfer(peer crypto.NodeID, fromIndex uint64) {
	req := &StateRequest{FromIndex: fromIndex, Replica: s.cfg.ID}
	signMsg(req, s.kp)
	s.send(peer, req)
}

// DecodeStateBlocks decodes the blocks of a state reply.
func DecodeStateBlocks(m *StateReply) ([]*blockchain.Block, error) {
	return decodeBlocks(m.Blocks)
}

// handleRead implements step ② of Fig 4.
func (s *Server) handleRead(req *ReadRequest) {
	s.mu.Lock()
	proof := s.latestProof
	index := s.latestIndex
	s.mu.Unlock()

	reply := &ReadReply{
		Round:          req.Round,
		BlockIndex:     index,
		Ckpt:           proof,
		FirstAvailable: s.store.Base(),
		Replica:        s.cfg.ID,
	}
	if req.WantBlocks && index > 0 {
		from := req.LastIndex + 1
		if base := s.store.Base(); from < base {
			// Blocks below the base are gone (already exported and
			// pruned); the data center syncs them from its peers
			// (error (iv)).
			from = base
		}
		if from <= index {
			// Durability barrier: never hand a data center blocks whose
			// group commit has not reached disk — an export followed by a
			// delete must not be the only surviving copy's ancestor.
			_ = s.store.Sync()
			if blocks, err := s.store.Range(from, index); err == nil {
				reply.Blocks = make([][]byte, 0, len(blocks))
				for _, b := range blocks {
					reply.Blocks = append(reply.Blocks, b.Marshal())
				}
			}
		}
	}
	signMsg(reply, s.kp)
	s.send(req.DC, reply)
}

// handleDelete implements steps ⑥–⑦ of Fig 4.
func (s *Server) handleDelete(del Delete) {
	s.mu.Lock()

	// Error (i): the delete may refer to a block this replica has not
	// created yet (export and agreement are decoupled). Park it.
	if del.BlockIndex > s.store.HeadIndex() {
		s.pending = append(s.pending, del)
		s.mu.Unlock()
		return
	}

	// The delete must name the block this replica actually holds;
	// otherwise either the DC or this replica diverged — do not prune.
	block, err := s.store.Get(del.BlockIndex)
	if err != nil || block.Hash() != del.BlockHash {
		s.mu.Unlock()
		return
	}

	byDC, ok := s.deletes[del.BlockIndex]
	if !ok {
		byDC = make(map[crypto.NodeID]Delete)
		s.deletes[del.BlockIndex] = byDC
	}
	byDC[del.DC] = del

	matching := make([]Delete, 0, len(byDC))
	for _, d := range byDC {
		if d.BlockHash == del.BlockHash {
			matching = append(matching, d)
		}
	}
	if len(matching) < s.cfg.DeleteQuorum {
		s.mu.Unlock()
		return // error (iii): not enough deletes — do not execute
	}

	cert := DeleteCertificate{
		BlockIndex: del.BlockIndex,
		BlockHash:  del.BlockHash,
		Deletes:    matching,
	}
	delete(s.deletes, del.BlockIndex)
	s.mu.Unlock()

	// Prune, keeping the deleted boundary block as the new chain base.
	// The barrier first makes every in-flight group commit durable:
	// deleting data must never outrun persisting its successors.
	_ = s.store.Sync()
	if err := s.store.Prune(del.BlockIndex, cert.Marshal()); err != nil {
		return
	}

	// Step ⑦: acknowledge to every data center.
	ack := &DeleteAck{BlockIndex: del.BlockIndex, Replica: s.cfg.ID}
	signMsg(ack, s.kp)
	for _, dc := range s.cfg.DataCenters {
		s.send(dc, ack)
	}
}

// handleStateRequest serves a peer replica's catch-up (error (ii)): blocks
// from the requested index plus the prune authorization for our base.
func (s *Server) handleStateRequest(req *StateRequest) {
	from := req.FromIndex
	if base := s.store.Base(); from < base {
		from = base
	}
	head := s.store.HeadIndex()
	if from > head {
		return
	}
	blocks, err := s.store.Range(from, head)
	if err != nil {
		return
	}
	reply := &StateReply{
		PruneAuth: s.store.PruneAuth(),
		Replica:   s.cfg.ID,
	}
	for _, b := range blocks {
		reply.Blocks = append(reply.Blocks, b.Marshal())
	}
	signMsg(reply, s.kp)
	s.send(req.Replica, reply)
}

func (s *Server) send(to crypto.NodeID, msg wire.Message) {
	data := wire.Marshal(msg)
	s.counters.AddSent(len(data))
	_ = s.tr.Send(to, data)
}
