package export

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// fixture wires 4 replica export servers and 2 data centers over an inproc
// network, with the replicas' chains pre-populated.
type fixture struct {
	t        *testing.T
	net      *transport.Network
	replicas []crypto.NodeID
	kps      map[crypto.NodeID]*crypto.KeyPair
	reg      *crypto.Registry
	servers  map[crypto.NodeID]*Server
	stores   map[crypto.NodeID]*blockchain.Store
	dcs      []*DataCenter
}

const testInterval = 10

func newFixture(t *testing.T, nDCs int, deleteQuorum int) *fixture {
	t.Helper()
	fx := &fixture{
		t:       t,
		net:     transport.NewNetwork(),
		kps:     make(map[crypto.NodeID]*crypto.KeyPair),
		servers: make(map[crypto.NodeID]*Server),
		stores:  make(map[crypto.NodeID]*blockchain.Store),
	}
	t.Cleanup(func() { fx.net.Close() })

	var pairs []*crypto.KeyPair
	var dcIDs []crypto.NodeID
	for i := 0; i < 4; i++ {
		id := crypto.NodeID(i)
		fx.replicas = append(fx.replicas, id)
		kp := crypto.MustGenerateKeyPair(id)
		fx.kps[id] = kp
		pairs = append(pairs, kp)
	}
	for i := 0; i < nDCs; i++ {
		id := crypto.DataCenterIDBase + crypto.NodeID(i)
		dcIDs = append(dcIDs, id)
		kp := crypto.MustGenerateKeyPair(id)
		fx.kps[id] = kp
		pairs = append(pairs, kp)
	}
	fx.reg = crypto.NewRegistry(pairs...)

	for _, id := range fx.replicas {
		store, err := blockchain.NewStore("")
		if err != nil {
			t.Fatal(err)
		}
		fx.stores[id] = store
		fx.servers[id] = NewServer(ServerConfig{
			ID:                 id,
			CheckpointInterval: testInterval,
			DeleteQuorum:       deleteQuorum,
			DataCenters:        dcIDs,
		}, fx.kps[id], fx.reg, store, fx.net.Endpoint(id))
	}
	for _, id := range dcIDs {
		archive, err := blockchain.NewStore("")
		if err != nil {
			t.Fatal(err)
		}
		fx.dcs = append(fx.dcs, NewDataCenter(DataCenterConfig{
			ID:                 id,
			Replicas:           fx.replicas,
			CheckpointInterval: testInterval,
			ReadTimeout:        5 * time.Second,
		}, fx.kps[id], fx.reg, archive, fx.net.Endpoint(id)))
	}
	return fx
}

// addBlocks appends n new blocks to every replica and feeds the matching
// stable checkpoints into the export servers.
// nextBlock deterministically builds the block that follows head, the same
// way on every caller.
func nextBlock(head *blockchain.Block) *blockchain.Block {
	builder := blockchain.NewBuilder(head, testInterval)
	var block *blockchain.Block
	for j := 0; j < testInterval; j++ {
		seq := head.LastSeq + uint64(j) + 1
		block = builder.Add(blockchain.Entry{
			Seq:     seq,
			Origin:  crypto.NodeID(seq % 4),
			Payload: []byte(fmt.Sprintf("payload-%d", seq)),
		})
	}
	return block
}

func (fx *fixture) addBlocks(n int) {
	fx.t.Helper()
	for i := 0; i < n; i++ {
		// Build the identical next block on every replica.
		block := nextBlock(fx.stores[0].Head())
		proof := pbft.CheckpointProof{Seq: block.LastSeq, StateDigest: block.Hash()}
		for _, id := range fx.replicas[:3] { // 2f+1 = 3 signatures
			proof.Checkpoints = append(proof.Checkpoints,
				pbft.NewSignedCheckpoint(block.LastSeq, block.Hash(), fx.kps[id]))
		}
		for _, id := range fx.replicas {
			if err := fx.stores[id].Append(mustClone(fx.t, block)); err != nil {
				fx.t.Fatal(err)
			}
			fx.servers[id].OnStableCheckpoint(proof)
		}
	}
}

// mustClone deep-copies a block through its codec so replicas do not share
// memory.
func mustClone(t *testing.T, b *blockchain.Block) *blockchain.Block {
	t.Helper()
	c, err := blockchain.Unmarshal(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReadExportsBlocks(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(3)

	res, err := fx.dcs[0].Read(context.Background())
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.BlockIndex != 3 || res.NewBlocks != 3 {
		t.Errorf("result = %+v", res)
	}
	if fx.dcs[0].LastExported() != 3 {
		t.Errorf("archive head = %d", fx.dcs[0].LastExported())
	}
	if err := fx.dcs[0].Archive().VerifyChain(); err != nil {
		t.Errorf("archive verification: %v", err)
	}
}

func TestReadIncremental(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(2)
	if _, err := fx.dcs[0].Read(context.Background()); err != nil {
		t.Fatal(err)
	}
	fx.addBlocks(2)
	res, err := fx.dcs[0].Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.NewBlocks != 2 || res.BlockIndex != 4 {
		t.Errorf("incremental read = %+v", res)
	}
}

func TestReadWithNoNewBlocks(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(1)
	if _, err := fx.dcs[0].Read(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := fx.dcs[0].Read(context.Background())
	if err != nil {
		t.Fatalf("second read: %v", err)
	}
	if res.NewBlocks != 0 {
		t.Errorf("NewBlocks = %d", res.NewBlocks)
	}
}

func TestReadFailsWithoutCheckpoints(t *testing.T) {
	fx := newFixture(t, 1, 1)
	// Replicas have only genesis: no stable checkpoint to offer.
	_, err := fx.dcs[0].Read(context.Background())
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Read = %v, want ErrNoCheckpoint", err)
	}
}

func TestReadTimesOutWhenReplicasDead(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(1)
	for _, id := range fx.replicas {
		fx.net.Isolate(id)
	}
	fx.dcs[0].cfg.ReadTimeout = 200 * time.Millisecond
	_, err := fx.dcs[0].Read(context.Background())
	if !errors.Is(err, ErrReadTimeout) {
		t.Errorf("Read = %v, want ErrReadTimeout", err)
	}
}

func TestReadSurvivesFFaultyReplicas(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(2)
	fx.net.Isolate(3) // f=1 replica unreachable
	res, err := fx.dcs[0].Read(context.Background())
	if err != nil {
		// The random block source may be the dead replica; one retry
		// must succeed (the paper's "delay the export until another
		// node is queried").
		res, err = fx.dcs[0].Read(context.Background())
		if err != nil {
			res, err = fx.dcs[0].Read(context.Background())
		}
	}
	if err != nil {
		t.Fatalf("Read with f dead replicas: %v", err)
	}
	if res.BlockIndex != 2 {
		t.Errorf("BlockIndex = %d", res.BlockIndex)
	}
}

func TestFullExportRoundPrunesReplicas(t *testing.T) {
	fx := newFixture(t, 2, 2)
	fx.addBlocks(4)

	group := &Group{DCs: fx.dcs}
	report, err := group.ExportRound(context.Background())
	if err != nil {
		t.Fatalf("ExportRound: %v", err)
	}
	if report.BlockIndex != 4 || report.BlocksExported != 4 {
		t.Errorf("report = %+v", report)
	}

	// Both archives hold the chain.
	for i, dc := range fx.dcs {
		if dc.LastExported() != 4 {
			t.Errorf("dc%d archive head = %d", i, dc.LastExported())
		}
		if err := dc.Archive().VerifyChain(); err != nil {
			t.Errorf("dc%d archive: %v", i, err)
		}
	}

	// Replicas pruned to the exported boundary, keeping it as base, with
	// a verifiable delete certificate.
	for _, id := range fx.replicas {
		store := fx.stores[id]
		if store.Base() != 4 {
			t.Errorf("replica %v base = %d, want 4", id, store.Base())
			continue
		}
		cert, err := UnmarshalDeleteCertificate(store.PruneAuth())
		if err != nil {
			t.Errorf("replica %v prune auth: %v", id, err)
			continue
		}
		if err := cert.Verify(fx.reg, 2); err != nil {
			t.Errorf("replica %v certificate: %v", id, err)
		}
		if err := store.VerifyChain(); err != nil {
			t.Errorf("replica %v chain after prune: %v", id, err)
		}
	}
}

func TestInsufficientDeletesDoNotPrune(t *testing.T) {
	fx := newFixture(t, 2, 2) // quorum of 2 DCs required
	fx.addBlocks(2)

	res, err := fx.dcs[0].Read(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Only one DC signs the delete: below quorum (§III-D error (iii)).
	fx.dcs[0].SendDelete(res.BlockIndex, res.BlockHash)
	time.Sleep(100 * time.Millisecond)
	for _, id := range fx.replicas {
		if fx.stores[id].Base() != 0 {
			t.Errorf("replica %v pruned on a single delete", id)
		}
	}
}

func TestDeleteWithWrongHashIgnored(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(1)
	fx.dcs[0].SendDelete(1, crypto.Hash([]byte("wrong")))
	time.Sleep(100 * time.Millisecond)
	for _, id := range fx.replicas {
		if fx.stores[id].Base() != 0 {
			t.Errorf("replica %v pruned on mismatched hash", id)
		}
	}
}

func TestEarlyDeleteParkedUntilBlockExists(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(1)

	// A delete for block 2 arrives before block 2 exists (error (i)).
	// The future block's hash is predictable because the workload is.
	future := nextBlock(fx.stores[0].Head())
	fx.dcs[0].SendDelete(2, future.Hash())
	time.Sleep(100 * time.Millisecond)
	for _, id := range fx.replicas {
		if fx.stores[id].Base() != 0 {
			t.Fatalf("replica %v executed a delete for a nonexistent block", id)
		}
	}

	// Once the block and checkpoint are created, the parked delete runs.
	fx.addBlocks(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		pruned := true
		for _, id := range fx.replicas {
			if fx.stores[id].Base() != 2 {
				pruned = false
			}
		}
		if pruned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked delete never executed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDelayedDataCenterSyncsFromPeer(t *testing.T) {
	fx := newFixture(t, 2, 2)
	fx.addBlocks(3)

	// dc0 exports alone; dc1 was offline (error (iv)).
	if _, err := fx.dcs[0].Read(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fx.dcs[1].LastExported() != 0 {
		t.Fatal("dc1 unexpectedly has blocks")
	}
	n, err := fx.dcs[1].SyncFrom(fx.dcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || fx.dcs[1].LastExported() != 3 {
		t.Errorf("synced %d blocks, head %d", n, fx.dcs[1].LastExported())
	}
	if err := fx.dcs[1].Archive().VerifyChain(); err != nil {
		t.Errorf("synced archive: %v", err)
	}
}

func TestStateTransferBetweenReplicas(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(3)

	// A fresh replica r9 joins with an empty store and catches up from r0,
	// including the prune authorization (error (ii)).
	kp := crypto.MustGenerateKeyPair(9)
	fx.reg.Add(9, kp.Public)
	store, err := blockchain.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	replyCh := make(chan *StateReply, 1)
	ep := fx.net.Endpoint(9)
	ep.SetHandler(func(from crypto.NodeID, data []byte) {
		msg, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		if sr, ok := msg.(*StateReply); ok {
			replyCh <- sr
		}
	})
	req := &StateRequest{FromIndex: 1, Replica: 9}
	signMsg(req, kp)
	if err := ep.Send(0, wire.Marshal(req)); err != nil {
		t.Fatal(err)
	}

	select {
	case reply := <-replyCh:
		blocks, err := decodeBlocks(reply.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		if err := blockchain.VerifySegment(blockchain.Genesis().Header, blocks); err != nil {
			t.Fatalf("transferred segment: %v", err)
		}
		for _, b := range blocks {
			if err := store.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		if store.HeadIndex() != 3 {
			t.Errorf("caught-up head = %d", store.HeadIndex())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no state reply")
	}
}

func TestForgedDeleteRejected(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(1)
	block, err := fx.stores[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	// An attacker without the DC key forges a delete.
	attacker := crypto.MustGenerateKeyPair(777)
	fx.reg.Add(777, attacker.Public)
	del := &Delete{BlockIndex: 1, BlockHash: block.Hash(), DC: crypto.DataCenterIDBase}
	signMsg(del, attacker) // wrong key for the claimed DC
	ep := fx.net.Endpoint(777)
	_ = ep.Send(0, wire.Marshal(del))
	time.Sleep(100 * time.Millisecond)
	if fx.stores[0].Base() != 0 {
		t.Error("forged delete pruned the chain")
	}
}

func TestDeleteCertificateVerify(t *testing.T) {
	fx := newFixture(t, 3, 3)
	fx.addBlocks(1)
	block, err := fx.stores[0].Get(1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(dcIdx int) Delete {
		id := crypto.DataCenterIDBase + crypto.NodeID(dcIdx)
		del := Delete{BlockIndex: 1, BlockHash: block.Hash(), DC: id}
		signMsg(&del, fx.kps[id])
		return del
	}
	cert := DeleteCertificate{BlockIndex: 1, BlockHash: block.Hash(),
		Deletes: []Delete{mk(0), mk(1), mk(2)}}
	if err := cert.Verify(fx.reg, 3); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Round trip.
	decoded, err := UnmarshalDeleteCertificate(cert.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(fx.reg, 3); err != nil {
		t.Errorf("decoded Verify: %v", err)
	}
	// Duplicate signers do not reach quorum.
	dup := DeleteCertificate{BlockIndex: 1, BlockHash: block.Hash(),
		Deletes: []Delete{mk(0), mk(0), mk(0)}}
	if err := dup.Verify(fx.reg, 3); !errors.Is(err, ErrInsufficientDeletes) {
		t.Errorf("dup Verify = %v", err)
	}
}

// TestSecondRoundFetchesMissingBlocks: the first randomly chosen block
// source is Byzantine and returns checkpoints but no blocks; the paper's
// second round retries with another source and completes the export.
func TestSecondRoundFetchesMissingBlocks(t *testing.T) {
	fx := newFixture(t, 1, 1)
	fx.addBlocks(2)

	// Make replica 0 a lying block source: it answers reads with a valid
	// checkpoint but never includes blocks. We do that by pruning... no:
	// replace its store content is complex; instead intercept its
	// outbound ReadReply messages and strip the blocks.
	fx.net.SetInterceptor(0, func(to crypto.NodeID, data []byte) (time.Duration, bool) {
		msg, err := wire.Unmarshal(data)
		if err != nil {
			return 0, false
		}
		if rr, ok := msg.(*ReadReply); ok && len(rr.Blocks) > 0 {
			return 0, true // drop the block-carrying reply entirely
		}
		return 0, false
	})

	// Force the DC's first pick to be replica 0 by trying seeds until the
	// first round would select it; simpler: just run Read — with retries
	// inside, any unlucky pick is retried with a fresh source.
	deadline := time.Now().Add(20 * time.Second)
	for {
		res, err := fx.dcs[0].Read(context.Background())
		if err == nil && res.BlockIndex == 2 && fx.dcs[0].LastExported() == 2 {
			return // success via first or second round
		}
		if time.Now().After(deadline) {
			t.Fatalf("export never completed: %v", err)
		}
	}
}
