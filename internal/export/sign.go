package export

import (
	"errors"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Export protocol errors.
var (
	// ErrInsufficientDeletes indicates a delete certificate below quorum
	// (§III-D error (iii)).
	ErrInsufficientDeletes = errors.New("export: insufficient matching deletes")
	// ErrReadTimeout indicates too few read replies arrived in time.
	ErrReadTimeout = errors.New("export: timed out waiting for read replies")
	// ErrNoCheckpoint indicates no verifiable stable checkpoint was
	// offered by any replica.
	ErrNoCheckpoint = errors.New("export: no valid stable checkpoint received")
)

// signableMsg mirrors pbft's internal signing convention: the signature
// covers the wire encoding with the Sig field emptied.
type signableMsg interface {
	wire.Message
	signer() crypto.NodeID
	signature() []byte
	setSignature(sig []byte)
}

func (m *ReadRequest) signer() crypto.NodeID   { return m.DC }
func (m *ReadRequest) signature() []byte       { return m.Sig }
func (m *ReadRequest) setSignature(sig []byte) { m.Sig = sig }

func (m *ReadReply) signer() crypto.NodeID   { return m.Replica }
func (m *ReadReply) signature() []byte       { return m.Sig }
func (m *ReadReply) setSignature(sig []byte) { m.Sig = sig }

func (m *Delete) signer() crypto.NodeID   { return m.DC }
func (m *Delete) signature() []byte       { return m.Sig }
func (m *Delete) setSignature(sig []byte) { m.Sig = sig }

func (m *DeleteAck) signer() crypto.NodeID   { return m.Replica }
func (m *DeleteAck) signature() []byte       { return m.Sig }
func (m *DeleteAck) setSignature(sig []byte) { m.Sig = sig }

func (m *StateRequest) signer() crypto.NodeID   { return m.Replica }
func (m *StateRequest) signature() []byte       { return m.Sig }
func (m *StateRequest) setSignature(sig []byte) { m.Sig = sig }

func (m *StateReply) signer() crypto.NodeID   { return m.Replica }
func (m *StateReply) signature() []byte       { return m.Sig }
func (m *StateReply) setSignature(sig []byte) { m.Sig = sig }

func signingBytes(m signableMsg) []byte {
	saved := m.signature()
	m.setSignature(nil)
	e := wire.NewEncoder(256)
	e.Uint16(uint16(m.WireType()))
	m.EncodeWire(e)
	m.setSignature(saved)
	out := make([]byte, e.Len())
	copy(out, e.Data())
	return out
}

func signMsg(m signableMsg, kp *crypto.KeyPair) {
	m.setSignature(kp.Sign(signingBytes(m)))
}

func verifyMsg(m signableMsg, reg *crypto.Registry) error {
	return reg.Verify(m.signer(), signingBytes(m), m.signature())
}
