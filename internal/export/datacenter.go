package export

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// DataCenterConfig parameterizes a data-center export client.
type DataCenterConfig struct {
	// ID is this data center (range crypto.DataCenterIDBase+).
	ID crypto.NodeID
	// Replicas are the on-train replicas to query.
	Replicas []crypto.NodeID
	// F is the replica fault threshold; reads wait for 2f+1 checkpoint
	// replies so at least one recent checkpoint from a correct node is
	// guaranteed (§III-D step ③).
	F int
	// CheckpointQuorum is the signature quorum for checkpoint proofs
	// (2f+1 of the replica set).
	CheckpointQuorum int
	// CheckpointInterval maps checkpoint sequence numbers to block
	// indices; must match the replica configuration.
	CheckpointInterval uint64
	// ReadTimeout bounds one read round.
	ReadTimeout time.Duration
	// Seed makes the full-block replica choice reproducible in tests.
	Seed int64
}

func (c *DataCenterConfig) applyDefaults() {
	if c.F == 0 {
		c.F = (len(c.Replicas) - 1) / 3
	}
	if c.CheckpointQuorum == 0 {
		c.CheckpointQuorum = 2*c.F + 1
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = pbft.DefaultCheckpointInterval
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
}

// ReadResult is the outcome of one read round (steps ①–④ of Fig 4).
type ReadResult struct {
	// BlockIndex is the newest block index proven by the best checkpoint.
	BlockIndex uint64
	// BlockHash is that block's hash from the checkpoint proof.
	BlockHash crypto.Digest
	// Proof is the verified stable checkpoint.
	Proof pbft.CheckpointProof
	// NewBlocks are the verified blocks appended to the archive.
	NewBlocks int
	// ReadDuration covers request to last required reply.
	ReadDuration time.Duration
	// VerifyDuration covers proof and chain verification.
	VerifyDuration time.Duration
}

// DataCenter is one railway company's archive endpoint: it pulls blocks from
// the train, verifies them against stable checkpoints, stores them durably,
// and issues signed deletes.
type DataCenter struct {
	cfg DataCenterConfig
	kp  *crypto.KeyPair
	reg *crypto.Registry
	tr  transport.Transport

	// Archive is the data center's permanent copy of the chain.
	archive *blockchain.Store

	mu      sync.Mutex
	round   uint64
	pending *readRound
	acks    map[uint64]map[crypto.NodeID]bool // block index -> replicas acked
	ackCh   chan struct{}
	rng     *rand.Rand
}

// readRound collects replies for one in-flight read.
type readRound struct {
	round   uint64
	replies map[crypto.NodeID]*ReadReply
	done    chan struct{}
	needed  int
	source  crypto.NodeID // replica asked for the full blocks
	heard   bool          // the block source has replied
}

// NewDataCenter creates a data center client. archive is its durable chain
// store (may be disk-backed).
func NewDataCenter(cfg DataCenterConfig, kp *crypto.KeyPair, reg *crypto.Registry, archive *blockchain.Store, tr transport.Transport) *DataCenter {
	cfg.applyDefaults()
	dc := &DataCenter{
		cfg:     cfg,
		kp:      kp,
		reg:     reg,
		tr:      tr,
		archive: archive,
		acks:    make(map[uint64]map[crypto.NodeID]bool),
		ackCh:   make(chan struct{}, 1),
		rng:     rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID))),
	}
	tr.SetHandler(dc.onMessage)
	return dc
}

// Archive returns the data center's chain store.
func (dc *DataCenter) Archive() *blockchain.Store { return dc.archive }

// LastExported returns the newest block index in the archive.
func (dc *DataCenter) LastExported() uint64 { return dc.archive.HeadIndex() }

func (dc *DataCenter) onMessage(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *ReadReply:
		if verifyMsg(m, dc.reg) != nil || m.Replica != from {
			return
		}
		dc.onReadReply(m)
	case *DeleteAck:
		if verifyMsg(m, dc.reg) != nil || m.Replica != from {
			return
		}
		dc.onDeleteAck(m)
	}
}

func (dc *DataCenter) onReadReply(m *ReadReply) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	r := dc.pending
	if r == nil || m.Round != r.round {
		return // stale round
	}
	if _, dup := r.replies[m.Replica]; dup {
		return
	}
	r.replies[m.Replica] = m
	if m.Replica == r.source {
		r.heard = true
	}
	// Step ③: wait for 2f+1 checkpoint replies AND the reply of the
	// replica chosen as the full-block source.
	if len(r.replies) >= r.needed && r.heard {
		select {
		case <-r.done:
		default:
			close(r.done)
		}
	}
}

func (dc *DataCenter) onDeleteAck(m *DeleteAck) {
	dc.mu.Lock()
	byReplica, ok := dc.acks[m.BlockIndex]
	if !ok {
		byReplica = make(map[crypto.NodeID]bool)
		dc.acks[m.BlockIndex] = byReplica
	}
	byReplica[m.Replica] = true
	dc.mu.Unlock()
	select {
	case dc.ackCh <- struct{}{}:
	default:
	}
}

// Read performs steps ①–④ of Fig 4 and, when blocks are still missing
// after the first round (a faulty or pruned block source), runs the second
// round the paper prescribes: "If any blocks are missing between last_sn
// and the block included in the latest checkpoint, these can be queried
// directly from the replicas in a second round of communication". Each
// round picks a different random block source, so up to f faulty replicas
// are eventually skipped.
func (dc *DataCenter) Read(ctx context.Context) (*ReadResult, error) {
	res, err := dc.readRoundOnce(ctx)
	if err == nil {
		return res, nil
	}
	var missing errMissingBlocks
	attempts := dc.cfg.F + 1 // enough fresh sources to skip f faulty ones
	for attempt := 0; attempt < attempts && errorsAs(err, &missing); attempt++ {
		res, err = dc.readRoundOnce(ctx)
		if err == nil {
			return res, nil
		}
	}
	return res, err
}

// errorsAs adapts errors.As for the local error type.
func errorsAs(err error, target *errMissingBlocks) bool {
	return errors.As(err, target)
}

// readRoundOnce runs a single read round.
func (dc *DataCenter) readRoundOnce(ctx context.Context) (*ReadResult, error) {
	dc.mu.Lock()
	dc.round++
	r := &readRound{
		round:   dc.round,
		replies: make(map[crypto.NodeID]*ReadReply),
		done:    make(chan struct{}),
		needed:  2*dc.cfg.F + 1,
		source:  dc.cfg.Replicas[dc.rng.Intn(len(dc.cfg.Replicas))],
	}
	dc.pending = r
	blockSource := r.source
	lastIdx := dc.archive.HeadIndex()
	round := dc.round
	dc.mu.Unlock()

	start := time.Now()
	for _, replica := range dc.cfg.Replicas {
		req := &ReadRequest{
			Round:      round,
			LastIndex:  lastIdx,
			WantBlocks: replica == blockSource,
			DC:         dc.cfg.ID,
		}
		signMsg(req, dc.kp)
		_ = dc.tr.Send(replica, wire.Marshal(req))
	}

	timer := time.NewTimer(dc.cfg.ReadTimeout)
	defer timer.Stop()
	select {
	case <-r.done:
	case <-ctx.Done():
		dc.abandonRound(r)
		return nil, ctx.Err()
	case <-timer.C:
		got := dc.abandonRound(r)
		return nil, fmt.Errorf("%w: %d of %d replies", ErrReadTimeout, got, r.needed)
	}
	readDur := time.Since(start)

	dc.mu.Lock()
	dc.pending = nil
	replies := make([]*ReadReply, 0, len(r.replies))
	for _, rep := range r.replies {
		replies = append(replies, rep)
	}
	dc.mu.Unlock()

	// Step ④: select the newest checkpoint with a valid 2f+1 proof —
	// replies bypass consensus and may be mutually stale (§III-D step ②).
	verifyStart := time.Now()
	var best *ReadReply
	for _, rep := range replies {
		if rep.BlockIndex == 0 {
			continue
		}
		if rep.Ckpt.Verify(dc.reg, dc.cfg.CheckpointQuorum) != nil {
			continue
		}
		if rep.Ckpt.Seq/dc.cfg.CheckpointInterval != rep.BlockIndex {
			continue // checkpoint does not cover the claimed block
		}
		if best == nil || rep.BlockIndex > best.BlockIndex {
			best = rep
		}
	}
	if best == nil {
		return nil, ErrNoCheckpoint
	}

	// Decode, verify, and install the blocks from the chosen source.
	newBlocks := 0
	for _, rep := range replies {
		if len(rep.Blocks) == 0 {
			continue
		}
		blocks, err := decodeBlocks(rep.Blocks)
		if err != nil {
			continue // corrupt reply from a faulty replica: ignore
		}
		n, err := dc.installBlocks(blocks, best)
		newBlocks += n
		if err != nil {
			continue
		}
	}

	result := &ReadResult{
		BlockIndex:     best.BlockIndex,
		BlockHash:      best.Ckpt.StateDigest,
		Proof:          best.Ckpt,
		NewBlocks:      newBlocks,
		ReadDuration:   readDur,
		VerifyDuration: time.Since(verifyStart),
	}
	// All blocks up to the proven index must now be present (§III-D
	// guarantee (ii)); otherwise the caller must run a second round.
	if dc.archive.HeadIndex() < best.BlockIndex {
		return result, fmt.Errorf("export: %w", errMissingBlocks{
			have: dc.archive.HeadIndex(), want: best.BlockIndex,
		})
	}
	return result, nil
}

// abandonRound detaches a timed-out or cancelled round so late replies are
// ignored, returning how many replies had arrived.
func (dc *DataCenter) abandonRound(r *readRound) int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if dc.pending == r {
		dc.pending = nil
	}
	return len(r.replies)
}

type errMissingBlocks struct{ have, want uint64 }

func (e errMissingBlocks) Error() string {
	return fmt.Sprintf("blocks missing after read: have %d, checkpoint covers %d", e.have, e.want)
}

// installBlocks appends verified blocks extending the archive head. The
// block named by the best checkpoint must carry the proven hash; any prefix
// is validated by hash linkage from the archive head.
func (dc *DataCenter) installBlocks(blocks []*blockchain.Block, best *ReadReply) (int, error) {
	installed := 0
	for _, b := range blocks {
		if b.Index != dc.archive.HeadIndex()+1 {
			continue // duplicate or gapped: skip
		}
		if b.Index == best.BlockIndex && b.Hash() != best.Ckpt.StateDigest {
			return installed, fmt.Errorf("export: block %d does not match checkpoint", b.Index)
		}
		if err := dc.archive.Append(b); err != nil {
			return installed, err
		}
		installed++
	}
	return installed, nil
}

// SendDelete performs step ⑤ of Fig 4: sign and broadcast the delete
// authorization for everything up to index.
func (dc *DataCenter) SendDelete(index uint64, hash crypto.Digest) {
	del := &Delete{BlockIndex: index, BlockHash: hash, DC: dc.cfg.ID}
	signMsg(del, dc.kp)
	data := wire.Marshal(del)
	for _, replica := range dc.cfg.Replicas {
		_ = dc.tr.Send(replica, data)
	}
}

// WaitDeleteAcks blocks until minReplicas replicas acknowledged the delete
// of index (step ⑦) or the context expires.
func (dc *DataCenter) WaitDeleteAcks(ctx context.Context, index uint64, minReplicas int) error {
	for {
		dc.mu.Lock()
		n := len(dc.acks[index])
		dc.mu.Unlock()
		if n >= minReplicas {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("export: %d of %d delete acks for block %d: %w",
				n, minReplicas, index, ctx.Err())
		case <-dc.ackCh:
		}
	}
}

// SyncFrom copies blocks this data center lacks from a peer data center's
// archive, verifying linkage (step ③: "synchronized with the data centers
// of the other companies"; also error (iv) recovery).
func (dc *DataCenter) SyncFrom(peer *DataCenter) (int, error) {
	installed := 0
	for {
		next := dc.archive.HeadIndex() + 1
		b, err := peer.archive.Get(next)
		if err != nil {
			return installed, nil // peer has nothing newer
		}
		if err := dc.archive.Append(b); err != nil {
			return installed, fmt.Errorf("export: sync block %d: %w", next, err)
		}
		installed++
	}
}

// Group bundles the mutually distrustful data centers of the involved
// companies and orchestrates a full export round.
type Group struct {
	DCs []*DataCenter
}

// ExportReport aggregates one export round for Table II.
type ExportReport struct {
	BlockIndex     uint64
	BlocksExported int
	ReadDuration   time.Duration
	VerifyDuration time.Duration
	DeleteDuration time.Duration
}

// ExportRound runs the complete Fig 4 flow: one data center reads from the
// train, the group synchronizes and verifies, every data center signs the
// delete, and the round completes when 2f+1 replicas acknowledged pruning.
func (g *Group) ExportRound(ctx context.Context) (*ExportReport, error) {
	if len(g.DCs) == 0 {
		return nil, fmt.Errorf("export: empty data center group")
	}
	lead := g.DCs[0]
	res, err := lead.Read(ctx)
	if err != nil {
		return nil, err
	}

	// Step ③: synchronize between the companies' data centers; each
	// verifies linkage while installing.
	syncStart := time.Now()
	for _, dc := range g.DCs[1:] {
		if _, err := dc.SyncFrom(lead); err != nil {
			return nil, err
		}
	}
	verifyDur := res.VerifyDuration + time.Since(syncStart)

	// Step ⑤: every data center signs the delete.
	deleteStart := time.Now()
	for _, dc := range g.DCs {
		dc.SendDelete(res.BlockIndex, res.BlockHash)
	}
	minAcks := 2*lead.cfg.F + 1
	for _, dc := range g.DCs {
		if err := dc.WaitDeleteAcks(ctx, res.BlockIndex, minAcks); err != nil {
			return nil, err
		}
	}
	return &ExportReport{
		BlockIndex:     res.BlockIndex,
		BlocksExported: res.NewBlocks,
		ReadDuration:   res.ReadDuration,
		VerifyDuration: verifyDur,
		DeleteDuration: time.Since(deleteStart),
	}, nil
}
