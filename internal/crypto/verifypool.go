package crypto

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zugchain/internal/metrics"
)

// VerifyPool executes Ed25519 signature checks on a fixed set of worker
// goroutines, moving the dominant CPU cost of an M-COM node (§V, Fig 7:
// "Ed25519 + message handling") off the single-threaded consumers of the
// results — the PBFT runner's event loop and the communication layer's
// transport handler.
//
// Submission semantics:
//
//   - Submit never blocks. Tasks hand off to a parked worker through a
//     buffered channel, so when the pool is idle the eager fast path wakes a
//     worker immediately with no lock contention.
//   - When the queue is saturated the submitting goroutine runs the task
//     itself. This doubles as natural backpressure: a flooding Byzantine
//     peer slows its own delivery goroutine down, never the event loop.
//   - After Close (or on a nil pool) Submit degrades to synchronous
//     execution, so shutdown ordering between the pool and its clients is
//     never deadlock-prone.
//
// Tasks submitted concurrently may complete in any order. Callers must
// therefore be order-insensitive — PBFT is: every message is idempotent and
// the protocol tolerates arbitrary reordering, which is what makes this
// pipelining safe (see DESIGN.md "Verification pipeline").
type VerifyPool struct {
	tasks   chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	once    sync.Once
	workers int
	stats   metrics.PoolCounters
}

// queueFactor sizes the task queue per worker. Deep enough to absorb a burst
// of one bus cycle's protocol messages, shallow enough that backpressure
// engages before memory does.
const queueFactor = 64

// NewVerifyPool creates a pool with the given worker count; workers <= 0
// selects GOMAXPROCS, matching the cores the runtime will actually use.
func NewVerifyPool(workers int) *VerifyPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &VerifyPool{
		tasks:   make(chan func(), workers*queueFactor),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *VerifyPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case fn := <-p.tasks:
			p.stats.Dequeued()
			p.stats.AddOffloaded()
			p.runTask(fn)
		}
	}
}

// runTask executes one task, containing a panic so a single bad task cannot
// take the worker (and, since an unrecovered panic is process-fatal, the
// whole node) down with it. Swallowed panics are counted in the pool stats;
// RunChunks additionally captures its own spans' panics and re-raises the
// first one on the caller, so panics from chunked work are never lost.
func (p *VerifyPool) runTask(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.stats.AddPanic()
		}
	}()
	fn()
}

// Workers reports the pool's worker count.
func (p *VerifyPool) Workers() int { return p.workers }

// Submit schedules fn for asynchronous execution; see the type comment for
// the exact semantics. fn must not block indefinitely (it would pin a
// worker) and must tolerate running on the caller's goroutine.
func (p *VerifyPool) Submit(fn func()) {
	if p == nil || p.closed.Load() {
		fn()
		return
	}
	start := time.Now()
	task := func() {
		fn()
		p.stats.RecordTask(time.Since(start))
	}
	p.stats.Enqueued()
	select {
	case p.tasks <- task:
	default:
		// Queue saturated: run on the caller (backpressure).
		p.stats.Dequeued()
		p.stats.AddInline()
		task()
	}
}

// RunChunks partitions [0, n) into spans of at most chunk items and runs
// fn(lo, hi) over every span, spreading the spans across the pool's workers,
// and returns once all spans have completed. It exists so a large signature
// batch (a 4096-record PrePrepare) does not serialize on the one pool worker
// that picked up its verify task.
//
// Unlike a naive Submit-and-WaitGroup fan-out, RunChunks is safe to call from
// inside a pool worker: spans are claimed from a shared atomic counter, the
// caller claims and runs spans itself alongside the helpers, and the wait is
// only for spans actually *executing* — a helper task that never leaves the
// queue (all workers busy, queue saturated) is harmless because the caller
// will have claimed its spans by then. No pool worker ever blocks on work
// that is stuck behind it.
//
// A panicking fn cannot strand the caller: every claimed span completes its
// bookkeeping even on panic, the remaining spans still run, and once all
// spans have settled the first panic value is re-raised on the caller's
// goroutine — so RunChunks panics like a plain loop over fn would, but never
// returns (or panics out) while helpers are still touching caller state.
func (p *VerifyPool) RunChunks(n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	spans := (n + chunk - 1) / chunk
	if spans == 1 || p == nil || p.closed.Load() {
		fn(0, n)
		return
	}

	var next atomic.Int64 // next unclaimed span
	var done atomic.Int64 // completed spans
	var panicMu sync.Mutex
	var panicVal any // first recovered panic, re-raised on the caller
	var panicked bool
	finished := make(chan struct{})
	runSpan := func(lo, hi int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				panicMu.Unlock()
			}
			// Must run even on panic, or the caller waits forever.
			if int(done.Add(1)) == spans {
				close(finished)
			}
		}()
		fn(lo, hi)
	}
	run := func() {
		for {
			s := int(next.Add(1)) - 1
			if s >= spans {
				return
			}
			hi := s*chunk + chunk
			if hi > n {
				hi = n
			}
			runSpan(s*chunk, hi)
		}
	}

	// One helper per span beyond the caller's own, capped at the worker
	// count; more could never run concurrently anyway.
	helpers := spans - 1
	if helpers > p.workers {
		helpers = p.workers
	}
	for i := 0; i < helpers; i++ {
		p.Submit(run)
	}
	run()
	<-finished
	panicMu.Lock()
	r, rOK := panicVal, panicked
	panicMu.Unlock()
	if rOK {
		panic(r)
	}
}

// VerifyAsync checks that sig is a valid signature by id over msg, delivering
// the verdict to done from a worker goroutine (or the caller's, under
// backpressure). done must not block.
func (p *VerifyPool) VerifyAsync(reg *Registry, id NodeID, msg, sig []byte, done func(error)) {
	p.Submit(func() { done(reg.Verify(id, msg, sig)) })
}

// Stats returns the pool's instrumentation snapshot: tasks by execution
// path, queue depth/peak, and submit-to-completion latency.
func (p *VerifyPool) Stats() metrics.PoolSnapshot { return p.stats.Snapshot() }

// Close stops the workers and waits for in-flight tasks to finish. Tasks
// still queued are dropped — acceptable because verification results feed
// consumers that are shutting down too. Subsequent Submits run synchronously.
func (p *VerifyPool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.closed.Store(true)
		close(p.quit)
		p.wg.Wait()
	})
}
