package crypto

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVerifyPoolVerifiesConcurrently(t *testing.T) {
	kp := MustGenerateKeyPair(1)
	other := MustGenerateKeyPair(2)
	reg := NewRegistry(kp, other)
	pool := NewVerifyPool(4)
	defer pool.Close()

	msg := []byte("per aspera ad astra")
	good := kp.Sign(msg)
	bad := other.Sign(msg) // valid signature, wrong claimed signer

	const n = 500
	var wg sync.WaitGroup
	var okCount, errCount atomic.Int64
	wg.Add(2 * n)
	for i := 0; i < n; i++ {
		pool.VerifyAsync(reg, 1, msg, good, func(err error) {
			if err == nil {
				okCount.Add(1)
			}
			wg.Done()
		})
		pool.VerifyAsync(reg, 1, msg, bad, func(err error) {
			if err != nil {
				errCount.Add(1)
			}
			wg.Done()
		})
	}
	wg.Wait()
	if okCount.Load() != n || errCount.Load() != n {
		t.Fatalf("got %d ok / %d rejected, want %d / %d", okCount.Load(), errCount.Load(), n, n)
	}
	st := pool.Stats()
	if st.Offloaded+st.Inline != 2*n {
		t.Errorf("stats account for %d tasks, want %d", st.Offloaded+st.Inline, 2*n)
	}
	if st.TaskCount != 2*n || st.TaskMean <= 0 {
		t.Errorf("latency stats = %+v", st)
	}
}

func TestVerifyPoolCloseDegradesToSynchronous(t *testing.T) {
	pool := NewVerifyPool(2)
	pool.Close()
	pool.Close() // idempotent

	ran := false
	pool.Submit(func() { ran = true })
	if !ran {
		t.Fatal("post-close Submit must run the task synchronously")
	}

	// A nil pool behaves the same, so callers need no nil checks.
	var nilPool *VerifyPool
	ran = false
	nilPool.Submit(func() { ran = true })
	if !ran {
		t.Fatal("nil-pool Submit must run the task synchronously")
	}
	nilPool.Close()
}

func TestVerifyPoolSaturationRunsInline(t *testing.T) {
	pool := NewVerifyPool(1)
	defer pool.Close()

	// Pin the single worker, then overfill the queue: subsequent submits
	// must complete on the caller before Submit returns.
	release := make(chan struct{})
	pool.Submit(func() { <-release })
	time.Sleep(10 * time.Millisecond) // let the worker pick the blocker up
	for i := 0; i < queueFactor; i++ {
		pool.Submit(func() { <-release })
	}
	done := false
	pool.Submit(func() { done = true })
	if !done {
		t.Fatal("saturated Submit must fall back to inline execution")
	}
	if st := pool.Stats(); st.Inline == 0 {
		t.Errorf("inline fallback not recorded: %+v", st)
	}
	close(release)
}

func TestRegistryConcurrentAddAndVerify(t *testing.T) {
	base := MustGenerateKeyPair(1)
	reg := NewRegistry(base)
	msg := []byte("copy-on-write")
	sig := base.Sign(msg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.Verify(1, msg, sig); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		kp := MustGenerateKeyPair(DataCenterIDBase + NodeID(i))
		reg.Add(kp.ID, kp.Public)
	}
	close(stop)
	wg.Wait()
	if reg.Len() != 51 {
		t.Fatalf("registry has %d keys, want 51", reg.Len())
	}
}

// BenchmarkVerifySerial is the baseline: every signature checked inline on
// one goroutine, as the seed's engine event loop did.
func BenchmarkVerifySerial(b *testing.B) {
	kp := MustGenerateKeyPair(1)
	reg := NewRegistry(kp)
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Verify(1, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyPipelined pushes the same checks through the VerifyPool
// from a single submitter, the runner's ingest pattern. At GOMAXPROCS >= 4
// the ns/op should be well under half of BenchmarkVerifySerial.
func BenchmarkVerifyPipelined(b *testing.B) {
	kp := MustGenerateKeyPair(1)
	reg := NewRegistry(kp)
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	pool := NewVerifyPool(0)
	defer pool.Close()

	var failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.VerifyAsync(reg, 1, msg, sig, func(err error) {
			if err != nil {
				failed.Add(1)
			}
			wg.Done()
		})
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() != 0 {
		b.Fatalf("%d verifications failed", failed.Load())
	}
}
