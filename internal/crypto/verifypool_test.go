package crypto

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVerifyPoolVerifiesConcurrently(t *testing.T) {
	kp := MustGenerateKeyPair(1)
	other := MustGenerateKeyPair(2)
	reg := NewRegistry(kp, other)
	pool := NewVerifyPool(4)
	defer pool.Close()

	msg := []byte("per aspera ad astra")
	good := kp.Sign(msg)
	bad := other.Sign(msg) // valid signature, wrong claimed signer

	const n = 500
	var wg sync.WaitGroup
	var okCount, errCount atomic.Int64
	wg.Add(2 * n)
	for i := 0; i < n; i++ {
		pool.VerifyAsync(reg, 1, msg, good, func(err error) {
			if err == nil {
				okCount.Add(1)
			}
			wg.Done()
		})
		pool.VerifyAsync(reg, 1, msg, bad, func(err error) {
			if err != nil {
				errCount.Add(1)
			}
			wg.Done()
		})
	}
	wg.Wait()
	if okCount.Load() != n || errCount.Load() != n {
		t.Fatalf("got %d ok / %d rejected, want %d / %d", okCount.Load(), errCount.Load(), n, n)
	}
	st := pool.Stats()
	if st.Offloaded+st.Inline != 2*n {
		t.Errorf("stats account for %d tasks, want %d", st.Offloaded+st.Inline, 2*n)
	}
	if st.TaskCount != 2*n || st.TaskMean <= 0 {
		t.Errorf("latency stats = %+v", st)
	}
}

func TestVerifyPoolCloseDegradesToSynchronous(t *testing.T) {
	pool := NewVerifyPool(2)
	pool.Close()
	pool.Close() // idempotent

	ran := false
	pool.Submit(func() { ran = true })
	if !ran {
		t.Fatal("post-close Submit must run the task synchronously")
	}

	// A nil pool behaves the same, so callers need no nil checks.
	var nilPool *VerifyPool
	ran = false
	nilPool.Submit(func() { ran = true })
	if !ran {
		t.Fatal("nil-pool Submit must run the task synchronously")
	}
	nilPool.Close()
}

func TestVerifyPoolSaturationRunsInline(t *testing.T) {
	pool := NewVerifyPool(1)
	defer pool.Close()

	// Pin the single worker, then overfill the queue: subsequent submits
	// must complete on the caller before Submit returns.
	release := make(chan struct{})
	pool.Submit(func() { <-release })
	time.Sleep(10 * time.Millisecond) // let the worker pick the blocker up
	for i := 0; i < queueFactor; i++ {
		pool.Submit(func() { <-release })
	}
	done := false
	pool.Submit(func() { done = true })
	if !done {
		t.Fatal("saturated Submit must fall back to inline execution")
	}
	if st := pool.Stats(); st.Inline == 0 {
		t.Errorf("inline fallback not recorded: %+v", st)
	}
	close(release)
}

func TestRegistryConcurrentAddAndVerify(t *testing.T) {
	base := MustGenerateKeyPair(1)
	reg := NewRegistry(base)
	msg := []byte("copy-on-write")
	sig := base.Sign(msg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.Verify(1, msg, sig); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		kp := MustGenerateKeyPair(DataCenterIDBase + NodeID(i))
		reg.Add(kp.ID, kp.Public)
	}
	close(stop)
	wg.Wait()
	if reg.Len() != 51 {
		t.Fatalf("registry has %d keys, want 51", reg.Len())
	}
}

// BenchmarkVerifySerial is the baseline: every signature checked inline on
// one goroutine, as the seed's engine event loop did.
func BenchmarkVerifySerial(b *testing.B) {
	kp := MustGenerateKeyPair(1)
	reg := NewRegistry(kp)
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Verify(1, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyPipelined pushes the same checks through the VerifyPool
// from a single submitter, the runner's ingest pattern. At GOMAXPROCS >= 4
// the ns/op should be well under half of BenchmarkVerifySerial.
func BenchmarkVerifyPipelined(b *testing.B) {
	kp := MustGenerateKeyPair(1)
	reg := NewRegistry(kp)
	msg := make([]byte, 256)
	sig := kp.Sign(msg)
	pool := NewVerifyPool(0)
	defer pool.Close()

	var failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.VerifyAsync(reg, 1, msg, sig, func(err error) {
			if err != nil {
				failed.Add(1)
			}
			wg.Done()
		})
	}
	wg.Wait()
	b.StopTimer()
	if failed.Load() != 0 {
		b.Fatalf("%d verifications failed", failed.Load())
	}
}

func TestRunChunksCoversRangeExactlyOnce(t *testing.T) {
	pool := NewVerifyPool(4)
	defer pool.Close()
	for _, tc := range []struct{ n, chunk int }{
		{1, 16}, {15, 16}, {16, 16}, {17, 16}, {100, 16}, {100, 1}, {64, 0},
	} {
		covered := make([]atomic.Int32, tc.n)
		pool.RunChunks(tc.n, tc.chunk, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d chunk=%d: bad span [%d,%d)", tc.n, tc.chunk, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if got := covered[i].Load(); got != 1 {
				t.Fatalf("n=%d chunk=%d: index %d covered %d times", tc.n, tc.chunk, i, got)
			}
		}
	}
	// Degenerate inputs are no-ops.
	pool.RunChunks(0, 16, func(lo, hi int) { t.Error("fn called for n=0") })
	pool.RunChunks(-3, 16, func(lo, hi int) { t.Error("fn called for n<0") })
}

// TestRunChunksFromPoolWorker is the deadlock regression: RunChunks invoked
// from inside a pool task (exactly what VerifyRequestDeep does when the
// runner submits preVerify to the pool) must complete even when every worker
// is busy and the helper tasks never leave the queue.
func TestRunChunksFromPoolWorker(t *testing.T) {
	pool := NewVerifyPool(1) // single worker: helpers can never be picked up
	defer pool.Close()
	done := make(chan int, 1)
	pool.Submit(func() {
		total := 0
		var mu sync.Mutex
		pool.RunChunks(64, 4, func(lo, hi int) {
			mu.Lock()
			total += hi - lo
			mu.Unlock()
		})
		done <- total
	})
	select {
	case got := <-done:
		if got != 64 {
			t.Fatalf("covered %d items, want 64", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunChunks deadlocked when called from a pool worker")
	}
}

func TestRunChunksAfterCloseRunsSynchronously(t *testing.T) {
	pool := NewVerifyPool(2)
	pool.Close()
	total := 0
	pool.RunChunks(32, 8, func(lo, hi int) { total += hi - lo })
	if total != 32 {
		t.Fatalf("covered %d items after Close, want 32", total)
	}
	var nilPool *VerifyPool
	total = 0
	nilPool.RunChunks(32, 8, func(lo, hi int) { total += hi - lo })
	if total != 32 {
		t.Fatalf("nil pool covered %d items, want 32", total)
	}
}

// TestRunChunksPanicDoesNotHang is the regression for the panic-stranding
// bug: a chunk that panics used to kill its goroutine without ever counting
// its span done, leaving the caller blocked on the completion channel
// forever. Now every span completes its bookkeeping, the remaining spans
// still run, the first panic is re-raised on the caller once all spans have
// settled (so no helper is still touching caller state when it propagates),
// and the pool's workers survive for subsequent work.
func TestRunChunksPanicDoesNotHang(t *testing.T) {
	pool := NewVerifyPool(4)
	defer pool.Close()

	result := make(chan any, 1)
	covered := make([]atomic.Int32, 64)
	go func() {
		defer func() { result <- recover() }()
		pool.RunChunks(len(covered), 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
			if lo == 20 {
				panic("chunk exploded")
			}
		})
		result <- nil
	}()

	select {
	case r := <-result:
		if r == nil {
			t.Fatal("RunChunks swallowed the chunk panic")
		}
		if s, ok := r.(string); !ok || s != "chunk exploded" {
			t.Fatalf("unexpected panic value: %v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunChunks hung after a chunk panicked")
	}
	// All spans ran exactly once despite the panic — when the panic reached
	// the caller, no helper was left mid-span.
	for i := range covered {
		if got := covered[i].Load(); got != 1 {
			t.Fatalf("index %d covered %d times, want 1", i, got)
		}
	}

	// The pool is still fully operational.
	total := 0
	var mu sync.Mutex
	pool.RunChunks(32, 4, func(lo, hi int) {
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	if total != 32 {
		t.Fatalf("pool covered %d items after panic, want 32", total)
	}
}

// TestVerifyPoolSubmitPanicContained checks that a panicking Submit task is
// contained by the worker (counted, not fatal) and the worker keeps serving.
func TestVerifyPoolSubmitPanicContained(t *testing.T) {
	pool := NewVerifyPool(1)
	defer pool.Close()

	pool.Submit(func() { panic("bad verification callback") })
	done := make(chan struct{})
	pool.Submit(func() { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker died after a task panic")
	}
	deadline := time.Now().Add(10 * time.Second)
	for pool.Stats().Panics != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("expected 1 contained panic in stats, got %d", pool.Stats().Panics)
		}
		time.Sleep(time.Millisecond)
	}
}
