package crypto

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"testing"

	"zugchain/internal/metrics"
)

// batchFixture is a set of keyed signers plus signed messages ready to feed a
// BatchVerifier.
type batchFixture struct {
	reg  *Registry
	kps  []*KeyPair
	msgs [][]byte
	sigs [][]byte
}

func newBatchFixture(t testing.TB, signers, n int) *batchFixture {
	t.Helper()
	f := &batchFixture{}
	for i := 0; i < signers; i++ {
		f.kps = append(f.kps, MustGenerateKeyPair(NodeID(i)))
	}
	f.reg = NewRegistry(f.kps...)
	for i := 0; i < n; i++ {
		msg := []byte(fmt.Sprintf("record %d payload", i))
		f.msgs = append(f.msgs, msg)
		f.sigs = append(f.sigs, f.kps[i%signers].Sign(msg))
	}
	return f
}

func (f *batchFixture) verifier() *BatchVerifier {
	bv := f.reg.NewBatchVerifier(len(f.msgs))
	for i := range f.msgs {
		bv.Add(f.kps[i%len(f.kps)].ID, f.msgs[i], f.sigs[i])
	}
	return bv
}

func TestBatchVerifyAllValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 64, 100} {
		f := newBatchFixture(t, 4, n)
		if failed := f.verifier().Verify(); failed != nil {
			t.Fatalf("n=%d: valid batch reported failures %v", n, failed)
		}
	}
}

// TestBatchVerifyPinpointsCorruption flips bits in various signature
// positions and checks that Verify names exactly the corrupted indices — the
// bisection fallback must be exact, not probabilistic.
func TestBatchVerifyPinpointsCorruption(t *testing.T) {
	cases := [][]int{{0}, {63}, {17}, {3, 40}, {0, 1, 2}, {10, 11, 40, 41, 63}}
	for _, corrupt := range cases {
		f := newBatchFixture(t, 4, 64)
		for _, i := range corrupt {
			f.sigs[i][2+i%60] ^= 0x40
		}
		failed := f.verifier().Verify()
		if len(failed) != len(corrupt) {
			t.Fatalf("corrupt %v: got failures %v", corrupt, failed)
		}
		for j, want := range corrupt {
			if failed[j] != want {
				t.Fatalf("corrupt %v: got failures %v", corrupt, failed)
			}
		}
	}
}

// TestBatchVerifyMalformedInputs checks the structural rejections: unknown
// signer, truncated signature, non-canonical s, and an undecodable R must be
// flagged without poisoning the rest of the batch.
func TestBatchVerifyMalformedInputs(t *testing.T) {
	f := newBatchFixture(t, 2, 8)

	f.sigs[1] = f.sigs[1][:40] // truncated

	// Non-canonical s: l + original s mod 2^256 would need big-int math;
	// simply setting the top bits makes s >= l.
	for i := 32; i < 64; i++ {
		f.sigs[2][i] = 0xff
	}

	bv := f.reg.NewBatchVerifier(len(f.msgs))
	for i := range f.msgs {
		id := f.kps[i%len(f.kps)].ID
		if i == 3 {
			id = NodeID(999) // unknown signer
		}
		bv.Add(id, f.msgs[i], f.sigs[i])
	}
	failed := bv.Verify()
	want := []int{1, 2, 3}
	if len(failed) != len(want) {
		t.Fatalf("got failures %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("got failures %v, want %v", failed, want)
		}
	}
}

// TestBatchVerifyDisabled checks that a registry with batch verification
// switched off still reaches the same verdicts via scalar verifies.
func TestBatchVerifyDisabled(t *testing.T) {
	cc := &metrics.CryptoCounters{}
	f := newBatchFixture(t, 4, 32)
	f.reg = f.reg.Accelerated(nil, false, cc)
	f.sigs[5][7] ^= 1
	failed := f.verifier().Verify()
	if len(failed) != 1 || failed[0] != 5 {
		t.Fatalf("got failures %v, want [5]", failed)
	}
	s := cc.Snapshot()
	if s.BatchOps != 0 {
		t.Fatalf("batch disabled but %d batch ops recorded", s.BatchOps)
	}
	if s.ScalarVerifies != 32 {
		t.Fatalf("expected 32 scalar verifies, got %d", s.ScalarVerifies)
	}
}

// TestBatchVerifyFeedsCache checks that batch-verified signatures land in the
// cache, so a retransmitted batch is settled without curve work.
func TestBatchVerifyFeedsCache(t *testing.T) {
	cc := &metrics.CryptoCounters{}
	f := newBatchFixture(t, 4, 32)
	f.reg = f.reg.Accelerated(NewVerifyCache(0, cc), true, cc)

	if failed := f.verifier().Verify(); failed != nil {
		t.Fatalf("first pass failed: %v", failed)
	}
	before := cc.Snapshot()
	if before.BatchedSigs != 32 {
		t.Fatalf("expected 32 batched sigs, got %d", before.BatchedSigs)
	}

	if failed := f.verifier().Verify(); failed != nil {
		t.Fatalf("second pass failed: %v", failed)
	}
	after := cc.Snapshot()
	if after.CacheHits != 32 {
		t.Fatalf("expected 32 cache hits on retransmit, got %d", after.CacheHits)
	}
	if after.BatchedSigs != before.BatchedSigs || after.ScalarVerifies != before.ScalarVerifies {
		t.Fatalf("retransmit did curve work: %+v -> %+v", before, after)
	}
}

// FuzzBatchVerify feeds the batch verifier pseudo-random mixes of valid,
// corrupted, and cross-wired signatures and asserts (a) every verdict agrees
// with VerifySignature — the cofactored scalar path every replica runs, the
// agreement property the accelerator's safety rests on — and (b) also with
// crypto/ed25519.Verify, since for honest and randomly corrupted signatures
// the cofactored and cofactorless accept sets coincide (they diverge only on
// deliberately crafted small-order-torsion inputs, which random corruption
// cannot produce and TestTorsionSignatureDeterministic covers).
func FuzzBatchVerify(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(0))
	f.Add(int64(2), uint8(64), uint8(3))
	f.Add(int64(3), uint8(33), uint8(33))
	f.Add(int64(4), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, corruptRaw uint8) {
		n := int(nRaw)%96 + 1
		rng := rand.New(rand.NewSource(seed))

		kps := []*KeyPair{MustGenerateKeyPair(0), MustGenerateKeyPair(1), MustGenerateKeyPair(2)}
		reg := NewRegistry(kps...)

		msgs := make([][]byte, n)
		sigs := make([][]byte, n)
		ids := make([]NodeID, n)
		for i := range msgs {
			msgs[i] = make([]byte, 1+rng.Intn(64))
			rng.Read(msgs[i])
			kp := kps[rng.Intn(len(kps))]
			ids[i] = kp.ID
			sigs[i] = kp.Sign(msgs[i])
		}

		// Corrupt a subset: bit flips in R, s, or the message; or swap a
		// signature with another entry's (valid sig, wrong message).
		for c := 0; c < int(corruptRaw)%8; c++ {
			i := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				sigs[i][rng.Intn(32)] ^= 1 << rng.Intn(8)
			case 1:
				sigs[i][32+rng.Intn(32)] ^= 1 << rng.Intn(8)
			case 2:
				msgs[i][rng.Intn(len(msgs[i]))] ^= 1 << rng.Intn(8)
			case 3:
				j := rng.Intn(n)
				sigs[i] = sigs[j]
				ids[i] = ids[j]
			}
		}

		bv := reg.NewBatchVerifier(n)
		for i := range msgs {
			bv.Add(ids[i], msgs[i], sigs[i])
		}
		failed := bv.Verify()

		failedSet := make(map[int]bool, len(failed))
		for i, j := range failed {
			if i > 0 && failed[i-1] >= j {
				t.Fatalf("failed indices not strictly ascending: %v", failed)
			}
			failedSet[j] = true
		}
		for i := range msgs {
			pub, _ := reg.PublicKey(ids[i])
			got := !failedSet[i]
			if want := VerifySignature(pub, msgs[i], sigs[i]); got != want {
				t.Fatalf("index %d: batch verdict %v, VerifySignature %v (failed=%v)", i, got, want, failed)
			}
			if want := ed25519.Verify(pub, msgs[i], sigs[i]); got != want {
				t.Fatalf("index %d: batch verdict %v, ed25519.Verify %v (failed=%v)", i, got, want, failed)
			}
		}
	})
}

// BenchmarkVerifyBatch compares per-signature cost of the sequential scalar
// path against the multi-scalar batch equation at the PrePrepare batch size.
// The acceptance bar for this accelerator is batch64 >= 1.4x scalar
// throughput (sigs/sec).
func BenchmarkVerifyBatch(b *testing.B) {
	f := newBatchFixture(b, 4, 64)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := i % 64
			pub := f.kps[j%len(f.kps)].Public
			if !ed25519.Verify(pub, f.msgs[j], f.sigs[j]) {
				b.Fatal("verify failed")
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += 64 {
			if failed := f.verifier().Verify(); failed != nil {
				b.Fatalf("batch failed: %v", failed)
			}
		}
	})
}

// BenchmarkVerifyCachedRetransmit measures the verified-signature cache's
// fast path: the same 64-record batch verified repeatedly, as happens when a
// soft-timeout rebroadcast or NEWVIEW re-proposal replays signatures this
// node already checked. After the first pass every check is a cache hit.
func BenchmarkVerifyCachedRetransmit(b *testing.B) {
	cc := &metrics.CryptoCounters{}
	f := newBatchFixture(b, 4, 64)
	f.reg = f.reg.Accelerated(NewVerifyCache(0, cc), true, cc)
	if failed := f.verifier().Verify(); failed != nil {
		b.Fatalf("warm-up failed: %v", failed)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		if failed := f.verifier().Verify(); failed != nil {
			b.Fatalf("retransmit pass failed: %v", failed)
		}
	}
	b.StopTimer()
	s := cc.Snapshot()
	b.ReportMetric(s.HitRate*100, "hit%")
}
