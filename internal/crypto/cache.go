package crypto

import (
	"container/list"
	"crypto/ed25519"
	"sync"

	"zugchain/internal/metrics"
)

// DefaultVerifyCacheSize is the per-node capacity of the verified-signature
// cache when the operator does not override it. 4096 entries cover several
// in-flight protocol rounds of a 4–16 replica cluster with headroom for
// retransmits; at ~150 bytes per entry the worst case is under a megabyte.
const DefaultVerifyCacheSize = 4096

// verifyCacheShards splits the cache into independently locked shards so pool
// workers verifying different messages rarely contend. Must be a power of two.
const verifyCacheShards = 8

// cacheKey identifies one successful verification. The full signature is part
// of the key on purpose: an attacker replaying a known-good (signer, digest)
// pair with a forged signature misses the cache and falls through to a real
// verify, so a cache entry can never launder a bad signature (anti-poisoning).
// The public key the signature verified under is part of the key too, so if
// Registry.Add ever replaces a node's key, every entry proved under the old
// key silently stops hitting — no invalidation protocol needed, across every
// Accelerated view sharing the key set.
type cacheKey struct {
	id  NodeID
	pub [ed25519.PublicKeySize]byte
	d   Digest
	sig [SignatureSize]byte
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element // element value is the cacheKey
	order   *list.List                 // front = most recently used
	cap     int
}

// VerifyCache memoizes successful Ed25519 verifications so retransmitted
// messages, NEWVIEW re-proposals, and state-transfer re-validation skip the
// scalar multiplication entirely. It is a sharded, lock-striped, bounded LRU;
// all methods are safe for concurrent use and nil-safe (a nil cache never
// hits and never stores).
//
// Entries are inserted only on the two trusted paths — after a verification
// actually succeeded (Registry.Verify, BatchVerifier) or when this node signed
// the bytes itself (KeyPair.Sign with WithCache) — never on receipt of
// unverified data.
type VerifyCache struct {
	shards [verifyCacheShards]cacheShard
	cc     *metrics.CryptoCounters
}

// NewVerifyCache returns a cache bounded to capacity entries overall.
// capacity <= 0 selects DefaultVerifyCacheSize. cc may be nil.
func NewVerifyCache(capacity int, cc *metrics.CryptoCounters) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheSize
	}
	c := &VerifyCache{cc: cc}
	// Distribute the bound across shards, rounding up so small capacities
	// still admit at least one entry per shard.
	per := (capacity + verifyCacheShards - 1) / verifyCacheShards
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*list.Element, per)
		c.shards[i].order = list.New()
		c.shards[i].cap = per
	}
	return c
}

func (c *VerifyCache) shard(k *cacheKey) *cacheShard {
	// The digest is already uniform (SHA-256), so its low bits pick a shard.
	return &c.shards[uint(k.d[0])&(verifyCacheShards-1)]
}

// Seen reports whether (id, digest, sig) was previously verified under pub,
// refreshing its LRU position on a hit.
func (c *VerifyCache) Seen(id NodeID, pub ed25519.PublicKey, d Digest, sig []byte) bool {
	if c == nil || len(sig) != SignatureSize || len(pub) != ed25519.PublicKeySize {
		return false
	}
	k := cacheKey{id: id, d: d}
	copy(k.pub[:], pub)
	copy(k.sig[:], sig)
	s := c.shard(&k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	if ok {
		c.cc.AddCacheHit()
	} else {
		c.cc.AddCacheMiss()
	}
	return ok
}

// Note records a successful verification of (id, digest, sig) under pub,
// evicting the least recently used entry of the shard if it is full. Callers
// must only invoke it after sig actually verified (or was produced locally).
func (c *VerifyCache) Note(id NodeID, pub ed25519.PublicKey, d Digest, sig []byte) {
	if c == nil || len(sig) != SignatureSize || len(pub) != ed25519.PublicKeySize {
		return
	}
	k := cacheKey{id: id, d: d}
	copy(k.pub[:], pub)
	copy(k.sig[:], sig)
	s := c.shard(&k)
	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := false
	if s.order.Len() >= s.cap {
		if back := s.order.Back(); back != nil {
			delete(s.entries, back.Value.(cacheKey))
			s.order.Remove(back)
			evicted = true
		}
	}
	s.entries[k] = s.order.PushFront(k)
	s.mu.Unlock()
	if evicted {
		c.cc.AddCacheEviction()
	}
}

// Len returns the current number of cached entries across all shards.
func (c *VerifyCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
