package crypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha512"
	"testing"

	"zugchain/internal/crypto/edwards25519"
)

// smallOrderPoint returns a canonical non-identity small-order point of the
// curve: (0, -1), of order 2. Adding it to a signature's R commitment plants
// a torsion defect that the cofactorless ed25519.Verify equation rejects but
// a cofactorless *batch* equation would cancel whenever the random z
// coefficients happen to sum to 0 mod the point's order — the
// nondeterminism this package's cofactored equation exists to rule out.
func smallOrderPoint(t *testing.T) *edwards25519.Point {
	t.Helper()
	enc := make([]byte, 32)
	enc[0] = 0xec // little-endian p-1: y = -1, x = 0
	for i := 1; i < 31; i++ {
		enc[i] = 0xff
	}
	enc[31] = 0x7f
	p, err := new(edwards25519.Point).SetBytes(enc)
	if err != nil {
		t.Fatalf("decode small-order point: %v", err)
	}
	if p.Equal(edwards25519.NewIdentityPoint()) == 1 {
		t.Fatal("small-order point is the identity")
	}
	if new(edwards25519.Point).Add(p, p).Equal(edwards25519.NewIdentityPoint()) != 1 {
		t.Fatal("point is not of order 2")
	}
	return p
}

// torsionSignature produces, with kp's private key, a signature over msg
// whose R commitment carries a small-order torsion component: R' = R + T,
// s = r + k'·a with k' recomputed over the shifted encoding. Only the key
// holder can build one (s must satisfy the equation over the prime-order
// component), so this is signer-side malleability, not a forgery.
func torsionSignature(t *testing.T, kp *KeyPair, msg []byte) []byte {
	t.Helper()

	// Expand the private scalar a exactly as Ed25519 key expansion does.
	h := sha512.Sum512(kp.private.Seed())
	a, err := new(edwards25519.Scalar).SetBytesWithClamping(h[:32])
	if err != nil {
		t.Fatalf("clamp private scalar: %v", err)
	}

	var wide [64]byte
	if _, err := rand.Read(wide[:]); err != nil {
		t.Fatalf("read nonce: %v", err)
	}
	r, err := new(edwards25519.Scalar).SetUniformBytes(wide[:])
	if err != nil {
		t.Fatalf("nonce scalar: %v", err)
	}

	R := new(edwards25519.Point).ScalarBaseMult(r)
	R.Add(R, smallOrderPoint(t)) // plant the torsion defect
	renc := R.Bytes()

	k := challengeScalar(renc, kp.Public, msg)
	s := new(edwards25519.Scalar).MultiplyAdd(k, a, r) // s = k·a + r

	return append(append([]byte{}, renc...), s.Bytes()...)
}

// TestTorsionSignatureDeterministic is the regression test for the batch
// soundness fix: a signature with a small-order torsion defect in R is
// rejected by the cofactorless crypto/ed25519.Verify, but under a
// cofactorless batch equation it would be *randomly* accepted (probability
// 1/order over the z coefficients) — two honest replicas could durably
// disagree on the same bytes. The cofactored equation used here must settle
// it identically on the scalar and batch paths, every time: always valid,
// deterministically, on both.
func TestTorsionSignatureDeterministic(t *testing.T) {
	kps := []*KeyPair{MustGenerateKeyPair(0), MustGenerateKeyPair(1)}
	reg := NewRegistry(kps...)
	msg := []byte("juridical record with a torsioned commitment")
	sig := torsionSignature(t, kps[0], msg)

	// Sanity: the defect is real — the stdlib's cofactorless equation
	// rejects these bytes.
	if ed25519.Verify(kps[0].Public, msg, sig) {
		t.Fatal("torsion signature unexpectedly passes ed25519.Verify; defect not planted")
	}

	// Scalar path: deterministically valid.
	if !VerifySignature(kps[0].Public, msg, sig) {
		t.Fatal("cofactored scalar verify rejected the torsion signature")
	}
	if err := reg.Verify(kps[0].ID, msg, sig); err != nil {
		t.Fatalf("Registry.Verify rejected the torsion signature: %v", err)
	}

	// Batch path: the verdict must agree with the scalar path on every run.
	// 64 trials redraw the random z coefficients each time; under the old
	// cofactorless batch equation the order-2 defect flipped the verdict
	// with probability 1/2 per trial, so a nondeterministic regression fails
	// this loop with probability 1 - 2^-64.
	for trial := 0; trial < 64; trial++ {
		bv := reg.NewBatchVerifier(8)
		for i := 0; i < 8; i++ {
			if i == 3 {
				bv.Add(kps[0].ID, msg, sig)
				continue
			}
			m := []byte{byte(trial), byte(i)}
			bv.Add(kps[i%2].ID, m, kps[i%2].Sign(m))
		}
		if failed := bv.Verify(); failed != nil {
			t.Fatalf("trial %d: batch verdict diverged from scalar path: failed=%v", trial, failed)
		}
	}

	// And the bisection ground truth agrees too: corrupt a different entry
	// so the batch fails and the torsion entry is settled by a bisection
	// leaf — it must still be valid, and only the corrupt index named.
	for trial := 0; trial < 16; trial++ {
		bv := reg.NewBatchVerifier(4)
		bv.Add(kps[0].ID, msg, sig)
		for i := 1; i < 4; i++ {
			m := []byte{0xff, byte(trial), byte(i)}
			s := kps[i%2].Sign(m)
			if i == 2 {
				s = bytes.Repeat([]byte{0x42}, SignatureSize) // corrupt
			}
			bv.Add(kps[i%2].ID, m, s)
		}
		if failed := bv.Verify(); len(failed) != 1 || failed[0] != 2 {
			t.Fatalf("trial %d: want failed=[2], got %v", trial, failed)
		}
	}
}

// TestMultByCofactor pins the vendored curve addition: 8·P must equal three
// doublings for a generic point, and must clear a small-order point to the
// identity.
func TestMultByCofactor(t *testing.T) {
	var wide [64]byte
	if _, err := rand.Read(wide[:]); err != nil {
		t.Fatalf("rand: %v", err)
	}
	s, err := new(edwards25519.Scalar).SetUniformBytes(wide[:])
	if err != nil {
		t.Fatalf("scalar: %v", err)
	}
	p := new(edwards25519.Point).ScalarBaseMult(s)

	want := new(edwards25519.Point).Add(p, p) // 2P
	want.Add(want, want)                      // 4P
	want.Add(want, want)                      // 8P
	got := new(edwards25519.Point).MultByCofactor(p)
	if got.Equal(want) != 1 {
		t.Fatal("MultByCofactor disagrees with three doublings")
	}

	small := smallOrderPoint(t)
	if new(edwards25519.Point).MultByCofactor(small).Equal(edwards25519.NewIdentityPoint()) != 1 {
		t.Fatal("MultByCofactor did not clear a small-order point")
	}
}
