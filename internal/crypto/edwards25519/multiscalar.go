// Copyright (c) 2026 The ZugChain Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package edwards25519

// VarTimeMultiScalarBaseMult sets and returns
//
//	v = b * B + scalars[0] * points[0] + ... + scalars[n-1] * points[n-1]
//
// where B is the canonical generator. It generalizes
// VarTimeDoubleScalarBaseMult to any number of dynamic points: one shared
// run of 256 doublings amortizes over all terms (Straus' trick), which is
// what makes verifying n Ed25519 signatures in one pass cheaper than n
// independent double-scalar multiplications.
//
// Execution time depends on the inputs; callers must only use it with
// public data (signature verification is — signatures, public keys and
// messages are all attacker-visible).
func (v *Point) VarTimeMultiScalarBaseMult(b *Scalar, scalars []*Scalar, points []*Point) *Point {
	if len(scalars) != len(points) {
		panic("edwards25519: mismatched multiscalar slice lengths")
	}
	checkInitialized(points...)

	// Per dynamic point a width-5 NAF and its odd-multiples table; the
	// fixed basepoint affords the precomputed width-8 table, exactly as in
	// VarTimeDoubleScalarBaseMult.
	n := len(points)
	tables := make([]nafLookupTable5, n)
	nafs := make([][256]int8, n)
	for j := range points {
		tables[j].FromP3(points[j])
		nafs[j] = scalars[j].nonAdjacentForm(5)
	}
	basepointNafTable := basepointNafTable()
	bNaf := b.nonAdjacentForm(8)

	multP := &projCached{}
	multB := &affineCached{}
	tmp1 := &projP1xP1{}
	tmp2 := &projP2{}
	tmp2.Zero()

	// High to low: double the shared accumulator once per bit, then fold in
	// whichever terms have a nonzero NAF coefficient at this position.
	for i := 255; i >= 0; i-- {
		tmp1.Double(tmp2)

		for j := 0; j < n; j++ {
			if c := nafs[j][i]; c > 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multP, c)
				tmp1.Add(v, multP)
			} else if c < 0 {
				v.fromP1xP1(tmp1)
				tables[j].SelectInto(multP, -c)
				tmp1.Sub(v, multP)
			}
		}

		if c := bNaf[i]; c > 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, c)
			tmp1.AddAffine(v, multB)
		} else if c < 0 {
			v.fromP1xP1(tmp1)
			basepointNafTable.SelectInto(multB, -c)
			tmp1.SubAffine(v, multB)
		}

		tmp2.FromP1xP1(tmp1)
	}

	v.fromP2(tmp2)
	return v
}
