package edwards25519

import (
	"crypto/rand"
	"testing"
)

func randomScalar(t *testing.T) *Scalar {
	t.Helper()
	var wide [64]byte
	if _, err := rand.Read(wide[:]); err != nil {
		t.Fatal(err)
	}
	s, err := NewScalar().SetUniformBytes(wide[:])
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestVarTimeMultiScalarBaseMult cross-checks the multiscalar primitive
// against the reference computed term by term with ScalarBaseMult and
// ScalarMult.
func TestVarTimeMultiScalarBaseMult(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 33} {
		b := randomScalar(t)
		scalars := make([]*Scalar, n)
		points := make([]*Point, n)
		want := new(Point).ScalarBaseMult(b)
		for i := range scalars {
			scalars[i] = randomScalar(t)
			points[i] = new(Point).ScalarBaseMult(randomScalar(t))
			want.Add(want, new(Point).ScalarMult(scalars[i], points[i]))
		}
		got := new(Point).VarTimeMultiScalarBaseMult(b, scalars, points)
		if got.Equal(want) != 1 {
			t.Fatalf("n=%d: multiscalar result diverges from term-by-term sum", n)
		}
	}
}

// TestVarTimeMultiScalarBaseMultIdentity checks the degenerate inputs the
// batch verifier's equation relies on: all-zero scalars must yield the
// identity.
func TestVarTimeMultiScalarBaseMultIdentity(t *testing.T) {
	zero := NewScalar()
	p := new(Point).ScalarBaseMult(randomScalar(t))
	got := new(Point).VarTimeMultiScalarBaseMult(zero, []*Scalar{zero, zero}, []*Point{p, p})
	if got.Equal(NewIdentityPoint()) != 1 {
		t.Fatal("zero combination is not the identity")
	}
}

func TestVarTimeMultiScalarBaseMultMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	new(Point).VarTimeMultiScalarBaseMult(NewScalar(), []*Scalar{NewScalar()}, nil)
}
