// Copyright (c) 2017 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package edwards25519 implements group logic for the twisted Edwards curve
//
//	-x^2 + y^2 = 1 + -(121665/121666)*x^2*y^2
//
// This is the curve underlying Ed25519. The implementation is vendored from
// the Go standard library (crypto/internal/fips140/edwards25519, go1.24),
// which in turn descends from filippo.io/edwards25519 — the only changes are
// the import paths (the stdlib-internal subtle/byteorder helpers are replaced
// by crypto/subtle and encoding/binary) and two additions:
// VarTimeMultiScalarBaseMult (multiscalar.go), the multi-scalar
// multiplication primitive ZugChain's Ed25519 batch verifier is built on,
// and MultByCofactor (ported from filippo.io/edwards25519), which the
// cofactored verification equation uses to clear small-order torsion.
// The original license is retained in LICENSE.
//
// The vendoring exists because ZugChain's ordering hot path is bound by
// sequential crypto/ed25519.Verify calls, batch verification needs direct
// access to the group arithmetic, and this repository builds without network
// access to fetch filippo.io/edwards25519.
package edwards25519
