package crypto

import (
	"crypto/ed25519"
	"crypto/sha512"
	"crypto/subtle"

	"zugchain/internal/crypto/edwards25519"
)

// VerifySignature is ZugChain's Ed25519 ground truth: it checks sig over msg
// under pub using the *cofactored* verification equation
//
//	[8]([s]B − [k]A − R) == identity,  k = SHA-512(R ‖ A ‖ M)
//
// with canonical-encoding requirements on R (its encoding must round-trip)
// and s (must be fully reduced mod the group order). Every verification path
// in the repository — Registry.Verify, the BatchVerifier's batch equation,
// and the bisection leaves — shares this accept set, which is what makes
// signature validity a deterministic, replica-independent predicate.
//
// Cofactored instead of crypto/ed25519.Verify's cofactorless equation on
// purpose: the cofactorless form is incompatible with batch verification. A
// signer who knows the private key can shift R by a small-order torsion
// point T (R' = R + T, s unchanged); cofactorless single verification
// rejects such a signature, but the z-weighted batch sum cancels the torsion
// whenever Σ z_i·T_i happens to vanish mod 8 — the same bytes would verify
// on one replica and fail on another depending on local randomness. The
// cofactored equation multiplies the torsion away identically in the single
// and batched forms (the ed25519consensus / ZIP-215 construction), so both
// paths accept the same set: such a torsion-shifted signature is *always*
// valid here, never probabilistically. Only the key holder can produce one
// (s must satisfy the equation over the prime-order component), so this is
// benign malleability by the signer, not a forgery vector; the verified-
// signature cache is keyed by the full signature bytes, so each variant is
// cached and checked independently.
//
// For honestly generated signatures (crypto/ed25519.Sign) the verdict always
// matches crypto/ed25519.Verify; the accept sets differ only on crafted
// small-order-torsion inputs, where this one is deterministic and the
// stdlib's batch-incompatible.
func VerifySignature(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	A := new(edwards25519.Point)
	if _, err := A.SetBytes(pub); err != nil {
		return false
	}
	R := new(edwards25519.Point)
	if _, err := R.SetBytes(sig[:32]); err != nil {
		return false
	}
	if subtle.ConstantTimeCompare(R.Bytes(), sig[:32]) != 1 {
		return false
	}
	S := new(edwards25519.Scalar)
	if _, err := S.SetCanonicalBytes(sig[32:]); err != nil {
		return false
	}
	k := challengeScalar(sig[:32], pub, msg)
	return cofactoredEqual(A, R, S, k)
}

// challengeScalar computes the Ed25519 challenge k = SHA-512(R ‖ A ‖ M)
// reduced mod the group order.
func challengeScalar(renc, pub, msg []byte) *edwards25519.Scalar {
	h := sha512.New()
	h.Write(renc)
	h.Write(pub)
	h.Write(msg)
	var digest [64]byte
	k := new(edwards25519.Scalar)
	// SetUniformBytes only errors on wrong input length; h.Sum is 64 bytes.
	k.SetUniformBytes(h.Sum(digest[:0]))
	return k
}

// cofactoredEqual evaluates [8]([s]B − [k]A − R) == identity for one
// already-parsed signature.
func cofactoredEqual(A, R *edwards25519.Point, S, k *edwards25519.Scalar) bool {
	kNeg := new(edwards25519.Scalar).Negate(k)
	p := new(edwards25519.Point).VarTimeDoubleScalarBaseMult(kNeg, A, S) // [s]B − [k]A
	p.Subtract(p, R)
	p.MultByCofactor(p)
	return p.Equal(edwards25519.NewIdentityPoint()) == 1
}
