package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/subtle"

	"zugchain/internal/crypto/edwards25519"
)

// minBatchEquation is the smallest number of uncached signatures worth
// settling through the multi-scalar equation. Below it the shared-doubling
// saving does not cover the per-batch setup, so Verify falls back to
// sequential scalar verifies.
const minBatchEquation = 2

// zScalarBytes is the size of the random blinding coefficients z_i: 128 bits
// keep the probability that a wrong signature slips through a batch at 2^-128
// while halving the NAF length versus full-width scalars.
const zScalarBytes = 16

type batchEntry struct {
	id  NodeID
	pub ed25519.PublicKey
	msg []byte
	sig []byte
	d   Digest // Hash(msg); cache key component

	// Verification state. Exactly one of cached/bad may be set after Add;
	// otherwise the parsed curve elements below are populated.
	cached bool // cache hit at Add time: already known good
	bad    bool // structurally invalid: known bad without curve work

	A *edwards25519.Point  // signer public key
	R *edwards25519.Point  // signature commitment, canonical encoding
	S *edwards25519.Scalar // signature scalar, canonical
	k *edwards25519.Scalar // SHA-512(R ‖ A ‖ M) challenge
	z *edwards25519.Scalar // random batch coefficient, set in Verify
}

// BatchVerifier settles N Ed25519 signature checks in one multi-scalar
// multiplication pass. Instead of N independent double-scalar
// multiplications it draws random 128-bit coefficients z_i and checks the
// single cofactored equation
//
//	[8]( Σ z_i·R_i + Σ (z_i·k_i)·A_i − (Σ z_i·s_i)·B )  ==  identity
//
// whose 256 accumulator doublings are shared across all terms (Straus'
// trick). A batch that fails bisects — halves re-checked by the same
// equation, single-entry leaves by VerifySignature — so Verify always
// pinpoints exactly which signatures are corrupt.
//
// The multiplication by the cofactor 8 is what makes batching sound: it
// clears small-order torsion components identically here and in the
// single-signature equation, so the batch accept set equals VerifySignature's
// except with probability 2^-128 over the z_i — independent of torsion
// defects an adversarial signer may plant (see VerifySignature for why the
// cofactorless crypto/ed25519.Verify equation cannot be batched). Canonical
// encodings of R and s are still required, checked at Add time. Cached and
// structurally invalid entries are settled at Add time and never touch the
// curve.
//
// A BatchVerifier is single-use and not safe for concurrent use; each
// goroutine (e.g. each verify-pool chunk) builds its own.
type BatchVerifier struct {
	reg     *Registry
	entries []batchEntry
}

// NewBatchVerifier returns a verifier for signatures against r's key set,
// pre-sized for capacity entries.
func (r *Registry) NewBatchVerifier(capacity int) *BatchVerifier {
	return &BatchVerifier{reg: r, entries: make([]batchEntry, 0, capacity)}
}

// Add queues one (signer, message, signature) check. msg and sig are
// retained until Verify returns and must not be mutated meanwhile. Malformed
// inputs (unknown signer, bad lengths, non-canonical or invalid encodings)
// are recorded as failed immediately; they surface in Verify's result.
func (v *BatchVerifier) Add(id NodeID, msg, sig []byte) {
	v.entries = append(v.entries, batchEntry{id: id, msg: msg, sig: sig})
	e := &v.entries[len(v.entries)-1]

	pub, ok := v.reg.PublicKey(id)
	if !ok || len(sig) != ed25519.SignatureSize || len(pub) != ed25519.PublicKeySize {
		e.bad = true
		return
	}
	e.pub = pub

	if v.reg.cache != nil {
		e.d = Hash(msg)
		if v.reg.cache.Seen(id, pub, e.d, sig) {
			e.cached = true
			return
		}
	}
	if !v.reg.batch {
		// Scalar fallback needs only (pub, msg, sig); don't pay for the
		// point decompressions the batch equation would have used.
		return
	}

	// Parse the curve elements, mirroring VerifySignature's structural
	// rejections exactly: undecodable keys and commitments, a non-canonical
	// R encoding (SetBytes accepts them, the round-trip comparison rejects),
	// and a non-canonical s all fail on both paths.
	e.A = new(edwards25519.Point)
	e.R = new(edwards25519.Point)
	e.S = new(edwards25519.Scalar)
	if _, err := e.A.SetBytes(pub); err != nil {
		e.bad = true
		return
	}
	if _, err := e.R.SetBytes(sig[:32]); err != nil {
		e.bad = true
		return
	}
	if subtle.ConstantTimeCompare(e.R.Bytes(), sig[:32]) != 1 {
		e.bad = true
		return
	}
	if _, err := e.S.SetCanonicalBytes(sig[32:]); err != nil {
		e.bad = true
		return
	}
	e.k = challengeScalar(sig[:32], pub, msg)
}

// Len reports how many checks have been queued.
func (v *BatchVerifier) Len() int { return len(v.entries) }

// Verify settles every queued check and returns the indices (in Add order,
// ascending) of the signatures that failed, or nil if all are valid. Verified
// signatures are recorded in the registry's cache. The verifier must not be
// reused afterwards.
func (v *BatchVerifier) Verify() []int {
	var failed []int
	live := make([]*batchEntry, 0, len(v.entries))
	liveIdx := make([]int, 0, len(v.entries))
	for i := range v.entries {
		e := &v.entries[i]
		switch {
		case e.bad:
			failed = append(failed, i)
		case e.cached:
		default:
			live = append(live, e)
			liveIdx = append(liveIdx, i)
		}
	}

	if len(live) < minBatchEquation || !v.reg.batch || !v.assignCoefficients(live) {
		for j, e := range live {
			if !v.scalarVerify(e) {
				failed = append(failed, liveIdx[j])
			}
		}
		sortInts(failed)
		return failed
	}

	v.reg.cc.RecordBatch(len(live))
	if !batchCheck(live) {
		for _, j := range v.bisect(live) {
			failed = append(failed, liveIdx[j])
		}
	} else {
		for _, e := range live {
			v.reg.cache.Note(e.id, e.pub, e.d, e.sig)
		}
	}
	sortInts(failed)
	return failed
}

// assignCoefficients draws the random 128-bit z_i for every live entry in one
// bulk read. It reports false if system randomness is unavailable, in which
// case the caller must fall back to scalar verification (a predictable z
// would let an attacker craft cancelling wrong signatures).
func (v *BatchVerifier) assignCoefficients(live []*batchEntry) bool {
	buf := make([]byte, zScalarBytes*len(live))
	if _, err := rand.Read(buf); err != nil {
		return false
	}
	var wide [32]byte
	for j, e := range live {
		copy(wide[:zScalarBytes], buf[j*zScalarBytes:(j+1)*zScalarBytes])
		if wide == ([32]byte{}) {
			wide[0] = 1 // z must be nonzero or the entry goes unchecked
		}
		e.z = new(edwards25519.Scalar)
		if _, err := e.z.SetCanonicalBytes(wide[:]); err != nil {
			return false // unreachable: 2^128-1 < group order
		}
	}
	return true
}

// batchCheck evaluates the combined equation over entries, which must all
// have parsed curve elements and coefficients assigned. Rearranged for the
// multiscalar primitive: with bCoeff = −Σ z_i·s_i the equation holds iff
//
//	[8]( bCoeff·B + Σ z_i·R_i + Σ (z_i·k_i)·A_i )  ==  identity,
//
// the final MultByCofactor clearing any small-order torsion exactly as
// VerifySignature's single equation does.
//
// Entries signed by the same public key share one A term with coefficient
// Σ z_i·k_i — algebraically identical, but it collapses the dominant cost of
// the A side (full-width NAF additions plus a lookup table per point) to one
// per distinct signer. In a consensus batch the signers are the handful of
// cluster replicas, so this halves the equation's dynamic points.
func batchCheck(entries []*batchEntry) bool {
	bCoeff := new(edwards25519.Scalar)
	scalars := make([]*edwards25519.Scalar, 0, len(entries)+4)
	points := make([]*edwards25519.Point, 0, len(entries)+4)
	byKey := make(map[[ed25519.PublicKeySize]byte]*edwards25519.Scalar, 4)
	for _, e := range entries {
		bCoeff.MultiplyAdd(e.z, e.S, bCoeff)
		scalars = append(scalars, e.z)
		points = append(points, e.R)
		var key [ed25519.PublicKeySize]byte
		copy(key[:], e.pub)
		if acc := byKey[key]; acc != nil {
			acc.MultiplyAdd(e.z, e.k, acc)
		} else {
			zk := new(edwards25519.Scalar).Multiply(e.z, e.k)
			byKey[key] = zk
			scalars = append(scalars, zk)
			points = append(points, e.A)
		}
	}
	bCoeff.Negate(bCoeff)
	p := new(edwards25519.Point).VarTimeMultiScalarBaseMult(bCoeff, scalars, points)
	p.MultByCofactor(p)
	return p.Equal(edwards25519.NewIdentityPoint()) == 1
}

// bisect pinpoints the corrupt entries of a batch that failed batchCheck,
// returning their positions within live. Halves are re-tested with the batch
// equation (reusing the already-drawn z_i); single entries are settled by
// the cofactored single equation, which is the ground truth — so the result
// is exact, never probabilistic.
func (v *BatchVerifier) bisect(live []*batchEntry) []int {
	if len(live) == 1 {
		if v.scalarVerify(live[0]) {
			return nil
		}
		return []int{0}
	}
	v.reg.cc.AddBisection()
	mid := len(live) / 2
	var failed []int
	half := func(entries []*batchEntry, offset int) {
		if len(entries) >= minBatchEquation {
			v.reg.cc.RecordBatch(len(entries))
			if batchCheck(entries) {
				for _, e := range entries {
					v.reg.cache.Note(e.id, e.pub, e.d, e.sig)
				}
				return
			}
		}
		for _, j := range v.bisect(entries) {
			failed = append(failed, offset+j)
		}
	}
	half(live[:mid], 0)
	half(live[mid:], mid)
	return failed
}

// scalarVerify settles one entry with the cofactored single equation
// (VerifySignature's accept set), feeding the cache on success. Entries that
// already carry parsed curve elements (batch path) skip re-parsing.
func (v *BatchVerifier) scalarVerify(e *batchEntry) bool {
	v.reg.cc.AddScalarVerify()
	var ok bool
	if e.k != nil {
		ok = cofactoredEqual(e.A, e.R, e.S, e.k)
	} else {
		ok = VerifySignature(e.pub, e.msg, e.sig)
	}
	if !ok {
		return false
	}
	v.reg.cache.Note(e.id, e.pub, e.d, e.sig)
	return true
}

// sortInts is an insertion sort for the (short, nearly sorted) failed-index
// slices, avoiding a sort package dependency on the hot path.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
