package crypto

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"testing"

	"zugchain/internal/metrics"
)

func TestVerifyCacheHitMissEvict(t *testing.T) {
	cc := &metrics.CryptoCounters{}
	// Capacity 16 across 8 shards = 2 entries per shard.
	c := NewVerifyCache(16, cc)

	sig := make([]byte, SignatureSize)
	pub := make(ed25519.PublicKey, ed25519.PublicKeySize)
	d := Hash([]byte("msg"))
	if c.Seen(1, pub, d, sig) {
		t.Fatal("hit on empty cache")
	}
	c.Note(1, pub, d, sig)
	if !c.Seen(1, pub, d, sig) {
		t.Fatal("miss after Note")
	}

	// Different signature over the same (signer, digest) must miss: the
	// full signature is part of the key (anti-poisoning — a forged sig can
	// never ride a cached good one).
	forged := make([]byte, SignatureSize)
	forged[0] = 0xff
	if c.Seen(1, pub, d, forged) {
		t.Fatal("forged signature hit the cache")
	}
	// Different signer, same digest and sig: also a miss.
	if c.Seen(2, pub, d, sig) {
		t.Fatal("wrong signer hit the cache")
	}

	// Overfill: per-shard LRU bound must evict, never grow unbounded.
	for i := 0; i < 500; i++ {
		c.Note(1, pub, Hash([]byte(fmt.Sprintf("m%d", i))), sig)
	}
	if c.Len() > 16 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
	if s := cc.Snapshot(); s.CacheEvictions == 0 {
		t.Fatal("no evictions recorded after overfill")
	}

	// Wrong-length signatures never enter or match.
	c.Note(1, pub, d, sig[:10])
	if c.Seen(1, pub, d, sig[:10]) {
		t.Fatal("short signature cached")
	}

	// Nil cache is inert.
	var nilCache *VerifyCache
	nilCache.Note(1, pub, d, sig)
	if nilCache.Seen(1, pub, d, sig) || nilCache.Len() != 0 {
		t.Fatal("nil cache not inert")
	}
}

func TestVerifyCacheLRUOrder(t *testing.T) {
	// One shard's worth of traffic: craft digests landing in shard 0.
	c := NewVerifyCache(16, nil) // 2 per shard
	sig := make([]byte, SignatureSize)
	pub := make(ed25519.PublicKey, ed25519.PublicKeySize)
	shard0 := func(tag byte) Digest {
		var d Digest
		d[0] = 0 // shard selector byte
		d[1] = tag
		return d
	}
	a, b2, e := shard0(1), shard0(2), shard0(3)
	c.Note(1, pub, a, sig)
	c.Note(1, pub, b2, sig)
	c.Seen(1, pub, a, sig) // refresh a; b2 is now LRU
	c.Note(1, pub, e, sig) // evicts b2
	if !c.Seen(1, pub, a, sig) {
		t.Fatal("refreshed entry evicted")
	}
	if c.Seen(1, pub, b2, sig) {
		t.Fatal("LRU entry survived eviction")
	}
	if !c.Seen(1, pub, e, sig) {
		t.Fatal("new entry missing")
	}
}

// TestRegistryVerifyCached checks the Registry.Verify fast path: the second
// verification of the same triple must not run the curve.
func TestRegistryVerifyCached(t *testing.T) {
	kp := MustGenerateKeyPair(0)
	cc := &metrics.CryptoCounters{}
	reg := NewRegistry(kp).Accelerated(NewVerifyCache(0, cc), true, cc)

	msg := []byte("juridical record")
	sig := kp.Sign(msg)
	for i := 0; i < 3; i++ {
		if err := reg.Verify(kp.ID, msg, sig); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	s := cc.Snapshot()
	if s.ScalarVerifies != 1 {
		t.Fatalf("expected 1 scalar verify, got %d", s.ScalarVerifies)
	}
	if s.CacheHits != 2 {
		t.Fatalf("expected 2 cache hits, got %d", s.CacheHits)
	}

	// A failed verification must not be cached.
	bad := make([]byte, SignatureSize)
	for i := 0; i < 2; i++ {
		if err := reg.Verify(kp.ID, msg, bad); err == nil {
			t.Fatal("bad signature accepted")
		}
	}
	if s := cc.Snapshot(); s.ScalarVerifies != 3 {
		t.Fatalf("bad signature was cached: %d scalar verifies", s.ScalarVerifies)
	}
}

// TestSignSeedsCache checks satellite #1's mechanism: a key pair bound to a
// cache via WithCache marks its own signatures verified at Sign time, so the
// signer never re-verifies its own output.
func TestSignSeedsCache(t *testing.T) {
	kp := MustGenerateKeyPair(0)
	cc := &metrics.CryptoCounters{}
	cache := NewVerifyCache(0, cc)
	reg := NewRegistry(kp).Accelerated(cache, true, cc)
	signer := kp.WithCache(cache)

	msg := []byte("self-signed proposal")
	sig := signer.Sign(msg)
	if err := reg.Verify(kp.ID, msg, sig); err != nil {
		t.Fatalf("verify own signature: %v", err)
	}
	if s := cc.Snapshot(); s.ScalarVerifies != 0 {
		t.Fatalf("own signature cost %d scalar verifies, want 0", s.ScalarVerifies)
	}

	// The original pair stays cache-free.
	sig2 := kp.Sign([]byte("other"))
	if cache.Seen(kp.ID, kp.Public, Hash([]byte("other")), sig2) {
		t.Fatal("unbound key pair seeded the cache")
	}
}

// TestVerifyCacheKeyRotation checks that cached verifications die with the
// key they were proved under: after Registry.Add replaces a node's public
// key, signatures verified under the old key must not keep validating via
// cache hits — the public key is part of the cache key, so they miss and
// fall through to a real (failing) verify.
func TestVerifyCacheKeyRotation(t *testing.T) {
	old := MustGenerateKeyPair(7)
	cc := &metrics.CryptoCounters{}
	reg := NewRegistry(old).Accelerated(NewVerifyCache(0, cc), true, cc)

	msg := []byte("signed before the key changed")
	sig := old.Sign(msg)
	if err := reg.Verify(old.ID, msg, sig); err != nil {
		t.Fatalf("verify under original key: %v", err)
	}
	if err := reg.Verify(old.ID, msg, sig); err != nil {
		t.Fatalf("cached verify under original key: %v", err)
	}
	if s := cc.Snapshot(); s.CacheHits != 1 {
		t.Fatalf("expected 1 cache hit before rotation, got %d", s.CacheHits)
	}

	// Replace the key. The old signature is now invalid and must be
	// re-checked for real, not served from the cache.
	reg.Add(old.ID, MustGenerateKeyPair(7).Public)
	before := cc.Snapshot()
	if err := reg.Verify(old.ID, msg, sig); err == nil {
		t.Fatal("old-key signature still accepted after key rotation")
	}
	after := cc.Snapshot()
	if after.CacheHits != before.CacheHits {
		t.Fatal("old-key signature hit the cache after key rotation")
	}
	if after.ScalarVerifies != before.ScalarVerifies+1 {
		t.Fatalf("expected a real verify after rotation, got %d -> %d scalar verifies",
			before.ScalarVerifies, after.ScalarVerifies)
	}

	// Batch path sees the rotation too: a BatchVerifier entry for the old
	// signature must fail, not cache-hit.
	bv := reg.NewBatchVerifier(1)
	bv.Add(old.ID, msg, sig)
	if failed := bv.Verify(); len(failed) != 1 {
		t.Fatalf("batch accepted old-key signature after rotation: %v", failed)
	}
}

// TestVerifyCacheConcurrent hammers one cache from many goroutines mixing
// hits, misses, inserts and evictions — the lock-striping must hold up under
// the race detector (this test is part of the `make check` race run).
func TestVerifyCacheConcurrent(t *testing.T) {
	cc := &metrics.CryptoCounters{}
	c := NewVerifyCache(64, cc)
	kp := MustGenerateKeyPair(0)
	reg := NewRegistry(kp).Accelerated(c, true, cc)

	msgs := make([][]byte, 32)
	sigs := make([][]byte, 32)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("concurrent %d", i))
		sigs[i] = kp.Sign(msgs[i])
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := (g*31 + i) % len(msgs)
				if err := reg.Verify(kp.ID, msgs[j], sigs[j]); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
				// Unique inserts to force LRU churn alongside the hits.
				c.Note(kp.ID, kp.Public, Hash([]byte(fmt.Sprintf("churn %d %d", g, i))), sigs[j])
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache exceeded bound under concurrency: %d", c.Len())
	}
}

// TestBatchVerifyConcurrentCache runs batch verifiers on pool workers sharing
// one cache — the production shape (VerifyRequestDeep chunks on VerifyPool).
func TestBatchVerifyConcurrentCache(t *testing.T) {
	cc := &metrics.CryptoCounters{}
	cache := NewVerifyCache(0, cc)
	kps := []*KeyPair{MustGenerateKeyPair(0), MustGenerateKeyPair(1)}
	reg := NewRegistry(kps...).Accelerated(cache, true, cc)
	pool := NewVerifyPool(4)
	defer pool.Close()

	msgs := make([][]byte, 128)
	sigs := make([][]byte, 128)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("pooled %d", i))
		sigs[i] = kps[i%2].Sign(msgs[i])
	}
	for round := 0; round < 4; round++ {
		pool.RunChunks(len(msgs), 16, func(lo, hi int) {
			bv := reg.NewBatchVerifier(hi - lo)
			for i := lo; i < hi; i++ {
				bv.Add(kps[i%2].ID, msgs[i], sigs[i])
			}
			if failed := bv.Verify(); failed != nil {
				t.Errorf("chunk [%d,%d): failures %v", lo, hi, failed)
			}
		})
	}
	s := cc.Snapshot()
	if s.BatchedSigs != 128 {
		t.Fatalf("expected 128 batched sigs (first round only), got %d", s.BatchedSigs)
	}
	if s.CacheHits != 3*128 {
		t.Fatalf("expected 384 cache hits (three retransmit rounds), got %d", s.CacheHits)
	}
}
