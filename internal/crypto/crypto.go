// Package crypto provides the node identities and Ed25519 signing primitives
// used throughout ZugChain. Every replica and every data center owns a key
// pair; all protocol messages (ordering, checkpoint, view change, export)
// are signed, matching the paper's use of ring's Ed25519 (§IV).
package crypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"zugchain/internal/metrics"
)

// NodeID identifies a participant: a ZugChain replica or a data center.
// Replica IDs are dense, starting at 0, because PBFT selects the primary as
// view mod n. Data centers use a disjoint high range (see DataCenterIDBase).
type NodeID uint32

// DataCenterIDBase is the first NodeID used for data centers, keeping them
// out of the replica ID space.
const DataCenterIDBase NodeID = 1 << 16

// String renders the ID, distinguishing replicas from data centers.
func (id NodeID) String() string {
	if id >= DataCenterIDBase {
		return fmt.Sprintf("dc%d", uint32(id-DataCenterIDBase))
	}
	return fmt.Sprintf("r%d", uint32(id))
}

// Digest is a SHA-256 hash, used for request payload identity, block
// hashes, and checkpoint digests.
type Digest [32]byte

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// Short returns an 8-hex-character prefix for logs.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// SignatureSize is the size of an Ed25519 signature in bytes.
const SignatureSize = ed25519.SignatureSize

// Signing errors.
var (
	ErrUnknownSigner    = errors.New("crypto: unknown signer")
	ErrInvalidSignature = errors.New("crypto: invalid signature")
)

// KeyPair is a node identity with its private key.
type KeyPair struct {
	ID      NodeID
	Public  ed25519.PublicKey
	private ed25519.PrivateKey

	// cache, when set via WithCache, is seeded on Sign so this node's own
	// signatures are already "verified" if they echo back (a primary
	// re-checking its own proposal, loopback delivery, state transfer).
	cache *VerifyCache
}

// GenerateKeyPair creates a fresh Ed25519 key pair for id. If rng is nil,
// crypto/rand.Reader is used.
func GenerateKeyPair(id NodeID, rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate key for %v: %w", id, err)
	}
	return &KeyPair{ID: id, Public: pub, private: priv}, nil
}

// KeyPairFromPrivate reconstructs a key pair from a stored private key,
// e.g. when loading a keyring from disk.
func KeyPairFromPrivate(id NodeID, priv ed25519.PrivateKey) *KeyPair {
	pub, _ := priv.Public().(ed25519.PublicKey)
	return &KeyPair{ID: id, Public: pub, private: priv}
}

// MustGenerateKeyPair is GenerateKeyPair for tests and setup code where key
// generation cannot reasonably fail.
func MustGenerateKeyPair(id NodeID) *KeyPair {
	kp, err := GenerateKeyPair(id, nil)
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign signs msg with the node's private key. If the pair carries a verify
// cache (WithCache), the fresh signature is recorded as verified — the node
// trusts its own key, so re-encountering the signature later (loopback,
// retransmit, NEWVIEW carrying its own request) must not cost a scalar
// multiplication.
func (k *KeyPair) Sign(msg []byte) []byte {
	sig := ed25519.Sign(k.private, msg)
	k.cache.Note(k.ID, k.Public, Hash(msg), sig)
	return sig
}

// WithCache returns a copy of k that seeds cache on every Sign. The original
// pair is unchanged.
func (k *KeyPair) WithCache(cache *VerifyCache) *KeyPair {
	clone := *k
	clone.cache = cache
	return &clone
}

// Registry maps node IDs to public keys and verifies signatures. It is
// immutable after construction apart from Add, and safe for concurrent use.
// In a deployment it corresponds to the key material distributed to all
// participants at train commissioning (§III-B: "all nodes are equipped with
// a public-private key pair").
//
// Reads are lock-free: the key set is an immutable snapshot swapped
// atomically by Add (copy-on-write). Verify sits on the consensus hot path
// and runs concurrently on the verification pool's workers; keys change only
// at setup, so writes may pay for the copy.
//
// The key set lives behind pointers so Accelerated can hand out views that
// share one set of keys while carrying their own verified-signature cache and
// counters (each node caches independently; the cluster's keys are one
// object).
type Registry struct {
	mu   *sync.Mutex // serializes writers (Add); readers never take it
	keys *atomic.Pointer[map[NodeID]ed25519.PublicKey]

	// Acceleration state, set by Accelerated. cache memoizes successful
	// verifications (nil disables); batch enables the multi-scalar batch
	// equation in BatchVerifier; cc receives instrumentation (nil discards).
	cache *VerifyCache
	batch bool
	cc    *metrics.CryptoCounters
}

// NewRegistry builds a registry from the given key pairs' public halves.
// Batch verification is enabled by default; there is no cache until
// Accelerated attaches one.
func NewRegistry(pairs ...*KeyPair) *Registry {
	keys := make(map[NodeID]ed25519.PublicKey, len(pairs))
	for _, kp := range pairs {
		keys[kp.ID] = kp.Public
	}
	r := &Registry{mu: &sync.Mutex{}, keys: &atomic.Pointer[map[NodeID]ed25519.PublicKey]{}, batch: true}
	r.keys.Store(&keys)
	return r
}

// Accelerated returns a view of r with the given verified-signature cache,
// batch-verification switch, and counters. The view shares r's key set —
// Add through either is visible to both — but caches and counts
// independently, so co-located nodes (tests, in-process benchmarks) can share
// keys without sharing verification state. cache and cc may be nil.
func (r *Registry) Accelerated(cache *VerifyCache, batchVerify bool, cc *metrics.CryptoCounters) *Registry {
	return &Registry{mu: r.mu, keys: r.keys, cache: cache, batch: batchVerify, cc: cc}
}

// snapshot returns the current immutable key set. Callers must not mutate it.
func (r *Registry) snapshot() map[NodeID]ed25519.PublicKey {
	return *r.keys.Load()
}

// Add registers a public key, e.g. a data center key learned at setup. The
// key set is copied so concurrent Verify calls keep reading a consistent
// snapshot without locking. Replacing an existing id's key is safe with
// respect to the verified-signature cache: entries are keyed by the public
// key they verified under, so proofs made under the old key stop hitting the
// moment the key changes.
func (r *Registry) Add(id NodeID, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	keys := make(map[NodeID]ed25519.PublicKey, len(old)+1)
	for k, v := range old {
		keys[k] = v
	}
	keys[id] = pub
	r.keys.Store(&keys)
}

// PublicKey returns the key for id, if known.
func (r *Registry) PublicKey(id NodeID) (ed25519.PublicKey, bool) {
	pub, ok := r.snapshot()[id]
	return pub, ok
}

// IDs returns all registered node IDs in ascending order.
func (r *Registry) IDs() []NodeID {
	keys := r.snapshot()
	ids := make([]NodeID, 0, len(keys))
	for id := range keys {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len reports the number of registered keys.
func (r *Registry) Len() int {
	return len(r.snapshot())
}

// Verify checks that sig is a valid signature by id over msg, using the
// cofactored single equation (VerifySignature) — the same deterministic
// accept set as the batch path. When the registry carries a
// verified-signature cache, a previously verified (id, key, msg, sig) tuple
// returns immediately without touching the curve; fresh successes are
// recorded for next time. Hashing msg for the cache key costs ~1% of the
// scalar multiplication it saves on a hit.
func (r *Registry) Verify(id NodeID, msg, sig []byte) error {
	pub, ok := r.PublicKey(id)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownSigner, id)
	}
	if len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("%w: from %v", ErrInvalidSignature, id)
	}
	var d Digest
	if r.cache != nil {
		d = Hash(msg)
		if r.cache.Seen(id, pub, d, sig) {
			return nil
		}
	}
	r.cc.AddScalarVerify()
	if !VerifySignature(pub, msg, sig) {
		return fmt.Errorf("%w: from %v", ErrInvalidSignature, id)
	}
	r.cache.Note(id, pub, d, sig)
	return nil
}

// Counters returns the registry's crypto instrumentation, if any.
func (r *Registry) Counters() *metrics.CryptoCounters { return r.cc }

// Cache returns the registry's verified-signature cache, if any.
func (r *Registry) Cache() *VerifyCache { return r.cache }

// BatchEnabled reports whether NewBatchVerifier will use the multi-scalar
// batch equation (true) or fall back to sequential scalar verifies (false).
func (r *Registry) BatchEnabled() bool { return r.batch }
