package crypto

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSignVerify(t *testing.T) {
	kp := MustGenerateKeyPair(0)
	reg := NewRegistry(kp)

	msg := []byte("juridical event")
	sig := kp.Sign(msg)
	if err := reg.Verify(0, msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	kp := MustGenerateKeyPair(1)
	reg := NewRegistry(kp)

	msg := []byte("speed=120")
	sig := kp.Sign(msg)
	msg[0] ^= 0x01
	if err := reg.Verify(1, msg, sig); !errors.Is(err, ErrInvalidSignature) {
		t.Errorf("Verify = %v, want ErrInvalidSignature", err)
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	a := MustGenerateKeyPair(0)
	b := MustGenerateKeyPair(1)
	reg := NewRegistry(a, b)

	msg := []byte("brake")
	sig := a.Sign(msg)
	if err := reg.Verify(1, msg, sig); !errors.Is(err, ErrInvalidSignature) {
		t.Errorf("Verify = %v, want ErrInvalidSignature", err)
	}
}

func TestVerifyUnknownSigner(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Verify(7, []byte("x"), make([]byte, SignatureSize)); !errors.Is(err, ErrUnknownSigner) {
		t.Errorf("Verify = %v, want ErrUnknownSigner", err)
	}
}

func TestVerifyRejectsMalformedSignature(t *testing.T) {
	kp := MustGenerateKeyPair(0)
	reg := NewRegistry(kp)
	tests := []struct {
		name string
		sig  []byte
	}{
		{"nil", nil},
		{"short", make([]byte, SignatureSize-1)},
		{"long", make([]byte, SignatureSize+1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := reg.Verify(0, []byte("m"), tt.sig); !errors.Is(err, ErrInvalidSignature) {
				t.Errorf("Verify = %v, want ErrInvalidSignature", err)
			}
		})
	}
}

func TestRegistryAddAndIDs(t *testing.T) {
	a := MustGenerateKeyPair(2)
	b := MustGenerateKeyPair(0)
	reg := NewRegistry(a, b)

	dc := MustGenerateKeyPair(DataCenterIDBase)
	reg.Add(dc.ID, dc.Public)

	ids := reg.IDs()
	want := []NodeID{0, 2, DataCenterIDBase}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs()[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
	if reg.Len() != 3 {
		t.Errorf("Len() = %d, want 3", reg.Len())
	}
}

func TestNodeIDString(t *testing.T) {
	tests := []struct {
		id   NodeID
		want string
	}{
		{0, "r0"},
		{3, "r3"},
		{DataCenterIDBase, "dc0"},
		{DataCenterIDBase + 2, "dc2"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("NodeID(%d).String() = %q, want %q", uint32(tt.id), got, tt.want)
		}
	}
}

func TestDigest(t *testing.T) {
	d1 := Hash([]byte("a"))
	d2 := Hash([]byte("a"))
	d3 := Hash([]byte("b"))
	if d1 != d2 {
		t.Error("Hash not deterministic")
	}
	if d1 == d3 {
		t.Error("distinct inputs collided")
	}
	if d1.IsZero() {
		t.Error("nonempty hash reported zero")
	}
	var z Digest
	if !z.IsZero() {
		t.Error("zero digest not reported zero")
	}
	if len(d1.Short()) != 8 {
		t.Errorf("Short() = %q, want 8 hex chars", d1.Short())
	}
}

// Property: a signature over any message verifies, and flipping any single
// bit of the message defeats verification.
func TestSignaturePropertyFlippedBit(t *testing.T) {
	kp := MustGenerateKeyPair(0)
	reg := NewRegistry(kp)
	f := func(msg []byte, flip uint) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		sig := kp.Sign(msg)
		if reg.Verify(0, msg, sig) != nil {
			return false
		}
		i := int(flip % uint(len(msg)*8))
		msg[i/8] ^= 1 << (i % 8)
		return reg.Verify(0, msg, sig) != nil
	}
	cfg := &quick.Config{MaxCount: 25} // signing is slow; keep the count modest
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
