// Package keyring persists the cluster's key material for multi-process
// deployments: every replica's and data center's Ed25519 key pair in one
// JSON file, corresponding to the keys distributed to the train components
// at commissioning (§III-B). The file contains private keys and is meant
// for lab and testbed use; a production deployment would provision each
// node with only its own private key plus the public set.
package keyring

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"zugchain/internal/crypto"
)

// Entry is one participant's key material.
type Entry struct {
	ID      uint32 `json:"id"`
	Public  string `json:"public"`  // base64 Ed25519 public key
	Private string `json:"private"` // base64 Ed25519 private key (seed||pub)
}

// File is the serialized keyring.
type File struct {
	Replicas    []Entry `json:"replicas"`
	DataCenters []Entry `json:"dataCenters"`
}

// Generate creates key material for nReplicas replicas (IDs 0..n-1) and
// nDCs data centers (IDs DataCenterIDBase..).
func Generate(nReplicas, nDCs int) (*File, error) {
	f := &File{}
	for i := 0; i < nReplicas; i++ {
		e, err := newEntry(uint32(i))
		if err != nil {
			return nil, err
		}
		f.Replicas = append(f.Replicas, e)
	}
	for i := 0; i < nDCs; i++ {
		e, err := newEntry(uint32(crypto.DataCenterIDBase) + uint32(i))
		if err != nil {
			return nil, err
		}
		f.DataCenters = append(f.DataCenters, e)
	}
	return f, nil
}

func newEntry(id uint32) (Entry, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return Entry{}, fmt.Errorf("keyring: generate key %d: %w", id, err)
	}
	return Entry{
		ID:      id,
		Public:  base64.StdEncoding.EncodeToString(pub),
		Private: base64.StdEncoding.EncodeToString(priv),
	}, nil
}

// Save writes the keyring to path with restrictive permissions.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("keyring: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("keyring: write %s: %w", path, err)
	}
	return nil
}

// Load reads a keyring from path.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyring: read %s: %w", path, err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("keyring: parse %s: %w", path, err)
	}
	return &f, nil
}

// Registry builds the public-key registry over every entry in the file.
func (f *File) Registry() (*crypto.Registry, error) {
	reg := crypto.NewRegistry()
	for _, e := range append(append([]Entry{}, f.Replicas...), f.DataCenters...) {
		pub, err := base64.StdEncoding.DecodeString(e.Public)
		if err != nil || len(pub) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("keyring: bad public key for id %d", e.ID)
		}
		reg.Add(crypto.NodeID(e.ID), ed25519.PublicKey(pub))
	}
	return reg, nil
}

// KeyPair reconstructs the key pair for id, which must be present.
func (f *File) KeyPair(id crypto.NodeID) (*crypto.KeyPair, error) {
	for _, e := range append(append([]Entry{}, f.Replicas...), f.DataCenters...) {
		if crypto.NodeID(e.ID) != id {
			continue
		}
		priv, err := base64.StdEncoding.DecodeString(e.Private)
		if err != nil || len(priv) != ed25519.PrivateKeySize {
			return nil, fmt.Errorf("keyring: bad private key for id %d", e.ID)
		}
		return crypto.KeyPairFromPrivate(id, ed25519.PrivateKey(priv)), nil
	}
	return nil, fmt.Errorf("keyring: id %v not found", id)
}

// ReplicaIDs lists the replica IDs in file order.
func (f *File) ReplicaIDs() []crypto.NodeID {
	ids := make([]crypto.NodeID, 0, len(f.Replicas))
	for _, e := range f.Replicas {
		ids = append(ids, crypto.NodeID(e.ID))
	}
	return ids
}

// DataCenterIDs lists the data center IDs in file order.
func (f *File) DataCenterIDs() []crypto.NodeID {
	ids := make([]crypto.NodeID, 0, len(f.DataCenters))
	for _, e := range f.DataCenters {
		ids = append(ids, crypto.NodeID(e.ID))
	}
	return ids
}
