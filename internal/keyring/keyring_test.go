package keyring

import (
	"path/filepath"
	"testing"

	"zugchain/internal/crypto"
)

func TestGenerateSaveLoadRoundTrip(t *testing.T) {
	f, err := Generate(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Replicas) != 4 || len(f.DataCenters) != 2 {
		t.Fatalf("generated %d/%d entries", len(f.Replicas), len(f.DataCenters))
	}

	path := filepath.Join(t.TempDir(), "keys.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	reg, err := loaded.Registry()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 6 {
		t.Errorf("registry has %d keys", reg.Len())
	}

	// A loaded key pair must produce signatures the registry accepts.
	kp, err := loaded.KeyPair(2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("signed after reload")
	if err := reg.Verify(2, msg, kp.Sign(msg)); err != nil {
		t.Errorf("Verify: %v", err)
	}

	dcID := crypto.DataCenterIDBase + 1
	dcKP, err := loaded.KeyPair(dcID)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Verify(dcID, msg, dcKP.Sign(msg)); err != nil {
		t.Errorf("DC Verify: %v", err)
	}
}

func TestIDs(t *testing.T) {
	f, err := Generate(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := f.ReplicaIDs()
	if len(ids) != 4 || ids[0] != 0 || ids[3] != 3 {
		t.Errorf("ReplicaIDs = %v", ids)
	}
	dcs := f.DataCenterIDs()
	if len(dcs) != 1 || dcs[0] != crypto.DataCenterIDBase {
		t.Errorf("DataCenterIDs = %v", dcs)
	}
}

func TestKeyPairUnknownID(t *testing.T) {
	f, err := Generate(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.KeyPair(99); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
}
