// Package core implements the ZugChain communication layer — the paper's
// primary contribution (§III-C, Algorithm 1). It adapts a primary-based BFT
// protocol to input arriving over an unauthenticated, unreliable bus read
// independently by every node:
//
//   - content-based duplicate filtering (payload digests against a sliding
//     window of decided requests plus the open-request queue), so identical
//     input read by all nodes is ordered only once;
//   - primary-aware proposing: only the node co-located with the current
//     primary proposes bus input directly;
//   - a soft timeout per request on backups: if the primary has not ordered
//     a request in time, the backup signs and broadcasts it;
//   - a hard timeout detecting censorship, escalating to SUSPECT and a view
//     change;
//   - duplicate-proposal detection at DECIDE time, suspecting a primary
//     that fails to filter;
//   - a per-origin open-request limit bounding the damage of a flooding
//     faulty node (§III-C fault (iii));
//   - support for multiple input sources (one logical queue per source).
package core

import (
	"sync"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// BFT is the Table I interface ① the layer requires from the ordering
// module (satisfied by *pbft.Runner). DECIDE and NEWPRIMARY arrive as
// OnDecide/OnNewPrimary calls from the node wiring.
type BFT interface {
	// Propose submits a request for total ordering.
	Propose(req pbft.Request)
	// Suspect accuses a node (effective for the current primary) of
	// misbehaving, initiating a view change.
	Suspect(id crypto.NodeID)
}

// Recorder is the Table I interface ② up-call: LOG appends a totally
// ordered, deduplicated request to the blockchain.
type Recorder interface {
	Log(seq uint64, origin crypto.NodeID, payload, sig []byte)
}

// Config parameterizes the communication layer.
type Config struct {
	// ID is the local node.
	ID crypto.NodeID
	// SoftTimeout is the backup's wait before broadcasting a request the
	// primary has not ordered (250 ms in the paper's evaluation).
	SoftTimeout time.Duration
	// HardTimeout is the additional wait after broadcasting before the
	// primary is suspected (250 ms in the paper).
	HardTimeout time.Duration
	// MaxOpenPerOrigin bounds concurrently open broadcast requests per
	// origin node; §III-C derives it from the bus frequency.
	MaxOpenPerOrigin int
	// WindowSeqs is the width, in sequence numbers, of the decided-request
	// sliding window used by inLog. The paper sizes it as a number of past
	// checkpoints; with a checkpoint interval of 10 the default of 100
	// covers the last 10 checkpoints. It must be identical on all nodes:
	// eviction is driven purely by decided sequence numbers, keeping the
	// dedup decision — and therefore the blockchain — deterministic.
	WindowSeqs uint64
	// VerifyPool, when non-nil, offloads peer-request signature checks
	// (Algorithm 1 line 25) onto the pool's workers instead of the
	// transport delivery goroutine. Admission into the request queue R —
	// and every decision under the layer mutex — happens strictly after
	// verification either way.
	VerifyPool *crypto.VerifyPool
}

func (c *Config) applyDefaults() {
	if c.SoftTimeout <= 0 {
		c.SoftTimeout = 250 * time.Millisecond
	}
	if c.HardTimeout <= 0 {
		c.HardTimeout = 250 * time.Millisecond
	}
	if c.MaxOpenPerOrigin <= 0 {
		c.MaxOpenPerOrigin = 64
	}
	if c.WindowSeqs == 0 {
		c.WindowSeqs = 100
	}
}

// timerPhase identifies which Algorithm 1 timer is armed for a request.
type timerPhase uint8

const (
	phaseNone timerPhase = iota
	phaseSoft
	phaseHard
)

// reqState tracks one open request in the queue R of Algorithm 1.
type reqState struct {
	req      pbft.Request // as received (bus) or as signed by a peer
	source   int          // input source index (multi-bus support)
	origin   crypto.NodeID
	proposed bool // submitted to BFT by this node as primary
	timer    *timerHandle
	phase    timerPhase
	viaPeer  bool // entered R via a peer broadcast (counts toward limits)
}

// Layer is the ZugChain communication layer for one node. Safe for
// concurrent use: bus readers, the PBFT runner, and timer goroutines all
// call in.
type Layer struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry
	bft BFT
	tr  transport.Transport
	clk clock.Clock
	rec Recorder

	mu      sync.Mutex
	primary crypto.NodeID
	open    map[crypto.Digest]*reqState // the request queue R
	decided *decidedWindow              // the inLog sliding window
	perNode map[crypto.NodeID]int       // open-via-broadcast counts per origin
	closed  bool

	counters *metrics.Counters
	latency  *metrics.Latency
	received map[crypto.Digest]time.Time // for latency measurement
}

// New creates the layer. tr must be the virtual channel carrying ZCRequest
// messages (wire tag range 0x30–0x3f); bft is the ordering runner; rec
// receives LOG up-calls.
func New(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry, bft BFT, tr transport.Transport, clk clock.Clock, rec Recorder) *Layer {
	cfg.applyDefaults()
	l := &Layer{
		cfg:      cfg,
		kp:       kp,
		reg:      reg,
		bft:      bft,
		tr:       tr,
		clk:      clk,
		rec:      rec,
		open:     make(map[crypto.Digest]*reqState),
		decided:  newDecidedWindow(cfg.WindowSeqs),
		perNode:  make(map[crypto.NodeID]int),
		counters: &metrics.Counters{},
		latency:  &metrics.Latency{},
		received: make(map[crypto.Digest]time.Time),
	}
	tr.SetHandler(l.onTransport)
	return l
}

// Counters exposes the layer's event counters (proposals, duplicates,
// broadcasts, suspects) for the evaluation harness.
func (l *Layer) Counters() *metrics.Counters { return l.counters }

// Latency exposes receive-to-decide latencies.
func (l *Layer) Latency() *metrics.Latency { return l.latency }

// OpenRequests reports the current size of the request queue R.
func (l *Layer) OpenRequests() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.open)
}

// Close stops all timers. The layer must not be used afterwards.
func (l *Layer) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for _, st := range l.open {
		if st.timer != nil {
			st.timer.stop()
		}
	}
	l.open = make(map[crypto.Digest]*reqState)
}

// OnBusRecord is RECEIVE of Table I ②: a parsed, filtered record read from
// input source (bus) src. Algorithm 1 lines 5–11.
func (l *Layer) OnBusRecord(src int, payload []byte) {
	digest := crypto.Hash(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.decided.contains(digest) {
		// Already logged: nothing to do (ln. 7 inLog check; for backups
		// an already-decided request needs no timer either).
		l.counters.AddDuplicate()
		return
	}
	if _, inR := l.open[digest]; inR {
		// Already pending (e.g. a peer broadcast arrived first); the
		// existing timers cover it.
		l.counters.AddDuplicate()
		return
	}

	st := &reqState{
		req:    pbft.Request{Payload: payload},
		source: src,
		origin: l.cfg.ID,
	}
	l.open[digest] = st
	l.received[digest] = l.clk.Now()

	if l.isPrimaryLocked() {
		l.proposeLocked(st, l.cfg.ID) // ln. 8–9
		return
	}
	l.armSoftTimeout(digest, st) // ln. 11
}

// OnDecide is the DECIDE up-call from the BFT module. Algorithm 1 lines
// 12–20. Must be invoked in sequence-number order (the PBFT runner
// guarantees this).
func (l *Layer) OnDecide(seq uint64, req pbft.Request) {
	digest := req.PayloadDigest()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}

	if st, ok := l.open[digest]; ok {
		if !st.proposed {
			// Our own copy of this payload never had to be ordered:
			// one duplicate avoided by the filtering.
			l.counters.AddDuplicate()
		}
		l.removeLocked(digest, st) // ln. 13–16: delete from R, cancel timers
	}
	if t0, ok := l.received[digest]; ok {
		l.latency.Record(l.clk.Now().Sub(t0))
		delete(l.received, digest)
	}

	if l.decided.contains(digest) {
		// ln. 17–18: the primary proposed a duplicate inside the sliding
		// window — it is not filtering correctly.
		l.counters.AddDuplicate()
		l.bft.Suspect(l.primary)
		return
	}

	// ln. 20: append to the log with the id of the origin node.
	l.decided.add(digest, seq)
	l.counters.AddRequest()
	l.rec.Log(seq, req.Origin, req.Payload, req.Sig)
}

// OnNewPrimary is the NEWPRIMARY up-call after a view change. Algorithm 1
// lines 36–43.
func (l *Layer) OnNewPrimary(view uint64, primary crypto.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.primary = primary
	for digest, st := range l.open {
		if st.timer != nil {
			st.timer.stop()
			st.timer = nil
		}
		st.phase = phaseNone
		st.proposed = false
		if l.isPrimaryLocked() {
			if !l.decided.contains(digest) {
				l.proposeLocked(st, st.origin) // ln. 39–41
			}
		} else {
			l.armSoftTimeout(digest, st) // ln. 43
		}
	}
}

// onTransport handles ZCRequest messages from peers: broadcasts after soft
// timeouts and forwards toward the primary. Algorithm 1 lines 25–32. The
// Ed25519 check runs on the verify pool when one is configured, so a flood
// of peer requests parallelizes across cores instead of serializing the
// transport delivery goroutine; the rest of the admission logic runs after
// verification in either case.
func (l *Layer) onTransport(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	zc, ok := msg.(*ZCRequest)
	if !ok {
		return
	}
	req := zc.Req
	verifyAndAdmit := func() {
		if err := pbft.VerifyRequest(&req, l.reg); err != nil {
			return // unauthenticated peer request
		}
		l.admitPeerRequest(req)
	}
	if l.cfg.VerifyPool != nil {
		l.cfg.VerifyPool.Submit(verifyAndAdmit)
		return
	}
	verifyAndAdmit()
}

// admitPeerRequest continues Algorithm 1 lines 25–32 for a peer request
// whose signature has been verified.
func (l *Layer) admitPeerRequest(req pbft.Request) {
	digest := req.PayloadDigest()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.decided.contains(digest) {
		l.counters.AddDuplicate()
		return // ln. 26–27: already in the log
	}

	if st, inR := l.open[digest]; inR {
		// Already pending. If we are the primary and have not proposed it
		// (it entered R before we became primary, and OnNewPrimary has
		// run — normally impossible — or it arrived from the bus while
		// not primary), the proposal path below covers it; otherwise the
		// existing timers cover it.
		if l.isPrimaryLocked() && !st.proposed {
			l.proposeLocked(st, st.origin)
		}
		return
	}

	// New to us: admitted subject to the per-origin limit (fault (iii)).
	if l.perNode[req.Origin] >= l.cfg.MaxOpenPerOrigin {
		l.counters.AddDuplicate() // accounted as filtered load
		return
	}

	st := &reqState{
		req:     req,
		origin:  req.Origin,
		viaPeer: true,
	}
	l.open[digest] = st
	l.perNode[req.Origin]++
	l.received[digest] = l.clk.Now()

	if l.isPrimaryLocked() {
		l.proposeLocked(st, req.Origin) // ln. 28–29: keep broadcaster's id
		return
	}
	// ln. 31–32: arm a hard timeout and forward toward the primary so a
	// faulty broadcaster that skipped the primary cannot cause a false
	// suspicion.
	l.armHardTimeout(digest, st)
	l.forwardLocked(req)
}

// --- internal helpers (callers hold l.mu) ---

func (l *Layer) isPrimaryLocked() bool { return l.primary == l.cfg.ID }

// proposeLocked signs (if the request is our own bus input) and submits to
// the BFT module.
func (l *Layer) proposeLocked(st *reqState, origin crypto.NodeID) {
	if st.proposed {
		return
	}
	st.proposed = true
	if st.req.Sig == nil {
		// Our own bus input: authenticate and include our node id (ln. 8).
		pbft.SignRequest(&st.req, l.kp)
		st.origin = l.cfg.ID
		l.counters.AddSignature()
	}
	_ = origin // the id travels inside the signed request
	l.bft.Propose(st.req)
}

// armSoftTimeout starts the backup's wait for the primary (ln. 11).
func (l *Layer) armSoftTimeout(digest crypto.Digest, st *reqState) {
	st.phase = phaseSoft
	st.timer = l.armTimer(l.cfg.SoftTimeout, func() { l.onSoftTimeout(digest) })
}

// armHardTimeout starts the censorship-detection wait (ln. 23, 31).
func (l *Layer) armHardTimeout(digest crypto.Digest, st *reqState) {
	st.phase = phaseHard
	st.timer = l.armTimer(l.cfg.HardTimeout, func() { l.onHardTimeout(digest) })
}

// OnPrePrepared implements the §III-C optimization: the primary's accepted
// preprepare indicates the request will be ordered, so the soft timeout can
// be cancelled early — saving the needless broadcast. The hard timeout
// replaces it, keeping censorship detection intact in case the preprepare
// never commits.
func (l *Layer) OnPrePrepared(payloadDigest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[payloadDigest]
	if !ok || l.closed || st.phase != phaseSoft {
		return
	}
	if st.timer != nil {
		st.timer.stop()
	}
	l.armHardTimeout(payloadDigest, st)
}

// onSoftTimeout implements lines 21–24: sign, broadcast, escalate to the
// hard timeout.
func (l *Layer) onSoftTimeout(digest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[digest]
	if !ok || l.closed {
		return // decided in the meantime
	}
	if st.req.Sig == nil {
		pbft.SignRequest(&st.req, l.kp)
		st.origin = l.cfg.ID
		l.counters.AddSignature()
	}
	l.armHardTimeout(digest, st)
	data := wire.Marshal(&ZCRequest{Req: st.req})
	l.counters.AddSent(len(data))
	_ = l.tr.Broadcast(data)
}

// onHardTimeout implements lines 33–35: the request is still not in the
// log; suspect the primary.
func (l *Layer) onHardTimeout(digest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[digest]
	if !ok || l.closed {
		return
	}
	st.timer = nil
	st.phase = phaseNone
	l.bft.Suspect(l.primary)
}

// forwardLocked sends the request directly to the primary (ln. 32).
func (l *Layer) forwardLocked(req pbft.Request) {
	if l.primary == l.cfg.ID {
		return
	}
	data := wire.Marshal(&ZCRequest{Req: req})
	l.counters.AddSent(len(data))
	_ = l.tr.Send(l.primary, data)
}

// removeLocked deletes a request from R and cancels its timer.
func (l *Layer) removeLocked(digest crypto.Digest, st *reqState) {
	if st.timer != nil {
		st.timer.stop()
		st.timer = nil
	}
	st.phase = phaseNone
	if st.viaPeer {
		if l.perNode[st.origin] > 0 {
			l.perNode[st.origin]--
		}
	}
	delete(l.open, digest)
}

// timerHandle wraps a clock timer with cancellation of its waiter goroutine.
type timerHandle struct {
	timer  clock.Timer
	cancel chan struct{}
	once   sync.Once
}

func (l *Layer) armTimer(d time.Duration, fn func()) *timerHandle {
	h := &timerHandle{
		timer:  l.clk.NewTimer(d),
		cancel: make(chan struct{}),
	}
	go func() {
		select {
		case <-h.timer.C():
			// The select picks randomly when both channels are ready:
			// a timer that fired concurrently with its cancellation
			// must not run the callback.
			select {
			case <-h.cancel:
				return
			default:
			}
			fn()
		case <-h.cancel:
			h.timer.Stop()
		}
	}()
	return h
}

func (h *timerHandle) stop() {
	h.once.Do(func() { close(h.cancel) })
}
