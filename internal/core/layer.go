// Package core implements the ZugChain communication layer — the paper's
// primary contribution (§III-C, Algorithm 1). It adapts a primary-based BFT
// protocol to input arriving over an unauthenticated, unreliable bus read
// independently by every node:
//
//   - content-based duplicate filtering (payload digests against a sliding
//     window of decided requests plus the open-request queue), so identical
//     input read by all nodes is ordered only once;
//   - primary-aware proposing: only the node co-located with the current
//     primary proposes bus input directly;
//   - a soft timeout per request on backups: if the primary has not ordered
//     a request in time, the backup signs and broadcasts it;
//   - a hard timeout detecting censorship, escalating to SUSPECT and a view
//     change;
//   - duplicate-proposal detection at DECIDE time, suspecting a primary
//     that fails to filter;
//   - a per-origin open-request limit bounding the damage of a flooding
//     faulty node (§III-C fault (iii));
//   - support for multiple input sources (one logical queue per source).
package core

import (
	"sync"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
	"zugchain/internal/obsv"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// BFT is the Table I interface ① the layer requires from the ordering
// module (satisfied by *pbft.Runner). DECIDE and NEWPRIMARY arrive as
// OnDecide/OnNewPrimary calls from the node wiring.
type BFT interface {
	// Propose submits a request for total ordering.
	Propose(req pbft.Request)
	// Suspect accuses a node (effective for the current primary) of
	// misbehaving, initiating a view change.
	Suspect(id crypto.NodeID)
}

// Recorder is the Table I interface ② up-call: LOG appends a totally
// ordered, deduplicated request to the blockchain.
type Recorder interface {
	Log(seq uint64, origin crypto.NodeID, payload, sig []byte)
}

// Config parameterizes the communication layer.
type Config struct {
	// ID is the local node.
	ID crypto.NodeID
	// SoftTimeout is the backup's wait before broadcasting a request the
	// primary has not ordered (250 ms in the paper's evaluation).
	SoftTimeout time.Duration
	// HardTimeout is the additional wait after broadcasting before the
	// primary is suspected (250 ms in the paper).
	HardTimeout time.Duration
	// MaxOpenPerOrigin bounds concurrently open broadcast requests per
	// origin node; §III-C derives it from the bus frequency.
	MaxOpenPerOrigin int
	// WindowSeqs is the width, in sequence numbers, of the decided-request
	// sliding window used by inLog. The paper sizes it as a number of past
	// checkpoints; with a checkpoint interval of 10 the default of 100
	// covers the last 10 checkpoints. It must be identical on all nodes:
	// eviction is driven purely by decided sequence numbers, keeping the
	// dedup decision — and therefore the blockchain — deterministic.
	WindowSeqs uint64
	// VerifyPool, when non-nil, offloads peer-request signature checks
	// (Algorithm 1 line 25) onto the pool's workers instead of the
	// transport delivery goroutine. Admission into the request queue R —
	// and every decision under the layer mutex — happens strictly after
	// verification either way.
	VerifyPool *crypto.VerifyPool
	// MaxBatch is the maximum number of records the primary coalesces
	// into one batched proposal before forcing a flush. 1 (the default)
	// disables batching: every record is proposed individually, which is
	// byte-identical to the pre-batching behavior. Each record inside a
	// batch keeps its own origin and signature, and the duplicate filter,
	// soft/hard timeouts and duplicate-decide suspicion all still operate
	// per record.
	MaxBatch int
	// MaxBatchDelay bounds how long a record may sit in the primary's
	// open batch waiting for companions before a flush is forced. Only
	// meaningful with MaxBatch > 1. Defaults to 2ms.
	MaxBatchDelay time.Duration
	// Tracer, when non-nil, stamps per-record lifecycle phases (ingest,
	// batch, decide) for the observability layer. All stamps are O(1)
	// ring/atomic operations; nil disables tracing with zero overhead.
	Tracer *obsv.Tracer
}

func (c *Config) applyDefaults() {
	if c.SoftTimeout <= 0 {
		c.SoftTimeout = 250 * time.Millisecond
	}
	if c.HardTimeout <= 0 {
		c.HardTimeout = 250 * time.Millisecond
	}
	if c.MaxOpenPerOrigin <= 0 {
		c.MaxOpenPerOrigin = 64
	}
	if c.WindowSeqs == 0 {
		c.WindowSeqs = DefaultWindowSeqs
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.MaxBatch > pbft.MaxBatchRecords {
		c.MaxBatch = pbft.MaxBatchRecords
	}
	if c.MaxBatchDelay <= 0 {
		c.MaxBatchDelay = 2 * time.Millisecond
	}
}

// DefaultWindowSeqs is the default dedup-window width in sequence numbers.
// Exported so the node's crash-recovery path can reconstruct the effective
// width when rebuilding the window from chain blocks.
const DefaultWindowSeqs = 100

// timerPhase identifies which Algorithm 1 timer is armed for a request.
type timerPhase uint8

const (
	phaseNone timerPhase = iota
	phaseSoft
	phaseHard
)

// reqState tracks one open request in the queue R of Algorithm 1.
type reqState struct {
	req      pbft.Request // as received (bus) or as signed by a peer
	source   int          // input source index (multi-bus support)
	origin   crypto.NodeID
	proposed bool // submitted to BFT by this node as primary
	timer    *timerHandle
	phase    timerPhase
	viaPeer  bool // entered R via a peer broadcast (counts toward limits)
}

// Layer is the ZugChain communication layer for one node. Safe for
// concurrent use: bus readers, the PBFT runner, and timer goroutines all
// call in.
type Layer struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry
	bft BFT
	tr  transport.Transport
	clk clock.Clock
	rec Recorder

	mu      sync.Mutex
	primary crypto.NodeID
	view    uint64
	open    map[crypto.Digest]*reqState // the request queue R
	decided *decidedWindow              // the inLog sliding window
	perNode map[crypto.NodeID]int       // open-via-broadcast counts per origin
	closed  bool

	// Primary-side request coalescing (MaxBatch > 1): records admitted
	// while primary accumulate here instead of being proposed one at a
	// time, and flush as a single batched proposal when the batch fills
	// or MaxBatchDelay expires. batchGen invalidates stale delay-timer
	// callbacks after a flush or view change.
	batch      []pbft.Request
	batchTimer *timerHandle
	batchT0    time.Time // when the oldest record entered the batch
	batchGen   uint64

	counters *metrics.Counters
	latency  *metrics.Latency
	batches  *metrics.BatchCounters
	tracer   *obsv.Tracer                // nil = lifecycle tracing off
	received map[crypto.Digest]time.Time // for latency measurement
}

// New creates the layer. tr must be the virtual channel carrying ZCRequest
// messages (wire tag range 0x30–0x3f); bft is the ordering runner; rec
// receives LOG up-calls.
func New(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry, bft BFT, tr transport.Transport, clk clock.Clock, rec Recorder) *Layer {
	cfg.applyDefaults()
	l := &Layer{
		cfg:      cfg,
		kp:       kp,
		reg:      reg,
		bft:      bft,
		tr:       tr,
		clk:      clk,
		rec:      rec,
		open:     make(map[crypto.Digest]*reqState),
		decided:  newDecidedWindow(cfg.WindowSeqs),
		perNode:  make(map[crypto.NodeID]int),
		counters: &metrics.Counters{},
		latency:  &metrics.Latency{},
		batches:  &metrics.BatchCounters{},
		tracer:   cfg.Tracer,
		received: make(map[crypto.Digest]time.Time),
	}
	tr.SetHandler(l.onTransport)
	return l
}

// Counters exposes the layer's event counters (proposals, duplicates,
// broadcasts, suspects) for the evaluation harness.
func (l *Layer) Counters() *metrics.Counters { return l.counters }

// Latency exposes receive-to-decide latencies.
func (l *Layer) Latency() *metrics.Latency { return l.latency }

// Batches exposes the primary-side batching counters (flush sizes, flush
// triggers, batching wait times).
func (l *Layer) Batches() *metrics.BatchCounters { return l.batches }

// OpenRequests reports the current size of the request queue R.
func (l *Layer) OpenRequests() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.open)
}

// WindowEntry is one dedup-window entry: payload digest Digest was decided
// at sequence Seq. Used by the node's crash-recovery path to checkpoint and
// restore the window.
type WindowEntry struct {
	Digest crypto.Digest
	Seq    uint64
}

// WindowSnapshot returns the dedup-window entries with Seq <= maxSeq (all
// entries when maxSeq is 0), in decide order. The node persists this
// alongside a stable checkpoint: entries at or below the checkpoint cannot
// be re-derived by PBFT re-execution after a restart, so without them a
// restarted replica would re-LOG payloads it already logged.
func (l *Layer) WindowSnapshot(maxSeq uint64) []WindowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WindowEntry, 0, len(l.decided.order))
	for _, e := range l.decided.order {
		if maxSeq != 0 && e.seq > maxSeq {
			continue
		}
		if cur, ok := l.decided.entries[e.digest]; !ok || cur != e.seq {
			continue // superseded by a later re-log of the same payload
		}
		out = append(out, WindowEntry{Digest: e.digest, Seq: e.seq})
	}
	return out
}

// RestoreWindow seeds the dedup window from entries whose payloads are
// already durably logged: WAL/chain recovery at startup, and installed
// state-transfer blocks mid-run. Entries should be sorted by Seq.
func (l *Layer) RestoreWindow(entries []WindowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		l.decided.add(e.Digest, e.Seq)
	}
}

// WindowLen reports the number of digests currently in the dedup window.
func (l *Layer) WindowLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.decided.len()
}

// Close stops all timers. The layer must not be used afterwards.
func (l *Layer) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	for _, st := range l.open {
		if st.timer != nil {
			st.timer.stop()
		}
	}
	l.open = make(map[crypto.Digest]*reqState)
	if l.batchTimer != nil {
		l.batchTimer.stop()
		l.batchTimer = nil
	}
	l.batch = nil
}

// OnBusRecord is RECEIVE of Table I ②: a parsed, filtered record read from
// input source (bus) src. Algorithm 1 lines 5–11.
func (l *Layer) OnBusRecord(src int, payload []byte) {
	digest := crypto.Hash(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.decided.contains(digest) {
		// Already logged: nothing to do (ln. 7 inLog check; for backups
		// an already-decided request needs no timer either).
		l.counters.AddDuplicate()
		return
	}
	if _, inR := l.open[digest]; inR {
		// Already pending (e.g. a peer broadcast arrived first); the
		// existing timers cover it.
		l.counters.AddDuplicate()
		return
	}

	st := &reqState{
		req:    pbft.Request{Payload: payload},
		source: src,
		origin: l.cfg.ID,
	}
	l.open[digest] = st
	l.received[digest] = l.clk.Now()
	l.tracer.BeginRecord(digest)

	if l.isPrimaryLocked() {
		l.proposeLocked(st, l.cfg.ID) // ln. 8–9
		return
	}
	l.armSoftTimeout(digest, st) // ln. 11
}

// OnDecide is the DECIDE up-call from the BFT module. Algorithm 1 lines
// 12–20. Must be invoked in sequence-number order (the PBFT runner
// guarantees this). A batched request is unpacked and each inner record
// runs through the full per-record decide logic — every record keeps its
// own origin, signature, duplicate check and LOG up-call, so Algorithm 1's
// semantics are unchanged by batching; the records merely share one
// agreement slot.
func (l *Layer) OnDecide(seq uint64, req pbft.Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if req.Batch {
		items, err := pbft.DecodeBatch(req.Payload)
		if err != nil {
			// The inner records were signature-checked before agreement,
			// but a faulty primary could still propose a structurally
			// invalid batch; deciding it proves the primary built it.
			l.bft.Suspect(l.primary)
			return
		}
		// A duplicate inside the batch makes decideOneLocked suspect the
		// primary (the window already holds the digest at this seq), but
		// the remaining honest records are still logged.
		for i := range items {
			l.decideOneLocked(seq, items[i])
		}
		return
	}
	l.decideOneLocked(seq, req)
}

// decideOneLocked applies Algorithm 1 lines 12–20 to a single decided
// record (a plain request, or one record of a batch).
func (l *Layer) decideOneLocked(seq uint64, req pbft.Request) {
	digest := req.PayloadDigest()

	if st, ok := l.open[digest]; ok {
		if !st.proposed {
			// Our own copy of this payload never had to be ordered:
			// one duplicate avoided by the filtering.
			l.counters.AddDuplicate()
		}
		l.removeLocked(digest, st) // ln. 13–16: delete from R, cancel timers
	}
	if t0, ok := l.received[digest]; ok {
		l.latency.Record(l.clk.Now().Sub(t0))
		delete(l.received, digest)
	}

	if l.decided.contains(digest) {
		// ln. 17–18: the primary proposed a duplicate inside the sliding
		// window — it is not filtering correctly.
		l.counters.AddDuplicate()
		l.bft.Suspect(l.primary)
		return
	}

	// ln. 20: append to the log with the id of the origin node.
	l.decided.add(digest, seq)
	l.counters.AddRequest()
	l.rec.Log(seq, req.Origin, req.Payload, req.Sig)
	l.tracer.FinishRecord(digest, seq)
}

// OnNewPrimary is the NEWPRIMARY up-call after a view change. Algorithm 1
// lines 36–43.
func (l *Layer) OnNewPrimary(view uint64, primary crypto.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if view == l.view && primary == l.primary {
		// Re-announcement of the view we already operate in — the BFT
		// module's startup announcement. No earlier primary exists whose
		// failure could have swallowed a proposal, and resetting the
		// proposed flags here would re-submit records that are already
		// queued inside this same engine: each would be ordered twice,
		// tripping the duplicate filter and making every replica suspect
		// an honest primary.
		return
	}
	l.view = view
	l.primary = primary
	// Drop any half-assembled batch: its records are still in R with
	// proposed reset below, so the loop re-proposes (or re-arms timers
	// for) every one of them under the new primary.
	l.resetBatchLocked()
	for digest, st := range l.open {
		if st.timer != nil {
			st.timer.stop()
			st.timer = nil
		}
		st.phase = phaseNone
		st.proposed = false
		if l.isPrimaryLocked() {
			if !l.decided.contains(digest) {
				l.proposeLocked(st, st.origin) // ln. 39–41
			}
		} else {
			l.armSoftTimeout(digest, st) // ln. 43
		}
	}
	// Re-proposed records already waited through a view change; flush
	// them immediately rather than letting the delay timer add latency.
	l.flushBatchLocked(false)
}

// onTransport handles ZCRequest messages from peers: broadcasts after soft
// timeouts and forwards toward the primary. Algorithm 1 lines 25–32. The
// Ed25519 check runs on the verify pool when one is configured, so a flood
// of peer requests parallelizes across cores instead of serializing the
// transport delivery goroutine; the rest of the admission logic runs after
// verification in either case.
func (l *Layer) onTransport(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	zc, ok := msg.(*ZCRequest)
	if !ok {
		return
	}
	req := zc.Req
	if req.Batch {
		// Peers broadcast and forward individual records only; batches
		// exist solely as primary proposals inside PBFT. A batch-flagged
		// peer request is faulty input.
		return
	}
	verifyAndAdmit := func() {
		if err := pbft.VerifyRequest(&req, l.reg); err != nil {
			return // unauthenticated peer request
		}
		l.admitPeerRequest(req)
	}
	if l.cfg.VerifyPool != nil {
		l.cfg.VerifyPool.Submit(verifyAndAdmit)
		return
	}
	verifyAndAdmit()
}

// admitPeerRequest continues Algorithm 1 lines 25–32 for a peer request
// whose signature has been verified.
func (l *Layer) admitPeerRequest(req pbft.Request) {
	digest := req.PayloadDigest()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.decided.contains(digest) {
		l.counters.AddDuplicate()
		return // ln. 26–27: already in the log
	}

	if st, inR := l.open[digest]; inR {
		// Already pending. If we are the primary and have not proposed it
		// (it entered R before we became primary, and OnNewPrimary has
		// run — normally impossible — or it arrived from the bus while
		// not primary), the proposal path below covers it; otherwise the
		// existing timers cover it.
		if l.isPrimaryLocked() && !st.proposed {
			l.proposeLocked(st, st.origin)
		}
		return
	}

	// New to us: admitted subject to the per-origin limit (fault (iii)).
	if l.perNode[req.Origin] >= l.cfg.MaxOpenPerOrigin {
		l.counters.AddDuplicate() // accounted as filtered load
		return
	}

	st := &reqState{
		req:     req,
		origin:  req.Origin,
		viaPeer: true,
	}
	l.open[digest] = st
	l.perNode[req.Origin]++
	l.received[digest] = l.clk.Now()
	l.tracer.BeginRecord(digest)

	if l.isPrimaryLocked() {
		l.proposeLocked(st, req.Origin) // ln. 28–29: keep broadcaster's id
		return
	}
	// ln. 31–32: arm a hard timeout and forward toward the primary so a
	// faulty broadcaster that skipped the primary cannot cause a false
	// suspicion.
	l.armHardTimeout(digest, st)
	l.forwardLocked(req)
}

// --- internal helpers (callers hold l.mu) ---

func (l *Layer) isPrimaryLocked() bool { return l.primary == l.cfg.ID }

// proposeLocked signs (if the request is our own bus input) and submits to
// the BFT module — directly, or via the coalescing batch when batching is
// enabled.
func (l *Layer) proposeLocked(st *reqState, origin crypto.NodeID) {
	if st.proposed {
		return
	}
	st.proposed = true
	if st.req.Sig == nil {
		// Our own bus input: authenticate and include our node id (ln. 8).
		pbft.SignRequest(&st.req, l.kp)
		st.origin = l.cfg.ID
		l.counters.AddSignature()
	}
	if l.tracer != nil { // guard: PayloadDigest hashes when not cached
		l.tracer.StampRecord(st.req.PayloadDigest(), obsv.PhaseBatch)
	}
	_ = origin // the id travels inside the signed request
	if l.cfg.MaxBatch > 1 {
		l.enqueueBatchLocked(st.req)
		return
	}
	l.bft.Propose(st.req)
}

// enqueueBatchLocked adds a signed record to the open batch, flushing when
// it fills and arming the delay timer when it opens.
func (l *Layer) enqueueBatchLocked(req pbft.Request) {
	l.batch = append(l.batch, req)
	if len(l.batch) >= l.cfg.MaxBatch {
		l.flushBatchLocked(false)
		return
	}
	if len(l.batch) == 1 {
		l.batchT0 = l.clk.Now()
		gen := l.batchGen
		l.batchTimer = l.armTimer(l.cfg.MaxBatchDelay, func() { l.onBatchDelay(gen) })
	}
}

// onBatchDelay is the MaxBatchDelay timer callback: flush whatever has
// accumulated. gen guards against a stale timer (the batch it was armed
// for already flushed, or a view change reset it) flushing a newer batch
// early.
func (l *Layer) onBatchDelay(gen uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || gen != l.batchGen {
		return
	}
	l.flushBatchLocked(true)
}

// flushBatchLocked proposes the open batch as one request. A single-record
// batch degrades to a plain proposal — byte-identical to unbatched
// operation. byDelay records which trigger fired, for the metrics.
func (l *Layer) flushBatchLocked(byDelay bool) {
	items := l.resetBatchLocked()
	if len(items) == 0 {
		return
	}
	l.batches.RecordFlush(len(items), l.clk.Now().Sub(l.batchT0), byDelay)
	if len(items) == 1 {
		l.bft.Propose(items[0])
		return
	}
	req := pbft.Request{Payload: pbft.EncodeBatch(items), Batch: true}
	// The batch envelope is our proposal: sign it as ourselves. The inner
	// records keep their own origins and signatures.
	pbft.SignRequest(&req, l.kp)
	l.counters.AddSignature()
	l.bft.Propose(req)
}

// resetBatchLocked detaches and returns the open batch, stopping its delay
// timer and invalidating pending timer callbacks.
func (l *Layer) resetBatchLocked() []pbft.Request {
	if l.batchTimer != nil {
		l.batchTimer.stop()
		l.batchTimer = nil
	}
	l.batchGen++
	items := l.batch
	l.batch = nil
	return items
}

// armSoftTimeout starts the backup's wait for the primary (ln. 11).
func (l *Layer) armSoftTimeout(digest crypto.Digest, st *reqState) {
	st.phase = phaseSoft
	st.timer = l.armTimer(l.cfg.SoftTimeout, func() { l.onSoftTimeout(digest) })
}

// armHardTimeout starts the censorship-detection wait (ln. 23, 31).
func (l *Layer) armHardTimeout(digest crypto.Digest, st *reqState) {
	st.phase = phaseHard
	st.timer = l.armTimer(l.cfg.HardTimeout, func() { l.onHardTimeout(digest) })
}

// OnPrePrepared implements the §III-C optimization: the primary's accepted
// preprepare indicates the request will be ordered, so the soft timeout can
// be cancelled early — saving the needless broadcast. The hard timeout
// replaces it, keeping censorship detection intact in case the preprepare
// never commits.
func (l *Layer) OnPrePrepared(payloadDigest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[payloadDigest]
	if !ok || l.closed || st.phase != phaseSoft {
		return
	}
	if st.timer != nil {
		st.timer.stop()
	}
	l.armHardTimeout(payloadDigest, st)
}

// onSoftTimeout implements lines 21–24: sign, broadcast, escalate to the
// hard timeout.
func (l *Layer) onSoftTimeout(digest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[digest]
	if !ok || l.closed {
		return // decided in the meantime
	}
	if st.req.Sig == nil {
		pbft.SignRequest(&st.req, l.kp)
		st.origin = l.cfg.ID
		l.counters.AddSignature()
	}
	l.armHardTimeout(digest, st)
	data := wire.Marshal(&ZCRequest{Req: st.req})
	l.counters.AddSent(len(data))
	_ = l.tr.Broadcast(data)
}

// onHardTimeout implements lines 33–35: the request is still not in the
// log; suspect the primary.
func (l *Layer) onHardTimeout(digest crypto.Digest) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.open[digest]
	if !ok || l.closed {
		return
	}
	st.timer = nil
	st.phase = phaseNone
	l.bft.Suspect(l.primary)
}

// forwardLocked sends the request directly to the primary (ln. 32).
func (l *Layer) forwardLocked(req pbft.Request) {
	if l.primary == l.cfg.ID {
		return
	}
	data := wire.Marshal(&ZCRequest{Req: req})
	l.counters.AddSent(len(data))
	_ = l.tr.Send(l.primary, data)
}

// removeLocked deletes a request from R and cancels its timer.
func (l *Layer) removeLocked(digest crypto.Digest, st *reqState) {
	if st.timer != nil {
		st.timer.stop()
		st.timer = nil
	}
	st.phase = phaseNone
	if st.viaPeer {
		if l.perNode[st.origin] > 0 {
			l.perNode[st.origin]--
		}
	}
	delete(l.open, digest)
}

// timerHandle wraps a clock timer with cancellation of its waiter goroutine.
type timerHandle struct {
	timer  clock.Timer
	cancel chan struct{}
	once   sync.Once
}

func (l *Layer) armTimer(d time.Duration, fn func()) *timerHandle {
	h := &timerHandle{
		timer:  l.clk.NewTimer(d),
		cancel: make(chan struct{}),
	}
	go func() {
		select {
		case <-h.timer.C():
			// The select picks randomly when both channels are ready:
			// a timer that fired concurrently with its cancellation
			// must not run the callback.
			select {
			case <-h.cancel:
				return
			default:
			}
			fn()
		case <-h.cancel:
			h.timer.Stop()
		}
	}()
	return h
}

func (h *timerHandle) stop() {
	h.once.Do(func() { close(h.cancel) })
}
