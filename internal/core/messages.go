package core

import (
	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/wire"
)

// Wire type tags for communication-layer messages (range 0x30–0x3f).
const typeZCRequest wire.Type = 0x30

func init() {
	wire.Register(typeZCRequest, func() wire.Message { return new(ZCRequest) })
}

// ZCRequest carries a signed request between ZugChain nodes: the BROADCAST
// of Algorithm 1 line 24 and the forward-to-primary of line 32. The request
// signature identifies and authenticates the origin; the message itself
// needs no further signature.
type ZCRequest struct {
	Req pbft.Request
}

// WireType implements wire.Message.
func (m *ZCRequest) WireType() wire.Type { return typeZCRequest }

// EncodeWire implements wire.Message.
func (m *ZCRequest) EncodeWire(e *wire.Encoder) {
	e.Bytes(m.Req.Payload)
	e.Uint32(uint32(m.Req.Origin))
	e.Bool(m.Req.Batch)
	e.Bytes(m.Req.Sig)
}

// DecodeWire implements wire.Message.
func (m *ZCRequest) DecodeWire(d *wire.Decoder) {
	m.Req.Payload = d.BytesCopy()
	m.Req.Origin = crypto.NodeID(d.Uint32())
	m.Req.Batch = d.Bool()
	m.Req.Sig = d.BytesCopy()
}
