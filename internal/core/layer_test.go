package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// fakeBFT records Propose and Suspect calls.
type fakeBFT struct {
	mu       sync.Mutex
	proposed []pbft.Request
	suspects []crypto.NodeID
}

func (f *fakeBFT) Propose(req pbft.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.proposed = append(f.proposed, req)
}

func (f *fakeBFT) Suspect(id crypto.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspects = append(f.suspects, id)
}

func (f *fakeBFT) proposals() []pbft.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]pbft.Request, len(f.proposed))
	copy(out, f.proposed)
	return out
}

func (f *fakeBFT) suspicions() []crypto.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]crypto.NodeID, len(f.suspects))
	copy(out, f.suspects)
	return out
}

// fakeTransport records sends and broadcasts.
type fakeTransport struct {
	mu         sync.Mutex
	id         crypto.NodeID
	handler    transport.Handler
	sent       []sentMsg
	broadcasts [][]byte
}

type sentMsg struct {
	to   crypto.NodeID
	data []byte
}

func (f *fakeTransport) LocalID() crypto.NodeID { return f.id }

func (f *fakeTransport) Send(to crypto.NodeID, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, sentMsg{to: to, data: data})
	return nil
}

func (f *fakeTransport) Broadcast(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.broadcasts = append(f.broadcasts, data)
	return nil
}

func (f *fakeTransport) SetHandler(h transport.Handler) { f.handler = h }
func (f *fakeTransport) Close() error                   { return nil }

func (f *fakeTransport) numBroadcasts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.broadcasts)
}

func (f *fakeTransport) sends() []sentMsg {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]sentMsg, len(f.sent))
	copy(out, f.sent)
	return out
}

// fakeRecorder records Log up-calls.
type fakeRecorder struct {
	mu     sync.Mutex
	logged []logEntry
}

type logEntry struct {
	seq     uint64
	origin  crypto.NodeID
	payload string
}

func (f *fakeRecorder) Log(seq uint64, origin crypto.NodeID, payload, sig []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logged = append(f.logged, logEntry{seq: seq, origin: origin, payload: string(payload)})
}

func (f *fakeRecorder) entries() []logEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]logEntry, len(f.logged))
	copy(out, f.logged)
	return out
}

type layerFixture struct {
	layer *Layer
	bft   *fakeBFT
	tr    *fakeTransport
	rec   *fakeRecorder
	clk   *clock.Fake
	kps   map[crypto.NodeID]*crypto.KeyPair
	reg   *crypto.Registry
}

// newFixture creates a layer for node id in a 4-node registry. The initial
// primary is r0.
func newFixture(t *testing.T, id crypto.NodeID, tweak func(*Config)) *layerFixture {
	t.Helper()
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for i := 0; i < 4; i++ {
		kp := crypto.MustGenerateKeyPair(crypto.NodeID(i))
		kps[kp.ID] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)
	cfg := Config{
		ID:          id,
		SoftTimeout: 250 * time.Millisecond,
		HardTimeout: 250 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	fx := &layerFixture{
		bft: &fakeBFT{},
		tr:  &fakeTransport{id: id},
		rec: &fakeRecorder{},
		clk: clock.NewFake(),
		kps: kps,
		reg: reg,
	}
	fx.layer = New(cfg, kps[id], reg, fx.bft, fx.tr, fx.clk, fx.rec)
	fx.layer.OnNewPrimary(0, 0)
	t.Cleanup(fx.layer.Close)
	return fx
}

// waitFor polls until cond is true; timers fire on goroutines, so effects
// are asynchronous even with a fake clock.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// peerRequest builds a signed ZCRequest from the given origin.
func (fx *layerFixture) peerRequest(origin crypto.NodeID, payload string) []byte {
	req := pbft.Request{Payload: []byte(payload)}
	pbft.SignRequest(&req, fx.kps[origin])
	return wire.Marshal(&ZCRequest{Req: req})
}

func TestPrimaryProposesBusInputImmediately(t *testing.T) {
	fx := newFixture(t, 0, nil) // r0 is primary
	fx.layer.OnBusRecord(0, []byte("cycle-1"))

	props := fx.bft.proposals()
	if len(props) != 1 {
		t.Fatalf("proposals = %d, want 1", len(props))
	}
	if string(props[0].Payload) != "cycle-1" || props[0].Origin != 0 {
		t.Errorf("proposal = %+v", props[0])
	}
	if err := pbft.VerifyRequest(&props[0], fx.reg); err != nil {
		t.Errorf("proposal not signed: %v", err)
	}
	if fx.tr.numBroadcasts() != 0 {
		t.Error("primary broadcast its own input")
	}
}

func TestBackupWaitsThenBroadcasts(t *testing.T) {
	fx := newFixture(t, 1, nil) // backup; primary is r0
	fx.layer.OnBusRecord(0, []byte("cycle-1"))

	if len(fx.bft.proposals()) != 0 {
		t.Fatal("backup proposed directly")
	}
	if fx.tr.numBroadcasts() != 0 {
		t.Fatal("backup broadcast before soft timeout")
	}

	fx.clk.Advance(250 * time.Millisecond) // soft timeout
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 1 })

	msg, err := wire.Unmarshal(fx.tr.broadcasts[0])
	if err != nil {
		t.Fatal(err)
	}
	zc := msg.(*ZCRequest)
	if string(zc.Req.Payload) != "cycle-1" || zc.Req.Origin != 1 {
		t.Errorf("broadcast request = %+v", zc.Req)
	}
	if err := pbft.VerifyRequest(&zc.Req, fx.reg); err != nil {
		t.Errorf("broadcast not signed: %v", err)
	}
}

func TestDecideCancelsSoftTimeout(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("cycle-1"))

	req := pbft.Request{Payload: []byte("cycle-1")}
	pbft.SignRequest(&req, fx.kps[0])
	fx.layer.OnDecide(1, req)

	fx.clk.Advance(time.Second)
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 {
		t.Error("broadcast despite decide before soft timeout")
	}
	entries := fx.rec.entries()
	if len(entries) != 1 || entries[0].payload != "cycle-1" || entries[0].origin != 0 {
		t.Errorf("log = %+v", entries)
	}
}

func TestHardTimeoutSuspectsPrimary(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("cycle-1"))

	fx.clk.Advance(250 * time.Millisecond) // soft fires, hard armed
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 1 })
	fx.clk.Advance(250 * time.Millisecond) // hard fires
	waitFor(t, func() bool { return len(fx.bft.suspicions()) == 1 })

	if got := fx.bft.suspicions()[0]; got != 0 {
		t.Errorf("suspected %v, want the primary r0", got)
	}
}

func TestDecideAfterBroadcastCancelsHardTimeout(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("cycle-1"))
	fx.clk.Advance(250 * time.Millisecond)
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 1 })

	req := pbft.Request{Payload: []byte("cycle-1")}
	pbft.SignRequest(&req, fx.kps[1])
	fx.layer.OnDecide(1, req)

	fx.clk.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if len(fx.bft.suspicions()) != 0 {
		t.Error("suspected primary despite decide")
	}
}

func TestDuplicateDecideSuspectsPrimary(t *testing.T) {
	fx := newFixture(t, 1, nil)
	req := pbft.Request{Payload: []byte("dup")}
	pbft.SignRequest(&req, fx.kps[0])

	fx.layer.OnDecide(1, req)
	fx.layer.OnDecide(2, req) // primary failed to filter

	if got := len(fx.rec.entries()); got != 1 {
		t.Errorf("logged %d times, want 1", got)
	}
	if len(fx.bft.suspicions()) != 1 || fx.bft.suspicions()[0] != 0 {
		t.Errorf("suspicions = %v", fx.bft.suspicions())
	}
}

func TestDuplicateOutsideWindowLoggedAgain(t *testing.T) {
	fx := newFixture(t, 1, func(c *Config) { c.WindowSeqs = 5 })
	dup := pbft.Request{Payload: []byte("dup")}
	pbft.SignRequest(&dup, fx.kps[0])

	fx.layer.OnDecide(1, dup)
	for seq := uint64(2); seq <= 7; seq++ {
		r := pbft.Request{Payload: []byte{byte(seq)}}
		pbft.SignRequest(&r, fx.kps[0])
		fx.layer.OnDecide(seq, r)
	}
	fx.layer.OnDecide(8, dup) // original evicted: log it again, no suspicion

	if len(fx.bft.suspicions()) != 0 {
		t.Error("suspected primary for out-of-window duplicate")
	}
	entries := fx.rec.entries()
	if got := entries[len(entries)-1]; got.seq != 8 || got.payload != "dup" {
		t.Errorf("last entry = %+v", got)
	}
}

func TestBusDuplicateOfDecidedIsFiltered(t *testing.T) {
	fx := newFixture(t, 0, nil)
	req := pbft.Request{Payload: []byte("seen")}
	pbft.SignRequest(&req, fx.kps[1])
	fx.layer.OnDecide(1, req)

	fx.layer.OnBusRecord(0, []byte("seen"))
	if len(fx.bft.proposals()) != 0 {
		t.Error("decided payload proposed again")
	}
}

func TestBusDuplicateOfOpenIsFiltered(t *testing.T) {
	fx := newFixture(t, 0, nil)
	fx.layer.OnBusRecord(0, []byte("p"))
	fx.layer.OnBusRecord(1, []byte("p")) // same payload from a second source
	if got := len(fx.bft.proposals()); got != 1 {
		t.Errorf("proposals = %d, want 1", got)
	}
	if fx.layer.OpenRequests() != 1 {
		t.Errorf("open = %d", fx.layer.OpenRequests())
	}
}

func TestPrimaryProposesPeerBroadcastWithBroadcasterID(t *testing.T) {
	fx := newFixture(t, 0, nil)
	fx.tr.handler(2, fx.peerRequest(2, "from-r2"))

	props := fx.bft.proposals()
	if len(props) != 1 {
		t.Fatalf("proposals = %d", len(props))
	}
	if props[0].Origin != 2 {
		t.Errorf("origin = %v, want the broadcasting node r2", props[0].Origin)
	}
}

func TestBackupForwardsPeerBroadcastToPrimary(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.tr.handler(2, fx.peerRequest(2, "from-r2"))

	sends := fx.tr.sends()
	if len(sends) != 1 || sends[0].to != 0 {
		t.Fatalf("sends = %+v, want forward to primary r0", sends)
	}
	// Hard timer armed: expiry without decide suspects the primary.
	fx.clk.Advance(250 * time.Millisecond)
	waitFor(t, func() bool { return len(fx.bft.suspicions()) == 1 })
}

func TestPeerBroadcastAlreadyDecidedIgnored(t *testing.T) {
	fx := newFixture(t, 0, nil)
	req := pbft.Request{Payload: []byte("done")}
	pbft.SignRequest(&req, fx.kps[2])
	fx.layer.OnDecide(1, req)

	fx.tr.handler(2, fx.peerRequest(2, "done"))
	if len(fx.bft.proposals()) != 0 {
		t.Error("decided payload proposed from peer broadcast")
	}
}

func TestPeerBroadcastBadSignatureDropped(t *testing.T) {
	fx := newFixture(t, 0, nil)
	req := pbft.Request{Payload: []byte("forged"), Origin: 2, Sig: make([]byte, crypto.SignatureSize)}
	fx.tr.handler(2, wire.Marshal(&ZCRequest{Req: req}))
	if len(fx.bft.proposals()) != 0 {
		t.Error("unsigned peer request accepted")
	}
	if fx.layer.OpenRequests() != 0 {
		t.Error("unsigned peer request queued")
	}
}

func TestPerOriginRateLimit(t *testing.T) {
	fx := newFixture(t, 1, func(c *Config) { c.MaxOpenPerOrigin = 3 })
	for i := 0; i < 10; i++ {
		fx.tr.handler(2, fx.peerRequest(2, "flood-"+string(rune('a'+i))))
	}
	if got := fx.layer.OpenRequests(); got != 3 {
		t.Errorf("open = %d, want the limit 3", got)
	}
	// Decide frees budget: one more is admitted afterwards.
	req := pbft.Request{Payload: []byte("flood-a")}
	pbft.SignRequest(&req, fx.kps[2])
	fx.layer.OnDecide(1, req)
	fx.tr.handler(2, fx.peerRequest(2, "flood-k"))
	if got := fx.layer.OpenRequests(); got != 3 {
		t.Errorf("open after decide+readmit = %d, want 3", got)
	}
}

func TestRateLimitDoesNotThrottleBusInput(t *testing.T) {
	fx := newFixture(t, 1, func(c *Config) { c.MaxOpenPerOrigin = 2 })
	for i := 0; i < 5; i++ {
		fx.layer.OnBusRecord(0, []byte{byte(i)})
	}
	if got := fx.layer.OpenRequests(); got != 5 {
		t.Errorf("open = %d; local bus input must not be rate limited", got)
	}
}

func TestNewPrimarySelfReproposesOpenRequests(t *testing.T) {
	fx := newFixture(t, 1, nil) // backup under r0
	fx.layer.OnBusRecord(0, []byte("open-1"))
	fx.layer.OnBusRecord(0, []byte("open-2"))
	if len(fx.bft.proposals()) != 0 {
		t.Fatal("backup proposed")
	}

	fx.layer.OnNewPrimary(1, 1) // we become primary
	props := fx.bft.proposals()
	if len(props) != 2 {
		t.Fatalf("proposals after NewPrimary = %d, want 2", len(props))
	}
	for _, p := range props {
		if p.Origin != 1 {
			t.Errorf("re-proposal origin = %v", p.Origin)
		}
	}
}

func TestNewPrimaryBackupRestartsSoftTimeouts(t *testing.T) {
	fx := newFixture(t, 2, nil) // backup under r0 and under r1
	fx.layer.OnBusRecord(0, []byte("open"))
	fx.clk.Advance(200 * time.Millisecond) // soft timer at 250ms not yet fired

	fx.layer.OnNewPrimary(1, 1) // still a backup: timers restart
	fx.clk.Advance(200 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 {
		t.Fatal("old soft timer survived the view change")
	}
	fx.clk.Advance(50 * time.Millisecond) // full fresh soft timeout elapsed
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 1 })
}

func TestLatencyRecorded(t *testing.T) {
	fx := newFixture(t, 0, nil)
	fx.layer.OnBusRecord(0, []byte("m"))
	fx.clk.Advance(14 * time.Millisecond)
	req := pbft.Request{Payload: []byte("m")}
	pbft.SignRequest(&req, fx.kps[0])
	fx.layer.OnDecide(1, req)

	stats := fx.layer.Latency().Stats()
	if stats.Count != 1 || stats.Mean != 14*time.Millisecond {
		t.Errorf("latency stats = %+v", stats)
	}
}

func TestCloseStopsTimers(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("x"))
	fx.layer.Close()
	fx.clk.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 || len(fx.bft.suspicions()) != 0 {
		t.Error("timers acted after Close")
	}
}

func TestPrePreparedDowngradesSoftToHard(t *testing.T) {
	fx := newFixture(t, 1, nil) // backup; primary r0
	fx.layer.OnBusRecord(0, []byte("observed"))

	// The primary's preprepare arrives before the soft timeout: the layer
	// cancels the soft timer (no broadcast) but keeps censorship
	// detection armed.
	fx.layer.OnPrePrepared(crypto.Hash([]byte("observed")))

	fx.clk.Advance(250 * time.Millisecond) // old soft deadline passes
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 {
		t.Fatal("broadcast despite preprepare indication")
	}

	// But if the preprepare never commits, the hard timeout still fires.
	fx.clk.Advance(250 * time.Millisecond)
	waitFor(t, func() bool { return len(fx.bft.suspicions()) == 1 })
}

func TestPrePreparedThenDecideIsClean(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("fast"))
	fx.layer.OnPrePrepared(crypto.Hash([]byte("fast")))

	req := pbft.Request{Payload: []byte("fast")}
	pbft.SignRequest(&req, fx.kps[0])
	fx.layer.OnDecide(1, req)

	fx.clk.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 || len(fx.bft.suspicions()) != 0 {
		t.Error("timers fired after decide")
	}
}

func TestPrePreparedUnknownDigestIgnored(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnPrePrepared(crypto.Hash([]byte("never seen"))) // must not panic
	if fx.layer.OpenRequests() != 0 {
		t.Error("phantom request created")
	}
}

func TestPrePreparedDoesNotRestartHardTimer(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnBusRecord(0, []byte("x"))
	fx.clk.Advance(250 * time.Millisecond) // soft fires -> broadcast + hard armed
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 1 })

	fx.clk.Advance(200 * time.Millisecond) // hard timer at 250 has 50 left
	fx.layer.OnPrePrepared(crypto.Hash([]byte("x")))
	fx.clk.Advance(50 * time.Millisecond) // original hard deadline
	waitFor(t, func() bool { return len(fx.bft.suspicions()) == 1 })
}

func TestMultipleInputSources(t *testing.T) {
	fx := newFixture(t, 0, nil) // primary
	// Two buses deliver distinct data in the same cycle; both are logged
	// (§III-C "Multiple Input Sources").
	fx.layer.OnBusRecord(0, []byte("mvb-frame"))
	fx.layer.OnBusRecord(1, []byte("profinet-frame"))
	if got := len(fx.bft.proposals()); got != 2 {
		t.Fatalf("proposals = %d, want one per source", got)
	}
	// Identical payload from two sources is still a duplicate.
	fx.layer.OnBusRecord(1, []byte("mvb-frame"))
	if got := len(fx.bft.proposals()); got != 2 {
		t.Errorf("cross-source duplicate proposed (total %d)", got)
	}
}

// TestLayerRandomScheduleInvariants drives the layer with randomized
// interleavings of bus input, peer broadcasts, decides, view changes and
// time advances, checking the core invariant: no payload is logged twice
// within the sliding window ("No correct process logs the same payload
// more than once", §III-B).
func TestLayerRandomScheduleInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fx := newFixture(t, 1, func(c *Config) { c.WindowSeqs = 50 })

			var seq uint64
			pool := make([][]byte, 0, 64) // payloads in circulation
			for step := 0; step < 400; step++ {
				switch rng.Intn(6) {
				case 0: // fresh bus input
					p := []byte(fmt.Sprintf("payload-%d-%d", seed, step))
					pool = append(pool, p)
					fx.layer.OnBusRecord(rng.Intn(2), p)
				case 1: // repeated bus input
					if len(pool) > 0 {
						fx.layer.OnBusRecord(0, pool[rng.Intn(len(pool))])
					}
				case 2: // peer broadcast of a circulating payload
					if len(pool) > 0 {
						origin := crypto.NodeID(rng.Intn(4))
						req := pbft.Request{Payload: pool[rng.Intn(len(pool))]}
						pbft.SignRequest(&req, fx.kps[origin])
						fx.tr.handler(origin, wire.Marshal(&ZCRequest{Req: req}))
					}
				case 3: // decide on a circulating payload
					if len(pool) > 0 {
						seq++
						origin := crypto.NodeID(rng.Intn(4))
						req := pbft.Request{Payload: pool[rng.Intn(len(pool))]}
						pbft.SignRequest(&req, fx.kps[origin])
						fx.layer.OnDecide(seq, req)
					}
				case 4: // time passes; timers may fire
					fx.clk.Advance(time.Duration(rng.Intn(300)) * time.Millisecond)
				case 5: // view change
					fx.layer.OnNewPrimary(uint64(step), crypto.NodeID(rng.Intn(4)))
				}
			}

			// Invariant: within any WindowSeqs-wide window of the decide
			// sequence, each payload appears at most once in the log.
			entries := fx.rec.entries()
			lastAt := make(map[string]uint64)
			for _, e := range entries {
				if prev, ok := lastAt[e.payload]; ok {
					if e.seq-prev <= 50 {
						t.Fatalf("payload %q logged at seq %d and again at %d (window 50)",
							e.payload, prev, e.seq)
					}
				}
				lastAt[e.payload] = e.seq
			}
		})
	}
}

// TestStartupAnnouncementDoesNotRepropose guards the race at node start: bus
// records can reach the layer (and be proposed into the engine) before the
// engine's own startup NEWPRIMARY announcement is pumped through the runner.
// That announcement re-states the view the layer already operates in, so it
// must not reset the proposed flags — re-proposing would order every open
// record twice and make all replicas suspect an honest primary.
func TestStartupAnnouncementDoesNotRepropose(t *testing.T) {
	fx := newFixture(t, 0, nil)
	fx.layer.OnBusRecord(0, []byte("early-1"))
	fx.layer.OnBusRecord(0, []byte("early-2"))
	if got := len(fx.bft.proposals()); got != 2 {
		t.Fatalf("proposals = %d, want 2", got)
	}

	// The engine's startup announcement arrives after the records.
	fx.layer.OnNewPrimary(0, 0)
	if got := len(fx.bft.proposals()); got != 2 {
		t.Errorf("proposals after startup announcement = %d, want still 2", got)
	}

	// A real view change still re-proposes open records once we are the
	// primary of the new view.
	fx.layer.OnNewPrimary(4, 0)
	if got := len(fx.bft.proposals()); got != 4 {
		t.Errorf("proposals after real view change = %d, want 4", got)
	}
}
