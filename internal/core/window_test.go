package core

import (
	"testing"
	"testing/quick"

	"zugchain/internal/crypto"
)

func dig(s string) crypto.Digest { return crypto.Hash([]byte(s)) }

func TestWindowContains(t *testing.T) {
	w := newDecidedWindow(10)
	w.add(dig("a"), 1)
	if !w.contains(dig("a")) {
		t.Error("fresh entry missing")
	}
	if w.contains(dig("b")) {
		t.Error("phantom entry")
	}
	if seq, ok := w.seqOf(dig("a")); !ok || seq != 1 {
		t.Errorf("seqOf = %d, %v", seq, ok)
	}
}

func TestWindowEvictsOldEntries(t *testing.T) {
	// Window covers (current-width, current]: with width 5, seq 1 is in
	// the window while current <= 5 and evicted once current reaches 6.
	w := newDecidedWindow(5)
	w.add(dig("old"), 1)
	for seq := uint64(2); seq <= 5; seq++ {
		w.add(dig("x"), seq)
	}
	if !w.contains(dig("old")) {
		t.Fatal("evicted too early: seq 1 with current 5, width 5")
	}
	w.add(dig("y"), 6) // cutoff = 1: seq 1 must go
	if w.contains(dig("old")) {
		t.Error("seq 1 survived past the window")
	}
}

func TestWindowReAddAfterEviction(t *testing.T) {
	w := newDecidedWindow(3)
	w.add(dig("dup"), 1)
	w.add(dig("a"), 2)
	w.add(dig("b"), 3)
	w.add(dig("c"), 5) // cutoff 2: evicts seq 1 and 2
	if w.contains(dig("dup")) || w.contains(dig("a")) {
		t.Fatal("eviction failed")
	}
	// The duplicate is logged again outside the window (paper §III-C
	// "Faulty Primary": recorded, detected post-operationally).
	w.add(dig("dup"), 6)
	if !w.contains(dig("dup")) {
		t.Error("re-added digest missing")
	}
	if seq, _ := w.seqOf(dig("dup")); seq != 6 {
		t.Errorf("seqOf = %d, want 6", seq)
	}
}

func TestWindowReAddedEntryNotKilledByStaleEviction(t *testing.T) {
	w := newDecidedWindow(2)
	w.add(dig("d"), 1)
	w.add(dig("a"), 3) // cutoff 1: evicts seq 1
	w.add(dig("d"), 4) // re-added
	w.add(dig("b"), 5)
	w.add(dig("c"), 6) // cutoff 4: stale order entry for ("d",1) long gone,
	// but ("d",4) is exactly at cutoff and goes now
	if w.contains(dig("d")) {
		t.Error("entry at cutoff retained")
	}
	w.add(dig("d"), 7)
	if !w.contains(dig("d")) {
		t.Error("fresh re-add lost to stale eviction record")
	}
}

func TestWindowLen(t *testing.T) {
	w := newDecidedWindow(100)
	for i := uint64(1); i <= 7; i++ {
		w.add(crypto.Hash([]byte{byte(i)}), i)
	}
	if w.len() != 7 {
		t.Errorf("len = %d", w.len())
	}
}

// Property: after adding digests at seqs 1..n, exactly those with
// seq > n - width remain.
func TestWindowInvariantProperty(t *testing.T) {
	f := func(widthRaw uint8, nRaw uint8) bool {
		width := uint64(widthRaw%50) + 1
		n := uint64(nRaw%200) + 1
		w := newDecidedWindow(width)
		for seq := uint64(1); seq <= n; seq++ {
			w.add(crypto.Hash([]byte{byte(seq), byte(seq >> 8)}), seq)
		}
		for seq := uint64(1); seq <= n; seq++ {
			d := crypto.Hash([]byte{byte(seq), byte(seq >> 8)})
			want := n <= width || seq > n-width
			if w.contains(d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
