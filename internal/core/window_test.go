package core

import (
	"testing"
	"testing/quick"

	"zugchain/internal/crypto"
)

func dig(s string) crypto.Digest { return crypto.Hash([]byte(s)) }

func TestWindowContains(t *testing.T) {
	w := newDecidedWindow(10)
	w.add(dig("a"), 1)
	if !w.contains(dig("a")) {
		t.Error("fresh entry missing")
	}
	if w.contains(dig("b")) {
		t.Error("phantom entry")
	}
	if seq, ok := w.seqOf(dig("a")); !ok || seq != 1 {
		t.Errorf("seqOf = %d, %v", seq, ok)
	}
}

func TestWindowEvictsOldEntries(t *testing.T) {
	// Window covers (current-width, current]: with width 5, seq 1 is in
	// the window while current <= 5 and evicted once current reaches 6.
	w := newDecidedWindow(5)
	w.add(dig("old"), 1)
	for seq := uint64(2); seq <= 5; seq++ {
		w.add(dig("x"), seq)
	}
	if !w.contains(dig("old")) {
		t.Fatal("evicted too early: seq 1 with current 5, width 5")
	}
	w.add(dig("y"), 6) // cutoff = 1: seq 1 must go
	if w.contains(dig("old")) {
		t.Error("seq 1 survived past the window")
	}
}

func TestWindowReAddAfterEviction(t *testing.T) {
	w := newDecidedWindow(3)
	w.add(dig("dup"), 1)
	w.add(dig("a"), 2)
	w.add(dig("b"), 3)
	w.add(dig("c"), 5) // cutoff 2: evicts seq 1 and 2
	if w.contains(dig("dup")) || w.contains(dig("a")) {
		t.Fatal("eviction failed")
	}
	// The duplicate is logged again outside the window (paper §III-C
	// "Faulty Primary": recorded, detected post-operationally).
	w.add(dig("dup"), 6)
	if !w.contains(dig("dup")) {
		t.Error("re-added digest missing")
	}
	if seq, _ := w.seqOf(dig("dup")); seq != 6 {
		t.Errorf("seqOf = %d, want 6", seq)
	}
}

func TestWindowReAddedEntryNotKilledByStaleEviction(t *testing.T) {
	w := newDecidedWindow(2)
	w.add(dig("d"), 1)
	w.add(dig("a"), 3) // cutoff 1: evicts seq 1
	w.add(dig("d"), 4) // re-added
	w.add(dig("b"), 5)
	w.add(dig("c"), 6) // cutoff 4: stale order entry for ("d",1) long gone,
	// but ("d",4) is exactly at cutoff and goes now
	if w.contains(dig("d")) {
		t.Error("entry at cutoff retained")
	}
	w.add(dig("d"), 7)
	if !w.contains(dig("d")) {
		t.Error("fresh re-add lost to stale eviction record")
	}
}

func TestWindowSharedSeqEvictedTogether(t *testing.T) {
	// Records decided as one batch share a seq: they must stay and go as
	// one unit, exactly when that seq leaves the window.
	w := newDecidedWindow(3)
	w.add(dig("b1"), 2)
	w.add(dig("b2"), 2)
	w.add(dig("b3"), 2)
	w.add(dig("x"), 5) // cutoff 2: the whole batch goes
	for _, d := range []string{"b1", "b2", "b3"} {
		if w.contains(dig(d)) {
			t.Errorf("%s survived past the window", d)
		}
	}
	if !w.contains(dig("x")) {
		t.Error("fresh entry evicted")
	}
	if w.len() != 1 {
		t.Errorf("len = %d, want 1", w.len())
	}
}

func TestWindowWrapLargeSeqJump(t *testing.T) {
	// A decide stream resuming far ahead (view change with many nulls, or
	// state transfer) must flush everything older in one eviction pass and
	// compact the FIFO.
	w := newDecidedWindow(10)
	for seq := uint64(1); seq <= 8; seq++ {
		w.add(crypto.Hash([]byte{byte(seq)}), seq)
	}
	w.add(dig("far"), 1000)
	if w.len() != 1 || !w.contains(dig("far")) {
		t.Fatalf("len = %d after wrap, want only the fresh entry", w.len())
	}
	if len(w.order) != 1 {
		t.Errorf("order FIFO = %d entries, want compacted to 1", len(w.order))
	}
}

func TestWindowReAddAtHigherSeqSurvivesIntermediateEvictions(t *testing.T) {
	// A digest evicted and re-added at a much higher seq must survive every
	// eviction whose cutoff lies between the two occurrences: the stale
	// FIFO record for the first occurrence may be processed while the map
	// already points at the second.
	w := newDecidedWindow(2)
	w.add(dig("r"), 1)
	w.add(dig("r"), 10) // re-add long before ("r",1) leaves the FIFO
	for seq := uint64(11); seq <= 12; seq++ {
		w.add(crypto.Hash([]byte{byte(seq)}), seq) // cutoffs 9 and 10... (10 evicts it)
		if seq == 11 && !w.contains(dig("r")) {
			t.Fatal("re-added digest killed by its own stale FIFO record")
		}
	}
	// cutoff reached 10: the re-added occurrence itself is now out.
	if w.contains(dig("r")) {
		t.Error("re-added digest survived past its own window")
	}
	// And a third occurrence starts a fresh life.
	w.add(dig("r"), 13)
	if !w.contains(dig("r")) {
		t.Error("third occurrence missing")
	}
}

func TestWindowLen(t *testing.T) {
	w := newDecidedWindow(100)
	for i := uint64(1); i <= 7; i++ {
		w.add(crypto.Hash([]byte{byte(i)}), i)
	}
	if w.len() != 7 {
		t.Errorf("len = %d", w.len())
	}
}

// Property: after adding digests at seqs 1..n, exactly those with
// seq > n - width remain.
func TestWindowInvariantProperty(t *testing.T) {
	f := func(widthRaw uint8, nRaw uint8) bool {
		width := uint64(widthRaw%50) + 1
		n := uint64(nRaw%200) + 1
		w := newDecidedWindow(width)
		for seq := uint64(1); seq <= n; seq++ {
			w.add(crypto.Hash([]byte{byte(seq), byte(seq >> 8)}), seq)
		}
		for seq := uint64(1); seq <= n; seq++ {
			d := crypto.Hash([]byte{byte(seq), byte(seq >> 8)})
			want := n <= width || seq > n-width
			if w.contains(d) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
