package core

import (
	"fmt"
	"testing"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/pbft"
	"zugchain/internal/wire"
)

func TestBatchFlushesWhenFull(t *testing.T) {
	fx := newFixture(t, 0, func(c *Config) { c.MaxBatch = 3 }) // r0 is primary
	fx.layer.OnBusRecord(0, []byte("a"))
	fx.layer.OnBusRecord(0, []byte("b"))
	if got := len(fx.bft.proposals()); got != 0 {
		t.Fatalf("proposals before the batch filled = %d", got)
	}
	fx.layer.OnBusRecord(0, []byte("c"))

	props := fx.bft.proposals()
	if len(props) != 1 {
		t.Fatalf("proposals = %d, want 1 batched", len(props))
	}
	if !props[0].Batch {
		t.Fatal("proposal not marked as a batch")
	}
	if err := pbft.VerifyRequestDeep(&props[0], fx.reg, nil); err != nil {
		t.Fatalf("batched proposal fails verification: %v", err)
	}
	items, err := pbft.DecodeBatch(props[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("batch carries %d records, want 3", len(items))
	}
	for i, want := range []string{"a", "b", "c"} {
		if string(items[i].Payload) != want || items[i].Origin != 0 {
			t.Errorf("item %d = %+v", i, items[i])
		}
	}

	snap := fx.layer.Batches().Snapshot()
	if snap.Flushes != 1 || snap.Records != 3 || snap.SizeFlushes != 1 || snap.MaxSize != 3 {
		t.Errorf("batch counters = %+v", snap)
	}
}

func TestBatchFlushesOnDelay(t *testing.T) {
	fx := newFixture(t, 0, func(c *Config) {
		c.MaxBatch = 8
		c.MaxBatchDelay = 2 * time.Millisecond
	})
	fx.layer.OnBusRecord(0, []byte("a"))
	fx.layer.OnBusRecord(0, []byte("b"))
	if got := len(fx.bft.proposals()); got != 0 {
		t.Fatalf("partial batch proposed early (%d)", got)
	}

	fx.clk.Advance(2 * time.Millisecond)
	waitFor(t, func() bool { return len(fx.bft.proposals()) == 1 })

	props := fx.bft.proposals()
	items, err := pbft.DecodeBatch(props[0].Payload)
	if err != nil || len(items) != 2 {
		t.Fatalf("flush-by-delay batch = %d items, err %v", len(items), err)
	}
	snap := fx.layer.Batches().Snapshot()
	if snap.DelayFlushes != 1 || snap.SizeFlushes != 0 {
		t.Errorf("batch counters = %+v", snap)
	}
	if snap.WaitMax != 2*time.Millisecond {
		t.Errorf("oldest-record wait = %v, want 2ms", snap.WaitMax)
	}
}

func TestSingleRecordFlushDegradesToPlainRequest(t *testing.T) {
	fx := newFixture(t, 0, func(c *Config) { c.MaxBatch = 8 })
	fx.layer.OnBusRecord(0, []byte("alone"))
	fx.clk.Advance(2 * time.Millisecond)
	waitFor(t, func() bool { return len(fx.bft.proposals()) == 1 })

	p := fx.bft.proposals()[0]
	if p.Batch {
		t.Error("single-record flush produced a batch envelope")
	}
	if string(p.Payload) != "alone" || p.Origin != 0 {
		t.Errorf("proposal = %+v", p)
	}
	if err := pbft.VerifyRequest(&p, fx.reg); err != nil {
		t.Errorf("proposal not signed: %v", err)
	}
}

// batchOf builds a signed batch proposal from the given (origin, payload)
// pairs, as the primary `by` would propose it.
func (fx *layerFixture) batchOf(by crypto.NodeID, recs ...pbft.Request) pbft.Request {
	for i := range recs {
		if recs[i].Sig == nil {
			pbft.SignRequest(&recs[i], fx.kps[recs[i].Origin])
		}
	}
	req := pbft.Request{Payload: pbft.EncodeBatch(recs), Batch: true}
	pbft.SignRequest(&req, fx.kps[by])
	return req
}

func TestBatchDecideUnpacksPerRecord(t *testing.T) {
	fx := newFixture(t, 1, nil) // backup; primary r0
	batch := fx.batchOf(0,
		pbft.Request{Payload: []byte("one"), Origin: 0},
		pbft.Request{Payload: []byte("two"), Origin: 2},
		pbft.Request{Payload: []byte("three"), Origin: 3},
	)
	fx.layer.OnDecide(7, batch)

	entries := fx.rec.entries()
	if len(entries) != 3 {
		t.Fatalf("logged %d records, want 3", len(entries))
	}
	wantOrigins := []crypto.NodeID{0, 2, 3}
	for i, want := range []string{"one", "two", "three"} {
		if entries[i].payload != want || entries[i].seq != 7 || entries[i].origin != wantOrigins[i] {
			t.Errorf("entry %d = %+v", i, entries[i])
		}
	}
	if len(fx.bft.suspicions()) != 0 {
		t.Errorf("suspicions = %v", fx.bft.suspicions())
	}
}

func TestBatchDecideCancelsOpenTimers(t *testing.T) {
	fx := newFixture(t, 1, nil) // backup
	fx.layer.OnBusRecord(0, []byte("one"))
	fx.layer.OnBusRecord(0, []byte("two"))

	fx.layer.OnDecide(1, fx.batchOf(0,
		pbft.Request{Payload: []byte("one"), Origin: 0},
		pbft.Request{Payload: []byte("two"), Origin: 0},
	))
	if fx.layer.OpenRequests() != 0 {
		t.Fatalf("open = %d after batch decide", fx.layer.OpenRequests())
	}
	fx.clk.Advance(time.Hour)
	time.Sleep(20 * time.Millisecond)
	if fx.tr.numBroadcasts() != 0 || len(fx.bft.suspicions()) != 0 {
		t.Error("timers fired for records decided in a batch")
	}
}

func TestDuplicateInsideBatchSuspectsPrimaryButLogsRest(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnDecide(3, fx.batchOf(0,
		pbft.Request{Payload: []byte("dup"), Origin: 0},
		pbft.Request{Payload: []byte("honest"), Origin: 2},
		pbft.Request{Payload: []byte("dup"), Origin: 0},
	))

	entries := fx.rec.entries()
	if len(entries) != 2 {
		t.Fatalf("logged %d records, want dup once + honest", len(entries))
	}
	if entries[0].payload != "dup" || entries[1].payload != "honest" {
		t.Errorf("entries = %+v", entries)
	}
	// The primary assembled a batch it should have filtered: suspected.
	if s := fx.bft.suspicions(); len(s) != 1 || s[0] != 0 {
		t.Errorf("suspicions = %v, want the primary r0", s)
	}
}

func TestBatchDuplicateAcrossDecidesSuspectsPrimary(t *testing.T) {
	fx := newFixture(t, 1, nil)
	fx.layer.OnDecide(1, fx.batchOf(0, pbft.Request{Payload: []byte("seen"), Origin: 0}, pbft.Request{Payload: []byte("x"), Origin: 0}))
	fx.layer.OnDecide(2, fx.batchOf(0, pbft.Request{Payload: []byte("y"), Origin: 0}, pbft.Request{Payload: []byte("seen"), Origin: 0}))

	if got := len(fx.rec.entries()); got != 3 {
		t.Errorf("logged %d, want x, y and seen once", got)
	}
	if s := fx.bft.suspicions(); len(s) != 1 || s[0] != 0 {
		t.Errorf("suspicions = %v", s)
	}
}

func TestMalformedBatchDecideSuspectsPrimary(t *testing.T) {
	fx := newFixture(t, 1, nil)
	req := pbft.Request{Payload: []byte{0xde, 0xad}, Batch: true}
	pbft.SignRequest(&req, fx.kps[0])
	fx.layer.OnDecide(1, req)

	if got := len(fx.rec.entries()); got != 0 {
		t.Errorf("logged %d records from a malformed batch", got)
	}
	if s := fx.bft.suspicions(); len(s) != 1 || s[0] != 0 {
		t.Errorf("suspicions = %v, want the primary r0", s)
	}
}

func TestNewPrimaryDropsPendingBatch(t *testing.T) {
	fx := newFixture(t, 0, func(c *Config) { c.MaxBatch = 8 }) // primary
	fx.layer.OnBusRecord(0, []byte("queued-1"))
	fx.layer.OnBusRecord(0, []byte("queued-2"))

	fx.layer.OnNewPrimary(1, 1) // demoted before the batch flushed

	if got := len(fx.bft.proposals()); got != 0 {
		t.Fatalf("demoted node proposed %d", got)
	}
	// The stale delay timer must not resurrect the batch.
	fx.clk.Advance(2 * time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if got := len(fx.bft.proposals()); got != 0 {
		t.Fatalf("stale batch timer proposed %d", got)
	}
	// The records are still open under the new primary: soft timeouts run.
	if fx.layer.OpenRequests() != 2 {
		t.Fatalf("open = %d", fx.layer.OpenRequests())
	}
	fx.clk.Advance(250 * time.Millisecond)
	waitFor(t, func() bool { return fx.tr.numBroadcasts() == 2 })
}

func TestNewPrimaryReproposesIntoOneBatch(t *testing.T) {
	fx := newFixture(t, 1, func(c *Config) { c.MaxBatch = 8 }) // backup under r0
	fx.layer.OnBusRecord(0, []byte("held-1"))
	fx.layer.OnBusRecord(0, []byte("held-2"))
	if len(fx.bft.proposals()) != 0 {
		t.Fatal("backup proposed")
	}

	fx.layer.OnNewPrimary(1, 1) // we become primary: re-propose, flushed at once

	props := fx.bft.proposals()
	if len(props) != 1 || !props[0].Batch {
		t.Fatalf("proposals after promotion = %+v, want one batch", props)
	}
	items, err := pbft.DecodeBatch(props[0].Payload)
	if err != nil || len(items) != 2 {
		t.Fatalf("promotion batch = %d items, err %v", len(items), err)
	}
}

func TestPeerBatchRequestRejected(t *testing.T) {
	fx := newFixture(t, 0, func(c *Config) { c.MaxBatch = 8 })
	inner := pbft.Request{Payload: []byte("smuggled"), Origin: 2}
	pbft.SignRequest(&inner, fx.kps[2])
	req := pbft.Request{Payload: pbft.EncodeBatch([]pbft.Request{inner}), Batch: true}
	pbft.SignRequest(&req, fx.kps[2])

	fx.tr.handler(2, wire.Marshal(&ZCRequest{Req: req}))
	if len(fx.bft.proposals()) != 0 || fx.layer.OpenRequests() != 0 {
		t.Error("batch-flagged peer request admitted")
	}
}

func TestBatchingPreservesWindowInvariant(t *testing.T) {
	// Randomized decides arriving as batches must never log a payload
	// twice within the window (§III-B), same invariant as the unbatched
	// random-schedule test.
	fx := newFixture(t, 1, func(c *Config) { c.WindowSeqs = 50 })
	var seq uint64
	for round := 0; round < 60; round++ {
		recs := make([]pbft.Request, 0, 4)
		for i := 0; i < 1+(round%4); i++ {
			// Overlapping payload space forces in-window duplicates.
			recs = append(recs, pbft.Request{
				Payload: []byte(fmt.Sprintf("p-%d", (round*3+i)%40)),
				Origin:  crypto.NodeID(i % 4),
			})
		}
		seq++
		fx.layer.OnDecide(seq, fx.batchOf(0, recs...))
	}
	lastAt := make(map[string]uint64)
	for _, e := range fx.rec.entries() {
		if prev, ok := lastAt[e.payload]; ok && e.seq-prev <= 50 {
			t.Fatalf("payload %q logged at seq %d and again at %d", e.payload, prev, e.seq)
		}
		lastAt[e.payload] = e.seq
	}
}
