package core

import "zugchain/internal/crypto"

// decidedWindow is the inLog structure of Algorithm 1: "a hashmap over the
// requests of a sliding window of past checkpoints". It maps payload
// digests of recently decided requests to their sequence numbers and evicts
// entries once the decide stream has advanced past the window width.
// Eviction depends only on decided sequence numbers, so all correct nodes
// hold identical windows after identical decide streams — which keeps the
// duplicate-filtering decision, and therefore the blockchain content,
// deterministic across replicas.
type decidedWindow struct {
	width   uint64
	entries map[crypto.Digest]uint64
	order   []windowEntry // FIFO in decide order for cheap eviction
}

type windowEntry struct {
	digest crypto.Digest
	seq    uint64
}

func newDecidedWindow(width uint64) *decidedWindow {
	return &decidedWindow{
		width:   width,
		entries: make(map[crypto.Digest]uint64),
	}
}

// contains reports whether digest was decided within the window.
func (w *decidedWindow) contains(digest crypto.Digest) bool {
	_, ok := w.entries[digest]
	return ok
}

// seqOf returns the decide sequence number for digest, if present.
func (w *decidedWindow) seqOf(digest crypto.Digest) (uint64, bool) {
	seq, ok := w.entries[digest]
	return seq, ok
}

// add records a decided digest and evicts entries older than the window.
func (w *decidedWindow) add(digest crypto.Digest, seq uint64) {
	w.entries[digest] = seq
	w.order = append(w.order, windowEntry{digest: digest, seq: seq})
	w.evict(seq)
}

// evict drops entries with seq <= current - width.
func (w *decidedWindow) evict(current uint64) {
	if current <= w.width {
		return
	}
	cutoff := current - w.width
	i := 0
	for ; i < len(w.order); i++ {
		e := w.order[i]
		if e.seq > cutoff {
			break
		}
		// Only delete if the map still points at this occurrence: a
		// duplicate logged after window eviction re-adds the digest with
		// a newer seq, which must survive.
		if cur, ok := w.entries[e.digest]; ok && cur == e.seq {
			delete(w.entries, e.digest)
		}
	}
	if i > 0 {
		w.order = append(w.order[:0], w.order[i:]...)
	}
}

// len reports the number of digests currently in the window.
func (w *decidedWindow) len() int { return len(w.entries) }
