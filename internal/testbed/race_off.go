//go:build !race

package testbed

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
