//go:build race

package testbed

// RaceEnabled reports whether the race detector is compiled in. Scenario
// timing must be relaxed under the detector: signing and message handling
// slow down by an order of magnitude, so aggressive TimeScale compression
// outruns consensus.
const RaceEnabled = true
