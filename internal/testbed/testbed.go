// Package testbed builds the evaluation environment of §V: four replicas
// (the paper's M-COMs) on a simulated Ethernet, fed by a simulated MVB with
// an ATP workload generator, running either ZugChain or the PBFT-with-
// clients baseline. Scenarios sweep bus cycle and payload size, inject
// Byzantine behaviours, and collect the latency / network / CPU-proxy /
// memory measurements behind Figs 6–9 and Table II.
//
// Scenarios run in real time. Because commodity CPUs order requests in
// microseconds where the paper's 800 MHz ARM boards take milliseconds,
// scenarios support a TimeScale that divides the bus cycle and all timeouts
// equally — ratios between systems and the shape across sweeps are
// preserved while wall-clock cost shrinks.
package testbed

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"zugchain/internal/baseline"
	"zugchain/internal/clock"
	"zugchain/internal/core"
	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
	"zugchain/internal/mvb"
	"zugchain/internal/node"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// System selects which recorder architecture a scenario runs.
type System int

// Available systems.
const (
	ZugChain System = iota + 1
	Baseline
)

// String names the system.
func (s System) String() string {
	if s == Baseline {
		return "baseline"
	}
	return "zugchain"
}

// Scenario describes one evaluation run.
type Scenario struct {
	// System is ZugChain or Baseline.
	System System
	// Nodes is the replica count (the testbed has 4 M-COMs).
	Nodes int
	// BusCycle is the MVB cycle time (32–256 ms in Fig 6).
	BusCycle time.Duration
	// PayloadSize pads each cycle's record (32 B – 8 kB in Fig 6).
	PayloadSize int
	// Cycles is the number of bus cycles to run.
	Cycles int
	// BlockSize is requests per block/checkpoint (10 in §V).
	BlockSize uint64
	// TimeScale divides BusCycle and all timeouts (1 = real time).
	TimeScale int
	// SoftTimeout and HardTimeout for ZugChain (paper: 250 ms each);
	// ClientTimeout for the baseline (paper: 500 ms). Pre-scaling values.
	SoftTimeout   time.Duration
	HardTimeout   time.Duration
	ClientTimeout time.Duration
	ViewTimeout   time.Duration
	// BusFaults configures per-node bus fault injection.
	BusFaults []mvb.FaultConfig
	// FabricateRate makes the node FabricateNode inject a fabricated
	// request in this fraction of bus cycles (Fig 9a).
	FabricateRate float64
	FabricateNode int
	// PrimaryDelay delays the primary's preprepares (Fig 9b).
	PrimaryDelay time.Duration
	// KillPrimaryAtCycle isolates the primary at the given cycle and has
	// the backups detect the fault (Fig 8). Zero disables.
	KillPrimaryAtCycle int
	// SuspectOnFirstTimeout configures Fig 8's one-shot baseline timeout.
	SuspectOnFirstTimeout bool
	// Seed drives workload and fault randomness.
	Seed int64
	// LinkLatency is the per-hop Ethernet latency.
	LinkLatency time.Duration
}

func (s *Scenario) applyDefaults() {
	if s.System == 0 {
		s.System = ZugChain
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.BusCycle == 0 {
		s.BusCycle = 64 * time.Millisecond
	}
	if s.Cycles == 0 {
		s.Cycles = 100
	}
	if s.BlockSize == 0 {
		s.BlockSize = 10
	}
	if s.TimeScale <= 0 {
		s.TimeScale = 1
	}
	if s.SoftTimeout == 0 {
		s.SoftTimeout = 250 * time.Millisecond
	}
	if s.HardTimeout == 0 {
		s.HardTimeout = 250 * time.Millisecond
	}
	if s.ClientTimeout == 0 {
		s.ClientTimeout = 500 * time.Millisecond
	}
	if s.ViewTimeout == 0 {
		s.ViewTimeout = 500 * time.Millisecond
	}
	if s.FabricateNode == 0 {
		s.FabricateNode = 3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

func (s *Scenario) scaled(d time.Duration) time.Duration {
	return d / time.Duration(s.TimeScale)
}

// Result aggregates a scenario's measurements.
type Result struct {
	Scenario Scenario
	// Duration is the wall-clock run time.
	Duration time.Duration
	// Latency aggregates receive-to-decide latency across all nodes
	// (scaled back up by TimeScale so numbers are comparable).
	Latency metrics.LatencyStats
	// Timeline holds per-decide latency samples relative to run start
	// (for Fig 8). Times are unscaled wall-clock.
	Timeline []TimelinePoint
	// FaultAt is when the primary was killed (Fig 8), relative to start.
	FaultAt time.Duration
	// NetBytesPerNodePerSec is the mean transport traffic per node.
	NetBytesPerNodePerSec float64
	// MsgsPerNode is the mean transport message count per node.
	MsgsPerNode float64
	// CPUWorkPerNode is the CPU-load proxy per node (see metrics).
	CPUWorkPerNode float64
	// AllocPerNode is allocated bytes per node during the run (memory
	// churn proxy).
	AllocPerNode uint64
	// HeapAlloc is the retained heap after the run.
	HeapAlloc uint64
	// Ordered counts totally ordered, logged requests (chain entries on
	// node 0); Duplicates counts filtered duplicates on node 0.
	Ordered    uint64
	Duplicates uint64
	// Blocks is node 0's final chain height.
	Blocks uint64
}

// TimelinePoint is one latency observation on the Fig 8 timeline.
type TimelinePoint struct {
	Since   time.Duration // decide time relative to run start
	Latency time.Duration // scaled back to paper-equivalent time
}

// Run executes one scenario to completion.
func Run(s Scenario) (*Result, error) {
	s.applyDefaults()
	if s.System == Baseline {
		return runBaseline(s)
	}
	return runZugChain(s)
}

// buildKeys creates replica key pairs and the shared registry.
func buildKeys(n int) ([]crypto.NodeID, map[crypto.NodeID]*crypto.KeyPair, *crypto.Registry) {
	ids := make([]crypto.NodeID, n)
	kps := make(map[crypto.NodeID]*crypto.KeyPair, n)
	pairs := make([]*crypto.KeyPair, 0, n)
	for i := 0; i < n; i++ {
		id := crypto.NodeID(i)
		ids[i] = id
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	return ids, kps, crypto.NewRegistry(pairs...)
}

// buildBus assembles the MVB with the ATP generator for the scenario.
func buildBus(s Scenario) *mvb.Bus {
	genCfg := signal.DefaultGeneratorConfig()
	genCfg.Seed = s.Seed
	genCfg.PayloadSize = s.PayloadSize
	bus := mvb.NewBus(mvb.Config{CycleTime: s.scaled(s.BusCycle)})
	bus.Attach(mvb.NewSignalDevice(signal.NewGenerator(genCfg)))
	return bus
}

func (s *Scenario) faultsFor(i int) mvb.FaultConfig {
	if i < len(s.BusFaults) {
		return s.BusFaults[i]
	}
	return mvb.FaultConfig{}
}

func runZugChain(s Scenario) (*Result, error) {
	net := transport.NewNetwork(
		transport.WithSeed(s.Seed),
		transport.WithDefaultLink(transport.LinkConfig{Latency: s.LinkLatency}),
	)
	defer net.Close()

	ids, kps, reg := buildKeys(s.Nodes)
	bus := buildBus(s)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*node.Node, 0, s.Nodes)
	readers := make([]*mvb.Reader, 0, s.Nodes)
	for i, id := range ids {
		cfg := node.Config{
			ID:          id,
			Replicas:    ids,
			BlockSize:   s.BlockSize,
			SoftTimeout: s.scaled(s.SoftTimeout),
			HardTimeout: s.scaled(s.HardTimeout),
			ViewTimeout: s.scaled(s.ViewTimeout),
		}
		n, err := node.New(cfg, kps[id], reg, net.Endpoint(id), clock.Real{})
		if err != nil {
			return nil, err
		}
		reader := bus.NewReader(s.faultsFor(i), s.Seed+int64(i))
		nodes = append(nodes, n)
		readers = append(readers, reader)
	}
	defer func() {
		cancel() // release RunBus goroutines before Stop waits on them
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for i, n := range nodes {
		n.Start()
		n.RunBus(ctx, readers[i])
	}

	// Fig 9b: the primary delays its preprepares.
	if s.PrimaryDelay > 0 {
		delay := s.scaled(s.PrimaryDelay)
		net.SetInterceptor(0, func(to crypto.NodeID, data []byte) (time.Duration, bool) {
			if isPrePrepare(data) {
				return delay, false
			}
			return 0, false
		})
	}

	// Fig 9a: a faulty backup fabricates requests.
	fabricator := newFabricator(s, kps, net)

	runtime.GC()
	memBefore := metrics.SampleMemory()
	start := time.Now()
	var faultAt time.Duration

	cycleTime := s.scaled(s.BusCycle)
	ticker := time.NewTicker(cycleTime)
	defer ticker.Stop()
	for cycle := 0; cycle < s.Cycles; cycle++ {
		<-ticker.C
		bus.Tick()
		if fabricator != nil {
			fabricator.maybeInject(cycle)
		}
		if s.KillPrimaryAtCycle > 0 && cycle == s.KillPrimaryAtCycle {
			faultAt = time.Since(start)
			net.Isolate(0)
			// The backups discover the fault as their timeout machinery
			// fires; no explicit Suspect needed — hard timeouts do it.
		}
	}
	// Drain: let in-flight ordering finish.
	drainDeadline := time.Now().Add(2*s.scaled(s.SoftTimeout) + 2*s.scaled(s.HardTimeout) + 2*time.Second)
	for time.Now().Before(drainDeadline) {
		settled := true
		for i, n := range nodes {
			if s.KillPrimaryAtCycle > 0 && i == 0 {
				continue // the killed primary never settles
			}
			if n.Layer().OpenRequests() > 0 {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	duration := time.Since(start)
	memAfter := metrics.SampleMemory()

	res := &Result{
		Scenario: s,
		Duration: duration,
		FaultAt:  faultAt,
		Blocks:   nodes[0].Store().HeadIndex(),
	}

	// Aggregate latency across surviving nodes, scaling back to
	// paper-equivalent time.
	agg := &metrics.Latency{}
	for i, n := range nodes {
		if s.KillPrimaryAtCycle > 0 && i == 0 {
			continue
		}
		for _, ts := range n.Layer().Latency().TimedSamples() {
			agg.Record(ts.D * time.Duration(s.TimeScale))
			res.Timeline = append(res.Timeline, TimelinePoint{
				Since:   ts.At.Sub(start),
				Latency: ts.D * time.Duration(s.TimeScale),
			})
		}
	}
	res.Latency = agg.Stats()

	var bytesTotal, msgsTotal uint64
	var cpuTotal float64
	for _, id := range ids {
		snap := net.Endpoint(id).Counters().Snapshot()
		layerSnap := nodes[id].Layer().Counters().Snapshot()
		bytesTotal += snap.BytesSent
		msgsTotal += snap.MsgsSent + snap.MsgsReceived
		// Signature work: one per sent protocol message (signing) and one
		// per received (verification) approximates the Ed25519 load.
		work := metrics.CounterSnapshot{
			MsgsSent:      snap.MsgsSent,
			MsgsReceived:  snap.MsgsReceived,
			BytesSent:     snap.BytesSent,
			BytesReceived: snap.BytesReceived,
			Signatures:    snap.MsgsSent + layerSnap.Signatures,
			Verifications: snap.MsgsReceived,
		}
		cpuTotal += work.CPUWorkUnits()
	}
	seconds := duration.Seconds()
	res.NetBytesPerNodePerSec = float64(bytesTotal) / float64(s.Nodes) / seconds
	res.MsgsPerNode = float64(msgsTotal) / float64(s.Nodes)
	res.CPUWorkPerNode = cpuTotal / float64(s.Nodes)
	res.AllocPerNode = (memAfter.TotalAlloc - memBefore.TotalAlloc) / uint64(s.Nodes)
	res.HeapAlloc = memAfter.HeapAlloc

	node0Snap := nodes[0].Layer().Counters().Snapshot()
	res.Ordered = node0Snap.Requests
	for _, n := range nodes {
		res.Duplicates += n.Layer().Counters().Snapshot().Duplicates
	}
	return res, nil
}

func runBaseline(s Scenario) (*Result, error) {
	net := transport.NewNetwork(
		transport.WithSeed(s.Seed),
		transport.WithDefaultLink(transport.LinkConfig{Latency: s.LinkLatency}),
	)
	defer net.Close()

	ids, kps, reg := buildKeys(s.Nodes)
	bus := buildBus(s)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := make([]*baseline.Node, 0, s.Nodes)
	readers := make([]*mvb.Reader, 0, s.Nodes)
	for i, id := range ids {
		cfg := baseline.Config{
			ID:                    id,
			Replicas:              ids,
			BlockSize:             s.BlockSize,
			ClientTimeout:         s.scaled(s.ClientTimeout),
			ViewTimeout:           s.scaled(s.ViewTimeout),
			SuspectOnFirstTimeout: s.SuspectOnFirstTimeout,
		}
		n, err := baseline.New(cfg, kps[id], reg, net.Endpoint(id), clock.Real{})
		if err != nil {
			return nil, err
		}
		reader := bus.NewReader(s.faultsFor(i), s.Seed+int64(i))
		nodes = append(nodes, n)
		readers = append(readers, reader)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for i, n := range nodes {
		n.Start()
		n.RunBus(ctx, readers[i])
	}

	runtime.GC()
	memBefore := metrics.SampleMemory()
	start := time.Now()
	var faultAt time.Duration

	ticker := time.NewTicker(s.scaled(s.BusCycle))
	defer ticker.Stop()
	for cycle := 0; cycle < s.Cycles; cycle++ {
		<-ticker.C
		bus.Tick()
		if s.KillPrimaryAtCycle > 0 && cycle == s.KillPrimaryAtCycle {
			faultAt = time.Since(start)
			net.Isolate(0)
		}
	}
	time.Sleep(2 * s.scaled(s.ClientTimeout))
	duration := time.Since(start)
	memAfter := metrics.SampleMemory()

	res := &Result{
		Scenario: s,
		Duration: duration,
		FaultAt:  faultAt,
		Blocks:   nodes[1].Store().HeadIndex(),
	}

	agg := &metrics.Latency{}
	for i, n := range nodes {
		if s.KillPrimaryAtCycle > 0 && i == 0 {
			continue
		}
		for _, ts := range n.Latency().TimedSamples() {
			agg.Record(ts.D * time.Duration(s.TimeScale))
			res.Timeline = append(res.Timeline, TimelinePoint{
				Since:   ts.At.Sub(start),
				Latency: ts.D * time.Duration(s.TimeScale),
			})
		}
	}
	res.Latency = agg.Stats()

	var bytesTotal, msgsTotal uint64
	var cpuTotal float64
	for _, id := range ids {
		snap := net.Endpoint(id).Counters().Snapshot()
		nodeSnap := nodes[id].Counters().Snapshot()
		bytesTotal += snap.BytesSent
		msgsTotal += snap.MsgsSent + snap.MsgsReceived
		work := metrics.CounterSnapshot{
			MsgsSent:      snap.MsgsSent,
			MsgsReceived:  snap.MsgsReceived,
			BytesSent:     snap.BytesSent,
			BytesReceived: snap.BytesReceived,
			Signatures:    snap.MsgsSent + nodeSnap.Signatures,
			Verifications: snap.MsgsReceived,
		}
		cpuTotal += work.CPUWorkUnits()
	}
	seconds := duration.Seconds()
	res.NetBytesPerNodePerSec = float64(bytesTotal) / float64(s.Nodes) / seconds
	res.MsgsPerNode = float64(msgsTotal) / float64(s.Nodes)
	res.CPUWorkPerNode = cpuTotal / float64(s.Nodes)
	res.AllocPerNode = (memAfter.TotalAlloc - memBefore.TotalAlloc) / uint64(s.Nodes)
	res.HeapAlloc = memAfter.HeapAlloc
	res.Ordered = nodes[1].Counters().Snapshot().Requests
	return res, nil
}

// isPrePrepare matches the PBFT preprepare wire tag without decoding.
func isPrePrepare(data []byte) bool {
	return len(data) >= 2 && data[0] == 0x10 && data[1] == 0x00
}

// fabricator injects fabricated requests from a faulty backup (Fig 9a): the
// node broadcasts well-signed requests whose payload no bus ever carried.
type fabricator struct {
	scenario Scenario
	kp       *crypto.KeyPair
	ep       *transport.Endpoint
	rng      *rand.Rand
	count    int
}

func newFabricator(s Scenario, kps map[crypto.NodeID]*crypto.KeyPair, net *transport.Network) *fabricator {
	if s.FabricateRate <= 0 {
		return nil
	}
	id := crypto.NodeID(s.FabricateNode)
	return &fabricator{
		scenario: s,
		kp:       kps[id],
		ep:       net.Endpoint(id),
		rng:      rand.New(rand.NewSource(s.Seed + 77)),
	}
}

func (f *fabricator) maybeInject(cycle int) {
	if f.rng.Float64() >= f.scenario.FabricateRate {
		return
	}
	f.count++
	req := pbft.Request{
		Payload: []byte(fmt.Sprintf("fabricated-%d-%d", cycle, f.count)),
	}
	pbft.SignRequest(&req, f.kp)
	_ = f.ep.Broadcast(wire.Marshal(&core.ZCRequest{Req: req}))
}
