package testbed

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/mvb"
	"zugchain/internal/node"
	"zugchain/internal/obsv"
	"zugchain/internal/pbft"
	"zugchain/internal/transport"
)

// Crash schedules one replica kill and (optionally) its restart from the
// same data dir.
type Crash struct {
	// Node is the replica index to kill.
	Node int
	// KillAtCycle is the bus cycle at which the process dies.
	KillAtCycle int
	// RestartAtCycle, when > KillAtCycle, restarts the replica from its
	// data dir at that cycle; zero leaves it dead.
	RestartAtCycle int
}

// Partition schedules a symmetric network partition between two replicas.
type Partition struct {
	A, B int
	// AtCycle cuts the link; HealAtCycle (when > AtCycle) restores it.
	AtCycle     int
	HealAtCycle int
}

// ChaosScenario drives a ZugChain cluster through crash-restarts and
// network partitions while the transport injects seeded drop/delay/
// duplicate faults — the §III-D fault model plus fail-recovery.
type ChaosScenario struct {
	// Nodes, BusCycle, Cycles, BlockSize, PayloadSize, timeouts, TimeScale
	// and Seed mean the same as in Scenario.
	Nodes       int
	BusCycle    time.Duration
	Cycles      int
	BlockSize   uint64
	PayloadSize int
	SoftTimeout time.Duration
	HardTimeout time.Duration
	ViewTimeout time.Duration
	TimeScale   int
	Seed        int64
	// DataRoot is the directory holding one data dir per replica; crashed
	// replicas restart from theirs. Required.
	DataRoot string
	// NetFaults configures the fault-injecting transport wrapper every
	// replica sends through.
	NetFaults transport.FaultConfig
	// Crashes and Partitions are the fault schedule.
	Crashes    []Crash
	Partitions []Partition
	// StateRetryInterval overrides the node's state-transfer retry base
	// (scaled); zero keeps the node default.
	StateRetryInterval time.Duration
}

func (s *ChaosScenario) applyDefaults() {
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.BusCycle == 0 {
		s.BusCycle = 64 * time.Millisecond
	}
	if s.Cycles == 0 {
		s.Cycles = 100
	}
	if s.BlockSize == 0 {
		s.BlockSize = 10
	}
	if s.TimeScale <= 0 {
		s.TimeScale = 1
	}
	if s.SoftTimeout == 0 {
		s.SoftTimeout = 250 * time.Millisecond
	}
	if s.HardTimeout == 0 {
		s.HardTimeout = 250 * time.Millisecond
	}
	if s.ViewTimeout == 0 {
		s.ViewTimeout = 500 * time.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
}

func (s *ChaosScenario) scaled(d time.Duration) time.Duration {
	return d / time.Duration(s.TimeScale)
}

// RestartReport captures what one crash-restarted replica recovered.
type RestartReport struct {
	Node int
	// PreCrashView is the replica's PBFT view just before it was killed.
	PreCrashView uint64
	// Recovery is what the restarted node reconstructed from disk.
	Recovery node.RecoveryInfo
}

// ChaosResult summarizes a chaos run. The harness extracts everything the
// assertions need before tearing the cluster down.
type ChaosResult struct {
	// MinHeight / MaxHeight are the final chain heights across replicas
	// alive at the end.
	MinHeight, MaxHeight uint64
	// Diverged is empty when all alive replicas hold identical blocks over
	// [1, MinHeight]; otherwise it describes the first divergence.
	Diverged string
	// DuplicateLogs counts payload digests logged more than once within
	// any single chain — the double-LOG a recovery bug would produce.
	DuplicateLogs int
	// Restarts reports each crash-restart, in schedule order.
	Restarts []RestartReport
	// FaultStats aggregates the injected network faults per replica index
	// (final incarnation).
	FaultStats []transport.FaultStats
	// Journals holds each replica's consensus event journal at teardown
	// (nil for replicas dead at the end) — what /eventz would have served.
	Journals [][]obsv.Event
}

// CountEvents tallies journal events of one kind across all replicas.
func (r *ChaosResult) CountEvents(kind obsv.EventKind) int {
	n := 0
	for _, events := range r.Journals {
		for _, e := range events {
			if e.Kind == kind {
				n++
			}
		}
	}
	return n
}

// chaosCluster is the mutable run state of RunChaos.
type chaosCluster struct {
	s       ChaosScenario
	net     *transport.Network
	bus     *mvb.Bus
	ids     []crypto.NodeID
	kps     map[crypto.NodeID]*crypto.KeyPair
	reg     *crypto.Registry
	nodes   []*node.Node
	faulty  []*transport.Faulty
	cancels []context.CancelFunc
	incarn  []int64
	// cut tracks active partitions so a restarted replica's fresh wrapper
	// re-blocks its partitioned peers.
	cut map[[2]int]bool
}

func (c *chaosCluster) nodeConfig(i int) node.Config {
	s := c.s
	return node.Config{
		ID:                 c.ids[i],
		Replicas:           c.ids,
		BlockSize:          s.BlockSize,
		DataDir:            filepath.Join(s.DataRoot, fmt.Sprintf("node-%d", i)),
		SoftTimeout:        s.scaled(s.SoftTimeout),
		HardTimeout:        s.scaled(s.HardTimeout),
		ViewTimeout:        s.scaled(s.ViewTimeout),
		StateRetryInterval: s.scaled(s.StateRetryInterval),
	}
}

// startNode builds (or rebuilds) replica i on a fresh transport attachment,
// re-applying any partitions it is on one side of.
func (c *chaosCluster) startNode(i int) (*node.Node, error) {
	id := c.ids[i]
	f := transport.NewFaulty(c.net.Endpoint(id), c.ids, c.s.NetFaults, c.s.Seed+int64(i)+c.incarn[i]*1000)
	for pair := range c.cut {
		if pair[0] == i {
			f.Partition(c.ids[pair[1]])
		}
		if pair[1] == i {
			f.Partition(c.ids[pair[0]])
		}
	}
	n, err := node.New(c.nodeConfig(i), c.kps[id], c.reg, f, clock.Real{})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.nodes[i] = n
	c.faulty[i] = f
	c.cancels[i] = cancel
	c.incarn[i]++
	n.Start()
	n.RunBus(ctx, c.bus.NewReader(mvb.FaultConfig{}, c.s.Seed+int64(i)+c.incarn[i]*1000))
	return n, nil
}

// killNode stops replica i and releases its network attachment; only its
// data dir survives.
func (c *chaosCluster) killNode(i int) {
	c.cancels[i]()
	c.nodes[i].Stop()
	c.nodes[i] = nil
	c.faulty[i] = nil
	c.net.Remove(c.ids[i])
}

func (c *chaosCluster) setPartition(p Partition, on bool) {
	key := [2]int{p.A, p.B}
	if on {
		c.cut[key] = true
	} else {
		delete(c.cut, key)
	}
	if fa := c.faulty[p.A]; fa != nil {
		if on {
			fa.Partition(c.ids[p.B])
		} else {
			fa.Heal(c.ids[p.B])
		}
	}
	if fb := c.faulty[p.B]; fb != nil {
		if on {
			fb.Partition(c.ids[p.A])
		} else {
			fb.Heal(c.ids[p.A])
		}
	}
}

// RunChaos executes a chaos scenario: the cluster orders bus traffic while
// the schedule kills, restarts, partitions, and heals replicas, then waits
// for the survivors to converge and reports what they agree on.
func RunChaos(s ChaosScenario) (*ChaosResult, error) {
	return runChaosInto(s, &chaosCluster{})
}

func runChaosInto(s ChaosScenario, c *chaosCluster) (*ChaosResult, error) {
	s.applyDefaults()
	if s.DataRoot == "" {
		return nil, fmt.Errorf("testbed: chaos scenario needs a DataRoot")
	}

	*c = chaosCluster{
		s:       s,
		net:     transport.NewNetwork(transport.WithSeed(s.Seed)),
		bus:     buildBus(Scenario{Seed: s.Seed, PayloadSize: s.PayloadSize, BusCycle: s.BusCycle, TimeScale: s.TimeScale}),
		nodes:   make([]*node.Node, s.Nodes),
		faulty:  make([]*transport.Faulty, s.Nodes),
		cancels: make([]context.CancelFunc, s.Nodes),
		incarn:  make([]int64, s.Nodes),
		cut:     make(map[[2]int]bool),
	}
	c.ids, c.kps, c.reg = buildKeys(s.Nodes)
	defer c.net.Close()
	defer func() {
		for i := range c.nodes {
			if c.nodes[i] != nil {
				c.cancels[i]()
				c.nodes[i].Stop()
			}
		}
	}()
	for i := range c.ids {
		if _, err := c.startNode(i); err != nil {
			return nil, err
		}
	}

	res := &ChaosResult{}
	preViews := make(map[int]uint64)

	ticker := time.NewTicker(s.scaled(s.BusCycle))
	defer ticker.Stop()
	for cycle := 0; cycle < s.Cycles; cycle++ {
		<-ticker.C
		c.bus.Tick()
		for _, p := range s.Partitions {
			if p.AtCycle == cycle {
				c.setPartition(p, true)
			}
			if p.HealAtCycle == cycle && p.HealAtCycle > p.AtCycle {
				c.setPartition(p, false)
			}
		}
		for _, cr := range s.Crashes {
			if cr.KillAtCycle == cycle && c.nodes[cr.Node] != nil {
				var view uint64
				c.nodes[cr.Node].Runner().Inspect(func(e *pbft.Engine) {
					view, _, _ = e.ViewState()
				})
				preViews[cr.Node] = view
				c.killNode(cr.Node)
			}
			if cr.RestartAtCycle == cycle && cr.RestartAtCycle > cr.KillAtCycle && c.nodes[cr.Node] == nil {
				n, err := c.startNode(cr.Node)
				if err != nil {
					return nil, fmt.Errorf("testbed: restart node %d: %w", cr.Node, err)
				}
				res.Restarts = append(res.Restarts, RestartReport{
					Node:         cr.Node,
					PreCrashView: preViews[cr.Node],
					Recovery:     n.Recovery(),
				})
			}
		}
	}

	// Convergence: wait for every alive replica to reach the tallest chain
	// (restarted ones catch up via state transfer).
	deadline := time.Now().Add(10*s.scaled(s.ViewTimeout) + 5*time.Second)
	for {
		min, max := c.heights()
		if min == max && max > 0 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	res.MinHeight, res.MaxHeight = c.heights()
	res.Diverged = c.compareChains(res.MinHeight)
	res.DuplicateLogs = c.countDuplicateLogs()
	res.FaultStats = make([]transport.FaultStats, s.Nodes)
	for i, f := range c.faulty {
		if f != nil {
			res.FaultStats[i] = f.Stats()
		}
	}
	res.Journals = make([][]obsv.Event, s.Nodes)
	for i, n := range c.nodes {
		if n != nil {
			res.Journals[i] = n.Obs().Journal.Events()
		}
	}
	return res, nil
}

func (c *chaosCluster) heights() (min, max uint64) {
	first := true
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		h := n.Store().HeadIndex()
		if first || h < min {
			min = h
		}
		if first || h > max {
			max = h
		}
		first = false
	}
	return min, max
}

// compareChains returns "" when all alive replicas hold identical blocks
// over [1, height], else a description of the first divergence.
func (c *chaosCluster) compareChains(height uint64) string {
	var ref *node.Node
	var refIdx int
	for i, n := range c.nodes {
		if n != nil {
			ref, refIdx = n, i
			break
		}
	}
	if ref == nil {
		return "no replicas alive"
	}
	for i, n := range c.nodes {
		if n == nil || n == ref {
			continue
		}
		for idx := uint64(1); idx <= height; idx++ {
			a, errA := ref.Store().Get(idx)
			b, errB := n.Store().Get(idx)
			if errA != nil || errB != nil {
				return fmt.Sprintf("block %d: node %d: %v, node %d: %v", idx, refIdx, errA, i, errB)
			}
			if a.Hash() != b.Hash() {
				return fmt.Sprintf("block %d differs between node %d and node %d", idx, refIdx, i)
			}
		}
	}
	return ""
}

// countDuplicateLogs counts payload digests logged more than once within a
// single chain, across all alive replicas.
func (c *chaosCluster) countDuplicateLogs() int {
	dups := 0
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		seen := make(map[crypto.Digest]bool)
		store := n.Store()
		for idx := store.Base() + 1; idx <= store.HeadIndex(); idx++ {
			b, err := store.Get(idx)
			if err != nil {
				continue
			}
			for _, e := range b.Entries {
				d := crypto.Hash(e.Payload)
				if seen[d] {
					dups++
				}
				seen[d] = true
			}
		}
	}
	return dups
}
