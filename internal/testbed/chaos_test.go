package testbed

import (
	"testing"
	"time"

	"zugchain/internal/obsv"
	"zugchain/internal/transport"
)

// chaosBase is a fast, real-clock chaos scenario: 20 ms bus cycles, tight
// consensus timeouts, ~2.4 s of scheduled run before convergence. Under
// the race detector everything — signing, hashing, channel handoffs —
// slows by an order of magnitude, so the same event script runs on a 3×
// stretched clock to keep the timeouts honest.
func chaosBase(t *testing.T) ChaosScenario {
	t.Helper()
	scale := time.Duration(1)
	if RaceEnabled {
		scale = 3
	}
	return ChaosScenario{
		Nodes:              4,
		BusCycle:           scale * 20 * time.Millisecond,
		Cycles:             120,
		BlockSize:          10,
		SoftTimeout:        scale * 150 * time.Millisecond,
		HardTimeout:        scale * 150 * time.Millisecond,
		ViewTimeout:        scale * 300 * time.Millisecond,
		StateRetryInterval: scale * 40 * time.Millisecond,
		Seed:               7,
		DataRoot:           t.TempDir(),
	}
}

func checkChaosInvariants(t *testing.T, res *ChaosResult, minHeight uint64) {
	t.Helper()
	if res.MinHeight < minHeight {
		t.Errorf("cluster ordered only %d blocks, want >= %d (liveness)", res.MinHeight, minHeight)
	}
	if res.Diverged != "" {
		t.Errorf("chains diverged: %s", res.Diverged)
	}
	if res.DuplicateLogs != 0 {
		t.Errorf("%d payloads double-LOGged", res.DuplicateLogs)
	}
	for _, r := range res.Restarts {
		if r.Recovery.WALRecords == 0 {
			t.Errorf("node %d restarted without replaying WAL records", r.Node)
		}
		if r.Recovery.RestoredView < r.PreCrashView {
			t.Errorf("node %d restored view %d below pre-crash view %d (equivocation risk)",
				r.Node, r.Recovery.RestoredView, r.PreCrashView)
		}
	}
}

// TestChaosBackupCrashRestartWithPartitions crash-restarts a backup while a
// partition separates two other replicas and the transport drops, delays,
// and duplicates messages: f=1 crash plus asynchrony, within the §III-A
// fault budget. The cluster must keep ordering and the restarted replica
// must rejoin on the agreed chain without double-logging.
func TestChaosBackupCrashRestartWithPartitions(t *testing.T) {
	s := chaosBase(t)
	s.NetFaults = transport.FaultConfig{
		DropRate:      0.02,
		DelayRate:     0.2,
		MaxDelay:      5 * time.Millisecond,
		DuplicateRate: 0.1,
	}
	s.Crashes = []Crash{{Node: 3, KillAtCycle: 30, RestartAtCycle: 70}}
	s.Partitions = []Partition{{A: 1, B: 2, AtCycle: 45, HealAtCycle: 60}}

	res, err := RunChaos(s)
	if err != nil {
		t.Fatal(err)
	}
	checkChaosInvariants(t, res, 3)
	if len(res.Restarts) != 1 {
		t.Fatalf("expected 1 restart, got %d", len(res.Restarts))
	}
	if res.Restarts[0].Recovery.RestoredSeq == 0 {
		t.Error("restarted backup recovered no executed sequence")
	}
	var injected uint64
	for _, fs := range res.FaultStats {
		injected += fs.Dropped + fs.Delayed + fs.Duplicated
	}
	if injected == 0 {
		t.Error("fault injector was configured but injected nothing")
	}
	// The restarted backup's journal must carry its recovery event — the
	// evidence /eventz would show an operator after the crash.
	found := false
	for _, e := range res.Journals[3] {
		if e.Kind == obsv.EventRecovery {
			found = true
		}
	}
	if !found {
		t.Errorf("restarted backup journaled no recovery event: %v", res.Journals[3])
	}
}

// TestChaosPrimaryCrashRestart kills the view-0 primary. The backups view-
// change past it; the restarted primary comes back in a stale view and must
// be brought forward by a peer re-sending its NewView certificate, then
// catch up via state transfer.
func TestChaosPrimaryCrashRestart(t *testing.T) {
	s := chaosBase(t)
	s.Crashes = []Crash{{Node: 0, KillAtCycle: 30, RestartAtCycle: 80}}

	res, err := RunChaos(s)
	if err != nil {
		t.Fatal(err)
	}
	checkChaosInvariants(t, res, 3)
	if len(res.Restarts) != 1 {
		t.Fatalf("expected 1 restart, got %d", len(res.Restarts))
	}
	// Killing the view-0 primary forces the backups through a view change:
	// the journals must record the ViewChange broadcasts and the resulting
	// primary election (a new-primary event with View > 0).
	if got := res.CountEvents(obsv.EventViewChangeSent); got == 0 {
		t.Error("no replica journaled a view-change-sent event after the primary died")
	}
	elected := false
	for _, events := range res.Journals {
		for _, e := range events {
			if e.Kind == obsv.EventNewPrimary && e.View > 0 {
				elected = true
			}
		}
	}
	if !elected {
		t.Errorf("no replica journaled a primary election beyond view 0; journals: %v", res.Journals)
	}
	if got := res.CountEvents(obsv.EventRecovery); got == 0 {
		t.Error("restarted primary journaled no recovery event")
	}
}
