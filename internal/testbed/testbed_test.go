package testbed

import (
	"testing"
	"time"

	"zugchain/internal/mvb"
)

// quickScenario returns a small, fast scenario for tests. Under the race
// detector the time compression is relaxed: instrumented crypto is too slow
// for 8 ms bus cycles.
func quickScenario(system System) Scenario {
	s := Scenario{
		System:    system,
		BusCycle:  64 * time.Millisecond,
		Cycles:    40,
		TimeScale: 8, // 8 ms cycles, 31.25 ms timeouts
	}
	if RaceEnabled {
		s.TimeScale = 2
		s.Cycles = 25
	}
	return s
}

func TestRunZugChainScenario(t *testing.T) {
	res, err := Run(quickScenario(ZugChain))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count == 0 {
		t.Fatal("no latency samples")
	}
	if res.Ordered == 0 {
		t.Error("no requests ordered")
	}
	if res.Blocks == 0 {
		t.Error("no blocks built")
	}
	if res.NetBytesPerNodePerSec <= 0 || res.CPUWorkPerNode <= 0 {
		t.Errorf("resource metrics empty: %+v", res)
	}
	// Duplicate filtering must have removed the other 3 nodes' copies.
	if res.Duplicates == 0 {
		t.Error("no duplicates filtered despite 4 readers")
	}
}

func TestRunBaselineScenario(t *testing.T) {
	res, err := Run(quickScenario(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count == 0 {
		t.Fatal("no latency samples")
	}
	if res.Ordered == 0 {
		t.Error("no requests ordered")
	}
}

func TestBaselineOrdersMoreThanZugChain(t *testing.T) {
	if RaceEnabled {
		t.Skip("throughput comparison is meaningless under the race detector's slowdown")
	}
	zc, err := Run(quickScenario(ZugChain))
	if err != nil {
		t.Fatal(err)
	}
	bl, err := Run(quickScenario(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: identical input is ordered up to n=4 times in
	// the baseline, once in ZugChain. Allow slack for drops/timing.
	if bl.Ordered < zc.Ordered*2 {
		t.Errorf("baseline ordered %d, zugchain %d: duplication factor lost",
			bl.Ordered, zc.Ordered)
	}
	if bl.NetBytesPerNodePerSec < zc.NetBytesPerNodePerSec*15/10 {
		t.Errorf("baseline net %v B/s vs zugchain %v B/s: expected ~4x",
			bl.NetBytesPerNodePerSec, zc.NetBytesPerNodePerSec)
	}
}

func TestFabricationScenario(t *testing.T) {
	if RaceEnabled {
		t.Skip("throughput comparison is meaningless under the race detector's slowdown")
	}
	s := quickScenario(ZugChain)
	s.FabricateRate = 1.0
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(quickScenario(ZugChain))
	if err != nil {
		t.Fatal(err)
	}
	// Fabricated requests are still ordered (benign nodes must be able to
	// propose uniquely received messages), increasing total load.
	if res.Ordered <= clean.Ordered {
		t.Errorf("fabrication did not add ordered requests: %d vs %d",
			res.Ordered, clean.Ordered)
	}
}

func TestPrimaryDelayScenario(t *testing.T) {
	s := quickScenario(ZugChain)
	s.PrimaryDelay = 250 * time.Millisecond // scaled to ~31ms > soft timeout
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(quickScenario(ZugChain))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Median <= clean.Latency.Median {
		t.Errorf("delayed primary did not raise latency: %v vs %v",
			res.Latency.Median, clean.Latency.Median)
	}
}

func TestViewChangeScenario(t *testing.T) {
	s := quickScenario(ZugChain)
	s.Cycles = 80
	s.KillPrimaryAtCycle = 30
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultAt == 0 {
		t.Fatal("fault was not injected")
	}
	// Ordering must resume after the view change: some decide later than
	// the fault plus the (scaled) soft+hard timeout.
	recoveryCutoff := res.FaultAt + (500*time.Millisecond)/time.Duration(s.TimeScale)
	resumed := false
	for _, p := range res.Timeline {
		if p.Since > recoveryCutoff {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("no requests ordered after the view change")
	}
}

func TestBusFaultScenario(t *testing.T) {
	s := quickScenario(ZugChain)
	s.BusFaults = []mvb.FaultConfig{
		{DropRate: 0.3},
		{BitFlipRate: 0.2},
		{},
		{},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ordered == 0 || res.Blocks == 0 {
		t.Errorf("faulty-bus run produced nothing: %+v", res)
	}
}
