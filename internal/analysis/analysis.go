// Package analysis implements the post-operational lab analysis the paper
// defers out of the on-train recorder (§III-B): after export, investigators
// reconstruct the chain of events and detect what the recorder deliberately
// logs without judging — duplicates re-logged outside the filter window,
// data ordered long after its bus cycle ("out of order data that is
// included long after its proposed creation should be regarded sceptical"),
// records attributable to a single node only (fabrication candidates), and
// physically implausible values from bus corruption.
package analysis

import (
	"fmt"
	"sort"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/signal"
)

// FindingKind classifies an analysis finding.
type FindingKind uint8

// Finding kinds.
const (
	// FindingDuplicate is a payload logged more than once (the original
	// fell outside the on-train filter window, §III-C "Faulty Primary").
	FindingDuplicate FindingKind = iota + 1
	// FindingLateOrder is a record whose bus cycle is far older than the
	// cycles ordered around it.
	FindingLateOrder
	// FindingSingleSource is a record kind exclusively attested by one
	// node — a fabrication candidate if that node is suspect.
	FindingSingleSource
	// FindingImplausible is a physically impossible signal value,
	// indicating source-side corruption (bus bit flips).
	FindingImplausible
	// FindingUnparseable is an entry whose payload is not a signal
	// record.
	FindingUnparseable
)

var findingNames = map[FindingKind]string{
	FindingDuplicate:    "duplicate",
	FindingLateOrder:    "late-order",
	FindingSingleSource: "single-source",
	FindingImplausible:  "implausible-value",
	FindingUnparseable:  "unparseable",
}

// String names the finding kind.
func (k FindingKind) String() string {
	if s, ok := findingNames[k]; ok {
		return s
	}
	return fmt.Sprintf("finding(%d)", uint8(k))
}

// Finding is one suspicious observation in the exported chain.
type Finding struct {
	Kind   FindingKind
	Block  uint64
	Seq    uint64
	Cycle  uint64
	Origin crypto.NodeID
	Detail string
}

// Config tunes the analysis heuristics.
type Config struct {
	// LateOrderSlack is how many cycles behind the running maximum a
	// record may be before it is flagged (bus retransmissions legitimately
	// shift data by a few cycles).
	LateOrderSlack uint64
	// MaxSpeedKmh bounds plausible speed readings.
	MaxSpeedKmh float64
	// MinOriginShare flags an origin as single-source when it contributed
	// 100% of some records while others contributed none — expressed as
	// the minimum number of exclusive records before flagging.
	MinExclusiveRecords int
}

func (c *Config) applyDefaults() {
	if c.LateOrderSlack == 0 {
		c.LateOrderSlack = 50
	}
	if c.MaxSpeedKmh == 0 {
		c.MaxSpeedKmh = 500
	}
	if c.MinExclusiveRecords == 0 {
		c.MinExclusiveRecords = 5
	}
}

// Report is the outcome of analyzing a chain.
type Report struct {
	Blocks   uint64
	Records  int
	Findings []Finding
	// Timeline is the reconstructed event sequence in ordering
	// (sequence-number) order.
	Timeline []Event
	// ByOrigin counts logged records per reading node; skew indicates
	// nodes with privileged or fabricated input.
	ByOrigin map[crypto.NodeID]int
}

// Event is one reconstructed discrete juridical event.
type Event struct {
	Seq    uint64
	Cycle  uint64
	Origin crypto.NodeID
	Kind   signal.Kind
	Code   uint32
	Value  float64
}

// Analyze verifies and inspects the chain in store between its base and
// head. The chain's integrity is a precondition: tampered chains are
// rejected outright.
func Analyze(store *blockchain.Store, cfg Config) (*Report, error) {
	cfg.applyDefaults()
	if err := store.VerifyChain(); err != nil {
		return nil, fmt.Errorf("analysis: chain integrity: %w", err)
	}

	report := &Report{
		Blocks:   store.HeadIndex(),
		ByOrigin: make(map[crypto.NodeID]int),
	}
	seenPayload := make(map[crypto.Digest]uint64) // digest -> first seq
	var maxCycle uint64

	for idx := store.Base(); idx <= store.HeadIndex(); idx++ {
		b, err := store.Get(idx)
		if err != nil {
			continue // compacted to header: body unavailable, linkage already verified
		}
		for _, e := range b.Entries {
			report.Records++
			report.ByOrigin[e.Origin]++

			digest := crypto.Hash(e.Payload)
			if first, dup := seenPayload[digest]; dup {
				report.Findings = append(report.Findings, Finding{
					Kind: FindingDuplicate, Block: idx, Seq: e.Seq, Origin: e.Origin,
					Detail: fmt.Sprintf("payload first logged at seq %d", first),
				})
			} else {
				seenPayload[digest] = e.Seq
			}

			rec, err := signal.UnmarshalRecord(e.Payload)
			if err != nil {
				report.Findings = append(report.Findings, Finding{
					Kind: FindingUnparseable, Block: idx, Seq: e.Seq, Origin: e.Origin,
					Detail: err.Error(),
				})
				continue
			}

			if maxCycle > cfg.LateOrderSlack && rec.Cycle < maxCycle-cfg.LateOrderSlack {
				report.Findings = append(report.Findings, Finding{
					Kind: FindingLateOrder, Block: idx, Seq: e.Seq, Cycle: rec.Cycle,
					Origin: e.Origin,
					Detail: fmt.Sprintf("cycle %d ordered while cycle %d was current", rec.Cycle, maxCycle),
				})
			}
			if rec.Cycle > maxCycle {
				maxCycle = rec.Cycle
			}

			for _, s := range rec.Signals {
				if s.Kind == signal.KindSpeed && (s.Value < 0 || s.Value > cfg.MaxSpeedKmh) {
					report.Findings = append(report.Findings, Finding{
						Kind: FindingImplausible, Block: idx, Seq: e.Seq, Cycle: rec.Cycle,
						Origin: e.Origin,
						Detail: fmt.Sprintf("speed %.4g km/h", s.Value),
					})
				}
				switch s.Kind {
				case signal.KindEmergencyBrake, signal.KindATPCommand, signal.KindDoorState:
					report.Timeline = append(report.Timeline, Event{
						Seq: e.Seq, Cycle: rec.Cycle, Origin: e.Origin,
						Kind: s.Kind, Code: s.Discrete, Value: s.Value,
					})
				}
			}
		}
	}
	sort.Slice(report.Timeline, func(i, j int) bool {
		return report.Timeline[i].Seq < report.Timeline[j].Seq
	})

	report.Findings = append(report.Findings, singleSourceFindings(report.ByOrigin, cfg)...)
	return report, nil
}

// singleSourceFindings flags fabrication candidates. Under normal filtering
// the primary of the day attests almost every record (it proposes its own
// bus reads); backups only attest records that ONLY they received, rescued
// via soft-timeout broadcasts — rare on a shared bus. A backup attesting
// many records therefore claims a lot of uniquely received data, which is
// exactly the fabricated-request pattern of §III-C fault (iii) and Fig 9.
func singleSourceFindings(byOrigin map[crypto.NodeID]int, cfg Config) []Finding {
	if len(byOrigin) <= 1 {
		return nil // a single-origin chain has no comparison basis
	}
	total := 0
	max := 0
	var dominant crypto.NodeID
	for origin, n := range byOrigin {
		total += n
		if n > max {
			max = n
			dominant = origin
		}
	}
	var findings []Finding
	for origin, n := range byOrigin {
		if origin == dominant {
			continue
		}
		if n >= cfg.MinExclusiveRecords && n*5 >= total {
			findings = append(findings, Finding{
				Kind:   FindingSingleSource,
				Origin: origin,
				Detail: fmt.Sprintf("backup %v attested %d of %d records as uniquely received", origin, n, total),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Origin < findings[j].Origin })
	return findings
}
