package analysis

import (
	"fmt"
	"testing"

	"zugchain/internal/blockchain"
	"zugchain/internal/crypto"
	"zugchain/internal/signal"
)

// chainBuilder assembles a test chain of signal records.
type chainBuilder struct {
	t       *testing.T
	store   *blockchain.Store
	builder *blockchain.Builder
	seq     uint64
}

func newChainBuilder(t *testing.T) *chainBuilder {
	t.Helper()
	store, err := blockchain.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	return &chainBuilder{
		t:       t,
		store:   store,
		builder: blockchain.NewBuilder(blockchain.Genesis(), 5),
	}
}

func (cb *chainBuilder) add(origin crypto.NodeID, rec signal.Record) {
	cb.t.Helper()
	cb.seq++
	if b := cb.builder.Add(blockchain.Entry{
		Seq: cb.seq, Origin: origin, Payload: rec.Marshal(),
	}); b != nil {
		if err := cb.store.Append(b); err != nil {
			cb.t.Fatal(err)
		}
	}
}

func (cb *chainBuilder) addRaw(origin crypto.NodeID, payload []byte) {
	cb.t.Helper()
	cb.seq++
	if b := cb.builder.Add(blockchain.Entry{
		Seq: cb.seq, Origin: origin, Payload: payload,
	}); b != nil {
		if err := cb.store.Append(b); err != nil {
			cb.t.Fatal(err)
		}
	}
}

func (cb *chainBuilder) finish() *blockchain.Store {
	cb.t.Helper()
	if b := cb.builder.Seal(); b != nil {
		if err := cb.store.Append(b); err != nil {
			cb.t.Fatal(err)
		}
	}
	return cb.store
}

// speedRec builds a record with one speed signal.
func speedRec(cycle uint64, speed float64) signal.Record {
	return signal.Record{Cycle: cycle, Signals: []signal.Signal{
		{Port: signal.PortSpeed, Kind: signal.KindSpeed, Value: speed, Cycle: cycle},
	}}
}

func kinds(findings []Finding) map[FindingKind]int {
	out := make(map[FindingKind]int)
	for _, f := range findings {
		out[f.Kind]++
	}
	return out
}

func TestAnalyzeCleanChain(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 25; cycle++ {
		cb.add(0, speedRec(cycle, float64(cycle)))
	}
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Findings) != 0 {
		t.Errorf("clean chain produced findings: %+v", report.Findings)
	}
	if report.Records != 25 {
		t.Errorf("records = %d", report.Records)
	}
	if report.ByOrigin[0] != 25 {
		t.Errorf("ByOrigin = %+v", report.ByOrigin)
	}
}

func TestAnalyzeDetectsDuplicate(t *testing.T) {
	cb := newChainBuilder(t)
	dup := speedRec(1, 10)
	cb.add(0, dup)
	for cycle := uint64(2); cycle < 10; cycle++ {
		cb.add(0, speedRec(cycle, float64(cycle)))
	}
	cb.add(0, dup) // re-logged outside the on-train window
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kinds(report.Findings)[FindingDuplicate] != 1 {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestAnalyzeDetectsLateOrder(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 100; cycle++ {
		cb.add(0, speedRec(cycle, 50))
	}
	cb.add(2, speedRec(3, 50.5)) // cycle 3 ordered at current cycle 99
	report, err := Analyze(cb.finish(), Config{LateOrderSlack: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(report.Findings)
	if got[FindingLateOrder] != 1 {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestAnalyzeLateOrderSlackTolerated(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 60; cycle++ {
		cb.add(0, speedRec(cycle, 50))
	}
	cb.add(1, speedRec(30, 50.5)) // 29 cycles late: inside the slack of 50
	report, err := Analyze(cb.finish(), Config{LateOrderSlack: 50})
	if err != nil {
		t.Fatal(err)
	}
	if kinds(report.Findings)[FindingLateOrder] != 0 {
		t.Errorf("slack-tolerable reorder flagged: %+v", report.Findings)
	}
}

func TestAnalyzeDetectsImplausibleSpeed(t *testing.T) {
	cb := newChainBuilder(t)
	cb.add(0, speedRec(1, 80))
	cb.add(0, speedRec(2, 1.2e21)) // bit-flipped float
	cb.add(0, speedRec(3, -5))
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kinds(report.Findings)[FindingImplausible] != 2 {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestAnalyzeDetectsFabricationPattern(t *testing.T) {
	cb := newChainBuilder(t)
	// The primary (r0) attests the regular stream ...
	for cycle := uint64(0); cycle < 30; cycle++ {
		cb.add(0, speedRec(cycle, float64(cycle)))
	}
	// ... while backup r3 claims 15 uniquely received records (Fig 9).
	for i := 0; i < 15; i++ {
		cb.add(3, signal.Record{Cycle: uint64(30 + i), Signals: []signal.Signal{
			{Port: signal.PortATP, Kind: signal.KindATPCommand, Discrete: 1, Cycle: uint64(30 + i)},
		}})
	}
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var hit *Finding
	for i := range report.Findings {
		if report.Findings[i].Kind == FindingSingleSource {
			hit = &report.Findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("fabrication pattern not flagged: %+v", report.Findings)
	}
	if hit.Origin != 3 {
		t.Errorf("flagged %v, want r3", hit.Origin)
	}
}

func TestAnalyzeOrdinaryBackupRescuesNotFlagged(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 50; cycle++ {
		origin := crypto.NodeID(0)
		if cycle%25 == 7 { // occasional soft-timeout rescue by a backup
			origin = 2
		}
		cb.add(origin, speedRec(cycle, float64(cycle)))
	}
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kinds(report.Findings)[FindingSingleSource] != 0 {
		t.Errorf("benign rescues flagged: %+v", report.Findings)
	}
}

func TestAnalyzeUnparseablePayload(t *testing.T) {
	cb := newChainBuilder(t)
	cb.add(0, speedRec(1, 10))
	cb.addRaw(1, []byte{0xde, 0xad})
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if kinds(report.Findings)[FindingUnparseable] != 1 {
		t.Errorf("findings = %+v", report.Findings)
	}
}

func TestAnalyzeTimeline(t *testing.T) {
	cb := newChainBuilder(t)
	cb.add(0, speedRec(1, 30))
	cb.add(0, signal.Record{Cycle: 2, Signals: []signal.Signal{
		{Port: signal.PortEmergency, Kind: signal.KindEmergencyBrake, Discrete: 1, Cycle: 2},
	}})
	cb.add(1, signal.Record{Cycle: 3, Signals: []signal.Signal{
		{Port: signal.PortDoors, Kind: signal.KindDoorState, Discrete: 0x0f, Cycle: 3},
	}})
	report, err := Analyze(cb.finish(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Timeline) != 2 {
		t.Fatalf("timeline = %+v", report.Timeline)
	}
	if report.Timeline[0].Kind != signal.KindEmergencyBrake || report.Timeline[1].Kind != signal.KindDoorState {
		t.Errorf("timeline order wrong: %+v", report.Timeline)
	}
}

func TestAnalyzeRejectsTamperedChain(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 10; cycle++ {
		cb.add(0, speedRec(cycle, 1))
	}
	store := cb.finish()
	// Tamper with a block in place.
	b, err := store.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	b.Entries[0].Payload[0] ^= 1
	if _, err := Analyze(store, Config{}); err == nil {
		t.Error("tampered chain analyzed without error")
	}
}

func TestFindingKindString(t *testing.T) {
	for k := FindingDuplicate; k <= FindingUnparseable; k++ {
		if s := k.String(); s == "" || s == fmt.Sprintf("finding(%d)", uint8(k)) {
			t.Errorf("kind %d has no name", k)
		}
	}
	if FindingKind(99).String() != "finding(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestAnalyzeEmptyChain(t *testing.T) {
	store, err := blockchain.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	report, err := Analyze(store, Config{})
	if err != nil {
		t.Fatalf("Analyze(genesis-only): %v", err)
	}
	if report.Records != 0 || len(report.Findings) != 0 || len(report.Timeline) != 0 {
		t.Errorf("empty chain report = %+v", report)
	}
}

func TestAnalyzeSurvivesCompactedBlocks(t *testing.T) {
	cb := newChainBuilder(t)
	for cycle := uint64(0); cycle < 30; cycle++ {
		cb.add(0, speedRec(cycle, float64(cycle)))
	}
	store := cb.finish()
	if err := store.CompactToHeaders(3); err != nil {
		t.Fatal(err)
	}
	report, err := Analyze(store, Config{})
	if err != nil {
		t.Fatalf("Analyze over compacted chain: %v", err)
	}
	// Bodies of blocks 1-3 are gone; the remaining records still analyze.
	if report.Records == 0 {
		t.Error("no records analyzed")
	}
}
