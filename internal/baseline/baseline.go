// Package baseline implements the paper's comparison system (§V-A
// "Evaluation Setup"): PBFT with traditional client handling. Every node
// runs a client process that reads the bus and forwards each record to the
// primary as its own signed request — no payload filtering — so identical
// input read by n nodes is ordered up to n times. Requests not ordered
// within the client timeout are broadcast to all replicas and escalate to a
// view change, mirroring classic PBFT client behaviour.
package baseline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
	"zugchain/internal/mvb"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// Wire tag for the baseline client request channel (range 0x50–0x5f).
const typeClientRequest wire.Type = 0x50

func init() {
	wire.Register(typeClientRequest, func() wire.Message { return new(ClientRequest) })
}

// ClientRequest carries a baseline client's signed request to the primary
// (or, after a client timeout, to all replicas).
type ClientRequest struct {
	Req pbft.Request
}

// WireType implements wire.Message.
func (m *ClientRequest) WireType() wire.Type { return typeClientRequest }

// EncodeWire implements wire.Message.
func (m *ClientRequest) EncodeWire(e *wire.Encoder) {
	e.Bytes(m.Req.Payload)
	e.Uint32(uint32(m.Req.Origin))
	e.Bytes(m.Req.Sig)
}

// DecodeWire implements wire.Message.
func (m *ClientRequest) DecodeWire(d *wire.Decoder) {
	m.Req.Payload = d.BytesCopy()
	m.Req.Origin = crypto.NodeID(d.Uint32())
	m.Req.Sig = d.BytesCopy()
}

// Config parameterizes a baseline node.
type Config struct {
	ID       crypto.NodeID
	Replicas []crypto.NodeID
	// BlockSize is the requests-per-block/checkpoint count (10 in §V).
	BlockSize uint64
	// ClientTimeout is the client's wait before re-broadcasting and
	// suspecting (500 ms in Fig 8).
	ClientTimeout time.Duration
	// SuspectOnFirstTimeout makes the first client timeout suspect the
	// primary directly instead of re-broadcasting first — the paper's
	// Fig 8 baseline uses a single 500 ms view-change timeout.
	SuspectOnFirstTimeout bool
	// ViewTimeout is the PBFT view-change progress timeout.
	ViewTimeout time.Duration
	DataDir     string
}

func (c *Config) applyDefaults() {
	if c.BlockSize == 0 {
		c.BlockSize = pbft.DefaultCheckpointInterval
	}
	if c.ClientTimeout <= 0 {
		c.ClientTimeout = 500 * time.Millisecond
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 500 * time.Millisecond
	}
}

// Node is one baseline replica+client pair.
type Node struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry
	clk clock.Clock

	mux     *transport.Mux
	runner  *pbft.Runner
	reqChan transport.Transport
	store   *blockchain.Store
	pool    *crypto.VerifyPool

	mu      sync.Mutex
	builder *blockchain.Builder
	primary crypto.NodeID
	// open tracks this client's in-flight requests by full digest.
	open map[crypto.Digest]*pendingReq
	// seen dedups retransmitted client requests by full digest, as PBFT
	// does on "complete requests including client ids" (§VI): proposed or
	// ordered requests are not proposed again.
	seen     map[crypto.Digest]bool
	seenFIFO []crypto.Digest

	latency  *metrics.Latency
	counters *metrics.Counters

	busWG   sync.WaitGroup
	stopped sync.Once
	closed  bool
}

type pendingReq struct {
	req       pbft.Request
	submitted time.Time
	timer     clock.Timer
	cancel    chan struct{}
	stopOnce  sync.Once
	broadcast bool // already escalated once
}

func (p *pendingReq) stop() {
	p.stopOnce.Do(func() { close(p.cancel) })
}

// New assembles a baseline node.
func New(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry, tr transport.Transport, clk clock.Clock) (*Node, error) {
	cfg.applyDefaults()

	// Same crypto acceleration as a ZugChain node (verified-signature
	// cache, sign-time seeding): the baseline's client retransmissions are
	// exactly the traffic the cache absorbs, and keeping the stacks
	// symmetric keeps the experiment comparison about the protocols, not
	// about one side paying for repeat verifications.
	cc := &metrics.CryptoCounters{}
	vcache := crypto.NewVerifyCache(0, cc)
	reg = reg.Accelerated(vcache, true, cc)
	kp = kp.WithCache(vcache)

	store, err := blockchain.NewStore(cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("baseline: open store: %w", err)
	}
	n := &Node{
		cfg:      cfg,
		kp:       kp,
		reg:      reg,
		clk:      clk,
		store:    store,
		open:     make(map[crypto.Digest]*pendingReq),
		seen:     make(map[crypto.Digest]bool),
		latency:  &metrics.Latency{},
		counters: &metrics.Counters{},
	}
	n.builder = blockchain.NewBuilder(store.Head(), 1<<30)

	n.mux = transport.NewMux(tr)
	pbftChan := n.mux.Channel(0x10, 0x2f)
	n.reqChan = n.mux.Channel(0x50, 0x5f)
	n.reqChan.SetHandler(n.onClientRequest)

	engine, err := pbft.NewEngine(pbft.Config{
		ID:                 cfg.ID,
		Replicas:           cfg.Replicas,
		CheckpointInterval: cfg.BlockSize,
	}, kp, reg)
	if err != nil {
		return nil, err
	}
	// One verification pipeline shared by the PBFT runner and the client
	// request path, mirroring the ZugChain node: inbound Ed25519 checks run
	// on pool workers, not on the transport delivery goroutine.
	n.pool = crypto.NewVerifyPool(0)
	n.runner = pbft.NewRunner(engine, pbftChan, clk, (*baselineApp)(n), pbft.RunnerConfig{
		BaseViewTimeout: cfg.ViewTimeout,
		VerifyPool:      n.pool,
	})
	return n, nil
}

// Start launches the consensus runner.
func (n *Node) Start() { n.runner.Start() }

// Stop shuts down the node.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		n.mu.Lock()
		n.closed = true
		for _, p := range n.open {
			p.stop()
		}
		n.open = make(map[crypto.Digest]*pendingReq)
		n.mu.Unlock()
		n.runner.Stop()
		n.pool.Close()
		n.busWG.Wait()
	})
}

// Store exposes the node's blockchain.
func (n *Node) Store() *blockchain.Store { return n.store }

// Runner exposes the PBFT runner.
func (n *Node) Runner() *pbft.Runner { return n.runner }

// Latency exposes request receive-to-decide latency of this node's client.
func (n *Node) Latency() *metrics.Latency { return n.latency }

// Counters exposes client event counters.
func (n *Node) Counters() *metrics.Counters { return n.counters }

// HandleFrame is the baseline client path: every frame becomes this
// client's own signed request, forwarded to the primary without any
// payload-level deduplication.
func (n *Node) HandleFrame(frame mvb.Frame) {
	rec, _ := mvb.ParseFrame(frame)
	if len(rec.Signals) == 0 {
		return
	}
	out := signal.Record{Cycle: rec.Cycle, Signals: rec.Signals}
	n.Submit(out.Marshal())
}

// Submit sends one payload as a client request.
func (n *Node) Submit(payload []byte) {
	req := pbft.Request{Payload: payload}
	pbft.SignRequest(&req, n.kp)
	n.counters.AddSignature()

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	digest := req.Digest()
	p := &pendingReq{req: req, cancel: make(chan struct{}), submitted: n.clk.Now()}
	n.open[digest] = p
	primary := n.primary
	n.mu.Unlock()

	n.sendRequest(primary, req, false)
	n.armTimer(digest, p)
}

func (n *Node) armTimer(digest crypto.Digest, p *pendingReq) {
	p.timer = n.clk.NewTimer(n.cfg.ClientTimeout)
	go func() {
		select {
		case <-p.timer.C():
			select {
			case <-p.cancel:
				return
			default:
			}
			n.onClientTimeout(digest)
		case <-p.cancel:
			p.timer.Stop()
		}
	}()
}

// onClientTimeout escalates per classic PBFT: first re-broadcast the request
// to all replicas, then suspect the primary.
func (n *Node) onClientTimeout(digest crypto.Digest) {
	n.mu.Lock()
	p, ok := n.open[digest]
	if !ok || n.closed {
		n.mu.Unlock()
		return
	}
	if !p.broadcast && !n.cfg.SuspectOnFirstTimeout {
		p.broadcast = true
		primary := n.primary
		n.mu.Unlock()
		n.broadcastRequest(p.req)
		_ = primary
		n.mu.Lock()
		if _, still := n.open[digest]; still && !n.closed {
			n.armTimer(digest, p)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	// Second expiry: the primary is censoring.
	n.runner.Suspect(n.currentPrimary())
}

// markSeenLocked records a full request digest in the dedup window.
func (n *Node) markSeenLocked(d crypto.Digest) {
	if n.seen[d] {
		return
	}
	n.seen[d] = true
	n.seenFIFO = append(n.seenFIFO, d)
	const window = 4096
	for len(n.seenFIFO) > window {
		delete(n.seen, n.seenFIFO[0])
		n.seenFIFO = n.seenFIFO[1:]
	}
}

// propose submits to the local engine unless the full request was already
// proposed or ordered here.
func (n *Node) propose(req pbft.Request) {
	d := req.Digest()
	n.mu.Lock()
	if n.seen[d] {
		n.mu.Unlock()
		return
	}
	n.markSeenLocked(d)
	n.mu.Unlock()
	n.runner.Propose(req)
}

func (n *Node) currentPrimary() crypto.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

func (n *Node) sendRequest(to crypto.NodeID, req pbft.Request, rebroadcast bool) {
	data := wire.Marshal(&ClientRequest{Req: req})
	n.counters.AddSent(len(data))
	if to == n.cfg.ID {
		// Client co-located with the primary: hand over directly.
		n.propose(req)
		return
	}
	_ = n.reqChan.Send(to, data)
	_ = rebroadcast
}

func (n *Node) broadcastRequest(req pbft.Request) {
	data := wire.Marshal(&ClientRequest{Req: req})
	n.counters.AddSent(len(data))
	_ = n.reqChan.Broadcast(data)
	// The local replica also counts as a broadcast recipient.
	n.mu.Lock()
	isPrimary := n.primary == n.cfg.ID
	n.mu.Unlock()
	if isPrimary {
		n.propose(req)
	}
}

// onClientRequest is the replica side: requests from clients are proposed
// if we are the primary, otherwise relayed to it.
func (n *Node) onClientRequest(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return
	}
	cr, ok := msg.(*ClientRequest)
	if !ok {
		return
	}
	// The signature check runs on the verify pool (cache-aware via the
	// accelerated registry: a retransmitted request costs a map lookup, not
	// a scalar multiplication); the continuation re-reads node state because
	// the primary may have changed while the check was queued.
	n.pool.Submit(func() {
		if pbft.VerifyRequest(&cr.Req, n.reg) != nil {
			return
		}
		n.mu.Lock()
		primary := n.primary
		n.mu.Unlock()
		if primary == n.cfg.ID {
			n.propose(cr.Req)
			return
		}
		if from == cr.Req.Origin {
			// Broadcast from the client itself: relay toward the primary so
			// a censored client cannot be starved.
			_ = n.reqChan.Send(primary, data)
		}
	})
}

// RunBus consumes frames from reader until ctx is cancelled.
func (n *Node) RunBus(ctx context.Context, reader *mvb.Reader) {
	n.busWG.Add(1)
	go func() {
		defer n.busWG.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case frame := <-reader.C():
				n.HandleFrame(frame)
			}
		}
	}()
}

// baselineApp adapts the node to pbft.Application.
type baselineApp Node

// Deliver implements pbft.Application: every decided request is logged —
// duplicates included, which is precisely the baseline's overhead.
func (a *baselineApp) Deliver(seq uint64, req pbft.Request) {
	n := (*Node)(a)
	n.counters.AddRequest()

	digest := req.Digest()
	n.mu.Lock()
	n.markSeenLocked(digest)
	if p, ok := n.open[digest]; ok {
		p.stop()
		delete(n.open, digest)
		n.latency.Record(n.clk.Now().Sub(p.submitted))
	}
	n.builder.Add(blockchain.Entry{
		Seq:     seq,
		Origin:  req.Origin,
		Payload: req.Payload,
		Sig:     req.Sig,
	})
	n.mu.Unlock()
}

// CheckpointDigest implements pbft.Application.
func (a *baselineApp) CheckpointDigest(seq uint64) crypto.Digest {
	n := (*Node)(a)
	n.mu.Lock()
	block := n.builder.SealCheckpoint(seq)
	n.mu.Unlock()
	if err := n.store.Append(block); err != nil {
		return crypto.Hash([]byte(fmt.Sprintf("corrupt-%d", seq)))
	}
	return block.Hash()
}

// StableCheckpoint implements pbft.Application.
func (a *baselineApp) StableCheckpoint(proof pbft.CheckpointProof) {}

// NewPrimary implements pbft.Application.
func (a *baselineApp) NewPrimary(view uint64, primary crypto.NodeID) {
	n := (*Node)(a)
	n.mu.Lock()
	n.primary = primary
	open := make([]pbft.Request, 0, len(n.open))
	for _, p := range n.open {
		open = append(open, p.req)
	}
	isPrimary := primary == n.cfg.ID
	n.mu.Unlock()
	// Clients retransmit their open requests to the new primary.
	for _, req := range open {
		if isPrimary {
			n.propose(req)
		} else {
			_ = n.reqChan.Send(primary, wire.Marshal(&ClientRequest{Req: req}))
		}
	}
}

// StateTransferNeeded implements pbft.Application. The baseline has no
// export subsystem; a lagging replica stays lagged (the paper's baseline
// offers no state transfer either).
func (a *baselineApp) StateTransferNeeded(seq uint64, digest crypto.Digest) {}
