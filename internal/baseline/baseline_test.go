package baseline

import (
	"fmt"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/mvb"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

type cluster struct {
	t     *testing.T
	net   *transport.Network
	nodes []*Node
	kps   map[crypto.NodeID]*crypto.KeyPair
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	c := &cluster{
		t:   t,
		net: transport.NewNetwork(),
		kps: make(map[crypto.NodeID]*crypto.KeyPair),
	}
	ids := []crypto.NodeID{0, 1, 2, 3}
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		c.kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)
	for _, id := range ids {
		n, err := New(Config{
			ID:            id,
			Replicas:      ids,
			ClientTimeout: 2 * time.Second,
		}, c.kps[id], reg, c.net.Endpoint(id), clock.Real{})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
		c.net.Close()
	})
	return c
}

func (c *cluster) waitHeight(height uint64, deadline time.Duration) {
	c.t.Helper()
	end := time.Now().Add(deadline)
	for {
		done := true
		for _, n := range c.nodes {
			if n.Store().HeadIndex() < height {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(end) {
			for i, n := range c.nodes {
				c.t.Logf("node %d head=%d", i, n.Store().HeadIndex())
			}
			c.t.Fatalf("chains did not reach height %d", height)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBaselineOrdersEveryClientCopy(t *testing.T) {
	c := newCluster(t)
	// All four clients submit the same payload — as they do when reading
	// the same bus cycle. The baseline orders all four copies.
	payload := []byte("identical-bus-cycle")
	for _, n := range c.nodes {
		n.Submit(payload)
	}

	// 4 copies ordered; with block size 10 they sit in the pending block.
	deadline := time.Now().Add(15 * time.Second)
	for _, n := range c.nodes {
		for n.Counters().Snapshot().Requests < 4 {
			if time.Now().After(deadline) {
				t.Fatalf("node ordered %d of 4 copies", n.Counters().Snapshot().Requests)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestBaselineDuplicationFactorIsN(t *testing.T) {
	c := newCluster(t)
	// 10 bus cycles read by 4 clients each: 40 ordered requests = 4 blocks.
	for i := 0; i < 10; i++ {
		payload := []byte(fmt.Sprintf("cycle-%02d", i))
		for _, n := range c.nodes {
			n.Submit(payload)
		}
	}
	c.waitHeight(4, 30*time.Second)

	// Count how many times each cycle appears in the chain.
	blocks, err := c.nodes[0].Store().Range(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	total := 0
	for _, b := range blocks {
		for _, e := range b.Entries {
			counts[string(e.Payload)]++
			total++
		}
	}
	if total != 40 {
		t.Errorf("ordered %d entries, want 40 (4x duplication)", total)
	}
	for payload, n := range counts {
		if n != 4 {
			t.Errorf("%q ordered %d times, want 4", payload, n)
		}
	}
}

func TestBaselineChainsAgree(t *testing.T) {
	c := newCluster(t)
	for i := 0; i < 5; i++ {
		for _, n := range c.nodes {
			n.Submit([]byte(fmt.Sprintf("cycle-%02d", i)))
		}
	}
	c.waitHeight(2, 30*time.Second)
	ref := c.nodes[0].Store()
	for i, n := range c.nodes {
		for idx := uint64(1); idx <= 2; idx++ {
			a, errA := ref.Get(idx)
			b, errB := n.Store().Get(idx)
			if errA != nil || errB != nil {
				t.Fatalf("node %d block %d: %v %v", i, idx, errA, errB)
			}
			if a.Hash() != b.Hash() {
				t.Errorf("node %d block %d diverges", i, idx)
			}
		}
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

func TestBaselineHandleFrame(t *testing.T) {
	c := newCluster(t)
	gen := signal.NewGenerator(signal.DefaultGeneratorConfig())
	bus := mvb.NewBus(mvb.Config{})
	bus.Attach(mvb.NewSignalDevice(gen))
	readers := make([]*mvb.Reader, len(c.nodes))
	for i := range c.nodes {
		readers[i] = bus.NewReader(mvb.FaultConfig{}, int64(i))
	}
	for cycle := 0; cycle < 3; cycle++ {
		bus.Tick()
		for i, n := range c.nodes {
			select {
			case f := <-readers[i].C():
				n.HandleFrame(f)
			case <-time.After(time.Second):
				t.Fatal("no frame")
			}
		}
	}
	// 3 cycles x 4 clients = 12 ordered requests = 1 full block.
	c.waitHeight(1, 30*time.Second)
}

func TestBaselineClientLatencyRecorded(t *testing.T) {
	c := newCluster(t)
	c.nodes[1].Submit([]byte("measure-me"))
	deadline := time.Now().Add(10 * time.Second)
	for c.nodes[1].Latency().Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("latency never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats := c.nodes[1].Latency().Stats()
	if stats.Mean <= 0 || stats.Mean > 5*time.Second {
		t.Errorf("implausible latency %v", stats.Mean)
	}
}

func TestBaselineViewChangeOnCensoringPrimary(t *testing.T) {
	c := newCluster(t)
	// Isolate the primary: clients' requests are never ordered; after two
	// client timeouts they suspect, triggering a view change.
	c.net.Isolate(0)
	for _, n := range c.nodes[1:] {
		n.Submit([]byte("censored"))
	}
	deadline := time.Now().Add(30 * time.Second)
	// Wait until the surviving replicas advance past view 0.
	for _, n := range c.nodes[1:] {
		for {
			var view uint64
			n.Runner().Inspect(func(e *pbft.Engine) { view = e.View() })
			if view >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node stuck in view %d", view)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// The censored request is eventually ordered under the new primary.
	for _, n := range c.nodes[1:] {
		for n.Counters().Snapshot().Requests == 0 {
			if time.Now().After(deadline) {
				t.Fatal("censored request never ordered after view change")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}
