package signal

import (
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	g1 := NewGenerator(cfg)
	g2 := NewGenerator(cfg)
	for cycle := uint64(0); cycle < 500; cycle++ {
		r1 := Record{Cycle: cycle, Signals: g1.Generate(cycle)}
		r2 := Record{Cycle: cycle, Signals: g2.Generate(cycle)}
		if string(r1.Marshal()) != string(r2.Marshal()) {
			t.Fatalf("cycle %d: generators diverged", cycle)
		}
	}
}

func TestGeneratorCoreSignalsPresent(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig())
	signals := g.Generate(0)
	wantPorts := []uint16{PortSpeed, PortOdometer, PortBrake, PortDoors, PortCabSignal, PortTraction}
	for _, port := range wantPorts {
		found := false
		for _, s := range signals {
			if s.Port == port {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("cycle 0 missing port %#x", port)
		}
	}
}

func TestGeneratorDrivesDynamics(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig())
	var maxSpeed float64
	var sawStop, sawDoorsOpen bool
	for cycle := uint64(0); cycle < 6000; cycle++ {
		for _, s := range g.Generate(cycle) {
			switch s.Kind {
			case KindSpeed:
				if s.Value > maxSpeed {
					maxSpeed = s.Value
				}
				if cycle > 100 && s.Value == 0 {
					sawStop = true
				}
				if s.Value < 0 {
					t.Fatalf("cycle %d: negative speed %v", cycle, s.Value)
				}
				if s.Value > 121 {
					t.Fatalf("cycle %d: speed %v exceeds max", cycle, s.Value)
				}
			case KindDoorState:
				if s.Discrete != 0 {
					sawDoorsOpen = true
				}
			}
		}
	}
	if maxSpeed < 50 {
		t.Errorf("max speed %v, want a real drive profile", maxSpeed)
	}
	if !sawStop {
		t.Error("train never stopped at a station")
	}
	if !sawDoorsOpen {
		t.Error("doors never opened")
	}
}

func TestGeneratorOdometerMonotone(t *testing.T) {
	g := NewGenerator(DefaultGeneratorConfig())
	prev := -1.0
	for cycle := uint64(0); cycle < 2000; cycle++ {
		for _, s := range g.Generate(cycle) {
			if s.Kind == KindOdometer {
				if s.Value < prev {
					t.Fatalf("cycle %d: odometer went backwards %v -> %v", cycle, prev, s.Value)
				}
				prev = s.Value
			}
		}
	}
	if prev <= 0 {
		t.Error("odometer never advanced")
	}
}

func TestGeneratorPayloadPadding(t *testing.T) {
	for _, size := range []int{128, 1024, 8192} {
		cfg := DefaultGeneratorConfig()
		cfg.PayloadSize = size
		g := NewGenerator(cfg)
		for cycle := uint64(0); cycle < 20; cycle++ {
			rec := Record{Cycle: cycle, Signals: g.Generate(cycle)}
			got := len(rec.Marshal())
			if got < size*8/10 || got > size+64 {
				t.Errorf("size %d cycle %d: payload %d bytes", size, cycle, got)
			}
		}
	}
}

func TestGeneratorPaddingDeterministicAcrossInstances(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.PayloadSize = 1024
	g1 := NewGenerator(cfg)
	g2 := NewGenerator(cfg)
	for cycle := uint64(0); cycle < 50; cycle++ {
		r1 := Record{Cycle: cycle, Signals: g1.Generate(cycle)}
		r2 := Record{Cycle: cycle, Signals: g2.Generate(cycle)}
		if string(r1.Marshal()) != string(r2.Marshal()) {
			t.Fatalf("cycle %d: padded payloads differ between nodes", cycle)
		}
	}
}

func TestGeneratorSmallPayloadNoPadding(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.PayloadSize = 32 // smaller than the base record: no padding possible
	g := NewGenerator(cfg)
	for _, s := range g.Generate(0) {
		if s.Kind == KindBulkData {
			t.Error("padding added despite payload target below base size")
		}
	}
}
