package signal

import "testing"

func TestFilterOnChangeSuppressesRepeats(t *testing.T) {
	f := NewFilter(nil)
	s := Signal{Port: PortSpeed, Kind: KindSpeed, Value: 100}

	if got := f.Apply([]Signal{s}); len(got) != 1 {
		t.Fatalf("first observation filtered: %v", got)
	}
	if got := f.Apply([]Signal{s}); len(got) != 0 {
		t.Fatalf("repeat not filtered: %v", got)
	}
	s.Value = 101
	if got := f.Apply([]Signal{s}); len(got) != 1 {
		t.Fatalf("change filtered: %v", got)
	}
}

func TestFilterOnChangeDiscreteChannel(t *testing.T) {
	f := NewFilter(nil)
	s := Signal{Port: PortDoors, Kind: KindDoorState, Discrete: 0}
	f.Apply([]Signal{s})
	s.Discrete = 0x0f
	if got := f.Apply([]Signal{s}); len(got) != 1 {
		t.Fatal("discrete change filtered")
	}
}

func TestFilterAlwaysKindsPass(t *testing.T) {
	f := NewFilter(nil)
	s := Signal{Port: PortEmergency, Kind: KindEmergencyBrake, Discrete: 1}
	for i := 0; i < 3; i++ {
		if got := f.Apply([]Signal{s}); len(got) != 1 {
			t.Fatalf("iteration %d: emergency brake filtered", i)
		}
	}
}

func TestFilterUnknownKindDefaultsToAlways(t *testing.T) {
	f := NewFilter(map[Kind]FilterPolicy{})
	s := Signal{Port: 0x999, Kind: KindSpeed, Value: 5}
	f.Apply([]Signal{s})
	if got := f.Apply([]Signal{s}); len(got) != 1 {
		t.Error("kind without policy was filtered")
	}
}

func TestFilterTracksPortsIndependently(t *testing.T) {
	f := NewFilter(nil)
	a := Signal{Port: PortSpeed, Kind: KindSpeed, Value: 10}
	b := Signal{Port: PortBrake, Kind: KindBrakePressure, Value: 10}
	if got := f.Apply([]Signal{a, b}); len(got) != 2 {
		t.Fatalf("first cycle = %d signals", len(got))
	}
	a.Value = 11
	if got := f.Apply([]Signal{a, b}); len(got) != 1 || got[0].Port != PortSpeed {
		t.Fatalf("second cycle = %+v", got)
	}
}

func TestFilterReset(t *testing.T) {
	f := NewFilter(nil)
	s := Signal{Port: PortSpeed, Kind: KindSpeed, Value: 50}
	f.Apply([]Signal{s})
	f.Reset()
	if got := f.Apply([]Signal{s}); len(got) != 1 {
		t.Error("signal filtered after Reset")
	}
}

func TestFilterDoesNotMutateInput(t *testing.T) {
	f := NewFilter(nil)
	in := []Signal{
		{Port: PortSpeed, Kind: KindSpeed, Value: 1},
		{Port: PortBrake, Kind: KindBrakePressure, Value: 2},
	}
	f.Apply(in)
	in2 := []Signal{
		{Port: PortSpeed, Kind: KindSpeed, Value: 1}, // repeat: filtered
		{Port: PortBrake, Kind: KindBrakePressure, Value: 3},
	}
	out := f.Apply(in2)
	if len(out) != 1 || out[0].Value != 3 {
		t.Fatalf("out = %+v", out)
	}
	if in2[0].Value != 1 || in2[1].Value != 3 {
		t.Errorf("input mutated: %+v", in2)
	}
}
