package signal

import (
	"fmt"

	"zugchain/internal/wire"
)

// EncodePort serializes a signal's value channels into the raw process-data
// bytes transmitted on its MVB port. This is the "raw format" of §III-A from
// which nodes later derive the signal.
func EncodePort(s Signal) []byte {
	e := wire.NewEncoder(16 + len(s.Opaque))
	e.Byte(byte(s.Kind))
	e.Float64(s.Value)
	e.Uint32(s.Discrete)
	e.Bytes(s.Opaque)
	return e.Data()
}

// DecodePort parses raw port bytes back into a signal. It is the verified
// transformation step shared with the JRU: deterministic and side-effect
// free, so all correct nodes derive identical signals from identical bytes.
func DecodePort(port uint16, data []byte, cycle uint64) (Signal, error) {
	d := wire.NewDecoder(data)
	s := Signal{
		Port:     port,
		Kind:     Kind(d.Byte()),
		Value:    d.Float64(),
		Discrete: d.Uint32(),
		Opaque:   d.BytesCopy(),
		Cycle:    cycle,
	}
	if err := d.Err(); err != nil {
		return Signal{}, fmt.Errorf("signal: decode port %#x: %w", port, err)
	}
	if d.Remaining() != 0 {
		return Signal{}, fmt.Errorf("signal: port %#x: %d trailing bytes", port, d.Remaining())
	}
	if s.Kind == 0 || s.Kind > KindBulkData {
		return Signal{}, fmt.Errorf("signal: port %#x: invalid kind %d", port, uint8(s.Kind))
	}
	return s, nil
}
