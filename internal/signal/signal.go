// Package signal models the juridical train signals ZugChain records: the
// IEC 62625-style process data (speed, brake state, doors, ATP interventions)
// that the original JRU logs, an ATP-style workload generator that stands in
// for the paper's DDC signal generator, the parse/filter pipeline of §III-A
// ("From Signals to Blocks"), and the consolidation of one bus cycle's
// signals into a single BFT request payload.
package signal

import (
	"fmt"

	"zugchain/internal/wire"
)

// Kind identifies a juridical signal category (IEC 62625-1 appendix-style).
type Kind uint8

// Signal kinds recorded by the JRU.
const (
	KindSpeed Kind = iota + 1
	KindOdometer
	KindBrakePressure
	KindEmergencyBrake
	KindDoorState
	KindATPCommand
	KindCabSignal
	KindTraction
	KindBulkData // opaque pre-encrypted payload logged as-is (§III-A)
)

var kindNames = map[Kind]string{
	KindSpeed:          "speed",
	KindOdometer:       "odometer",
	KindBrakePressure:  "brake-pressure",
	KindEmergencyBrake: "emergency-brake",
	KindDoorState:      "door-state",
	KindATPCommand:     "atp-command",
	KindCabSignal:      "cab-signal",
	KindTraction:       "traction",
	KindBulkData:       "bulk-data",
}

// String returns the signal kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Signal is one parsed juridical value read from a bus port.
type Signal struct {
	// Port is the MVB process-data port the value was read from.
	Port uint16
	// Kind classifies the signal.
	Kind Kind
	// Value carries the numeric channel (speed in km/h, pressure in bar,
	// odometer in m, traction in kN).
	Value float64
	// Discrete carries the discrete channel (door bitmap, ATP command
	// code, cab signal aspect).
	Discrete uint32
	// Cycle is the bus cycle in which the signal was transmitted. It is
	// the bus-time reference the JRU stores with each event.
	Cycle uint64
	// Opaque holds pre-encrypted payload bytes for KindBulkData; logged
	// without interpretation, as the JRU does.
	Opaque []byte
}

// encodeTo appends the signal to e in the canonical port-data layout.
func (s *Signal) encodeTo(e *wire.Encoder) {
	e.Uint16(s.Port)
	e.Byte(byte(s.Kind))
	e.Float64(s.Value)
	e.Uint32(s.Discrete)
	e.Uint64(s.Cycle)
	e.Bytes(s.Opaque)
}

func decodeSignal(d *wire.Decoder) Signal {
	return Signal{
		Port:     d.Uint16(),
		Kind:     Kind(d.Byte()),
		Value:    d.Float64(),
		Discrete: d.Uint32(),
		Cycle:    d.Uint64(),
		Opaque:   d.BytesCopy(),
	}
}

// Record is the set of signals observed in one bus cycle, consolidated into
// one BFT request per §III-B ("All signals transmitted in a bus cycle are
// consolidated into one BFT request").
type Record struct {
	// Cycle is the bus cycle the record covers.
	Cycle uint64
	// Signals are the parsed, filtered signals of that cycle.
	Signals []Signal
}

// Marshal encodes the record into the request payload format understood by
// JRU analysis tooling (here: the wire codec). Encoding is deterministic:
// identical records on different nodes yield identical payload bytes, which
// is what makes payload-based duplicate filtering possible.
func (r *Record) Marshal() []byte {
	e := wire.NewEncoder(64 + 32*len(r.Signals))
	e.Uint64(r.Cycle)
	e.Uvarint(uint64(len(r.Signals)))
	for i := range r.Signals {
		r.Signals[i].encodeTo(e)
	}
	return e.Data()
}

// UnmarshalRecord decodes a payload produced by Record.Marshal.
func UnmarshalRecord(data []byte) (*Record, error) {
	d := wire.NewDecoder(data)
	r := &Record{Cycle: d.Uint64()}
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("signal: record claims %d signals in %d bytes", n, d.Remaining())
	}
	r.Signals = make([]Signal, 0, n)
	for i := uint64(0); i < n; i++ {
		r.Signals = append(r.Signals, decodeSignal(d))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("signal: unmarshal record: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("signal: %d trailing bytes in record", d.Remaining())
	}
	return r, nil
}
