package signal

// FilterPolicy says how a signal kind is reduced before logging, mirroring
// JRU practice (§III-A: "filter the data according to relevance and for
// higher efficiency as is common practice in JRUs, e.g., to log the speed
// only upon changes").
type FilterPolicy uint8

const (
	// LogAlways records the signal every cycle it appears.
	LogAlways FilterPolicy = iota + 1
	// LogOnChange records the signal only when its value differs from the
	// previously recorded one on the same port.
	LogOnChange
)

// Filter applies per-port change detection. It is stateful: one Filter per
// bus connection, fed in cycle order. Filters run identically on every node
// (the transformation steps are "verified and approved" per §III-A), so
// identical bus input yields identical filtered output on all nodes.
type Filter struct {
	policies map[Kind]FilterPolicy
	last     map[uint16]Signal
}

// DefaultPolicies reflect typical JRU configuration: continuous channels are
// logged on change, discrete events always.
func DefaultPolicies() map[Kind]FilterPolicy {
	return map[Kind]FilterPolicy{
		KindSpeed:          LogOnChange,
		KindOdometer:       LogOnChange,
		KindBrakePressure:  LogOnChange,
		KindTraction:       LogOnChange,
		KindCabSignal:      LogOnChange,
		KindDoorState:      LogOnChange,
		KindEmergencyBrake: LogAlways,
		KindATPCommand:     LogAlways,
		KindBulkData:       LogAlways,
	}
}

// NewFilter creates a filter with the given policies; kinds without a policy
// default to LogAlways.
func NewFilter(policies map[Kind]FilterPolicy) *Filter {
	if policies == nil {
		policies = DefaultPolicies()
	}
	return &Filter{
		policies: policies,
		last:     make(map[uint16]Signal),
	}
}

// Apply returns the subset of signals that must be logged for this cycle.
// The returned slice shares backing storage with the input only when all
// signals pass.
func (f *Filter) Apply(signals []Signal) []Signal {
	out := signals[:0:0]
	for _, s := range signals {
		if f.shouldLog(s) {
			out = append(out, s)
			f.last[s.Port] = s
		}
	}
	return out
}

func (f *Filter) shouldLog(s Signal) bool {
	policy, ok := f.policies[s.Kind]
	if !ok {
		policy = LogAlways
	}
	if policy == LogAlways {
		return true
	}
	prev, seen := f.last[s.Port]
	if !seen {
		return true
	}
	return prev.Value != s.Value || prev.Discrete != s.Discrete
}

// Reset clears the change-detection state, e.g. after a bus reconnect when
// continuity with the previous values is no longer guaranteed.
func (f *Filter) Reset() {
	f.last = make(map[uint16]Signal)
}
