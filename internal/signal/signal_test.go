package signal

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRecordMarshalRoundTrip(t *testing.T) {
	in := &Record{
		Cycle: 42,
		Signals: []Signal{
			{Port: PortSpeed, Kind: KindSpeed, Value: 88.5, Cycle: 42},
			{Port: PortDoors, Kind: KindDoorState, Discrete: 0x0f, Cycle: 42},
			{Port: PortBulk, Kind: KindBulkData, Opaque: []byte{1, 2, 3}, Cycle: 42},
		},
	}
	out, err := UnmarshalRecord(in.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRecord: %v", err)
	}
	if out.Cycle != in.Cycle || len(out.Signals) != len(in.Signals) {
		t.Fatalf("got %+v", out)
	}
	for i := range in.Signals {
		a, b := in.Signals[i], out.Signals[i]
		if a.Port != b.Port || a.Kind != b.Kind || a.Value != b.Value ||
			a.Discrete != b.Discrete || a.Cycle != b.Cycle || !bytes.Equal(a.Opaque, b.Opaque) {
			t.Errorf("signal %d: got %+v, want %+v", i, b, a)
		}
	}
}

func TestRecordMarshalDeterministic(t *testing.T) {
	r := &Record{Cycle: 7, Signals: []Signal{
		{Port: PortSpeed, Kind: KindSpeed, Value: 12.5, Cycle: 7},
	}}
	if !bytes.Equal(r.Marshal(), r.Marshal()) {
		t.Error("Marshal is not deterministic")
	}
}

func TestUnmarshalRecordErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", (&Record{Cycle: 1, Signals: []Signal{{Port: 1, Kind: KindSpeed}}}).Marshal()[:10]},
		{"bogus count", append(make([]byte, 8), 0xff, 0xff, 0xff, 0xff, 0x7f)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalRecord(tt.data); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestUnmarshalRecordTrailing(t *testing.T) {
	data := (&Record{Cycle: 1}).Marshal()
	data = append(data, 0xaa)
	if _, err := UnmarshalRecord(data); err == nil {
		t.Error("want error for trailing bytes")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(cycle uint64, vals []float64, disc []uint32) bool {
		r := &Record{Cycle: cycle}
		for i, v := range vals {
			if math.IsNaN(v) {
				v = 0
			}
			var dc uint32
			if i < len(disc) {
				dc = disc[i]
			}
			r.Signals = append(r.Signals, Signal{
				Port: uint16(i), Kind: KindSpeed, Value: v, Discrete: dc, Cycle: cycle,
			})
		}
		out, err := UnmarshalRecord(r.Marshal())
		if err != nil || out.Cycle != cycle || len(out.Signals) != len(r.Signals) {
			return false
		}
		for i := range r.Signals {
			if !signalsEqualIgnoringOpaque(out.Signals[i], r.Signals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func signalsEqualIgnoringOpaque(a, b Signal) bool {
	a.Opaque, b.Opaque = nil, nil
	return a.Port == b.Port && a.Kind == b.Kind && a.Value == b.Value &&
		a.Discrete == b.Discrete && a.Cycle == b.Cycle
}

func TestPortEncodeDecodeRoundTrip(t *testing.T) {
	in := Signal{Port: PortBrake, Kind: KindBrakePressure, Value: 3.2, Discrete: 9, Cycle: 11}
	out, err := DecodePort(PortBrake, EncodePort(in), 11)
	if err != nil {
		t.Fatalf("DecodePort: %v", err)
	}
	if out.Port != in.Port || out.Kind != in.Kind || out.Value != in.Value ||
		out.Discrete != in.Discrete || out.Cycle != 11 {
		t.Errorf("got %+v, want %+v", out, in)
	}
}

func TestDecodePortRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte{1, 2, 3}},
		{"bad kind", append([]byte{0xee}, make([]byte, 13)...)},
		{"trailing", append(EncodePort(Signal{Kind: KindSpeed}), 0x00)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePort(1, tt.data, 0); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if got := KindSpeed.String(); got != "speed" {
		t.Errorf("KindSpeed.String() = %q", got)
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}
