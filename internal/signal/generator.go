package signal

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// GeneratorConfig parameterizes the ATP-style workload generator that stands
// in for the paper's DDC signal generator (§V-A).
type GeneratorConfig struct {
	// Seed makes the generated drive reproducible.
	Seed int64
	// PayloadSize, when > 0, pads each cycle's record with a KindBulkData
	// signal so the marshalled payload reaches approximately this many
	// bytes — the knob behind the paper's payload-size sweeps (32 B–8 kB).
	PayloadSize int
	// StationSpacing is the number of cycles between station stops.
	StationSpacing uint64
	// MaxSpeed is the drive's top speed in km/h.
	MaxSpeed float64
}

// DefaultGeneratorConfig returns the configuration used by the testbed:
// a commuter-style drive with stops and a 120 km/h ceiling.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Seed:           1,
		StationSpacing: 2000,
		MaxSpeed:       120,
	}
}

// Generator simulates the data sources on the vehicle bus: the ATP and the
// control systems publishing speed, odometry, brake, door, and command data
// every cycle. It produces the exact per-cycle signal sets a JRU observes.
type Generator struct {
	cfg GeneratorConfig
	rng *rand.Rand

	speed    float64 // km/h
	odometer float64 // m
	brake    float64 // bar
	doors    uint32  // bitmap, 0 = all closed
	phase    drivePhase
	phaseEnd uint64 // cycle at which the current phase ends
	aspect   uint32 // current cab signal aspect
}

type drivePhase uint8

const (
	phaseAccelerate drivePhase = iota + 1
	phaseCruise
	phaseBrake
	phaseDwell
)

// NewGenerator creates a generator for the given configuration.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.StationSpacing == 0 {
		cfg.StationSpacing = 2000
	}
	if cfg.MaxSpeed <= 0 {
		cfg.MaxSpeed = 120
	}
	return &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		brake:    5.0, // released
		phase:    phaseAccelerate,
		phaseEnd: cfg.StationSpacing / 2, // accelerate + cruise leg
	}
}

// CycleSeconds is the modelled real-time length of one bus cycle for the
// dynamics integration. The recorder does not depend on it; it only shapes
// how fast values change between cycles.
const CycleSeconds = 0.064

// Generate produces the signals transmitted on the bus during one cycle.
// Successive calls must pass increasing cycle numbers.
func (g *Generator) Generate(cycle uint64) []Signal {
	g.step(cycle)

	signals := []Signal{
		{Port: PortSpeed, Kind: KindSpeed, Value: round1(g.speed), Cycle: cycle},
		// Odometry at centimetre resolution: it advances every cycle the
		// train moves, which keeps one juridical record per bus cycle —
		// matching the paper's fixed number of messages per second.
		{Port: PortOdometer, Kind: KindOdometer, Value: round2(g.odometer), Cycle: cycle},
		{Port: PortBrake, Kind: KindBrakePressure, Value: round1(g.brake), Cycle: cycle},
		{Port: PortDoors, Kind: KindDoorState, Discrete: g.doors, Cycle: cycle},
		{Port: PortCabSignal, Kind: KindCabSignal, Discrete: g.aspect, Cycle: cycle},
		{Port: PortTraction, Kind: KindTraction, Value: round1(g.traction()), Cycle: cycle},
	}
	// Occasional ATP interventions: the juridically interesting events.
	if g.rng.Float64() < 0.01 {
		signals = append(signals, Signal{
			Port:     PortATP,
			Kind:     KindATPCommand,
			Discrete: uint32(1 + g.rng.Intn(5)),
			Cycle:    cycle,
		})
	}
	if g.phase == phaseBrake && g.speed > 30 && g.rng.Float64() < 0.002 {
		signals = append(signals, Signal{
			Port: PortEmergency, Kind: KindEmergencyBrake, Discrete: 1, Cycle: cycle,
		})
	}
	if pad := g.padding(signals, cycle); pad != nil {
		signals = append(signals, *pad)
	}
	return signals
}

// step advances the drive dynamics by one cycle.
func (g *Generator) step(cycle uint64) {
	if cycle >= g.phaseEnd {
		g.nextPhase(cycle)
	}
	const dt = CycleSeconds
	switch g.phase {
	case phaseAccelerate:
		g.speed += (2.0 + g.rng.Float64()) * dt * 3.6 // ~1 m/s² in km/h per s
		if g.speed >= g.cfg.MaxSpeed {
			g.speed = g.cfg.MaxSpeed
			g.phase = phaseCruise
		}
		g.brake = 5.0
	case phaseCruise:
		g.speed += (g.rng.Float64() - 0.5) * dt * 2
		g.speed = math.Min(math.Max(g.speed, 0), g.cfg.MaxSpeed)
		g.brake = 5.0
	case phaseBrake:
		g.speed -= (2.5 + g.rng.Float64()) * dt * 3.6
		g.brake = 3.2
		if g.speed <= 0 {
			g.speed = 0
			g.phase = phaseDwell
			g.doors = 0x0f // open
		}
	case phaseDwell:
		g.speed = 0
		g.brake = 0.8 // holding brake
	}
	g.odometer += g.speed / 3.6 * dt
	g.aspect = aspectFor(g.speed)
}

func (g *Generator) nextPhase(cycle uint64) {
	quarter := g.cfg.StationSpacing / 4
	switch g.phase {
	case phaseAccelerate, phaseCruise:
		g.phase = phaseBrake
		g.phaseEnd = cycle + quarter
	case phaseBrake:
		g.phase = phaseDwell
		g.phaseEnd = cycle + quarter/2
		g.doors = 0x0f
	default:
		g.phase = phaseAccelerate
		g.phaseEnd = cycle + 2*quarter
		g.doors = 0
	}
}

func (g *Generator) traction() float64 {
	if g.phase == phaseAccelerate {
		return 150 + g.rng.Float64()*20
	}
	return 0
}

// padding builds the bulk-data filler signal reaching the configured payload
// size. The filler is deterministic in the cycle number so all nodes reading
// the same bus cycle build identical payloads.
func (g *Generator) padding(signals []Signal, cycle uint64) *Signal {
	if g.cfg.PayloadSize <= 0 {
		return nil
	}
	r := Record{Cycle: cycle, Signals: signals}
	base := len(r.Marshal())
	const bulkOverhead = 25 // encoded Signal framing without opaque bytes
	need := g.cfg.PayloadSize - base - bulkOverhead
	if need <= 0 {
		return nil
	}
	opaque := make([]byte, need)
	// Cheap deterministic filler keyed by cycle, standing in for the
	// source-encrypted data the JRU logs as-is.
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], cycle)
	for i := range opaque {
		opaque[i] = seed[i%8] ^ byte(i*131)
	}
	return &Signal{Port: PortBulk, Kind: KindBulkData, Opaque: opaque, Cycle: cycle}
}

func aspectFor(speed float64) uint32 {
	switch {
	case speed == 0:
		return 0 // stop
	case speed < 40:
		return 1 // caution
	default:
		return 2 // clear
	}
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// Well-known MVB process-data port assignments used by the generator and the
// default NSDB configuration.
const (
	PortSpeed     uint16 = 0x100
	PortOdometer  uint16 = 0x101
	PortBrake     uint16 = 0x102
	PortDoors     uint16 = 0x103
	PortCabSignal uint16 = 0x104
	PortTraction  uint16 = 0x105
	PortATP       uint16 = 0x106
	PortEmergency uint16 = 0x107
	PortBulk      uint16 = 0x1f0
)
