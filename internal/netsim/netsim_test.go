package netsim

import (
	"sync"
	"testing"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/transport"
)

type sink struct {
	mu  sync.Mutex
	got [][]byte
	ch  chan struct{}
}

func newSink() *sink { return &sink{ch: make(chan struct{}, 128)} }

func (s *sink) handler(from crypto.NodeID, data []byte) {
	s.mu.Lock()
	s.got = append(s.got, data)
	s.mu.Unlock()
	s.ch <- struct{}{}
}

func (s *sink) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-s.ch:
		case <-deadline:
			t.Fatalf("timed out at message %d of %d", i+1, n)
		}
	}
}

func TestTransmitTime(t *testing.T) {
	p := LinkProfile{BandwidthBps: 8e6}
	if got := p.transmitTime(1e6); got != time.Second {
		t.Errorf("1 MB at 8 Mbit/s = %v, want 1s", got)
	}
	if got := (LinkProfile{}).transmitTime(1e6); got != 0 {
		t.Errorf("unlimited bandwidth = %v", got)
	}
}

func TestShapedSendPaysSerializationCost(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	sk := newSink()
	b.SetHandler(sk.handler)

	// 100 kB at 8 Mbit/s = 100 ms serialization + 10 ms latency.
	shaped := NewShaped(a, LinkProfile{BandwidthBps: 8e6, Latency: 10 * time.Millisecond})
	defer shaped.Close()

	start := time.Now()
	if err := shaped.Send(1, make([]byte, 100_000)); err != nil {
		t.Fatal(err)
	}
	sk.wait(t, 1)
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~110ms", elapsed)
	}
}

func TestShapedSerializesBackToBackSends(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	sk := newSink()
	b.SetHandler(sk.handler)

	shaped := NewShaped(a, LinkProfile{BandwidthBps: 8e6})
	defer shaped.Close()

	// 4 × 50 kB = 200 kB at 8 Mbit/s = 200 ms total, not 50 ms.
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := shaped.Send(1, make([]byte, 50_000)); err != nil {
			t.Fatal(err)
		}
	}
	sk.wait(t, 4)
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Errorf("4 back-to-back sends in %v, want >= ~200ms", elapsed)
	}
}

func TestShapedInboundAlsoShaped(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)

	shaped := NewShaped(b, LinkProfile{BandwidthBps: 8e6, Latency: 5 * time.Millisecond})
	defer shaped.Close()
	sk := newSink()
	shaped.SetHandler(sk.handler)

	start := time.Now()
	if err := a.Send(1, make([]byte, 100_000)); err != nil {
		t.Fatal(err)
	}
	sk.wait(t, 1)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("inbound delivered after %v, want >= ~105ms", elapsed)
	}
}

func TestShapedZeroCostPassThrough(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	sk := newSink()
	b.SetHandler(sk.handler)

	shaped := NewShaped(a, LinkProfile{})
	defer shaped.Close()
	if shaped.LocalID() != 0 {
		t.Errorf("LocalID = %v", shaped.LocalID())
	}
	if err := shaped.Broadcast([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	sk.wait(t, 1)
}
