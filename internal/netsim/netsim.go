// Package netsim shapes a Transport to the characteristics of the train's
// uplink: the paper exports over LTE at roughly 8.5 Mbit/s (§V-B "Data
// Center Export"). Shaping delays each message by propagation latency plus
// serialization time (size / bandwidth) and serializes transmissions per
// link direction, which reproduces the read-dominated export latencies of
// Table II.
package netsim

import (
	"sync"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/transport"
)

// LinkProfile describes the shaped link.
type LinkProfile struct {
	// BandwidthBps is the usable bandwidth in bits per second.
	BandwidthBps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// LTE is the paper's measured uplink: ~8.5 Mbit/s with cellular latency.
var LTE = LinkProfile{BandwidthBps: 8.5e6, Latency: 40 * time.Millisecond}

// transmitTime returns the serialization delay for n bytes.
func (p LinkProfile) transmitTime(n int) time.Duration {
	if p.BandwidthBps <= 0 {
		return 0
	}
	return time.Duration(float64(n*8) / p.BandwidthBps * float64(time.Second))
}

// Shaped wraps a Transport so every outbound AND inbound message pays the
// link's serialization and propagation cost. The wrapped transport is
// typically the data center's endpoint: both its requests and the replicas'
// replies traverse the LTE link.
type Shaped struct {
	under   transport.Transport
	profile LinkProfile

	mu       sync.Mutex
	sendFree time.Time // when the uplink is next idle
	recvFree time.Time // when the downlink is next idle

	handlerMu sync.Mutex
	handler   transport.Handler

	closeMu  sync.RWMutex
	isClosed bool

	wg     sync.WaitGroup
	quit   chan struct{}
	closed sync.Once
}

var _ transport.Transport = (*Shaped)(nil)

// NewShaped wraps under with the given link profile.
func NewShaped(under transport.Transport, profile LinkProfile) *Shaped {
	s := &Shaped{
		under:   under,
		profile: profile,
		quit:    make(chan struct{}),
	}
	under.SetHandler(s.onInbound)
	return s
}

// LocalID implements transport.Transport.
func (s *Shaped) LocalID() crypto.NodeID { return s.under.LocalID() }

// SetHandler implements transport.Transport.
func (s *Shaped) SetHandler(h transport.Handler) {
	s.handlerMu.Lock()
	s.handler = h
	s.handlerMu.Unlock()
}

// Send implements transport.Transport, delaying by the uplink cost.
func (s *Shaped) Send(to crypto.NodeID, data []byte) error {
	delay := s.reserve(&s.sendFree, len(data))
	if delay > 0 {
		s.sleep(delay)
	}
	return s.under.Send(to, data)
}

// Broadcast implements transport.Transport. Each copy pays its own
// serialization time, like distinct radio transmissions.
func (s *Shaped) Broadcast(data []byte) error {
	delay := s.reserve(&s.sendFree, len(data))
	if delay > 0 {
		s.sleep(delay)
	}
	return s.under.Broadcast(data)
}

// Close implements transport.Transport.
func (s *Shaped) Close() error {
	s.closed.Do(func() {
		s.closeMu.Lock()
		s.isClosed = true
		s.closeMu.Unlock()
		close(s.quit)
	})
	err := s.under.Close()
	s.wg.Wait()
	return err
}

// reserve books serialization time on a link direction and returns how long
// the caller must wait before the message completes transmission.
func (s *Shaped) reserve(free *time.Time, size int) time.Duration {
	now := time.Now()
	s.mu.Lock()
	start := now
	if free.After(now) {
		start = *free
	}
	end := start.Add(s.profile.transmitTime(size))
	*free = end
	s.mu.Unlock()
	return end.Add(s.profile.Latency).Sub(now)
}

func (s *Shaped) sleep(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-s.quit:
	}
}

// onInbound delays delivery by the downlink cost without blocking the
// underlying dispatcher.
func (s *Shaped) onInbound(from crypto.NodeID, data []byte) {
	delay := s.reserve(&s.recvFree, len(data))
	msg := make([]byte, len(data))
	copy(msg, data)
	// Guard the Add against a concurrent Close (Add after Wait races).
	s.closeMu.RLock()
	if s.isClosed {
		s.closeMu.RUnlock()
		return
	}
	s.wg.Add(1)
	s.closeMu.RUnlock()
	go func() {
		defer s.wg.Done()
		if delay > 0 {
			timer := time.NewTimer(delay)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-s.quit:
				return
			}
		}
		s.handlerMu.Lock()
		h := s.handler
		s.handlerMu.Unlock()
		if h != nil {
			h(from, msg)
		}
	}()
}
