package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"zugchain/internal/crypto"
)

// collector records inbound messages for assertions.
type collector struct {
	mu   sync.Mutex
	got  []string
	from []crypto.NodeID
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) handler(from crypto.NodeID, data []byte) {
	c.mu.Lock()
	c.got = append(c.got, string(data))
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for message %d of %d", i+1, n)
		}
	}
}

func (c *collector) messages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.got))
	copy(out, c.got)
	return out
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func TestInprocSendDeliver(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	col.wait(t, 1)
	if got := col.messages(); got[0] != "hello" {
		t.Errorf("received %q", got[0])
	}
	if col.from[0] != 0 {
		t.Errorf("from = %v, want r0", col.from[0])
	}
}

func TestInprocBroadcastExcludesSelf(t *testing.T) {
	net := NewNetwork()
	defer net.Close()

	cols := make([]*collector, 4)
	for i := 0; i < 4; i++ {
		cols[i] = newCollector()
		net.Endpoint(crypto.NodeID(i)).SetHandler(cols[i].handler)
	}
	if err := net.Endpoint(0).Broadcast([]byte("x")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for i := 1; i < 4; i++ {
		cols[i].wait(t, 1)
	}
	time.Sleep(20 * time.Millisecond)
	if cols[0].count() != 0 {
		t.Error("broadcast delivered to sender")
	}
}

func TestInprocSendUnknownPeer(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(9, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send = %v, want ErrUnknownPeer", err)
	}
}

func TestInprocPartitionAndHeal(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	net.Partition(0, 1)
	if err := a.Send(1, []byte("lost")); err != nil {
		t.Fatalf("Send during partition: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if col.count() != 0 {
		t.Fatal("message crossed partition")
	}

	net.Heal(0, 1)
	if err := a.Send(1, []byte("through")); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	col.wait(t, 1)
	if got := col.messages(); got[0] != "through" {
		t.Errorf("received %q", got[0])
	}
}

func TestInprocIsolateRejoin(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	cols := make([]*collector, 3)
	for i := 0; i < 3; i++ {
		cols[i] = newCollector()
		net.Endpoint(crypto.NodeID(i)).SetHandler(cols[i].handler)
	}
	net.Isolate(2)
	if err := net.Endpoint(0).Broadcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	cols[1].wait(t, 1)
	time.Sleep(20 * time.Millisecond)
	if cols[2].count() != 0 {
		t.Error("isolated node received broadcast")
	}

	net.Rejoin(2)
	if err := net.Endpoint(0).Send(2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	cols[2].wait(t, 1)
}

func TestInprocDropRate(t *testing.T) {
	net := NewNetwork(WithSeed(42))
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	net.SetLink(0, 1, LinkConfig{DropRate: 0.5})
	const total = 400
	for i := 0; i < total; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	got := col.count()
	if got == 0 || got == total {
		t.Errorf("drop rate 0.5 delivered %d/%d", got, total)
	}
	// With seed 42 the binomial outcome is deterministic but we only rely
	// on a loose band to stay robust against math/rand changes.
	if got < total/4 || got > 3*total/4 {
		t.Errorf("delivered %d/%d, outside [100, 300]", got, total)
	}
}

func TestInprocLatency(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	net.SetLink(0, 1, LinkConfig{Latency: 50 * time.Millisecond})
	start := time.Now()
	if err := a.Send(1, []byte("delayed")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~50ms", elapsed)
	}
}

func TestInprocCounters(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	payload := make([]byte, 100)
	if err := a.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	as := a.Counters().Snapshot()
	bs := b.Counters().Snapshot()
	if as.MsgsSent != 1 || as.BytesSent != 100 {
		t.Errorf("sender counters = %+v", as)
	}
	if bs.MsgsReceived != 1 || bs.BytesReceived != 100 {
		t.Errorf("receiver counters = %+v", bs)
	}
}

func TestInprocSenderBufferReuse(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	col := newCollector()
	b.SetHandler(col.handler)

	buf := []byte("first")
	if err := a.Send(1, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX") // mutate immediately after Send
	col.wait(t, 1)
	if got := col.messages(); got[0] != "first" {
		t.Errorf("received %q, want %q (delivery must copy)", got[0], "first")
	}
}

func TestInprocClosedEndpoint(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	net.Endpoint(1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed = %v, want ErrClosed", err)
	}
}

func TestInprocNetworkClose(t *testing.T) {
	net := NewNetwork()
	a := net.Endpoint(0)
	net.Endpoint(1)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); err == nil {
		t.Error("Send after network close succeeded")
	}
	// Close is idempotent.
	if err := net.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
