package transport

import (
	"testing"
	"time"
)

// tagged builds a message whose first two bytes are the little-endian tag.
func tagged(tag uint16, body string) []byte {
	out := []byte{byte(tag), byte(tag >> 8)}
	return append(out, body...)
}

func TestMuxRoutesByTypeRange(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)

	muxB := NewMux(b)
	low := muxB.Channel(0x10, 0x2f)
	high := muxB.Channel(0x30, 0x3f)

	colLow := newCollector()
	colHigh := newCollector()
	low.SetHandler(colLow.handler)
	high.SetHandler(colHigh.handler)

	if err := a.Send(1, tagged(0x11, "pbft")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, tagged(0x30, "zc")); err != nil {
		t.Fatal(err)
	}
	colLow.wait(t, 1)
	colHigh.wait(t, 1)
	if got := colLow.messages()[0]; got != string(tagged(0x11, "pbft")) {
		t.Errorf("low channel got %q", got)
	}
	if got := colHigh.messages()[0]; got != string(tagged(0x30, "zc")) {
		t.Errorf("high channel got %q", got)
	}
}

func TestMuxDropsUnroutedAndShort(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)

	muxB := NewMux(b)
	ch := muxB.Channel(0x10, 0x1f)
	col := newCollector()
	ch.SetHandler(col.handler)

	if err := a.Send(1, tagged(0xff, "unrouted")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte{0x10}); err != nil { // 1 byte: no tag
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if col.count() != 0 {
		t.Errorf("received %d unrouted messages", col.count())
	}
}

func TestMuxChannelSendPassThrough(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	a := net.Endpoint(0)
	b := net.Endpoint(1)
	c := net.Endpoint(2)

	muxA := NewMux(a)
	chA := muxA.Channel(0x10, 0x1f)
	if chA.LocalID() != 0 {
		t.Errorf("LocalID = %v", chA.LocalID())
	}

	colB := newCollector()
	colC := newCollector()
	b.SetHandler(colB.handler)
	c.SetHandler(colC.handler)

	if err := chA.Send(1, tagged(0x10, "direct")); err != nil {
		t.Fatal(err)
	}
	colB.wait(t, 1)

	if err := chA.Broadcast(tagged(0x10, "all")); err != nil {
		t.Fatal(err)
	}
	colB.wait(t, 1)
	colC.wait(t, 1)
}
