package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// newTCPPair starts two TCP transports that know each other's addresses.
func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.SetPeers(map[crypto.NodeID]string{1: b.Addr()})
	b.SetPeers(map[crypto.NodeID]string{0: a.Addr()})
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestTCPSendDeliver(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := a.Send(1, []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	col.wait(t, 1)
	if got := col.messages(); got[0] != "over tcp" {
		t.Errorf("received %q", got[0])
	}
	if col.from[0] != 0 {
		t.Errorf("from = %v", col.from[0])
	}
}

func TestTCPBidirectionalOnSingleConnection(t *testing.T) {
	a, b := newTCPPair(t)
	colA := newCollector()
	colB := newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)

	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	colB.wait(t, 1)
	// b replies; it should reuse the inbound connection rather than dial.
	if err := b.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	colA.wait(t, 1)
	if got := colA.messages(); got[0] != "pong" {
		t.Errorf("reply = %q", got[0])
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	big := bytes.Repeat([]byte{0xa5}, 1<<20) // 1 MiB
	if err := a.Send(1, big); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if got := col.messages(); len(got[0]) != len(big) {
		t.Errorf("received %d bytes, want %d", len(got[0]), len(big))
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, n)
	got := col.messages()
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("msg-%03d", i); got[i] != want {
			t.Fatalf("message %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(7, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send = %v, want ErrUnknownPeer", err)
	}
}

// TestTCPSendToDeadPeerNonBlocking is the acceptance check for the
// asynchronous pipeline: sending (and broadcasting) toward an unreachable
// address must return immediately — dials happen on the peer's writer
// goroutine, never on the caller.
func TestTCPSendToDeadPeerNonBlocking(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", map[crypto.NodeID]string{1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.DialTimeout = 500 * time.Millisecond

	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []byte("x")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("100 sends to a dead peer took %v; enqueue must not block on the dial", elapsed)
	}
}

// TestTCPBroadcastWithUnreachablePeer checks that one dead peer does not
// delay a broadcast to the healthy ones, and that the broadcast itself
// returns without waiting out the dial timeout.
func TestTCPBroadcastWithUnreachablePeer(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.DialTimeout = 2 * time.Second
	healthy, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	col := newCollector()
	healthy.SetHandler(col.handler)
	a.SetPeers(map[crypto.NodeID]string{
		1: healthy.Addr(),
		2: "127.0.0.1:1", // nothing listens here
	})

	start := time.Now()
	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("Broadcast took %v with one unreachable peer", elapsed)
	}
	col.wait(t, 1)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("healthy peer waited %v behind the dead peer's dial", elapsed)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := a.Send(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)

	// Restart b on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCP(1, addr, map[crypto.NodeID]string{0: a.Addr()})
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.SetHandler(col2.handler)

	// Sends may "succeed" into the dead socket's buffer until the broken
	// connection is detected and dropped, so retry until a message actually
	// arrives at the restarted peer.
	deadline := time.Now().Add(5 * time.Second)
	for col2.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect")
		}
		_ = a.Send(1, []byte("two")) // errors expected while reconnecting
		time.Sleep(10 * time.Millisecond)
	}
	if got := col2.messages(); got[0] != "two" {
		t.Errorf("after reconnect received %q", got[0])
	}
}

func TestTCPBroadcast(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var others []*TCP
	peers := make(map[crypto.NodeID]string)
	cols := make([]*collector, 3)
	for i := 1; i <= 3; i++ {
		p, err := NewTCP(crypto.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		cols[i-1] = newCollector()
		p.SetHandler(cols[i-1].handler)
		peers[crypto.NodeID(i)] = p.Addr()
		others = append(others, p)
	}
	a.peers = peers

	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatal(err)
	}
	for i := range others {
		cols[i].wait(t, 1)
	}
}

func TestTCPClosedSend(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestTCPCounters checks that traffic counters match actual wire bytes: a
// 64-byte payload costs 64+4 on the wire (the frame header), on both sides.
// Send accounting happens on the writer goroutine, so the sender side is
// polled briefly.
func TestTCPCounters(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	const wire = 64 + frameHeaderSize
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := a.Counters().Snapshot()
		if s.MsgsSent == 1 && s.BytesSent == wire {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sender counters = %+v, want 1 msg / %d bytes", s, wire)
		}
		time.Sleep(time.Millisecond)
	}
	if s := b.Counters().Snapshot(); s.MsgsReceived != 1 || s.BytesReceived != wire {
		t.Errorf("receiver counters = %+v, want 1 msg / %d bytes", s, wire)
	}
}

// wedgedPeer accepts connections, reads the hello, then never reads again —
// a live TCP endpoint whose kernel receive buffer eventually fills, the
// worst kind of slow consumer.
type wedgedPeer struct {
	ln    net.Listener
	done  chan struct{}
	conns chan net.Conn
}

func newWedgedPeer(t *testing.T) *wedgedPeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := &wedgedPeer{ln: ln, done: make(chan struct{}), conns: make(chan net.Conn, 16)}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			var hello [4]byte
			_, _ = io.ReadFull(c, hello[:])
			w.conns <- c // parked: never read again
		}
	}()
	t.Cleanup(w.close)
	return w
}

func (w *wedgedPeer) close() {
	_ = w.ln.Close()
	for {
		select {
		case c := <-w.conns:
			_ = c.Close()
		default:
			return
		}
	}
}

// TestTCPSlowPeerIsolation: a wedged peer (connected, never reading) must
// not delay delivery to healthy peers and must not block Send or Broadcast.
func TestTCPSlowPeerIsolation(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SendQueue = 16 // small queue so the wedged peer overflows quickly
	healthy, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	col := newCollector()
	healthy.SetHandler(col.handler)
	wedged := newWedgedPeer(t)
	a.SetPeers(map[crypto.NodeID]string{
		1: healthy.Addr(),
		2: wedged.ln.Addr().String(),
	})

	// Big payloads fill the wedged peer's socket buffers fast; its writer
	// then blocks in write(2) while its queue absorbs and drops overflow.
	// The enqueue loop outruns both writers, so some frames are dropped for
	// the healthy peer too — but drop-oldest guarantees the final frame
	// survives, so delivery of the last marker proves the healthy link
	// stayed live behind a wedged sibling.
	payload := make([]byte, 64<<10)
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		payload[0] = byte(i)
		if err := a.Broadcast(payload); err != nil {
			t.Fatalf("Broadcast %d: %v", i, err)
		}
	}
	enqueueTime := time.Since(start)
	if enqueueTime > 2*time.Second {
		t.Errorf("broadcasting %d messages took %v; the wedged peer is stalling the caller", n, enqueueTime)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		last := false
		for _, m := range col.messages() {
			if len(m) > 0 && m[0] == byte(n-1) {
				last = true
			}
		}
		if last {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy peer never received the final frame; got %d messages, pipeline %+v",
				col.count(), a.NetCounters().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("enqueue %v, healthy delivery %v, pipeline %+v",
		enqueueTime, time.Since(start), a.NetCounters().Snapshot())
	if s := a.NetCounters().Snapshot(); s.Drops == 0 {
		t.Errorf("expected overflow drops toward the wedged peer, got %+v", s)
	}
}

// TestTCPQueueOverflowDropsOldest: with an unreachable peer the queue keeps
// the newest frames and drops the oldest, and the drop counter accounts for
// every evicted frame.
func TestTCPQueueOverflowDropsOldest(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", map[crypto.NodeID]string{1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.SendQueue = 4
	a.DialTimeout = 50 * time.Millisecond

	const n = 32
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := a.NetCounters().Snapshot()
	if s.Enqueued != n {
		t.Errorf("enqueued = %d, want %d", s.Enqueued, n)
	}
	// The writer may hold one in-flight frame beyond the queue capacity.
	if min := uint64(n - 4 - 1); s.Drops < min {
		t.Errorf("drops = %d, want ≥ %d", s.Drops, min)
	}
	if s.QueueDepth > 4+1 {
		t.Errorf("queue depth = %d exceeds capacity", s.QueueDepth)
	}
}

// TestTCPRedialBackoffAndResume: a killed peer is redialed in the
// background with backoff, and delivery resumes once it comes back.
func TestTCPRedialBackoffAndResume(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)

	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Push frames at the dead peer until the broken connection is detected
	// and background redials (against a refused port) start.
	deadline := time.Now().Add(10 * time.Second)
	for a.NetCounters().Snapshot().Redials == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background redials recorded")
		}
		_ = a.Send(1, []byte("void"))
		time.Sleep(5 * time.Millisecond)
	}

	b2, err := NewTCP(1, addr, map[crypto.NodeID]string{0: a.Addr()})
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.SetHandler(col2.handler)

	for col2.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no delivery after restart; pipeline %+v", a.NetCounters().Snapshot())
		}
		_ = a.Send(1, []byte("back"))
		time.Sleep(5 * time.Millisecond)
	}
	if got := col2.messages(); got[0] != "back" && got[0] != "void" {
		t.Errorf("after reconnect received %q", got[0])
	}
}

// TestTCPInboundDuplicateClosed reproduces the inbound-connection leak:
// when both sides dial each other, each transport holds an inbound
// connection that never becomes a write path. Close must still reach it —
// before the fix, Close deadlocked waiting on that connection's read loop.
func TestTCPInboundDuplicateClosed(t *testing.T) {
	a, b := newTCPPair(t)
	colA, colB := newCollector(), newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)

	// Both sides dial: each ends up with a dialed conn (its write path)
	// plus an inbound conn from the other side's dial.
	if err := a.Send(1, []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	colA.wait(t, 1)
	colB.wait(t, 1)

	done := make(chan struct{})
	go func() {
		// Close a first while b is still holding its side open: a must be
		// able to shut down its inbound duplicates on its own.
		if err := a.Close(); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an untracked inbound connection")
	}
}

// TestTCPFlushIntervalCoalesces: with a flush interval, a burst of small
// sends is merged into very few write syscalls; Flush cuts the wait short.
func TestTCPFlushIntervalCoalesces(t *testing.T) {
	a, b := newTCPPair(t)
	a.FlushInterval = 200 * time.Millisecond
	col := newCollector()
	b.SetHandler(col.handler)

	// Establish the connection (first flush may carry only the hello-side
	// frame before the interval applies).
	if err := a.Send(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	// Write accounting happens on the writer goroutine; wait for the warm
	// frame to be counted before taking the baseline.
	var base metrics.NetSnapshot
	for deadline := time.Now().Add(5 * time.Second); ; {
		base = a.NetCounters().Snapshot()
		if base.Frames >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm frame never counted: %+v", base)
		}
		time.Sleep(time.Millisecond)
	}

	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte("burst")); err != nil {
			t.Fatal(err)
		}
	}
	if f, ok := any(a).(Flusher); !ok {
		t.Fatal("TCP does not implement Flusher")
	} else {
		f.Flush()
	}
	col.wait(t, n)
	var s metrics.NetSnapshot
	for deadline := time.Now().Add(5 * time.Second); ; {
		s = a.NetCounters().Snapshot()
		if s.Frames-base.Frames >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames written = %d, want %d", s.Frames-base.Frames, n)
		}
		time.Sleep(time.Millisecond)
	}
	writes := s.WriteOps - base.WriteOps
	frames := s.Frames - base.Frames
	if frames != n {
		t.Fatalf("frames written = %d, want %d", frames, n)
	}
	if writes > 3 {
		t.Errorf("burst of %d frames took %d write ops; expected coalescing", n, writes)
	}
	t.Logf("coalesced %d frames into %d writes (mean %.1f)", frames, writes, float64(frames)/float64(writes))
}
