package transport

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"zugchain/internal/crypto"
)

// newTCPPair starts two TCP transports that know each other's addresses.
func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.peers = map[crypto.NodeID]string{1: b.Addr()}
	b.peers = map[crypto.NodeID]string{0: a.Addr()}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestTCPSendDeliver(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := a.Send(1, []byte("over tcp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	col.wait(t, 1)
	if got := col.messages(); got[0] != "over tcp" {
		t.Errorf("received %q", got[0])
	}
	if col.from[0] != 0 {
		t.Errorf("from = %v", col.from[0])
	}
}

func TestTCPBidirectionalOnSingleConnection(t *testing.T) {
	a, b := newTCPPair(t)
	colA := newCollector()
	colB := newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)

	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	colB.wait(t, 1)
	// b replies; it should reuse the inbound connection rather than dial.
	if err := b.Send(0, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	colA.wait(t, 1)
	if got := colA.messages(); got[0] != "pong" {
		t.Errorf("reply = %q", got[0])
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	big := bytes.Repeat([]byte{0xa5}, 1<<20) // 1 MiB
	if err := a.Send(1, big); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if got := col.messages(); len(got[0]) != len(big) {
		t.Errorf("received %d bytes, want %d", len(got[0]), len(big))
	}
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(1, []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, n)
	got := col.messages()
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("msg-%03d", i); got[i] != want {
			t.Fatalf("message %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(7, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("Send = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", map[crypto.NodeID]string{1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.DialTimeout = 200 * time.Millisecond
	if err := a.Send(1, []byte("x")); err == nil {
		t.Error("Send to dead address succeeded")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)

	if err := a.Send(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)

	// Restart b on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCP(1, addr, map[crypto.NodeID]string{0: a.Addr()})
	if err != nil {
		t.Fatalf("restart listener: %v", err)
	}
	defer b2.Close()
	col2 := newCollector()
	b2.SetHandler(col2.handler)

	// Sends may "succeed" into the dead socket's buffer until the broken
	// connection is detected and dropped, so retry until a message actually
	// arrives at the restarted peer.
	deadline := time.Now().Add(5 * time.Second)
	for col2.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect")
		}
		_ = a.Send(1, []byte("two")) // errors expected while reconnecting
		time.Sleep(10 * time.Millisecond)
	}
	if got := col2.messages(); got[0] != "two" {
		t.Errorf("after reconnect received %q", got[0])
	}
}

func TestTCPBroadcast(t *testing.T) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var others []*TCP
	peers := make(map[crypto.NodeID]string)
	cols := make([]*collector, 3)
	for i := 1; i <= 3; i++ {
		p, err := NewTCP(crypto.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		cols[i-1] = newCollector()
		p.SetHandler(cols[i-1].handler)
		peers[crypto.NodeID(i)] = p.Addr()
		others = append(others, p)
	}
	a.peers = peers

	if err := a.Broadcast([]byte("all")); err != nil {
		t.Fatal(err)
	}
	for i := range others {
		cols[i].wait(t, 1)
	}
}

func TestTCPClosedSend(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestTCPCounters(t *testing.T) {
	a, b := newTCPPair(t)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(1, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	if s := a.Counters().Snapshot(); s.MsgsSent != 1 || s.BytesSent != 64 {
		t.Errorf("sender counters = %+v", s)
	}
	if s := b.Counters().Snapshot(); s.MsgsReceived != 1 || s.BytesReceived != 64 {
		t.Errorf("receiver counters = %+v", s)
	}
}
