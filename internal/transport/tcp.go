package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// Frame format on a TCP connection:
//
//	hello (once, from dialer):  uint32 BE sender ID
//	message (repeated):         uint32 BE length | payload
//
// maxFrameSize guards against hostile length prefixes.
const maxFrameSize = 64 << 20

// frameHeaderSize is the per-message wire overhead (the length prefix).
const frameHeaderSize = 4

// Tunables of the asynchronous outbound pipeline.
const (
	// DefaultSendQueue is the default per-peer outbound queue capacity.
	DefaultSendQueue = 1024
	// DefaultDialTimeout bounds one outbound connection attempt.
	DefaultDialTimeout = 2 * time.Second

	// redialBackoffMin/Max cap the background reconnect loop's exponential
	// backoff between failed dial attempts.
	redialBackoffMin = 20 * time.Millisecond
	redialBackoffMax = 2 * time.Second

	// maxCoalesceFrames and maxCoalesceBytes bound one vectored write: the
	// writer never merges more than this many queued frames (or bytes) into
	// a single net.Buffers flush, keeping per-peer memory and iovec counts
	// bounded under sustained backlog.
	maxCoalesceFrames = 64
	maxCoalesceBytes  = 1 << 20

	// readBufSize sizes the pooled bufio.Reader in front of each
	// connection, so the frame header and small payloads cost one read
	// syscall instead of two.
	readBufSize = 64 << 10
)

// framePool recycles outbound frame buffers (length prefix + payload in one
// contiguous allocation). Send paths take a buffer, writers return it after
// the flush, so a steady-state connection allocates nothing per message.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// newFrame encodes data as one wire frame into a pooled buffer.
func newFrame(data []byte) *[]byte {
	bp := framePool.Get().(*[]byte)
	b := (*bp)[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(len(data)))
	b = append(b, data...)
	*bp = b
	return bp
}

func releaseFrame(bp *[]byte) {
	// Don't let one huge frame pin its storage in the pool forever.
	if cap(*bp) > maxCoalesceBytes {
		return
	}
	framePool.Put(bp)
}

// readerPool recycles the bufio.Reader placed in front of every connection.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, readBufSize) },
}

// TCP is a Transport over real TCP connections with an asynchronous per-peer
// outbound pipeline: Send and Broadcast enqueue onto a bounded per-peer
// queue and return immediately; a dedicated writer goroutine per peer drains
// the queue, coalescing all immediately available frames into one vectored
// write (net.Buffers → writev). Connections are dialed and redialed by the
// writer with capped exponential backoff, so a dead or slow peer can never
// stall a caller — queue overflow drops the oldest frames (PBFT retransmits
// or view-changes around transport loss). Inbound connections are accepted
// on the configured listen address, identified by their hello frame, and
// adopted as the peer's write path when no dialed connection exists.
type TCP struct {
	id crypto.NodeID

	listener net.Listener

	// DialTimeout bounds each outbound connection attempt.
	DialTimeout time.Duration
	// SendQueue is the per-peer outbound queue capacity; when full, the
	// oldest queued frame is dropped. Zero selects DefaultSendQueue. Set
	// before the first Send.
	SendQueue int
	// FlushInterval, when positive, lets an idle writer wait this long for
	// more frames before issuing a small write — trading latency for fewer,
	// larger syscalls. Zero (the default) flushes as soon as the queue is
	// drained. Set before the first Send.
	FlushInterval time.Duration

	mu      sync.Mutex
	peers   map[crypto.NodeID]string
	handler Handler
	out     map[crypto.NodeID]*tcpPeer
	live    map[net.Conn]struct{} // every open conn, inbound and dialed
	closed  bool

	closing chan struct{}
	wg      sync.WaitGroup

	counters metrics.Counters
	net      metrics.NetCounters
}

var (
	_ Transport = (*TCP)(nil)
	_ Flusher   = (*TCP)(nil)
)

// NewTCP creates a TCP transport for id listening on listenAddr. peers maps
// every other node ID to its dialable address. Pass an empty listenAddr to
// create a client-only transport (used by data centers that only dial).
func NewTCP(id crypto.NodeID, listenAddr string, peers map[crypto.NodeID]string) (*TCP, error) {
	t := &TCP{
		id:          id,
		peers:       peers,
		out:         make(map[crypto.NodeID]*tcpPeer),
		live:        make(map[net.Conn]struct{}),
		closing:     make(chan struct{}),
		DialTimeout: DefaultDialTimeout,
	}
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// LocalID implements Transport.
func (t *TCP) LocalID() crypto.NodeID { return t.id }

// SetPeers installs the peer address map. Useful when all listeners must be
// bound (port 0) before any address is known. Call before any Send.
func (t *TCP) SetPeers(peers map[crypto.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers = peers
}

// Addr returns the bound listen address, useful when listening on port 0.
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Counters exposes this transport's traffic counters. Sent/received bytes
// include the frame header, matching actual wire traffic.
func (t *TCP) Counters() *metrics.Counters { return &t.counters }

// NetCounters exposes the outbound pipeline's queue/coalescing/redial
// counters.
func (t *TCP) NetCounters() *metrics.NetCounters { return &t.net }

// Send implements Transport: a non-blocking enqueue onto the peer's
// outbound queue. A nil error means the frame was queued, not delivered;
// delivery is best-effort (ErrUnknownPeer is returned only when no address
// and no live connection for the peer exists).
func (t *TCP) Send(to crypto.NodeID, data []byte) error {
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	p.enqueue(newFrame(data))
	return nil
}

// Broadcast implements Transport: one non-blocking enqueue per known peer.
// A slow, dead, or unreachable peer only affects its own queue; the caller
// never waits on dials or writes.
func (t *TCP) Broadcast(data []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	ids := make([]crypto.NodeID, 0, len(t.peers))
	for id := range t.peers {
		if id != t.id {
			ids = append(ids, id)
		}
	}
	t.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := t.Send(id, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Flush implements Flusher: it wakes every peer writer that is waiting out a
// FlushInterval so buffered frames hit the wire immediately.
func (t *TCP) Flush() {
	t.mu.Lock()
	peers := make([]*tcpPeer, 0, len(t.out))
	for _, p := range t.out {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	for _, p := range peers {
		select {
		case p.flush <- struct{}{}:
		default:
		}
	}
}

// Close implements Transport. It closes every live connection — dialed and
// inbound, including inbound duplicates that never became a peer's write
// path — stops all writer/reader goroutines, and waits for them.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.live))
	for c := range t.live {
		conns = append(conns, c)
	}
	t.live = make(map[net.Conn]struct{})
	t.mu.Unlock()

	close(t.closing)
	if t.listener != nil {
		_ = t.listener.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	return nil
}

// peer returns (creating if necessary) the outbound pipeline for id. A peer
// is created when it has a dialable address or an adopted inbound
// connection; otherwise ErrUnknownPeer.
func (t *TCP) peer(id crypto.NodeID) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if p, ok := t.out[id]; ok {
		return p, nil
	}
	if _, ok := t.peers[id]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, id)
	}
	return t.newPeerLocked(id), nil
}

// newPeerLocked creates the peer pipeline and starts its writer. Caller
// holds t.mu and has checked t.closed.
func (t *TCP) newPeerLocked(id crypto.NodeID) *tcpPeer {
	q := t.SendQueue
	if q <= 0 {
		q = DefaultSendQueue
	}
	p := &tcpPeer{
		t:      t,
		id:     id,
		queue:  make(chan *[]byte, q),
		connCh: make(chan struct{}, 1),
		flush:  make(chan struct{}, 1),
	}
	t.out[id] = p
	t.wg.Add(1)
	go p.writeLoop()
	return p
}

// peerAddr returns the dialable address of id, if known.
func (t *TCP) peerAddr(id crypto.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.peers[id]
	return addr, ok
}

// track registers a conn for shutdown. It reports false (and closes the
// conn) when the transport is already closed.
func (t *TCP) track(c net.Conn) bool {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return false
	}
	t.live[c] = struct{}{}
	t.mu.Unlock()
	return true
}

// untrack closes c and forgets it.
func (t *TCP) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.live, c)
	t.mu.Unlock()
	_ = c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(c) {
			return
		}
		t.wg.Add(1)
		go t.handleInbound(c)
	}
}

// handleInbound reads the hello frame, offers the connection to the peer's
// writer (data centers dial in and expect replies on the same connection),
// and reads frames until the connection dies. The connection is tracked in
// t.live from accept time, so Close reaches it even while it is a duplicate
// that never became a write path.
func (t *TCP) handleInbound(c net.Conn) {
	defer t.wg.Done()
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		t.untrack(c)
		return
	}
	from := crypto.NodeID(binary.BigEndian.Uint32(hello[:]))

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return
	}
	p, ok := t.out[from]
	if !ok {
		p = t.newPeerLocked(from)
	}
	t.mu.Unlock()
	p.offerConn(c)

	t.readLoop(p, c)
}

// readLoop delivers inbound frames to the handler until the connection
// fails, then detaches it from the peer's write path. The bufio.Reader is
// pooled; payload buffers are not — ownership of each frame passes to the
// handler (decoded protocol messages alias it, see the Handler contract).
func (t *TCP) readLoop(p *tcpPeer, c net.Conn) {
	defer func() {
		p.clearConn(c)
		t.untrack(c)
	}()
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(c)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	for {
		data, err := readFrame(br)
		if err != nil {
			return
		}
		t.counters.AddReceived(frameHeaderSize + len(data))
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(p.id, data)
		}
	}
}

// tcpPeer is one peer's outbound pipeline: a bounded queue of encoded
// frames drained by a dedicated writer goroutine over the peer's current
// connection (dialed by the writer, or an adopted inbound one).
type tcpPeer struct {
	t  *TCP
	id crypto.NodeID

	queue  chan *[]byte
	connCh chan struct{} // pings the writer when a conn is installed
	flush  chan struct{} // pings the writer to cut a FlushInterval wait short

	mu   sync.Mutex
	conn net.Conn // current write path, nil while disconnected
}

// enqueue adds one frame, evicting the oldest queued frames when full
// (drop-oldest: under overload the queue always holds the freshest
// protocol state, which is what PBFT progress needs).
func (p *tcpPeer) enqueue(f *[]byte) {
	for {
		select {
		case p.queue <- f:
			p.t.net.Enqueued()
			return
		default:
		}
		select {
		case old := <-p.queue:
			p.t.net.Dequeued(1)
			p.t.net.AddDrop()
			releaseFrame(old)
		default:
			// The writer drained the queue between our two selects; retry.
		}
	}
}

// offerConn installs c as the write path if the peer has none; otherwise c
// stays read-only (the duplicate-connection case: both sides dialed).
func (p *tcpPeer) offerConn(c net.Conn) {
	p.mu.Lock()
	if p.conn == nil {
		p.conn = c
	}
	p.mu.Unlock()
	select {
	case p.connCh <- struct{}{}:
	default:
	}
}

// clearConn detaches c if it is the current write path (a reader noticed the
// connection die before the writer did).
func (p *tcpPeer) clearConn(c net.Conn) {
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
	}
	p.mu.Unlock()
}

func (p *tcpPeer) currentConn() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// writeLoop drains the queue over whatever connection is current, dialing
// in the background with capped exponential backoff when there is none.
func (p *tcpPeer) writeLoop() {
	defer p.t.wg.Done()
	var batch []*[]byte
	var bufs net.Buffers
	for {
		// Block for the first frame of the next flush.
		var first *[]byte
		select {
		case <-p.t.closing:
			return
		case first = <-p.queue:
		}

		// Opportunistically coalesce everything already queued, then (with
		// a FlushInterval) linger for stragglers before paying the syscall.
		batch = append(batch[:0], first)
		size := len(*first)
		batch, size = p.drain(batch, size)
		if iv := p.t.FlushInterval; iv > 0 && len(batch) < maxCoalesceFrames && size < maxCoalesceBytes {
			batch, size = p.linger(batch, size, iv)
		}

		c := p.ensureConn()
		if c == nil {
			// Transport closing: the batch is lost (at-most-once).
			p.release(batch)
			return
		}

		bufs = bufs[:0]
		for _, f := range batch {
			bufs = append(bufs, *f)
		}
		// WriteTo consumes its receiver, so hand it a copy of the slice
		// header and keep bufs' backing array for the next flush.
		nb := bufs
		_, err := nb.WriteTo(c)
		if err == nil {
			p.t.net.AddWrite(len(batch))
			for _, f := range batch {
				p.t.counters.AddSent(len(*f))
			}
		} else {
			// Wire loss, not overflow: PBFT's retransmit/view-change
			// machinery recovers. Detach the conn; next loop redials.
			p.t.net.AddWriteError(len(batch))
			p.clearConn(c)
			p.t.untrack(c)
		}
		p.release(batch)
	}
}

// drain moves every immediately available frame into batch, up to the
// coalescing caps.
func (p *tcpPeer) drain(batch []*[]byte, size int) ([]*[]byte, int) {
	for len(batch) < maxCoalesceFrames && size < maxCoalesceBytes {
		select {
		case f := <-p.queue:
			batch = append(batch, f)
			size += len(*f)
		default:
			return batch, size
		}
	}
	return batch, size
}

// linger waits up to iv for more frames before flushing a small batch,
// cut short by Flush or shutdown.
func (p *tcpPeer) linger(batch []*[]byte, size int, iv time.Duration) ([]*[]byte, int) {
	timer := time.NewTimer(iv)
	defer timer.Stop()
	for len(batch) < maxCoalesceFrames && size < maxCoalesceBytes {
		select {
		case f := <-p.queue:
			batch = append(batch, f)
			size += len(*f)
			batch, size = p.drain(batch, size)
		case <-timer.C:
			return batch, size
		case <-p.flush:
			return batch, size
		case <-p.t.closing:
			return batch, size
		}
	}
	return batch, size
}

// release returns batch frames to the pool and settles the depth counter.
func (p *tcpPeer) release(batch []*[]byte) {
	p.t.net.Dequeued(len(batch))
	for _, f := range batch {
		releaseFrame(f)
	}
}

// ensureConn returns the current connection, dialing with backoff until one
// exists. For peers with no dialable address it waits for an inbound
// connection to be adopted. Returns nil only when the transport closes.
func (p *tcpPeer) ensureConn() net.Conn {
	backoff := redialBackoffMin
	for attempt := 0; ; attempt++ {
		if c := p.currentConn(); c != nil {
			return c
		}
		select {
		case <-p.t.closing:
			return nil
		default:
		}
		addr, ok := p.t.peerAddr(p.id)
		if !ok {
			// No address: replies ride an inbound connection only.
			select {
			case <-p.t.closing:
				return nil
			case <-p.connCh:
			}
			continue
		}
		if attempt > 0 {
			p.t.net.AddRedial()
		}
		c, err := net.DialTimeout("tcp", addr, p.t.DialTimeout)
		if err == nil {
			var hello [4]byte
			binary.BigEndian.PutUint32(hello[:], uint32(p.t.id))
			if _, err = c.Write(hello[:]); err != nil {
				_ = c.Close()
			}
		}
		if err != nil {
			// Capped exponential backoff; an adopted inbound connection or
			// shutdown cuts the wait short.
			select {
			case <-p.t.closing:
				return nil
			case <-p.connCh:
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > redialBackoffMax {
				backoff = redialBackoffMax
			}
			continue
		}
		if !p.t.track(c) {
			return nil
		}
		// Install as write path unless an inbound conn won the race; the
		// dialed conn still carries replies either way.
		p.mu.Lock()
		if p.conn == nil {
			p.conn = c
		}
		p.mu.Unlock()
		p.t.wg.Add(1)
		go func() {
			defer p.t.wg.Done()
			p.t.readLoop(p, c)
		}()
	}
}

// readFrame reads one length-prefixed frame. The returned payload is freshly
// allocated: ownership passes to the caller (and on to the handler).
func readFrame(br *bufio.Reader) ([]byte, error) {
	var lenBuf [frameHeaderSize]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, err
	}
	return data, nil
}
