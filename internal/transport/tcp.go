package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// Frame format on a TCP connection:
//
//	hello (once, from dialer):  uint32 BE sender ID
//	message (repeated):         uint32 BE length | payload
//
// maxFrameSize guards against hostile length prefixes.
const maxFrameSize = 64 << 20

// TCP is a Transport over real TCP connections. Outbound connections are
// dialed lazily and redialed on failure; inbound connections are accepted on
// the configured listen address and identified by their hello frame.
type TCP struct {
	id    crypto.NodeID
	peers map[crypto.NodeID]string

	listener net.Listener

	mu      sync.Mutex
	handler Handler
	conns   map[crypto.NodeID]*peerConn // outbound, lazily dialed
	closed  bool

	wg       sync.WaitGroup
	counters metrics.Counters

	// DialTimeout bounds each outbound connection attempt.
	DialTimeout time.Duration
}

var _ Transport = (*TCP)(nil)

// NewTCP creates a TCP transport for id listening on listenAddr. peers maps
// every other node ID to its dialable address. Pass an empty listenAddr to
// create a client-only transport (used by data centers that only dial).
func NewTCP(id crypto.NodeID, listenAddr string, peers map[crypto.NodeID]string) (*TCP, error) {
	t := &TCP{
		id:          id,
		peers:       peers,
		conns:       make(map[crypto.NodeID]*peerConn),
		DialTimeout: 2 * time.Second,
	}
	if listenAddr != "" {
		ln, err := net.Listen("tcp", listenAddr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
		}
		t.listener = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// LocalID implements Transport.
func (t *TCP) LocalID() crypto.NodeID { return t.id }

// SetPeers installs the peer address map. Useful when all listeners must be
// bound (port 0) before any address is known. Call before any Send.
func (t *TCP) SetPeers(peers map[crypto.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers = peers
}

// Addr returns the bound listen address, useful when listening on port 0.
func (t *TCP) Addr() string {
	if t.listener == nil {
		return ""
	}
	return t.listener.Addr().String()
}

// SetHandler implements Transport.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Counters exposes this transport's traffic counters.
func (t *TCP) Counters() *metrics.Counters { return &t.counters }

// Send implements Transport.
func (t *TCP) Send(to crypto.NodeID, data []byte) error {
	pc, err := t.conn(to)
	if err != nil {
		return err
	}
	if err := pc.writeFrame(data); err != nil {
		// Drop the broken connection; the next Send redials.
		t.dropConn(to, pc)
		return fmt.Errorf("transport: send to %v: %w", to, err)
	}
	t.counters.AddSent(len(data))
	return nil
}

// Broadcast implements Transport. Failures to individual peers do not stop
// the broadcast; the first error is returned.
func (t *TCP) Broadcast(data []byte) error {
	t.mu.Lock()
	ids := make([]crypto.NodeID, 0, len(t.peers))
	for id := range t.peers {
		if id != t.id {
			ids = append(ids, id)
		}
	}
	t.mu.Unlock()
	var firstErr error
	for _, id := range ids {
		if err := t.Send(id, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*peerConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.conns = make(map[crypto.NodeID]*peerConn)
	t.mu.Unlock()

	if t.listener != nil {
		_ = t.listener.Close()
	}
	for _, c := range conns {
		_ = c.c.Close()
	}
	t.wg.Wait()
	return nil
}

// conn returns a live outbound connection to peer, dialing if necessary.
func (t *TCP) conn(to crypto.NodeID) (*peerConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}

	c, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", to, addr, err)
	}
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(t.id))
	if _, err := c.Write(hello[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: hello to %v: %w", to, err)
	}

	pc := &peerConn{c: c}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	t.conns[to] = pc
	t.mu.Unlock()

	// Outbound connections also carry replies from the peer.
	t.wg.Add(1)
	go t.readLoop(to, pc)
	return pc, nil
}

func (t *TCP) dropConn(id crypto.NodeID, pc *peerConn) {
	t.mu.Lock()
	if cur, ok := t.conns[id]; ok && cur == pc {
		delete(t.conns, id)
	}
	t.mu.Unlock()
	_ = pc.c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.handleInbound(c)
	}
}

func (t *TCP) handleInbound(c net.Conn) {
	defer t.wg.Done()
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		_ = c.Close()
		return
	}
	from := crypto.NodeID(binary.BigEndian.Uint32(hello[:]))

	// Remember the inbound connection for replies if we have no outbound
	// connection to this peer yet; data centers dial in and expect replies
	// on the same connection.
	pc := &peerConn{c: c}
	t.mu.Lock()
	if _, ok := t.conns[from]; !ok && !t.closed {
		t.conns[from] = pc
	}
	t.mu.Unlock()

	t.wg.Add(1)
	go t.readLoop(from, pc)
}

func (t *TCP) readLoop(from crypto.NodeID, pc *peerConn) {
	defer t.wg.Done()
	defer t.dropConn(from, pc)
	for {
		data, err := readFrame(pc.c)
		if err != nil {
			return
		}
		t.counters.AddReceived(len(data))
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(from, data)
		}
	}
}

// peerConn pairs a connection with a write lock: a large frame may take
// several Write syscalls, so concurrent senders must be serialized or frames
// would interleave on the stream.
type peerConn struct {
	c   net.Conn
	wmu sync.Mutex
}

func (p *peerConn) writeFrame(data []byte) error {
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)
	p.wmu.Lock()
	defer p.wmu.Unlock()
	_, err := p.c.Write(frame)
	return err
}

func readFrame(c net.Conn) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(c, data); err != nil {
		return nil, err
	}
	return data, nil
}
