package transport

import (
	"encoding/binary"
	"sync"

	"zugchain/internal/crypto"
)

// Mux splits one Transport into virtual channels by wire message type tag
// (the first two bytes of every encoded message, little-endian). ZugChain
// uses it to run the PBFT protocol, the communication layer's request
// broadcasts, and the export protocol over the single on-train Ethernet
// link, each subsystem seeing its own Transport.
type Mux struct {
	under Transport

	mu     sync.RWMutex
	ranges []muxRange
}

type muxRange struct {
	lo, hi  uint16
	handler *Handler // indirection: channel handler can be set after Route
}

// NewMux wraps under. The mux takes over under's handler; callers must not
// call under.SetHandler afterwards.
func NewMux(under Transport) *Mux {
	m := &Mux{under: under}
	under.SetHandler(m.dispatch)
	return m
}

// Channel returns a virtual Transport receiving messages whose wire type tag
// falls in [lo, hi]. Sends pass through unmodified.
func (m *Mux) Channel(lo, hi uint16) Transport {
	h := new(Handler)
	m.mu.Lock()
	m.ranges = append(m.ranges, muxRange{lo: lo, hi: hi, handler: h})
	m.mu.Unlock()
	return &muxChannel{mux: m, handler: h}
}

// Close closes the underlying transport.
func (m *Mux) Close() error { return m.under.Close() }

func (m *Mux) dispatch(from crypto.NodeID, data []byte) {
	if len(data) < 2 {
		return
	}
	tag := binary.LittleEndian.Uint16(data)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, r := range m.ranges {
		if tag >= r.lo && tag <= r.hi {
			if h := *r.handler; h != nil {
				h(from, data)
			}
			return
		}
	}
}

type muxChannel struct {
	mux     *Mux
	handler *Handler
}

var _ Transport = (*muxChannel)(nil)

func (c *muxChannel) LocalID() crypto.NodeID { return c.mux.under.LocalID() }

func (c *muxChannel) Send(to crypto.NodeID, data []byte) error {
	return c.mux.under.Send(to, data)
}

func (c *muxChannel) Broadcast(data []byte) error {
	return c.mux.under.Broadcast(data)
}

func (c *muxChannel) SetHandler(h Handler) {
	c.mux.mu.Lock()
	*c.handler = h
	c.mux.mu.Unlock()
}

// Flush implements Flusher when the underlying transport buffers writes;
// otherwise it is a no-op.
func (c *muxChannel) Flush() {
	if f, ok := c.mux.under.(Flusher); ok {
		f.Flush()
	}
}

// Close is a no-op on a channel; close the Mux (or underlying transport)
// to release resources.
func (c *muxChannel) Close() error { return nil }
