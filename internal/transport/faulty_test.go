package transport

import (
	"sync"
	"testing"
	"time"

	"zugchain/internal/crypto"
)

type countingHandler struct {
	mu    sync.Mutex
	got   int
	froms []crypto.NodeID
}

func (c *countingHandler) handle(from crypto.NodeID, data []byte) {
	c.mu.Lock()
	c.got++
	c.froms = append(c.froms, from)
	c.mu.Unlock()
}

func (c *countingHandler) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.got
}

func (c *countingHandler) waitCount(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("got %d messages, want %d", c.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func faultyPair(t *testing.T, cfg FaultConfig, seed int64) (*Faulty, *Faulty, *countingHandler, *countingHandler) {
	t.Helper()
	net := NewNetwork()
	t.Cleanup(func() { net.Close() })
	ids := []crypto.NodeID{0, 1}
	a := NewFaulty(net.Endpoint(0), ids, cfg, seed)
	b := NewFaulty(net.Endpoint(1), ids, cfg, seed+1)
	ha, hb := &countingHandler{}, &countingHandler{}
	a.SetHandler(ha.handle)
	b.SetHandler(hb.handle)
	return a, b, ha, hb
}

func TestFaultyDropsEverythingAtRateOne(t *testing.T) {
	a, _, _, hb := faultyPair(t, FaultConfig{DropRate: 1}, 1)
	for i := 0; i < 20; i++ {
		if err := a.Send(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if hb.count() != 0 {
		t.Errorf("%d messages leaked through DropRate=1", hb.count())
	}
	if s := a.Stats(); s.Dropped != 20 {
		t.Errorf("Dropped = %d, want 20", s.Dropped)
	}
}

func TestFaultyDuplicates(t *testing.T) {
	a, _, _, hb := faultyPair(t, FaultConfig{DuplicateRate: 1}, 1)
	for i := 0; i < 5; i++ {
		if err := a.Send(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	hb.waitCount(t, 10)
	if s := a.Stats(); s.Duplicated != 5 {
		t.Errorf("Duplicated = %d, want 5", s.Duplicated)
	}
}

func TestFaultyDelayDeliversEventually(t *testing.T) {
	a, _, _, hb := faultyPair(t, FaultConfig{DelayRate: 1, MaxDelay: 20 * time.Millisecond}, 1)
	payload := []byte("mutate-after-send")
	if err := a.Send(1, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // the wrapper must have copied the held-back message
	hb.waitCount(t, 1)
	if s := a.Stats(); s.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", s.Delayed)
	}
}

func TestFaultyPartitionBlocksBothDirections(t *testing.T) {
	a, b, ha, hb := faultyPair(t, FaultConfig{}, 1)
	a.Partition(1)
	if err := a.Send(1, []byte("out")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, []byte("in")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if ha.count() != 0 || hb.count() != 0 {
		t.Errorf("partitioned traffic delivered: in=%d out=%d", ha.count(), hb.count())
	}
	a.Heal()
	if err := a.Send(1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	hb.waitCount(t, 1)
}

func TestFaultyBroadcastFaultsPerPeer(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	ids := []crypto.NodeID{0, 1, 2, 3}
	a := NewFaulty(net.Endpoint(0), ids, FaultConfig{}, 1)
	var hs []*countingHandler
	for _, id := range ids[1:] {
		h := &countingHandler{}
		net.Endpoint(id).SetHandler(h.handle)
		hs = append(hs, h)
	}
	a.Partition(2)
	if err := a.Broadcast([]byte("b")); err != nil {
		t.Fatal(err)
	}
	hs[0].waitCount(t, 1)
	hs[2].waitCount(t, 1)
	time.Sleep(20 * time.Millisecond)
	if hs[1].count() != 0 {
		t.Error("broadcast reached a partitioned peer")
	}
}

func TestNetworkRemoveAllowsRestart(t *testing.T) {
	net := NewNetwork()
	defer net.Close()
	ep1 := net.Endpoint(1)
	h1 := &countingHandler{}
	ep1.SetHandler(h1.handle)
	if err := net.Endpoint(0).Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	h1.waitCount(t, 1)

	net.Remove(1)
	if same := net.Endpoint(1); same == ep1 {
		t.Fatal("Remove did not forget the endpoint")
	}
	h2 := &countingHandler{}
	net.Endpoint(1).SetHandler(h2.handle)
	if err := net.Endpoint(0).Send(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	h2.waitCount(t, 1)
	if h1.count() != 1 {
		t.Errorf("old endpoint received post-restart traffic")
	}
}
