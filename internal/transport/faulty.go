package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// FaultConfig parameterizes a Faulty transport wrapper, mirroring
// mvb.FaultConfig for the network side: each knob is a per-message
// probability, applied independently per destination (a broadcast rolls the
// dice once per peer, like separate sends on the train Ethernet).
type FaultConfig struct {
	// DropRate silently discards the message.
	DropRate float64
	// DelayRate holds the message back for a uniform random duration in
	// (0, MaxDelay] before delivering it.
	DelayRate float64
	// MaxDelay bounds injected delays; defaults to 50ms when a DelayRate
	// is set without one.
	MaxDelay time.Duration
	// DuplicateRate delivers the message twice.
	DuplicateRate float64
}

func (c FaultConfig) enabled() bool {
	return c.DropRate > 0 || c.DelayRate > 0 || c.DuplicateRate > 0
}

// FaultStats counts the faults a Faulty wrapper injected.
type FaultStats struct {
	Dropped     uint64
	Delayed     uint64
	Duplicated  uint64
	Partitioned uint64
}

// Faulty wraps a Transport and injects deterministic (seeded) faults on the
// send path: drops, delays, duplicates, and named-peer partitions. It is
// the chaos harness's network: the wrapped transport stays well-behaved
// while the wrapper simulates the lossy, reordering switch fabric between.
// Inbound messages from partitioned peers are dropped too, so a partition
// is symmetric from this node's point of view.
type Faulty struct {
	inner Transport
	peers []crypto.NodeID

	mu      sync.Mutex
	rng     *rand.Rand
	cfg     FaultConfig
	blocked map[crypto.NodeID]bool

	dropped     atomic.Uint64
	delayed     atomic.Uint64
	duplicated  atomic.Uint64
	partitioned atomic.Uint64
}

var _ Transport = (*Faulty)(nil)

// NewFaulty wraps inner. peers must list every replica (including the local
// id; it is skipped on broadcast) so broadcasts can fault each destination
// independently. The same seed over the same message sequence reproduces
// the same fault schedule.
func NewFaulty(inner Transport, peers []crypto.NodeID, cfg FaultConfig, seed int64) *Faulty {
	if cfg.DelayRate > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	ps := make([]crypto.NodeID, len(peers))
	copy(ps, peers)
	return &Faulty{
		inner:   inner,
		peers:   ps,
		rng:     rand.New(rand.NewSource(seed)),
		cfg:     cfg,
		blocked: make(map[crypto.NodeID]bool),
	}
}

// LocalID implements Transport.
func (f *Faulty) LocalID() crypto.NodeID { return f.inner.LocalID() }

// SetHandler implements Transport, filtering inbound traffic from
// partitioned peers.
func (f *Faulty) SetHandler(h Handler) {
	f.inner.SetHandler(func(from crypto.NodeID, data []byte) {
		f.mu.Lock()
		blocked := f.blocked[from]
		f.mu.Unlock()
		if blocked {
			f.partitioned.Add(1)
			return
		}
		h(from, data)
	})
}

// Send implements Transport, rolling the fault dice for this destination.
func (f *Faulty) Send(to crypto.NodeID, data []byte) error {
	f.mu.Lock()
	if f.blocked[to] {
		f.mu.Unlock()
		f.partitioned.Add(1)
		return nil // lost in the partition, like a real link
	}
	cfg := f.cfg
	var drop, dup, delay bool
	var wait time.Duration
	if cfg.enabled() {
		drop = cfg.DropRate > 0 && f.rng.Float64() < cfg.DropRate
		if !drop {
			dup = cfg.DuplicateRate > 0 && f.rng.Float64() < cfg.DuplicateRate
			delay = cfg.DelayRate > 0 && f.rng.Float64() < cfg.DelayRate
			if delay {
				wait = time.Duration(1 + f.rng.Int63n(int64(cfg.MaxDelay)))
			}
		}
	}
	f.mu.Unlock()

	if drop {
		f.dropped.Add(1)
		return nil
	}
	if delay {
		f.delayed.Add(1)
		// The caller may reuse its buffer after Send returns; a held-back
		// message needs its own copy.
		held := make([]byte, len(data))
		copy(held, data)
		time.AfterFunc(wait, func() { _ = f.inner.Send(to, held) })
		if dup {
			f.duplicated.Add(1)
			return f.inner.Send(to, data)
		}
		return nil
	}
	if dup {
		f.duplicated.Add(1)
		if err := f.inner.Send(to, data); err != nil {
			return err
		}
	}
	return f.inner.Send(to, data)
}

// Broadcast implements Transport as a per-peer Send so each destination
// faults independently.
func (f *Faulty) Broadcast(data []byte) error {
	var firstErr error
	self := f.LocalID()
	for _, id := range f.peers {
		if id == self {
			continue
		}
		if err := f.Send(id, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// Partition blocks all traffic to and from the given peers until Heal.
func (f *Faulty) Partition(ids ...crypto.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, id := range ids {
		f.blocked[id] = true
	}
}

// Heal unblocks the given peers (all peers when none are named).
func (f *Faulty) Heal(ids ...crypto.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(ids) == 0 {
		f.blocked = make(map[crypto.NodeID]bool)
		return
	}
	for _, id := range ids {
		delete(f.blocked, id)
	}
}

// NetCounters implements NetStats by passing through to the wrapped
// transport's counters, so chaos runs still export net metrics.
func (f *Faulty) NetCounters() *metrics.NetCounters {
	if ns, ok := f.inner.(NetStats); ok {
		return ns.NetCounters()
	}
	return nil
}

// Stats returns the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	return FaultStats{
		Dropped:     f.dropped.Load(),
		Delayed:     f.delayed.Load(),
		Duplicated:  f.duplicated.Load(),
		Partitioned: f.partitioned.Load(),
	}
}
