package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// LinkConfig describes one directed link in the simulated network.
type LinkConfig struct {
	// Latency is the base one-way delivery delay.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability in [0, 1] that a message is lost.
	DropRate float64
	// Partitioned drops every message on the link.
	Partitioned bool
}

// NetworkOption configures a simulated Network.
type NetworkOption interface {
	apply(*Network)
}

type networkOptionFunc func(*Network)

func (f networkOptionFunc) apply(n *Network) { f(n) }

// WithDefaultLink sets the link configuration applied to every pair of nodes
// that has no explicit override.
func WithDefaultLink(cfg LinkConfig) NetworkOption {
	return networkOptionFunc(func(n *Network) { n.defaultLink = cfg })
}

// WithSeed makes drop and jitter decisions reproducible.
func WithSeed(seed int64) NetworkOption {
	return networkOptionFunc(func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) })
}

// WithInboxSize sets the per-endpoint inbox capacity (the in-process
// equivalent of the TCP transport's SendQueue knob). Messages arriving at a
// full inbox are dropped, like frames on a saturated link.
func WithInboxSize(size int) NetworkOption {
	return networkOptionFunc(func(n *Network) {
		if size > 0 {
			n.inboxSize = size
		}
	})
}

// Network is an in-process message network simulating the train's Ethernet.
// It delivers messages between Endpoints with configurable per-link latency,
// jitter, loss, and partitions, and accounts bytes per node for the
// network-utilization measurements of Fig 6.
type Network struct {
	mu           sync.Mutex
	endpoints    map[crypto.NodeID]*Endpoint
	links        map[[2]crypto.NodeID]LinkConfig
	defaultLink  LinkConfig
	interceptors map[crypto.NodeID]Interceptor
	rng          *rand.Rand
	inboxSize    int
	closed       bool
}

// Interceptor inspects one outbound message and can delay or drop it. Used
// by the evaluation harness to model Byzantine timing behaviour, e.g. a
// primary delaying its preprepares (Fig 9).
type Interceptor func(to crypto.NodeID, data []byte) (delay time.Duration, drop bool)

// NewNetwork creates an empty simulated network.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		endpoints:    make(map[crypto.NodeID]*Endpoint),
		links:        make(map[[2]crypto.NodeID]LinkConfig),
		interceptors: make(map[crypto.NodeID]Interceptor),
		rng:          rand.New(rand.NewSource(1)),
		inboxSize:    4096,
	}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// Endpoint returns (creating if necessary) the endpoint for id.
func (n *Network) Endpoint(id crypto.NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{
		net:    n,
		id:     id,
		inbox:  make(chan envelope, n.inboxSize),
		closed: make(chan struct{}),
	}
	go ep.dispatch()
	n.endpoints[id] = ep
	return ep
}

// SetLink overrides the configuration of the directed link a→b.
func (n *Network) SetLink(a, b crypto.NodeID, cfg LinkConfig) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]crypto.NodeID{a, b}] = cfg
}

// Partition severs both directions between a and b.
func (n *Network) Partition(a, b crypto.NodeID) {
	n.setPartitioned(a, b, true)
}

// Heal restores both directions between a and b.
func (n *Network) Heal(a, b crypto.NodeID) {
	n.setPartitioned(a, b, false)
}

// Isolate severs every link to and from id, simulating a crashed or
// disconnected node.
func (n *Network) Isolate(id crypto.NodeID) {
	n.mu.Lock()
	ids := make([]crypto.NodeID, 0, len(n.endpoints))
	for other := range n.endpoints {
		if other != id {
			ids = append(ids, other)
		}
	}
	n.mu.Unlock()
	for _, other := range ids {
		n.Partition(id, other)
	}
}

// Rejoin restores every link to and from id.
func (n *Network) Rejoin(id crypto.NodeID) {
	n.mu.Lock()
	ids := make([]crypto.NodeID, 0, len(n.endpoints))
	for other := range n.endpoints {
		if other != id {
			ids = append(ids, other)
		}
	}
	n.mu.Unlock()
	for _, other := range ids {
		n.Heal(id, other)
	}
}

func (n *Network) setPartitioned(a, b crypto.NodeID, v bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, key := range [][2]crypto.NodeID{{a, b}, {b, a}} {
		cfg, ok := n.links[key]
		if !ok {
			cfg = n.defaultLink
		}
		cfg.Partitioned = v
		n.links[key] = cfg
	}
}

// Remove closes and forgets the endpoint for id, so a later Endpoint(id)
// call mints a fresh attachment — the simulated equivalent of a crashed
// process releasing its network interface. Link configurations (including
// partitions) survive, as switch state would.
func (n *Network) Remove(id crypto.NodeID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	delete(n.endpoints, id)
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// Close shuts down all endpoints.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		// Endpoint.Close only touches endpoint state.
		_ = ep.Close()
	}
	return nil
}

// linkFor returns the effective config of the directed link a→b.
func (n *Network) linkFor(a, b crypto.NodeID) LinkConfig {
	if cfg, ok := n.links[[2]crypto.NodeID{a, b}]; ok {
		return cfg
	}
	return n.defaultLink
}

// SetInterceptor installs (or, with nil, removes) an outbound interceptor
// for messages sent by id.
func (n *Network) SetInterceptor(id crypto.NodeID, f Interceptor) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == nil {
		delete(n.interceptors, id)
		return
	}
	n.interceptors[id] = f
}

// deliver routes one message. Caller must not hold n.mu.
func (n *Network) deliver(from, to crypto.NodeID, data []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownPeer, to)
	}
	cfg := n.linkFor(from, to)
	if cfg.Partitioned || (cfg.DropRate > 0 && n.rng.Float64() < cfg.DropRate) {
		n.mu.Unlock()
		return nil // silently lost, like a real lossy link
	}
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	interceptor := n.interceptors[from]
	n.mu.Unlock()

	if interceptor != nil {
		extra, drop := interceptor(to, data)
		if drop {
			return nil
		}
		delay += extra
	}

	// Copy so the sender may reuse its buffer immediately.
	msg := make([]byte, len(data))
	copy(msg, data)
	env := envelope{from: from, data: msg}
	if delay <= 0 {
		dst.enqueue(env)
		return nil
	}
	time.AfterFunc(delay, func() { dst.enqueue(env) })
	return nil
}

type envelope struct {
	from crypto.NodeID
	data []byte
}

// Endpoint is one node's attachment to a simulated Network.
type Endpoint struct {
	net *Network
	id  crypto.NodeID

	mu      sync.Mutex
	handler Handler

	inbox     chan envelope
	closed    chan struct{}
	closeOnce sync.Once

	counters metrics.Counters
	netstats metrics.NetCounters
}

var _ Transport = (*Endpoint)(nil)

// LocalID implements Transport.
func (e *Endpoint) LocalID() crypto.NodeID { return e.id }

// SetHandler implements Transport.
func (e *Endpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Counters exposes this endpoint's traffic counters.
func (e *Endpoint) Counters() *metrics.Counters { return &e.counters }

// NetCounters exposes the endpoint's queue counters (inbox drops), the
// in-process analogue of TCP.NetCounters.
func (e *Endpoint) NetCounters() *metrics.NetCounters { return &e.netstats }

// Send implements Transport. Like TCP's, it is a non-blocking enqueue: the
// simulated link delivers (or drops) asynchronously and never blocks the
// caller on the receiver.
func (e *Endpoint) Send(to crypto.NodeID, data []byte) error {
	select {
	case <-e.closed:
		return ErrClosed
	default:
	}
	e.counters.AddSent(len(data))
	return e.net.deliver(e.id, to, data)
}

// Broadcast implements Transport. Per the paper's model, broadcast is a
// point-to-point send to every peer (no network-level multicast on the
// train Ethernet).
func (e *Endpoint) Broadcast(data []byte) error {
	e.net.mu.Lock()
	peers := make([]crypto.NodeID, 0, len(e.net.endpoints))
	for id := range e.net.endpoints {
		if id != e.id {
			peers = append(peers, id)
		}
	}
	e.net.mu.Unlock()
	var firstErr error
	for _, id := range peers {
		if err := e.Send(id, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close implements Transport.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	return nil
}

func (e *Endpoint) enqueue(env envelope) {
	select {
	case <-e.closed:
	case e.inbox <- env:
		e.netstats.Enqueued()
	default:
		// Inbox full: drop, as a saturated real link would. The paper
		// observes exactly this for the baseline at 32 ms bus cycles
		// ("the baseline cannot keep up ... requests are dropped").
		e.netstats.AddDrop()
	}
}

// dispatch delivers inbound messages to the handler, sequentially.
func (e *Endpoint) dispatch() {
	for {
		select {
		case <-e.closed:
			return
		case env := <-e.inbox:
			e.netstats.Dequeued(1)
			e.counters.AddReceived(len(env.data))
			e.mu.Lock()
			h := e.handler
			e.mu.Unlock()
			if h != nil {
				h(env.from, env.data)
			}
		}
	}
}
