// Package transport moves encoded protocol messages between ZugChain
// participants over the secondary (non-safety-critical) link — the Ethernet
// network of §III-A. Two implementations are provided:
//
//   - Network/Endpoint: an in-process simulated network with configurable
//     latency, jitter, loss and partitions, plus per-node byte accounting.
//     All evaluation scenarios run on it.
//   - TCP: a real TCP transport with length-prefixed frames for multi-process
//     deployments (cmd/zugchain, cmd/zc-datacenter).
//
// The transport is deliberately unauthenticated: every protocol message is
// signed at the protocol layer, so transport-level tampering is equivalent to
// a Byzantine peer and is handled there.
package transport

import (
	"errors"

	"zugchain/internal/crypto"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an unregistered node.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Handler consumes an inbound message. Implementations must not retain data
// beyond the call unless they copy it. Handlers are invoked sequentially per
// endpoint.
type Handler func(from crypto.NodeID, data []byte)

// Transport sends encoded messages to peers and delivers inbound messages to
// a handler.
type Transport interface {
	// LocalID returns the ID this transport sends as.
	LocalID() crypto.NodeID
	// Send transmits data to a single peer. Delivery is best-effort:
	// a nil error does not guarantee receipt (links may drop).
	Send(to crypto.NodeID, data []byte) error
	// Broadcast transmits data to every known peer except the local node.
	Broadcast(data []byte) error
	// SetHandler installs the inbound delivery callback. It must be called
	// before any messages arrive.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}
