// Package transport moves encoded protocol messages between ZugChain
// participants over the secondary (non-safety-critical) link — the Ethernet
// network of §III-A. Two implementations are provided:
//
//   - Network/Endpoint: an in-process simulated network with configurable
//     latency, jitter, loss and partitions, plus per-node byte accounting.
//     All evaluation scenarios run on it.
//   - TCP: a real TCP transport with length-prefixed frames for multi-process
//     deployments (cmd/zugchain, cmd/zc-datacenter).
//
// The transport is deliberately unauthenticated: every protocol message is
// signed at the protocol layer, so transport-level tampering is equivalent to
// a Byzantine peer and is handled there.
package transport

import (
	"errors"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an unregistered node.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Handler consumes an inbound message. Ownership of data passes to the
// handler: every transport delivers each message in freshly allocated
// storage and never touches it again, so handlers (and the decoded protocol
// messages that alias data, see wire.Decoder.Bytes) may retain it
// indefinitely. Handlers are invoked sequentially per connection; a node
// with several connections to the same peer may see concurrent invocations.
type Handler func(from crypto.NodeID, data []byte)

// Transport sends encoded messages to peers and delivers inbound messages to
// a handler.
//
// Sends are asynchronous and non-blocking: Send and Broadcast hand the
// message to a bounded outbound queue and return without waiting for
// connection establishment, remote reads, or even local write syscalls. A
// slow, dead, or unreachable peer therefore never stalls the caller — its
// queue fills and the transport drops the oldest queued messages. This
// at-most-once behaviour is safe for ZugChain because every protocol layer
// above already tolerates loss: PBFT retransmits via its timeout/view-change
// machinery, and the communication layer re-broadcasts open requests.
type Transport interface {
	// LocalID returns the ID this transport sends as.
	LocalID() crypto.NodeID
	// Send transmits data to a single peer. Delivery is best-effort:
	// a nil error means queued, not delivered (links and queues may drop).
	// The caller may reuse data as soon as Send returns.
	Send(to crypto.NodeID, data []byte) error
	// Broadcast transmits data to every known peer except the local node.
	// Each peer has its own queue; per-peer failures are isolated.
	Broadcast(data []byte) error
	// SetHandler installs the inbound delivery callback. It must be called
	// before any messages arrive.
	SetHandler(h Handler)
	// Close releases resources and stops delivery.
	Close() error
}

// Flusher is optionally implemented by transports that buffer or delay
// outbound writes (TCP with a positive FlushInterval). Flush pushes all
// buffered frames toward the wire immediately; it does not wait for them.
type Flusher interface {
	Flush()
}

// NetStats is optionally implemented by transports that keep outbound
// pipeline counters (TCP, the in-process Endpoint, and wrappers that pass
// through to one). The observability layer discovers the counters through
// this interface so it can export them without knowing the concrete type.
type NetStats interface {
	NetCounters() *metrics.NetCounters
}
