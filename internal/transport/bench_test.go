package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"zugchain/internal/crypto"
)

// benchWindow bounds how many messages a benchmark keeps in flight. It must
// stay below the send queue capacity: the transport drops the oldest frame
// on overflow, and a dropped frame would leave the receiver counter short
// of its target forever.
const benchWindow = 512

// benchWait spins until the receiver-side counter reaches want.
func benchWait(b *testing.B, got *atomic.Uint64, want uint64) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for got.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("received %d/%d messages before deadline", got.Load(), want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// benchThrottle keeps at most benchWindow frames outstanding (sent counts
// frames, one per receiver) so no bounded per-peer queue can overflow.
func benchThrottle(b *testing.B, got *atomic.Uint64, sent uint64) {
	b.Helper()
	if sent < benchWindow {
		return
	}
	deadline := time.Now().Add(2 * time.Minute)
	for got.Load()+benchWindow < sent {
		if time.Now().After(deadline) {
			b.Fatalf("receiver stuck at %d with %d sent", got.Load(), sent)
		}
		// Park, don't spin: a Gosched loop on a single-core host keeps the
		// run queue non-empty so the netpoller is only serviced by sysmon
		// (~10ms), stalling the reader. Real callers block normally.
		time.Sleep(20 * time.Microsecond)
	}
}

// BenchmarkTransportTCPSend measures the single-peer send path over TCP
// loopback: b.N 256-byte messages, timed until the last one is delivered.
func BenchmarkTransportTCPSend(b *testing.B) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c, err := NewTCP(1, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	a.SetPeers(map[crypto.NodeID]string{1: c.Addr()})

	var got atomic.Uint64
	c.SetHandler(func(from crypto.NodeID, data []byte) { got.Add(1) })

	msg := make([]byte, 256)
	// Establish the connection outside the timed region.
	if err := a.Send(1, msg); err != nil {
		b.Fatal(err)
	}
	benchWait(b, &got, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchThrottle(b, &got, uint64(i))
		if err := a.Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	benchWait(b, &got, uint64(b.N)+1)
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "msgs/s")
	}
}

// BenchmarkTransportTCPBroadcast measures the three-peer broadcast fan-out
// over TCP loopback, the exact shape of a PBFT protocol message leaving a
// four-node replica.
func BenchmarkTransportTCPBroadcast(b *testing.B) {
	a, err := NewTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	peers := make(map[crypto.NodeID]string)
	var got atomic.Uint64
	for i := 1; i <= 3; i++ {
		p, err := NewTCP(crypto.NodeID(i), "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		p.SetHandler(func(from crypto.NodeID, data []byte) { got.Add(1) })
		peers[crypto.NodeID(i)] = p.Addr()
	}
	a.SetPeers(peers)

	msg := make([]byte, 256)
	if err := a.Broadcast(msg); err != nil {
		b.Fatal(err)
	}
	benchWait(b, &got, 3)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchThrottle(b, &got, uint64(3*i))
		if err := a.Broadcast(msg); err != nil {
			b.Fatal(err)
		}
	}
	benchWait(b, &got, uint64(3*(b.N+1)))
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "broadcasts/s")
	}
}
