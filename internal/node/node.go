// Package node assembles a complete ZugChain replica: the MVB reader feeds
// parsed, filtered signal records into the communication layer (Algorithm
// 1), which orders them through PBFT; decided requests are bundled into the
// blockchain, every block is checkpointed, and the export server serves
// data centers and state transfers — the full pipeline of Fig 3.
package node

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/core"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/mvb"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

// Wire tag ranges carved out of the shared transport by the mux.
const (
	pbftTagLo, pbftTagHi     = 0x10, 0x2f
	coreTagLo, coreTagHi     = 0x30, 0x3f
	exportTagLo, exportTagHi = 0x40, 0x4f
)

// compactionPrefix marks the on-chain joint agreement to compact blocks to
// headers (§III-D error (v)).
const compactionPrefix = "zc-compact:"

// Config parameterizes a ZugChain node.
type Config struct {
	// ID is this replica.
	ID crypto.NodeID
	// Replicas lists all replica IDs in ascending order.
	Replicas []crypto.NodeID
	// BlockSize is the number of ordered requests per block and
	// checkpoint (the paper evaluates with 10).
	BlockSize uint64
	// DataDir, when set, persists the blockchain to disk.
	DataDir string
	// SoftTimeout/HardTimeout drive Algorithm 1 (250 ms each in §V).
	SoftTimeout time.Duration
	HardTimeout time.Duration
	// ViewTimeout is the PBFT view-change progress timeout.
	ViewTimeout time.Duration
	// DeleteQuorum is the number of data centers whose signed deletes
	// authorize pruning.
	DeleteQuorum int
	// DataCenters lists authorized data-center IDs.
	DataCenters []crypto.NodeID
	// WindowSeqs sizes the duplicate-filter window (see core.Config).
	WindowSeqs uint64
	// MaxOpenPerOrigin bounds open broadcast requests per node.
	MaxOpenPerOrigin int
	// MaxBatch caps how many records the primary coalesces into one
	// batched proposal; 1 (the default) disables batching. See
	// core.Config.MaxBatch.
	MaxBatch int
	// MaxBatchDelay bounds the wait before a partial batch is flushed.
	MaxBatchDelay time.Duration
}

func (c *Config) applyDefaults() {
	if c.BlockSize == 0 {
		c.BlockSize = pbft.DefaultCheckpointInterval
	}
	if c.SoftTimeout <= 0 {
		c.SoftTimeout = 250 * time.Millisecond
	}
	if c.HardTimeout <= 0 {
		c.HardTimeout = 250 * time.Millisecond
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 500 * time.Millisecond
	}
	if c.DeleteQuorum <= 0 {
		c.DeleteQuorum = 1
	}
}

// Node is one ZugChain replica.
type Node struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry
	clk clock.Clock

	mux    *transport.Mux
	pool   *crypto.VerifyPool
	runner *pbft.Runner
	layer  *core.Layer
	store  *blockchain.Store
	srv    *export.Server

	mu      sync.Mutex
	filters map[int]*signal.Filter // per input source (§III-C)
	builder *blockchain.Builder

	busWG   sync.WaitGroup
	stopped sync.Once
}

// New assembles a node on top of the given transport (the node muxes it into
// protocol channels internally).
func New(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry, tr transport.Transport, clk clock.Clock) (*Node, error) {
	cfg.applyDefaults()
	store, err := blockchain.NewStore(cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("node: open store: %w", err)
	}

	n := &Node{
		cfg:     cfg,
		kp:      kp,
		reg:     reg,
		clk:     clk,
		store:   store,
		filters: make(map[int]*signal.Filter),
	}
	n.builder = blockchain.NewBuilder(store.Head(), 1<<30 /* seal at checkpoints, not by count */)

	n.mux = transport.NewMux(tr)
	pbftChan := n.mux.Channel(pbftTagLo, pbftTagHi)
	coreChan := n.mux.Channel(coreTagLo, coreTagHi)
	exportChan := n.mux.Channel(exportTagLo, exportTagHi)

	engine, err := pbft.NewEngine(pbft.Config{
		ID:                 cfg.ID,
		Replicas:           cfg.Replicas,
		CheckpointInterval: cfg.BlockSize,
	}, kp, reg)
	if err != nil {
		return nil, err
	}
	// One verification pipeline per node, shared by the PBFT runner and
	// the communication layer: all inbound Ed25519 checks run on its
	// workers, keeping both the consensus event loop and the transport
	// delivery goroutines free of crypto (Fig 7's dominant CPU cost).
	n.pool = crypto.NewVerifyPool(0)
	n.runner = pbft.NewRunner(engine, pbftChan, clk, (*pbftApp)(n), pbft.RunnerConfig{
		BaseViewTimeout: cfg.ViewTimeout,
		VerifyPool:      n.pool,
	})

	n.layer = core.New(core.Config{
		ID:               cfg.ID,
		SoftTimeout:      cfg.SoftTimeout,
		HardTimeout:      cfg.HardTimeout,
		MaxOpenPerOrigin: cfg.MaxOpenPerOrigin,
		WindowSeqs:       cfg.WindowSeqs,
		VerifyPool:       n.pool,
		MaxBatch:         cfg.MaxBatch,
		MaxBatchDelay:    cfg.MaxBatchDelay,
	}, kp, reg, n.runner, coreChan, clk, (*chainRecorder)(n))

	n.srv = export.NewServer(export.ServerConfig{
		ID:                 cfg.ID,
		CheckpointInterval: cfg.BlockSize,
		DeleteQuorum:       cfg.DeleteQuorum,
		DataCenters:        cfg.DataCenters,
	}, kp, reg, store, exportChan)
	n.srv.SetStateReplyHandler(n.onStateReply)

	return n, nil
}

// Start launches the consensus runner.
func (n *Node) Start() { n.runner.Start() }

// Stop shuts down the node. The verify pool closes last: in-flight
// verification tasks may still try to enqueue into the runner or layer,
// whose closed-checks make that a safe no-op. The store closes after the
// bus drains, once nothing can append anymore.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		n.layer.Close()
		n.runner.Stop()
		n.pool.Close()
		n.busWG.Wait()
		_ = n.store.Close()
	})
}

// Store exposes the node's blockchain.
func (n *Node) Store() *blockchain.Store { return n.store }

// Layer exposes the communication layer (metrics, inspection).
func (n *Node) Layer() *core.Layer { return n.layer }

// Runner exposes the PBFT runner.
func (n *Node) Runner() *pbft.Runner { return n.runner }

// VerifyPool exposes the node's signature-verification pipeline (stats,
// inspection).
func (n *Node) VerifyPool() *crypto.VerifyPool { return n.pool }

// ExportServer exposes the export server.
func (n *Node) ExportServer() *export.Server { return n.srv }

// HandleFrame processes one bus frame through the verified parse/filter
// pipeline and submits the surviving signals as one consolidated request.
// Frames whose signals are all filtered produce no request, mirroring JRU
// change-detection behaviour.
func (n *Node) HandleFrame(frame mvb.Frame) {
	n.HandleFrameSource(0, frame)
}

// HandleFrameSource is HandleFrame for a specific input source index. Nodes
// connected to several (partially synchronous) buses keep one logical queue
// per link (§III-C "Multiple Input Sources"); per-source change-detection
// state keeps the filters independent.
func (n *Node) HandleFrameSource(src int, frame mvb.Frame) {
	rec, _ := mvb.ParseFrame(frame) // unparseable ports are skipped, rest logged
	n.mu.Lock()
	filter, ok := n.filters[src]
	if !ok {
		filter = signal.NewFilter(nil)
		n.filters[src] = filter
	}
	filtered := filter.Apply(rec.Signals)
	n.mu.Unlock()
	if len(filtered) == 0 {
		return
	}
	out := signal.Record{Cycle: rec.Cycle, Signals: filtered}
	n.layer.OnBusRecord(src, out.Marshal())
}

// RunBus consumes frames from reader (input source 0) until ctx is
// cancelled.
func (n *Node) RunBus(ctx context.Context, reader *mvb.Reader) {
	n.RunBusSource(ctx, 0, reader)
}

// RunBusSource consumes frames from one of several attached buses.
func (n *Node) RunBusSource(ctx context.Context, src int, reader *mvb.Reader) {
	n.busWG.Add(1)
	go func() {
		defer n.busWG.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case frame := <-reader.C():
				n.HandleFrameSource(src, frame)
			}
		}
	}()
}

// ProposeCompaction submits the on-chain joint agreement to compact blocks
// up to `through` to headers (§III-D error (v)). Once ordered, every replica
// executes the compaction deterministically when the marker is logged.
func (n *Node) ProposeCompaction(through uint64) {
	payload := fmt.Sprintf("%s%d", compactionPrefix, through)
	n.layer.OnBusRecord(0, []byte(payload))
}

// chainRecorder adapts the node to core.Recorder: the LOG up-call of
// Table I appends the decided request to the pending block.
type chainRecorder Node

// Log implements core.Recorder.
func (r *chainRecorder) Log(seq uint64, origin crypto.NodeID, payload, sig []byte) {
	n := (*Node)(r)
	if through, ok := parseCompaction(payload); ok {
		// Joint agreement: compact everything up to `through` (never the
		// head) to headers. The marker itself is also logged below.
		_ = n.store.CompactToHeaders(through)
	}
	n.mu.Lock()
	n.builder.Add(blockchain.Entry{
		Seq:     seq,
		Origin:  origin,
		Payload: payload,
		Sig:     sig,
	})
	n.mu.Unlock()
}

func parseCompaction(payload []byte) (uint64, bool) {
	s := string(payload)
	if !strings.HasPrefix(s, compactionPrefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, compactionPrefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// pbftApp adapts the node to pbft.Application.
type pbftApp Node

// Deliver implements pbft.Application: hand the DECIDE to the layer, which
// filters duplicates before logging.
func (a *pbftApp) Deliver(seq uint64, req pbft.Request) {
	(*Node)(a).layer.OnDecide(seq, req)
}

// CheckpointDigest implements pbft.Application: seal the block for this
// checkpoint and persist it; its hash is the checkpoint state digest.
func (a *pbftApp) CheckpointDigest(seq uint64) crypto.Digest {
	n := (*Node)(a)
	n.mu.Lock()
	block := n.builder.SealCheckpoint(seq)
	n.mu.Unlock()
	if err := n.store.Append(block); err != nil {
		// Appending a locally built block to the local head can only
		// fail after state corruption; the checkpoint exchange will
		// detect the divergence (StateTransferNeeded follows).
		return crypto.Hash([]byte(fmt.Sprintf("corrupt-%d", seq)))
	}
	return block.Hash()
}

// OnPrePrepared implements pbft.PrePrepareObserver: relay the primary's
// accepted proposal to the layer so it can downgrade the soft timeout.
func (a *pbftApp) OnPrePrepared(seq uint64, payloadDigest crypto.Digest) {
	(*Node)(a).layer.OnPrePrepared(payloadDigest)
}

// StableCheckpoint implements pbft.Application.
func (a *pbftApp) StableCheckpoint(proof pbft.CheckpointProof) {
	(*Node)(a).srv.OnStableCheckpoint(proof)
}

// NewPrimary implements pbft.Application.
func (a *pbftApp) NewPrimary(view uint64, primary crypto.NodeID) {
	(*Node)(a).layer.OnNewPrimary(view, primary)
}

// StateTransferNeeded implements pbft.Application: fetch the authoritative
// blocks from peers (export error (ii)).
func (a *pbftApp) StateTransferNeeded(seq uint64, digest crypto.Digest) {
	n := (*Node)(a)
	for _, peer := range n.cfg.Replicas {
		if peer != n.cfg.ID {
			n.srv.RequestStateTransfer(peer, n.store.HeadIndex()+1)
		}
	}
	_ = digest // the installed blocks are verified by hash linkage
}

// onStateReply installs transferred blocks, verifying linkage. The
// contiguous run extending the local head goes to the store as one batch,
// so the whole transfer costs a single group commit instead of one fsync
// per block.
func (n *Node) onStateReply(reply *export.StateReply) {
	blocks, err := export.DecodeStateBlocks(reply)
	if err != nil {
		return
	}
	next := n.store.HeadIndex() + 1
	var run []*blockchain.Block
	for _, b := range blocks {
		if b.Index == next+uint64(len(run)) {
			run = append(run, b)
		}
	}
	if len(run) == 0 {
		return
	}
	if err := n.store.AppendBatch(run); err != nil {
		return
	}
	n.mu.Lock()
	n.builder.ResetTo(n.store.Head())
	n.mu.Unlock()
}
