// Package node assembles a complete ZugChain replica: the MVB reader feeds
// parsed, filtered signal records into the communication layer (Algorithm
// 1), which orders them through PBFT; decided requests are bundled into the
// blockchain, every block is checkpointed, and the export server serves
// data centers and state transfers — the full pipeline of Fig 3.
package node

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/core"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/metrics"
	"zugchain/internal/mvb"
	"zugchain/internal/obsv"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
	"zugchain/internal/wal"
)

// Wire tag ranges carved out of the shared transport by the mux.
const (
	pbftTagLo, pbftTagHi     = 0x10, 0x2f
	coreTagLo, coreTagHi     = 0x30, 0x3f
	exportTagLo, exportTagHi = 0x40, 0x4f
)

// compactionPrefix marks the on-chain joint agreement to compact blocks to
// headers (§III-D error (v)).
const compactionPrefix = "zc-compact:"

// Config parameterizes a ZugChain node.
type Config struct {
	// ID is this replica.
	ID crypto.NodeID
	// Replicas lists all replica IDs in ascending order.
	Replicas []crypto.NodeID
	// BlockSize is the number of ordered requests per block and
	// checkpoint (the paper evaluates with 10).
	BlockSize uint64
	// DataDir, when set, persists the blockchain to disk.
	DataDir string
	// SoftTimeout/HardTimeout drive Algorithm 1 (250 ms each in §V).
	SoftTimeout time.Duration
	HardTimeout time.Duration
	// ViewTimeout is the PBFT view-change progress timeout.
	ViewTimeout time.Duration
	// DeleteQuorum is the number of data centers whose signed deletes
	// authorize pruning.
	DeleteQuorum int
	// DataCenters lists authorized data-center IDs.
	DataCenters []crypto.NodeID
	// WindowSeqs sizes the duplicate-filter window (see core.Config).
	WindowSeqs uint64
	// MaxOpenPerOrigin bounds open broadcast requests per node.
	MaxOpenPerOrigin int
	// MaxBatch caps how many records the primary coalesces into one
	// batched proposal; 1 (the default) disables batching. See
	// core.Config.MaxBatch.
	MaxBatch int
	// MaxBatchDelay bounds the wait before a partial batch is flushed.
	MaxBatchDelay time.Duration
	// WALDir, when set, persists PBFT protocol state (views, phase votes,
	// checkpoint proofs, the dedup window) to a write-ahead log so a
	// crashed replica restarts without equivocating. Defaults to
	// DataDir/wal when DataDir is set.
	WALDir string
	// DisableWAL turns the write-ahead log off even when DataDir is set
	// (for simulations that trade durability for speed).
	DisableWAL bool
	// StateRetryInterval is the base backoff between state-transfer
	// retry rounds (doubling up to 16x); default 100ms.
	StateRetryInterval time.Duration
	// StateRetryRounds bounds how many consecutive no-progress retry
	// rounds the fetcher attempts before parking (a later divergence
	// event re-arms it); default 10.
	StateRetryRounds int
	// VerifyCacheSize bounds the verified-signature cache: 0 selects
	// crypto.DefaultVerifyCacheSize, negative disables the cache.
	VerifyCacheSize int
	// DisableBatchVerify turns off the Ed25519 multi-scalar batch
	// verification of batched proposals' inner signatures, falling back to
	// sequential scalar verifies (for debugging and A/B measurement).
	DisableBatchVerify bool
	// TraceRing is the number of completed record lifecycle traces retained
	// for /tracez (0 selects obsv.DefaultTraceRing).
	TraceRing int
	// TraceSlow, when positive, marks and logs records whose
	// ingest-to-execute latency meets the threshold.
	TraceSlow time.Duration
	// DisableTrace turns per-record lifecycle tracing off entirely (for
	// overhead A/B measurement; metrics and the event journal stay on).
	DisableTrace bool
}

// walDir returns the effective WAL directory, empty when disabled.
func (c *Config) walDir() string {
	if c.DisableWAL {
		return ""
	}
	if c.WALDir != "" {
		return c.WALDir
	}
	if c.DataDir != "" {
		return filepath.Join(c.DataDir, "wal")
	}
	return ""
}

func (c *Config) applyDefaults() {
	if c.BlockSize == 0 {
		c.BlockSize = pbft.DefaultCheckpointInterval
	}
	if c.SoftTimeout <= 0 {
		c.SoftTimeout = 250 * time.Millisecond
	}
	if c.HardTimeout <= 0 {
		c.HardTimeout = 250 * time.Millisecond
	}
	if c.ViewTimeout <= 0 {
		c.ViewTimeout = 500 * time.Millisecond
	}
	if c.DeleteQuorum <= 0 {
		c.DeleteQuorum = 1
	}
	if c.StateRetryInterval <= 0 {
		c.StateRetryInterval = 100 * time.Millisecond
	}
	if c.StateRetryRounds <= 0 {
		c.StateRetryRounds = 10
	}
}

// Node is one ZugChain replica.
type Node struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry
	clk clock.Clock
	cc  *metrics.CryptoCounters

	mux    *transport.Mux
	pool   *crypto.VerifyPool
	engine *pbft.Engine
	runner *pbft.Runner
	layer  *core.Layer
	store  *blockchain.Store
	srv    *export.Server
	wlog   *wal.Log
	obs    *obsv.Observer

	recovery RecoveryInfo

	mu      sync.Mutex
	filters map[int]*signal.Filter // per input source (§III-C)
	builder *blockchain.Builder

	// State-transfer retry machinery (see fetchLoop): fetchTarget is the
	// block index the chain must reach; fetchActive whether a retry loop
	// is running.
	fetchMu     sync.Mutex
	fetchTarget uint64
	fetchActive bool

	quit    chan struct{}
	busWG   sync.WaitGroup
	stopped sync.Once
}

// New assembles a node on top of the given transport (the node muxes it into
// protocol channels internally).
func New(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry, tr transport.Transport, clk clock.Clock) (*Node, error) {
	cfg.applyDefaults()

	// Crypto acceleration (DESIGN.md §3.11): every verification this node
	// performs goes through an accelerated registry view — a per-node
	// verified-signature cache plus batch verification for batched
	// proposals — and the node's own signatures seed the cache at Sign
	// time. The view shares the caller's key set, so co-located nodes
	// (tests, simulations) still see one keyring while caching
	// independently, as separate machines would.
	cc := &metrics.CryptoCounters{}
	var vcache *crypto.VerifyCache
	if cfg.VerifyCacheSize >= 0 {
		vcache = crypto.NewVerifyCache(cfg.VerifyCacheSize, cc)
	}
	reg = reg.Accelerated(vcache, !cfg.DisableBatchVerify, cc)
	kp = kp.WithCache(vcache)

	store, err := blockchain.NewStore(cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("node: open store: %w", err)
	}

	n := &Node{
		cfg:     cfg,
		kp:      kp,
		reg:     reg,
		clk:     clk,
		cc:      cc,
		store:   store,
		filters: make(map[int]*signal.Filter),
		quit:    make(chan struct{}),
		obs: obsv.NewObserver(obsv.Options{
			TraceRing:    cfg.TraceRing,
			TraceSlow:    cfg.TraceSlow,
			DisableTrace: cfg.DisableTrace,
		}),
	}
	n.recovery.StoreReport = store.Recovery()
	n.builder = blockchain.NewBuilder(store.Head(), 1<<30 /* seal at checkpoints, not by count */)

	var walRecs []wal.Record
	if dir := cfg.walDir(); dir != "" {
		n.wlog, walRecs, n.recovery.WALReport, err = wal.Open(dir)
		if err != nil {
			_ = store.Close()
			return nil, fmt.Errorf("node: open wal: %w", err)
		}
	}

	n.mux = transport.NewMux(tr)
	pbftChan := n.mux.Channel(pbftTagLo, pbftTagHi)
	coreChan := n.mux.Channel(coreTagLo, coreTagHi)
	exportChan := n.mux.Channel(exportTagLo, exportTagHi)

	engine, err := pbft.NewEngine(pbft.Config{
		ID:                 cfg.ID,
		Replicas:           cfg.Replicas,
		CheckpointInterval: cfg.BlockSize,
	}, kp, reg)
	if err != nil {
		if n.wlog != nil {
			_ = n.wlog.Close()
		}
		_ = store.Close()
		return nil, err
	}
	n.engine = engine
	windowEntries := n.restoreFromWAL(engine, walRecs)

	// One verification pipeline per node, shared by the PBFT runner and
	// the communication layer: all inbound Ed25519 checks run on its
	// workers, keeping both the consensus event loop and the transport
	// delivery goroutines free of crypto (Fig 7's dominant CPU cost).
	n.pool = crypto.NewVerifyPool(0)
	runnerCfg := pbft.RunnerConfig{
		BaseViewTimeout: cfg.ViewTimeout,
		VerifyPool:      n.pool,
		Tracer:          n.obs.Tracer,
		Journal:         n.obs.Journal,
	}
	if n.wlog != nil {
		runnerCfg.Persister = walPersister{n.wlog}
	}
	n.runner = pbft.NewRunner(engine, pbftChan, clk, (*pbftApp)(n), runnerCfg)

	n.layer = core.New(core.Config{
		ID:               cfg.ID,
		SoftTimeout:      cfg.SoftTimeout,
		HardTimeout:      cfg.HardTimeout,
		MaxOpenPerOrigin: cfg.MaxOpenPerOrigin,
		WindowSeqs:       cfg.WindowSeqs,
		VerifyPool:       n.pool,
		MaxBatch:         cfg.MaxBatch,
		MaxBatchDelay:    cfg.MaxBatchDelay,
		Tracer:           n.obs.Tracer,
	}, kp, reg, n.runner, coreChan, clk, (*chainRecorder)(n))

	if len(windowEntries) > 0 {
		n.layer.RestoreWindow(windowEntries)
		n.recovery.WindowRestored = n.layer.WindowLen()
	}

	n.srv = export.NewServer(export.ServerConfig{
		ID:                 cfg.ID,
		CheckpointInterval: cfg.BlockSize,
		DeleteQuorum:       cfg.DeleteQuorum,
		DataCenters:        cfg.DataCenters,
	}, kp, reg, store, exportChan)
	n.srv.SetStateReplyHandler(n.onStateReply)

	// Every counter family the node owns self-registers into the observer's
	// registry: one /metrics scrape sees the whole pipeline.
	r := n.obs.Registry
	obsv.RegisterCore(r, n.layer.Counters())
	obsv.RegisterBatch(r, n.layer.Batches())
	obsv.RegisterPool(r, n.pool.Stats)
	obsv.RegisterCrypto(r, cc)
	if n.wlog != nil {
		obsv.RegisterWAL(r, n.wlog.Counters())
	}
	obsv.RegisterGroupCommit(r, store.GroupCommits())
	if ns, ok := tr.(transport.NetStats); ok {
		if nc := ns.NetCounters(); nc != nil {
			obsv.RegisterNet(r, nc)
		}
	}
	r.Register("chain", func() []obsv.Metric {
		return []obsv.Metric{
			{Name: "zugchain_chain_height", Help: "Blockchain head index", Kind: obsv.KindGauge, Value: float64(n.store.HeadIndex())},
			{Name: "zugchain_chain_base", Help: "Oldest retained full block", Kind: obsv.KindGauge, Value: float64(n.store.Base())},
			{Name: "zugchain_chain_open", Help: "Open requests in the queue R", Kind: obsv.KindGauge, Value: float64(n.layer.OpenRequests())},
		}
	})

	return n, nil
}

// Start launches the consensus runner and, when recovery found the quorum
// certified a checkpoint beyond the local chain, the state-transfer fetcher
// that rejoins via the existing transfer path.
func (n *Node) Start() {
	n.runner.Start()
	if t := n.recovery.PendingTransfer; t > n.store.HeadIndex() {
		n.ensureStateFetch(t)
	}
}

// Stop shuts down the node. The verify pool closes last: in-flight
// verification tasks may still try to enqueue into the runner or layer,
// whose closed-checks make that a safe no-op. The store and WAL close after
// the bus drains, once nothing can append anymore.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		close(n.quit)
		n.layer.Close()
		n.runner.Stop()
		n.pool.Close()
		n.busWG.Wait()
		if n.wlog != nil {
			_ = n.wlog.Close()
		}
		_ = n.store.Close()
	})
}

// Store exposes the node's blockchain.
func (n *Node) Store() *blockchain.Store { return n.store }

// Layer exposes the communication layer (metrics, inspection).
func (n *Node) Layer() *core.Layer { return n.layer }

// Runner exposes the PBFT runner.
func (n *Node) Runner() *pbft.Runner { return n.runner }

// VerifyPool exposes the node's signature-verification pipeline (stats,
// inspection).
func (n *Node) VerifyPool() *crypto.VerifyPool { return n.pool }

// CryptoStats returns the node's crypto acceleration counters: batch
// verification shape and verified-signature cache traffic.
func (n *Node) CryptoStats() metrics.CryptoSnapshot { return n.cc.Snapshot() }

// ExportServer exposes the export server.
func (n *Node) ExportServer() *export.Server { return n.srv }

// Obs exposes the node's observability state: the metrics registry every
// counter family registered into, the record lifecycle tracer (nil when
// disabled), and the consensus event journal. Serve it with obsv.Serve.
func (n *Node) Obs() *obsv.Observer { return n.obs }

// HandleFrame processes one bus frame through the verified parse/filter
// pipeline and submits the surviving signals as one consolidated request.
// Frames whose signals are all filtered produce no request, mirroring JRU
// change-detection behaviour.
func (n *Node) HandleFrame(frame mvb.Frame) {
	n.HandleFrameSource(0, frame)
}

// HandleFrameSource is HandleFrame for a specific input source index. Nodes
// connected to several (partially synchronous) buses keep one logical queue
// per link (§III-C "Multiple Input Sources"); per-source change-detection
// state keeps the filters independent.
func (n *Node) HandleFrameSource(src int, frame mvb.Frame) {
	rec, _ := mvb.ParseFrame(frame) // unparseable ports are skipped, rest logged
	n.mu.Lock()
	filter, ok := n.filters[src]
	if !ok {
		filter = signal.NewFilter(nil)
		n.filters[src] = filter
	}
	filtered := filter.Apply(rec.Signals)
	n.mu.Unlock()
	if len(filtered) == 0 {
		return
	}
	out := signal.Record{Cycle: rec.Cycle, Signals: filtered}
	n.layer.OnBusRecord(src, out.Marshal())
}

// RunBus consumes frames from reader (input source 0) until ctx is
// cancelled.
func (n *Node) RunBus(ctx context.Context, reader *mvb.Reader) {
	n.RunBusSource(ctx, 0, reader)
}

// RunBusSource consumes frames from one of several attached buses.
func (n *Node) RunBusSource(ctx context.Context, src int, reader *mvb.Reader) {
	n.busWG.Add(1)
	go func() {
		defer n.busWG.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case frame := <-reader.C():
				n.HandleFrameSource(src, frame)
			}
		}
	}()
}

// ProposeCompaction submits the on-chain joint agreement to compact blocks
// up to `through` to headers (§III-D error (v)). Once ordered, every replica
// executes the compaction deterministically when the marker is logged.
func (n *Node) ProposeCompaction(through uint64) {
	payload := fmt.Sprintf("%s%d", compactionPrefix, through)
	n.layer.OnBusRecord(0, []byte(payload))
}

// chainRecorder adapts the node to core.Recorder: the LOG up-call of
// Table I appends the decided request to the pending block.
type chainRecorder Node

// Log implements core.Recorder.
func (r *chainRecorder) Log(seq uint64, origin crypto.NodeID, payload, sig []byte) {
	n := (*Node)(r)
	if through, ok := parseCompaction(payload); ok {
		// Joint agreement: compact everything up to `through` (never the
		// head) to headers. The marker itself is also logged below.
		_ = n.store.CompactToHeaders(through)
	}
	n.mu.Lock()
	n.builder.Add(blockchain.Entry{
		Seq:     seq,
		Origin:  origin,
		Payload: payload,
		Sig:     sig,
	})
	n.mu.Unlock()
}

func parseCompaction(payload []byte) (uint64, bool) {
	s := string(payload)
	if !strings.HasPrefix(s, compactionPrefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, compactionPrefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// pbftApp adapts the node to pbft.Application.
type pbftApp Node

// Deliver implements pbft.Application: hand the DECIDE to the layer, which
// filters duplicates before logging.
func (a *pbftApp) Deliver(seq uint64, req pbft.Request) {
	(*Node)(a).layer.OnDecide(seq, req)
}

// CheckpointDigest implements pbft.Application: seal the block for this
// checkpoint and persist it; its hash is the checkpoint state digest.
func (a *pbftApp) CheckpointDigest(seq uint64) crypto.Digest {
	n := (*Node)(a)
	// A state transfer may have installed this checkpoint's block already
	// (local execution racing the transferred run): sealing again would mint
	// a block at the wrong index. One block per checkpoint since genesis,
	// so the checkpoint's block index is seq over the block size.
	idx := seq / n.cfg.BlockSize
	if idx <= n.store.HeadIndex() {
		if b, err := n.store.Get(idx); err == nil {
			head := n.store.Head()
			n.mu.Lock()
			if n.builder.NextIndex() <= head.Header.Index {
				retained := n.builder.PendingEntries()
				n.builder.ResetTo(head)
				for _, e := range retained {
					if e.Seq > head.Header.LastSeq {
						n.builder.Add(e)
					}
				}
			}
			n.mu.Unlock()
			return b.Hash()
		}
	}
	n.mu.Lock()
	if n.builder.NextIndex() < idx {
		// The executed watermark jumped past slots this replica never
		// delivered (stable-checkpoint catch-up) and the transfer filling
		// the gap has not landed: sealing now would mint this block at the
		// wrong index and silently fork the chain. Keep the entries pending,
		// report a divergent digest, and let the checkpoint exchange drive
		// state transfer until the chain catches a boundary again.
		n.mu.Unlock()
		n.ensureStateFetch(idx)
		// The divergent digest mixes in this replica's ID: correlated
		// lagging (e.g. simultaneous crash-restarts) must not let 2f+1
		// matching gap digests certify a stable checkpoint on a phantom
		// state that corresponds to no block.
		return crypto.Hash([]byte(fmt.Sprintf("gap-%d-%d", seq, n.cfg.ID)))
	}
	block := n.builder.SealCheckpoint(seq)
	n.mu.Unlock()
	if err := n.store.Append(block); err == nil {
		// The block is durable: stamp fsync on every completed trace at or
		// below this checkpoint's sequence.
		n.obs.Tracer.Fsync(seq)
	} else {
		// Appending a locally built block to the local head can only
		// fail after state corruption; the checkpoint exchange will
		// detect the divergence (StateTransferNeeded follows). Per-replica
		// digest for the same reason as the gap case above.
		return crypto.Hash([]byte(fmt.Sprintf("corrupt-%d-%d", seq, n.cfg.ID)))
	}
	return block.Hash()
}

// OnPrePrepared implements pbft.PrePrepareObserver: relay the primary's
// accepted proposal to the layer so it can downgrade the soft timeout.
func (a *pbftApp) OnPrePrepared(seq uint64, payloadDigest crypto.Digest) {
	(*Node)(a).layer.OnPrePrepared(payloadDigest)
}

// StableCheckpoint implements pbft.Application. Besides notifying the
// export server, a stable checkpoint is the WAL's truncation point: every
// pinned vote at or below it is re-certified by the quorum's signatures, so
// the log rotates down to a compact snapshot (view state, the proof itself,
// and the dedup-window entries the chain cannot re-derive).
func (a *pbftApp) StableCheckpoint(proof pbft.CheckpointProof) {
	n := (*Node)(a)
	n.rotateWAL(proof)
	n.srv.OnStableCheckpoint(proof)
}

// NewPrimary implements pbft.Application.
func (a *pbftApp) NewPrimary(view uint64, primary crypto.NodeID) {
	(*Node)(a).layer.OnNewPrimary(view, primary)
}

// StateTransferNeeded implements pbft.Application: fetch the authoritative
// blocks from peers (export error (ii)). The actual requests are issued by
// the retrying fetcher — a single fire-and-forget round over a drop-oldest
// transport would strand this replica until the next divergence event if
// one frame were lost.
func (a *pbftApp) StateTransferNeeded(seq uint64, digest crypto.Digest) {
	n := (*Node)(a)
	target := n.targetBlockIndex(seq)
	n.obs.Journal.Record(obsv.Event{
		Kind: obsv.EventStateTransferNeeded, Seq: seq, Node: n.cfg.ID,
		Detail: fmt.Sprintf("target-block=%d head=%d", target, n.store.HeadIndex()),
	})
	n.ensureStateFetch(target)
	_ = digest // the installed blocks are verified by hash linkage
}

// onStateReply installs transferred blocks, verifying linkage. The
// contiguous run extending the local head goes to the store as one batch,
// so the whole transfer costs a single group commit instead of one fsync
// per block.
func (n *Node) onStateReply(reply *export.StateReply) {
	blocks, err := export.DecodeStateBlocks(reply)
	if err != nil {
		return
	}
	next := n.store.HeadIndex() + 1
	var run []*blockchain.Block
	for _, b := range blocks {
		if b.Index == next+uint64(len(run)) {
			run = append(run, b)
		}
	}
	if len(run) == 0 {
		return
	}
	if err := n.store.AppendBatch(run); err != nil {
		return
	}
	n.obs.Journal.Record(obsv.Event{
		Kind: obsv.EventStateTransfer, Seq: run[len(run)-1].Header.LastSeq, Node: n.cfg.ID,
		Detail: fmt.Sprintf("installed-blocks=%d head=%d", len(run), n.store.HeadIndex()),
	})

	// The transfer runs while consensus keeps deciding: slots beyond the
	// transferred range may already sit in the builder and must survive the
	// rebase, and the installed entries must enter the dedup window — they
	// were logged by the quorum, so deciding their payloads again (e.g. a
	// hard-timeout rebroadcast racing the transfer) must filter, not
	// double-LOG.
	head := n.store.Head()
	n.mu.Lock()
	retained := n.builder.PendingEntries()
	n.builder.ResetTo(head)
	for _, e := range retained {
		if e.Seq > head.Header.LastSeq {
			n.builder.Add(e)
		}
	}
	n.mu.Unlock()

	var entries []core.WindowEntry
	for _, b := range run {
		for _, e := range b.Entries {
			entries = append(entries, core.WindowEntry{Digest: crypto.Hash(e.Payload), Seq: e.Seq})
		}
	}
	n.layer.RestoreWindow(entries)
}
