package node

import (
	"testing"
	"time"

	"zugchain/internal/pbft"
	"zugchain/internal/signal"
)

// TestClusterBatchingIdenticalChains runs the full pipeline with request
// batching enabled on every node: the primary coalesces concurrent bus
// records into batched proposals, and all replicas must still converge on
// identical, per-record chains with exactly-once logging.
func TestClusterBatchingIdenticalChains(t *testing.T) {
	c := newCluster(t, func(cfg *Config) {
		cfg.MaxBatch = 8
		cfg.MaxBatchDelay = 2 * time.Millisecond
	}, nil)
	c.tickUntilBlocks(3, 30*time.Second)

	for i, n := range c.nodes {
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("node %d chain: %v", i, err)
		}
	}
	c.assertChainsAgree(3)

	// The batching stage actually engaged on whichever node was primary.
	flushes := uint64(0)
	for _, n := range c.nodes {
		flushes += n.Layer().Batches().Snapshot().Flushes
	}
	if flushes == 0 {
		t.Error("no batch flushes recorded on any node")
	}

	// Exactly-once per record, even through batched agreement slots.
	seen := make(map[uint64]int)
	blocks, err := c.nodes[0].Store().Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		for _, e := range b.Entries {
			rec, err := signal.UnmarshalRecord(e.Payload)
			if err != nil {
				t.Fatalf("entry payload: %v", err)
			}
			seen[rec.Cycle]++
		}
	}
	for cycle, count := range seen {
		if count != 1 {
			t.Errorf("cycle %d logged %d times", cycle, count)
		}
	}
}

// TestClusterByzantinePrimaryBatchDuplicate has the initial primary propose
// a hand-crafted batch that carries the same record twice — a primary that
// fails (or refuses) to filter duplicates. Every correct replica must log
// the duplicated payload exactly once, suspect the primary, and keep making
// progress under the next one.
func TestClusterByzantinePrimaryBatchDuplicate(t *testing.T) {
	c := newCluster(t, func(cfg *Config) {
		cfg.MaxBatch = 8
		cfg.MaxBatchDelay = 2 * time.Millisecond
	}, nil)

	// Node 0 is the view-0 primary. Craft its Byzantine proposal: three
	// properly signed records, one payload appearing twice.
	fresh := pbft.Request{Payload: []byte("byz-fresh")}
	pbft.SignRequest(&fresh, c.kps[0])
	dup := pbft.Request{Payload: []byte("byz-dup")}
	pbft.SignRequest(&dup, c.kps[0])
	batch := pbft.Request{
		Payload: pbft.EncodeBatch([]pbft.Request{dup, fresh, dup}),
		Batch:   true,
	}
	pbft.SignRequest(&batch, c.kps[0])
	c.nodes[0].Runner().Propose(batch)

	// The batch passes deep verification (all inner signatures are good),
	// so it is ordered — and every replica's decide path then detects the
	// in-batch duplicate.
	deadline := time.Now().Add(30 * time.Second)
	for {
		dups := 0
		for _, n := range c.nodes {
			if n.Layer().Counters().Snapshot().Duplicates > 0 {
				dups++
			}
		}
		if dups == len(c.nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d nodes flagged the in-batch duplicate", dups, len(c.nodes))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The suspicion triggers a view change; the cluster keeps ordering bus
	// traffic under the new primary.
	c.tickUntilBlocks(2, 60*time.Second)
	c.assertChainsAgree(2)

	// The Byzantine payloads appear exactly once on every chain.
	for i, n := range c.nodes {
		counts := map[string]int{}
		blocks, err := n.Store().Range(1, n.Store().HeadIndex())
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			for _, e := range b.Entries {
				counts[string(e.Payload)]++
			}
		}
		if counts["byz-dup"] != 1 {
			t.Errorf("node %d logged byz-dup %d times, want exactly 1", i, counts["byz-dup"])
		}
		if counts["byz-fresh"] != 1 {
			t.Errorf("node %d logged byz-fresh %d times, want exactly 1", i, counts["byz-fresh"])
		}
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("node %d chain: %v", i, err)
		}
	}
}
