package node

import (
	"fmt"
	"sort"

	"zugchain/internal/blockchain"
	"zugchain/internal/core"
	"zugchain/internal/crypto"
	"zugchain/internal/obsv"
	"zugchain/internal/pbft"
	"zugchain/internal/wal"
)

// RecoveryInfo summarizes what a restarting node reconstructed from its
// on-disk state. Zero-valued on a fresh start.
type RecoveryInfo struct {
	// WALRecords is the number of protocol records replayed from the WAL.
	WALRecords int
	// WALReport details WAL segment recovery (torn-tail truncation).
	WALReport wal.RecoveryReport
	// StoreReport details blockchain recovery (corrupt tail blocks).
	StoreReport blockchain.RecoveryReport
	// RestoredView is the PBFT view the replica resumed in.
	RestoredView uint64
	// RestoredSeq is the last sequence number known executed before the
	// crash (nothing at or below it is re-executed).
	RestoredSeq uint64
	// WindowRestored is the number of dedup-window entries reseeded.
	WindowRestored int
	// PendingTransfer, when nonzero, is the block index a quorum certified
	// beyond the local chain; Start kicks the state-transfer fetcher at it.
	PendingTransfer uint64
}

// Recovery reports what this node restored on startup.
func (n *Node) Recovery() RecoveryInfo { return n.recovery }

// walPersister adapts the WAL to pbft.Persister: one action batch becomes
// one group-committed append, durable before the runner sends anything.
type walPersister struct{ log *wal.Log }

var persistToWALKind = map[pbft.PersistKind]wal.Kind{
	pbft.PersistView:         wal.KindView,
	pbft.PersistPrePrepare:   wal.KindPrePrepare,
	pbft.PersistPrepare:      wal.KindPrepare,
	pbft.PersistCommit:       wal.KindCommit,
	pbft.PersistPreparedCert: wal.KindPreparedCert,
}

// Persist implements pbft.Persister.
func (p walPersister) Persist(recs []pbft.PersistRecord) error {
	out := make([]wal.Record, 0, len(recs))
	for _, r := range recs {
		kind, ok := persistToWALKind[r.Kind]
		if !ok {
			continue
		}
		out = append(out, wal.Record{
			Kind:   kind,
			View:   r.View,
			Seq:    r.Seq, // for KindView this is the highest view a ViewChange was sent for
			Digest: r.Digest,
			Flag:   r.InViewChange,
			Data:   r.Data,
		})
	}
	return p.log.Append(out...)
}

var walToPersistKind = map[wal.Kind]pbft.PersistKind{
	wal.KindPrePrepare: pbft.PersistPrePrepare,
	wal.KindPrepare:    pbft.PersistPrepare,
	wal.KindCommit:     pbft.PersistCommit,
}

// restoreFromWAL interprets the replayed WAL records and rebuilds the
// replica's pre-crash state: view and view-change progress, the newest
// quorum-certified checkpoint, the digests pinned by pre-crash votes,
// prepared certificates, and the dedup window (returned for the layer,
// which does not exist yet when this runs). Called from New, before the
// runner starts. A non-empty chain with an empty WAL — the WAL wiped,
// disabled, or newly enabled over an existing DataDir — still restores the
// executed watermark from the chain head and reseeds the window from
// blocks: restarting at executed=0 would re-execute and double-LOG
// sequences whose effects are already durable.
func (n *Node) restoreFromWAL(engine *pbft.Engine, recs []wal.Record) []core.WindowEntry {
	head := n.store.Head()
	var headIdx, headLastSeq uint64
	if head != nil {
		headIdx, headLastSeq = head.Header.Index, head.Header.LastSeq
	}
	if len(recs) == 0 && headIdx == 0 {
		// Fresh start: nothing durable anywhere (the store always holds
		// genesis, so an empty chain is headIdx == 0, not head == nil).
		return nil
	}

	quorum := 2*((len(n.cfg.Replicas)-1)/3) + 1
	st := pbft.RestoredState{}
	window := make(map[crypto.Digest]uint64)
	for _, r := range recs {
		switch r.Kind {
		case wal.KindView:
			// Later records supersede earlier ones within a segment, and
			// segments replay in order.
			st.View = r.View
			st.SentVCFor = r.Seq
		case wal.KindCheckpoint:
			proof, err := pbft.DecodeCheckpointProof(r.Data)
			if err != nil {
				continue
			}
			// Disk contents are not implicitly trusted: a proof that no
			// longer carries a valid quorum is ignored.
			if err := proof.Verify(n.reg, quorum); err != nil {
				continue
			}
			if proof.Seq >= st.Stable.Seq {
				st.Stable = proof
			}
		case wal.KindPrePrepare, wal.KindPrepare, wal.KindCommit:
			st.Pinned = append(st.Pinned, pbft.PersistRecord{
				Kind:   walToPersistKind[r.Kind],
				View:   r.View,
				Seq:    r.Seq,
				Digest: r.Digest,
			})
		case wal.KindPreparedCert:
			proof, err := pbft.DecodePreparedProof(r.Data)
			if err != nil {
				continue
			}
			// Engine.Restore validates the certificate's quorum before
			// readmitting it to the P set.
			st.Certs = append(st.Certs, proof)
		case wal.KindDedup:
			if r.Seq > window[r.Digest] {
				window[r.Digest] = r.Seq
			}
		}
	}

	// Blocks are fsync'd before their checkpoint messages broadcast and
	// SealCheckpoint stamps LastSeq, so the chain head marks the last
	// durably executed sequence; the stable proof may certify further if
	// the final append raced the crash. Nothing at or below the max is
	// re-executed — its LOG effects are already on disk.
	st.Executed = st.Stable.Seq
	if headLastSeq > st.Executed {
		st.Executed = headLastSeq
	}
	engine.Restore(st)
	n.recovery.WALRecords = len(recs)
	n.recovery.RestoredView = st.View
	n.recovery.RestoredSeq = st.Executed
	if st.Stable.Seq > headLastSeq {
		n.recovery.PendingTransfer = n.targetBlockIndex(st.Stable.Seq)
	}
	n.obs.Journal.Record(obsv.Event{
		Kind: obsv.EventRecovery, View: st.View, Seq: st.Executed, Node: n.cfg.ID,
		Detail: fmt.Sprintf("wal-records=%d head=%d pending-transfer=%d",
			len(recs), headIdx, n.recovery.PendingTransfer),
	})

	// The WAL snapshot carries window entries at or below the last stable
	// checkpoint; entries decided after it are re-derived from the chain
	// blocks themselves (payload digest = hash of the logged payload).
	// Decides past the head re-execute and re-enter the window naturally.
	width := n.cfg.WindowSeqs
	if width == 0 {
		width = core.DefaultWindowSeqs
	}
	var minSeq uint64
	if st.Executed > width {
		minSeq = st.Executed - width + 1
	}
	base := n.store.Base()
	for idx := headIdx; idx > base; idx-- {
		b, err := n.store.Get(idx)
		if err != nil {
			break // compacted to header: entries below are gone too
		}
		if b.Header.LastSeq < minSeq {
			break
		}
		for _, e := range b.Entries {
			if e.Seq < minSeq {
				continue
			}
			d := crypto.Hash(e.Payload)
			if e.Seq > window[d] {
				window[d] = e.Seq
			}
		}
	}

	entries := make([]core.WindowEntry, 0, len(window))
	for d, seq := range window {
		if seq < minSeq {
			continue
		}
		entries = append(entries, core.WindowEntry{Digest: d, Seq: seq})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return entries
}

// rotateWAL compacts the log down to a snapshot at a new stable checkpoint:
// the current view state, the quorum proof itself, the votes and prepared
// certificates for in-flight slots above the checkpoint, and the
// dedup-window entries the chain cannot re-derive. Called from the runner's
// event loop (via StableCheckpoint), so reading engine state is safe.
func (n *Node) rotateWAL(proof pbft.CheckpointProof) {
	if n.wlog == nil {
		return
	}
	view, sentVC, inVC := n.engine.ViewState()
	snapshot := []wal.Record{
		{Kind: wal.KindView, View: view, Seq: sentVC, Flag: inVC},
		{Kind: wal.KindCheckpoint, Seq: proof.Seq, Data: pbft.EncodeCheckpointProof(proof)},
	}
	// Votes for slots in (S, S+window] are routinely cast before the
	// checkpoint at S stabilizes. The quorum's signatures only re-certify
	// votes at or below S; everything above it must roll into the new
	// segment, or a crash right after rotation would restart the replica
	// with no pins for those slots and let it re-vote a conflicting digest.
	for _, r := range n.engine.VoteRecords() {
		kind, ok := persistToWALKind[r.Kind]
		if !ok {
			continue
		}
		snapshot = append(snapshot, wal.Record{Kind: kind, View: r.View, Seq: r.Seq, Digest: r.Digest})
	}
	// Likewise the P set: prepared certificates above the checkpoint back
	// this replica's ViewChange claims across a restart.
	for _, p := range n.engine.PreparedProofs() {
		cp := p
		snapshot = append(snapshot, wal.Record{
			Kind: wal.KindPreparedCert,
			View: cp.PrePrepare.View,
			Seq:  cp.PrePrepare.Seq,
			Data: pbft.EncodePreparedProof(&cp),
		})
	}
	for _, e := range n.layer.WindowSnapshot(proof.Seq) {
		snapshot = append(snapshot, wal.Record{Kind: wal.KindDedup, Seq: e.Seq, Digest: e.Digest})
	}
	if err := n.wlog.Rotate(snapshot); err == nil {
		n.obs.Journal.Record(obsv.Event{
			Kind: obsv.EventWALRotation, View: view, Seq: proof.Seq, Node: n.cfg.ID,
			Detail: fmt.Sprintf("snapshot-records=%d", len(snapshot)),
		})
	}
}

// targetBlockIndex maps a PBFT sequence number to the block index whose
// checkpoint covers it, relative to the local head.
func (n *Node) targetBlockIndex(seq uint64) uint64 {
	head := n.store.Head()
	var headIdx, headLastSeq uint64
	if head != nil {
		headIdx, headLastSeq = head.Header.Index, head.Header.LastSeq
	}
	if seq <= headLastSeq {
		return headIdx
	}
	return headIdx + (seq-headLastSeq+n.cfg.BlockSize-1)/n.cfg.BlockSize
}

// ensureStateFetch records that the chain must reach target and starts the
// retrying fetcher if it is not already running. Safe from any goroutine.
func (n *Node) ensureStateFetch(target uint64) {
	n.fetchMu.Lock()
	defer n.fetchMu.Unlock()
	if target > n.fetchTarget {
		n.fetchTarget = target
	}
	if n.fetchActive || n.fetchTarget <= n.store.HeadIndex() {
		return
	}
	n.fetchActive = true
	go n.fetchLoop()
}

// fetchLoop re-requests blocks from every peer with doubling backoff until
// the chain reaches the fetch target, the retry budget runs out with no
// progress (a later divergence event re-arms it), or the node stops. The
// original implementation sent one fire-and-forget request to one peer: a
// single dropped frame on the drop-oldest transport stranded the replica
// until the next checkpoint divergence.
func (n *Node) fetchLoop() {
	wait := n.cfg.StateRetryInterval
	maxWait := 16 * n.cfg.StateRetryInterval
	stalled := 0
	for {
		n.fetchMu.Lock()
		target := n.fetchTarget
		if n.store.HeadIndex() >= target {
			n.fetchActive = false
			n.fetchMu.Unlock()
			return
		}
		n.fetchMu.Unlock()

		before := n.store.HeadIndex()
		for _, peer := range n.cfg.Replicas {
			if peer != n.cfg.ID {
				n.srv.RequestStateTransfer(peer, before+1)
			}
		}

		select {
		case <-n.quit:
			n.fetchMu.Lock()
			n.fetchActive = false
			n.fetchMu.Unlock()
			return
		case <-n.clk.After(wait):
		}

		if n.store.HeadIndex() > before {
			stalled = 0
			wait = n.cfg.StateRetryInterval
			continue
		}
		stalled++
		if stalled >= n.cfg.StateRetryRounds {
			n.fetchMu.Lock()
			n.fetchActive = false
			n.fetchMu.Unlock()
			return
		}
		if wait *= 2; wait > maxWait {
			wait = maxWait
		}
	}
}
