package node

import (
	"context"
	"testing"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/mvb"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

// cluster wires four ZugChain nodes to a shared bus and network.
type cluster struct {
	t       *testing.T
	net     *transport.Network
	bus     *mvb.Bus
	nodes   []*Node
	readers []*mvb.Reader
	kps     map[crypto.NodeID]*crypto.KeyPair
	reg     *crypto.Registry
	cancel  context.CancelFunc
}

func newCluster(t *testing.T, tweak func(*Config), faults []mvb.FaultConfig) *cluster {
	t.Helper()
	c := &cluster{
		t:   t,
		net: transport.NewNetwork(),
		kps: make(map[crypto.NodeID]*crypto.KeyPair),
	}
	gen := signal.NewGenerator(signal.DefaultGeneratorConfig())
	c.bus = mvb.NewBus(mvb.Config{})
	c.bus.Attach(mvb.NewSignalDevice(gen))

	ids := []crypto.NodeID{0, 1, 2, 3}
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		c.kps[id] = kp
		pairs = append(pairs, kp)
	}
	c.reg = crypto.NewRegistry(pairs...)

	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	// Under the race detector on a loaded single-core host, message handling
	// can take longer than these production-scale timeouts, and a cluster
	// whose view timeout fires faster than a view change completes livelocks
	// in a view-change storm until the CPU frees up. Scale the timeouts like
	// tickUntilBlocks scales its deadlines.
	scale := time.Duration(1)
	if raceEnabled {
		scale = 5
	}
	for i, id := range ids {
		cfg := Config{
			ID:          id,
			Replicas:    ids,
			SoftTimeout: scale * 200 * time.Millisecond,
			HardTimeout: scale * 200 * time.Millisecond,
			ViewTimeout: scale * 400 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		n, err := New(cfg, c.kps[id], c.reg, c.net.Endpoint(id), clock.Real{})
		if err != nil {
			t.Fatal(err)
		}
		var fc mvb.FaultConfig
		if faults != nil {
			fc = faults[i]
		}
		reader := c.bus.NewReader(fc, int64(i)+1)
		c.readers = append(c.readers, reader)
		c.nodes = append(c.nodes, n)
		n.Start()
		n.RunBus(ctx, reader)
	}
	t.Cleanup(func() {
		cancel()
		for _, n := range c.nodes {
			n.Stop()
		}
		c.net.Close()
	})
	return c
}

// tickUntilBlocks drives bus cycles until every node's chain reaches the
// given height (or the deadline passes).
func (c *cluster) tickUntilBlocks(height uint64, deadline time.Duration) {
	c.t.Helper()
	if raceEnabled {
		deadline *= 3
	}
	end := time.Now().Add(deadline)
	for {
		c.bus.Tick()
		time.Sleep(5 * time.Millisecond)
		done := true
		for _, n := range c.nodes {
			if n.Store().HeadIndex() < height {
				done = false
				break
			}
		}
		if done {
			return
		}
		if time.Now().After(end) {
			for i, n := range c.nodes {
				c.t.Logf("node %d: head=%d open=%d", i, n.Store().HeadIndex(), n.Layer().OpenRequests())
			}
			c.t.Fatalf("chains did not reach height %d in %v", height, deadline)
		}
	}
}

// minHeight returns the lowest chain height across nodes.
func minHeight(nodes []*Node) uint64 {
	low := nodes[0].Store().HeadIndex()
	for _, n := range nodes[1:] {
		if h := n.Store().HeadIndex(); h < low {
			low = h
		}
	}
	return low
}

// assertChainsAgree verifies every node holds identical blocks 1..height.
func (c *cluster) assertChainsAgree(height uint64) {
	c.t.Helper()
	ref := c.nodes[0].Store()
	for i, n := range c.nodes {
		for idx := uint64(1); idx <= height; idx++ {
			a, errA := ref.Get(idx)
			b, errB := n.Store().Get(idx)
			if errA != nil || errB != nil {
				c.t.Fatalf("node %d block %d: %v %v", i, idx, errA, errB)
			}
			if a.Hash() != b.Hash() {
				c.t.Errorf("node %d block %d diverges", i, idx)
			}
		}
	}
}

func TestClusterEndToEndIdenticalChains(t *testing.T) {
	c := newCluster(t, nil, nil)
	c.tickUntilBlocks(3, 30*time.Second)

	// All chains verify and agree block by block.
	ref := c.nodes[0].Store()
	for i, n := range c.nodes {
		store := n.Store()
		if err := store.VerifyChain(); err != nil {
			t.Errorf("node %d chain: %v", i, err)
		}
		for idx := uint64(1); idx <= 3; idx++ {
			a, errA := ref.Get(idx)
			b, errB := store.Get(idx)
			if errA != nil || errB != nil {
				t.Fatalf("node %d block %d: %v %v", i, idx, errA, errB)
			}
			if a.Hash() != b.Hash() {
				t.Errorf("node %d block %d diverges", i, idx)
			}
		}
	}

	// Duplicate filtering: each bus cycle must appear exactly once in the
	// chain even though all four nodes read it.
	seen := make(map[uint64]int)
	blocks, err := ref.Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		for _, e := range b.Entries {
			rec, err := signal.UnmarshalRecord(e.Payload)
			if err != nil {
				t.Fatalf("entry payload: %v", err)
			}
			seen[rec.Cycle]++
		}
	}
	for cycle, count := range seen {
		if count != 1 {
			t.Errorf("cycle %d logged %d times", cycle, count)
		}
	}
}

func TestClusterToleratesBusFaults(t *testing.T) {
	faults := []mvb.FaultConfig{
		{DropRate: 0.3},
		{BitFlipRate: 0.2},
		{DelayRate: 0.2},
		{}, // one clean reader
	}
	c := newCluster(t, nil, faults)
	c.tickUntilBlocks(2, 60*time.Second)

	for i, n := range c.nodes {
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("node %d chain: %v", i, err)
		}
	}
	// Chains agree despite per-node bus faults.
	a := c.nodes[0].Store()
	b := c.nodes[3].Store()
	for idx := uint64(1); idx <= 2; idx++ {
		ba, errA := a.Get(idx)
		bb, errB := b.Get(idx)
		if errA != nil || errB != nil {
			t.Fatalf("block %d: %v %v", idx, errA, errB)
		}
		if ba.Hash() != bb.Hash() {
			t.Errorf("block %d diverges across nodes", idx)
		}
	}
}

func TestClusterExportAndPrune(t *testing.T) {
	dcID := crypto.DataCenterIDBase
	dcKP := crypto.MustGenerateKeyPair(dcID)
	c := newCluster(t, func(cfg *Config) {
		cfg.DataCenters = []crypto.NodeID{dcID}
		cfg.DeleteQuorum = 1
	}, nil)
	c.reg.Add(dcID, dcKP.Public)

	archive, err := blockchain.NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	dcMux := transport.NewMux(c.net.Endpoint(dcID))
	dc := export.NewDataCenter(export.DataCenterConfig{
		ID:          dcID,
		Replicas:    []crypto.NodeID{0, 1, 2, 3},
		ReadTimeout: 5 * time.Second,
	}, dcKP, c.reg, archive, dcMux.Channel(0x40, 0x4f))

	c.tickUntilBlocks(3, 30*time.Second)

	group := &export.Group{DCs: []*export.DataCenter{dc}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	report, err := group.ExportRound(ctx)
	if err != nil {
		t.Fatalf("ExportRound: %v", err)
	}
	if report.BlockIndex < 3 {
		t.Errorf("exported through block %d", report.BlockIndex)
	}
	if err := archive.VerifyChain(); err != nil {
		t.Errorf("archive: %v", err)
	}
	// Replicas pruned to the exported index.
	deadline := time.Now().Add(10 * time.Second)
	for _, n := range c.nodes {
		for n.Store().Base() < report.BlockIndex {
			if time.Now().After(deadline) {
				t.Fatalf("node %v base = %d, want %d", n.cfg.ID, n.Store().Base(), report.BlockIndex)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("pruned chain: %v", err)
		}
	}
}

func TestClusterCompactionAgreement(t *testing.T) {
	c := newCluster(t, nil, nil)
	c.tickUntilBlocks(3, 30*time.Second)

	c.nodes[0].ProposeCompaction(2)
	// The marker is ordered like any request and executed on every node.
	wait := 20 * time.Second
	if raceEnabled {
		wait = 90 * time.Second
	}
	deadline := time.Now().Add(wait)
	for _, n := range c.nodes {
		for {
			_, err := n.Store().Get(1)
			if err != nil { // compacted away
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("compaction never executed")
			}
			c.bus.Tick()
			time.Sleep(10 * time.Millisecond)
		}
		if _, err := n.Store().Header(1); err != nil {
			t.Errorf("node %v lost header 1", n.cfg.ID)
		}
		if err := n.Store().VerifyChain(); err != nil {
			t.Errorf("node %v chain after compaction: %v", n.cfg.ID, err)
		}
	}
}

func TestCompactionMarkerParsing(t *testing.T) {
	tests := []struct {
		payload string
		want    uint64
		ok      bool
	}{
		{"zc-compact:42", 42, true},
		{"zc-compact:0", 0, true},
		{"zc-compact:", 0, false},
		{"zc-compact:abc", 0, false},
		{"speed=100", 0, false},
	}
	for _, tt := range tests {
		got, ok := parseCompaction([]byte(tt.payload))
		if got != tt.want || ok != tt.ok {
			t.Errorf("parseCompaction(%q) = %d, %v", tt.payload, got, ok)
		}
	}
}

func TestMultipleBusSources(t *testing.T) {
	c := newCluster(t, nil, nil)
	// Attach a second, independent bus (e.g. a ProfiNet segment) to every
	// node as input source 1.
	gen2 := signal.NewGenerator(signal.GeneratorConfig{Seed: 99, StationSpacing: 500})
	bus2 := mvb.NewBus(mvb.Config{})
	bus2.Attach(mvb.NewSignalDevice(gen2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i, n := range c.nodes {
		n.RunBusSource(ctx, 1, bus2.NewReader(mvb.FaultConfig{}, int64(i)+50))
	}

	// Drive both buses; records from both sources must land in the chain.
	// The tick pacing is deliberately slow: with the race detector on,
	// signing throughput drops by an order of magnitude and a fast tick
	// loop would outrun consensus.
	end := time.Now().Add(60 * time.Second)
	for minHeight(c.nodes) < 3 {
		c.bus.Tick()
		bus2.Tick()
		time.Sleep(15 * time.Millisecond)
		if time.Now().After(end) {
			t.Fatalf("chain stuck at height %d", minHeight(c.nodes))
		}
	}

	// Both sources' data is present: source-0 and source-1 signal streams
	// have different seeds, so their odometer values differ; just verify
	// both cycles' record counts exceed what a single bus could produce.
	blocks, err := c.nodes[0].Store().Range(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	perCycle := make(map[uint64]int)
	for _, b := range blocks {
		for _, e := range b.Entries {
			rec, err := signal.UnmarshalRecord(e.Payload)
			if err != nil {
				t.Fatal(err)
			}
			perCycle[rec.Cycle]++
		}
	}
	two := 0
	for _, n := range perCycle {
		if n >= 2 {
			two++
		}
	}
	if two == 0 {
		t.Error("no cycle carries records from both buses")
	}
	c.assertChainsAgree(3)
}

// TestClusterOverTCP runs the full node pipeline over real TCP sockets.
func TestClusterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)

	// Start listeners first so every peer address is known.
	transports := make(map[crypto.NodeID]*transport.TCP)
	addrs := make(map[crypto.NodeID]string)
	for _, id := range ids {
		tr, err := transport.NewTCP(id, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		transports[id] = tr
		addrs[id] = tr.Addr()
	}
	for _, id := range ids {
		peers := make(map[crypto.NodeID]string)
		for other, addr := range addrs {
			if other != id {
				peers[other] = addr
			}
		}
		transports[id].SetPeers(peers)
	}

	gen := signal.NewGenerator(signal.DefaultGeneratorConfig())
	bus := mvb.NewBus(mvb.Config{})
	bus.Attach(mvb.NewSignalDevice(gen))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var nodes []*Node
	for i, id := range ids {
		n, err := New(Config{ID: id, Replicas: ids}, kps[id], reg, transports[id], clock.Real{})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(mvb.FaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
		for _, tr := range transports {
			tr.Close()
		}
	}()

	end := time.Now().Add(60 * time.Second)
	for nodes[0].Store().HeadIndex() < 2 || nodes[3].Store().HeadIndex() < 2 {
		bus.Tick()
		time.Sleep(5 * time.Millisecond)
		if time.Now().After(end) {
			t.Fatalf("TCP cluster stuck: heights %d %d %d %d",
				nodes[0].Store().HeadIndex(), nodes[1].Store().HeadIndex(),
				nodes[2].Store().HeadIndex(), nodes[3].Store().HeadIndex())
		}
	}
	a, _ := nodes[0].Store().Get(2)
	b, err := nodes[3].Store().Get(2)
	if err != nil || a.Hash() != b.Hash() {
		t.Errorf("TCP cluster diverged: %v", err)
	}
}
