package node

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/mvb"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

// restartCluster is a four-node cluster whose members persist to disk and
// can be crashed and restarted individually.
type restartCluster struct {
	t       *testing.T
	net     *transport.Network
	bus     *mvb.Bus
	ids     []crypto.NodeID
	kps     map[crypto.NodeID]*crypto.KeyPair
	reg     *crypto.Registry
	dirs    []string
	nodes   []*Node
	cancels []context.CancelFunc
	seeds   []int64
}

func newRestartCluster(t *testing.T) *restartCluster {
	t.Helper()
	c := &restartCluster{
		t:   t,
		net: transport.NewNetwork(),
		ids: []crypto.NodeID{0, 1, 2, 3},
		kps: make(map[crypto.NodeID]*crypto.KeyPair),
	}
	gen := signal.NewGenerator(signal.DefaultGeneratorConfig())
	c.bus = mvb.NewBus(mvb.Config{})
	c.bus.Attach(mvb.NewSignalDevice(gen))

	var pairs []*crypto.KeyPair
	for _, id := range c.ids {
		kp := crypto.MustGenerateKeyPair(id)
		c.kps[id] = kp
		pairs = append(pairs, kp)
	}
	c.reg = crypto.NewRegistry(pairs...)
	c.nodes = make([]*Node, len(c.ids))
	c.cancels = make([]context.CancelFunc, len(c.ids))
	c.seeds = make([]int64, len(c.ids))
	for i := range c.ids {
		c.dirs = append(c.dirs, t.TempDir())
		c.seeds[i] = int64(i) + 1
		c.start(i)
	}
	t.Cleanup(func() {
		for i := range c.nodes {
			if c.nodes[i] != nil {
				c.cancels[i]()
				c.nodes[i].Stop()
			}
		}
		c.net.Close()
	})
	return c
}

func (c *restartCluster) config(i int) Config {
	return Config{
		ID:                 c.ids[i],
		Replicas:           c.ids,
		DataDir:            c.dirs[i],
		SoftTimeout:        200 * time.Millisecond,
		HardTimeout:        200 * time.Millisecond,
		ViewTimeout:        400 * time.Millisecond,
		StateRetryInterval: 50 * time.Millisecond,
	}
}

// start builds (or rebuilds, after crash) node i from its data dir.
func (c *restartCluster) start(i int) *Node {
	c.t.Helper()
	n, err := New(c.config(i), c.kps[c.ids[i]], c.reg, c.net.Endpoint(c.ids[i]), clock.Real{})
	if err != nil {
		c.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.nodes[i] = n
	c.cancels[i] = cancel
	n.Start()
	// Distinct reader seeds per incarnation keep bus fault schedules from
	// repeating; faults are off here anyway.
	c.seeds[i] += 100
	n.RunBus(ctx, c.bus.NewReader(mvb.FaultConfig{}, c.seeds[i]))
	return n
}

// crash stops node i ungracefully from the cluster's point of view: its bus
// feed dies, the process state is discarded, and its network attachment is
// released. Only the data dir survives.
func (c *restartCluster) crash(i int) {
	c.t.Helper()
	c.cancels[i]()
	c.nodes[i].Stop()
	c.nodes[i] = nil
	c.net.Remove(c.ids[i])
}

// tickUntil drives bus cycles until cond holds or the deadline passes.
func (c *restartCluster) tickUntil(cond func() bool, deadline time.Duration, what string) {
	c.t.Helper()
	if raceEnabled {
		deadline *= 3
	}
	end := time.Now().Add(deadline)
	for !cond() {
		c.bus.Tick()
		time.Sleep(5 * time.Millisecond)
		if time.Now().After(end) {
			for i, n := range c.nodes {
				if n != nil {
					c.t.Logf("node %d: head=%d", i, n.Store().HeadIndex())
				}
			}
			c.t.Fatalf("%s: not reached in %v", what, deadline)
		}
	}
}

func (c *restartCluster) allAtHeight(height uint64) func() bool {
	return func() bool {
		for _, n := range c.nodes {
			if n != nil && n.Store().HeadIndex() < height {
				return false
			}
		}
		return true
	}
}

// assertNoDuplicateLogs fails if any payload digest appears in more than one
// chain entry — the double-LOG a restarted replica must not commit.
func assertNoDuplicateLogs(t *testing.T, n *Node) {
	t.Helper()
	seen := make(map[crypto.Digest]uint64)
	store := n.Store()
	for idx := store.Base() + 1; idx <= store.HeadIndex(); idx++ {
		b, err := store.Get(idx)
		if err != nil {
			t.Fatalf("block %d: %v", idx, err)
		}
		for _, e := range b.Entries {
			d := crypto.Hash(e.Payload)
			if prev, ok := seen[d]; ok {
				t.Errorf("payload logged twice: seq %d and %d", prev, e.Seq)
			}
			seen[d] = e.Seq
		}
	}
}

func TestNodeCrashRestartRecoversAndRejoins(t *testing.T) {
	c := newRestartCluster(t)
	c.tickUntil(c.allAtHeight(2), 30*time.Second, "initial height 2")

	var preView uint64
	c.nodes[3].Runner().Inspect(func(e *pbft.Engine) { preView, _, _ = e.ViewState() })

	c.crash(3)

	// The remaining three keep ordering: f=1 crash tolerated.
	c.tickUntil(func() bool {
		for _, n := range c.nodes[:3] {
			if n.Store().HeadIndex() < 3 {
				return false
			}
		}
		return true
	}, 30*time.Second, "post-crash height 3")

	n := c.start(3)
	rec := n.Recovery()
	if rec.WALRecords == 0 {
		t.Error("restart replayed no WAL records")
	}
	if rec.RestoredSeq == 0 {
		t.Error("restart restored no executed sequence")
	}
	if rec.WindowRestored == 0 {
		t.Error("restart reseeded no dedup-window entries")
	}
	if rec.RestoredView < preView {
		t.Errorf("restored view %d below pre-crash view %d", rec.RestoredView, preView)
	}

	c.tickUntil(c.allAtHeight(4), 60*time.Second, "post-restart height 4")

	// Chains agree over the common range, and the restarted replica never
	// logged a payload twice.
	ref := c.nodes[0].Store()
	for idx := uint64(1); idx <= 4; idx++ {
		a, errA := ref.Get(idx)
		b, errB := n.Store().Get(idx)
		if errA != nil || errB != nil {
			t.Fatalf("block %d: %v %v", idx, errA, errB)
		}
		if a.Hash() != b.Hash() {
			t.Errorf("block %d diverges after restart", idx)
		}
	}
	if err := n.Store().VerifyChain(); err != nil {
		t.Errorf("restarted chain: %v", err)
	}
	assertNoDuplicateLogs(t, n)
}

// TestNodeRestartWithWipedWALRestoresFromChain covers the "WAL gone, chain
// intact" restart (a wiped WAL dir, or the WAL newly enabled over an
// existing DataDir): the executed watermark and dedup window must still be
// restored from the chain head, or the replica re-executes and double-LOGs
// sequences whose effects are already durable.
func TestNodeRestartWithWipedWALRestoresFromChain(t *testing.T) {
	c := newRestartCluster(t)
	c.tickUntil(c.allAtHeight(2), 30*time.Second, "initial height 2")

	c.crash(3)
	if err := os.RemoveAll(filepath.Join(c.dirs[3], "wal")); err != nil {
		t.Fatal(err)
	}

	n := c.start(3)
	rec := n.Recovery()
	if rec.WALRecords != 0 {
		t.Errorf("wiped WAL replayed %d records", rec.WALRecords)
	}
	if rec.RestoredSeq == 0 {
		t.Error("executed watermark not restored from the chain head")
	}
	if rec.WindowRestored == 0 {
		t.Error("dedup window not reseeded from chain blocks")
	}

	c.tickUntil(c.allAtHeight(3), 60*time.Second, "post-restart height 3")
	if err := n.Store().VerifyChain(); err != nil {
		t.Errorf("restarted chain: %v", err)
	}
	assertNoDuplicateLogs(t, n)
}

// TestGapDigestIsPerReplica: the deliberately divergent checkpoint digest a
// lagging replica reports must differ across replicas, so correlated
// lagging can never assemble 2f+1 matching digests into a stable checkpoint
// on a phantom state.
func TestGapDigestIsPerReplica(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	kp0, kp1 := crypto.MustGenerateKeyPair(0), crypto.MustGenerateKeyPair(1)
	reg := crypto.NewRegistry(kp0, kp1)
	ids := []crypto.NodeID{0, 1, 2, 3}

	n0, err := New(Config{ID: 0, Replicas: ids}, kp0, reg, net.Endpoint(0), clock.Real{})
	if err != nil {
		t.Fatal(err)
	}
	n0.Start()
	defer n0.Stop()
	n1, err := New(Config{ID: 1, Replicas: ids}, kp1, reg, net.Endpoint(1), clock.Real{})
	if err != nil {
		t.Fatal(err)
	}
	n1.Start()
	defer n1.Stop()

	// Seq 20 maps to block index 2 on a fresh chain: both nodes hit the
	// execution-gap path and must report distinct divergent digests.
	d0 := (*pbftApp)(n0).CheckpointDigest(20)
	d1 := (*pbftApp)(n1).CheckpointDigest(20)
	if d0 == d1 {
		t.Fatal("gap checkpoint digests identical across replicas: 2f+1 lagging replicas could certify a phantom state")
	}
}

func TestTargetBlockIndex(t *testing.T) {
	net := transport.NewNetwork()
	defer net.Close()
	n, err := New(Config{
		ID:       0,
		Replicas: []crypto.NodeID{0, 1, 2, 3},
	}, crypto.MustGenerateKeyPair(0), crypto.NewRegistry(crypto.MustGenerateKeyPair(0)), net.Endpoint(0), clock.Real{})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	// Fresh node: head is genesis (index 0, LastSeq 0), BlockSize 10.
	cases := []struct{ seq, want uint64 }{
		{0, 0},
		{1, 1},
		{10, 1},
		{11, 2},
		{25, 3},
	}
	for _, tc := range cases {
		if got := n.targetBlockIndex(tc.seq); got != tc.want {
			t.Errorf("targetBlockIndex(%d) = %d, want %d", tc.seq, got, tc.want)
		}
	}
}
