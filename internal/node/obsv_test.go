package node

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zugchain/internal/obsv"
)

// TestNodeRegistersCounterFamilies: every counter family the node owns must
// self-register into its observer at wiring time, so /metrics serves them
// all without per-family plumbing in the daemons.
func TestNodeRegistersCounterFamilies(t *testing.T) {
	c := newCluster(t, func(cfg *Config) {
		cfg.DataDir = t.TempDir() + "/" + string(rune('a'+cfg.ID))
	}, nil)
	n := c.nodes[0]

	want := []string{
		"core", "batch", "pool", "crypto", "wal", "store",
		"chain", "tracer", "journal", "runtime",
	}
	got := make(map[string]bool)
	for _, name := range n.Obs().Registry.Sources() {
		got[name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("source %q not registered (have %v)", name, n.Obs().Registry.Sources())
		}
	}
}

// TestNodeMetricsEndToEnd orders real traffic, then scrapes the node's
// observer the way Prometheus would and checks the five counter families
// plus the per-phase commit-latency histograms carry live values.
func TestNodeMetricsEndToEnd(t *testing.T) {
	c := newCluster(t, func(cfg *Config) {
		cfg.BlockSize = 5
		cfg.DataDir = t.TempDir() + "/" + string(rune('a'+cfg.ID))
	}, nil)
	c.tickUntilBlocks(2, 30*time.Second)

	srv := httptest.NewServer(obsv.Handler(c.nodes[0].Obs()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)

	// One representative series per counter family, plus the chain gauges
	// and the tracer histograms the acceptance criteria name.
	for _, name := range []string{
		"zugchain_core_ordered_total",
		"zugchain_batch_flushes_total",
		"zugchain_pool_offloaded_total",
		"zugchain_crypto_scalar_verifies_total",
		"zugchain_wal_records_total",
		"zugchain_store_blocks_total",
		"zugchain_chain_height",
		"zugchain_trace_commit_seconds_bucket",
		"zugchain_trace_total_seconds_count",
		"zugchain_events_total",
		"zugchain_go_goroutines",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	v := c.nodes[0].Obs().Registry.Values()
	for _, name := range []string{
		"zugchain_core_ordered_total",
		"zugchain_wal_records_total",
		"zugchain_store_blocks_total",
		"zugchain_chain_height",
	} {
		if v[name] <= 0 {
			t.Errorf("%s = %v after ordering real blocks, want > 0", name, v[name])
		}
	}

	// Ordered records complete lifecycle traces; sealed checkpoints resolve
	// their fsync stamps.
	tr := c.nodes[0].Obs().Tracer
	if tr.Completed() == 0 {
		t.Error("no completed lifecycle traces after ordering records")
	}
	if s := tr.TotalSnapshot(); s.Count == 0 {
		t.Error("ingest-to-execute histogram empty after ordering records")
	}
	if s := tr.PhaseSnapshot(obsv.PhaseFsync); s.Count == 0 {
		t.Error("fsync histogram empty after sealing blocks")
	}

	// The journal saw at least the view-0 primary election.
	if c.nodes[0].Obs().Journal.Total() == 0 {
		t.Error("journal empty after startup")
	}
}

// TestNodeDisableTrace: the A side of the overhead benchmark — a node built
// with DisableTrace must run with a nil tracer and still serve /metrics.
func TestNodeDisableTrace(t *testing.T) {
	c := newCluster(t, func(cfg *Config) {
		cfg.DisableTrace = true
	}, nil)
	n := c.nodes[0]
	if n.Obs().Tracer != nil {
		t.Fatal("DisableTrace node still built a tracer")
	}
	c.tickUntilBlocks(1, 30*time.Second)
	srv := httptest.NewServer(obsv.Handler(n.Obs()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "zugchain_core_ordered_total") {
		t.Fatalf("/metrics with tracing off = %d:\n%s", resp.StatusCode, body)
	}
}
