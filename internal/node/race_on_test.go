//go:build race

package node

// raceEnabled relaxes integration-test deadlines: the race detector slows
// signing and message handling by roughly an order of magnitude.
const raceEnabled = true
