// Package blockchain implements ZugChain's tamper-evident log: ordered
// requests are deterministically bundled into hash-chained blocks (§III-A
// "From Signals to Blocks", §III-C "Blockchain Application"), persisted to
// disk, and pruned after export. A block's hash doubles as the PBFT
// checkpoint state digest, so every block is backed by 2f+1 replica
// signatures once its checkpoint stabilizes.
package blockchain

import (
	"errors"
	"fmt"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Entry is one totally ordered request as recorded in a block: the payload,
// the id of the node that read it from the bus (§III-C: "each request is
// logged in conjunction with the id of a node that has actually received
// it"), the origin's signature, and the agreement sequence number.
type Entry struct {
	Seq     uint64
	Origin  crypto.NodeID
	Payload []byte
	Sig     []byte
}

func (e *Entry) encodeTo(enc *wire.Encoder) {
	enc.Uint64(e.Seq)
	enc.Uint32(uint32(e.Origin))
	enc.Bytes(e.Payload)
	enc.Bytes(e.Sig)
}

func decodeEntry(d *wire.Decoder) Entry {
	return Entry{
		Seq:     d.Uint64(),
		Origin:  crypto.NodeID(d.Uint32()),
		Payload: d.BytesCopy(),
		Sig:     d.BytesCopy(),
	}
}

// Header is the constant-size part of a block, sufficient for chain
// verification once bodies have been compacted away (§III-D error (v)).
type Header struct {
	// Index is the block height; the genesis block has index 0.
	Index uint64
	// PrevHash links to the previous block.
	PrevHash crypto.Digest
	// FirstSeq and LastSeq are the agreement sequence numbers covered.
	FirstSeq, LastSeq uint64
	// BodyHash commits to the entries.
	BodyHash crypto.Digest
}

// Hash computes the block hash: the chain link and the PBFT checkpoint
// state digest.
func (h *Header) Hash() crypto.Digest {
	e := wire.NewEncoder(96)
	e.Uint64(h.Index)
	e.Bytes32(h.PrevHash)
	e.Uint64(h.FirstSeq)
	e.Uint64(h.LastSeq)
	e.Bytes32(h.BodyHash)
	return crypto.Hash(e.Data())
}

// Block is a sealed bundle of ordered entries.
type Block struct {
	Header
	Entries []Entry
}

// BodyDigest computes the commitment over the entries.
func BodyDigest(entries []Entry) crypto.Digest {
	e := wire.NewEncoder(256)
	e.Uvarint(uint64(len(entries)))
	for i := range entries {
		entries[i].encodeTo(e)
	}
	return crypto.Hash(e.Data())
}

// Genesis returns the fixed genesis block shared by all replicas.
func Genesis() *Block {
	b := &Block{}
	b.BodyHash = BodyDigest(nil)
	return b
}

// Validate checks the block's internal consistency: the body hash matches
// the entries and the sequence range matches their contents.
func (b *Block) Validate() error {
	if BodyDigest(b.Entries) != b.BodyHash {
		return fmt.Errorf("blockchain: block %d body hash mismatch", b.Index)
	}
	if len(b.Entries) > 0 {
		if b.Entries[0].Seq != b.FirstSeq || b.Entries[len(b.Entries)-1].Seq != b.LastSeq {
			return fmt.Errorf("blockchain: block %d sequence range mismatch", b.Index)
		}
		for i := 1; i < len(b.Entries); i++ {
			// Non-decreasing, not strictly increasing: records decided as
			// one batched proposal share a single agreement sequence number.
			if b.Entries[i].Seq < b.Entries[i-1].Seq {
				return fmt.Errorf("blockchain: block %d entries out of order", b.Index)
			}
		}
	}
	return nil
}

// Marshal encodes the block for storage or transmission.
func (b *Block) Marshal() []byte {
	e := wire.NewEncoder(256)
	e.Uint64(b.Index)
	e.Bytes32(b.PrevHash)
	e.Uint64(b.FirstSeq)
	e.Uint64(b.LastSeq)
	e.Bytes32(b.BodyHash)
	e.Uvarint(uint64(len(b.Entries)))
	for i := range b.Entries {
		b.Entries[i].encodeTo(e)
	}
	return e.Data()
}

// Unmarshal decodes a block encoded by Marshal.
func Unmarshal(data []byte) (*Block, error) {
	d := wire.NewDecoder(data)
	b := &Block{Header: Header{
		Index:    d.Uint64(),
		PrevHash: d.Bytes32(),
		FirstSeq: d.Uint64(),
		LastSeq:  d.Uint64(),
		BodyHash: d.Bytes32(),
	}}
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return nil, errors.New("blockchain: entry count exceeds input")
	}
	b.Entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		b.Entries = append(b.Entries, decodeEntry(d))
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("blockchain: unmarshal block: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, errors.New("blockchain: trailing bytes after block")
	}
	return b, nil
}

// Builder accumulates ordered entries and seals a block every Size entries.
// All replicas run identical builders over identical delivery streams, so
// the resulting blocks — and therefore checkpoint digests — agree.
type Builder struct {
	size     int
	prevHash crypto.Digest
	next     uint64
	pending  []Entry
}

// NewBuilder starts building on top of prev (usually Genesis() or the last
// persisted block). size is the paper's block size of 10 requests unless
// overridden.
func NewBuilder(prev *Block, size int) *Builder {
	if size <= 0 {
		size = 10
	}
	prealloc := size
	if prealloc > 1024 {
		// Checkpoint-sealed builders pass a huge size sentinel; do not
		// preallocate for it.
		prealloc = 1024
	}
	return &Builder{
		size:     size,
		prevHash: prev.Hash(),
		next:     prev.Index + 1,
		pending:  make([]Entry, 0, prealloc),
	}
}

// Pending reports how many entries await sealing.
func (bd *Builder) Pending() int { return len(bd.pending) }

// PendingEntries returns a copy of the unsealed entries, needed when
// checkpoint state must cover open requests (§III-D error (ii)).
func (bd *Builder) PendingEntries() []Entry {
	out := make([]Entry, len(bd.pending))
	copy(out, bd.pending)
	return out
}

// NextIndex returns the index the next sealed block will get.
func (bd *Builder) NextIndex() uint64 { return bd.next }

// Add appends one ordered entry; when the block size is reached it seals and
// returns the block, otherwise it returns nil.
func (bd *Builder) Add(e Entry) *Block {
	bd.pending = append(bd.pending, e)
	if len(bd.pending) < bd.size {
		return nil
	}
	return bd.Seal()
}

// Seal closes the current block early (used at shutdown or on demand);
// returns nil when no entries are pending.
func (bd *Builder) Seal() *Block {
	if len(bd.pending) == 0 {
		return nil
	}
	entries := bd.pending
	prealloc := bd.size
	if prealloc > 1024 {
		prealloc = 1024
	}
	bd.pending = make([]Entry, 0, prealloc)
	b := &Block{
		Header: Header{
			Index:    bd.next,
			PrevHash: bd.prevHash,
			FirstSeq: entries[0].Seq,
			LastSeq:  entries[len(entries)-1].Seq,
			BodyHash: BodyDigest(entries),
		},
		Entries: entries,
	}
	bd.prevHash = b.Hash()
	bd.next++
	return b
}

// SealCheckpoint closes the block for a checkpoint boundary, always
// producing a block even when no entries accumulated (every duplicate in
// the interval was filtered): ZugChain creates exactly one block per PBFT
// checkpoint so the checkpoint digest is always defined (§III-C
// "Checkpointing"). seq is the checkpoint sequence number, recorded as the
// covered range on empty blocks.
func (bd *Builder) SealCheckpoint(seq uint64) *Block {
	if b := bd.Seal(); b != nil {
		return b
	}
	b := &Block{
		Header: Header{
			Index:    bd.next,
			PrevHash: bd.prevHash,
			FirstSeq: seq,
			LastSeq:  seq,
			BodyHash: BodyDigest(nil),
		},
	}
	bd.prevHash = b.Hash()
	bd.next++
	return b
}

// ResetTo re-anchors the builder on top of prev, discarding pending entries.
// Used after a state transfer installs blocks from peers.
func (bd *Builder) ResetTo(prev *Block) {
	bd.prevHash = prev.Hash()
	bd.next = prev.Index + 1
	bd.pending = bd.pending[:0]
}
