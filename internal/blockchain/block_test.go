package blockchain

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"zugchain/internal/crypto"
)

func entry(seq uint64, payload string) Entry {
	return Entry{Seq: seq, Origin: crypto.NodeID(seq % 4), Payload: []byte(payload), Sig: []byte{byte(seq)}}
}

func buildChain(t *testing.T, nBlocks, size int) []*Block {
	t.Helper()
	bd := NewBuilder(Genesis(), size)
	var blocks []*Block
	seq := uint64(1)
	for len(blocks) < nBlocks {
		b := bd.Add(entry(seq, fmt.Sprintf("payload-%d", seq)))
		seq++
		if b != nil {
			blocks = append(blocks, b)
		}
	}
	return blocks
}

func TestBuilderSealsAtSize(t *testing.T) {
	bd := NewBuilder(Genesis(), 3)
	if b := bd.Add(entry(1, "a")); b != nil {
		t.Fatal("sealed early")
	}
	if b := bd.Add(entry(2, "b")); b != nil {
		t.Fatal("sealed early")
	}
	b := bd.Add(entry(3, "c"))
	if b == nil {
		t.Fatal("did not seal at size")
	}
	if b.Index != 1 || b.FirstSeq != 1 || b.LastSeq != 3 || len(b.Entries) != 3 {
		t.Errorf("block = %+v", b.Header)
	}
	if b.PrevHash != Genesis().Hash() {
		t.Error("block not linked to genesis")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderChainsBlocks(t *testing.T) {
	blocks := buildChain(t, 5, 10)
	prev := Genesis()
	for _, b := range blocks {
		if b.PrevHash != prev.Hash() {
			t.Fatalf("block %d not linked to %d", b.Index, prev.Index)
		}
		if b.Index != prev.Index+1 {
			t.Fatalf("block index %d after %d", b.Index, prev.Index)
		}
		prev = b
	}
	if err := VerifySegment(Genesis().Header, blocks); err != nil {
		t.Errorf("VerifySegment: %v", err)
	}
}

func TestBuilderSealEarly(t *testing.T) {
	bd := NewBuilder(Genesis(), 10)
	bd.Add(entry(1, "a"))
	bd.Add(entry(2, "b"))
	b := bd.Seal()
	if b == nil || len(b.Entries) != 2 {
		t.Fatalf("Seal = %+v", b)
	}
	if bd.Pending() != 0 {
		t.Error("pending not cleared")
	}
	if bd.Seal() != nil {
		t.Error("empty Seal returned a block")
	}
}

func TestBuilderDeterministicAcrossReplicas(t *testing.T) {
	b1 := buildChain(t, 3, 10)
	b2 := buildChain(t, 3, 10)
	for i := range b1 {
		if b1[i].Hash() != b2[i].Hash() {
			t.Fatalf("block %d hashes differ across identical builders", i)
		}
	}
}

func TestBlockMarshalRoundTrip(t *testing.T) {
	b := buildChain(t, 1, 4)[0]
	got, err := Unmarshal(b.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Hash() != b.Hash() {
		t.Error("hash changed through round trip")
	}
	if len(got.Entries) != len(b.Entries) {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range b.Entries {
		if !bytes.Equal(got.Entries[i].Payload, b.Entries[i].Payload) ||
			got.Entries[i].Seq != b.Entries[i].Seq ||
			got.Entries[i].Origin != b.Entries[i].Origin {
			t.Errorf("entry %d = %+v", i, got.Entries[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	b := buildChain(t, 1, 2)[0]
	data := b.Marshal()
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", data[:len(data)-3]},
		{"trailing", append(append([]byte{}, data...), 0x01)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.data); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Block { return buildChain(t, 1, 3)[0] }

	t.Run("payload mutation", func(t *testing.T) {
		b := mk()
		b.Entries[1].Payload[0] ^= 1
		if b.Validate() == nil {
			t.Error("mutated payload validated")
		}
	})
	t.Run("dropped entry", func(t *testing.T) {
		b := mk()
		b.Entries = b.Entries[:len(b.Entries)-1]
		if b.Validate() == nil {
			t.Error("dropped entry validated")
		}
	})
	t.Run("reordered entries", func(t *testing.T) {
		b := mk()
		b.Entries[0], b.Entries[1] = b.Entries[1], b.Entries[0]
		if b.Validate() == nil {
			t.Error("reordered entries validated")
		}
	})
	t.Run("seq range lie", func(t *testing.T) {
		b := mk()
		b.LastSeq++
		if b.Validate() == nil {
			t.Error("wrong seq range validated")
		}
	})
}

// Property: flipping any bit of a marshalled block is detected — either the
// decode fails, validation fails, or the hash changes. This is the
// tamper-evidence R3 relies on.
func TestTamperEvidenceProperty(t *testing.T) {
	b := buildChain(t, 1, 5)[0]
	origHash := b.Hash()
	data := b.Marshal()

	f := func(bitIdx uint) bool {
		mutated := make([]byte, len(data))
		copy(mutated, data)
		i := int(bitIdx % uint(len(mutated)*8))
		mutated[i/8] ^= 1 << (i % 8)

		got, err := Unmarshal(mutated)
		if err != nil {
			return true // detected at decode
		}
		if got.Validate() != nil {
			return true // detected at validation
		}
		return got.Hash() != origHash // must be detected via the chain link
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerifySegmentDetectsTampering(t *testing.T) {
	blocks := buildChain(t, 4, 5)

	t.Run("valid", func(t *testing.T) {
		if err := VerifySegment(Genesis().Header, blocks); err != nil {
			t.Fatalf("VerifySegment: %v", err)
		}
	})
	t.Run("middle block replaced", func(t *testing.T) {
		tampered := make([]*Block, len(blocks))
		copy(tampered, blocks)
		forged := *blocks[1]
		forged.Entries = append([]Entry{}, blocks[1].Entries...)
		forged.Entries[0].Payload = []byte("forged")
		forged.BodyHash = BodyDigest(forged.Entries)
		tampered[1] = &forged
		if VerifySegment(Genesis().Header, tampered) == nil {
			t.Error("replaced block passed verification")
		}
	})
	t.Run("gap", func(t *testing.T) {
		if VerifySegment(Genesis().Header, []*Block{blocks[0], blocks[2]}) == nil {
			t.Error("gapped segment verified")
		}
	})
	t.Run("wrong base", func(t *testing.T) {
		if VerifySegment(blocks[0].Header, blocks) == nil {
			t.Error("segment verified against wrong base")
		}
	})
}

func TestBuilderResetTo(t *testing.T) {
	bd := NewBuilder(Genesis(), 5)
	bd.Add(entry(1, "discard"))
	blocks := buildChain(t, 2, 5)
	bd.ResetTo(blocks[1])
	if bd.Pending() != 0 || bd.NextIndex() != 3 {
		t.Errorf("after reset: pending=%d next=%d", bd.Pending(), bd.NextIndex())
	}
	for s := uint64(11); s <= 15; s++ {
		if b := bd.Add(entry(s, "x")); b != nil {
			if b.PrevHash != blocks[1].Hash() {
				t.Error("reset builder not linked to new base")
			}
		}
	}
}

func TestGenesisIsStable(t *testing.T) {
	if Genesis().Hash() != Genesis().Hash() {
		t.Error("genesis hash unstable")
	}
	if Genesis().Index != 0 {
		t.Error("genesis index nonzero")
	}
}

func TestPendingEntriesIsCopy(t *testing.T) {
	bd := NewBuilder(Genesis(), 5)
	bd.Add(entry(1, "a"))
	got := bd.PendingEntries()
	got[0].Seq = 999
	if bd.pending[0].Seq != 1 {
		t.Error("PendingEntries exposed internal state")
	}
}

// Fuzz-ish: Unmarshal must never panic on random bytes.
func TestUnmarshalNoPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		data := make([]byte, rng.Intn(300))
		rng.Read(data)
		_, _ = Unmarshal(data) // must not panic
	}
}
