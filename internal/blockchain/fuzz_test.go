package blockchain

import "testing"

// FuzzBlockUnmarshal hardens block decoding: no panics, and any block that
// decodes and validates must round-trip to the same hash.
func FuzzBlockUnmarshal(f *testing.F) {
	seed := buildFuzzChain()
	f.Add(seed.Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			return
		}
		again, err := Unmarshal(b.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Hash() != b.Hash() {
			t.Fatal("hash changed through round trip")
		}
	})
}

func buildFuzzChain() *Block {
	bd := NewBuilder(Genesis(), 3)
	var b *Block
	for seq := uint64(1); seq <= 3; seq++ {
		b = bd.Add(Entry{Seq: seq, Payload: []byte{byte(seq)}, Sig: []byte{0xaa}})
	}
	return b
}
