package blockchain

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func newDiskStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestStoreAppendBatchOneGroup(t *testing.T) {
	dir := t.TempDir()
	s := newDiskStore(t, dir)
	blocks := buildChain(t, 5, 3)
	if err := s.AppendBatch(blocks); err != nil {
		t.Fatal(err)
	}
	if s.HeadIndex() != 5 {
		t.Errorf("HeadIndex = %d", s.HeadIndex())
	}
	snap := s.GroupCommits().Snapshot()
	if snap.Groups != 1 || snap.Blocks != 5 || snap.MaxGroup != 5 {
		t.Errorf("group counters = %+v, want one 5-block group", snap)
	}
	for i := 1; i <= 5; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("block-%08d.zc", i))); err != nil {
			t.Errorf("block %d not persisted: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := newDiskStore(t, dir)
	if re.HeadIndex() != 5 {
		t.Errorf("reloaded HeadIndex = %d", re.HeadIndex())
	}
	if err := re.VerifyChain(); err != nil {
		t.Errorf("reloaded chain: %v", err)
	}
}

func TestStoreAppendBatchAllOrNothing(t *testing.T) {
	s := newMemStore(t)
	blocks := buildChain(t, 4, 3)
	// A gap inside the run must reject the whole batch up front.
	if err := s.AppendBatch([]*Block{blocks[0], blocks[2]}); !errors.Is(err, ErrBadLinkage) {
		t.Errorf("gapped batch: %v", err)
	}
	if s.HeadIndex() != 0 {
		t.Errorf("partial batch applied: head = %d", s.HeadIndex())
	}
	// A batch not rooted at the head is rejected too.
	if err := s.AppendBatch(blocks[1:]); !errors.Is(err, ErrBadLinkage) {
		t.Errorf("unrooted batch: %v", err)
	}
	if err := s.AppendBatch(blocks); err != nil {
		t.Fatal(err)
	}
	if s.HeadIndex() != 4 {
		t.Errorf("head = %d", s.HeadIndex())
	}
}

func TestStoreSingleAppendsDegradeToSingletonGroups(t *testing.T) {
	s := newDiskStore(t, t.TempDir())
	for _, b := range buildChain(t, 4, 3) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.GroupCommits().Snapshot()
	if snap.Blocks != 4 {
		t.Errorf("committed blocks = %d", snap.Blocks)
	}
	// A lone appender never has companions waiting: every group is one
	// block — today's write path, now with fsync.
	if snap.MaxGroup != 1 || snap.Groups != 4 {
		t.Errorf("group counters = %+v, want 4 singleton groups", snap)
	}
}

func TestStoreSyncBarrier(t *testing.T) {
	s := newDiskStore(t, t.TempDir())
	fillStore(t, s, 2)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.GroupCommits().Snapshot().Syncs; got != 1 {
		t.Errorf("sync counter = %d", got)
	}

	mem := newMemStore(t)
	if err := mem.Sync(); err != nil {
		t.Errorf("memory-store Sync: %v", err)
	}
}

func TestStoreCloseStopsAppends(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blocks := buildChain(t, 2, 3)
	if err := s.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close failed")
	}
	if err := s.Append(blocks[1]); !errors.Is(err, ErrClosed) {
		t.Errorf("append after Close: %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync after Close: %v", err)
	}
	// Reads stay valid after Close.
	if s.HeadIndex() != 1 {
		t.Errorf("head after Close = %d", s.HeadIndex())
	}
}

func TestStoreAppendsRaceSyncBarriers(t *testing.T) {
	// One appender, several Sync hammers: exercises the commit loop's
	// group formation and the barrier path under the race detector.
	s := newDiskStore(t, t.TempDir())
	blocks := buildChain(t, 30, 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = s.Sync()
				}
			}
		}()
	}
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if got := s.GroupCommits().Snapshot().Blocks; got != 30 {
		t.Errorf("committed blocks = %d", got)
	}
	if err := s.VerifyChain(); err != nil {
		t.Error(err)
	}
}

func TestStoreLoadDropsBlocksBeyondGap(t *testing.T) {
	dir := t.TempDir()
	s := newDiskStore(t, dir)
	blocks := fillStore(t, s, 4)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost block 3's rename but kept block 4's: the
	// durable chain prefix ends at 2.
	if err := os.Remove(filepath.Join(dir, "block-00000003.zc")); err != nil {
		t.Fatal(err)
	}

	re := newDiskStore(t, dir)
	if re.HeadIndex() != 2 {
		t.Errorf("reloaded head = %d, want 2 (prefix before the gap)", re.HeadIndex())
	}
	if _, err := re.Get(4); errors.Is(err, nil) {
		t.Error("block beyond the gap still served")
	}
	if err := re.VerifyChain(); err != nil {
		t.Errorf("prefix chain: %v", err)
	}
	// The store must be appendable again from the truncated head.
	if err := re.Append(blocks[2]); err != nil {
		t.Errorf("append after truncated reload: %v", err)
	}
}
