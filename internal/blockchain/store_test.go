package blockchain

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newMemStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fillStore(t *testing.T, s *Store, nBlocks int) []*Block {
	t.Helper()
	blocks := buildChain(t, nBlocks, 5)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatalf("Append(%d): %v", b.Index, err)
		}
	}
	return blocks
}

func TestStoreAppendAndGet(t *testing.T) {
	s := newMemStore(t)
	blocks := fillStore(t, s, 3)
	if s.HeadIndex() != 3 {
		t.Errorf("HeadIndex = %d", s.HeadIndex())
	}
	for _, want := range blocks {
		got, err := s.Get(want.Index)
		if err != nil {
			t.Fatalf("Get(%d): %v", want.Index, err)
		}
		if got.Hash() != want.Hash() {
			t.Errorf("block %d hash mismatch", want.Index)
		}
	}
	if err := s.VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestStoreRejectsBadLinkage(t *testing.T) {
	s := newMemStore(t)
	blocks := buildChain(t, 3, 5)
	if err := s.Append(blocks[1]); !errors.Is(err, ErrBadLinkage) {
		t.Errorf("skipping index: %v", err)
	}
	if err := s.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	// Tamper with linkage: right index, wrong prev hash.
	forged := *blocks[1]
	forged.PrevHash = Genesis().Hash()
	if err := s.Append(&forged); !errors.Is(err, ErrBadLinkage) {
		t.Errorf("wrong prev hash: %v", err)
	}
}

func TestStoreRejectsInvalidBlock(t *testing.T) {
	s := newMemStore(t)
	b := buildChain(t, 1, 3)[0]
	b.Entries[0].Payload = []byte("mutated")
	if err := s.Append(b); err == nil {
		t.Error("invalid block appended")
	}
}

func TestStoreRange(t *testing.T) {
	s := newMemStore(t)
	fillStore(t, s, 5)
	got, err := s.Range(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Index != 2 || got[2].Index != 4 {
		t.Errorf("Range = %v blocks", len(got))
	}
	if _, err := s.Range(4, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := s.Range(2, 99); !errors.Is(err, ErrNotFound) {
		t.Errorf("out-of-range: %v", err)
	}
}

func TestStorePrune(t *testing.T) {
	s := newMemStore(t)
	fillStore(t, s, 6)
	auth := []byte("signed-deletes")
	if err := s.Prune(4, auth); err != nil {
		t.Fatal(err)
	}
	if s.Base() != 4 {
		t.Errorf("Base = %d", s.Base())
	}
	if string(s.PruneAuth()) != "signed-deletes" {
		t.Error("prune auth not stored")
	}
	// Blocks below the base are gone; the base block itself is kept as the
	// first block of the pruned chain.
	if _, err := s.Get(2); !errors.Is(err, ErrPruned) {
		t.Errorf("Get(2) = %v", err)
	}
	if _, err := s.Get(4); err != nil {
		t.Errorf("Get(base): %v", err)
	}
	if err := s.VerifyChain(); err != nil {
		t.Errorf("VerifyChain after prune: %v", err)
	}
	// Pruning is idempotent and never moves backwards.
	if err := s.Prune(2, nil); err != nil {
		t.Errorf("backwards prune: %v", err)
	}
	if s.Base() != 4 {
		t.Error("base moved backwards")
	}
	// Cannot prune above head.
	if err := s.Prune(99, nil); err == nil {
		t.Error("pruned above head")
	}
}

func TestStoreCompactToHeaders(t *testing.T) {
	s := newMemStore(t)
	fillStore(t, s, 6)
	if err := s.CompactToHeaders(4); err != nil {
		t.Fatal(err)
	}
	// Bodies gone, headers remain, chain still verifies end to end.
	if _, err := s.Get(3); !errors.Is(err, ErrPruned) {
		t.Errorf("Get(3) = %v", err)
	}
	if _, err := s.Header(3); err != nil {
		t.Errorf("Header(3): %v", err)
	}
	if err := s.VerifyChain(); err != nil {
		t.Errorf("VerifyChain after compaction: %v", err)
	}
	// Refuses to compact the head.
	if err := s.CompactToHeaders(s.HeadIndex()); err == nil {
		t.Error("compacted the head")
	}
}

func TestStorePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocks := fillStore(t, s1, 4)

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.HeadIndex() != 4 {
		t.Errorf("HeadIndex after reload = %d", s2.HeadIndex())
	}
	for _, want := range blocks {
		got, err := s2.Get(want.Index)
		if err != nil {
			t.Fatalf("Get(%d) after reload: %v", want.Index, err)
		}
		if got.Hash() != want.Hash() {
			t.Errorf("block %d changed across restart", want.Index)
		}
	}
	if err := s2.VerifyChain(); err != nil {
		t.Errorf("VerifyChain after reload: %v", err)
	}
}

func TestStorePersistencePrunedBase(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s1, 6)
	if err := s1.Prune(4, []byte("auth")); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Base() != 4 || s2.HeadIndex() != 6 {
		t.Errorf("base=%d head=%d after reload", s2.Base(), s2.HeadIndex())
	}
	if string(s2.PruneAuth()) != "auth" {
		t.Error("prune auth lost across restart")
	}
	if err := s2.VerifyChain(); err != nil {
		t.Errorf("VerifyChain: %v", err)
	}
}

func TestStoreDetectsOnDiskCorruption(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s1, 2)

	// Flip one byte of a persisted block: an attacker with disk access
	// after a crash. Reload either fails outright or chain verification
	// catches it.
	path := filepath.Join(dir, "block-00000001.zc")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		return // detected at load: good
	}
	if err := s2.VerifyChain(); err == nil {
		t.Error("on-disk corruption went undetected")
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "block-junk.zc"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if s.HeadIndex() != 0 {
		t.Errorf("HeadIndex = %d", s.HeadIndex())
	}
}
