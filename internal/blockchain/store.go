package blockchain

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"zugchain/internal/metrics"
)

// Store errors.
var (
	ErrNotFound   = errors.New("blockchain: block not found")
	ErrBadLinkage = errors.New("blockchain: block does not extend the head")
	ErrPruned     = errors.New("blockchain: block was pruned")
	ErrClosed     = errors.New("blockchain: store closed")
)

// Store keeps the chain in memory and, when configured with a directory,
// persists every block to disk — fsync'd — before acknowledging it, so an
// acknowledged append survives power loss (§V-B "Comparison to JRU
// Requirements"). Durable writes go through a group-commit writer: appends
// that arrive while a disk write is in flight are coalesced into the next
// write group, which pays a single directory fsync for all of its blocks.
// A group of one block degrades to exactly the previous per-block write
// path. Blocks below the pruning base are deleted after a confirmed export
// (§III-D); compacted blocks survive as headers only.
type Store struct {
	mu      sync.RWMutex
	dir     string // empty = memory only
	blocks  map[uint64]*Block
	headers map[uint64]Header // bodies compacted away, headers retained
	base    uint64            // lowest retained full block (pruning base)
	head    uint64            // highest durable (or memory-only) block index
	auth    []byte            // export authorization justifying the base

	// Reservation tail for in-flight durable writes: linkage is checked
	// against (pendHead, pendHash) so a second appender can queue the next
	// block — and land in the same write group — while the first is still
	// waiting on the disk. head trails pendHead until the group commits.
	pendHead uint64
	pendHash [32]byte
	// failed latches the first durable-write error: memory state may be
	// ahead of disk at that point, so the store refuses further appends
	// rather than silently diverge from its own persistence.
	failed error

	gc       metrics.GroupCommitCounters
	recovery RecoveryReport

	// Group-commit writer (dir != ""). writeCh is deliberately unbuffered:
	// a send succeeds only when the writer (or the Close drain) receives
	// it, which is what makes shutdown race-free.
	writeCh   chan *writeReq
	quit      chan struct{}
	writerEnd chan struct{}
	closeOnce sync.Once
}

// writeReq is one appender's durable-write request to the commit loop.
type writeReq struct {
	blocks []*Block   // nil for a pure Sync barrier
	err    chan error // buffered(1): the writer always answers
}

// NewStore creates a store rooted at the genesis block. If dir is nonempty
// it is created if needed, any previously persisted blocks are loaded, and
// the group-commit writer is started; such a store must be Closed.
func NewStore(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		blocks:  map[uint64]*Block{0: Genesis()},
		headers: make(map[uint64]Header),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("blockchain: create store dir: %w", err)
		}
		if err := s.load(); err != nil {
			return nil, err
		}
	}
	s.pendHead = s.head
	s.pendHash = s.blocks[s.head].Hash()
	if dir != "" {
		s.writeCh = make(chan *writeReq)
		s.quit = make(chan struct{})
		s.writerEnd = make(chan struct{})
		go s.commitLoop()
	}
	return s, nil
}

// RecoveryReport describes what load found on disk: how many blocks made
// the durable prefix and how many tail files a crash left unusable. The
// node surfaces it at startup — data loss after a crash must be visible,
// not silent.
type RecoveryReport struct {
	// Loaded counts blocks restored into the durable chain prefix.
	Loaded int
	// DiscardedTail counts decodable blocks dropped because they sat
	// beyond a gap in the index sequence (a crash between a write group's
	// renames and its directory fsync).
	DiscardedTail int
	// CorruptTail counts undecodable tail files ignored.
	CorruptTail int
}

// Truncated reports whether recovery discarded anything.
func (r RecoveryReport) Truncated() bool {
	return r.DiscardedTail > 0 || r.CorruptTail > 0
}

// Recovery returns what load found when the store was opened.
func (s *Store) Recovery() RecoveryReport { return s.recovery }

// load reads persisted blocks back into memory.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("blockchain: read store dir: %w", err)
	}
	var indices, corrupt []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "block-") || !strings.HasSuffix(name, ".zc") {
			continue
		}
		idxStr := strings.TrimSuffix(strings.TrimPrefix(name, "block-"), ".zc")
		idx, err := strconv.ParseUint(idxStr, 10, 64)
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("blockchain: read %s: %w", name, err)
		}
		b, err := Unmarshal(data)
		if err != nil || b.Index != idx {
			// An undecodable file at the chain tail is the expected residue
			// of a crash mid-write and is recoverable (the quorum re-serves
			// the block); the same damage below a valid block means the
			// durable prefix itself is broken, which only state transfer
			// from scratch could fix — refuse to open.
			corrupt = append(corrupt, idx)
			continue
		}
		s.blocks[idx] = b
		indices = append(indices, idx)
	}
	if len(indices) == 0 {
		s.recovery.CorruptTail = len(corrupt)
		return nil
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	maxValid := indices[len(indices)-1]
	for _, idx := range corrupt {
		if idx < maxValid {
			return fmt.Errorf("blockchain: corrupt block file for index %d amid valid blocks", idx)
		}
	}
	s.recovery.CorruptTail = len(corrupt)
	// Keep only the contiguous run from the lowest index: a crash between a
	// write group's renames and its directory fsync can, in principle,
	// leave a gap, and blocks beyond a gap are not part of the durable
	// chain prefix.
	head := indices[0]
	for _, idx := range indices[1:] {
		if idx != head+1 {
			break
		}
		head = idx
	}
	for _, idx := range indices {
		if idx > head {
			delete(s.blocks, idx)
			s.recovery.DiscardedTail++
		}
	}
	s.recovery.Loaded = len(indices) - s.recovery.DiscardedTail
	s.head = head
	if min := indices[0]; min > 1 {
		s.base = min
		if auth, err := os.ReadFile(filepath.Join(s.dir, "prune-auth.zc")); err == nil {
			s.auth = auth
		}
	}
	return nil
}

// Append adds a sealed block extending the current head. For a persistent
// store it returns only after the block — and the write group it rode in —
// is fsync'd to disk.
func (s *Store) Append(b *Block) error {
	return s.AppendBatch([]*Block{b})
}

// AppendBatch adds a contiguous run of sealed blocks extending the current
// head, persisting them as a single fsync'd write group. Either all blocks
// are appended or none: validation and linkage are checked up front. Used
// by state transfer (a replica installing many fetched blocks at once) and
// by anything else that knows several blocks ahead of time; the group pays
// one directory fsync regardless of length.
func (s *Store) AppendBatch(blocks []*Block) error {
	if len(blocks) == 0 {
		return nil
	}
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			return err
		}
	}

	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	prevHash := s.pendHash
	next := s.pendHead + 1
	for _, b := range blocks {
		if b.Index != next {
			s.mu.Unlock()
			return fmt.Errorf("%w: index %d after head %d", ErrBadLinkage, b.Index, next-1)
		}
		if b.PrevHash != prevHash {
			s.mu.Unlock()
			return fmt.Errorf("%w: prev hash mismatch at %d", ErrBadLinkage, b.Index)
		}
		prevHash = b.Hash()
		next++
	}
	if s.dir == "" {
		for _, b := range blocks {
			s.blocks[b.Index] = b
		}
		s.head = next - 1
		s.pendHead = s.head
		s.pendHash = prevHash
		s.mu.Unlock()
		return nil
	}
	// Reserve the slots so a concurrent appender can stack the following
	// blocks — and share our write group — while we wait on the disk.
	s.pendHead = next - 1
	s.pendHash = prevHash
	s.mu.Unlock()

	if err := s.submitWrite(&writeReq{blocks: blocks, err: make(chan error, 1)}); err != nil {
		s.mu.Lock()
		if s.failed == nil && !errors.Is(err, ErrClosed) {
			s.failed = err
		}
		s.mu.Unlock()
		return err
	}

	s.mu.Lock()
	for _, b := range blocks {
		s.blocks[b.Index] = b
	}
	if last := blocks[len(blocks)-1].Index; last > s.head {
		s.head = last
	}
	s.mu.Unlock()
	return nil
}

// Sync is a durability barrier: it returns once every write group accepted
// before the call is fsync'd to disk. Export and prune paths call it before
// acting on store contents. No-op for a memory-only store.
func (s *Store) Sync() error {
	if s.dir == "" {
		return nil
	}
	s.gc.AddSync()
	// An empty request round-trips through the commit loop, which
	// serializes it after any in-flight group.
	return s.submitWrite(&writeReq{err: make(chan error, 1)})
}

// Close stops the group-commit writer and releases any appenders still
// queued (they get ErrClosed). The store must not be appended to after
// Close; reads remain valid. Safe to call more than once.
func (s *Store) Close() error {
	if s.dir == "" {
		return nil
	}
	s.closeOnce.Do(func() {
		close(s.quit)
		<-s.writerEnd
		// Release appenders that were parked in submitWrite's send. With
		// an unbuffered writeCh a send only ever pairs with a receive, so
		// after this drain finds the channel idle every remaining sender
		// is guaranteed to take its quit branch.
		for {
			select {
			case r := <-s.writeCh:
				r.err <- ErrClosed
			default:
				return
			}
		}
	})
	return nil
}

// GroupCommits exposes the group-commit writer's counters (groups, blocks
// per group, explicit sync barriers).
func (s *Store) GroupCommits() *metrics.GroupCommitCounters { return &s.gc }

// submitWrite hands a request to the commit loop and waits for its group
// to become durable.
func (s *Store) submitWrite(r *writeReq) error {
	select {
	case s.writeCh <- r:
		return <-r.err
	case <-s.quit:
		return ErrClosed
	}
}

// commitLoop is the group-commit writer: it takes one queued request, then
// drains every other request already waiting, writes all of their blocks
// (each an fsync'd temp file renamed into place), and makes the whole group
// durable with a single directory fsync before acknowledging everyone.
func (s *Store) commitLoop() {
	defer close(s.writerEnd)
	for {
		select {
		case r := <-s.writeCh:
			group := []*writeReq{r}
		drain:
			for {
				select {
				case r2 := <-s.writeCh:
					group = append(group, r2)
				default:
					break drain
				}
			}
			err := s.commitGroup(group)
			for _, g := range group {
				g.err <- err
			}
		case <-s.quit:
			return
		}
	}
}

// commitGroup persists every block of the group and fsyncs the directory
// once. A failure fails the whole group: none of its renames were made
// durable by a directory fsync, so no member may be acknowledged.
func (s *Store) commitGroup(group []*writeReq) error {
	n := 0
	for _, r := range group {
		for _, b := range r.blocks {
			if err := s.writeBlockFile(b); err != nil {
				return err
			}
			n++
		}
	}
	if n == 0 {
		return nil // pure Sync barriers: prior groups already fsync'd
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	s.gc.RecordGroup(n)
	return nil
}

// writeBlockFile persists one block atomically and durably: the temp file
// is fsync'd before the rename, so the rename can never install a file
// whose contents might still be lost to power failure. The directory fsync
// that makes the rename itself durable is the group's, in commitGroup.
func (s *Store) writeBlockFile(b *Block) error {
	final := filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", b.Index))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blockchain: write block %d: %w", b.Index, err)
	}
	if _, err := f.Write(b.Marshal()); err != nil {
		f.Close()
		return fmt.Errorf("blockchain: write block %d: %w", b.Index, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("blockchain: sync block %d: %w", b.Index, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("blockchain: close block %d: %w", b.Index, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("blockchain: commit block %d: %w", b.Index, err)
	}
	return nil
}

// syncDir fsyncs the store directory, making completed renames durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("blockchain: open store dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("blockchain: sync store dir: %w", err)
	}
	return nil
}

// Get returns the block at index. Pruned indices yield ErrPruned; compacted
// ones only have headers (see Header method).
func (s *Store) Get(index uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.blocks[index]; ok {
		return b, nil
	}
	if index < s.base {
		return nil, fmt.Errorf("%w: %d below base %d", ErrPruned, index, s.base)
	}
	if _, ok := s.headers[index]; ok {
		return nil, fmt.Errorf("%w: %d compacted to header", ErrPruned, index)
	}
	return nil, fmt.Errorf("%w: %d", ErrNotFound, index)
}

// Header returns the header at index, available even for compacted blocks.
func (s *Store) Header(index uint64) (Header, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.blocks[index]; ok {
		return b.Header, nil
	}
	if h, ok := s.headers[index]; ok {
		return h, nil
	}
	return Header{}, fmt.Errorf("%w: %d", ErrNotFound, index)
}

// Head returns the highest block.
func (s *Store) Head() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[s.head]
}

// HeadIndex returns the highest block index.
func (s *Store) HeadIndex() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Base returns the pruning base: the lowest retained full block.
func (s *Store) Base() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// Range returns the full blocks in [from, to]. Missing or pruned indices
// produce an error.
func (s *Store) Range(from, to uint64) ([]*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from > to {
		return nil, fmt.Errorf("blockchain: invalid range [%d, %d]", from, to)
	}
	out := make([]*Block, 0, to-from+1)
	for i := from; i <= to; i++ {
		b, ok := s.blocks[i]
		if !ok {
			return nil, fmt.Errorf("%w: %d in range [%d, %d]", ErrNotFound, i, from, to)
		}
		out = append(out, b)
	}
	return out, nil
}

// Prune removes all full blocks below keepFrom after a confirmed export.
// The block at keepFrom is retained as the base of the pruned chain ("the
// last exported block ... serves as the first block for the pruned
// blockchain", §III-D step 6). auth is the export layer's signed delete
// certificate, persisted so a transferred or audited chain can justify its
// non-genesis base.
func (s *Store) Prune(keepFrom uint64, auth []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keepFrom > s.head {
		return fmt.Errorf("blockchain: prune base %d above head %d", keepFrom, s.head)
	}
	if keepFrom <= s.base {
		return nil // nothing to do
	}
	if _, ok := s.blocks[keepFrom]; !ok {
		return fmt.Errorf("%w: prune base %d", ErrNotFound, keepFrom)
	}
	for i := s.base; i < keepFrom; i++ {
		delete(s.blocks, i)
		delete(s.headers, i)
		if s.dir != "" && i > 0 {
			_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", i)))
		}
	}
	s.base = keepFrom
	s.auth = auth
	if s.dir != "" {
		// The authorization must be durable before the deletions are: a
		// pruned chain recovered after power loss has to be able to
		// justify its non-genesis base (§III-D step 6).
		if auth != nil {
			_ = writeFileSync(filepath.Join(s.dir, "prune-auth.zc"), auth)
		}
		_ = s.syncDir()
	}
	return nil
}

// writeFileSync durably replaces path with data: fsync'd temp file, rename,
// directory fsync.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// PruneAuth returns the stored export authorization for the current base.
func (s *Store) PruneAuth() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.auth
}

// CompactToHeaders drops the bodies of blocks in [base, through], keeping
// their headers — the §III-D error (v) escape hatch when deletes are missed
// and memory runs out. The base block body is kept so the chain still has a
// verifiable anchor.
func (s *Store) CompactToHeaders(through uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if through >= s.head {
		return fmt.Errorf("blockchain: refusing to compact the head")
	}
	for i := s.base + 1; i <= through; i++ {
		b, ok := s.blocks[i]
		if !ok {
			continue
		}
		s.headers[i] = b.Header
		delete(s.blocks, i)
		if s.dir != "" {
			_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", i)))
		}
	}
	return nil
}

// VerifyChain checks hash linkage and block integrity from the base to the
// head, spanning compacted headers. Any mutation of any retained byte makes
// it fail.
func (s *Store) VerifyChain() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prevKnown := false
	var prevHash [32]byte
	for i := s.base; i <= s.head; i++ {
		var h Header
		if b, ok := s.blocks[i]; ok {
			if err := b.Validate(); err != nil {
				return err
			}
			h = b.Header
		} else if hdr, ok := s.headers[i]; ok {
			h = hdr
		} else {
			return fmt.Errorf("%w: %d during verification", ErrNotFound, i)
		}
		if prevKnown && h.PrevHash != prevHash {
			return fmt.Errorf("blockchain: broken link at block %d", i)
		}
		prevHash = h.Hash()
		prevKnown = true
	}
	return nil
}

// VerifySegment checks that blocks form a valid hash chain starting on top
// of base. Used by data centers validating an export batch and by replicas
// installing a state transfer.
func VerifySegment(base Header, blocks []*Block) error {
	prevHash := base.Hash()
	next := base.Index + 1
	for _, b := range blocks {
		if b.Index != next {
			return fmt.Errorf("blockchain: segment gap: got %d, want %d", b.Index, next)
		}
		if b.PrevHash != prevHash {
			return fmt.Errorf("blockchain: segment link broken at %d", b.Index)
		}
		if err := b.Validate(); err != nil {
			return err
		}
		prevHash = b.Hash()
		next++
	}
	return nil
}
