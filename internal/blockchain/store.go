package blockchain

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store errors.
var (
	ErrNotFound   = errors.New("blockchain: block not found")
	ErrBadLinkage = errors.New("blockchain: block does not extend the head")
	ErrPruned     = errors.New("blockchain: block was pruned")
)

// Store keeps the chain in memory and, when configured with a directory,
// persists every block to disk before acknowledging it — the paper persists
// the blockchain on disk to survive power loss (§V-B "Comparison to JRU
// Requirements"). Blocks below the pruning base are deleted after a
// confirmed export (§III-D); compacted blocks survive as headers only.
type Store struct {
	mu      sync.RWMutex
	dir     string // empty = memory only
	blocks  map[uint64]*Block
	headers map[uint64]Header // bodies compacted away, headers retained
	base    uint64            // lowest retained full block (pruning base)
	head    uint64            // highest block index
	auth    []byte            // export authorization justifying the base
}

// NewStore creates a store rooted at the genesis block. If dir is nonempty
// it is created if needed and any previously persisted blocks are loaded.
func NewStore(dir string) (*Store, error) {
	s := &Store{
		dir:     dir,
		blocks:  map[uint64]*Block{0: Genesis()},
		headers: make(map[uint64]Header),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockchain: create store dir: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load reads persisted blocks back into memory.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("blockchain: read store dir: %w", err)
	}
	var indices []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "block-") || !strings.HasSuffix(name, ".zc") {
			continue
		}
		idxStr := strings.TrimSuffix(strings.TrimPrefix(name, "block-"), ".zc")
		idx, err := strconv.ParseUint(idxStr, 10, 64)
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("blockchain: read %s: %w", name, err)
		}
		b, err := Unmarshal(data)
		if err != nil {
			return fmt.Errorf("blockchain: corrupt %s: %w", name, err)
		}
		if b.Index != idx {
			return fmt.Errorf("blockchain: %s contains block %d", name, b.Index)
		}
		s.blocks[idx] = b
		indices = append(indices, idx)
	}
	if len(indices) == 0 {
		return nil
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
	s.head = indices[len(indices)-1]
	if min := indices[0]; min > 1 {
		s.base = min
		if auth, err := os.ReadFile(filepath.Join(s.dir, "prune-auth.zc")); err == nil {
			s.auth = auth
		}
	}
	return nil
}

// Append adds a sealed block extending the current head, persisting it
// before returning.
func (s *Store) Append(b *Block) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Index != s.head+1 {
		return fmt.Errorf("%w: index %d after head %d", ErrBadLinkage, b.Index, s.head)
	}
	prev, ok := s.blocks[s.head]
	if ok && b.PrevHash != prev.Hash() {
		return fmt.Errorf("%w: prev hash mismatch at %d", ErrBadLinkage, b.Index)
	}
	if s.dir != "" {
		if err := s.writeBlock(b); err != nil {
			return err
		}
	}
	s.blocks[b.Index] = b
	s.head = b.Index
	return nil
}

// writeBlock persists one block atomically (temp file + rename).
func (s *Store) writeBlock(b *Block) error {
	final := filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", b.Index))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b.Marshal(), 0o644); err != nil {
		return fmt.Errorf("blockchain: write block %d: %w", b.Index, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("blockchain: commit block %d: %w", b.Index, err)
	}
	return nil
}

// Get returns the block at index. Pruned indices yield ErrPruned; compacted
// ones only have headers (see Header method).
func (s *Store) Get(index uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.blocks[index]; ok {
		return b, nil
	}
	if index < s.base {
		return nil, fmt.Errorf("%w: %d below base %d", ErrPruned, index, s.base)
	}
	if _, ok := s.headers[index]; ok {
		return nil, fmt.Errorf("%w: %d compacted to header", ErrPruned, index)
	}
	return nil, fmt.Errorf("%w: %d", ErrNotFound, index)
}

// Header returns the header at index, available even for compacted blocks.
func (s *Store) Header(index uint64) (Header, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.blocks[index]; ok {
		return b.Header, nil
	}
	if h, ok := s.headers[index]; ok {
		return h, nil
	}
	return Header{}, fmt.Errorf("%w: %d", ErrNotFound, index)
}

// Head returns the highest block.
func (s *Store) Head() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[s.head]
}

// HeadIndex returns the highest block index.
func (s *Store) HeadIndex() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Base returns the pruning base: the lowest retained full block.
func (s *Store) Base() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// Range returns the full blocks in [from, to]. Missing or pruned indices
// produce an error.
func (s *Store) Range(from, to uint64) ([]*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if from > to {
		return nil, fmt.Errorf("blockchain: invalid range [%d, %d]", from, to)
	}
	out := make([]*Block, 0, to-from+1)
	for i := from; i <= to; i++ {
		b, ok := s.blocks[i]
		if !ok {
			return nil, fmt.Errorf("%w: %d in range [%d, %d]", ErrNotFound, i, from, to)
		}
		out = append(out, b)
	}
	return out, nil
}

// Prune removes all full blocks below keepFrom after a confirmed export.
// The block at keepFrom is retained as the base of the pruned chain ("the
// last exported block ... serves as the first block for the pruned
// blockchain", §III-D step 6). auth is the export layer's signed delete
// certificate, persisted so a transferred or audited chain can justify its
// non-genesis base.
func (s *Store) Prune(keepFrom uint64, auth []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if keepFrom > s.head {
		return fmt.Errorf("blockchain: prune base %d above head %d", keepFrom, s.head)
	}
	if keepFrom <= s.base {
		return nil // nothing to do
	}
	if _, ok := s.blocks[keepFrom]; !ok {
		return fmt.Errorf("%w: prune base %d", ErrNotFound, keepFrom)
	}
	for i := s.base; i < keepFrom; i++ {
		delete(s.blocks, i)
		delete(s.headers, i)
		if s.dir != "" && i > 0 {
			_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", i)))
		}
	}
	s.base = keepFrom
	s.auth = auth
	if s.dir != "" && auth != nil {
		_ = os.WriteFile(filepath.Join(s.dir, "prune-auth.zc"), auth, 0o644)
	}
	return nil
}

// PruneAuth returns the stored export authorization for the current base.
func (s *Store) PruneAuth() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.auth
}

// CompactToHeaders drops the bodies of blocks in [base, through], keeping
// their headers — the §III-D error (v) escape hatch when deletes are missed
// and memory runs out. The base block body is kept so the chain still has a
// verifiable anchor.
func (s *Store) CompactToHeaders(through uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if through >= s.head {
		return fmt.Errorf("blockchain: refusing to compact the head")
	}
	for i := s.base + 1; i <= through; i++ {
		b, ok := s.blocks[i]
		if !ok {
			continue
		}
		s.headers[i] = b.Header
		delete(s.blocks, i)
		if s.dir != "" {
			_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf("block-%08d.zc", i)))
		}
	}
	return nil
}

// VerifyChain checks hash linkage and block integrity from the base to the
// head, spanning compacted headers. Any mutation of any retained byte makes
// it fail.
func (s *Store) VerifyChain() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prevKnown := false
	var prevHash [32]byte
	for i := s.base; i <= s.head; i++ {
		var h Header
		if b, ok := s.blocks[i]; ok {
			if err := b.Validate(); err != nil {
				return err
			}
			h = b.Header
		} else if hdr, ok := s.headers[i]; ok {
			h = hdr
		} else {
			return fmt.Errorf("%w: %d during verification", ErrNotFound, i)
		}
		if prevKnown && h.PrevHash != prevHash {
			return fmt.Errorf("blockchain: broken link at block %d", i)
		}
		prevHash = h.Hash()
		prevKnown = true
	}
	return nil
}

// VerifySegment checks that blocks form a valid hash chain starting on top
// of base. Used by data centers validating an export batch and by replicas
// installing a state transfer.
func VerifySegment(base Header, blocks []*Block) error {
	prevHash := base.Hash()
	next := base.Index + 1
	for _, b := range blocks {
		if b.Index != next {
			return fmt.Errorf("blockchain: segment gap: got %d, want %d", b.Index, next)
		}
		if b.PrevHash != prevHash {
			return fmt.Errorf("blockchain: segment link broken at %d", b.Index)
		}
		if err := b.Validate(); err != nil {
			return err
		}
		prevHash = b.Hash()
		next++
	}
	return nil
}
