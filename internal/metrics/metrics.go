// Package metrics collects the measurements used to reproduce the paper's
// evaluation: request latencies (Fig 6, 8, 9), network utilization (Fig 6),
// and the CPU/memory work proxies (Fig 7, 9).
//
// Real CPU-percent measurements on 800 MHz ARM cores are not reproducible on
// commodity machines, so CPU load is approximated by counting the dominant
// work items — signature generation/verification and protocol messages
// handled — while memory is sampled from the Go runtime. DESIGN.md §1
// documents this substitution.
package metrics

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates monotonically increasing event counts. All methods are
// safe for concurrent use. The zero value is ready to use.
type Counters struct {
	msgsSent      atomic.Uint64
	msgsReceived  atomic.Uint64
	bytesSent     atomic.Uint64
	bytesReceived atomic.Uint64
	signatures    atomic.Uint64
	verifications atomic.Uint64
	requests      atomic.Uint64
	duplicates    atomic.Uint64
}

// AddSent records an outbound message of n bytes.
func (c *Counters) AddSent(n int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(uint64(n))
}

// AddReceived records an inbound message of n bytes.
func (c *Counters) AddReceived(n int) {
	c.msgsReceived.Add(1)
	c.bytesReceived.Add(uint64(n))
}

// AddSignature records one signature generation.
func (c *Counters) AddSignature() { c.signatures.Add(1) }

// AddVerification records one signature verification.
func (c *Counters) AddVerification() { c.verifications.Add(1) }

// AddRequest records one ordered (decided) request.
func (c *Counters) AddRequest() { c.requests.Add(1) }

// AddDuplicate records one filtered duplicate request.
func (c *Counters) AddDuplicate() { c.duplicates.Add(1) }

// CounterSnapshot is a point-in-time copy of all counters.
type CounterSnapshot struct {
	MsgsSent      uint64
	MsgsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
	Signatures    uint64
	Verifications uint64
	Requests      uint64
	Duplicates    uint64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		MsgsSent:      c.msgsSent.Load(),
		MsgsReceived:  c.msgsReceived.Load(),
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesReceived.Load(),
		Signatures:    c.signatures.Load(),
		Verifications: c.verifications.Load(),
		Requests:      c.requests.Load(),
		Duplicates:    c.duplicates.Load(),
	}
}

// Sub returns the element-wise difference s - earlier, for interval metrics.
func (s CounterSnapshot) Sub(earlier CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		MsgsSent:      s.MsgsSent - earlier.MsgsSent,
		MsgsReceived:  s.MsgsReceived - earlier.MsgsReceived,
		BytesSent:     s.BytesSent - earlier.BytesSent,
		BytesReceived: s.BytesReceived - earlier.BytesReceived,
		Signatures:    s.Signatures - earlier.Signatures,
		Verifications: s.Verifications - earlier.Verifications,
		Requests:      s.Requests - earlier.Requests,
		Duplicates:    s.Duplicates - earlier.Duplicates,
	}
}

// CPUWorkUnits collapses the snapshot into a single CPU-load proxy. The
// weights reflect that Ed25519 operations dominate per-message handling cost
// on the paper's hardware (sign ≈ verify ≈ 30–60 µs on Cortex-A9; framing
// and hashing are an order of magnitude cheaper).
func (s CounterSnapshot) CPUWorkUnits() float64 {
	const (
		signCost   = 10.0
		verifyCost = 10.0
		msgCost    = 1.0
		byteCost   = 0.001
	)
	return signCost*float64(s.Signatures) +
		verifyCost*float64(s.Verifications) +
		msgCost*float64(s.MsgsSent+s.MsgsReceived) +
		byteCost*float64(s.BytesSent+s.BytesReceived)
}

// CryptoCounters instruments the Ed25519 acceleration layer: how many
// signatures settled via the batched multi-scalar equation versus individual
// scalar verifies, how often a failed batch had to bisect to find the corrupt
// entries, and the verified-signature cache's hit/miss/eviction traffic. Like
// PoolCounters it keeps O(1) state so it can sit on the verification hot
// path. All methods are safe for concurrent use and nil-safe (a nil receiver
// records nothing), so uninstrumented registries pay only a nil check; the
// zero value is ready to use.
type CryptoCounters struct {
	scalarVerifies atomic.Uint64
	batchedSigs    atomic.Uint64
	batchOps       atomic.Uint64
	batchMax       atomic.Int64
	bisections     atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	cacheEvictions atomic.Uint64
}

// AddScalarVerify records one individual (non-batched) signature
// verification — a single cofactored equation, or a bisection leaf.
func (c *CryptoCounters) AddScalarVerify() {
	if c == nil {
		return
	}
	c.scalarVerifies.Add(1)
}

// RecordBatch records one batched verification equation covering n
// signatures.
func (c *CryptoCounters) RecordBatch(n int) {
	if c == nil {
		return
	}
	c.batchOps.Add(1)
	c.batchedSigs.Add(uint64(n))
	v := int64(n)
	for {
		cur := c.batchMax.Load()
		if v <= cur || c.batchMax.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AddBisection records one bisection split while pinpointing corrupt
// signatures in a failed batch.
func (c *CryptoCounters) AddBisection() {
	if c == nil {
		return
	}
	c.bisections.Add(1)
}

// AddCacheHit records one verified-signature cache hit (a skipped verify).
func (c *CryptoCounters) AddCacheHit() {
	if c == nil {
		return
	}
	c.cacheHits.Add(1)
}

// AddCacheMiss records one verified-signature cache miss.
func (c *CryptoCounters) AddCacheMiss() {
	if c == nil {
		return
	}
	c.cacheMisses.Add(1)
}

// AddCacheEviction records one entry evicted by the cache's LRU bound.
func (c *CryptoCounters) AddCacheEviction() {
	if c == nil {
		return
	}
	c.cacheEvictions.Add(1)
}

// CryptoSnapshot is a point-in-time copy of CryptoCounters.
type CryptoSnapshot struct {
	// ScalarVerifies counts individual single-signature verifications;
	// BatchedSigs the signatures settled through batch equations instead.
	ScalarVerifies uint64
	BatchedSigs    uint64
	// BatchOps counts batch equations evaluated; MeanBatch =
	// BatchedSigs/BatchOps; BatchMax the largest single equation.
	BatchOps  uint64
	MeanBatch float64
	BatchMax  int64
	// Bisections counts fallback splits hunting corrupt entries.
	Bisections uint64
	// CacheHits/CacheMisses/CacheEvictions describe the verified-signature
	// cache; HitRate = CacheHits / (CacheHits + CacheMisses).
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	HitRate        float64
}

// Snapshot returns the current crypto counter values. A nil receiver yields
// the zero snapshot.
func (c *CryptoCounters) Snapshot() CryptoSnapshot {
	if c == nil {
		return CryptoSnapshot{}
	}
	s := CryptoSnapshot{
		ScalarVerifies: c.scalarVerifies.Load(),
		BatchedSigs:    c.batchedSigs.Load(),
		BatchOps:       c.batchOps.Load(),
		BatchMax:       c.batchMax.Load(),
		Bisections:     c.bisections.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		CacheEvictions: c.cacheEvictions.Load(),
	}
	if s.BatchOps > 0 {
		s.MeanBatch = float64(s.BatchedSigs) / float64(s.BatchOps)
	}
	if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
		s.HitRate = float64(s.CacheHits) / float64(lookups)
	}
	return s
}

// PoolCounters instruments an asynchronous worker pool (the signature
// verification pipeline): how many tasks ran on pool workers versus inline on
// the submitting goroutine, the current and peak queue depth, and
// submit-to-completion task latency. Unlike Latency it keeps O(1) state
// (sum/count/max) so it can sit on the verification hot path without
// accumulating samples. All methods are safe for concurrent use; the zero
// value is ready to use.
type PoolCounters struct {
	offloaded atomic.Uint64
	inline    atomic.Uint64
	panics    atomic.Uint64
	depth     atomic.Int64
	peak      atomic.Int64
	latSumNs  atomic.Int64
	latCount  atomic.Uint64
	latMaxNs  atomic.Int64
}

// AddOffloaded records one task executed by a pool worker.
func (p *PoolCounters) AddOffloaded() { p.offloaded.Add(1) }

// AddInline records one task executed on the submitter (fast path or
// backpressure).
func (p *PoolCounters) AddInline() { p.inline.Add(1) }

// AddPanic records one task panic contained by a pool worker. Nonzero means
// a verification callback has a bug; the pool survives, the counter makes
// the bug visible.
func (p *PoolCounters) AddPanic() { p.panics.Add(1) }

// Enqueued records a task entering the queue, tracking the peak depth.
func (p *PoolCounters) Enqueued() {
	d := p.depth.Add(1)
	for {
		cur := p.peak.Load()
		if d <= cur || p.peak.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Dequeued records a task leaving the queue.
func (p *PoolCounters) Dequeued() { p.depth.Add(-1) }

// RecordTask records one task's submit-to-completion latency.
func (p *PoolCounters) RecordTask(d time.Duration) {
	ns := int64(d)
	p.latSumNs.Add(ns)
	p.latCount.Add(1)
	for {
		cur := p.latMaxNs.Load()
		if ns <= cur || p.latMaxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// PoolSnapshot is a point-in-time copy of PoolCounters.
type PoolSnapshot struct {
	// Offloaded and Inline count completed tasks by where they executed.
	Offloaded uint64
	Inline    uint64
	// Panics counts task panics contained by pool workers.
	Panics uint64
	// QueueDepth is the instantaneous queue backlog; QueuePeak its maximum.
	QueueDepth int64
	QueuePeak  int64
	// Tasks latency statistics over all recorded tasks.
	TaskCount uint64
	TaskMean  time.Duration
	TaskMax   time.Duration
}

// Snapshot returns the current pool counter values.
func (p *PoolCounters) Snapshot() PoolSnapshot {
	s := PoolSnapshot{
		Offloaded:  p.offloaded.Load(),
		Inline:     p.inline.Load(),
		Panics:     p.panics.Load(),
		QueueDepth: p.depth.Load(),
		QueuePeak:  p.peak.Load(),
		TaskCount:  p.latCount.Load(),
		TaskMax:    time.Duration(p.latMaxNs.Load()),
	}
	if s.TaskCount > 0 {
		s.TaskMean = time.Duration(p.latSumNs.Load() / int64(s.TaskCount))
	}
	return s
}

// BatchCounters instruments the primary's request coalescing (the ordering
// hot path's batching stage): how many flushes happened and why (the batch
// filled up, or the max-batch-delay expired), how many records they carried,
// and how long the oldest record of each flush waited. Like PoolCounters it
// keeps O(1) state so it can sit on the hot path. All methods are safe for
// concurrent use; the zero value is ready to use.
type BatchCounters struct {
	flushes      atomic.Uint64
	records      atomic.Uint64
	sizeFlushes  atomic.Uint64
	delayFlushes atomic.Uint64
	maxSize      atomic.Int64
	waitSumNs    atomic.Int64
	waitMaxNs    atomic.Int64
}

// RecordFlush records one batch flush of size records whose oldest record
// waited wait; byDelay reports whether the max-batch-delay timer (rather
// than the size limit) triggered it.
func (b *BatchCounters) RecordFlush(size int, wait time.Duration, byDelay bool) {
	b.flushes.Add(1)
	b.records.Add(uint64(size))
	if byDelay {
		b.delayFlushes.Add(1)
	} else {
		b.sizeFlushes.Add(1)
	}
	s := int64(size)
	for {
		cur := b.maxSize.Load()
		if s <= cur || b.maxSize.CompareAndSwap(cur, s) {
			break
		}
	}
	ns := int64(wait)
	b.waitSumNs.Add(ns)
	for {
		cur := b.waitMaxNs.Load()
		if ns <= cur || b.waitMaxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// BatchSnapshot is a point-in-time copy of BatchCounters.
type BatchSnapshot struct {
	// Flushes counts proposals sent; Records the records they carried.
	Flushes uint64
	Records uint64
	// SizeFlushes and DelayFlushes split Flushes by trigger.
	SizeFlushes  uint64
	DelayFlushes uint64
	// MaxSize is the largest single flush; MeanSize = Records/Flushes.
	MaxSize  int64
	MeanSize float64
	// WaitMean and WaitMax describe how long the oldest record of a flush
	// waited for companions (the batching latency cost).
	WaitMean time.Duration
	WaitMax  time.Duration
}

// Snapshot returns the current batch counter values.
func (b *BatchCounters) Snapshot() BatchSnapshot {
	s := BatchSnapshot{
		Flushes:      b.flushes.Load(),
		Records:      b.records.Load(),
		SizeFlushes:  b.sizeFlushes.Load(),
		DelayFlushes: b.delayFlushes.Load(),
		MaxSize:      b.maxSize.Load(),
		WaitMax:      time.Duration(b.waitMaxNs.Load()),
	}
	if s.Flushes > 0 {
		s.MeanSize = float64(s.Records) / float64(s.Flushes)
		s.WaitMean = time.Duration(b.waitSumNs.Load() / int64(s.Flushes))
	}
	return s
}

// GroupCommitCounters instruments the blockchain store's group-commit
// writer: how many durable write groups ran, how many blocks they covered
// (one directory fsync per group makes every block in it durable at once),
// and how many explicit Sync barriers were requested. Safe for concurrent
// use; the zero value is ready to use.
type GroupCommitCounters struct {
	groups   atomic.Uint64
	blocks   atomic.Uint64
	syncs    atomic.Uint64
	maxGroup atomic.Int64
}

// RecordGroup records one committed write group of n blocks.
func (g *GroupCommitCounters) RecordGroup(n int) {
	g.groups.Add(1)
	g.blocks.Add(uint64(n))
	v := int64(n)
	for {
		cur := g.maxGroup.Load()
		if v <= cur || g.maxGroup.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AddSync records one explicit Sync barrier request.
func (g *GroupCommitCounters) AddSync() { g.syncs.Add(1) }

// GroupCommitSnapshot is a point-in-time copy of GroupCommitCounters.
type GroupCommitSnapshot struct {
	// Groups counts fsync'd write groups; Blocks the blocks they covered.
	Groups uint64
	Blocks uint64
	// Syncs counts explicit Sync barrier calls.
	Syncs uint64
	// MaxGroup is the largest group; MeanGroup = Blocks/Groups.
	MaxGroup  int64
	MeanGroup float64
}

// Snapshot returns the current group-commit counter values.
func (g *GroupCommitCounters) Snapshot() GroupCommitSnapshot {
	s := GroupCommitSnapshot{
		Groups:   g.groups.Load(),
		Blocks:   g.blocks.Load(),
		Syncs:    g.syncs.Load(),
		MaxGroup: g.maxGroup.Load(),
	}
	if s.Groups > 0 {
		s.MeanGroup = float64(s.Blocks) / float64(s.Groups)
	}
	return s
}

// NetCounters instruments a transport's asynchronous outbound pipeline (the
// per-peer send queues and their coalescing writers): queue depth and peak,
// frames dropped on queue overflow or lost to broken connections, how many
// frames each write syscall carried, and background redials. Like
// PoolCounters it keeps O(1) state so it can sit on the transport hot path.
// All methods are safe for concurrent use; the zero value is ready to use.
type NetCounters struct {
	enqueued    atomic.Uint64
	drops       atomic.Uint64
	writeErrors atomic.Uint64
	writeOps    atomic.Uint64
	frames      atomic.Uint64
	redials     atomic.Uint64
	depth       atomic.Int64
	peak        atomic.Int64
}

// Enqueued records one frame entering a send queue, tracking peak depth.
func (n *NetCounters) Enqueued() {
	n.enqueued.Add(1)
	d := n.depth.Add(1)
	for {
		cur := n.peak.Load()
		if d <= cur || n.peak.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Dequeued records k frames leaving a send queue.
func (n *NetCounters) Dequeued(k int) { n.depth.Add(-int64(k)) }

// AddDrop records one frame dropped by the queue-overflow policy.
func (n *NetCounters) AddDrop() { n.drops.Add(1) }

// AddWriteError records k frames lost to a failed connection write.
func (n *NetCounters) AddWriteError(k int) { n.writeErrors.Add(uint64(k)) }

// AddWrite records one write syscall that flushed k coalesced frames.
func (n *NetCounters) AddWrite(k int) {
	n.writeOps.Add(1)
	n.frames.Add(uint64(k))
}

// AddRedial records one background reconnection attempt.
func (n *NetCounters) AddRedial() { n.redials.Add(1) }

// NetSnapshot is a point-in-time copy of NetCounters.
type NetSnapshot struct {
	// Enqueued counts frames accepted into send queues; Drops the frames
	// evicted by the overflow policy; WriteErrors the frames lost when a
	// connection write failed mid-flush.
	Enqueued    uint64
	Drops       uint64
	WriteErrors uint64
	// WriteOps counts write syscalls; Frames the frames they carried.
	// CoalesceMean = Frames/WriteOps is the amortization the vectored
	// writer achieves.
	WriteOps     uint64
	Frames       uint64
	CoalesceMean float64
	// Redials counts background reconnection attempts.
	Redials uint64
	// QueueDepth is the instantaneous total backlog; QueuePeak its maximum.
	QueueDepth int64
	QueuePeak  int64
}

// Snapshot returns the current net counter values.
func (n *NetCounters) Snapshot() NetSnapshot {
	s := NetSnapshot{
		Enqueued:    n.enqueued.Load(),
		Drops:       n.drops.Load(),
		WriteErrors: n.writeErrors.Load(),
		WriteOps:    n.writeOps.Load(),
		Frames:      n.frames.Load(),
		Redials:     n.redials.Load(),
		QueueDepth:  n.depth.Load(),
		QueuePeak:   n.peak.Load(),
	}
	if s.WriteOps > 0 {
		s.CoalesceMean = float64(s.Frames) / float64(s.WriteOps)
	}
	return s
}

// WALCounters instruments the PBFT write-ahead log: how many fsync'd append
// groups ran and how many records/bytes they carried (the group-commit
// amortization of the durability cost), plus checkpoint rotations and what
// recovery found on open. Safe for concurrent use; the zero value is ready
// to use.
type WALCounters struct {
	groups         atomic.Uint64
	records        atomic.Uint64
	bytes          atomic.Uint64
	rotations      atomic.Uint64
	replayed       atomic.Uint64
	truncatedBytes atomic.Uint64
	maxGroup       atomic.Int64
}

// RecordGroup records one fsync'd append group of n records totalling b
// payload bytes.
func (w *WALCounters) RecordGroup(n, b int) {
	w.groups.Add(1)
	w.records.Add(uint64(n))
	w.bytes.Add(uint64(b))
	v := int64(n)
	for {
		cur := w.maxGroup.Load()
		if v <= cur || w.maxGroup.CompareAndSwap(cur, v) {
			return
		}
	}
}

// AddRotation records one checkpoint-triggered segment rotation.
func (w *WALCounters) AddRotation() { w.rotations.Add(1) }

// RecordReplay records what recovery found on open: n replayed records and
// b corrupt tail bytes discarded.
func (w *WALCounters) RecordReplay(n int, b int64) {
	w.replayed.Add(uint64(n))
	w.truncatedBytes.Add(uint64(b))
}

// WALSnapshot is a point-in-time copy of WALCounters.
type WALSnapshot struct {
	// Groups counts fsync'd append groups; Records and Bytes what they
	// carried. MeanGroup = Records/Groups is the group-commit amortization.
	Groups    uint64
	Records   uint64
	Bytes     uint64
	MaxGroup  int64
	MeanGroup float64
	// Rotations counts checkpoint-triggered segment rotations.
	Rotations uint64
	// Replayed counts records restored on open; TruncatedBytes the corrupt
	// tail bytes recovery discarded.
	Replayed       uint64
	TruncatedBytes uint64
}

// Snapshot returns the current WAL counter values.
func (w *WALCounters) Snapshot() WALSnapshot {
	s := WALSnapshot{
		Groups:         w.groups.Load(),
		Records:        w.records.Load(),
		Bytes:          w.bytes.Load(),
		MaxGroup:       w.maxGroup.Load(),
		Rotations:      w.rotations.Load(),
		Replayed:       w.replayed.Load(),
		TruncatedBytes: w.truncatedBytes.Load(),
	}
	if s.Groups > 0 {
		s.MeanGroup = float64(s.Records) / float64(s.Groups)
	}
	return s
}

// DefaultLatencyCap bounds how many samples a Latency retains. It is sized
// well above any experiment run reproducing the paper's figures (a few
// thousand records), so those keep exact percentiles, while a long-running
// daemon's memory stays fixed: once the cap is reached the ring overwrites
// the oldest samples and statistics describe the most recent window.
const DefaultLatencyCap = 1 << 16

// Latency accumulates duration samples in a bounded ring and reports
// distribution statistics over the retained window. It is safe for
// concurrent use; the zero value is ready to use with DefaultLatencyCap.
type Latency struct {
	mu      sync.Mutex
	cap     int // 0 = DefaultLatencyCap
	samples []TimedSample
	next    int  // overwrite position once full
	wrapped bool // the ring has overwritten at least one sample
	total   uint64
}

// SetCap bounds the retained samples (before the cap is reached). Values
// <= 0 select DefaultLatencyCap. Calling it after samples were dropped to
// a smaller previous cap does not recover them.
func (l *Latency) SetCap(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		n = DefaultLatencyCap
	}
	l.cap = n
}

func (l *Latency) capLocked() int {
	if l.cap <= 0 {
		return DefaultLatencyCap
	}
	return l.cap
}

// Record adds one sample, stamping it with the wall-clock arrival time so
// time series (the view-change latency timeline of Fig 8) can be rebuilt.
// Past the cap, the oldest sample is overwritten.
func (l *Latency) Record(d time.Duration) {
	now := time.Now()
	l.mu.Lock()
	l.total++
	if max := l.capLocked(); len(l.samples) >= max {
		l.samples[l.next] = TimedSample{At: now, D: d}
		l.next = (l.next + 1) % max
		l.wrapped = true
	} else {
		l.samples = append(l.samples, TimedSample{At: now, D: d})
	}
	l.mu.Unlock()
}

// TimedSample is one latency observation with its wall-clock arrival time.
type TimedSample struct {
	At time.Time
	D  time.Duration
}

// TimedSamples returns the retained samples with their arrival timestamps
// in arrival order (the full history until the cap is reached, the most
// recent window after).
func (l *Latency) TimedSamples() []TimedSample {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TimedSample, 0, len(l.samples))
	if l.wrapped {
		out = append(out, l.samples[l.next:]...)
		out = append(out, l.samples[:l.next]...)
		return out
	}
	return append(out, l.samples...)
}

// Count reports the number of retained samples.
func (l *Latency) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Total reports the number of samples ever recorded, including any the
// ring has overwritten.
func (l *Latency) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped reports how many samples the ring has overwritten.
func (l *Latency) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total - uint64(len(l.samples))
}

// LatencyStats summarizes a latency distribution.
type LatencyStats struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Stats computes distribution statistics over the retained samples (exact
// until the ring cap is reached, the most recent window after).
func (l *Latency) Stats() LatencyStats {
	l.mu.Lock()
	samples := make([]time.Duration, len(l.samples))
	for i := range l.samples {
		samples[i] = l.samples[i].D
	}
	l.mu.Unlock()

	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	n := len(samples)
	return LatencyStats{
		Count:  n,
		Mean:   sum / time.Duration(n),
		Median: samples[n/2],
		P99:    samples[percentileIndex(n, 0.99)],
		Max:    samples[n-1],
	}
}

// Samples returns a copy of the retained samples in arrival order, used for
// the view-change latency timeline (Fig 8).
func (l *Latency) Samples() []time.Duration {
	timed := l.TimedSamples()
	out := make([]time.Duration, len(timed))
	for i := range timed {
		out[i] = timed[i].D
	}
	return out
}

// Reset discards all samples (retained and counted).
func (l *Latency) Reset() {
	l.mu.Lock()
	l.samples = l.samples[:0]
	l.next = 0
	l.wrapped = false
	l.total = 0
	l.mu.Unlock()
}

func percentileIndex(n int, p float64) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// MemorySample captures the Go heap state as the memory-usage proxy.
type MemorySample struct {
	HeapAlloc  uint64
	TotalAlloc uint64
	NumGC      uint32
}

// SampleMemory reads the current runtime memory statistics.
func SampleMemory() MemorySample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemorySample{
		HeapAlloc:  ms.HeapAlloc,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
	}
}
