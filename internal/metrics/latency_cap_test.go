package metrics

import (
	"testing"
	"time"
)

// TestLatencyCapRetention: past the cap, Latency becomes a ring over the
// newest samples — exact percentiles for short runs, bounded memory forever.
func TestLatencyCapRetention(t *testing.T) {
	var l Latency
	l.SetCap(8)
	for i := 1; i <= 20; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if got := l.Count(); got != 8 {
		t.Fatalf("retained = %d, want cap 8", got)
	}
	if got := l.Total(); got != 20 {
		t.Fatalf("total = %d, want 20", got)
	}
	if got := l.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	// The window is the newest 8 samples, in arrival order.
	got := l.Samples()
	for i, d := range got {
		if want := time.Duration(13+i) * time.Millisecond; d != want {
			t.Fatalf("samples[%d] = %v, want %v", i, d, want)
		}
	}
	// Stats are exact over the retained window: 13..20ms.
	s := l.Stats()
	if s.Count != 8 || s.Max != 20*time.Millisecond || s.Median != 17*time.Millisecond {
		t.Fatalf("stats over window = %+v", s)
	}
}

func TestLatencyDefaultCap(t *testing.T) {
	var l Latency
	for i := 0; i < DefaultLatencyCap+10; i++ {
		l.Record(time.Millisecond)
	}
	if got := l.Count(); got != DefaultLatencyCap {
		t.Fatalf("retained = %d, want DefaultLatencyCap %d", got, DefaultLatencyCap)
	}
	if got := l.Dropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
}

func TestLatencyBelowCapExact(t *testing.T) {
	var l Latency
	l.SetCap(100)
	for i := 1; i <= 50; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 50 || l.Dropped() != 0 {
		t.Fatalf("count=%d dropped=%d, want 50/0", l.Count(), l.Dropped())
	}
	ts := l.TimedSamples()
	if len(ts) != 50 || ts[0].D != time.Millisecond || ts[49].D != 50*time.Millisecond {
		t.Fatalf("timed samples window wrong: len=%d first=%v last=%v", len(ts), ts[0].D, ts[49].D)
	}
}

func TestLatencyResetClearsRing(t *testing.T) {
	var l Latency
	l.SetCap(4)
	for i := 0; i < 10; i++ {
		l.Record(time.Millisecond)
	}
	l.Reset()
	if l.Count() != 0 || l.Total() != 0 || l.Dropped() != 0 {
		t.Fatalf("after reset: count=%d total=%d dropped=%d", l.Count(), l.Total(), l.Dropped())
	}
	l.Record(2 * time.Millisecond)
	if s := l.Stats(); s.Count != 1 || s.Max != 2*time.Millisecond {
		t.Fatalf("stats after reset+record = %+v", s)
	}
}
