package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCountersSnapshot(t *testing.T) {
	var c Counters
	c.AddSent(100)
	c.AddSent(50)
	c.AddReceived(30)
	c.AddSignature()
	c.AddVerification()
	c.AddVerification()
	c.AddRequest()
	c.AddDuplicate()

	s := c.Snapshot()
	if s.MsgsSent != 2 || s.BytesSent != 150 {
		t.Errorf("sent = %d msgs / %d bytes, want 2/150", s.MsgsSent, s.BytesSent)
	}
	if s.MsgsReceived != 1 || s.BytesReceived != 30 {
		t.Errorf("received = %d msgs / %d bytes, want 1/30", s.MsgsReceived, s.BytesReceived)
	}
	if s.Signatures != 1 || s.Verifications != 2 {
		t.Errorf("crypto = %d sigs / %d verifies", s.Signatures, s.Verifications)
	}
	if s.Requests != 1 || s.Duplicates != 1 {
		t.Errorf("requests = %d, duplicates = %d", s.Requests, s.Duplicates)
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Counters
	c.AddSent(10)
	before := c.Snapshot()
	c.AddSent(25)
	c.AddRequest()
	diff := c.Snapshot().Sub(before)
	if diff.MsgsSent != 1 || diff.BytesSent != 25 || diff.Requests != 1 {
		t.Errorf("diff = %+v", diff)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddSent(1)
				c.AddReceived(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.MsgsSent != 8000 || s.BytesReceived != 16000 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestCPUWorkUnitsMonotone(t *testing.T) {
	light := CounterSnapshot{MsgsSent: 10, BytesSent: 1000}
	heavy := CounterSnapshot{MsgsSent: 10, BytesSent: 1000, Signatures: 5, Verifications: 20}
	if light.CPUWorkUnits() >= heavy.CPUWorkUnits() {
		t.Errorf("work proxy not monotone: light=%v heavy=%v",
			light.CPUWorkUnits(), heavy.CPUWorkUnits())
	}
	var zero CounterSnapshot
	if zero.CPUWorkUnits() != 0 {
		t.Errorf("zero snapshot work = %v", zero.CPUWorkUnits())
	}
}

func TestLatencyStats(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	s := l.Stats()
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", s.Mean)
	}
	if s.Median != 51*time.Millisecond {
		t.Errorf("Median = %v, want 51ms", s.Median)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("P99 = %v, want 99ms", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", s.Max)
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if s := l.Stats(); s != (LatencyStats{}) {
		t.Errorf("Stats() on empty = %+v", s)
	}
}

func TestLatencySingleSample(t *testing.T) {
	var l Latency
	l.Record(7 * time.Millisecond)
	s := l.Stats()
	if s.Mean != 7*time.Millisecond || s.Median != 7*time.Millisecond ||
		s.P99 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Errorf("Stats() = %+v", s)
	}
}

func TestLatencySamplesOrderAndReset(t *testing.T) {
	var l Latency
	l.Record(3 * time.Millisecond)
	l.Record(1 * time.Millisecond)
	l.Record(2 * time.Millisecond)
	got := l.Samples()
	want := []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Samples()[%d] = %v, want %v (arrival order)", i, got[i], want[i])
		}
	}
	l.Reset()
	if l.Count() != 0 {
		t.Errorf("Count after Reset = %d", l.Count())
	}
}

func TestPercentileIndex(t *testing.T) {
	tests := []struct {
		n    int
		p    float64
		want int
	}{
		{1, 0.99, 0},
		{100, 0.99, 98},
		{100, 0.50, 49},
		{10, 1.0, 9},
		{10, 0.0, 0},
	}
	for _, tt := range tests {
		if got := percentileIndex(tt.n, tt.p); got != tt.want {
			t.Errorf("percentileIndex(%d, %v) = %d, want %d", tt.n, tt.p, got, tt.want)
		}
	}
}

func TestSampleMemory(t *testing.T) {
	s := SampleMemory()
	if s.HeapAlloc == 0 || s.TotalAlloc == 0 {
		t.Errorf("memory sample = %+v, want nonzero alloc", s)
	}
}

func TestPoolCountersSnapshot(t *testing.T) {
	var p PoolCounters
	p.Enqueued()
	p.Enqueued()
	p.Enqueued()
	p.Dequeued()
	p.AddOffloaded()
	p.AddInline()
	p.RecordTask(10 * time.Millisecond)
	p.RecordTask(30 * time.Millisecond)

	s := p.Snapshot()
	if s.Offloaded != 1 || s.Inline != 1 {
		t.Errorf("offloaded = %d, inline = %d, want 1/1", s.Offloaded, s.Inline)
	}
	if s.QueueDepth != 2 {
		t.Errorf("queue depth = %d, want 2", s.QueueDepth)
	}
	if s.QueuePeak != 3 {
		t.Errorf("queue peak = %d, want 3", s.QueuePeak)
	}
	if s.TaskCount != 2 {
		t.Errorf("task count = %d, want 2", s.TaskCount)
	}
	if s.TaskMean != 20*time.Millisecond {
		t.Errorf("task mean = %v, want 20ms", s.TaskMean)
	}
	if s.TaskMax != 30*time.Millisecond {
		t.Errorf("task max = %v, want 30ms", s.TaskMax)
	}
}

func TestPoolCountersConcurrent(t *testing.T) {
	var p PoolCounters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Enqueued()
				p.Dequeued()
				p.AddOffloaded()
				p.RecordTask(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Offloaded != 8000 || s.TaskCount != 8000 {
		t.Errorf("offloaded = %d, tasks = %d, want 8000/8000", s.Offloaded, s.TaskCount)
	}
	if s.QueueDepth != 0 {
		t.Errorf("final queue depth = %d, want 0", s.QueueDepth)
	}
	if s.QueuePeak < 1 {
		t.Errorf("queue peak = %d, want >= 1", s.QueuePeak)
	}
}

func TestBatchCountersSnapshot(t *testing.T) {
	var b BatchCounters
	if snap := b.Snapshot(); snap.Flushes != 0 || snap.MeanSize != 0 || snap.WaitMean != 0 {
		t.Errorf("zero-value snapshot = %+v", snap)
	}
	b.RecordFlush(4, 2*time.Millisecond, false)
	b.RecordFlush(8, 6*time.Millisecond, true)
	b.RecordFlush(3, time.Millisecond, true)

	snap := b.Snapshot()
	if snap.Flushes != 3 || snap.Records != 15 {
		t.Errorf("flushes/records = %d/%d", snap.Flushes, snap.Records)
	}
	if snap.SizeFlushes != 1 || snap.DelayFlushes != 2 {
		t.Errorf("triggers = %d size, %d delay", snap.SizeFlushes, snap.DelayFlushes)
	}
	if snap.MaxSize != 8 || snap.MeanSize != 5 {
		t.Errorf("sizes = max %d, mean %v", snap.MaxSize, snap.MeanSize)
	}
	if snap.WaitMax != 6*time.Millisecond || snap.WaitMean != 3*time.Millisecond {
		t.Errorf("waits = max %v, mean %v", snap.WaitMax, snap.WaitMean)
	}
}

func TestGroupCommitCountersSnapshot(t *testing.T) {
	var g GroupCommitCounters
	if snap := g.Snapshot(); snap.Groups != 0 || snap.MeanGroup != 0 {
		t.Errorf("zero-value snapshot = %+v", snap)
	}
	g.RecordGroup(1)
	g.RecordGroup(7)
	g.RecordGroup(4)
	g.AddSync()
	g.AddSync()

	snap := g.Snapshot()
	if snap.Groups != 3 || snap.Blocks != 12 || snap.Syncs != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.MaxGroup != 7 || snap.MeanGroup != 4 {
		t.Errorf("group sizes = max %d, mean %v", snap.MaxGroup, snap.MeanGroup)
	}
}

func TestBatchCountersConcurrent(t *testing.T) {
	var b BatchCounters
	var g GroupCommitCounters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.RecordFlush(w+1, time.Duration(i)*time.Microsecond, i%2 == 0)
				g.RecordGroup(w + 1)
			}
		}(w)
	}
	wg.Wait()
	bs, gs := b.Snapshot(), g.Snapshot()
	if bs.Flushes != 8000 || bs.MaxSize != 8 {
		t.Errorf("batch snapshot = %+v", bs)
	}
	if gs.Groups != 8000 || gs.MaxGroup != 8 {
		t.Errorf("group snapshot = %+v", gs)
	}
}

func TestNetCountersSnapshot(t *testing.T) {
	var n NetCounters
	for i := 0; i < 5; i++ {
		n.Enqueued()
	}
	n.Dequeued(3)
	n.AddDrop()
	n.Dequeued(1) // the dropped frame leaves the queue too
	n.AddWrite(3)
	n.AddWriteError(2)
	n.AddRedial()

	s := n.Snapshot()
	if s.Enqueued != 5 || s.Drops != 1 || s.WriteErrors != 2 || s.Redials != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.WriteOps != 1 || s.Frames != 3 || s.CoalesceMean != 3 {
		t.Errorf("coalescing: ops=%d frames=%d mean=%v", s.WriteOps, s.Frames, s.CoalesceMean)
	}
	if s.QueueDepth != 1 || s.QueuePeak != 5 {
		t.Errorf("depth = %d, peak = %d, want 1/5", s.QueueDepth, s.QueuePeak)
	}
}

func TestNetCountersZero(t *testing.T) {
	var n NetCounters
	if s := n.Snapshot(); s != (NetSnapshot{}) {
		t.Errorf("zero snapshot = %+v", s)
	}
}

func TestNetCountersConcurrent(t *testing.T) {
	var n NetCounters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n.Enqueued()
				n.Dequeued(1)
				n.AddWrite(2)
			}
		}()
	}
	wg.Wait()
	s := n.Snapshot()
	if s.Enqueued != 8000 || s.QueueDepth != 0 {
		t.Errorf("enqueued = %d, depth = %d", s.Enqueued, s.QueueDepth)
	}
	if s.WriteOps != 8000 || s.Frames != 16000 || s.CoalesceMean != 2 {
		t.Errorf("ops=%d frames=%d mean=%v", s.WriteOps, s.Frames, s.CoalesceMean)
	}
	if s.QueuePeak < 1 || s.QueuePeak > 8 {
		t.Errorf("peak = %d out of [1,8]", s.QueuePeak)
	}
}
