package pbft

import (
	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Wire type tags for PBFT messages (range 0x10–0x2f, see wire.Type).
const (
	typePrePrepare wire.Type = 0x10 + iota
	typePrepare
	typeCommit
	typeCheckpoint
	typeViewChange
	typeNewView
)

func init() {
	wire.Register(typePrePrepare, func() wire.Message { return new(PrePrepare) })
	wire.Register(typePrepare, func() wire.Message { return new(Prepare) })
	wire.Register(typeCommit, func() wire.Message { return new(Commit) })
	wire.Register(typeCheckpoint, func() wire.Message { return new(Checkpoint) })
	wire.Register(typeViewChange, func() wire.Message { return new(ViewChange) })
	wire.Register(typeNewView, func() wire.Message { return new(NewView) })
}

// Request is the unit of agreement: one bus cycle's consolidated signals,
// signed by the node that read them (Algorithm 1: r ← sign(req, id)), or —
// with Batch set — a coalesced batch of such records proposed as one
// ordering instance. PBFT orders requests without interpreting the payload.
type Request struct {
	// Payload is the marshalled signal record, or an EncodeBatch payload
	// when Batch is set.
	Payload []byte
	// Origin identifies the node that received the data from the bus; for
	// a batch, the primary that assembled it. Decided requests are logged
	// together with this id (§III-C).
	Origin crypto.NodeID
	// Sig is Origin's signature over the payload digest, origin id and
	// batch flag.
	Sig []byte
	// Batch marks Payload as an encoded batch (see EncodeBatch). The flag
	// is signed, so a relay cannot reinterpret a record as a batch or vice
	// versa without invalidating Sig.
	Batch bool
}

// PayloadDigest identifies the request content for duplicate filtering. Two
// requests with equal payloads are duplicates even if different nodes signed
// them — exactly the paper's payload-based filtering.
func (r *Request) PayloadDigest() crypto.Digest {
	return crypto.Hash(r.Payload)
}

// signingBytes returns the bytes covered by Sig.
func (r *Request) signingBytes() []byte {
	e := wire.NewEncoder(48)
	d := r.PayloadDigest()
	e.Bytes32(d)
	e.Uint32(uint32(r.Origin))
	e.Bool(r.Batch)
	return e.Data()
}

// SignRequest fills in r.Sig using the origin's key pair.
func SignRequest(r *Request, kp *crypto.KeyPair) {
	r.Origin = kp.ID
	r.Sig = kp.Sign(r.signingBytes())
}

// VerifyRequest checks r.Sig against the origin's registered key.
func VerifyRequest(r *Request, reg *crypto.Registry) error {
	return reg.Verify(r.Origin, r.signingBytes(), r.Sig)
}

// Digest is the full-request identity used by the three-phase protocol.
// It covers payload, origin and signature, so a Byzantine primary cannot
// equivocate between two variants of "the same" request within one slot.
func (r *Request) Digest() crypto.Digest {
	e := wire.NewEncoder(64 + len(r.Payload))
	r.encodeTo(e)
	return crypto.Hash(e.Data())
}

// IsNull reports whether this is a gap-filling null request, which is
// ordered but never delivered to the application.
func (r *Request) IsNull() bool { return len(r.Payload) == 0 }

func (r *Request) encodeTo(e *wire.Encoder) {
	e.Bytes(r.Payload)
	e.Uint32(uint32(r.Origin))
	e.Bool(r.Batch)
	e.Bytes(r.Sig)
}

func decodeRequest(d *wire.Decoder) Request {
	return Request{
		Payload: d.BytesCopy(),
		Origin:  crypto.NodeID(d.Uint32()),
		Batch:   d.Bool(),
		Sig:     d.BytesCopy(),
	}
}

// PrePrepare is the primary's ordering proposal assigning Seq to Req in View.
type PrePrepare struct {
	View    uint64
	Seq     uint64
	Req     Request
	Replica crypto.NodeID
	Sig     []byte
}

// WireType implements wire.Message.
func (m *PrePrepare) WireType() wire.Type { return typePrePrepare }

// EncodeWire implements wire.Message.
func (m *PrePrepare) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.View)
	e.Uint64(m.Seq)
	m.Req.encodeTo(e)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *PrePrepare) DecodeWire(d *wire.Decoder) {
	m.View = d.Uint64()
	m.Seq = d.Uint64()
	m.Req = decodeRequest(d)
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// Prepare confirms a backup received the primary's assignment.
type Prepare struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica crypto.NodeID
	Sig     []byte
}

// WireType implements wire.Message.
func (m *Prepare) WireType() wire.Type { return typePrepare }

// EncodeWire implements wire.Message.
func (m *Prepare) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.View)
	e.Uint64(m.Seq)
	e.Bytes32(m.Digest)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *Prepare) DecodeWire(d *wire.Decoder) {
	m.View = d.Uint64()
	m.Seq = d.Uint64()
	m.Digest = d.Bytes32()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// Commit finalizes the acceptance of the assigned order.
type Commit struct {
	View    uint64
	Seq     uint64
	Digest  crypto.Digest
	Replica crypto.NodeID
	Sig     []byte
}

// WireType implements wire.Message.
func (m *Commit) WireType() wire.Type { return typeCommit }

// EncodeWire implements wire.Message.
func (m *Commit) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.View)
	e.Uint64(m.Seq)
	e.Bytes32(m.Digest)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *Commit) DecodeWire(d *wire.Decoder) {
	m.View = d.Uint64()
	m.Seq = d.Uint64()
	m.Digest = d.Bytes32()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// Checkpoint attests that the sender's application state after executing Seq
// has digest StateDigest. In ZugChain the state digest is the hash of the
// block containing the requests up to Seq, so a stable checkpoint doubles as
// a transferable block proof for the export protocol (§III-C Checkpointing).
type Checkpoint struct {
	Seq         uint64
	StateDigest crypto.Digest
	Replica     crypto.NodeID
	Sig         []byte
}

// WireType implements wire.Message.
func (m *Checkpoint) WireType() wire.Type { return typeCheckpoint }

// EncodeWire implements wire.Message.
func (m *Checkpoint) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.Seq)
	e.Bytes32(m.StateDigest)
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *Checkpoint) DecodeWire(d *wire.Decoder) {
	m.Seq = d.Uint64()
	m.StateDigest = d.Bytes32()
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// CheckpointProof is a stable checkpoint: 2f+1 matching signed Checkpoint
// messages. It proves to any third party — including the data centers — that
// the block with StateDigest is part of the agreed chain.
type CheckpointProof struct {
	Seq         uint64
	StateDigest crypto.Digest
	Checkpoints []Checkpoint
}

// Verify checks the proof against the replica registry: at least quorum
// matching, correctly signed checkpoint messages from distinct replicas.
func (p *CheckpointProof) Verify(reg *crypto.Registry, quorum int) error {
	return verifyCheckpointSet(p.Seq, p.StateDigest, p.Checkpoints, reg, quorum)
}

func (p *CheckpointProof) encodeTo(e *wire.Encoder) {
	e.Uint64(p.Seq)
	e.Bytes32(p.StateDigest)
	e.Uvarint(uint64(len(p.Checkpoints)))
	for i := range p.Checkpoints {
		p.Checkpoints[i].EncodeWire(e)
	}
}

func decodeCheckpointProof(d *wire.Decoder) CheckpointProof {
	p := CheckpointProof{
		Seq:         d.Uint64(),
		StateDigest: d.Bytes32(),
	}
	n := d.Uvarint()
	if n > 1024 {
		// More checkpoint signatures than any sane cluster size: poison
		// the decoder rather than allocating.
		d.Bytes32() // forces ErrShortBuffer on empty remainder
		return p
	}
	for i := uint64(0); i < n; i++ {
		var c Checkpoint
		c.DecodeWire(d)
		p.Checkpoints = append(p.Checkpoints, c)
	}
	return p
}

// PreparedProof certifies that a request was prepared at (View, Seq): the
// accepted PrePrepare plus 2f matching Prepare messages (the P set entries
// of a PBFT view change).
type PreparedProof struct {
	PrePrepare PrePrepare
	Prepares   []Prepare
}

func (p *PreparedProof) encodeTo(e *wire.Encoder) {
	p.PrePrepare.EncodeWire(e)
	e.Uvarint(uint64(len(p.Prepares)))
	for i := range p.Prepares {
		p.Prepares[i].EncodeWire(e)
	}
}

func decodePreparedProof(d *wire.Decoder) PreparedProof {
	var p PreparedProof
	p.PrePrepare.DecodeWire(d)
	n := d.Uvarint()
	if n > 1024 {
		d.Bytes32()
		return p
	}
	for i := uint64(0); i < n; i++ {
		var pr Prepare
		pr.DecodeWire(d)
		p.Prepares = append(p.Prepares, pr)
	}
	return p
}

// ViewChange announces that the sender wants to move to NewView, carrying
// its last stable checkpoint proof and all requests prepared above it.
type ViewChange struct {
	NewView    uint64
	StableSeq  uint64
	StableCkpt CheckpointProof // empty Checkpoints at StableSeq 0 (genesis)
	Prepared   []PreparedProof
	Replica    crypto.NodeID
	Sig        []byte
}

// WireType implements wire.Message.
func (m *ViewChange) WireType() wire.Type { return typeViewChange }

// EncodeWire implements wire.Message.
func (m *ViewChange) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.NewView)
	e.Uint64(m.StableSeq)
	m.StableCkpt.encodeTo(e)
	e.Uvarint(uint64(len(m.Prepared)))
	for i := range m.Prepared {
		m.Prepared[i].encodeTo(e)
	}
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *ViewChange) DecodeWire(d *wire.Decoder) {
	m.NewView = d.Uint64()
	m.StableSeq = d.Uint64()
	m.StableCkpt = decodeCheckpointProof(d)
	n := d.Uvarint()
	if n > 65536 {
		d.Bytes32()
		return
	}
	for i := uint64(0); i < n; i++ {
		m.Prepared = append(m.Prepared, decodePreparedProof(d))
	}
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// NewView is the new primary's installation message: the 2f+1 view changes
// that justify the view and the re-issued pre-prepares for in-flight slots.
type NewView struct {
	View        uint64
	ViewChanges []ViewChange
	PrePrepares []PrePrepare
	Replica     crypto.NodeID
	Sig         []byte
}

// WireType implements wire.Message.
func (m *NewView) WireType() wire.Type { return typeNewView }

// EncodeWire implements wire.Message.
func (m *NewView) EncodeWire(e *wire.Encoder) {
	e.Uint64(m.View)
	e.Uvarint(uint64(len(m.ViewChanges)))
	for i := range m.ViewChanges {
		m.ViewChanges[i].EncodeWire(e)
	}
	e.Uvarint(uint64(len(m.PrePrepares)))
	for i := range m.PrePrepares {
		m.PrePrepares[i].EncodeWire(e)
	}
	e.Uint32(uint32(m.Replica))
	e.Bytes(m.Sig)
}

// DecodeWire implements wire.Message.
func (m *NewView) DecodeWire(d *wire.Decoder) {
	m.View = d.Uint64()
	n := d.Uvarint()
	if n > 1024 {
		d.Bytes32()
		return
	}
	for i := uint64(0); i < n; i++ {
		var vc ViewChange
		vc.DecodeWire(d)
		m.ViewChanges = append(m.ViewChanges, vc)
	}
	n = d.Uvarint()
	if n > 65536 {
		d.Bytes32()
		return
	}
	for i := uint64(0); i < n; i++ {
		var pp PrePrepare
		pp.DecodeWire(d)
		m.PrePrepares = append(m.PrePrepares, pp)
	}
	m.Replica = crypto.NodeID(d.Uint32())
	m.Sig = d.BytesCopy()
}

// NewSignedCheckpoint builds a signed checkpoint message, used by the node
// and test code to assemble checkpoint proofs outside the engine.
func NewSignedCheckpoint(seq uint64, digest crypto.Digest, kp *crypto.KeyPair) Checkpoint {
	c := Checkpoint{Seq: seq, StateDigest: digest, Replica: kp.ID}
	sign(&c, kp)
	return c
}
