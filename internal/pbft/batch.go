package pbft

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// MaxBatchRecords bounds the number of records one batch request may carry.
// It protects decoders against a Byzantine primary inflating a count prefix;
// honest primaries flush far below it (the flush size is a layer config).
const MaxBatchRecords = 4096

// Batch decoding errors.
var (
	ErrBadBatch   = errors.New("pbft: malformed batch payload")
	ErrEmptyBatch = errors.New("pbft: empty batch")
)

// EncodeBatch packs signed records into one batch payload, the Payload of a
// Request with Batch set. Each record keeps its own payload, origin id and
// origin signature, so Algorithm 1's per-record semantics — duplicate-filter
// digests, per-origin attribution, post-operational signature audits —
// survive the coalescing. Inner requests are encoded without a batch flag:
// nested batches are unrepresentable by construction.
func EncodeBatch(items []Request) []byte {
	size := 8
	for i := range items {
		size += len(items[i].Payload) + len(items[i].Sig) + 16
	}
	e := wire.NewEncoder(size)
	e.Uvarint(uint64(len(items)))
	for i := range items {
		e.Bytes(items[i].Payload)
		e.Uint32(uint32(items[i].Origin))
		e.Bytes(items[i].Sig)
	}
	return e.Data()
}

// DecodeBatch unpacks a batch payload into its records. The returned
// requests alias data's payload bytes (the batch outlives its records in
// every caller); their Batch flags are always false. Any structural problem
// — zero records, an inflated count, an empty inner payload, trailing bytes
// — yields an error: a primary proposing such a batch is faulty.
func DecodeBatch(data []byte) ([]Request, error) {
	d := wire.NewDecoder(data)
	n := d.Uvarint()
	if n == 0 {
		return nil, ErrEmptyBatch
	}
	if n > MaxBatchRecords || n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: %d records", ErrBadBatch, n)
	}
	items := make([]Request, 0, n)
	for i := uint64(0); i < n; i++ {
		r := Request{
			Payload: d.Bytes(),
			Origin:  crypto.NodeID(d.Uint32()),
			Sig:     d.Bytes(),
		}
		if len(r.Payload) == 0 {
			return nil, fmt.Errorf("%w: empty record %d", ErrBadBatch, i)
		}
		items = append(items, r)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadBatch)
	}
	return items, nil
}

// minDeepVerifyChunk is the smallest slice of a batch worth handing to
// another verify-pool worker: below this, the chunk hand-off and the lost
// batch-equation amortization cost more than the parallelism returns.
const minDeepVerifyChunk = 16

// VerifyRequestDeep checks r's own signature and, for batch requests, that
// the batch decodes and every inner record carries a valid origin signature.
// This is the admission bar for a proposed request: a batch hiding one forged
// record is rejected whole, so a Byzantine primary cannot launder fabricated
// records through honest records in the same batch.
//
// Inner signatures are settled through the registry's Ed25519 batch verifier
// — one multi-scalar pass per chunk instead of a scalar multiplication per
// record — and large batches are split into chunks spread across pool's
// workers (pool may be nil: everything runs on the caller). On failure the
// error names every corrupt record index, so the operator sees exactly which
// origin signatures were forged while the batch as a whole is refused.
func VerifyRequestDeep(r *Request, reg *crypto.Registry, pool *crypto.VerifyPool) error {
	if err := VerifyRequest(r, reg); err != nil {
		return err
	}
	if !r.Batch {
		return nil
	}
	items, err := DecodeBatch(r.Payload)
	if err != nil {
		return err
	}

	// Chunk so every pool worker gets work, but never below the floor where
	// splitting stops paying.
	workers := 1
	if pool != nil {
		workers = pool.Workers()
	}
	chunk := (len(items) + workers - 1) / workers
	if chunk < minDeepVerifyChunk {
		chunk = minDeepVerifyChunk
	}

	var mu sync.Mutex
	var failed []int
	pool.RunChunks(len(items), chunk, func(lo, hi int) {
		bv := reg.NewBatchVerifier(hi - lo)
		for i := lo; i < hi; i++ {
			bv.Add(items[i].Origin, items[i].signingBytes(), items[i].Sig)
		}
		if bad := bv.Verify(); len(bad) != 0 {
			mu.Lock()
			for _, j := range bad {
				failed = append(failed, lo+j)
			}
			mu.Unlock()
		}
	})
	if len(failed) != 0 {
		sort.Ints(failed)
		if len(failed) == 1 {
			return fmt.Errorf("batch record %d: %w", failed[0], crypto.ErrInvalidSignature)
		}
		return fmt.Errorf("batch records %v: %w", failed, crypto.ErrInvalidSignature)
	}
	return nil
}

// PayloadDigests returns the duplicate-filter digests this request carries:
// the single payload digest for a plain request, or one digest per inner
// record for a batch. A malformed batch yields nil (callers verify batches
// before trusting them; this accessor never re-validates).
func (r *Request) PayloadDigests() []crypto.Digest {
	if !r.Batch {
		return []crypto.Digest{r.PayloadDigest()}
	}
	items, err := DecodeBatch(r.Payload)
	if err != nil {
		return nil
	}
	out := make([]crypto.Digest, len(items))
	for i := range items {
		out[i] = items[i].PayloadDigest()
	}
	return out
}
