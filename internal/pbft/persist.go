package pbft

import (
	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Castro–Liskov PBFT assumes replicas log protocol messages to stable
// storage before sending them: a replica that crashes and restarts without
// that log comes back at view 0 having forgotten which digests it voted
// for, and can equivocate — sending a conflicting Prepare for a slot it
// already prepared — which silently burns the f-of-3f+1 fault budget. The
// types here are the engine's durability contract: the Runner condenses
// each action batch into PersistRecords and hands them to a Persister
// before any message leaves the process, and a restarted node feeds the
// replayed records back through Engine.Restore.

// PersistKind identifies what a PersistRecord captures.
type PersistKind uint8

const (
	// PersistView records the replica's view state after it changed: View
	// is the active view, Seq the highest view a ViewChange was sent for,
	// and InViewChange whether a change was still in progress.
	PersistView PersistKind = iota + 1
	// PersistPrePrepare, PersistPrepare and PersistCommit pin the request
	// digest this replica vouched for at (View, Seq), written before the
	// corresponding message is sent.
	PersistPrePrepare
	PersistPrepare
	PersistCommit
)

// PersistRecord is one durable protocol event.
type PersistRecord struct {
	Kind         PersistKind
	View         uint64
	Seq          uint64
	Digest       crypto.Digest
	InViewChange bool
}

// Persister writes protocol records to stable storage. Persist must not
// return until the records are durable; an error means durability could not
// be guaranteed and the runner stops sending protocol messages (the replica
// degrades to a silent learner rather than risk equivocating after a
// restart). It is called only from the runner's event loop.
type Persister interface {
	Persist(recs []PersistRecord) error
}

// RestoredState is what a restarted node reconstructs from its WAL and
// blockchain before the engine starts.
type RestoredState struct {
	// View and SentVCFor restore the view state from the last PersistView
	// record.
	View      uint64
	SentVCFor uint64
	// Stable is the newest durable checkpoint proof (zero Seq = genesis).
	Stable CheckpointProof
	// Executed is the last sequence number whose effects are already
	// durable in the blockchain — re-executing past it would double-LOG.
	Executed uint64
	// Pinned are the replayed PrePrepare/Prepare/Commit records; those
	// matching the restored view pin their slots against equivocation.
	Pinned []PersistRecord
}

// Restore applies st to a freshly constructed engine, before Start. The
// replica resumes in its pre-crash view with its pre-crash watermarks, and
// every slot it had voted on is pinned to the digest it vouched for:
// acceptPrePrepare refuses a conflicting proposal for a pinned slot, so the
// restarted replica may re-send identical votes (harmless retransmits) but
// can never contradict its pre-crash word.
func (e *Engine) Restore(st RestoredState) {
	if st.View > e.view {
		e.view = st.View
	}
	if st.SentVCFor > e.sentVCFor {
		e.sentVCFor = st.SentVCFor
	}
	if st.Stable.Seq > e.lowWater {
		e.stable = st.Stable
		e.lowWater = st.Stable.Seq
	}
	if st.Executed > e.executed {
		e.executed = st.Executed
	}
	if e.executed < e.lowWater {
		e.executed = e.lowWater
	}
	if e.nextSeq <= e.executed {
		e.nextSeq = e.executed + 1
	}
	e.pinnedView = e.view
	e.pinned = make(map[uint64]crypto.Digest)
	for _, p := range st.Pinned {
		if p.View != e.view || p.Seq <= e.lowWater {
			continue
		}
		switch p.Kind {
		case PersistPrePrepare, PersistPrepare, PersistCommit:
			e.pinned[p.Seq] = p.Digest
		default:
			continue
		}
		// A primary must not reassign a sequence number it already
		// proposed before the crash.
		if p.Kind == PersistPrePrepare && p.Seq >= e.nextSeq {
			e.nextSeq = p.Seq + 1
		}
	}
}

// ViewState returns the view fields a PersistView record captures. Safe
// only from the runner's event loop (Application callbacks or Inspect).
func (e *Engine) ViewState() (view, sentVCFor uint64, inViewChange bool) {
	return e.view, e.sentVCFor, e.inViewChange
}

// EncodeCheckpointProof serializes a checkpoint proof for stable storage.
func EncodeCheckpointProof(p CheckpointProof) []byte {
	enc := wire.NewEncoder(64 + 128*len(p.Checkpoints))
	p.encodeTo(enc)
	out := make([]byte, enc.Len())
	copy(out, enc.Data())
	return out
}

// DecodeCheckpointProof is the inverse of EncodeCheckpointProof. The caller
// still Verify()s the proof — disk contents are not implicitly trusted.
func DecodeCheckpointProof(data []byte) (CheckpointProof, error) {
	d := wire.NewDecoder(data)
	p := decodeCheckpointProof(d)
	if err := d.Err(); err != nil {
		return CheckpointProof{}, err
	}
	return p, nil
}
