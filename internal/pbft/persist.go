package pbft

import (
	"sort"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Castro–Liskov PBFT assumes replicas log protocol messages to stable
// storage before sending them: a replica that crashes and restarts without
// that log comes back at view 0 having forgotten which digests it voted
// for, and can equivocate — sending a conflicting Prepare for a slot it
// already prepared — which silently burns the f-of-3f+1 fault budget. The
// types here are the engine's durability contract: the Runner condenses
// each action batch into PersistRecords and hands them to a Persister
// before any message leaves the process, and a restarted node feeds the
// replayed records back through Engine.Restore.

// PersistKind identifies what a PersistRecord captures.
type PersistKind uint8

const (
	// PersistView records the replica's view state after it changed: View
	// is the active view, Seq the highest view a ViewChange was sent for,
	// and InViewChange whether a change was still in progress.
	PersistView PersistKind = iota + 1
	// PersistPrePrepare, PersistPrepare and PersistCommit pin the request
	// digest this replica vouched for at (View, Seq), written before the
	// corresponding message is sent.
	PersistPrePrepare
	PersistPrepare
	PersistCommit
	// PersistPreparedCert carries, in Data, the encoded prepared
	// certificate (the accepted PrePrepare plus 2f matching Prepares) for
	// (View, Seq) — written when the slot reaches prepared, before the
	// Commit is sent. It is the durable form of the view-change P set:
	// without it a restarted replica's ViewChange would omit every slot it
	// prepared pre-crash, and overlapping crash-restarts during a view
	// change could form a NewView that nulls an executed slot.
	PersistPreparedCert
)

// PersistRecord is one durable protocol event.
type PersistRecord struct {
	Kind         PersistKind
	View         uint64
	Seq          uint64
	Digest       crypto.Digest
	InViewChange bool
	Data         []byte
}

// pin remembers one pre-crash vote: the digest this replica vouched for at
// a slot and the strongest vote kind it cast (a PersistPrePrepare pin also
// fences nextSeq on a restarted primary).
type pin struct {
	digest crypto.Digest
	kind   PersistKind
}

// Persister writes protocol records to stable storage. Persist must not
// return until the records are durable; an error means durability could not
// be guaranteed and the runner stops sending protocol messages (the replica
// degrades to a silent learner rather than risk equivocating after a
// restart). It is called only from the runner's event loop.
type Persister interface {
	Persist(recs []PersistRecord) error
}

// RestoredState is what a restarted node reconstructs from its WAL and
// blockchain before the engine starts.
type RestoredState struct {
	// View and SentVCFor restore the view state from the last PersistView
	// record.
	View      uint64
	SentVCFor uint64
	// Stable is the newest durable checkpoint proof (zero Seq = genesis).
	Stable CheckpointProof
	// Executed is the last sequence number whose effects are already
	// durable in the blockchain — re-executing past it would double-LOG.
	Executed uint64
	// Pinned are the replayed PrePrepare/Prepare/Commit records; those
	// matching the restored view pin their slots against equivocation.
	Pinned []PersistRecord
	// Certs are the replayed prepared certificates. Restore validates each
	// one (disk contents are not implicitly trusted) and rebuilds the
	// view-change P set from the survivors.
	Certs []PreparedProof
}

// Restore applies st to a freshly constructed engine, before Start. The
// replica resumes in its pre-crash view with its pre-crash watermarks, and
// every slot it had voted on is pinned to the digest it vouched for:
// acceptPrePrepare refuses a conflicting proposal for a pinned slot, so the
// restarted replica may re-send identical votes (harmless retransmits) but
// can never contradict its pre-crash word.
func (e *Engine) Restore(st RestoredState) {
	if st.View > e.view {
		e.view = st.View
	}
	if st.SentVCFor > e.sentVCFor {
		e.sentVCFor = st.SentVCFor
	}
	if st.Stable.Seq > e.lowWater {
		e.stable = st.Stable
		e.lowWater = st.Stable.Seq
	}
	if st.Executed > e.executed {
		e.executed = st.Executed
	}
	if e.executed < e.lowWater {
		e.executed = e.lowWater
	}
	if e.nextSeq <= e.executed {
		e.nextSeq = e.executed + 1
	}
	e.pinnedView = e.view
	e.pinned = make(map[uint64]pin)
	for _, p := range st.Pinned {
		if p.View != e.view || p.Seq <= e.lowWater {
			continue
		}
		switch p.Kind {
		case PersistPrePrepare, PersistPrepare, PersistCommit:
		default:
			continue
		}
		cur := e.pinned[p.Seq]
		cur.digest = p.Digest
		if cur.kind != PersistPrePrepare {
			cur.kind = p.Kind
		}
		e.pinned[p.Seq] = cur
		// A primary must not reassign a sequence number it already
		// proposed before the crash.
		if p.Kind == PersistPrePrepare && p.Seq >= e.nextSeq {
			e.nextSeq = p.Seq + 1
		}
	}

	// Rebuild the prepared-certificate P set. Certificates from any view up
	// to the restored one are admissible; per slot the highest view wins,
	// matching recordPreparedCert.
	for i := range st.Certs {
		p := &st.Certs[i]
		seq := p.PrePrepare.Seq
		if seq <= e.lowWater {
			continue
		}
		if err := e.validatePreparedProof(p, e.view+1); err != nil {
			continue
		}
		if cur, ok := e.certs[seq]; ok && cur.PrePrepare.View >= p.PrePrepare.View {
			continue
		}
		cp := *p
		e.certs[seq] = &cp
	}
}

// VoteRecords enumerates every digest this replica currently vouches for at
// sequence numbers above the stable checkpoint: its own votes in the live
// instance log plus any still-standing pre-crash pins. The WAL rotation
// snapshot must include them — votes for slots in (S, S+window] are
// routinely cast before the checkpoint at S stabilizes, and dropping them
// from the snapshot would let a crash right after rotation un-pin those
// slots, re-opening the equivocation the WAL exists to prevent. Safe only
// from the runner's event loop.
func (e *Engine) VoteRecords() []PersistRecord {
	var recs []PersistRecord
	covered := make(map[uint64]bool, len(e.log))
	for seq, inst := range e.log {
		if seq <= e.lowWater || inst.preprepare == nil {
			continue
		}
		if inst.preprepare.Replica == e.cfg.ID {
			recs = append(recs, PersistRecord{Kind: PersistPrePrepare, View: inst.view, Seq: seq, Digest: inst.digest})
			covered[seq] = true
		}
		if _, ok := inst.prepares[e.cfg.ID]; ok {
			recs = append(recs, PersistRecord{Kind: PersistPrepare, View: inst.view, Seq: seq, Digest: inst.digest})
			covered[seq] = true
		}
		if _, ok := inst.commits[e.cfg.ID]; ok {
			recs = append(recs, PersistRecord{Kind: PersistCommit, View: inst.view, Seq: seq, Digest: inst.digest})
			covered[seq] = true
		}
	}
	if e.pinnedView == e.view {
		// Pins carried over from the last restart that no live instance
		// restates yet: still binding, so they roll into the new segment.
		for seq, p := range e.pinned {
			if seq <= e.lowWater || covered[seq] {
				continue
			}
			recs = append(recs, PersistRecord{Kind: p.kind, View: e.pinnedView, Seq: seq, Digest: p.digest})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Seq != recs[j].Seq {
			return recs[i].Seq < recs[j].Seq
		}
		return recs[i].Kind < recs[j].Kind
	})
	return recs
}

// PreparedProofs returns the engine's current P set: for every in-flight
// sequence number above the stable checkpoint, the prepared certificate
// from the highest view that prepared it. The WAL rotation snapshot carries
// these so the P set survives a crash after rotation. Safe only from the
// runner's event loop.
func (e *Engine) PreparedProofs() []PreparedProof { return e.preparedProofs() }

// PreparedCert returns the recorded prepared certificate for seq, or nil.
// Safe only from the runner's event loop.
func (e *Engine) PreparedCert(seq uint64) *PreparedProof { return e.certs[seq] }

// ViewState returns the view fields a PersistView record captures. Safe
// only from the runner's event loop (Application callbacks or Inspect).
func (e *Engine) ViewState() (view, sentVCFor uint64, inViewChange bool) {
	return e.view, e.sentVCFor, e.inViewChange
}

// EncodeCheckpointProof serializes a checkpoint proof for stable storage.
func EncodeCheckpointProof(p CheckpointProof) []byte {
	enc := wire.NewEncoder(64 + 128*len(p.Checkpoints))
	p.encodeTo(enc)
	out := make([]byte, enc.Len())
	copy(out, enc.Data())
	return out
}

// DecodeCheckpointProof is the inverse of EncodeCheckpointProof. The caller
// still Verify()s the proof — disk contents are not implicitly trusted.
func DecodeCheckpointProof(data []byte) (CheckpointProof, error) {
	d := wire.NewDecoder(data)
	p := decodeCheckpointProof(d)
	if err := d.Err(); err != nil {
		return CheckpointProof{}, err
	}
	return p, nil
}

// EncodePreparedProof serializes a prepared certificate for stable storage.
func EncodePreparedProof(p *PreparedProof) []byte {
	enc := wire.NewEncoder(256 + 192*len(p.Prepares))
	p.encodeTo(enc)
	out := make([]byte, enc.Len())
	copy(out, enc.Data())
	return out
}

// DecodePreparedProof is the inverse of EncodePreparedProof. The caller
// still validates the certificate — disk contents are not implicitly
// trusted (Engine.Restore does this via validatePreparedProof).
func DecodePreparedProof(data []byte) (PreparedProof, error) {
	d := wire.NewDecoder(data)
	p := decodePreparedProof(d)
	if err := d.Err(); err != nil {
		return PreparedProof{}, err
	}
	return p, nil
}
