package pbft

import (
	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// Action is an effect the engine asks its runtime to perform. The engine is
// a pure state machine (no I/O, no goroutines, no timers); every Step-like
// call returns the actions it produced, which the Runner executes. This is
// what makes the protocol — including view changes — testable
// deterministically.
type Action interface {
	isAction()
}

// SendAction transmits a signed message to one replica. Encoded, when
// non-nil, is the message's ready-made wire encoding (see BroadcastAction).
type SendAction struct {
	To      crypto.NodeID
	Msg     wire.Message
	Encoded []byte
}

// BroadcastAction transmits a signed message to all other replicas.
// Encoded, when non-nil, carries the cached wire encoding produced while
// signing (signedBroadcast): the signing bytes are the full encoding minus
// the signature tail, so the engine gets the broadcast bytes for free and
// the runner skips re-marshalling. Msg must not be mutated after the action
// is emitted or the cache would go stale.
type BroadcastAction struct {
	Msg     wire.Message
	Encoded []byte
}

// DeliverAction is the DECIDE up-call of Table I: the request was totally
// ordered at Seq and must be appended to the log together with the origin id.
// Null (gap-filling) requests are not delivered.
type DeliverAction struct {
	Seq uint64
	Req Request
}

// CheckpointNeededAction asks the application for its state digest after
// executing Seq (in ZugChain: build the block ending at Seq and hash it).
// The application answers by calling Engine.Checkpoint(seq, digest).
type CheckpointNeededAction struct {
	Seq uint64
}

// StableCheckpointAction announces a new stable checkpoint backed by 2f+1
// signatures. The node hands the proof to the export subsystem.
type StableCheckpointAction struct {
	Proof CheckpointProof
}

// NewPrimaryAction is the NEWPRIMARY up-call of Table I, emitted when a view
// becomes active (including view 0 at startup via Engine.Start).
type NewPrimaryAction struct {
	View    uint64
	Primary crypto.NodeID
}

// StartViewTimerAction arms the view-change progress timer: if the view
// change for View does not complete before the timer fires (the runner calls
// Engine.OnViewTimer), the engine escalates to the next view. Attempt counts
// consecutive escalations so the runner can back off exponentially.
type StartViewTimerAction struct {
	View    uint64
	Attempt int
}

// StopViewTimerAction cancels the view-change progress timer.
type StopViewTimerAction struct{}

// PrePreparedAction reports that the current primary proposed a request
// (it passed validation and was accepted into the ordering pipeline). The
// ZugChain layer uses it as the paper's optimization: "nodes can already
// use a primary's preprepare as an indicator that this request will be
// ordered and cancel the corresponding soft timeout" (§III-C).
type PrePreparedAction struct {
	Seq           uint64
	PayloadDigest crypto.Digest
}

// StateTransferNeededAction reports that the cluster's stable checkpoint
// TargetSeq is ahead of this replica's executed state: the replica must
// fetch the missing blocks out of band (export error scenario (ii)).
type StateTransferNeededAction struct {
	TargetSeq uint64
	Digest    crypto.Digest
}

func (SendAction) isAction()                {}
func (PrePreparedAction) isAction()         {}
func (BroadcastAction) isAction()           {}
func (DeliverAction) isAction()             {}
func (CheckpointNeededAction) isAction()    {}
func (StableCheckpointAction) isAction()    {}
func (NewPrimaryAction) isAction()          {}
func (StartViewTimerAction) isAction()      {}
func (StopViewTimerAction) isAction()       {}
func (StateTransferNeededAction) isAction() {}
