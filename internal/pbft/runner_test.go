package pbft

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/transport"
)

// testApp records application callbacks and answers checkpoint digests
// deterministically.
type testApp struct {
	mu        sync.Mutex
	delivered []DeliverAction
	stable    []CheckpointProof
	primaries []NewPrimaryAction
	transfers []StateTransferNeededAction
	deliverCh chan DeliverAction
}

func newTestApp() *testApp {
	return &testApp{deliverCh: make(chan DeliverAction, 1024)}
}

func (a *testApp) Deliver(seq uint64, req Request) {
	act := DeliverAction{Seq: seq, Req: req}
	a.mu.Lock()
	a.delivered = append(a.delivered, act)
	a.mu.Unlock()
	a.deliverCh <- act
}

func (a *testApp) CheckpointDigest(seq uint64) crypto.Digest { return defaultDigest(seq) }

func (a *testApp) StableCheckpoint(proof CheckpointProof) {
	a.mu.Lock()
	a.stable = append(a.stable, proof)
	a.mu.Unlock()
}

func (a *testApp) NewPrimary(view uint64, primary crypto.NodeID) {
	a.mu.Lock()
	a.primaries = append(a.primaries, NewPrimaryAction{View: view, Primary: primary})
	a.mu.Unlock()
}

func (a *testApp) StateTransferNeeded(seq uint64, digest crypto.Digest) {
	a.mu.Lock()
	a.transfers = append(a.transfers, StateTransferNeededAction{TargetSeq: seq, Digest: digest})
	a.mu.Unlock()
}

func (a *testApp) waitDeliveries(t *testing.T, n int) []DeliverAction {
	t.Helper()
	out := make([]DeliverAction, 0, n)
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d := <-a.deliverCh:
			out = append(out, d)
		case <-deadline:
			t.Fatalf("timed out after %d of %d deliveries", len(out), n)
		}
	}
	return out
}

type runnerCluster struct {
	net        *transport.Network
	runners    map[crypto.NodeID]*Runner
	apps       map[crypto.NodeID]*testApp
	kps        map[crypto.NodeID]*crypto.KeyPair
	ids        []crypto.NodeID
	persisters map[crypto.NodeID]*capturePersister
}

func newRunnerCluster(t *testing.T, n int, viewTimeout time.Duration) *runnerCluster {
	t.Helper()
	return newRunnerClusterClock(t, n, viewTimeout, clock.Real{})
}

func newRunnerClusterClock(t *testing.T, n int, viewTimeout time.Duration, clk clock.Clock) *runnerCluster {
	t.Helper()
	rc := &runnerCluster{
		net:        transport.NewNetwork(),
		runners:    make(map[crypto.NodeID]*Runner),
		apps:       make(map[crypto.NodeID]*testApp),
		kps:        make(map[crypto.NodeID]*crypto.KeyPair),
		persisters: make(map[crypto.NodeID]*capturePersister),
	}
	var pairs []*crypto.KeyPair
	for i := 0; i < n; i++ {
		id := crypto.NodeID(i)
		rc.ids = append(rc.ids, id)
		kp := crypto.MustGenerateKeyPair(id)
		rc.kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)
	for _, id := range rc.ids {
		engine, err := NewEngine(Config{ID: id, Replicas: rc.ids}, rc.kps[id], reg)
		if err != nil {
			t.Fatal(err)
		}
		app := newTestApp()
		persister := &capturePersister{}
		runner := NewRunner(engine, rc.net.Endpoint(id), clk, app,
			RunnerConfig{BaseViewTimeout: viewTimeout, Persister: persister})
		rc.apps[id] = app
		rc.persisters[id] = persister
		rc.runners[id] = runner
	}
	for _, id := range rc.ids {
		rc.runners[id].Start()
	}
	t.Cleanup(func() {
		for _, r := range rc.runners {
			r.Stop()
		}
		rc.net.Close()
	})
	return rc
}

func (rc *runnerCluster) propose(onNode crypto.NodeID, payload string) {
	req := Request{Payload: []byte(payload)}
	SignRequest(&req, rc.kps[onNode])
	rc.runners[onNode].Propose(req)
}

func TestRunnerEndToEndOrdering(t *testing.T) {
	rc := newRunnerCluster(t, 4, time.Second)
	const n = 25
	for i := 0; i < n; i++ {
		rc.propose(0, fmt.Sprintf("req-%02d", i))
	}
	for _, id := range rc.ids {
		got := rc.apps[id].waitDeliveries(t, n)
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("req-%02d", i); string(got[i].Req.Payload) != want {
				t.Errorf("replica %v delivery %d = %q, want %q", id, i, got[i].Req.Payload, want)
			}
			if got[i].Seq != uint64(i+1) {
				t.Errorf("replica %v delivery %d seq = %d", id, i, got[i].Seq)
			}
		}
	}
	// 25 requests = 2 stable checkpoints everywhere.
	deadline := time.After(5 * time.Second)
	for _, id := range rc.ids {
		for {
			rc.apps[id].mu.Lock()
			n := len(rc.apps[id].stable)
			rc.apps[id].mu.Unlock()
			if n >= 2 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("replica %v reached %d stable checkpoints", id, n)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
}

func TestRunnerViewChangeOnDeadPrimary(t *testing.T) {
	rc := newRunnerCluster(t, 4, 300*time.Millisecond)

	// Kill the primary's network and have the backups suspect it, as the
	// ZugChain layer's hard timeout would.
	rc.net.Isolate(0)
	for _, id := range rc.ids[1:] {
		rc.runners[id].Suspect(0)
	}

	// All surviving replicas must reach view 1 with primary r1.
	deadline := time.After(10 * time.Second)
	for _, id := range rc.ids[1:] {
		for {
			var view uint64
			var primary crypto.NodeID
			rc.runners[id].Inspect(func(e *Engine) {
				view = e.View()
				primary = e.Primary()
			})
			if view >= 1 && primary == 1 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("replica %v stuck in view %d", id, view)
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	// Ordering resumes under the new primary with 3 replicas.
	rc.propose(1, "after-failover")
	for _, id := range rc.ids[1:] {
		got := rc.apps[id].waitDeliveries(t, 1)
		if string(got[0].Req.Payload) != "after-failover" {
			t.Errorf("replica %v delivered %q", id, got[0].Req.Payload)
		}
	}
}

func TestRunnerViewTimerEscalatesPastDeadNewPrimary(t *testing.T) {
	rc := newRunnerCluster(t, 4, 150*time.Millisecond)

	// Both r0 (current primary) and r1 (next in line) are dead.
	rc.net.Isolate(0)
	rc.net.Isolate(1)
	for _, id := range rc.ids[2:] {
		rc.runners[id].Suspect(0)
	}

	// r2 and r3 alone are only 2 of 4 replicas — below the 2f+1 quorum —
	// so no view change can complete; they must keep escalating without
	// violating safety. Heal r1 and the cluster must converge on a view
	// led by a live primary.
	time.Sleep(400 * time.Millisecond) // let at least one escalation happen
	rc.net.Rejoin(1)

	deadline := time.After(15 * time.Second)
	for _, id := range rc.ids[1:] {
		for {
			var view uint64
			var primary crypto.NodeID
			var changing bool
			rc.runners[id].Inspect(func(e *Engine) {
				view = e.View()
				primary = e.Primary()
				changing = e.InViewChange()
			})
			if !changing && view >= 1 && primary != 0 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("replica %v stuck (view %d, changing %v)", id, view, changing)
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
}

func TestRunnerInspectAndStop(t *testing.T) {
	rc := newRunnerCluster(t, 4, time.Second)
	var isPrimary bool
	rc.runners[0].Inspect(func(e *Engine) { isPrimary = e.IsPrimary() })
	if !isPrimary {
		t.Error("r0 should be primary of view 0")
	}
	rc.runners[3].Stop()
	// Stop is idempotent and post-stop calls are safe no-ops.
	rc.runners[3].Stop()
	rc.runners[3].Propose(Request{Payload: []byte("late")})
}

// observerApp extends testApp with the PrePrepareObserver hook.
type observerApp struct {
	*testApp
	mu    sync.Mutex
	hints []crypto.Digest
}

func (o *observerApp) OnPrePrepared(seq uint64, payloadDigest crypto.Digest) {
	o.mu.Lock()
	o.hints = append(o.hints, payloadDigest)
	o.mu.Unlock()
}

func (o *observerApp) hintCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.hints)
}

func TestRunnerPrePrepareObserver(t *testing.T) {
	rc := newRunnerCluster(t, 4, time.Second)

	// Replace replica 1's app with an observing one. The runner holds the
	// app by value, so rebuild that node's runner with the observer.
	rc.runners[1].Stop()
	engine, err := NewEngine(Config{ID: 1, Replicas: rc.ids}, rc.kps[1],
		registryOf(rc))
	if err != nil {
		t.Fatal(err)
	}
	obs := &observerApp{testApp: newTestApp()}
	runner := NewRunner(engine, rc.net.Endpoint(1), clock.Real{}, obs,
		RunnerConfig{BaseViewTimeout: time.Second})
	rc.runners[1] = runner
	rc.apps[1] = obs.testApp
	runner.Start()

	rc.propose(0, "hinted")
	obs.waitDeliveries(t, 1)
	if obs.hintCount() == 0 {
		t.Error("observer never received the preprepare hint")
	}
	mine := obs.hints[0]
	want := (&Request{Payload: []byte("hinted")}).PayloadDigest()
	if mine != want {
		t.Errorf("hint digest = %s, want %s", mine.Short(), want.Short())
	}
}

// registryOf rebuilds the registry used by a runner cluster.
func registryOf(rc *runnerCluster) *crypto.Registry {
	pairs := make([]*crypto.KeyPair, 0, len(rc.kps))
	for _, kp := range rc.kps {
		pairs = append(pairs, kp)
	}
	return crypto.NewRegistry(pairs...)
}

// TestRunnerViewTimerDoublesPerAttempt pins the view-change backoff schedule
// to a fake clock: each failed attempt doubles the progress timeout
// (BaseViewTimeout << attempt), so an isolated replica escalates at t, 3t,
// 7t, ... and never earlier.
func TestRunnerViewTimerDoublesPerAttempt(t *testing.T) {
	const base = 100 * time.Millisecond
	clk := clock.NewFake()
	rc := newRunnerClusterClock(t, 4, base, clk)

	// r3 is cut off: its view changes can never complete, so every armed
	// timer runs to expiry.
	rc.net.Isolate(3)
	rc.runners[3].Suspect(0)

	sentVCFor := func() uint64 {
		var v uint64
		rc.runners[3].Inspect(func(e *Engine) { v = e.sentVCFor })
		return v
	}
	waitFor := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for sentVCFor() != want {
			if time.Now().After(deadline) {
				t.Fatalf("sentVCFor = %d, want %d", sentVCFor(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	stableAt := func(want uint64) {
		t.Helper()
		time.Sleep(50 * time.Millisecond) // let any stray timer fire drain
		if got := sentVCFor(); got != want {
			t.Fatalf("sentVCFor = %d after partial advance, want %d", got, want)
		}
	}

	waitFor(1) // Suspect sends the first view change, attempt 0

	clk.Advance(base) // attempt 0 expires after base
	waitFor(2)

	clk.Advance(base) // attempt 1 needs 2*base: half is not enough
	stableAt(2)
	clk.Advance(base)
	waitFor(3)

	clk.Advance(2 * base) // attempt 2 needs 4*base: half is not enough
	stableAt(3)
	clk.Advance(2 * base)
	waitFor(4)
}

// TestRunnerViewTimerCancelledByLivePrimary: once the view change completes
// and a live primary takes over, the progress timer must be stopped — no
// amount of elapsed time may push the cluster into another view.
func TestRunnerViewTimerCancelledByLivePrimary(t *testing.T) {
	const base = 100 * time.Millisecond
	clk := clock.NewFake()
	rc := newRunnerClusterClock(t, 4, base, clk)

	for _, id := range rc.ids[1:] {
		rc.runners[id].Suspect(0)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range rc.ids[1:] {
		for {
			var view uint64
			var changing bool
			rc.runners[id].Inspect(func(e *Engine) {
				view = e.View()
				changing = e.InViewChange()
			})
			if view == 1 && !changing {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %v stuck before view 1", id)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The new primary is live (the view installed); a still-armed timer
	// would now fire and wrongly escalate to view 2.
	clk.Advance(1024 * base)
	time.Sleep(100 * time.Millisecond)
	for _, id := range rc.ids[1:] {
		var view, vcFor uint64
		rc.runners[id].Inspect(func(e *Engine) {
			view = e.View()
			vcFor = e.sentVCFor
		})
		if view != 1 || vcFor > 1 {
			t.Errorf("replica %v escalated past the live primary: view=%d sentVCFor=%d", id, view, vcFor)
		}
	}
}
