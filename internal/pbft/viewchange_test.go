package pbft

import (
	"fmt"
	"testing"

	"zugchain/internal/crypto"
)

// TestNewViewFillsGapsWithNullRequests: requests at seqs 1 and 3 reach
// prepared, seq 2 does not (its preprepare is censored towards everyone but
// one replica never prepares it fully). After the view change, seq 3's
// request must survive and seq 2 is filled with a null request that is
// never delivered.
func TestNewViewFillsGapsWithNullRequests(t *testing.T) {
	c := newCluster(t, 4, nil)

	// Block commits entirely so nothing executes, and drop the preprepare
	// and prepares for seq 2 so only seqs 1 and 3 reach prepared.
	c.filter = func(p packet) bool {
		msg, err := unmarshalPacket(p)
		if err != nil {
			return true
		}
		switch m := msg.(type) {
		case *Commit:
			return false
		case *PrePrepare:
			return m.Seq != 2
		case *Prepare:
			return m.Seq != 2
		}
		return true
	}
	c.propose(0, "one")
	c.propose(0, "two") // never prepared anywhere
	c.propose(0, "three")
	c.run()
	for _, id := range c.ids {
		if len(c.delivered[id]) != 0 {
			t.Fatalf("replica %v delivered before view change", id)
		}
	}

	c.filter = nil
	c.suspect(1, 2, 3)
	c.run()

	c.assertAgreement()
	for _, id := range c.ids {
		got := c.delivered[id]
		if len(got) != 2 {
			t.Fatalf("replica %v delivered %d requests, want 2 (null at seq 2 skipped)", id, len(got))
		}
		if string(got[0].Req.Payload) != "one" || got[0].Seq != 1 {
			t.Errorf("replica %v first = %q@%d", id, got[0].Req.Payload, got[0].Seq)
		}
		if string(got[1].Req.Payload) != "three" || got[1].Seq != 3 {
			t.Errorf("replica %v second = %q@%d", id, got[1].Req.Payload, got[1].Seq)
		}
	}
}

// TestViewChangeAdoptsNewerStableCheckpoint: a replica that missed a whole
// checkpoint learns it from the view-change quorum and state-transfers.
func TestViewChangeAdoptsNewerStableCheckpoint(t *testing.T) {
	c := newCluster(t, 4, nil)
	// r3 misses everything while 10 requests are ordered and checkpointed
	// by the other three.
	c.filter = func(p packet) bool { return p.to != 3 }
	for i := 0; i < 10; i++ {
		c.propose(0, fmt.Sprintf("r%d", i))
	}
	c.run()
	if c.engines[3].lowWater != 0 {
		t.Fatalf("r3 low water = %d before view change", c.engines[3].lowWater)
	}

	// Heal and change the view: the quorum's view changes carry the
	// stable checkpoint at seq 10, which r3 must adopt.
	c.filter = nil
	c.suspect(1, 2, 3)
	c.run()

	e3 := c.engines[3]
	if e3.View() != 1 {
		t.Fatalf("r3 view = %d", e3.View())
	}
	if e3.lowWater != 10 {
		t.Errorf("r3 low water = %d, want 10 (adopted from view change)", e3.lowWater)
	}
	if len(c.transfers[3]) == 0 {
		t.Error("r3 did not request a state transfer for the missed blocks")
	}
	// Ordering continues for everyone in the new view.
	c.propose(1, "fresh")
	c.run()
	last := c.delivered[3][len(c.delivered[3])-1]
	if string(last.Req.Payload) != "fresh" {
		t.Errorf("r3 last delivery = %q", last.Req.Payload)
	}
	c.assertAgreement()
}

// TestViewChangeChainsAcrossMultipleViews: two consecutive primary failures.
func TestViewChangeChainsAcrossMultipleViews(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(0, "v0")
	c.run()

	c.suspect(1, 2, 3) // view 1, primary r1
	c.run()
	c.propose(1, "v1")
	c.run()

	c.suspect(0, 2, 3) // view 2, primary r2
	c.run()
	c.propose(2, "v2")
	c.run()

	c.assertAllDelivered("v0", "v1", "v2")
	c.assertAgreement()
	for _, id := range c.ids {
		if got := c.engines[id].View(); got != 2 {
			t.Errorf("replica %v view = %d", id, got)
		}
	}
}

// TestStaleViewChangeIgnored: a view change for an already-installed view
// must not disturb the engine.
func TestStaleViewChangeIgnored(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.suspect(1, 2, 3)
	c.run()
	if c.engines[0].View() != 1 {
		t.Fatal("setup: view change did not complete")
	}

	vc := &ViewChange{NewView: 1, Replica: 3}
	sign(vc, c.kps[3])
	c.handle(0, c.engines[0].Receive(3, vc))
	c.run()
	if got := c.engines[0].View(); got != 1 {
		t.Errorf("view = %d after stale view change", got)
	}
}

// TestForgedNewViewRejected: a non-primary cannot install a view, and a
// primary cannot smuggle an unprepared request into the new view.
func TestForgedNewViewRejected(t *testing.T) {
	c := newCluster(t, 4, nil)

	t.Run("wrong sender", func(t *testing.T) {
		nv := &NewView{View: 1, Replica: 2} // primary of view 1 is r1
		sign(nv, c.kps[2])
		c.handle(0, c.engines[0].Receive(2, nv))
		c.run()
		if c.engines[0].View() != 0 {
			t.Error("non-primary installed a view")
		}
	})

	t.Run("insufficient quorum", func(t *testing.T) {
		vc := &ViewChange{NewView: 1, Replica: 1}
		sign(vc, c.kps[1])
		nv := &NewView{View: 1, ViewChanges: []ViewChange{*vc}, Replica: 1}
		sign(nv, c.kps[1])
		c.handle(0, c.engines[0].Receive(1, nv))
		c.run()
		if c.engines[0].View() != 0 {
			t.Error("new view with 1 view change accepted")
		}
	})

	t.Run("invented request", func(t *testing.T) {
		// Three legitimate view changes with empty P sets...
		var vcs []ViewChange
		for _, id := range []crypto.NodeID{1, 2, 3} {
			vc := ViewChange{NewView: 1, Replica: id}
			sign(&vc, c.kps[id])
			vcs = append(vcs, vc)
		}
		// ... but the new primary invents a preprepare for seq 1.
		forged := Request{Payload: []byte("invented")}
		SignRequest(&forged, c.kps[1])
		pp := PrePrepare{View: 1, Seq: 1, Req: forged, Replica: 1}
		sign(&pp, c.kps[1])
		nv := &NewView{View: 1, ViewChanges: vcs, PrePrepares: []PrePrepare{pp}, Replica: 1}
		sign(nv, c.kps[1])
		c.handle(0, c.engines[0].Receive(1, nv))
		c.run()
		if c.engines[0].View() != 0 {
			t.Error("new view with invented request accepted")
		}
	})
}

// TestDuplicateSuspectIsIdempotent: calling Suspect repeatedly while a view
// change is already underway must not escalate views.
func TestDuplicateSuspectIsIdempotent(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.filter = func(p packet) bool { return false } // isolate everyone
	for i := 0; i < 5; i++ {
		c.handle(1, c.engines[1].Suspect(0))
	}
	c.run()
	if got := c.engines[1].sentVCFor; got != 1 {
		t.Errorf("sentVCFor = %d after repeated suspects, want 1", got)
	}
}

// TestPreparedProofValidation exercises validatePreparedProof's rejections.
func TestPreparedProofValidation(t *testing.T) {
	c := newCluster(t, 4, nil)
	e := c.engines[0]

	req := Request{Payload: []byte("p")}
	SignRequest(&req, c.kps[0])
	pp := PrePrepare{View: 0, Seq: 1, Req: req, Replica: 0}
	sign(&pp, c.kps[0])
	mkPrepare := func(id crypto.NodeID, digest crypto.Digest) Prepare {
		p := Prepare{View: 0, Seq: 1, Digest: digest, Replica: id}
		sign(&p, c.kps[id])
		return p
	}

	valid := PreparedProof{PrePrepare: pp,
		Prepares: []Prepare{mkPrepare(1, req.Digest()), mkPrepare(2, req.Digest())}}
	if err := e.validatePreparedProof(&valid, 1); err != nil {
		t.Errorf("valid proof rejected: %v", err)
	}

	tests := []struct {
		name  string
		proof PreparedProof
		view  uint64
	}{
		{"view not before new view", valid, 0},
		{"too few prepares", PreparedProof{PrePrepare: pp,
			Prepares: []Prepare{mkPrepare(1, req.Digest())}}, 1},
		{"mismatched digest", PreparedProof{PrePrepare: pp,
			Prepares: []Prepare{mkPrepare(1, crypto.Hash([]byte("x"))), mkPrepare(2, req.Digest())}}, 1},
		{"duplicate prepare signer", PreparedProof{PrePrepare: pp,
			Prepares: []Prepare{mkPrepare(1, req.Digest()), mkPrepare(1, req.Digest())}}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := e.validatePreparedProof(&tt.proof, tt.view); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestPreparedCertsSurviveViewChange: a request commits and executes in view
// 0, then two view changes follow back to back — the second before any slot
// re-prepares in view 1 (its prepares are censored). The NewView for view 2
// must still carry the request from the view-0 certificate instead of
// nulling a slot the quorum already executed; losing it would let a replica
// that missed view 0 execute a null there and fork its chain.
func TestPreparedCertsSurviveViewChange(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(0, "durable")
	c.run()
	c.assertAllDelivered("durable")

	// View change to 1, with every view-1 prepare dropped so seq 1 never
	// re-prepares there: the only evidence for it is the view-0 cert.
	c.filter = func(p packet) bool {
		msg, err := unmarshalPacket(p)
		if err != nil {
			return true
		}
		if prep, ok := msg.(*Prepare); ok && prep.View == 1 {
			return false
		}
		return true
	}
	c.suspect(1, 2, 3)
	c.run()
	if c.engines[0].View() != 1 {
		t.Fatal("setup: first view change did not complete")
	}

	// Second view change. Its NewView must re-issue seq 1 with the
	// original request, not a null.
	c.filter = nil
	c.suspect(0, 2, 3)
	c.run()
	for _, id := range c.ids {
		e := c.engines[id]
		if e.View() != 2 {
			t.Fatalf("replica %v view = %d, want 2", id, e.View())
		}
		nv := e.lastNewView
		if nv == nil {
			t.Fatalf("replica %v has no NewView certificate", id)
		}
		found := false
		for i := range nv.PrePrepares {
			pp := &nv.PrePrepares[i]
			if pp.Seq == 1 {
				found = true
				if pp.Req.IsNull() {
					t.Errorf("replica %v: NewView(2) nulled executed seq 1", id)
				} else if string(pp.Req.Payload) != "durable" {
					t.Errorf("replica %v: NewView(2) carries %q at seq 1", id, pp.Req.Payload)
				}
			}
		}
		if !found {
			t.Errorf("replica %v: NewView(2) omits seq 1", id)
		}
	}
}

// TestNoReentryBelowPromisedView: a replica that escalated its view change
// to view 2 has promised that its P set is final for every lower view; it
// must refuse a NewView for view 1, or requests it prepares after re-entry
// would be missing from the stale promise a later NewView may be built on.
func TestNoReentryBelowPromisedView(t *testing.T) {
	c := newCluster(t, 4, nil)

	// r3 sees nothing while the others change to view 1.
	c.filter = func(p packet) bool { return p.to != 3 }
	c.suspect(1, 2)
	c.handle(0, c.engines[0].Suspect(c.engines[0].Primary()))
	c.run()
	if c.engines[1].View() != 1 {
		t.Fatal("setup: view 1 did not form among r0-r2")
	}

	// r3 independently suspects the primary and escalates past view 1.
	c.handle(3, c.engines[3].Suspect(c.engines[3].Primary()))
	c.fireViewTimer(3)
	if got := c.engines[3].sentVCFor; got != 2 {
		t.Fatalf("setup: r3 escalated to %d, want 2", got)
	}

	// The view-1 certificate arrives late: r3 must not re-enter view 1.
	c.filter = nil
	nv := c.engines[1].lastNewView
	if nv == nil || nv.View != 1 {
		t.Fatal("setup: r1 holds no NewView for view 1")
	}
	c.handle(3, c.engines[3].Receive(1, nv))
	c.run()
	if got := c.engines[3].View(); got >= 1 && got < 2 {
		t.Errorf("r3 entered view %d below its promised view 2", got)
	}
	if !c.engines[3].inViewChange && c.engines[3].View() < 2 {
		t.Errorf("r3 left the view change without reaching its promised view")
	}
}
