package pbft

import (
	"bytes"
	"testing"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

func batchTestKeys(t *testing.T) (map[crypto.NodeID]*crypto.KeyPair, *crypto.Registry) {
	t.Helper()
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for i := 0; i < 4; i++ {
		kp := crypto.MustGenerateKeyPair(crypto.NodeID(i))
		kps[kp.ID] = kp
		pairs = append(pairs, kp)
	}
	return kps, crypto.NewRegistry(pairs...)
}

// signedItems builds n signed requests with distinct payloads.
func signedItems(t *testing.T, kps map[crypto.NodeID]*crypto.KeyPair, n int) []Request {
	t.Helper()
	items := make([]Request, n)
	for i := range items {
		items[i] = Request{Payload: []byte{'r', byte(i)}}
		SignRequest(&items[i], kps[crypto.NodeID(i%len(kps))])
	}
	return items
}

func TestBatchRoundTrip(t *testing.T) {
	kps, _ := batchTestKeys(t)
	items := signedItems(t, kps, 5)

	decoded, err := DecodeBatch(EncodeBatch(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(decoded), len(items))
	}
	for i := range items {
		if !bytes.Equal(decoded[i].Payload, items[i].Payload) ||
			decoded[i].Origin != items[i].Origin ||
			!bytes.Equal(decoded[i].Sig, items[i].Sig) {
			t.Errorf("item %d = %+v, want %+v", i, decoded[i], items[i])
		}
		if decoded[i].Batch {
			t.Errorf("item %d decoded with Batch set", i)
		}
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	kps, _ := batchTestKeys(t)
	items := signedItems(t, kps, 2)
	good := EncodeBatch(items)

	cases := map[string][]byte{
		"empty input":    nil,
		"zero count":     {0},
		"huge count":     {0xff, 0xff, 0xff, 0xff, 0x7f},
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xAA),
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// An inner record with an empty payload is structurally invalid.
	e := wire.NewEncoder(64)
	e.Uvarint(1)
	e.Bytes(nil)
	e.Uint32(0)
	e.Bytes(items[0].Sig)
	if _, err := DecodeBatch(e.Data()); err == nil {
		t.Error("empty inner payload accepted")
	}
}

func TestVerifyRequestDeepChecksInnerSignatures(t *testing.T) {
	kps, reg := batchTestKeys(t)
	items := signedItems(t, kps, 3)

	batch := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	if err := VerifyRequestDeep(&batch, reg, nil); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}

	// Forge one inner record: the envelope signature is recomputed by the
	// (faulty) primary, so only deep verification can catch it.
	items[1].Sig = bytes.Repeat([]byte{7}, crypto.SignatureSize)
	forged := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&forged, kps[0])
	if err := VerifyRequestDeep(&forged, reg, nil); err == nil {
		t.Error("batch hiding a forged inner signature accepted")
	}

	// A structurally broken batch payload must fail too.
	bad := Request{Payload: []byte{0}, Batch: true}
	SignRequest(&bad, kps[0])
	if err := VerifyRequestDeep(&bad, reg, nil); err == nil {
		t.Error("malformed batch payload accepted")
	}
}

func TestBatchFlagIsSigned(t *testing.T) {
	kps, reg := batchTestKeys(t)
	items := signedItems(t, kps, 2)
	req := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&req, kps[0])

	// Flipping the flag after signing must invalidate the signature: a
	// relay cannot turn a batch into a plain request or vice versa.
	req.Batch = false
	if err := VerifyRequest(&req, reg); err == nil {
		t.Error("cleared Batch flag not covered by the signature")
	}
	req.Batch = true
	if err := VerifyRequest(&req, reg); err != nil {
		t.Errorf("restored request no longer verifies: %v", err)
	}
}

func TestPayloadDigests(t *testing.T) {
	kps, _ := batchTestKeys(t)

	plain := Request{Payload: []byte("solo")}
	SignRequest(&plain, kps[0])
	if ds := plain.PayloadDigests(); len(ds) != 1 || ds[0] != plain.PayloadDigest() {
		t.Errorf("plain digests = %v", ds)
	}

	items := signedItems(t, kps, 3)
	batch := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	ds := batch.PayloadDigests()
	if len(ds) != 3 {
		t.Fatalf("batch digests = %d, want 3", len(ds))
	}
	for i := range items {
		if ds[i] != crypto.Hash(items[i].Payload) {
			t.Errorf("digest %d does not match inner payload", i)
		}
	}

	malformed := Request{Payload: []byte{0xff}, Batch: true}
	if ds := malformed.PayloadDigests(); ds != nil {
		t.Errorf("malformed batch digests = %v, want nil", ds)
	}
}

func TestBatchRequestWireRoundTrip(t *testing.T) {
	kps, reg := batchTestKeys(t)
	items := signedItems(t, kps, 2)
	req := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&req, kps[0])

	e := wire.NewEncoder(256)
	req.encodeTo(e)
	d := wire.NewDecoder(e.Data())
	out := decodeRequest(d)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !out.Batch {
		t.Error("Batch flag lost on the wire")
	}
	if err := VerifyRequestDeep(&out, reg, nil); err != nil {
		t.Errorf("re-decoded batch fails verification: %v", err)
	}
}
