package pbft

import (
	"encoding/binary"
	"testing"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// cluster is a deterministic in-memory test harness: engines exchange
// messages through an explicit queue (marshalled and unmarshalled through
// the wire codec for realism), with an optional filter to drop or observe
// traffic. No goroutines, no timers — full control over schedules.
type cluster struct {
	t       *testing.T
	ids     []crypto.NodeID
	kps     map[crypto.NodeID]*crypto.KeyPair
	reg     *crypto.Registry
	engines map[crypto.NodeID]*Engine

	queue []packet
	// filter, when set, returns false to drop a packet.
	filter func(p packet) bool

	delivered    map[crypto.NodeID][]DeliverAction
	stable       map[crypto.NodeID][]CheckpointProof
	newPrimaries map[crypto.NodeID][]NewPrimaryAction
	transfers    map[crypto.NodeID][]StateTransferNeededAction
	viewTimers   map[crypto.NodeID]*StartViewTimerAction

	// digestFn computes the per-replica checkpoint digest; defaults to a
	// deterministic function of seq so all replicas agree.
	digestFn map[crypto.NodeID]func(seq uint64) crypto.Digest
}

type packet struct {
	from, to crypto.NodeID
	data     []byte
}

func newCluster(t *testing.T, n int, cfgTweak func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:            t,
		kps:          make(map[crypto.NodeID]*crypto.KeyPair, n),
		engines:      make(map[crypto.NodeID]*Engine, n),
		delivered:    make(map[crypto.NodeID][]DeliverAction),
		stable:       make(map[crypto.NodeID][]CheckpointProof),
		newPrimaries: make(map[crypto.NodeID][]NewPrimaryAction),
		transfers:    make(map[crypto.NodeID][]StateTransferNeededAction),
		viewTimers:   make(map[crypto.NodeID]*StartViewTimerAction),
		digestFn:     make(map[crypto.NodeID]func(uint64) crypto.Digest),
	}
	var pairs []*crypto.KeyPair
	for i := 0; i < n; i++ {
		id := crypto.NodeID(i)
		c.ids = append(c.ids, id)
		kp := crypto.MustGenerateKeyPair(id)
		c.kps[id] = kp
		pairs = append(pairs, kp)
	}
	c.reg = crypto.NewRegistry(pairs...)
	for _, id := range c.ids {
		cfg := Config{ID: id, Replicas: c.ids}
		if cfgTweak != nil {
			cfgTweak(&cfg)
		}
		engine, err := NewEngine(cfg, c.kps[id], c.reg)
		if err != nil {
			t.Fatalf("NewEngine(%v): %v", id, err)
		}
		c.engines[id] = engine
		c.handle(id, engine.Start())
	}
	return c
}

// defaultDigest gives every replica the same state digest for seq.
func defaultDigest(seq uint64) crypto.Digest {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seq)
	return crypto.Hash(b[:])
}

// handle converts one engine's actions into queued packets and recorded
// callbacks, recursing for checkpoint digests like the Runner does.
func (c *cluster) handle(id crypto.NodeID, actions []Action) {
	for _, a := range actions {
		switch act := a.(type) {
		case SendAction:
			c.queue = append(c.queue, packet{from: id, to: act.To, data: wire.Marshal(act.Msg)})
		case BroadcastAction:
			data := wire.Marshal(act.Msg)
			for _, to := range c.ids {
				if to != id {
					c.queue = append(c.queue, packet{from: id, to: to, data: data})
				}
			}
		case DeliverAction:
			c.delivered[id] = append(c.delivered[id], act)
		case CheckpointNeededAction:
			fn := c.digestFn[id]
			if fn == nil {
				fn = defaultDigest
			}
			c.handle(id, c.engines[id].Checkpoint(act.Seq, fn(act.Seq)))
		case StableCheckpointAction:
			c.stable[id] = append(c.stable[id], act.Proof)
		case NewPrimaryAction:
			c.newPrimaries[id] = append(c.newPrimaries[id], act)
		case StartViewTimerAction:
			armed := act
			c.viewTimers[id] = &armed
		case StopViewTimerAction:
			c.viewTimers[id] = nil
		case StateTransferNeededAction:
			c.transfers[id] = append(c.transfers[id], act)
		}
	}
}

// run drains the message queue to quiescence.
func (c *cluster) run() {
	for len(c.queue) > 0 {
		p := c.queue[0]
		c.queue = c.queue[1:]
		if c.filter != nil && !c.filter(p) {
			continue
		}
		msg, err := wire.Unmarshal(p.data)
		if err != nil {
			c.t.Fatalf("unmarshal packet %v->%v: %v", p.from, p.to, err)
		}
		c.handle(p.to, c.engines[p.to].Receive(p.from, msg))
	}
}

// propose submits a signed request via the primary-co-located layer.
func (c *cluster) propose(onNode crypto.NodeID, payload string) Request {
	req := Request{Payload: []byte(payload)}
	SignRequest(&req, c.kps[onNode])
	c.handle(onNode, c.engines[onNode].Propose(req))
	return req
}

// suspectAll makes every listed replica suspect the current primary.
func (c *cluster) suspect(ids ...crypto.NodeID) {
	for _, id := range ids {
		c.handle(id, c.engines[id].Suspect(c.engines[id].Primary()))
	}
}

// fireViewTimer triggers the armed view-change timer on a replica.
func (c *cluster) fireViewTimer(id crypto.NodeID) {
	armed := c.viewTimers[id]
	if armed == nil {
		c.t.Fatalf("no view timer armed on %v", id)
	}
	c.viewTimers[id] = nil
	c.handle(id, c.engines[id].OnViewTimer(armed.View))
}

// assertAllDelivered checks that every replica delivered exactly the given
// payloads in order.
func (c *cluster) assertAllDelivered(payloads ...string) {
	c.t.Helper()
	for _, id := range c.ids {
		got := c.delivered[id]
		if len(got) != len(payloads) {
			c.t.Fatalf("replica %v delivered %d requests, want %d", id, len(got), len(payloads))
		}
		for i, want := range payloads {
			if string(got[i].Req.Payload) != want {
				c.t.Errorf("replica %v delivery %d = %q, want %q", id, i, got[i].Req.Payload, want)
			}
		}
	}
}

// assertAgreement verifies the safety invariant: no two replicas delivered
// different requests for the same sequence number.
func (c *cluster) assertAgreement() {
	c.t.Helper()
	bySeq := make(map[uint64]crypto.Digest)
	owner := make(map[uint64]crypto.NodeID)
	for _, id := range c.ids {
		for _, d := range c.delivered[id] {
			digest := d.Req.Digest()
			if prev, ok := bySeq[d.Seq]; ok {
				if prev != digest {
					c.t.Fatalf("SAFETY VIOLATION: seq %d delivered as %s on %v but %s on %v",
						d.Seq, prev.Short(), owner[d.Seq], digest.Short(), id)
				}
			} else {
				bySeq[d.Seq] = digest
				owner[d.Seq] = id
			}
		}
	}
}
