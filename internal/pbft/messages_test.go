package pbft

import (
	"bytes"
	"testing"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

func testKeys(t *testing.T, n int) ([]*crypto.KeyPair, *crypto.Registry) {
	t.Helper()
	kps := make([]*crypto.KeyPair, n)
	for i := range kps {
		kps[i] = crypto.MustGenerateKeyPair(crypto.NodeID(i))
	}
	return kps, crypto.NewRegistry(kps...)
}

func TestRequestSignVerify(t *testing.T) {
	kps, reg := testKeys(t, 1)
	req := Request{Payload: []byte("signals")}
	SignRequest(&req, kps[0])
	if err := VerifyRequest(&req, reg); err != nil {
		t.Fatalf("VerifyRequest: %v", err)
	}
	req.Payload = []byte("tampered")
	if err := VerifyRequest(&req, reg); err == nil {
		t.Error("tampered request verified")
	}
}

func TestRequestDigests(t *testing.T) {
	kps, _ := testKeys(t, 2)
	a := Request{Payload: []byte("same")}
	SignRequest(&a, kps[0])
	b := Request{Payload: []byte("same")}
	SignRequest(&b, kps[1])
	if a.PayloadDigest() != b.PayloadDigest() {
		t.Error("payload digests differ for identical payloads")
	}
	if a.Digest() == b.Digest() {
		t.Error("full digests collide despite different origins")
	}
}

func TestRequestIsNull(t *testing.T) {
	if !(&Request{}).IsNull() {
		t.Error("empty request not null")
	}
	if (&Request{Payload: []byte{1}}).IsNull() {
		t.Error("nonempty request null")
	}
}

func roundTrip(t *testing.T, msg wire.Message) wire.Message {
	t.Helper()
	out, err := wire.Unmarshal(wire.Marshal(msg))
	if err != nil {
		t.Fatalf("round trip %T: %v", msg, err)
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	kps, reg := testKeys(t, 4)
	req := Request{Payload: []byte("payload")}
	SignRequest(&req, kps[1])

	pp := &PrePrepare{View: 3, Seq: 17, Req: req, Replica: 3}
	sign(pp, kps[3])
	got := roundTrip(t, pp).(*PrePrepare)
	if got.View != 3 || got.Seq != 17 || !bytes.Equal(got.Req.Payload, req.Payload) {
		t.Errorf("PrePrepare = %+v", got)
	}
	if err := verify(got, reg); err != nil {
		t.Errorf("PrePrepare signature lost in transit: %v", err)
	}

	p := &Prepare{View: 1, Seq: 2, Digest: crypto.Hash([]byte("d")), Replica: 2}
	sign(p, kps[2])
	if g := roundTrip(t, p).(*Prepare); g.Digest != p.Digest || verify(g, reg) != nil {
		t.Errorf("Prepare round trip failed: %+v", g)
	}

	cm := &Commit{View: 1, Seq: 2, Digest: crypto.Hash([]byte("d")), Replica: 1}
	sign(cm, kps[1])
	if g := roundTrip(t, cm).(*Commit); g.Seq != 2 || verify(g, reg) != nil {
		t.Errorf("Commit round trip failed: %+v", g)
	}

	ck := &Checkpoint{Seq: 10, StateDigest: crypto.Hash([]byte("b")), Replica: 0}
	sign(ck, kps[0])
	if g := roundTrip(t, ck).(*Checkpoint); g.StateDigest != ck.StateDigest || verify(g, reg) != nil {
		t.Errorf("Checkpoint round trip failed: %+v", g)
	}
}

func TestViewChangeRoundTripWithProofs(t *testing.T) {
	kps, reg := testKeys(t, 4)
	req := Request{Payload: []byte("prepared-req")}
	SignRequest(&req, kps[0])
	pp := PrePrepare{View: 0, Seq: 11, Req: req, Replica: 0}
	sign(&pp, kps[0])
	var prepares []Prepare
	for _, i := range []int{1, 2} {
		pr := Prepare{View: 0, Seq: 11, Digest: req.Digest(), Replica: crypto.NodeID(i)}
		sign(&pr, kps[i])
		prepares = append(prepares, pr)
	}
	var cps []Checkpoint
	for i := 0; i < 3; i++ {
		ck := Checkpoint{Seq: 10, StateDigest: crypto.Hash([]byte("block10")), Replica: crypto.NodeID(i)}
		sign(&ck, kps[i])
		cps = append(cps, ck)
	}
	vc := &ViewChange{
		NewView:   1,
		StableSeq: 10,
		StableCkpt: CheckpointProof{
			Seq: 10, StateDigest: crypto.Hash([]byte("block10")), Checkpoints: cps,
		},
		Prepared: []PreparedProof{{PrePrepare: pp, Prepares: prepares}},
		Replica:  2,
	}
	sign(vc, kps[2])

	got := roundTrip(t, vc).(*ViewChange)
	if err := verify(got, reg); err != nil {
		t.Fatalf("ViewChange signature: %v", err)
	}
	if got.StableSeq != 10 || len(got.Prepared) != 1 || len(got.StableCkpt.Checkpoints) != 3 {
		t.Fatalf("ViewChange = %+v", got)
	}
	if err := got.StableCkpt.Verify(reg, 3); err != nil {
		t.Errorf("embedded checkpoint proof: %v", err)
	}
	if got.Prepared[0].PrePrepare.Req.Digest() != req.Digest() {
		t.Error("prepared proof request lost")
	}

	nv := &NewView{View: 1, ViewChanges: []ViewChange{*vc}, PrePrepares: []PrePrepare{pp}, Replica: 1}
	sign(nv, kps[1])
	gotNV := roundTrip(t, nv).(*NewView)
	if err := verify(gotNV, reg); err != nil {
		t.Fatalf("NewView signature: %v", err)
	}
	if len(gotNV.ViewChanges) != 1 || len(gotNV.PrePrepares) != 1 {
		t.Fatalf("NewView = %+v", gotNV)
	}
}

func TestCheckpointProofVerifyErrors(t *testing.T) {
	kps, reg := testKeys(t, 4)
	digest := crypto.Hash([]byte("block"))
	mk := func(i int, seq uint64, d crypto.Digest) Checkpoint {
		ck := Checkpoint{Seq: seq, StateDigest: d, Replica: crypto.NodeID(i)}
		sign(&ck, kps[i])
		return ck
	}

	t.Run("valid", func(t *testing.T) {
		p := CheckpointProof{Seq: 10, StateDigest: digest,
			Checkpoints: []Checkpoint{mk(0, 10, digest), mk(1, 10, digest), mk(2, 10, digest)}}
		if err := p.Verify(reg, 3); err != nil {
			t.Errorf("Verify: %v", err)
		}
	})
	t.Run("too few", func(t *testing.T) {
		p := CheckpointProof{Seq: 10, StateDigest: digest,
			Checkpoints: []Checkpoint{mk(0, 10, digest), mk(1, 10, digest)}}
		if err := p.Verify(reg, 3); err == nil {
			t.Error("want error")
		}
	})
	t.Run("duplicate signer", func(t *testing.T) {
		p := CheckpointProof{Seq: 10, StateDigest: digest,
			Checkpoints: []Checkpoint{mk(0, 10, digest), mk(0, 10, digest), mk(1, 10, digest)}}
		if err := p.Verify(reg, 3); err == nil {
			t.Error("want error")
		}
	})
	t.Run("mismatched seq", func(t *testing.T) {
		p := CheckpointProof{Seq: 10, StateDigest: digest,
			Checkpoints: []Checkpoint{mk(0, 11, digest), mk(1, 10, digest), mk(2, 10, digest)}}
		if err := p.Verify(reg, 3); err == nil {
			t.Error("want error")
		}
	})
	t.Run("genesis needs no proof", func(t *testing.T) {
		var p CheckpointProof
		if err := p.Verify(reg, 3); err != nil {
			t.Errorf("genesis proof: %v", err)
		}
	})
}

func TestSigningBytesExcludesSignature(t *testing.T) {
	kps, _ := testKeys(t, 1)
	p := &Prepare{View: 1, Seq: 2, Digest: crypto.Hash([]byte("x")), Replica: 0}
	before := signingBytes(p)
	sign(p, kps[0])
	after := signingBytes(p)
	if !bytes.Equal(before, after) {
		t.Error("signature changed the signing bytes")
	}
	if p.Sig == nil {
		t.Error("sign did not set the signature")
	}
}
