package pbft

import (
	"strings"
	"testing"

	"zugchain/internal/crypto"
	"zugchain/internal/metrics"
)

// TestPrimarySelfBatchNotReverified is the satellite regression for the
// crypto acceleration layer: once the primary has admitted records (verifying
// them on arrival) and signed its own batched proposal, re-checking that
// proposal through preVerify — the path a loopback or NEWVIEW re-proposal
// takes — must cost zero additional scalar verifications. Every signature
// involved is either cached from admission or seeded by the primary's own
// Sign.
func TestPrimarySelfBatchNotReverified(t *testing.T) {
	kps, plain := batchTestKeys(t)
	cc := &metrics.CryptoCounters{}
	cache := crypto.NewVerifyCache(0, cc)
	reg := plain.Accelerated(cache, true, cc)
	primary := kps[0].WithCache(cache)

	// Admission path: each record's origin signature is verified once when
	// it arrives at the primary, feeding the cache.
	items := signedItems(t, kps, 8)
	for i := range items {
		if err := VerifyRequest(&items[i], reg); err != nil {
			t.Fatalf("admit record %d: %v", i, err)
		}
	}

	// The primary coalesces the admitted records and signs the batch
	// envelope and the PrePrepare with its cache-seeding key pair, exactly
	// as a node constructed by node.New does.
	batch := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, primary)
	pp := &PrePrepare{View: 0, Seq: 1, Req: batch, Replica: primary.ID}
	sign(pp, primary)

	base := cc.Snapshot()
	if err := preVerify(pp, reg, nil); err != nil {
		t.Fatalf("preVerify of own proposal: %v", err)
	}
	after := cc.Snapshot()
	if got := after.ScalarVerifies - base.ScalarVerifies; got != 0 {
		t.Errorf("self-proposal cost %d scalar verifies, want 0", got)
	}
	if got := after.BatchedSigs - base.BatchedSigs; got != 0 {
		t.Errorf("self-proposal cost a batch equation over %d sigs, want 0", got)
	}
	if hits := after.CacheHits - base.CacheHits; hits < 8 {
		t.Errorf("self-proposal hit the cache %d times, want >= 8", hits)
	}
}

// TestVerifyRequestDeepNamesCulprits checks the operator-facing half of
// batch rejection: the error must identify exactly which record indices
// carry forged signatures.
func TestVerifyRequestDeepNamesCulprits(t *testing.T) {
	kps, reg := batchTestKeys(t)
	items := signedItems(t, kps, 20)
	items[7].Sig = append([]byte(nil), items[7].Sig...)
	items[7].Sig[3] ^= 0x10

	batch := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	err := VerifyRequestDeep(&batch, reg, nil)
	if err == nil {
		t.Fatal("batch with forged record accepted")
	}
	if !strings.Contains(err.Error(), "batch record 7") {
		t.Errorf("error does not name the culprit: %v", err)
	}

	items[13].Sig = append([]byte(nil), items[13].Sig...)
	items[13].Sig[40] ^= 0x04
	batch = Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	err = VerifyRequestDeep(&batch, reg, nil)
	if err == nil || !strings.Contains(err.Error(), "[7 13]") {
		t.Errorf("error does not name both culprits: %v", err)
	}
}

// TestVerifyRequestDeepChunksOnPool runs the deep verification of a large
// batch across a verify pool — the production path for a big PrePrepare —
// and checks both verdict directions.
func TestVerifyRequestDeepChunksOnPool(t *testing.T) {
	kps, reg := batchTestKeys(t)
	pool := crypto.NewVerifyPool(4)
	defer pool.Close()

	items := signedItems(t, kps, 300)
	batch := Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	if err := VerifyRequestDeep(&batch, reg, pool); err != nil {
		t.Fatalf("valid 300-record batch rejected: %v", err)
	}

	items[123].Sig = append([]byte(nil), items[123].Sig...)
	items[123].Sig[0] ^= 0x02
	items[250].Sig = append([]byte(nil), items[250].Sig...)
	items[250].Sig[50] ^= 0x08
	batch = Request{Payload: EncodeBatch(items), Batch: true}
	SignRequest(&batch, kps[0])
	err := VerifyRequestDeep(&batch, reg, pool)
	if err == nil || !strings.Contains(err.Error(), "[123 250]") {
		t.Errorf("chunked verification missed the culprits: %v", err)
	}
}

// TestCorruptBatchRejectedHonestRecordsStillOrdered is the end-to-end
// acceptance scenario: a Byzantine primary proposes a batch hiding one forged
// record signature. Every backup rejects the proposal (naming the culprit),
// nothing is delivered from it, and the honest records subsequently order in
// a clean batch on all replicas.
func TestCorruptBatchRejectedHonestRecordsStillOrdered(t *testing.T) {
	c := newCluster(t, 4, nil)

	recs := []Request{
		{Payload: []byte("honest-1")},
		{Payload: []byte("forged")},
		{Payload: []byte("honest-2")},
	}
	SignRequest(&recs[0], c.kps[1])
	SignRequest(&recs[1], c.kps[2])
	SignRequest(&recs[2], c.kps[3])
	recs[1].Sig = append([]byte(nil), recs[1].Sig...)
	recs[1].Sig[10] ^= 0x80

	bad := Request{Payload: EncodeBatch(recs), Batch: true}
	SignRequest(&bad, c.kps[0])
	if err := VerifyRequestDeep(&bad, c.reg, nil); err == nil ||
		!strings.Contains(err.Error(), "batch record 1") {
		t.Fatalf("corrupt batch not pinpointed: %v", err)
	}

	// The Byzantine primary pushes the proposal straight at the backups
	// (bypassing its own engine, as a faulty node would).
	pp := &PrePrepare{View: 0, Seq: 1, Req: bad, Replica: 0}
	sign(pp, c.kps[0])
	for _, id := range c.ids[1:] {
		c.handle(id, c.engines[id].Receive(0, pp))
	}
	c.run()
	for _, id := range c.ids {
		if n := len(c.delivered[id]); n != 0 {
			t.Fatalf("replica %v delivered %d requests from a corrupt batch", id, n)
		}
	}

	// The primary (now behaving) re-batches the honest records; the slot is
	// still free, so they order normally everywhere.
	good := Request{Payload: EncodeBatch([]Request{recs[0], recs[2]}), Batch: true}
	SignRequest(&good, c.kps[0])
	c.handle(0, c.engines[0].Propose(good))
	c.run()
	c.assertAgreement()
	for _, id := range c.ids {
		got := c.delivered[id]
		if len(got) != 1 {
			t.Fatalf("replica %v delivered %d batches, want 1", id, len(got))
		}
		items, err := DecodeBatch(got[0].Req.Payload)
		if err != nil || len(items) != 2 {
			t.Fatalf("replica %v delivered batch = %d items, err %v", id, len(items), err)
		}
		if string(items[0].Payload) != "honest-1" || string(items[1].Payload) != "honest-2" {
			t.Errorf("replica %v ordered %q, %q", id, items[0].Payload, items[1].Payload)
		}
	}
}
