package pbft

import (
	"fmt"
	"sort"

	"zugchain/internal/crypto"
)

// startViewChange abandons the current view and broadcasts a ViewChange for
// target. escalation marks a retried view change (timer expiry), which backs
// off the progress timer.
func (e *Engine) startViewChange(target uint64, escalation bool) []Action {
	// A ViewChange freezes this replica's P set for all lower views: once
	// sent, entering any view below the announced target would let it
	// prepare requests its outstanding promise does not report, and a later
	// NewView built from that stale promise could null a committed slot.
	// The target is therefore monotonic.
	if target < e.sentVCFor {
		target = e.sentVCFor
	}
	if target <= e.sentVCFor && e.inViewChange {
		return nil
	}
	e.inViewChange = true
	e.sentVCFor = target
	if escalation {
		e.vcAttempts++
	} else {
		e.vcAttempts = 0
	}

	vc := &ViewChange{
		NewView:    target,
		StableSeq:  e.stable.Seq,
		StableCkpt: e.stable,
		Prepared:   e.preparedProofs(),
		Replica:    e.cfg.ID,
	}
	bc := signedBroadcast(vc, e.kp)
	e.storeViewChange(vc)

	actions := []Action{
		bc,
		StartViewTimerAction{View: target, Attempt: e.vcAttempts},
	}
	actions = append(actions, e.maybeFormNewView(target)...)
	return actions
}

// recordPreparedCert captures the prepared certificate for an instance that
// just reached prepared state, keeping the highest-view certificate per
// sequence number. The map outlives installNewView's instance-log wipe, so
// the P set of later view changes still vouches for slots prepared (and
// possibly executed) in earlier views.
func (e *Engine) recordPreparedCert(inst *instance) {
	if inst.preprepare == nil || inst.seq <= e.lowWater {
		return
	}
	if cur, ok := e.certs[inst.seq]; ok && cur.PrePrepare.View >= inst.view {
		return
	}
	proof := &PreparedProof{PrePrepare: *inst.preprepare}
	for _, p := range inst.prepares {
		if p.Digest == inst.digest && p.View == inst.view && p.Replica != inst.preprepare.Replica {
			proof.Prepares = append(proof.Prepares, *p)
		}
	}
	sort.Slice(proof.Prepares, func(i, j int) bool {
		return proof.Prepares[i].Replica < proof.Prepares[j].Replica
	})
	e.certs[inst.seq] = proof
}

// preparedProofs collects the P set: for every sequence number above the
// stable checkpoint that reached prepared state — in this or any earlier
// view — the certificate from the highest view that prepared it.
func (e *Engine) preparedProofs() []PreparedProof {
	seqs := make([]uint64, 0, len(e.certs))
	for seq := range e.certs {
		if seq > e.lowWater {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	proofs := make([]PreparedProof, 0, len(seqs))
	for _, seq := range seqs {
		proofs = append(proofs, *e.certs[seq])
	}
	return proofs
}

// validateViewChange fully checks a ViewChange message's evidence.
func (e *Engine) validateViewChange(vc *ViewChange) error {
	if vc.StableSeq != vc.StableCkpt.Seq {
		return fmt.Errorf("pbft: view change stable seq mismatch")
	}
	if err := vc.StableCkpt.Verify(e.reg, e.cfg.Quorum()); err != nil {
		return err
	}
	for i := range vc.Prepared {
		if err := e.validatePreparedProof(&vc.Prepared[i], vc.NewView); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) validatePreparedProof(p *PreparedProof, newView uint64) error {
	pp := &p.PrePrepare
	if pp.View >= newView {
		return fmt.Errorf("pbft: prepared proof from view %d not before new view %d", pp.View, newView)
	}
	if pp.Replica != e.primaryOf(pp.View) {
		return fmt.Errorf("pbft: prepared proof preprepare not from primary of view %d", pp.View)
	}
	if err := verify(pp, e.reg); err != nil {
		return fmt.Errorf("pbft: prepared proof preprepare: %w", err)
	}
	digest := pp.Req.Digest()
	seen := make(map[crypto.NodeID]bool, len(p.Prepares))
	matching := 0
	for i := range p.Prepares {
		pr := &p.Prepares[i]
		if pr.View != pp.View || pr.Seq != pp.Seq || pr.Digest != digest {
			return fmt.Errorf("pbft: prepared proof contains mismatched prepare")
		}
		if pr.Replica == pp.Replica || seen[pr.Replica] {
			return fmt.Errorf("pbft: prepared proof has duplicate or primary prepare")
		}
		seen[pr.Replica] = true
		if err := verify(pr, e.reg); err != nil {
			return fmt.Errorf("pbft: prepared proof prepare: %w", err)
		}
		matching++
	}
	if matching < 2*e.cfg.F() {
		return fmt.Errorf("pbft: prepared proof has %d prepares, need %d", matching, 2*e.cfg.F())
	}
	return nil
}

func (e *Engine) storeViewChange(vc *ViewChange) {
	byReplica, ok := e.vcs[vc.NewView]
	if !ok {
		byReplica = make(map[crypto.NodeID]*ViewChange)
		e.vcs[vc.NewView] = byReplica
	}
	byReplica[vc.Replica] = vc
}

func (e *Engine) onViewChange(vc *ViewChange) []Action {
	if vc.NewView <= e.view {
		return nil // stale
	}
	if err := e.validateViewChange(vc); err != nil {
		return nil
	}
	e.storeViewChange(vc)

	var actions []Action

	// Liveness rule: seeing f+1 replicas change to higher views proves at
	// least one correct replica suspects the primary; join the smallest
	// such view to avoid being left behind by a partition of timeouts.
	if higher := e.distinctHigherViewChangers(); len(higher) >= e.cfg.F()+1 {
		minView := vc.NewView
		for _, v := range higher {
			if v < minView {
				minView = v
			}
		}
		if minView > e.sentVCFor {
			actions = append(actions, e.startViewChange(minView, false)...)
		}
	}

	actions = append(actions, e.maybeFormNewView(vc.NewView)...)
	return actions
}

// distinctHigherViewChangers returns, per replica, the smallest view greater
// than the current one it has announced a change to.
func (e *Engine) distinctHigherViewChangers() map[crypto.NodeID]uint64 {
	out := make(map[crypto.NodeID]uint64)
	for view, byReplica := range e.vcs {
		if view <= e.view {
			continue
		}
		for id := range byReplica {
			if cur, ok := out[id]; !ok || view < cur {
				out[id] = view
			}
		}
	}
	return out
}

// maybeFormNewView builds and broadcasts a NewView if this replica is the
// designated primary of target and holds a 2f+1 quorum of view changes.
func (e *Engine) maybeFormNewView(target uint64) []Action {
	if e.primaryOf(target) != e.cfg.ID || target <= e.view || target < e.sentVCFor {
		return nil
	}
	byReplica := e.vcs[target]
	if len(byReplica) < e.cfg.Quorum() {
		return nil
	}
	if _, ok := byReplica[e.cfg.ID]; !ok {
		// Quorum without our own view change: join first so the NewView
		// provably includes the new primary's word.
		return e.startViewChange(target, false)
	}

	vcs := make([]ViewChange, 0, len(byReplica))
	ids := make([]crypto.NodeID, 0, len(byReplica))
	for id := range byReplica {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		vcs = append(vcs, *byReplica[id])
	}

	preprepares := e.computeNewViewPrePrepares(target, vcs)
	nv := &NewView{
		View:        target,
		ViewChanges: vcs,
		PrePrepares: preprepares,
		Replica:     e.cfg.ID,
	}
	actions := []Action{signedBroadcast(nv, e.kp)}
	actions = append(actions, e.installNewView(nv)...)
	return actions
}

// computeNewViewPrePrepares derives the O set: for every slot between the
// newest stable checkpoint and the highest prepared sequence number in the
// quorum, re-issue the prepared request (from the proof with the highest
// view) or a null request for unconstrained slots.
func (e *Engine) computeNewViewPrePrepares(target uint64, vcs []ViewChange) []PrePrepare {
	minS, maxS := newViewBounds(vcs)
	best := make(map[uint64]*PreparedProof, len(vcs))
	for i := range vcs {
		for j := range vcs[i].Prepared {
			p := &vcs[i].Prepared[j]
			seq := p.PrePrepare.Seq
			if seq <= minS || seq > maxS {
				continue
			}
			if cur, ok := best[seq]; !ok || p.PrePrepare.View > cur.PrePrepare.View {
				best[seq] = p
			}
		}
	}
	var preprepares []PrePrepare
	for seq := minS + 1; seq <= maxS; seq++ {
		var req Request
		if p, ok := best[seq]; ok {
			req = p.PrePrepare.Req
		} else {
			// Null request filling an unconstrained gap.
			req = Request{Origin: e.cfg.ID}
			SignRequest(&req, e.kp)
		}
		pp := PrePrepare{
			View:    target,
			Seq:     seq,
			Req:     req,
			Replica: e.cfg.ID,
		}
		sign(&pp, e.kp)
		preprepares = append(preprepares, pp)
	}
	return preprepares
}

// newViewBounds returns (min-s, max-s): the newest stable checkpoint in the
// quorum and the highest prepared sequence number.
func newViewBounds(vcs []ViewChange) (minS, maxS uint64) {
	for i := range vcs {
		if vcs[i].StableSeq > minS {
			minS = vcs[i].StableSeq
		}
		for j := range vcs[i].Prepared {
			if s := vcs[i].Prepared[j].PrePrepare.Seq; s > maxS {
				maxS = s
			}
		}
	}
	if maxS < minS {
		maxS = minS
	}
	return minS, maxS
}

func (e *Engine) onNewView(nv *NewView) []Action {
	if nv.View <= e.view || nv.Replica != e.primaryOf(nv.View) {
		return nil
	}
	if nv.View < e.sentVCFor {
		// This replica already promised a higher view; entering a lower one
		// would break the freeze its ViewChange message asserted (see
		// startViewChange) and allow a later NewView to null slots this
		// replica commits below the promised view.
		return nil
	}
	if err := e.validateNewView(nv); err != nil {
		return nil
	}
	return e.installNewView(nv)
}

// validateNewView re-derives the O set from the quoted view changes and
// requires the primary's preprepares to match exactly, so a Byzantine new
// primary cannot smuggle in or drop prepared requests.
func (e *Engine) validateNewView(nv *NewView) error {
	seen := make(map[crypto.NodeID]bool, len(nv.ViewChanges))
	for i := range nv.ViewChanges {
		vc := &nv.ViewChanges[i]
		if vc.NewView != nv.View {
			return fmt.Errorf("pbft: new view quotes view change for wrong view")
		}
		if seen[vc.Replica] {
			return fmt.Errorf("pbft: new view quotes duplicate view change signer")
		}
		seen[vc.Replica] = true
		if err := verify(vc, e.reg); err != nil {
			return fmt.Errorf("pbft: quoted view change: %w", err)
		}
		if err := e.validateViewChange(vc); err != nil {
			return err
		}
	}
	if len(seen) < e.cfg.Quorum() {
		return fmt.Errorf("pbft: new view quotes %d view changes, need %d", len(seen), e.cfg.Quorum())
	}

	minS, maxS := newViewBounds(nv.ViewChanges)
	if uint64(len(nv.PrePrepares)) != maxS-minS {
		return fmt.Errorf("pbft: new view has %d preprepares, want %d", len(nv.PrePrepares), maxS-minS)
	}
	best := make(map[uint64]*PreparedProof)
	for i := range nv.ViewChanges {
		for j := range nv.ViewChanges[i].Prepared {
			p := &nv.ViewChanges[i].Prepared[j]
			seq := p.PrePrepare.Seq
			if seq <= minS || seq > maxS {
				continue
			}
			if cur, ok := best[seq]; !ok || p.PrePrepare.View > cur.PrePrepare.View {
				best[seq] = p
			}
		}
	}
	for i := range nv.PrePrepares {
		pp := &nv.PrePrepares[i]
		wantSeq := minS + 1 + uint64(i)
		if pp.Seq != wantSeq || pp.View != nv.View || pp.Replica != nv.Replica {
			return fmt.Errorf("pbft: new view preprepare %d malformed", i)
		}
		if err := verify(pp, e.reg); err != nil {
			return fmt.Errorf("pbft: new view preprepare: %w", err)
		}
		if p, ok := best[wantSeq]; ok {
			if pp.Req.Digest() != p.PrePrepare.Req.Digest() {
				return fmt.Errorf("pbft: new view replaced prepared request at seq %d", wantSeq)
			}
		} else if !pp.Req.IsNull() {
			return fmt.Errorf("pbft: new view invented request for unconstrained seq %d", wantSeq)
		}
	}
	return nil
}

// installNewView enters the new view, adopts its checkpoint baseline, and
// replays the re-issued preprepares.
func (e *Engine) installNewView(nv *NewView) []Action {
	minS, _ := newViewBounds(nv.ViewChanges)

	var actions []Action
	e.view = nv.View
	e.inViewChange = false
	e.vcAttempts = 0
	e.lastNewView = nv
	if e.view > e.pinnedView {
		// Pre-crash pins only constrain the view they were cast in; the
		// NewView certificate re-certifies every surviving slot.
		e.pinned = nil
	}
	if e.sentVCFor < e.view {
		e.sentVCFor = e.view
	}
	actions = append(actions, StopViewTimerAction{})

	// Adopt a newer stable checkpoint from the quorum if ours is older.
	if minS > e.lowWater {
		for i := range nv.ViewChanges {
			if nv.ViewChanges[i].StableSeq == minS {
				actions = append(actions, e.installStable(nv.ViewChanges[i].StableCkpt)...)
				break
			}
		}
	}

	// Drop in-flight instances; the new view's preprepares resume them.
	e.log = make(map[uint64]*instance)
	for view := range e.vcs {
		if view <= e.view {
			delete(e.vcs, view)
		}
	}

	if e.primaryOf(e.view) == e.cfg.ID {
		e.nextSeq = minS + uint64(len(nv.PrePrepares)) + 1
		if e.nextSeq <= e.executed {
			e.nextSeq = e.executed + 1
		}
	}

	for i := range nv.PrePrepares {
		actions = append(actions, e.acceptPrePrepare(&nv.PrePrepares[i])...)
	}

	actions = append(actions, NewPrimaryAction{View: e.view, Primary: e.primaryOf(e.view)})
	actions = append(actions, e.drainProposals()...)
	return actions
}

// OnViewTimer is called by the runner when the view-change progress timer
// for view fires. If that view change is still incomplete, the engine
// escalates to the next view with an increased backoff attempt.
func (e *Engine) OnViewTimer(view uint64) []Action {
	if !e.inViewChange || e.view >= view || e.sentVCFor > view {
		return nil
	}
	return e.startViewChange(view+1, true)
}
