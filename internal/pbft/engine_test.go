package pbft

import (
	"fmt"
	"math/rand"
	"testing"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

func TestNewEngineValidation(t *testing.T) {
	kp := crypto.MustGenerateKeyPair(0)
	reg := crypto.NewRegistry(kp)
	tests := []struct {
		name string
		cfg  Config
		kp   *crypto.KeyPair
	}{
		{"too few replicas", Config{ID: 0, Replicas: []crypto.NodeID{0, 1, 2}}, kp},
		{"id not in set", Config{ID: 9, Replicas: []crypto.NodeID{0, 1, 2, 3}}, kp},
		{"wrong key", Config{ID: 1, Replicas: []crypto.NodeID{0, 1, 2, 3}}, kp},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEngine(tt.cfg, tt.kp, reg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestStartAnnouncesInitialPrimary(t *testing.T) {
	c := newCluster(t, 4, nil)
	for _, id := range c.ids {
		nps := c.newPrimaries[id]
		if len(nps) != 1 || nps[0].View != 0 || nps[0].Primary != 0 {
			t.Errorf("replica %v initial primary = %+v", id, nps)
		}
	}
}

func TestNormalCaseSingleRequest(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(0, "speed=100")
	c.run()
	c.assertAllDelivered("speed=100")
	c.assertAgreement()
	for _, id := range c.ids {
		if got := c.delivered[id][0].Seq; got != 1 {
			t.Errorf("replica %v seq = %d, want 1", id, got)
		}
		if got := c.delivered[id][0].Req.Origin; got != 0 {
			t.Errorf("replica %v origin = %v, want r0", id, got)
		}
	}
}

func TestNormalCaseManyRequestsInOrder(t *testing.T) {
	c := newCluster(t, 4, nil)
	var want []string
	for i := 0; i < 9; i++ { // below checkpoint interval
		p := fmt.Sprintf("cycle-%02d", i)
		want = append(want, p)
		c.propose(0, p)
	}
	c.run()
	c.assertAllDelivered(want...)
	c.assertAgreement()
}

func TestProposeOnBackupIsNoop(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(1, "from-backup")
	c.run()
	for _, id := range c.ids {
		if len(c.delivered[id]) != 0 {
			t.Errorf("replica %v delivered %d requests", id, len(c.delivered[id]))
		}
	}
}

func TestCheckpointBecomesStable(t *testing.T) {
	c := newCluster(t, 4, nil)
	for i := 0; i < int(DefaultCheckpointInterval); i++ {
		c.propose(0, fmt.Sprintf("r%d", i))
	}
	c.run()
	for _, id := range c.ids {
		proofs := c.stable[id]
		if len(proofs) != 1 {
			t.Fatalf("replica %v stable checkpoints = %d, want 1", id, len(proofs))
		}
		p := proofs[0]
		if p.Seq != DefaultCheckpointInterval {
			t.Errorf("replica %v stable seq = %d", id, p.Seq)
		}
		if err := p.Verify(c.reg, 3); err != nil {
			t.Errorf("replica %v stable proof invalid: %v", id, err)
		}
		if len(p.Checkpoints) < 3 {
			t.Errorf("replica %v proof has %d signatures", id, len(p.Checkpoints))
		}
	}
}

func TestWatermarkBackpressureAndDrain(t *testing.T) {
	c := newCluster(t, 4, nil)
	// Window = 2 * interval = 20. Propose 30 without running the queue
	// in between: the last 10 must wait for a stable checkpoint.
	var want []string
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("r%02d", i)
		want = append(want, p)
		c.propose(0, p)
	}
	c.run() // ordering + checkpoints free space and drain the queue
	c.assertAllDelivered(want...)
	c.assertAgreement()
	for _, id := range c.ids {
		if got := len(c.stable[id]); got != 3 {
			t.Errorf("replica %v stable checkpoints = %d, want 3", id, got)
		}
	}
}

func TestLogGarbageCollectedAfterStable(t *testing.T) {
	c := newCluster(t, 4, nil)
	for i := 0; i < 10; i++ {
		c.propose(0, fmt.Sprintf("r%d", i))
	}
	c.run()
	for _, id := range c.ids {
		e := c.engines[id]
		if len(e.log) != 0 {
			t.Errorf("replica %v retains %d log instances after stable checkpoint", id, len(e.log))
		}
		if e.lowWater != 10 {
			t.Errorf("replica %v lowWater = %d", id, e.lowWater)
		}
	}
}

func TestViewChangeElectsNextPrimary(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.suspect(1, 2, 3)
	c.run()
	for _, id := range c.ids {
		e := c.engines[id]
		if e.View() != 1 {
			t.Errorf("replica %v view = %d, want 1", id, e.View())
		}
		if e.Primary() != 1 {
			t.Errorf("replica %v primary = %v, want r1", id, e.Primary())
		}
		nps := c.newPrimaries[id]
		last := nps[len(nps)-1]
		if last.View != 1 || last.Primary != 1 {
			t.Errorf("replica %v last NewPrimary = %+v", id, last)
		}
	}
}

func TestViewChangeByFPlusOneJoin(t *testing.T) {
	c := newCluster(t, 4, nil)
	// Only f+1 = 2 replicas suspect; the rest must join via the f+1 rule
	// and the view change must complete.
	c.suspect(1, 2)
	c.run()
	for _, id := range c.ids {
		if got := c.engines[id].View(); got != 1 {
			t.Errorf("replica %v view = %d, want 1", id, got)
		}
	}
}

func TestSingleSuspectDoesNotChangeView(t *testing.T) {
	c := newCluster(t, 4, nil)
	// One faulty replica suspecting alone (fault (v) of §III-C) must not
	// move the view: f+1 are required.
	c.suspect(3)
	c.run()
	for _, id := range c.ids {
		if got := c.engines[id].View(); got != 0 {
			t.Errorf("replica %v view = %d, want 0", id, got)
		}
	}
}

func TestSuspectNonPrimaryIsNoop(t *testing.T) {
	c := newCluster(t, 4, nil)
	for _, id := range c.ids {
		c.handle(id, c.engines[id].Suspect(2)) // r2 is not the primary
	}
	c.run()
	for _, id := range c.ids {
		if got := c.engines[id].View(); got != 0 {
			t.Errorf("replica %v view = %d, want 0", id, got)
		}
	}
}

func TestPreparedRequestSurvivesViewChange(t *testing.T) {
	c := newCluster(t, 4, nil)
	// Let the request reach prepared everywhere but block all commits, so
	// no replica executes before the view change.
	c.filter = func(p packet) bool {
		msg, err := unmarshalPacket(p)
		if err != nil {
			return true
		}
		_, isCommit := msg.(*Commit)
		return !isCommit
	}
	req := c.propose(0, "must-survive")
	c.run()

	for _, id := range c.ids {
		if len(c.delivered[id]) != 0 {
			t.Fatalf("replica %v delivered before view change", id)
		}
	}

	c.filter = nil
	c.suspect(1, 2, 3)
	c.run()

	c.assertAllDelivered("must-survive")
	c.assertAgreement()
	for _, id := range c.ids {
		d := c.delivered[id][0]
		if d.Seq != 1 || d.Req.Digest() != req.Digest() {
			t.Errorf("replica %v delivered seq %d digest %s", id, d.Seq, d.Req.Digest().Short())
		}
	}
}

func TestNewPrimaryContinuesOrdering(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(0, "before")
	c.run()
	c.suspect(1, 2, 3)
	c.run()
	c.propose(1, "after") // r1 is the new primary
	c.run()
	c.assertAllDelivered("before", "after")
	c.assertAgreement()
}

func TestViewChangeTimerEscalation(t *testing.T) {
	c := newCluster(t, 4, nil)
	// The new primary r1 is also dead: drop everything it sends. The view
	// change to view 1 cannot complete; firing the progress timers must
	// escalate to view 2 (primary r2).
	c.filter = func(p packet) bool { return p.from != 1 }
	c.suspect(0, 2, 3)
	c.run()
	for _, id := range []crypto.NodeID{0, 2, 3} {
		if c.engines[id].View() == 1 {
			t.Fatalf("replica %v entered view 1 despite dead primary", id)
		}
	}
	c.fireViewTimer(0)
	c.fireViewTimer(2)
	c.fireViewTimer(3)
	c.run()
	for _, id := range []crypto.NodeID{0, 2, 3} {
		e := c.engines[id]
		if e.View() != 2 || e.Primary() != 2 {
			t.Errorf("replica %v view=%d primary=%v, want view 2 primary r2", id, e.View(), e.Primary())
		}
	}
	// Ordering must work in view 2 with only 3 live replicas (f=1).
	c.propose(2, "in-view-2")
	c.run()
	for _, id := range []crypto.NodeID{0, 2, 3} {
		if len(c.delivered[id]) != 1 || string(c.delivered[id][0].Req.Payload) != "in-view-2" {
			t.Errorf("replica %v deliveries = %+v", id, c.delivered[id])
		}
	}
	c.assertAgreement()
}

func TestEquivocatingPrimaryCannotSplitCluster(t *testing.T) {
	c := newCluster(t, 4, nil)
	// A Byzantine primary sends conflicting preprepares for seq 1: "A" to
	// r1, "B" to r2 and r3. No matter the schedule, at most one of them
	// may ever be delivered (n=4 cannot commit both).
	reqA := Request{Payload: []byte("A")}
	SignRequest(&reqA, c.kps[0])
	reqB := Request{Payload: []byte("B")}
	SignRequest(&reqB, c.kps[0])

	mk := func(req Request) *PrePrepare {
		pp := &PrePrepare{View: 0, Seq: 1, Req: req, Replica: 0}
		sign(pp, c.kps[0])
		return pp
	}
	c.handle(1, c.engines[1].Receive(0, mk(reqA)))
	c.handle(2, c.engines[2].Receive(0, mk(reqB)))
	c.handle(3, c.engines[3].Receive(0, mk(reqB)))
	c.run()
	c.assertAgreement()

	// "A" can never be committed: at most 1 backup prepared it.
	for _, id := range c.ids {
		for _, d := range c.delivered[id] {
			if string(d.Req.Payload) == "A" {
				t.Errorf("replica %v delivered the minority branch", id)
			}
		}
	}
}

func TestReceiveRejectsForgedSender(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := Request{Payload: []byte("x")}
	SignRequest(&req, c.kps[0])
	pp := &PrePrepare{View: 0, Seq: 1, Req: req, Replica: 0}
	sign(pp, c.kps[0])
	// Replayed by r3 claiming its own channel: signer (r0) != from (r3).
	c.handle(1, c.engines[1].Receive(3, pp))
	c.run()
	if len(c.delivered[1]) != 0 {
		t.Error("forged-sender message was processed")
	}
	// Legit delivery from r0 still works.
	c.handle(1, c.engines[1].Receive(0, pp))
	c.run()
	c.assertAgreement()
}

func TestReceiveRejectsBadSignature(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := Request{Payload: []byte("x")}
	SignRequest(&req, c.kps[0])
	pp := &PrePrepare{View: 0, Seq: 1, Req: req, Replica: 0}
	sign(pp, c.kps[0])
	pp.Seq = 2 // invalidates the signature
	c.handle(1, c.engines[1].Receive(0, pp))
	c.run()
	inst, ok := c.engines[1].log[2]
	if ok && inst.preprepare != nil {
		t.Error("tampered preprepare accepted")
	}
}

func TestReceiveRejectsBadRequestSignature(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := Request{Payload: []byte("x"), Origin: 0, Sig: make([]byte, crypto.SignatureSize)}
	pp := &PrePrepare{View: 0, Seq: 1, Req: req, Replica: 0}
	sign(pp, c.kps[0]) // valid outer signature, invalid inner request sig
	c.handle(1, c.engines[1].Receive(0, pp))
	c.run()
	if len(c.delivered[1]) != 0 {
		t.Error("request with invalid origin signature processed")
	}
}

func TestPrePrepareFromNonPrimaryRejected(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := Request{Payload: []byte("x")}
	SignRequest(&req, c.kps[2])
	pp := &PrePrepare{View: 0, Seq: 1, Req: req, Replica: 2}
	sign(pp, c.kps[2])
	c.handle(1, c.engines[1].Receive(2, pp))
	c.run()
	for _, id := range c.ids {
		if len(c.delivered[id]) != 0 {
			t.Error("backup's preprepare was ordered")
		}
	}
}

func TestOutOfWatermarkPrePrepareRejected(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := Request{Payload: []byte("x")}
	SignRequest(&req, c.kps[0])
	pp := &PrePrepare{View: 0, Seq: 999, Req: req, Replica: 0}
	sign(pp, c.kps[0])
	c.handle(1, c.engines[1].Receive(0, pp))
	c.run()
	if _, ok := c.engines[1].log[999]; ok {
		t.Error("out-of-watermark preprepare accepted")
	}
}

func TestLaggingReplicaStateTransfer(t *testing.T) {
	c := newCluster(t, 4, nil)
	// r3 misses all ordering traffic for a full checkpoint interval.
	c.filter = func(p packet) bool {
		if p.to != 3 {
			return true
		}
		msg, err := unmarshalPacket(p)
		if err != nil {
			return true
		}
		switch msg.(type) {
		case *PrePrepare, *Prepare, *Commit:
			return false
		}
		return true
	}
	for i := 0; i < 10; i++ {
		c.propose(0, fmt.Sprintf("r%d", i))
	}
	c.run()

	// r3 received only checkpoint messages; with 2f+1 = 3 from the others
	// the checkpoint still becomes stable on r3, which must then ask for
	// a state transfer.
	if len(c.transfers[3]) == 0 {
		t.Fatal("lagging replica did not request state transfer")
	}
	tr := c.transfers[3][0]
	if tr.TargetSeq != 10 {
		t.Errorf("state transfer target = %d, want 10", tr.TargetSeq)
	}
	if c.engines[3].Executed() != 10 {
		t.Errorf("executed = %d after adopting stable checkpoint", c.engines[3].Executed())
	}
	// And ordering continues including r3.
	c.filter = nil
	c.propose(0, "next")
	c.run()
	if len(c.delivered[3]) == 0 || string(c.delivered[3][len(c.delivered[3])-1].Req.Payload) != "next" {
		t.Error("recovered replica did not resume ordering")
	}
	c.assertAgreement()
}

func TestDivergentStateDetected(t *testing.T) {
	c := newCluster(t, 4, nil)
	// r2 computes a wrong block digest (bit rot / arbitrary fault).
	c.digestFn[2] = func(seq uint64) crypto.Digest { return crypto.Hash([]byte("corrupt")) }
	for i := 0; i < 10; i++ {
		c.propose(0, fmt.Sprintf("r%d", i))
	}
	c.run()
	if len(c.transfers[2]) == 0 {
		t.Fatal("divergent replica did not detect its corruption")
	}
	// The other replicas still reached a stable checkpoint.
	for _, id := range []crypto.NodeID{0, 1, 3} {
		if len(c.stable[id]) != 1 {
			t.Errorf("replica %v stable checkpoints = %d", id, len(c.stable[id]))
		}
	}
}

func TestRandomScheduleSafetyProperty(t *testing.T) {
	// Under arbitrary message loss and reordering, delivered requests must
	// agree per sequence number across replicas. 20 randomized schedules.
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := newCluster(t, 4, nil)
			c.filter = func(p packet) bool { return rng.Float64() > 0.2 } // 20% loss
			for i := 0; i < 25; i++ {
				c.propose(0, fmt.Sprintf("req-%02d", i))
				// Shuffle pending packets to model reordering.
				rng.Shuffle(len(c.queue), func(a, b int) {
					c.queue[a], c.queue[b] = c.queue[b], c.queue[a]
				})
				c.run()
			}
			c.assertAgreement()
		})
	}
}

func unmarshalPacket(p packet) (any, error) {
	return wire.Unmarshal(p.data)
}

// TestSevenReplicaCluster exercises the quorum arithmetic at n=7, f=2:
// ordering succeeds with two replicas silenced, and a view change needs
// f+1=3 suspects.
func TestSevenReplicaCluster(t *testing.T) {
	c := newCluster(t, 7, nil)
	if got := c.engines[0].cfg.F(); got != 2 {
		t.Fatalf("F() = %d, want 2", got)
	}
	if got := c.engines[0].cfg.Quorum(); got != 5 {
		t.Fatalf("Quorum() = %d, want 5", got)
	}

	// Silence f=2 replicas entirely.
	c.filter = func(p packet) bool { return p.to != 5 && p.to != 6 && p.from != 5 && p.from != 6 }
	for i := 0; i < 12; i++ {
		c.propose(0, fmt.Sprintf("r%02d", i))
	}
	c.run()
	for _, id := range c.ids[:5] {
		if got := len(c.delivered[id]); got != 12 {
			t.Errorf("replica %v delivered %d of 12", id, got)
		}
	}
	c.assertAgreement()

	// Checkpoints stabilize with 2f+1 = 5 signatures.
	if got := len(c.stable[0]); got != 1 {
		t.Fatalf("stable checkpoints = %d", got)
	}
	if err := c.stable[0][0].Verify(c.reg, 5); err != nil {
		t.Errorf("proof: %v", err)
	}

	// f=2 suspects are not enough for a view change; f+1=3 are.
	c.suspect(1, 2)
	c.run()
	if got := c.engines[1].View(); got != 0 {
		t.Fatalf("view changed with only f suspects (view %d)", got)
	}
	c.suspect(3)
	c.run()
	for _, id := range c.ids[:5] {
		if got := c.engines[id].View(); got != 1 {
			t.Errorf("replica %v view = %d, want 1", id, got)
		}
	}
	c.assertAgreement()
}

// TestRandomScheduleSafetySevenNodes repeats the randomized-safety property
// at n=7 with up to 30% message loss.
func TestRandomScheduleSafetySevenNodes(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := newCluster(t, 7, nil)
			c.filter = func(p packet) bool { return rng.Float64() > 0.3 }
			for i := 0; i < 15; i++ {
				c.propose(0, fmt.Sprintf("req-%02d", i))
				rng.Shuffle(len(c.queue), func(a, b int) {
					c.queue[a], c.queue[b] = c.queue[b], c.queue[a]
				})
				c.run()
			}
			c.assertAgreement()
		})
	}
}
