package pbft

import (
	"fmt"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// signable is implemented by every PBFT message: the signature covers the
// wire encoding with the Sig field emptied.
type signable interface {
	wire.Message
	signer() crypto.NodeID
	signature() []byte
	setSignature(sig []byte)
}

func (m *PrePrepare) signer() crypto.NodeID   { return m.Replica }
func (m *PrePrepare) signature() []byte       { return m.Sig }
func (m *PrePrepare) setSignature(sig []byte) { m.Sig = sig }

func (m *Prepare) signer() crypto.NodeID   { return m.Replica }
func (m *Prepare) signature() []byte       { return m.Sig }
func (m *Prepare) setSignature(sig []byte) { m.Sig = sig }

func (m *Commit) signer() crypto.NodeID   { return m.Replica }
func (m *Commit) signature() []byte       { return m.Sig }
func (m *Commit) setSignature(sig []byte) { m.Sig = sig }

func (m *Checkpoint) signer() crypto.NodeID   { return m.Replica }
func (m *Checkpoint) signature() []byte       { return m.Sig }
func (m *Checkpoint) setSignature(sig []byte) { m.Sig = sig }

func (m *ViewChange) signer() crypto.NodeID   { return m.Replica }
func (m *ViewChange) signature() []byte       { return m.Sig }
func (m *ViewChange) setSignature(sig []byte) { m.Sig = sig }

func (m *NewView) signer() crypto.NodeID   { return m.Replica }
func (m *NewView) signature() []byte       { return m.Sig }
func (m *NewView) setSignature(sig []byte) { m.Sig = sig }

// signingBytes encodes m with an empty signature field.
func signingBytes(m signable) []byte {
	saved := m.signature()
	m.setSignature(nil)
	e := wire.NewEncoder(256)
	e.Uint16(uint16(m.WireType()))
	m.EncodeWire(e)
	m.setSignature(saved)
	out := make([]byte, e.Len())
	copy(out, e.Data())
	return out
}

// sign fills in the message signature using kp, which must belong to the
// message's declared sender.
func sign(m signable, kp *crypto.KeyPair) {
	m.setSignature(kp.Sign(signingBytes(m)))
}

// verify checks the message signature against the registry.
func verify(m signable, reg *crypto.Registry) error {
	return reg.Verify(m.signer(), signingBytes(m), m.signature())
}

// verifyCheckpointSet validates a set of checkpoint messages as a stable
// checkpoint proof for (seq, digest): at least quorum messages from distinct
// replicas, each matching and correctly signed.
func verifyCheckpointSet(seq uint64, digest crypto.Digest, cps []Checkpoint, reg *crypto.Registry, quorum int) error {
	if seq == 0 {
		// Genesis: the empty chain needs no proof.
		return nil
	}
	seen := make(map[crypto.NodeID]bool, len(cps))
	valid := 0
	for i := range cps {
		c := &cps[i]
		if c.Seq != seq || c.StateDigest != digest {
			return fmt.Errorf("pbft: checkpoint from %v does not match (seq %d vs %d)", c.Replica, c.Seq, seq)
		}
		if seen[c.Replica] {
			return fmt.Errorf("pbft: duplicate checkpoint signer %v", c.Replica)
		}
		seen[c.Replica] = true
		if err := verify(c, reg); err != nil {
			return fmt.Errorf("pbft: checkpoint proof: %w", err)
		}
		valid++
	}
	if valid < quorum {
		return fmt.Errorf("pbft: checkpoint proof has %d signatures, need %d", valid, quorum)
	}
	return nil
}
