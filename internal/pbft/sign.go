package pbft

import (
	"fmt"
	"sync"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// signable is implemented by every PBFT message: the signature covers the
// wire encoding with the Sig field emptied.
//
// Encoding invariant: Sig MUST be the final field of every signable's wire
// encoding (written with Encoder.Bytes). signingBytesInto relies on it to
// derive the signing bytes from a full encoding by rewriting the signature
// tail in place, and signedBroadcast relies on it to derive the broadcast
// encoding from the signing bytes. TestSigningBytesMatchesReference guards
// the invariant for every message type.
type signable interface {
	wire.Message
	signer() crypto.NodeID
	signature() []byte
	setSignature(sig []byte)
}

func (m *PrePrepare) signer() crypto.NodeID   { return m.Replica }
func (m *PrePrepare) signature() []byte       { return m.Sig }
func (m *PrePrepare) setSignature(sig []byte) { m.Sig = sig }

func (m *Prepare) signer() crypto.NodeID   { return m.Replica }
func (m *Prepare) signature() []byte       { return m.Sig }
func (m *Prepare) setSignature(sig []byte) { m.Sig = sig }

func (m *Commit) signer() crypto.NodeID   { return m.Replica }
func (m *Commit) signature() []byte       { return m.Sig }
func (m *Commit) setSignature(sig []byte) { m.Sig = sig }

func (m *Checkpoint) signer() crypto.NodeID   { return m.Replica }
func (m *Checkpoint) signature() []byte       { return m.Sig }
func (m *Checkpoint) setSignature(sig []byte) { m.Sig = sig }

func (m *ViewChange) signer() crypto.NodeID   { return m.Replica }
func (m *ViewChange) signature() []byte       { return m.Sig }
func (m *ViewChange) setSignature(sig []byte) { m.Sig = sig }

func (m *NewView) signer() crypto.NodeID   { return m.Replica }
func (m *NewView) signature() []byte       { return m.Sig }
func (m *NewView) setSignature(sig []byte) { m.Sig = sig }

// encoders pools wire encoders for the signing/verification hot path, so
// steady-state signing-bytes computation allocates nothing.
var encoders = sync.Pool{
	New: func() any { return wire.NewEncoder(512) },
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// signingBytesInto encodes m's signing bytes (the enveloped wire encoding
// with an empty Sig) into e, which is reset first, and returns the encoded
// slice. The result aliases e's buffer: callers must not retain it past the
// next use of e.
//
// Unlike a clear-and-restore implementation this never mutates m: because
// Sig is the final encoded field (see the signable invariant), the signing
// bytes are the full encoding with the signature tail replaced by a zero
// length prefix. That makes concurrent verification of the same message —
// as the VerifyPool's workers do — race-free.
func signingBytesInto(e *wire.Encoder, m signable) []byte {
	e.Reset()
	e.Uint16(uint16(m.WireType()))
	m.EncodeWire(e)
	if sig := m.signature(); len(sig) > 0 {
		e.Truncate(e.Len() - len(sig) - uvarintLen(uint64(len(sig))))
		e.Uvarint(0)
	}
	return e.Data()
}

// signingBytes returns an owned copy of m's signing bytes. Hot paths use
// signingBytesInto with a pooled encoder instead; this helper remains for
// tests and callers that need to retain the slice.
func signingBytes(m signable) []byte {
	e := encoders.Get().(*wire.Encoder)
	b := signingBytesInto(e, m)
	out := make([]byte, len(b))
	copy(out, b)
	encoders.Put(e)
	return out
}

// sign fills in the message signature using kp, which must belong to the
// message's declared sender.
func sign(m signable, kp *crypto.KeyPair) {
	e := encoders.Get().(*wire.Encoder)
	m.setSignature(kp.Sign(signingBytesInto(e, m)))
	encoders.Put(e)
}

// signedBroadcast signs m and returns a BroadcastAction carrying the cached
// wire encoding: after signing, the encoder already holds m's encoding with
// an empty signature tail, so appending the fresh signature yields the exact
// bytes wire.Marshal would produce — without encoding the message a second
// (or, counting the runner's marshal, third) time.
func signedBroadcast(m signable, kp *crypto.KeyPair) BroadcastAction {
	e := encoders.Get().(*wire.Encoder)
	sig := kp.Sign(signingBytesInto(e, m))
	m.setSignature(sig)
	e.Truncate(e.Len() - 1) // drop the empty-signature length byte
	e.Bytes(sig)
	enc := make([]byte, e.Len())
	copy(enc, e.Data())
	encoders.Put(e)
	return BroadcastAction{Msg: m, Encoded: enc}
}

// verify checks the message signature against the registry. Safe to call
// concurrently for the same message: the signing bytes are computed without
// mutating m.
func verify(m signable, reg *crypto.Registry) error {
	e := encoders.Get().(*wire.Encoder)
	err := reg.Verify(m.signer(), signingBytesInto(e, m), m.signature())
	encoders.Put(e)
	return err
}

// preVerify performs the expensive Ed25519 checks for an inbound message
// without touching engine state: the envelope signature plus, for
// preprepares, the embedded request signature — and, for batch requests,
// every inner record signature, so a batched proposal reaching the event
// loop is already known to carry only authenticated records. It is what the
// runner runs on the VerifyPool's workers; Engine.ReceiveVerified then skips
// exactly these checks. pool, when non-nil, lets a large batched proposal's
// inner-signature work spread across the remaining workers (see
// VerifyRequestDeep). Callers must own m (no concurrent mutation), but m
// itself is never mutated here.
func preVerify(m signable, reg *crypto.Registry, pool *crypto.VerifyPool) error {
	if err := verify(m, reg); err != nil {
		return err
	}
	if pp, ok := m.(*PrePrepare); ok {
		return VerifyRequestDeep(&pp.Req, reg, pool)
	}
	return nil
}

// verifyCheckpointSet validates a set of checkpoint messages as a stable
// checkpoint proof for (seq, digest): at least quorum messages from distinct
// replicas, each matching and correctly signed.
func verifyCheckpointSet(seq uint64, digest crypto.Digest, cps []Checkpoint, reg *crypto.Registry, quorum int) error {
	if seq == 0 {
		// Genesis: the empty chain needs no proof.
		return nil
	}
	seen := make(map[crypto.NodeID]bool, len(cps))
	valid := 0
	for i := range cps {
		c := &cps[i]
		if c.Seq != seq || c.StateDigest != digest {
			return fmt.Errorf("pbft: checkpoint from %v does not match (seq %d vs %d)", c.Replica, c.Seq, seq)
		}
		if seen[c.Replica] {
			return fmt.Errorf("pbft: duplicate checkpoint signer %v", c.Replica)
		}
		seen[c.Replica] = true
		if err := verify(c, reg); err != nil {
			return fmt.Errorf("pbft: checkpoint proof: %w", err)
		}
		valid++
	}
	if valid < quorum {
		return fmt.Errorf("pbft: checkpoint proof has %d signatures, need %d", valid, quorum)
	}
	return nil
}
