// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov, OSDI'99) as the ordering core of ZugChain: the three-phase
// preprepare/prepare/commit protocol, per-block checkpointing, and the view
// change subprotocol. The engine exposes the interface of Table I of the
// paper — PROPOSE and SUSPECT down-calls, DECIDE (DeliverAction) and
// NEWPRIMARY (NewPrimaryAction) up-calls — so the ZugChain communication
// layer can implement primary-aware filtering and censorship detection on
// top of it.
//
// The engine is a pure, single-threaded state machine: all inputs are method
// calls, all outputs are Actions. The Runner (runner.go) pumps it against a
// transport and a clock.
package pbft

import (
	"fmt"

	"zugchain/internal/crypto"
	"zugchain/internal/wire"
)

// DefaultCheckpointInterval matches the paper's evaluation setup: a block —
// and therefore a checkpoint — every 10 requests.
const DefaultCheckpointInterval = 10

// Config parameterizes an Engine.
type Config struct {
	// ID is this replica.
	ID crypto.NodeID
	// Replicas lists all replica IDs in ascending order; the primary of
	// view v is Replicas[v mod n].
	Replicas []crypto.NodeID
	// CheckpointInterval is the number of delivered requests per
	// checkpoint; ZugChain creates one block per checkpoint (§III-C).
	CheckpointInterval uint64
	// WatermarkWindow bounds how far ordering may run ahead of the last
	// stable checkpoint. Defaults to two checkpoint intervals.
	WatermarkWindow uint64
}

func (c *Config) applyDefaults() {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = DefaultCheckpointInterval
	}
	if c.WatermarkWindow == 0 {
		c.WatermarkWindow = 2 * c.CheckpointInterval
	}
}

// F returns the number of tolerated Byzantine replicas for n = len(Replicas).
func (c *Config) F() int { return (len(c.Replicas) - 1) / 3 }

// Quorum returns the 2f+1 quorum size.
func (c *Config) Quorum() int { return 2*c.F() + 1 }

// instance tracks one sequence number's progress through the three phases.
type instance struct {
	view       uint64
	seq        uint64
	digest     crypto.Digest
	preprepare *PrePrepare
	prepares   map[crypto.NodeID]*Prepare
	commits    map[crypto.NodeID]*Commit
	prepared   bool
	committed  bool
	sentCommit bool
}

// Engine is the PBFT state machine for one replica.
type Engine struct {
	cfg Config
	kp  *crypto.KeyPair
	reg *crypto.Registry

	view     uint64
	nextSeq  uint64 // next sequence number this primary assigns
	lowWater uint64 // last stable checkpoint sequence number
	executed uint64 // last delivered sequence number

	log         map[uint64]*instance
	checkpoints map[uint64]map[crypto.NodeID]*Checkpoint
	myDigests   map[uint64]crypto.Digest // state digests this replica computed
	stable      CheckpointProof

	// certs holds, per sequence number above the low watermark, the
	// prepared certificate from the highest view in which that slot
	// prepared. It is the P set of §4.4: unlike the live instance log —
	// which installNewView discards — certificates must survive view
	// changes until a stable checkpoint covers them, or a second view
	// change could null a slot the quorum already executed.
	certs map[uint64]*PreparedProof

	pendingProposals []Request // proposals waiting for watermark space

	inViewChange bool
	vcs          map[uint64]map[crypto.NodeID]*ViewChange
	sentVCFor    uint64 // highest view this replica sent a ViewChange for
	vcAttempts   int

	// Crash-recovery state (see persist.go). pinned maps slots this
	// replica voted on before a crash to the digest it vouched for (and the
	// strongest vote kind, so rotation snapshots can restate the pin
	// faithfully), valid while view == pinnedView. lastNewView retains the
	// certificate that installed the current view so it can be re-sent to
	// replicas that missed it; helped rate-limits that to once per
	// (peer, view).
	pinned      map[uint64]pin
	pinnedView  uint64
	lastNewView *NewView
	helped      map[crypto.NodeID]uint64
}

// NewEngine creates a PBFT engine. kp must belong to cfg.ID and reg must
// know every replica's public key.
func NewEngine(cfg Config, kp *crypto.KeyPair, reg *crypto.Registry) (*Engine, error) {
	cfg.applyDefaults()
	if len(cfg.Replicas) < 4 {
		return nil, fmt.Errorf("pbft: need at least 4 replicas for f>=1, got %d", len(cfg.Replicas))
	}
	found := false
	for _, id := range cfg.Replicas {
		if id == cfg.ID {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pbft: local id %v not in replica set", cfg.ID)
	}
	if kp.ID != cfg.ID {
		return nil, fmt.Errorf("pbft: key pair belongs to %v, not %v", kp.ID, cfg.ID)
	}
	return &Engine{
		cfg:         cfg,
		kp:          kp,
		reg:         reg,
		nextSeq:     1,
		log:         make(map[uint64]*instance),
		checkpoints: make(map[uint64]map[crypto.NodeID]*Checkpoint),
		myDigests:   make(map[uint64]crypto.Digest),
		certs:       make(map[uint64]*PreparedProof),
		vcs:         make(map[uint64]map[crypto.NodeID]*ViewChange),
	}, nil
}

// View returns the current view number.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the primary of the current view.
func (e *Engine) Primary() crypto.NodeID { return e.primaryOf(e.view) }

// IsPrimary reports whether this replica is the current primary.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.cfg.ID }

// InViewChange reports whether a view change is in progress.
func (e *Engine) InViewChange() bool { return e.inViewChange }

// Executed returns the last delivered sequence number.
func (e *Engine) Executed() uint64 { return e.executed }

// StableCheckpoint returns the latest stable checkpoint proof; the zero
// proof (Seq 0) represents genesis.
func (e *Engine) StableCheckpoint() CheckpointProof { return e.stable }

func (e *Engine) primaryOf(view uint64) crypto.NodeID {
	return e.cfg.Replicas[view%uint64(len(e.cfg.Replicas))]
}

// Start activates the engine, announcing the initial primary.
func (e *Engine) Start() []Action {
	return []Action{NewPrimaryAction{View: e.view, Primary: e.Primary()}}
}

// Propose is the PROPOSE down-call of Table I: the primary-co-located
// ZugChain layer submits a request for total ordering. On a backup or
// during a view change the call is a no-op; the communication layer's
// timeout machinery covers such requests.
func (e *Engine) Propose(req Request) []Action {
	if !e.IsPrimary() || e.inViewChange {
		return nil
	}
	if e.nextSeq > e.lowWater+e.cfg.WatermarkWindow {
		// Out of watermark space until the next stable checkpoint.
		e.pendingProposals = append(e.pendingProposals, req)
		return nil
	}
	return e.proposeNow(req)
}

func (e *Engine) proposeNow(req Request) []Action {
	seq := e.nextSeq
	e.nextSeq++
	pp := &PrePrepare{
		View:    e.view,
		Seq:     seq,
		Req:     req,
		Replica: e.cfg.ID,
	}
	actions := []Action{signedBroadcast(pp, e.kp)}
	actions = append(actions, e.acceptPrePrepare(pp)...)
	return actions
}

// drainProposals proposes queued requests while watermark space is
// available. Only meaningful on the primary.
func (e *Engine) drainProposals() []Action {
	var actions []Action
	for len(e.pendingProposals) > 0 &&
		e.IsPrimary() && !e.inViewChange &&
		e.nextSeq <= e.lowWater+e.cfg.WatermarkWindow {
		req := e.pendingProposals[0]
		e.pendingProposals = e.pendingProposals[1:]
		actions = append(actions, e.proposeNow(req)...)
	}
	return actions
}

// Suspect is the SUSPECT down-call of Table I: the layer above has evidence
// that the given node — effective only for the current primary — is faulty
// (hard timeout expiry or a duplicate proposal). It triggers a view change.
func (e *Engine) Suspect(id crypto.NodeID) []Action {
	if id != e.Primary() {
		// Only the primary can be voted out; other nodes' faults are
		// masked by the quorum.
		return nil
	}
	if e.sentVCFor > e.view {
		return nil // already changing away from this primary
	}
	return e.startViewChange(e.view+1, false)
}

// Receive processes one signed protocol message from the transport,
// verifying its signature inline. Malformed or unverifiable messages are
// dropped (Byzantine senders gain nothing by sending garbage).
func (e *Engine) Receive(from crypto.NodeID, msg wire.Message) []Action {
	return e.receive(from, msg, false)
}

// ReceiveVerified processes a message whose expensive signature checks —
// the envelope signature and, for preprepares, the embedded request
// signature (see preVerify) — were already performed off the event loop by
// the runner's verification pipeline. The engine still enforces the cheap
// structural checks (sender == signer, views, watermarks) itself, so its
// single-threaded contract and drop semantics are unchanged; only the
// Ed25519 work moved.
func (e *Engine) ReceiveVerified(from crypto.NodeID, msg wire.Message) []Action {
	return e.receive(from, msg, true)
}

func (e *Engine) receive(from crypto.NodeID, msg wire.Message, preVerified bool) []Action {
	s, ok := msg.(signable)
	if !ok {
		return nil
	}
	// The transport-level sender must match the claimed signer; otherwise
	// a faulty node could replay others' messages as its own channel.
	if s.signer() != from {
		return nil
	}
	if !preVerified {
		if err := verify(s, e.reg); err != nil {
			return nil
		}
	}
	switch m := msg.(type) {
	case *PrePrepare:
		return append(e.onPrePrepare(m, preVerified), e.maybeHelp(from, m.View)...)
	case *Prepare:
		return append(e.onPrepare(m), e.maybeHelp(from, m.View)...)
	case *Commit:
		return append(e.onCommit(m), e.maybeHelp(from, m.View)...)
	case *Checkpoint:
		return e.onCheckpoint(m)
	case *ViewChange:
		return e.onViewChange(m)
	case *NewView:
		return e.onNewView(m)
	default:
		return nil
	}
}

// maybeHelp re-sends the NewView certificate that installed the current
// view to a replica still sending phase messages for an older view — the
// situation a crash-restarted replica is in when its WAL predates a view
// change the rest of the cluster completed. The certificate is broadcast
// exactly once when the view forms, so without this resend such a replica
// has no way to obtain it and stalls in its old view forever. The receiver
// validates the certificate like any NewView, so a Byzantine helper gains
// nothing. Rate limited to once per (peer, view).
func (e *Engine) maybeHelp(from crypto.NodeID, msgView uint64) []Action {
	if msgView >= e.view || e.lastNewView == nil || e.lastNewView.View != e.view {
		return nil
	}
	if e.helped == nil {
		e.helped = make(map[crypto.NodeID]uint64)
	}
	if e.helped[from] >= e.view {
		return nil
	}
	e.helped[from] = e.view
	return []Action{SendAction{To: from, Msg: e.lastNewView}}
}

// inWatermarks checks the sequence number bound (lowWater, lowWater+window].
func (e *Engine) inWatermarks(seq uint64) bool {
	return seq > e.lowWater && seq <= e.lowWater+e.cfg.WatermarkWindow
}

func (e *Engine) getInstance(seq uint64) *instance {
	inst, ok := e.log[seq]
	if !ok {
		inst = &instance{
			seq:      seq,
			prepares: make(map[crypto.NodeID]*Prepare),
			commits:  make(map[crypto.NodeID]*Commit),
		}
		e.log[seq] = inst
	}
	return inst
}

func (e *Engine) onPrePrepare(pp *PrePrepare, reqVerified bool) []Action {
	if e.inViewChange || pp.View != e.view || pp.Replica != e.primaryOf(pp.View) {
		return nil
	}
	if !e.inWatermarks(pp.Seq) {
		return nil
	}
	if !reqVerified {
		// Synchronous path (no runner/pool in front): verify on the loop,
		// still batching the inner signatures in one pass.
		if err := VerifyRequestDeep(&pp.Req, e.reg, nil); err != nil {
			return nil
		}
	}
	return e.acceptPrePrepare(pp)
}

// acceptPrePrepare records the proposal and, on backups, answers with a
// Prepare. Shared by the normal path and new-view installation.
func (e *Engine) acceptPrePrepare(pp *PrePrepare) []Action {
	digest := pp.Req.Digest()
	if len(e.pinned) > 0 && pp.View == e.pinnedView {
		// This replica voted on the slot before its last crash; the WAL
		// pinned the digest it vouched for. Accepting anything else would
		// be equivocation, so a conflicting proposal is dropped.
		if p, ok := e.pinned[pp.Seq]; ok && p.digest != digest {
			return nil
		}
	}
	inst := e.getInstance(pp.Seq)
	if inst.preprepare != nil {
		// A second proposal for an occupied slot: equivocation or a
		// retransmit. Either way the first accepted proposal stands.
		return nil
	}
	inst.view = pp.View
	inst.preprepare = pp
	inst.digest = digest

	var actions []Action
	if pp.Replica != e.cfg.ID {
		if !pp.Req.IsNull() {
			// One indication per record: a batched proposal downgrades the
			// soft timeout of every record it carries, exactly as separate
			// proposals would (§III-C optimization).
			for _, pd := range pp.Req.PayloadDigests() {
				actions = append(actions, PrePreparedAction{
					Seq:           pp.Seq,
					PayloadDigest: pd,
				})
			}
		}
		p := &Prepare{
			View:    pp.View,
			Seq:     pp.Seq,
			Digest:  digest,
			Replica: e.cfg.ID,
		}
		bc := signedBroadcast(p, e.kp)
		inst.prepares[e.cfg.ID] = p
		actions = append(actions, bc)
	}
	actions = append(actions, e.checkProgress(inst)...)
	return actions
}

func (e *Engine) onPrepare(p *Prepare) []Action {
	if e.inViewChange || p.View != e.view || !e.inWatermarks(p.Seq) {
		return nil
	}
	if p.Replica == e.primaryOf(p.View) {
		return nil // the primary's preprepare is its prepare
	}
	inst := e.getInstance(p.Seq)
	if _, dup := inst.prepares[p.Replica]; dup {
		return nil
	}
	inst.prepares[p.Replica] = p
	return e.checkProgress(inst)
}

func (e *Engine) onCommit(c *Commit) []Action {
	if e.inViewChange || c.View != e.view || !e.inWatermarks(c.Seq) {
		return nil
	}
	inst := e.getInstance(c.Seq)
	if _, dup := inst.commits[c.Replica]; dup {
		return nil
	}
	inst.commits[c.Replica] = c
	return e.checkProgress(inst)
}

// checkProgress advances an instance through prepared and committed states
// and executes whatever became executable.
func (e *Engine) checkProgress(inst *instance) []Action {
	var actions []Action

	if !inst.prepared && inst.preprepare != nil {
		// prepared: the preprepare plus 2f matching prepares from
		// distinct backups (a backup's own prepare counts).
		matching := 0
		for _, p := range inst.prepares {
			if p.Digest == inst.digest && p.View == inst.view {
				matching++
			}
		}
		if matching >= 2*e.cfg.F() {
			inst.prepared = true
			e.recordPreparedCert(inst)
		}
	}

	if inst.prepared && !inst.sentCommit {
		inst.sentCommit = true
		c := &Commit{
			View:    inst.view,
			Seq:     inst.seq,
			Digest:  inst.digest,
			Replica: e.cfg.ID,
		}
		bc := signedBroadcast(c, e.kp)
		inst.commits[e.cfg.ID] = c
		actions = append(actions, bc)
	}

	if inst.prepared && !inst.committed {
		matching := 0
		for _, c := range inst.commits {
			if c.Digest == inst.digest && c.View == inst.view {
				matching++
			}
		}
		if matching >= e.cfg.Quorum() {
			inst.committed = true
		}
	}

	actions = append(actions, e.tryExecute()...)
	return actions
}

// tryExecute delivers committed requests in sequence order. Checkpoint
// boundaries emit a CheckpointNeededAction so the application can report the
// block digest.
func (e *Engine) tryExecute() []Action {
	var actions []Action
	for {
		inst, ok := e.log[e.executed+1]
		if !ok || !inst.committed {
			break
		}
		e.executed++
		if !inst.preprepare.Req.IsNull() {
			actions = append(actions, DeliverAction{Seq: e.executed, Req: inst.preprepare.Req})
		}
		if e.executed%e.cfg.CheckpointInterval == 0 {
			actions = append(actions, CheckpointNeededAction{Seq: e.executed})
		}
	}
	return actions
}

// Checkpoint is the application's answer to CheckpointNeededAction: the
// state digest (block hash) after executing seq. The engine broadcasts the
// signed checkpoint message and counts it toward stability.
func (e *Engine) Checkpoint(seq uint64, digest crypto.Digest) []Action {
	if seq <= e.lowWater {
		return nil
	}
	e.myDigests[seq] = digest
	c := &Checkpoint{
		Seq:         seq,
		StateDigest: digest,
		Replica:     e.cfg.ID,
	}
	actions := []Action{signedBroadcast(c, e.kp)}
	actions = append(actions, e.addCheckpoint(c)...)
	return actions
}

func (e *Engine) onCheckpoint(c *Checkpoint) []Action {
	if c.Seq <= e.lowWater {
		return nil
	}
	return e.addCheckpoint(c)
}

func (e *Engine) addCheckpoint(c *Checkpoint) []Action {
	byReplica, ok := e.checkpoints[c.Seq]
	if !ok {
		byReplica = make(map[crypto.NodeID]*Checkpoint)
		e.checkpoints[c.Seq] = byReplica
	}
	if _, dup := byReplica[c.Replica]; dup {
		return nil
	}
	byReplica[c.Replica] = c

	// Stability: 2f+1 matching (seq, digest) checkpoint messages.
	count := 0
	for _, other := range byReplica {
		if other.StateDigest == c.StateDigest {
			count++
		}
	}
	if count < e.cfg.Quorum() {
		return nil
	}
	proof := CheckpointProof{Seq: c.Seq, StateDigest: c.StateDigest}
	for _, other := range byReplica {
		if other.StateDigest == c.StateDigest {
			proof.Checkpoints = append(proof.Checkpoints, *other)
		}
	}
	return e.installStable(proof)
}

// installStable advances the low watermark to a newly stable checkpoint,
// garbage-collects the message log, and reports divergence or lag.
func (e *Engine) installStable(proof CheckpointProof) []Action {
	if proof.Seq <= e.lowWater {
		return nil
	}
	var actions []Action
	e.stable = proof
	e.lowWater = proof.Seq

	if mine, ok := e.myDigests[proof.Seq]; ok && mine != proof.StateDigest {
		// The quorum agreed on a different state: this replica's log is
		// corrupt — exactly the arbitrary-fault case ZugChain plans for.
		// Recover the authoritative blocks out of band.
		actions = append(actions, StateTransferNeededAction{
			TargetSeq: proof.Seq, Digest: proof.StateDigest,
		})
		e.executed = proof.Seq
	} else if e.executed < proof.Seq {
		// This replica lagged past a GC boundary; catch up out of band.
		actions = append(actions, StateTransferNeededAction{
			TargetSeq: proof.Seq, Digest: proof.StateDigest,
		})
		e.executed = proof.Seq
	}
	if e.nextSeq <= e.executed {
		e.nextSeq = e.executed + 1
	}

	for seq := range e.log {
		if seq <= proof.Seq {
			delete(e.log, seq)
		}
	}
	for seq := range e.checkpoints {
		if seq < proof.Seq {
			delete(e.checkpoints, seq)
		}
	}
	for seq := range e.myDigests {
		if seq < proof.Seq {
			delete(e.myDigests, seq)
		}
	}
	for seq := range e.certs {
		if seq <= proof.Seq {
			delete(e.certs, seq)
		}
	}

	actions = append(actions, StableCheckpointAction{Proof: proof})
	actions = append(actions, e.drainProposals()...)
	return actions
}
