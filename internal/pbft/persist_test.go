package pbft

import (
	"sync"
	"testing"
	"time"
)

// TestRotationSnapshotKeepsInFlightVotes reproduces the crash window the WAL
// rotation snapshot must cover: votes for slots above a freshly stabilized
// checkpoint are cast before the checkpoint stabilizes, so VoteRecords must
// restate them — and a replica restored from exactly that snapshot must
// refuse a conflicting proposal for those slots.
func TestRotationSnapshotKeepsInFlightVotes(t *testing.T) {
	c := newCluster(t, 4, func(cfg *Config) { cfg.CheckpointInterval = 2 })
	c.propose(0, "a")
	c.propose(0, "b")
	c.run()
	reqC := c.propose(0, "c")
	c.run()

	backup := c.engines[1]
	if got := backup.Executed(); got != 3 {
		t.Fatalf("executed %d, want 3", got)
	}
	if got := backup.StableCheckpoint().Seq; got != 2 {
		t.Fatalf("stable checkpoint at %d, want 2", got)
	}

	recs := backup.VoteRecords()
	if len(recs) == 0 {
		t.Fatal("VoteRecords empty: in-flight votes above the checkpoint lost")
	}
	kinds := make(map[PersistKind]bool)
	for _, r := range recs {
		if r.Seq != 3 {
			t.Errorf("vote record for seq %d, want only in-flight seq 3", r.Seq)
		}
		if r.Digest != reqC.Digest() {
			t.Errorf("vote record digest does not match the voted request")
		}
		kinds[r.Kind] = true
	}
	if !kinds[PersistPrepare] || !kinds[PersistCommit] {
		t.Errorf("vote kinds %v, want prepare and commit", kinds)
	}

	// Crash right after rotation: restore a fresh engine from nothing but
	// the snapshot. An equivocating primary re-proposing seq 3 with a
	// different request must be dropped without a vote.
	restarted, err := NewEngine(Config{ID: 1, Replicas: c.ids, CheckpointInterval: 2}, c.kps[1], c.reg)
	if err != nil {
		t.Fatal(err)
	}
	restarted.Restore(RestoredState{
		View:   0,
		Stable: backup.StableCheckpoint(),
		Pinned: recs,
	})

	evil := Request{Payload: []byte("evil")}
	SignRequest(&evil, c.kps[0])
	pp := &PrePrepare{View: 0, Seq: 3, Req: evil, Replica: 0}
	sign(pp, c.kps[0])
	if actions := restarted.Receive(0, pp); len(actions) != 0 {
		t.Fatalf("restarted replica reacted to a conflicting proposal for a pinned slot: %v", actions)
	}

	// The original proposal is accepted and re-voted (harmless retransmit).
	orig := &PrePrepare{View: 0, Seq: 3, Req: reqC, Replica: 0}
	sign(orig, c.kps[0])
	foundPrepare := false
	for _, a := range restarted.Receive(0, orig) {
		if bc, ok := a.(BroadcastAction); ok {
			if p, ok := bc.Msg.(*Prepare); ok && p.Seq == 3 && p.Digest == reqC.Digest() {
				foundPrepare = true
			}
		}
	}
	if !foundPrepare {
		t.Error("restarted replica did not re-vote the pinned digest")
	}
}

// TestPreparedCertRestoredIntoViewChange: a prepared certificate persisted
// pre-crash must survive the encode/restore round trip and back the
// restarted replica's ViewChange — otherwise two overlapping crash-restarts
// during a view change could form a NewView that nulls an executed slot.
func TestPreparedCertRestoredIntoViewChange(t *testing.T) {
	c := newCluster(t, 4, nil)
	req := c.propose(0, "a")
	c.run()

	cert := c.engines[1].PreparedCert(1)
	if cert == nil {
		t.Fatal("no prepared certificate recorded for seq 1")
	}
	decoded, err := DecodePreparedProof(EncodePreparedProof(cert))
	if err != nil {
		t.Fatal(err)
	}

	restarted, err := NewEngine(Config{ID: 1, Replicas: c.ids}, c.kps[1], c.reg)
	if err != nil {
		t.Fatal(err)
	}
	restarted.Restore(RestoredState{Certs: []PreparedProof{decoded}})
	if restarted.PreparedCert(1) == nil {
		t.Fatal("restored engine dropped a valid prepared certificate")
	}

	actions := restarted.Suspect(restarted.Primary())
	var vc *ViewChange
	for _, a := range actions {
		if bc, ok := a.(BroadcastAction); ok {
			if m, ok := bc.Msg.(*ViewChange); ok {
				vc = m
			}
		}
	}
	if vc == nil {
		t.Fatal("no ViewChange broadcast after Suspect")
	}
	found := false
	for i := range vc.Prepared {
		p := &vc.Prepared[i]
		if p.PrePrepare.Seq == 1 && p.PrePrepare.Req.Digest() == req.Digest() {
			found = true
		}
	}
	if !found {
		t.Error("restarted replica's ViewChange omits the slot it prepared pre-crash")
	}
}

// TestRestoreRejectsTamperedPreparedCert: disk contents are not implicitly
// trusted — a certificate whose prepare quorum was stripped must not enter
// the restored P set.
func TestRestoreRejectsTamperedPreparedCert(t *testing.T) {
	c := newCluster(t, 4, nil)
	c.propose(0, "a")
	c.run()

	cert := *c.engines[1].PreparedCert(1)
	cert.Prepares = cert.Prepares[:1] // below the 2f quorum

	restarted, err := NewEngine(Config{ID: 1, Replicas: c.ids}, c.kps[1], c.reg)
	if err != nil {
		t.Fatal(err)
	}
	restarted.Restore(RestoredState{Certs: []PreparedProof{cert}})
	if restarted.PreparedCert(1) != nil {
		t.Fatal("restored engine accepted a certificate without a 2f prepare quorum")
	}
}

// capturePersister records every persisted batch for inspection.
type capturePersister struct {
	mu   sync.Mutex
	recs []PersistRecord
}

func (p *capturePersister) Persist(recs []PersistRecord) error {
	p.mu.Lock()
	p.recs = append(p.recs, recs...)
	p.mu.Unlock()
	return nil
}

func (p *capturePersister) snapshot() []PersistRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PersistRecord, len(p.recs))
	copy(out, p.recs)
	return out
}

// TestRunnerPersistsPreparedCertificates: the moment a backup sends its
// Commit, the persisted batch must carry the full prepared certificate.
func TestRunnerPersistsPreparedCertificates(t *testing.T) {
	rc := newRunnerCluster(t, 4, time.Second)
	req := Request{Payload: []byte("x")}
	SignRequest(&req, rc.kps[0])
	rc.runners[0].Propose(req)
	for _, id := range rc.ids {
		rc.apps[id].waitDeliveries(t, 1)
	}

	recs := rc.persisters[1].snapshot()
	var cert *PersistRecord
	sawCommit := false
	for i := range recs {
		switch {
		case recs[i].Kind == PersistPreparedCert && recs[i].Seq == 1:
			cert = &recs[i]
		case recs[i].Kind == PersistCommit && recs[i].Seq == 1:
			sawCommit = true
		}
	}
	if !sawCommit {
		t.Fatal("no commit persisted for seq 1")
	}
	if cert == nil {
		t.Fatal("commit persisted without its prepared certificate")
	}
	proof, err := DecodePreparedProof(cert.Data)
	if err != nil {
		t.Fatalf("persisted certificate does not decode: %v", err)
	}
	if proof.PrePrepare.Seq != 1 || proof.PrePrepare.Req.Digest() != req.Digest() {
		t.Error("persisted certificate is for the wrong proposal")
	}
	if len(proof.Prepares) < 2 {
		t.Errorf("persisted certificate has %d prepares, want at least 2f=2", len(proof.Prepares))
	}
}
