package pbft

import (
	"sync"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/obsv"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// Application receives the engine's up-calls. All methods are invoked from
// the runner's event loop; implementations may call back into the Runner
// (Propose, Suspect, ...) freely — those calls enqueue and never block.
type Application interface {
	// Deliver is the DECIDE up-call: req was totally ordered at seq.
	Deliver(seq uint64, req Request)
	// CheckpointDigest must return the application state digest after
	// executing seq — in ZugChain, the hash of the block ending at seq.
	CheckpointDigest(seq uint64) crypto.Digest
	// StableCheckpoint reports a checkpoint that gathered 2f+1 signatures.
	StableCheckpoint(proof CheckpointProof)
	// NewPrimary is the NEWPRIMARY up-call after a view becomes active.
	NewPrimary(view uint64, primary crypto.NodeID)
	// StateTransferNeeded reports that this replica must fetch blocks up
	// to seq out of band.
	StateTransferNeeded(seq uint64, digest crypto.Digest)
}

// PrePrepareObserver is an optional extension of Application: when the
// application implements it, the runner reports accepted preprepares so the
// communication layer can downgrade soft timeouts (§III-C optimization).
type PrePrepareObserver interface {
	OnPrePrepared(seq uint64, payloadDigest crypto.Digest)
}

// RunnerConfig parameterizes a Runner.
type RunnerConfig struct {
	// BaseViewTimeout is the view-change progress timeout; it doubles per
	// escalation attempt (capped at 10 doublings).
	BaseViewTimeout time.Duration
	// VerifyPool, when non-nil, runs inbound signature checks on the
	// pool's workers so the event loop only ever sees pre-verified
	// messages (Engine.ReceiveVerified). With a nil pool verification
	// happens on the transport's delivery goroutine — still off the event
	// loop, just without cross-message parallelism.
	VerifyPool *crypto.VerifyPool
	// Persister, when non-nil, receives the durable protocol records of
	// each action batch before any of its messages are sent (the
	// Castro–Liskov log-before-send rule). A persist failure permanently
	// mutes the replica's outbound protocol traffic: it keeps receiving
	// and delivering, but a replica that cannot log its votes must not
	// cast them.
	Persister Persister
	// Tracer, when non-nil, receives slot-level lifecycle stamps (the
	// preprepare/prepared/committed transitions of each agreement slot) for
	// the observability layer. Nil disables the stamps.
	Tracer *obsv.Tracer
	// Journal, when non-nil, records consensus events (view changes,
	// primary elections, persist failures) for /eventz.
	Journal *obsv.Journal
}

// Runner owns an Engine and pumps it: inbound transport messages, local
// commands, and timer events are serialized into engine calls, and the
// resulting actions are executed. It is the only goroutine touching the
// engine, preserving the engine's single-threaded contract.
type Runner struct {
	engine *Engine
	tr     transport.Transport
	clk    clock.Clock
	app    Application
	cfg    RunnerConfig

	mu     sync.Mutex
	queue  []func() []Action
	wake   chan struct{}
	closed bool

	stop sync.Once
	quit chan struct{}
	done chan struct{}

	viewTimer     clock.Timer
	viewTimerView uint64

	persistBroken bool // sticky: a Persist failure mutes outbound sends
}

// NewRunner wires an engine to a transport, clock, and application.
func NewRunner(engine *Engine, tr transport.Transport, clk clock.Clock, app Application, cfg RunnerConfig) *Runner {
	if cfg.BaseViewTimeout <= 0 {
		cfg.BaseViewTimeout = 500 * time.Millisecond
	}
	r := &Runner{
		engine: engine,
		tr:     tr,
		clk:    clk,
		app:    app,
		cfg:    cfg,
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	tr.SetHandler(r.onMessage)
	return r
}

// Start launches the event loop and announces the initial primary.
func (r *Runner) Start() {
	r.enqueue(func() []Action { return r.engine.Start() })
	go r.loop()
}

// Stop terminates the event loop and waits for it to exit.
func (r *Runner) Stop() {
	r.stop.Do(func() {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		close(r.quit)
	})
	<-r.done
}

// Propose submits a request for ordering (PROPOSE down-call). Never blocks.
func (r *Runner) Propose(req Request) {
	r.enqueue(func() []Action { return r.engine.Propose(req) })
}

// Suspect reports the given node as faulty (SUSPECT down-call). Never blocks.
func (r *Runner) Suspect(id crypto.NodeID) {
	r.enqueue(func() []Action { return r.engine.Suspect(id) })
}

// Engine returns the underlying engine. Callers must only use it from
// Application callbacks (which run on the event loop) or via Inspect.
func (r *Runner) Engine() *Engine { return r.engine }

// Inspect runs f on the event loop with exclusive engine access and waits
// for it to complete — the safe way for tests and status endpoints to read
// engine state.
func (r *Runner) Inspect(f func(e *Engine)) {
	doneCh := make(chan struct{})
	r.enqueue(func() []Action {
		f(r.engine)
		close(doneCh)
		return nil
	})
	select {
	case <-doneCh:
	case <-r.done:
	}
}

// onMessage is the transport handler: decode, verify off-loop, then
// enqueue. The engine's event loop never pays for Ed25519 — by the time a
// message reaches Engine.ReceiveVerified its envelope signature (and, for
// preprepares, the embedded request signature) has been checked on a pool
// worker or, without a pool, on this delivery goroutine. Dropping garbage
// here also means Byzantine flooding burns pool workers, not the ordering
// path. Pool tasks may complete in any order; PBFT tolerates reordered
// delivery, so no resequencing is needed (see DESIGN.md).
func (r *Runner) onMessage(from crypto.NodeID, data []byte) {
	msg, err := wire.Unmarshal(data)
	if err != nil {
		return // garbage from a Byzantine or broken peer
	}
	s, ok := msg.(signable)
	if !ok {
		return
	}
	if s.signer() != from {
		return // cheap reject before paying for a signature check
	}
	check := func() {
		if preVerify(s, r.engine.reg, r.cfg.VerifyPool) != nil {
			return // forged or corrupted; drop without waking the loop
		}
		r.enqueue(func() []Action { return r.engine.ReceiveVerified(from, msg) })
	}
	if r.cfg.VerifyPool != nil {
		r.cfg.VerifyPool.Submit(check)
		return
	}
	check()
}

// enqueue appends work to the unbounded mailbox. Unbounded is deliberate:
// application callbacks run on the loop and may enqueue (Propose after
// NewPrimary, Suspect after a duplicate Decide); a bounded channel could
// deadlock the loop against itself. Inbound flooding is bounded above this
// layer by the communication layer's per-node open-request limit.
func (r *Runner) enqueue(f func() []Action) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.queue = append(r.queue, f)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *Runner) loop() {
	defer close(r.done)
	for {
		var timerC <-chan time.Time
		if r.viewTimer != nil {
			timerC = r.viewTimer.C()
		}
		select {
		case <-r.quit:
			if r.viewTimer != nil {
				r.viewTimer.Stop()
			}
			return
		case <-r.wake:
			for {
				r.mu.Lock()
				if len(r.queue) == 0 {
					r.mu.Unlock()
					break
				}
				batch := r.queue
				r.queue = nil
				r.mu.Unlock()
				for _, f := range batch {
					r.execute(f())
				}
			}
		case <-timerC:
			view := r.viewTimerView
			r.viewTimer = nil
			r.execute(r.engine.OnViewTimer(view))
		}
	}
}

// encodeAction returns the wire bytes for an outbound action, preferring the
// encoding cached at signing time (signedBroadcast) over a re-marshal.
func encodeAction(msg wire.Message, cached []byte) []byte {
	if cached != nil {
		return cached
	}
	return wire.Marshal(msg)
}

// persistBatch condenses one action batch into the durable records the
// log-before-send rule requires: the digest of every outbound phase vote,
// plus one view-state record whenever the batch shows the view machinery
// moved (a ViewChange or NewView leaving, or a view becoming active). It
// runs on the event loop, so reading engine fields directly is safe — and
// necessary: by the time actions are emitted the engine has already applied
// their state changes, so its fields are exactly what must be persisted.
func (r *Runner) persistBatch(actions []Action) []PersistRecord {
	var recs []PersistRecord
	viewDirty := false
	for _, a := range actions {
		var msg wire.Message
		switch act := a.(type) {
		case SendAction:
			msg = act.Msg
		case BroadcastAction:
			msg = act.Msg
		case NewPrimaryAction:
			viewDirty = true
			continue
		default:
			continue
		}
		switch m := msg.(type) {
		case *PrePrepare:
			recs = append(recs, PersistRecord{
				Kind: PersistPrePrepare, View: m.View, Seq: m.Seq, Digest: m.Req.Digest(),
			})
		case *Prepare:
			recs = append(recs, PersistRecord{
				Kind: PersistPrepare, View: m.View, Seq: m.Seq, Digest: m.Digest,
			})
		case *Commit:
			recs = append(recs, PersistRecord{
				Kind: PersistCommit, View: m.View, Seq: m.Seq, Digest: m.Digest,
			})
			// An outbound commit means the slot just reached prepared: the
			// certificate (PrePrepare + 2f Prepares) goes to disk with it,
			// so a restarted replica's ViewChange can still vouch for every
			// slot it prepared pre-crash (the P set of §4.4).
			if cert := r.engine.PreparedCert(m.Seq); cert != nil && cert.PrePrepare.View == m.View {
				recs = append(recs, PersistRecord{
					Kind: PersistPreparedCert, View: m.View, Seq: m.Seq,
					Digest: m.Digest, Data: EncodePreparedProof(cert),
				})
			}
		case *ViewChange, *NewView:
			viewDirty = true
		}
	}
	if viewDirty {
		view, sentVCFor, changing := r.engine.ViewState()
		recs = append(recs, PersistRecord{
			Kind: PersistView, View: view, Seq: sentVCFor, InViewChange: changing,
		})
	}
	return recs
}

// traceOutbound maps an outbound protocol vote to the slot-lifecycle stamp
// it implies: a PrePrepare leaving means the primary opened the slot, a
// Prepare leaving means this replica accepted the slot's preprepare, and a
// Commit leaving means the slot gathered its prepared certificate. Stamps
// are slot-keyed; the tracer joins them into record traces at delivery.
func (r *Runner) traceOutbound(msg wire.Message) {
	switch m := msg.(type) {
	case *PrePrepare:
		r.cfg.Tracer.StampSlot(m.Seq, obsv.PhasePrePrepare)
	case *Prepare:
		r.cfg.Tracer.StampSlot(m.Seq, obsv.PhasePrePrepare)
	case *Commit:
		r.cfg.Tracer.StampSlot(m.Seq, obsv.PhasePrepare)
	case *ViewChange:
		r.cfg.Journal.Record(obsv.Event{
			Kind: obsv.EventViewChangeSent, View: m.NewView, Seq: m.StableSeq, Node: m.Replica,
		})
	}
}

// execute performs the engine's actions, feeding results of application
// callbacks straight back into the engine. When a Persister is configured,
// the batch's protocol records are made durable before any message is sent.
func (r *Runner) execute(actions []Action) {
	if r.cfg.Persister != nil && !r.persistBroken {
		if recs := r.persistBatch(actions); len(recs) > 0 {
			if err := r.cfg.Persister.Persist(recs); err != nil {
				r.persistBroken = true
				r.cfg.Journal.Record(obsv.Event{
					Kind:   obsv.EventPersistFailure,
					Detail: "protocol WAL append failed; outbound votes muted: " + err.Error(),
				})
			}
		}
	}
	for _, a := range actions {
		switch act := a.(type) {
		case SendAction:
			if r.persistBroken {
				continue
			}
			r.traceOutbound(act.Msg)
			_ = r.tr.Send(act.To, encodeAction(act.Msg, act.Encoded))
		case BroadcastAction:
			if r.persistBroken {
				continue
			}
			r.traceOutbound(act.Msg)
			_ = r.tr.Broadcast(encodeAction(act.Msg, act.Encoded))
		case DeliverAction:
			r.cfg.Tracer.StampSlot(act.Seq, obsv.PhaseCommit)
			r.app.Deliver(act.Seq, act.Req)
		case CheckpointNeededAction:
			digest := r.app.CheckpointDigest(act.Seq)
			r.execute(r.engine.Checkpoint(act.Seq, digest))
		case StableCheckpointAction:
			r.app.StableCheckpoint(act.Proof)
		case NewPrimaryAction:
			r.cfg.Journal.Record(obsv.Event{
				Kind: obsv.EventNewPrimary, View: act.View, Node: act.Primary,
			})
			r.app.NewPrimary(act.View, act.Primary)
		case StartViewTimerAction:
			if r.viewTimer != nil {
				r.viewTimer.Stop()
			}
			shift := act.Attempt
			if shift > 10 {
				shift = 10
			}
			r.viewTimerView = act.View
			r.viewTimer = r.clk.NewTimer(r.cfg.BaseViewTimeout << shift)
		case StopViewTimerAction:
			if r.viewTimer != nil {
				r.viewTimer.Stop()
				r.viewTimer = nil
			}
		case PrePreparedAction:
			if obs, ok := r.app.(PrePrepareObserver); ok {
				obs.OnPrePrepared(act.Seq, act.PayloadDigest)
			}
		case StateTransferNeededAction:
			r.app.StateTransferNeeded(act.TargetSeq, act.Digest)
		}
	}
}
