package pbft

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/transport"
	"zugchain/internal/wire"
)

// referenceSigningBytes is the seed's clear-and-restore implementation, kept
// as the specification signingBytesInto must match byte-for-byte.
func referenceSigningBytes(m signable) []byte {
	saved := m.signature()
	m.setSignature(nil)
	e := wire.NewEncoder(256)
	e.Uint16(uint16(m.WireType()))
	m.EncodeWire(e)
	m.setSignature(saved)
	return append([]byte(nil), e.Data()...)
}

// sampleSignables builds one signed instance of every PBFT message type,
// including the nested view-change shapes.
func sampleSignables(kp *crypto.KeyPair) []signable {
	req := Request{Payload: []byte("payload"), Origin: kp.ID}
	SignRequest(&req, kp)
	pp := &PrePrepare{View: 3, Seq: 7, Req: req, Replica: kp.ID}
	sign(pp, kp)
	prep := &Prepare{View: 3, Seq: 7, Digest: crypto.Hash([]byte("d")), Replica: kp.ID}
	sign(prep, kp)
	cmt := &Commit{View: 3, Seq: 7, Digest: crypto.Hash([]byte("d")), Replica: kp.ID}
	sign(cmt, kp)
	cp := &Checkpoint{Seq: 10, StateDigest: crypto.Hash([]byte("s")), Replica: kp.ID}
	sign(cp, kp)
	vc := &ViewChange{
		NewView:    4,
		StableSeq:  10,
		StableCkpt: CheckpointProof{Seq: 10, StateDigest: cp.StateDigest, Checkpoints: []Checkpoint{*cp}},
		Prepared:   []PreparedProof{{PrePrepare: *pp, Prepares: []Prepare{*prep}}},
		Replica:    kp.ID,
	}
	sign(vc, kp)
	nv := &NewView{View: 4, ViewChanges: []ViewChange{*vc}, PrePrepares: []PrePrepare{*pp}, Replica: kp.ID}
	sign(nv, kp)
	return []signable{pp, prep, cmt, cp, vc, nv}
}

// TestSigningBytesMatchesReference guards the sig-is-last-field invariant
// the truncation-based signing path depends on, for every message type, and
// checks that computing signing bytes no longer mutates the message.
func TestSigningBytesMatchesReference(t *testing.T) {
	kp := crypto.MustGenerateKeyPair(2)
	for _, m := range sampleSignables(kp) {
		name := fmt.Sprintf("%T", m)
		sigBefore := append([]byte(nil), m.signature()...)
		got := signingBytes(m)
		if !bytes.Equal(got, referenceSigningBytes(m)) {
			t.Errorf("%s: signingBytes diverges from reference implementation", name)
		}
		if !bytes.Equal(m.signature(), sigBefore) {
			t.Errorf("%s: signingBytes mutated the signature", name)
		}
		if err := verify(m, crypto.NewRegistry(kp)); err != nil {
			t.Errorf("%s: verify after signingBytes: %v", name, err)
		}
	}
}

// TestSignedBroadcastMatchesMarshal checks the cached broadcast encoding is
// exactly what wire.Marshal would produce for the signed message.
func TestSignedBroadcastMatchesMarshal(t *testing.T) {
	kp := crypto.MustGenerateKeyPair(1)
	req := Request{Payload: []byte("cargo"), Origin: kp.ID}
	SignRequest(&req, kp)
	pp := &PrePrepare{View: 1, Seq: 2, Req: req, Replica: kp.ID}
	act := signedBroadcast(pp, kp)
	if !bytes.Equal(act.Encoded, wire.Marshal(pp)) {
		t.Fatal("cached encoding differs from wire.Marshal of the signed message")
	}
	if err := verify(pp, crypto.NewRegistry(kp)); err != nil {
		t.Fatalf("signedBroadcast produced an unverifiable message: %v", err)
	}
	msg, err := wire.Unmarshal(act.Encoded)
	if err != nil {
		t.Fatalf("unmarshal cached encoding: %v", err)
	}
	if got := msg.(*PrePrepare); got.Seq != 2 || string(got.Req.Payload) != "cargo" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// TestSigningSafeFromPoolWorkers drives sign and verify from many
// goroutines — including repeated verification of the *same* message, as
// VerifyPool workers do when a broadcast is received and re-validated in a
// view-change proof — and relies on -race to catch any mutation.
func TestSigningSafeFromPoolWorkers(t *testing.T) {
	kp := crypto.MustGenerateKeyPair(0)
	reg := crypto.NewRegistry(kp)
	shared := &Prepare{View: 1, Seq: 1, Digest: crypto.Hash([]byte("x")), Replica: 0}
	sign(shared, kp)

	pool := crypto.NewVerifyPool(4)
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 400)
	for i := 0; i < 200; i++ {
		wg.Add(2)
		seq := uint64(i)
		pool.Submit(func() {
			defer wg.Done()
			// Concurrent verification of one shared message.
			if err := verify(shared, reg); err != nil {
				errs <- err
			}
		})
		pool.Submit(func() {
			defer wg.Done()
			// Concurrent signing of distinct messages.
			own := &Commit{View: 1, Seq: seq, Digest: crypto.Hash([]byte("y")), Replica: 0}
			sign(own, kp)
			if err := verify(own, reg); err != nil {
				errs <- err
			}
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// newPooledRunnerCluster is newRunnerCluster with a shared VerifyPool, the
// production configuration of internal/node.
func newPooledRunnerCluster(t *testing.T, n int, viewTimeout time.Duration) (*runnerCluster, *crypto.VerifyPool) {
	t.Helper()
	pool := crypto.NewVerifyPool(4)
	t.Cleanup(pool.Close)
	rc := &runnerCluster{
		net:     transport.NewNetwork(),
		runners: make(map[crypto.NodeID]*Runner),
		apps:    make(map[crypto.NodeID]*testApp),
		kps:     make(map[crypto.NodeID]*crypto.KeyPair),
	}
	var pairs []*crypto.KeyPair
	for i := 0; i < n; i++ {
		id := crypto.NodeID(i)
		rc.ids = append(rc.ids, id)
		kp := crypto.MustGenerateKeyPair(id)
		rc.kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)
	for _, id := range rc.ids {
		engine, err := NewEngine(Config{ID: id, Replicas: rc.ids}, rc.kps[id], reg)
		if err != nil {
			t.Fatal(err)
		}
		app := newTestApp()
		runner := NewRunner(engine, rc.net.Endpoint(id), clock.Real{}, app,
			RunnerConfig{BaseViewTimeout: viewTimeout, VerifyPool: pool})
		rc.apps[id] = app
		rc.runners[id] = runner
	}
	for _, id := range rc.ids {
		rc.runners[id].Start()
	}
	t.Cleanup(func() {
		for _, r := range rc.runners {
			r.Stop()
		}
		rc.net.Close()
	})
	return rc, pool
}

// TestRunnerClusterWithVerifyPool runs 4 runners over the in-proc transport
// with off-loop verification and concurrent proposers; run under -race this
// is the pipeline's concurrency test.
func TestRunnerClusterWithVerifyPool(t *testing.T) {
	rc, pool := newPooledRunnerCluster(t, 4, time.Second)
	const n = 30
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/3; i++ {
				rc.propose(0, fmt.Sprintf("req-%d-%02d", g, i))
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for _, id := range rc.ids {
		got := rc.apps[id].waitDeliveries(t, n)
		if id == 0 {
			for _, d := range got {
				seen[string(d.Req.Payload)] = true
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("delivered %d distinct requests, want %d", len(seen), n)
	}
	if st := pool.Stats(); st.Offloaded+st.Inline == 0 {
		t.Error("verify pool was never used")
	}
}

// TestByzantineMessagesDroppedOffLoop confirms forged and tampered messages
// are still rejected when verification happens on the pool, and that the
// cluster keeps ordering correctly around them.
func TestByzantineMessagesDroppedOffLoop(t *testing.T) {
	rc, _ := newPooledRunnerCluster(t, 4, 5*time.Second)
	byz := rc.net.Endpoint(9) // not a replica; its sends carry from=9

	// 1. Replay across channels: a prepare legitimately signed by replica 2
	// but sent from node 9. Dropped by the cheap sender==signer check before
	// the message ever reaches a pool worker.
	replay := &Prepare{View: 0, Seq: 1, Digest: crypto.Hash([]byte("a")), Replica: 2}
	sign(replay, rc.kps[2])
	_ = byz.Broadcast(wire.Marshal(replay))

	// 2. Forged signature on the right channel: Replica matches the sending
	// endpoint, so this one survives the cheap check and must be rejected by
	// preVerify on a pool worker.
	badSig := &Prepare{View: 0, Seq: 1, Digest: crypto.Hash([]byte("b")), Replica: 2,
		Sig: bytes.Repeat([]byte{0xab}, crypto.SignatureSize)}
	_ = rc.net.Endpoint(2).Broadcast(wire.Marshal(badSig))

	// 3. Forged preprepare from the primary's channel carrying a bogus
	// request signature; off-loop VerifyRequest must reject it.
	forged := &PrePrepare{
		View: 0, Seq: 1,
		Req:     Request{Payload: []byte("evil"), Origin: 0, Sig: make([]byte, crypto.SignatureSize)},
		Replica: 0,
		Sig:     bytes.Repeat([]byte{0xab}, crypto.SignatureSize),
	}
	_ = rc.net.Endpoint(0).Broadcast(wire.Marshal(forged))

	// 4. Garbage bytes that do not even decode.
	_ = byz.Broadcast([]byte{0x10, 0xff, 0x01})

	// Legitimate traffic must still order, and the forged payload must not.
	rc.propose(0, "honest")
	for _, id := range rc.ids {
		got := rc.apps[id].waitDeliveries(t, 1)
		if string(got[0].Req.Payload) != "honest" {
			t.Fatalf("replica %v delivered %q", id, got[0].Req.Payload)
		}
	}
	for _, id := range rc.ids {
		rc.apps[id].mu.Lock()
		for _, d := range rc.apps[id].delivered {
			if string(d.Req.Payload) == "evil" {
				t.Errorf("replica %v delivered forged request", id)
			}
		}
		rc.apps[id].mu.Unlock()
	}
}

// BenchmarkSigningBytes measures the pooled, non-mutating signing-bytes
// path; the acceptance bar is zero allocations per operation.
func BenchmarkSigningBytes(b *testing.B) {
	kp := crypto.MustGenerateKeyPair(0)
	p := &Prepare{View: 1, Seq: 42, Digest: crypto.Hash([]byte("bench")), Replica: 0}
	sign(p, kp)
	e := wire.NewEncoder(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signingBytesInto(e, p)
	}
}

// benchmarkRunnerIngest measures the transport-to-engine ingest path:
// decode + signature verification + mailbox enqueue, using prepares whose
// sequence numbers fall outside the watermarks so engine state stays flat.
func benchmarkRunnerIngest(b *testing.B, workers int) {
	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kps[id] = crypto.MustGenerateKeyPair(id)
		pairs = append(pairs, kps[id])
	}
	reg := crypto.NewRegistry(pairs...)
	engine, err := NewEngine(Config{ID: 0, Replicas: ids}, kps[0], reg)
	if err != nil {
		b.Fatal(err)
	}
	var pool *crypto.VerifyPool
	cfg := RunnerConfig{BaseViewTimeout: time.Hour}
	if workers > 0 {
		pool = crypto.NewVerifyPool(workers)
		defer pool.Close()
		cfg.VerifyPool = pool
	}
	net := transport.NewNetwork()
	defer net.Close()
	r := NewRunner(engine, net.Endpoint(0), clock.Real{}, newTestApp(), cfg)
	r.Start()
	defer r.Stop()

	// Pre-marshal a rotation of signed prepares from the three backups.
	var frames []struct {
		from crypto.NodeID
		data []byte
	}
	for i := 0; i < 64; i++ {
		from := ids[1+i%3]
		p := &Prepare{View: 0, Seq: 1 << 40, Digest: crypto.Hash([]byte{byte(i)}), Replica: from}
		sign(p, kps[from])
		frames = append(frames, struct {
			from crypto.NodeID
			data []byte
		}{from, wire.Marshal(p)})
	}

	base := uint64(0)
	if pool != nil {
		st := pool.Stats()
		base = st.Offloaded + st.Inline
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := frames[i%len(frames)]
		r.onMessage(f.from, f.data)
	}
	if pool != nil {
		// Wait for the pipeline to drain so ns/op covers the full work.
		for {
			st := pool.Stats()
			if st.Offloaded+st.Inline-base >= uint64(b.N) {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// BenchmarkRunnerIngestSerial verifies on the delivery goroutine (no pool).
func BenchmarkRunnerIngestSerial(b *testing.B) { benchmarkRunnerIngest(b, 0) }

// BenchmarkRunnerIngestPipelined verifies on a GOMAXPROCS-sized pool.
func BenchmarkRunnerIngestPipelined(b *testing.B) { benchmarkRunnerIngest(b, -1) }
