// The observability overhead guard: lifecycle tracing must cost less than
// 5% of ordering throughput, since it runs on the hot path of every record.
// The guard orders the same workload through two clusters — tracer off
// (node.Config.DisableTrace) and tracer on — interleaved to share thermal
// and scheduler conditions, and compares the best pass of each side (best-
// of-N discards scheduler noise, which only ever slows a pass down).
//
// The run is a full four-node PBFT cluster with real Ed25519, so it takes
// tens of seconds; it is gated behind ZUGCHAIN_BENCH_GUARD=1 (make
// bench-guard) to keep the tier-1 suite fast.
package zugchain_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/node"
	"zugchain/internal/transport"
)

// orderingRate orders `records` records through a fresh in-process four-node
// cluster and returns the achieved records/second. mutate adjusts each
// node's config (nil = stock).
func orderingRate(t *testing.T, records uint64, mutate func(*node.Config)) float64 {
	t.Helper()
	const maxBatch = 64
	const maxOutstanding = 64

	net := transport.NewNetwork()
	defer net.Close()
	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	reg := crypto.NewRegistry(pairs...)

	var nodes []*node.Node
	for _, id := range ids {
		cfg := node.Config{
			ID:            id,
			Replicas:      ids,
			SoftTimeout:   2 * time.Second,
			HardTimeout:   2 * time.Second,
			ViewTimeout:   2 * time.Second,
			MaxBatch:      maxBatch,
			MaxBatchDelay: time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		n, err := node.New(cfg, kps[id], reg, net.Endpoint(id), clock.Real{})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	ordered := func() uint64 {
		best := uint64(0)
		for _, n := range nodes {
			if got := n.Layer().Counters().Snapshot().Requests; got > best {
				best = got
			}
		}
		return best
	}

	fed := uint64(0)
	start := time.Now()
	deadline := start.Add(2 * time.Minute)
	for {
		best := ordered()
		if best >= records {
			break
		}
		for fed < records && fed-best < maxOutstanding {
			payload := make([]byte, 200)
			copy(payload, fmt.Sprintf("guard-%d", fed))
			nodes[0].Layer().OnBusRecord(0, payload)
			fed++
		}
		if time.Now().After(deadline) {
			t.Fatalf("guard cluster ordered %d/%d records before deadline", ordered(), records)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return float64(records) / time.Since(start).Seconds()
}

// TestTracerOverheadGuard is the ISSUE's acceptance check: tracer-on
// throughput within 5% of tracer-off, numbers reported.
func TestTracerOverheadGuard(t *testing.T) {
	if os.Getenv("ZUGCHAIN_BENCH_GUARD") == "" {
		t.Skip("set ZUGCHAIN_BENCH_GUARD=1 (make bench-guard) to run the tracer overhead guard")
	}
	const records = 6144
	const passes = 3

	// Warm up once (key generation, scheduler, page cache) before measuring.
	orderingRate(t, 1024, nil)

	best := func(rates []float64) float64 {
		b := rates[0]
		for _, r := range rates[1:] {
			if r > b {
				b = r
			}
		}
		return b
	}
	var off, on []float64
	for i := 0; i < passes; i++ {
		off = append(off, orderingRate(t, records, func(c *node.Config) { c.DisableTrace = true }))
		on = append(on, orderingRate(t, records, nil))
		t.Logf("pass %d: tracer-off %.0f rec/s, tracer-on %.0f rec/s", i+1, off[i], on[i])
	}

	bo, bn := best(off), best(on)
	ratio := bn / bo
	t.Logf("best-of-%d: tracer-off %.0f rec/s, tracer-on %.0f rec/s, ratio %.3f (floor 0.95)",
		passes, bo, bn, ratio)
	if ratio < 0.95 {
		t.Errorf("lifecycle tracing costs %.1f%% of ordering throughput, budget is 5%%", (1-ratio)*100)
	}
}
