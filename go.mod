module zugchain

go 1.24
