package zugchain_test

import (
	"context"
	"fmt"
	"time"

	"zugchain"
)

// Example_cluster builds a minimal four-node recorder on an in-process
// network, drives a few bus cycles, and reads back the agreed chain. It is
// the compilable core of examples/quickstart.
func Example_cluster() {
	ids := []zugchain.NodeID{0, 1, 2, 3}
	keys := make(map[zugchain.NodeID]*zugchain.KeyPair)
	var pairs []*zugchain.KeyPair
	for _, id := range ids {
		kp := zugchain.MustGenerateKeyPair(id)
		keys[id] = kp
		pairs = append(pairs, kp)
	}
	registry := zugchain.NewRegistry(pairs...)
	network := zugchain.NewSimNetwork()
	defer network.Close()

	bus := zugchain.NewBus(zugchain.BusConfig{})
	bus.Attach(zugchain.NewSignalDevice(
		zugchain.NewSignalGenerator(zugchain.DefaultGeneratorConfig())))

	ctx, cancel := context.WithCancel(context.Background())
	var nodes []*zugchain.Node
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for i, id := range ids {
		n, err := zugchain.NewNode(zugchain.NodeConfig{ID: id, Replicas: ids},
			keys[id], registry, network.Endpoint(id), zugchain.RealClock())
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		n.Start()
		n.RunBus(ctx, bus.NewReader(zugchain.BusFaultConfig{}, int64(i)))
		nodes = append(nodes, n)
	}

	// Drive the bus until the first block seals everywhere.
	deadline := time.Now().Add(30 * time.Second)
	for nodes[0].Store().HeadIndex() < 1 && time.Now().Before(deadline) {
		bus.Tick()
		time.Sleep(2 * time.Millisecond)
	}

	if err := nodes[0].Store().VerifyChain(); err != nil {
		fmt.Println("chain broken:", err)
		return
	}
	fmt.Println("first block sealed and verified")
	// Output: first block sealed and verified
}

// Example_tamperEvidence shows the blockchain's core guarantee: any
// modification of a recorded block is detected during verification.
func Example_tamperEvidence() {
	// Build a small chain of juridical records (normally done by the
	// consensus pipeline).
	builder := zugchain.NewBlockBuilder(zugchain.GenesisBlock(), 2)
	var blocks []*zugchain.Block
	for seq := uint64(1); seq <= 6; seq++ {
		rec := zugchain.SignalRecord{Cycle: seq, Signals: []zugchain.Signal{
			{Kind: 1 /* speed */, Value: float64(seq * 10), Cycle: seq},
		}}
		if b := builder.Add(zugchain.BlockEntry{Seq: seq, Payload: rec.Marshal()}); b != nil {
			blocks = append(blocks, b)
		}
	}
	if err := zugchain.VerifySegment(zugchain.GenesisBlock().Header, blocks); err != nil {
		fmt.Println("unexpected:", err)
		return
	}
	fmt.Println("intact chain verifies")

	// An attacker rewrites one speed value after the fact.
	forged := zugchain.SignalRecord{Cycle: 3, Signals: []zugchain.Signal{
		{Kind: 1, Value: 20, Cycle: 3}, // "the train was slow, honest"
	}}
	blocks[1].Entries[0].Payload = forged.Marshal()
	blocks[1].BodyHash = zugchain.GenesisBlock().BodyHash // even with a recomputed body hash ...
	if err := zugchain.VerifySegment(zugchain.GenesisBlock().Header, blocks); err != nil {
		fmt.Println("tampering detected")
	}
	// Output:
	// intact chain verifies
	// tampering detected
}
