GO ?= go

.PHONY: all build test check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: vet, build, race-test the consensus, crypto,
# ordering, persistence, and transport packages, race-test WAL durability
# and crash-restart recovery plus a chaos crash/partition smoke, fuzz the
# WAL decoder briefly, and smoke-run the verification, batching, and
# transport benchmarks once so a broken benchmark cannot rot unnoticed.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/pbft/... ./internal/crypto/...
	$(GO) test -race ./internal/core ./internal/blockchain
	$(GO) test -race ./internal/transport
	$(GO) test -race ./internal/wal ./internal/node
	$(GO) test -race -run 'TestChaos' ./internal/testbed
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzBatchVerify -fuzztime 5s ./internal/crypto
	$(GO) test -run '^$$' -bench Verify -benchtime 1x ./internal/crypto/... ./internal/pbft/...
	$(GO) test -run '^$$' -bench Transport -benchtime 1x ./internal/transport
	$(GO) test -run '^$$' -bench 'StoreAppend|OrderingThroughput' -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
