GO ?= go

.PHONY: all build test check lint bench bench-guard

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint: vet plus gofmt drift, plus staticcheck when the host has it (the
# container does not ship it; nothing is installed on demand).
lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; else \
		echo "staticcheck not installed; skipped"; fi

# check is the pre-merge gate: lint, build, race-test the consensus, crypto,
# ordering, persistence, transport, and observability packages, race-test WAL
# durability and crash-restart recovery plus a chaos crash/partition smoke
# (which now also asserts the consensus event journal), fuzz the WAL decoder
# briefly, and smoke-run the verification, batching, and transport benchmarks
# once so a broken benchmark cannot rot unnoticed.
check: lint
	$(GO) build ./...
	$(GO) test -race ./internal/pbft/... ./internal/crypto/...
	$(GO) test -race ./internal/core ./internal/blockchain
	$(GO) test -race ./internal/transport
	$(GO) test -race ./internal/wal ./internal/node
	$(GO) test -race ./internal/obsv ./internal/metrics
	$(GO) test -race -run 'TestChaos' ./internal/testbed
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz FuzzBatchVerify -fuzztime 5s ./internal/crypto
	$(GO) test -run '^$$' -bench Verify -benchtime 1x ./internal/crypto/... ./internal/pbft/...
	$(GO) test -run '^$$' -bench Transport -benchtime 1x ./internal/transport
	$(GO) test -run '^$$' -bench 'StoreAppend|OrderingThroughput' -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-guard runs the tracer overhead guard: ordering throughput with
# lifecycle tracing on must stay within 5% of tracing off.
bench-guard:
	ZUGCHAIN_BENCH_GUARD=1 $(GO) test -run TestTracerOverheadGuard -v .
