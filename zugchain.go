// Package zugchain is a Go implementation of ZugChain (DSN 2022): a
// blockchain-based juridical data recorder for railway systems. It replaces
// the train's centralized juridical recording unit (JRU) with software
// replicated across on-board commodity nodes:
//
//   - every node reads the vehicle bus (MVB) independently;
//   - the ZugChain communication layer deduplicates the observed input by
//     payload and feeds it to a PBFT ordering core, tolerating f Byzantine
//     nodes out of n >= 3f+1;
//   - ordered records are bundled into a hash-chained blockchain backed by
//     2f+1-signed PBFT checkpoints, so even a single surviving node's log
//     is tamper-evident;
//   - a decoupled export protocol ships blocks to the railway companies'
//     data centers over the train's uplink and authorizes safe pruning.
//
// This package re-exports the library's public surface. The heavy lifting
// lives in the internal packages; see DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
//
// # Quickstart
//
// Build a four-node cluster on an in-process network, feed it a simulated
// bus, and read back the chain:
//
//	ids := []zugchain.NodeID{0, 1, 2, 3}
//	net := zugchain.NewSimNetwork()
//	var keys []*zugchain.KeyPair
//	for _, id := range ids {
//		keys = append(keys, zugchain.MustGenerateKeyPair(id))
//	}
//	registry := zugchain.NewRegistry(keys...)
//	for i, id := range ids {
//		n, _ := zugchain.NewNode(zugchain.NodeConfig{ID: id, Replicas: ids},
//			keys[i], registry, net.Endpoint(id), zugchain.RealClock())
//		n.Start()
//		// wire n.RunBus / n.HandleFrame to an mvb reader ...
//	}
//
// See examples/ for complete programs.
package zugchain

import (
	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/core"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/mvb"
	"zugchain/internal/netsim"
	"zugchain/internal/node"
	"zugchain/internal/pbft"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

// Identity and cryptography.
type (
	// NodeID identifies a replica or data center.
	NodeID = crypto.NodeID
	// KeyPair is a participant's Ed25519 identity.
	KeyPair = crypto.KeyPair
	// Registry maps node IDs to public keys.
	Registry = crypto.Registry
	// Digest is a SHA-256 hash.
	Digest = crypto.Digest
)

// DataCenterIDBase is the first NodeID reserved for data centers.
const DataCenterIDBase = crypto.DataCenterIDBase

// GenerateKeyPair creates a fresh identity; MustGenerateKeyPair panics on
// failure (setup code only).
var (
	GenerateKeyPair     = crypto.GenerateKeyPair
	MustGenerateKeyPair = crypto.MustGenerateKeyPair
	NewRegistry         = crypto.NewRegistry
)

// Replica node.
type (
	// NodeConfig parameterizes a ZugChain replica.
	NodeConfig = node.Config
	// Node is one assembled ZugChain replica.
	Node = node.Node
)

// NewNode assembles a replica on a transport.
var NewNode = node.New

// Blockchain.
type (
	// Block is one sealed bundle of ordered juridical records.
	Block = blockchain.Block
	// BlockEntry is one totally ordered request inside a block.
	BlockEntry = blockchain.Entry
	// ChainStore holds a node's (or archive's) chain.
	ChainStore = blockchain.Store
)

// BlockBuilder accumulates ordered entries into blocks.
type BlockBuilder = blockchain.Builder

// NewChainStore opens a chain store ("" = memory only).
var (
	NewChainStore   = blockchain.NewStore
	NewBlockBuilder = blockchain.NewBuilder
	GenesisBlock    = blockchain.Genesis
	VerifySegment   = blockchain.VerifySegment
)

// Bus and signals.
type (
	// Bus is the simulated Multifunction Vehicle Bus.
	Bus = mvb.Bus
	// BusConfig parameterizes the bus.
	BusConfig = mvb.Config
	// BusReader is one node's attachment to the bus.
	BusReader = mvb.Reader
	// BusFaultConfig injects per-reader bus faults.
	BusFaultConfig = mvb.FaultConfig
	// Frame is one bus cycle's transmission.
	Frame = mvb.Frame
	// Signal is one parsed juridical value.
	Signal = signal.Signal
	// SignalRecord is one cycle's consolidated signals.
	SignalRecord = signal.Record
	// SignalGenerator produces an ATP-style drive workload.
	SignalGenerator = signal.Generator
	// GeneratorConfig parameterizes the workload generator.
	GeneratorConfig = signal.GeneratorConfig
)

// NewBus creates a simulated MVB; NewSignalGenerator the ATP workload.
var (
	NewBus                 = mvb.NewBus
	NewSignalDevice        = mvb.NewSignalDevice
	NewSignalGenerator     = signal.NewGenerator
	DefaultGeneratorConfig = signal.DefaultGeneratorConfig
	ParseFrame             = mvb.ParseFrame
	UnmarshalRecord        = signal.UnmarshalRecord
)

// Transport.
type (
	// Transport moves protocol messages between participants.
	Transport = transport.Transport
	// SimNetwork is the in-process network with fault injection.
	SimNetwork = transport.Network
	// LinkConfig shapes one simulated link.
	LinkConfig = transport.LinkConfig
	// TCPTransport is the real-network transport.
	TCPTransport = transport.TCP
)

// NewSimNetwork creates an in-process network; NewTCPTransport a TCP one.
var (
	NewSimNetwork   = transport.NewNetwork
	NewTCPTransport = transport.NewTCP
)

// Export.
type (
	// DataCenter is a railway company's export/archive endpoint.
	DataCenter = export.DataCenter
	// DataCenterConfig parameterizes it.
	DataCenterConfig = export.DataCenterConfig
	// DataCenterGroup orchestrates a full export round across companies.
	DataCenterGroup = export.Group
	// ExportReport summarizes one export round.
	ExportReport = export.ExportReport
	// LinkProfile shapes the train's uplink.
	LinkProfile = netsim.LinkProfile
)

// NewDataCenter creates an export client; LTEUplink is the paper's profile.
var (
	NewDataCenter = export.NewDataCenter
	NewShapedLink = netsim.NewShaped
	LTEUplink     = netsim.LTE
)

// Consensus building blocks, exported for advanced integrations that embed
// the ordering core directly.
type (
	// PBFTConfig parameterizes the ordering engine.
	PBFTConfig = pbft.Config
	// PBFTEngine is the pure PBFT state machine.
	PBFTEngine = pbft.Engine
	// Request is the unit of agreement.
	Request = pbft.Request
	// CheckpointProof is a 2f+1-signed stable checkpoint.
	CheckpointProof = pbft.CheckpointProof
	// LayerConfig parameterizes the communication layer.
	LayerConfig = core.Config
	// Layer is the bus-facing communication layer (Algorithm 1).
	Layer = core.Layer
)

// NewPBFTEngine and NewLayer construct the cores directly.
var (
	NewPBFTEngine = pbft.NewEngine
	NewLayer      = core.New
)

// Clocks.
type (
	// Clock abstracts time for deterministic tests.
	Clock = clock.Clock
	// FakeClock is a manually advanced clock.
	FakeClock = clock.Fake
)

// RealClock returns the wall-clock implementation.
func RealClock() Clock { return clock.Real{} }

// NewFakeClock returns a manually advanced clock for tests.
var NewFakeClock = clock.NewFake
