// Command zc-busgen is the repository's stand-in for the paper's DDC signal
// generator (§V-A): it produces MVB bus traces — synthetic ATP drive data —
// that can be replayed through the whole recording pipeline, and summarizes
// existing traces.
//
// Usage:
//
//	zc-busgen -out drive.zct -cycles 10000 -seed 7      # generate
//	zc-busgen -in drive.zct                              # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"zugchain/internal/mvb"
	"zugchain/internal/signal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-busgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out     = flag.String("out", "", "write a generated trace to this file")
		in      = flag.String("in", "", "summarize the trace in this file")
		cycles  = flag.Int("cycles", 10000, "bus cycles to generate")
		payload = flag.Int("payload", 0, "pad records to this size")
		seed    = flag.Int64("seed", 1, "drive seed")
		spacing = flag.Uint64("stations", 2000, "cycles between stations")
	)
	flag.Parse()

	switch {
	case *out != "":
		return generate(*out, *cycles, *payload, *seed, *spacing)
	case *in != "":
		return summarize(*in)
	default:
		return fmt.Errorf("need -out (generate) or -in (summarize)")
	}
}

func generate(path string, cycles, payload int, seed int64, spacing uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	genCfg := signal.DefaultGeneratorConfig()
	genCfg.Seed = seed
	genCfg.PayloadSize = payload
	genCfg.StationSpacing = spacing
	bus := mvb.NewBus(mvb.Config{})
	bus.Attach(mvb.NewSignalDevice(signal.NewGenerator(genCfg)))

	w := mvb.NewTraceWriter(f)
	for i := 0; i < cycles; i++ {
		if err := w.WriteFrame(bus.Tick()); err != nil {
			return err
		}
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d cycles (%d bytes) to %s\n", cycles, info.Size(), path)
	return nil
}

func summarize(path string) error {
	dev, err := mvb.LoadTraceDevice(path)
	if err != nil {
		return err
	}
	bus := mvb.NewBus(mvb.Config{})
	bus.Attach(dev)
	reader := bus.NewReader(mvb.FaultConfig{}, 0)

	var (
		frames, signals, events int
		topSpeed                float64
	)
	for i := 0; i < dev.Len(); i++ {
		bus.Tick()
		f := <-reader.C()
		rec, _ := mvb.ParseFrame(f)
		frames++
		signals += len(rec.Signals)
		for _, s := range rec.Signals {
			if s.Kind == signal.KindSpeed && s.Value > topSpeed {
				topSpeed = s.Value
			}
			if s.Kind == signal.KindEmergencyBrake || s.Kind == signal.KindATPCommand {
				events++
			}
		}
	}
	fmt.Printf("%s: %d frames, %d signals, %d discrete events, top speed %.1f km/h\n",
		path, frames, signals, events, topSpeed)
	return nil
}
