// Command zc-sim runs a self-contained ZugChain deployment in one process:
// four replicas on a simulated train Ethernet, one simulated MVB with the
// ATP drive generator, optional bus faults, and an optional data center that
// periodically exports and prunes. It is the quickest way to watch the
// whole system work.
//
// Usage:
//
//	zc-sim -duration 30s -bus-cycle 64ms -export 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/mvb"
	"zugchain/internal/node"
	"zugchain/internal/obsv"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration   = flag.Duration("duration", 30*time.Second, "how long to run")
		busCycle   = flag.Duration("bus-cycle", 64*time.Millisecond, "MVB cycle time")
		payload    = flag.Int("payload", 0, "pad records to this size")
		exportEach = flag.Duration("export", 10*time.Second, "export period (0 = no data center)")
		busDrop    = flag.Float64("bus-drop", 0.05, "per-node bus frame drop probability")
		busFlip    = flag.Float64("bus-bitflip", 0.01, "per-node bus bit-flip probability")
		seed       = flag.Int64("seed", 1, "workload seed")
		batchSize  = flag.Int("batch-size", 16, "max records coalesced per proposal (1 = no batching)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "max wait before a partial batch is flushed")
		sendQueue  = flag.Int("send-queue", 4096, "per-endpoint inbox capacity (messages dropped when full)")

		dataRoot     = flag.String("datadir", "", "per-replica data root (empty = memory, no WAL)")
		netDrop      = flag.Float64("net-drop", 0, "consensus transport drop probability")
		netDelay     = flag.Float64("net-delay", 0, "consensus transport delay probability")
		netDelayMax  = flag.Duration("net-delay-max", 5*time.Millisecond, "max injected transport delay")
		netDup       = flag.Float64("net-dup", 0, "consensus transport duplicate probability")
		killNode     = flag.Int("kill", -1, "replica to crash mid-run (-1 = none)")
		killAfter    = flag.Duration("kill-after", 10*time.Second, "when to crash the -kill replica")
		restartAfter = flag.Duration("restart-after", 20*time.Second, "when to restart it from its data dir (0 = never)")
		verifyCache  = flag.Int("verify-cache", 0, "verified-signature cache entries (0 = default 4096, negative = off)")
		batchVerify  = flag.Bool("batch-verify", true, "verify batched proposals' record signatures in one multi-scalar pass")
		statsEvery   = flag.Duration("stats", 5*time.Second, "stats print interval (0 = off)")
		metricsAddr  = flag.String("metrics-addr", "", "observability HTTP address serving replica 0 (empty = off)")
		traceSlow    = flag.Duration("trace-slow", 0, "log records whose ingest-to-execute latency meets this threshold (0 = off)")
		traceRing    = flag.Int("trace-ring", 0, "completed lifecycle traces retained for /tracez (0 = default 256)")
	)
	flag.Parse()

	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	dcID := crypto.DataCenterIDBase
	dcKP := crypto.MustGenerateKeyPair(dcID)
	pairs = append(pairs, dcKP)
	reg := crypto.NewRegistry(pairs...)

	net := transport.NewNetwork(transport.WithSeed(*seed), transport.WithInboxSize(*sendQueue))
	defer net.Close()

	genCfg := signal.DefaultGeneratorConfig()
	genCfg.Seed = *seed
	genCfg.PayloadSize = *payload
	bus := mvb.NewBus(mvb.Config{CycleTime: *busCycle})
	bus.Attach(mvb.NewSignalDevice(signal.NewGenerator(genCfg)))

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	faults := transport.FaultConfig{
		DropRate:      *netDrop,
		DelayRate:     *netDelay,
		MaxDelay:      *netDelayMax,
		DuplicateRate: *netDup,
	}
	chaosNet := *netDrop > 0 || *netDelay > 0 || *netDup > 0

	var nodeMu sync.Mutex // guards nodes against the reporter goroutine
	nodes := make([]*node.Node, len(ids))
	busCancels := make([]context.CancelFunc, len(ids))
	incarnation := make([]int64, len(ids))
	var msrv *obsv.Server
	defer func() {
		if msrv != nil {
			_ = msrv.Close()
		}
	}()
	startNode := func(i int) error {
		id := ids[i]
		var dir string
		if *dataRoot != "" {
			dir = filepath.Join(*dataRoot, fmt.Sprintf("replica-%d", i))
		}
		tr := transport.Transport(net.Endpoint(id))
		if chaosNet {
			tr = transport.NewFaulty(tr, ids, faults, *seed+int64(id)+incarnation[i]*100)
		}
		n, err := node.New(node.Config{
			ID:            id,
			Replicas:      ids,
			DataCenters:   []crypto.NodeID{dcID},
			DeleteQuorum:  1,
			DataDir:       dir,
			MaxBatch:      *batchSize,
			MaxBatchDelay: *batchDelay,

			VerifyCacheSize:    *verifyCache,
			DisableBatchVerify: !*batchVerify,
			TraceSlow:          *traceSlow,
			TraceRing:          *traceRing,
		}, kps[id], reg, tr, clock.Real{})
		if err != nil {
			return err
		}
		if rec := n.Recovery(); rec.WALRecords > 0 || rec.StoreReport.Loaded > 0 {
			log.Printf("replica %d recovered: %d blocks, %d WAL records, view=%d seq=%d",
				i, rec.StoreReport.Loaded, rec.WALRecords, rec.RestoredView, rec.RestoredSeq)
		}
		reader := bus.NewReader(mvb.FaultConfig{
			DropRate:    *busDrop,
			BitFlipRate: *busFlip,
		}, *seed+int64(id)+incarnation[i]*1000)
		incarnation[i]++
		busCtx, busCancel := context.WithCancel(ctx)
		n.Start()
		n.RunBus(busCtx, reader)
		nodeMu.Lock()
		nodes[i] = n
		busCancels[i] = busCancel
		nodeMu.Unlock()
		if i == 0 && *metricsAddr != "" {
			// The HTTP endpoint serves replica 0's observer; a restart
			// creates a fresh node (and observer), so rebind to it.
			if msrv != nil {
				_ = msrv.Close()
			}
			srv, err := obsv.Serve(*metricsAddr, n.Obs())
			if err != nil {
				return err
			}
			msrv = srv
			log.Printf("observability on http://%s (replica 0)", srv.Addr())
		}
		return nil
	}
	for i := range ids {
		if err := startNode(i); err != nil {
			return err
		}
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			if n != nil {
				n.Stop()
			}
		}
	}()
	go bus.Run(ctx, clock.Real{})

	var dc *export.DataCenter
	if *exportEach > 0 {
		archive, err := blockchain.NewStore("")
		if err != nil {
			return err
		}
		dcMux := transport.NewMux(net.Endpoint(dcID))
		dc = export.NewDataCenter(export.DataCenterConfig{
			ID:          dcID,
			Replicas:    ids,
			ReadTimeout: 10 * time.Second,
		}, dcKP, reg, archive, dcMux.Channel(0x40, 0x4f))
	}

	log.Printf("running %d replicas, bus cycle %v, drop %.0f%%, bit flips %.1f%%",
		len(nodes), *busCycle, *busDrop*100, *busFlip*100)

	// The shared reporter replaces the hand-rolled 5s ticker: one formatter
	// over replica 0's registered families (chain, latency, net, crypto,
	// WAL), 0 = off preserved.
	reporter := obsv.NewReporter(*statsEvery, func() string {
		nodeMu.Lock()
		n := nodes[0]
		nodeMu.Unlock()
		if n == nil {
			return ""
		}
		return obsv.Summary(n.Obs())
	}, nil)
	defer reporter.Stop()

	var exportCh <-chan time.Time
	if dc != nil {
		exportTicker := time.NewTicker(*exportEach)
		defer exportTicker.Stop()
		exportCh = exportTicker.C
	}
	var killCh, restartCh <-chan time.Time
	if *killNode >= 0 && *killNode < len(ids) {
		killTimer := time.NewTimer(*killAfter)
		defer killTimer.Stop()
		killCh = killTimer.C
		if *restartAfter > 0 {
			restartTimer := time.NewTimer(*restartAfter)
			defer restartTimer.Stop()
			restartCh = restartTimer.C
		}
	}

	for {
		select {
		case <-ctx.Done():
			printSummary(nodes, dc)
			return nil
		case <-killCh:
			i := *killNode
			log.Printf("replica %d: crashing", i)
			busCancels[i]()
			nodeMu.Lock()
			n := nodes[i]
			nodes[i] = nil
			nodeMu.Unlock()
			n.Stop()
		case <-restartCh:
			i := *killNode
			nodeMu.Lock()
			running := nodes[i] != nil
			nodeMu.Unlock()
			if running {
				continue
			}
			log.Printf("replica %d: restarting", i)
			if err := startNode(i); err != nil {
				return fmt.Errorf("restart replica %d: %w", i, err)
			}
		case <-exportCh:
			go runExport(ctx, dc)
		}
	}
}

func runExport(ctx context.Context, dc *export.DataCenter) {
	res, err := dc.Read(ctx)
	if err != nil {
		log.Printf("export: %v", err)
		return
	}
	if res.NewBlocks == 0 {
		return
	}
	dc.SendDelete(res.BlockIndex, res.BlockHash)
	ackCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := dc.WaitDeleteAcks(ackCtx, res.BlockIndex, 3); err != nil {
		log.Printf("export acks: %v", err)
		return
	}
	log.Printf("exported %d blocks through %d; replicas pruned", res.NewBlocks, res.BlockIndex)
}

func printSummary(nodes []*node.Node, dc *export.DataCenter) {
	fmt.Println("\n=== summary ===")
	for i, n := range nodes {
		if n == nil {
			fmt.Printf("replica %d: down\n", i)
			continue
		}
		store := n.Store()
		status := "chain OK"
		if err := store.VerifyChain(); err != nil {
			status = "CHAIN BROKEN: " + err.Error()
		}
		fmt.Printf("replica %d: height=%d base=%d ordered=%d %s\n",
			i, store.HeadIndex(), store.Base(),
			n.Layer().Counters().Snapshot().Requests, status)
	}
	for i, n := range nodes {
		if n == nil {
			continue
		}
		events := n.Obs().Journal.Events()
		if len(events) == 0 {
			continue
		}
		fmt.Printf("replica %d consensus events (%d):\n", i, len(events))
		for _, e := range events {
			fmt.Printf("  %s\n", e)
		}
	}
	if dc != nil {
		status := "archive OK"
		if err := dc.Archive().VerifyChain(); err != nil {
			status = "ARCHIVE BROKEN: " + err.Error()
		}
		fmt.Printf("data center: archived through block %d, %s\n", dc.LastExported(), status)
	}
}
