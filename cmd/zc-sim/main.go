// Command zc-sim runs a self-contained ZugChain deployment in one process:
// four replicas on a simulated train Ethernet, one simulated MVB with the
// ATP drive generator, optional bus faults, and an optional data center that
// periodically exports and prunes. It is the quickest way to watch the
// whole system work.
//
// Usage:
//
//	zc-sim -duration 30s -bus-cycle 64ms -export 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zugchain/internal/blockchain"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/export"
	"zugchain/internal/mvb"
	"zugchain/internal/node"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		duration   = flag.Duration("duration", 30*time.Second, "how long to run")
		busCycle   = flag.Duration("bus-cycle", 64*time.Millisecond, "MVB cycle time")
		payload    = flag.Int("payload", 0, "pad records to this size")
		exportEach = flag.Duration("export", 10*time.Second, "export period (0 = no data center)")
		busDrop    = flag.Float64("bus-drop", 0.05, "per-node bus frame drop probability")
		busFlip    = flag.Float64("bus-bitflip", 0.01, "per-node bus bit-flip probability")
		seed       = flag.Int64("seed", 1, "workload seed")
		batchSize  = flag.Int("batch-size", 16, "max records coalesced per proposal (1 = no batching)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "max wait before a partial batch is flushed")
		sendQueue  = flag.Int("send-queue", 4096, "per-endpoint inbox capacity (messages dropped when full)")
	)
	flag.Parse()

	ids := []crypto.NodeID{0, 1, 2, 3}
	kps := make(map[crypto.NodeID]*crypto.KeyPair)
	var pairs []*crypto.KeyPair
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair(id)
		kps[id] = kp
		pairs = append(pairs, kp)
	}
	dcID := crypto.DataCenterIDBase
	dcKP := crypto.MustGenerateKeyPair(dcID)
	pairs = append(pairs, dcKP)
	reg := crypto.NewRegistry(pairs...)

	net := transport.NewNetwork(transport.WithSeed(*seed), transport.WithInboxSize(*sendQueue))
	defer net.Close()

	genCfg := signal.DefaultGeneratorConfig()
	genCfg.Seed = *seed
	genCfg.PayloadSize = *payload
	bus := mvb.NewBus(mvb.Config{CycleTime: *busCycle})
	bus.Attach(mvb.NewSignalDevice(signal.NewGenerator(genCfg)))

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	var nodes []*node.Node
	for _, id := range ids {
		n, err := node.New(node.Config{
			ID:            id,
			Replicas:      ids,
			DataCenters:   []crypto.NodeID{dcID},
			DeleteQuorum:  1,
			MaxBatch:      *batchSize,
			MaxBatchDelay: *batchDelay,
		}, kps[id], reg, net.Endpoint(id), clock.Real{})
		if err != nil {
			return err
		}
		reader := bus.NewReader(mvb.FaultConfig{
			DropRate:    *busDrop,
			BitFlipRate: *busFlip,
		}, *seed+int64(id))
		n.Start()
		n.RunBus(ctx, reader)
		nodes = append(nodes, n)
	}
	defer func() {
		cancel()
		for _, n := range nodes {
			n.Stop()
		}
	}()
	go bus.Run(ctx, clock.Real{})

	var dc *export.DataCenter
	if *exportEach > 0 {
		archive, err := blockchain.NewStore("")
		if err != nil {
			return err
		}
		dcMux := transport.NewMux(net.Endpoint(dcID))
		dc = export.NewDataCenter(export.DataCenterConfig{
			ID:          dcID,
			Replicas:    ids,
			ReadTimeout: 10 * time.Second,
		}, dcKP, reg, archive, dcMux.Channel(0x40, 0x4f))
	}

	log.Printf("running %d replicas, bus cycle %v, drop %.0f%%, bit flips %.1f%%",
		len(nodes), *busCycle, *busDrop*100, *busFlip*100)

	statTicker := time.NewTicker(5 * time.Second)
	defer statTicker.Stop()
	var exportCh <-chan time.Time
	if dc != nil {
		exportTicker := time.NewTicker(*exportEach)
		defer exportTicker.Stop()
		exportCh = exportTicker.C
	}

	for {
		select {
		case <-ctx.Done():
			printSummary(nodes, dc)
			return nil
		case <-statTicker.C:
			n := nodes[0]
			lat := n.Layer().Latency().Stats()
			log.Printf("height=%d base=%d ordered=%d dup-filtered=%d lat(med)=%v",
				n.Store().HeadIndex(), n.Store().Base(),
				n.Layer().Counters().Snapshot().Requests,
				totalDuplicates(nodes),
				lat.Median.Round(time.Microsecond))
		case <-exportCh:
			go runExport(ctx, dc)
		}
	}
}

func runExport(ctx context.Context, dc *export.DataCenter) {
	res, err := dc.Read(ctx)
	if err != nil {
		log.Printf("export: %v", err)
		return
	}
	if res.NewBlocks == 0 {
		return
	}
	dc.SendDelete(res.BlockIndex, res.BlockHash)
	ackCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := dc.WaitDeleteAcks(ackCtx, res.BlockIndex, 3); err != nil {
		log.Printf("export acks: %v", err)
		return
	}
	log.Printf("exported %d blocks through %d; replicas pruned", res.NewBlocks, res.BlockIndex)
}

func totalDuplicates(nodes []*node.Node) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.Layer().Counters().Snapshot().Duplicates
	}
	return total
}

func printSummary(nodes []*node.Node, dc *export.DataCenter) {
	fmt.Println("\n=== summary ===")
	for i, n := range nodes {
		store := n.Store()
		status := "chain OK"
		if err := store.VerifyChain(); err != nil {
			status = "CHAIN BROKEN: " + err.Error()
		}
		fmt.Printf("replica %d: height=%d base=%d ordered=%d %s\n",
			i, store.HeadIndex(), store.Base(),
			n.Layer().Counters().Snapshot().Requests, status)
	}
	if dc != nil {
		status := "archive OK"
		if err := dc.Archive().VerifyChain(); err != nil {
			status = "ARCHIVE BROKEN: " + err.Error()
		}
		fmt.Printf("data center: archived through block %d, %s\n", dc.LastExported(), status)
	}
}
