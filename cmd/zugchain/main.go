// Command zugchain runs one ZugChain replica over TCP: the full node
// pipeline of Fig 3 (bus reader → communication layer → PBFT → blockchain →
// export server) against real network peers.
//
// Because this repository has no proprietary MVB hardware access, each
// replica drives a deterministic simulated bus: with a shared -seed all
// replicas observe the identical signal stream, exactly as nodes on one
// physical bus would (DESIGN.md §1 documents the substitution). Cycle
// misalignment between processes is absorbed by the payload-based
// duplicate filtering, like reordered bus delivery.
//
// Usage (4 replicas on one machine):
//
//	zc-keygen -replicas 4 -datacenters 1 -out keys.json
//	zugchain -keyring keys.json -id 0 -listen :7100 \
//	  -peers 0=localhost:7100,1=localhost:7101,2=localhost:7102,3=localhost:7103 &
//	... (repeat for ids 1..3)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	ossignal "os/signal"
	"syscall"
	"time"

	"zugchain/internal/cli"
	"zugchain/internal/clock"
	"zugchain/internal/crypto"
	"zugchain/internal/keyring"
	"zugchain/internal/mvb"
	"zugchain/internal/node"
	"zugchain/internal/obsv"
	"zugchain/internal/signal"
	"zugchain/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zugchain:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		keyringPath = flag.String("keyring", "keys.json", "cluster keyring (zc-keygen)")
		idFlag      = flag.Uint("id", 0, "this replica's id")
		listen      = flag.String("listen", ":7100", "consensus listen address")
		peersFlag   = flag.String("peers", "", "comma-separated id=host:port for all replicas")
		dataDir     = flag.String("datadir", "", "blockchain directory (empty = memory)")
		walDir      = flag.String("wal-dir", "", "consensus WAL directory (empty = <datadir>/wal)")
		noWAL       = flag.Bool("no-wal", false, "disable the consensus WAL (no crash-restart protocol recovery)")
		blockSize   = flag.Uint64("blocksize", 10, "requests per block/checkpoint")
		busCycle    = flag.Duration("bus-cycle", 64*time.Millisecond, "simulated MVB cycle time")
		payload     = flag.Int("payload", 0, "pad records to this size (0 = raw signals)")
		seed        = flag.Int64("seed", 1, "bus workload seed (identical on all replicas)")
		dropRate    = flag.Float64("bus-drop", 0, "simulated bus frame drop probability")
		bitFlipRate = flag.Float64("bus-bitflip", 0, "simulated bus bit-flip probability")
		statsEvery  = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
		batchSize   = flag.Int("batch-size", 16, "max records coalesced per proposal (1 = no batching)")
		batchDelay  = flag.Duration("batch-delay", 2*time.Millisecond, "max wait before a partial batch is flushed")
		sendQueue   = flag.Int("send-queue", transport.DefaultSendQueue, "per-peer outbound queue capacity (oldest dropped when full)")
		flushEvery  = flag.Duration("flush-interval", 0, "linger before flushing partial outbound write batches (0 = flush when idle)")
		verifyCache = flag.Int("verify-cache", 0, "verified-signature cache entries (0 = default 4096, negative = off)")
		batchVerify = flag.Bool("batch-verify", true, "verify batched proposals' record signatures in one multi-scalar pass")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP address (/metrics /statusz /tracez /eventz /debug/pprof; empty = off)")
		traceSlow   = flag.Duration("trace-slow", 0, "log records whose ingest-to-execute latency meets this threshold (0 = off)")
		traceRing   = flag.Int("trace-ring", 0, "completed lifecycle traces retained for /tracez (0 = default 256)")
	)
	flag.Parse()

	kr, err := keyring.Load(*keyringPath)
	if err != nil {
		return err
	}
	reg, err := kr.Registry()
	if err != nil {
		return err
	}
	id := crypto.NodeID(*idFlag)
	kp, err := kr.KeyPair(id)
	if err != nil {
		return err
	}
	peers, err := cli.ParsePeers(*peersFlag)
	if err != nil {
		return err
	}

	tr, err := transport.NewTCP(id, *listen, peers)
	if err != nil {
		return err
	}
	tr.SendQueue = *sendQueue
	tr.FlushInterval = *flushEvery
	defer tr.Close()

	n, err := node.New(node.Config{
		ID:            id,
		Replicas:      kr.ReplicaIDs(),
		BlockSize:     *blockSize,
		DataDir:       *dataDir,
		WALDir:        *walDir,
		DisableWAL:    *noWAL,
		DataCenters:   kr.DataCenterIDs(),
		MaxBatch:      *batchSize,
		MaxBatchDelay: *batchDelay,

		VerifyCacheSize:    *verifyCache,
		DisableBatchVerify: !*batchVerify,
		TraceSlow:          *traceSlow,
		TraceRing:          *traceRing,
	}, kp, reg, tr, clock.Real{})
	if err != nil {
		return err
	}
	if rec := n.Recovery(); rec.WALRecords > 0 || rec.StoreReport.Loaded > 0 {
		log.Printf("recovered: %d blocks, %d WAL records, view=%d seq=%d, %d dedup entries restored",
			rec.StoreReport.Loaded, rec.WALRecords, rec.RestoredView, rec.RestoredSeq, rec.WindowRestored)
		if rec.StoreReport.Truncated() {
			log.Printf("store recovery dropped a damaged tail: %d blocks beyond a gap, %d undecodable files",
				rec.StoreReport.DiscardedTail, rec.StoreReport.CorruptTail)
		}
		if rec.WALReport.Truncated() {
			log.Printf("WAL recovery dropped a damaged tail: %d bytes, %d whole segments",
				rec.WALReport.TruncatedBytes, rec.WALReport.TruncatedSegments)
		}
		if rec.PendingTransfer > 0 {
			log.Printf("stable checkpoint ahead of local chain: state transfer to block %d scheduled",
				rec.PendingTransfer)
		}
	}
	n.Start()
	defer n.Stop()

	if *metricsAddr != "" {
		msrv, err := obsv.Serve(*metricsAddr, n.Obs())
		if err != nil {
			return err
		}
		defer msrv.Close()
		log.Printf("observability on http://%s (/metrics /statusz /tracez /eventz /debug/pprof)", msrv.Addr())
	}

	// Deterministic simulated bus: same seed => same signal stream on all
	// replicas.
	genCfg := signal.DefaultGeneratorConfig()
	genCfg.Seed = *seed
	genCfg.PayloadSize = *payload
	bus := mvb.NewBus(mvb.Config{CycleTime: *busCycle})
	bus.Attach(mvb.NewSignalDevice(signal.NewGenerator(genCfg)))
	reader := bus.NewReader(mvb.FaultConfig{
		DropRate:    *dropRate,
		BitFlipRate: *bitFlipRate,
	}, *seed+int64(id))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go bus.Run(ctx, clock.Real{})
	n.RunBus(ctx, reader)

	log.Printf("replica %v listening on %s, %d peers, bus cycle %v",
		id, tr.Addr(), len(peers), *busCycle)

	// The shared reporter replaces this command's hand-rolled ticker: one
	// formatter over the registered metric families (0 = off preserved).
	reporter := obsv.NewReporter(*statsEvery, func() string { return obsv.Summary(n.Obs()) }, nil)
	defer reporter.Stop()

	sigCh := make(chan os.Signal, 1)
	ossignal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	<-sigCh
	log.Printf("shutting down")
	if events := n.Obs().Journal.Events(); len(events) > 0 {
		log.Printf("consensus event journal (%d events):", len(events))
		for _, e := range events {
			log.Printf("  %s", e)
		}
	}
	return nil
}
