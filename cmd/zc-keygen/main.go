// Command zc-keygen generates the cluster keyring: Ed25519 key pairs for
// every replica and data center, written as one JSON file consumed by
// cmd/zugchain and cmd/zc-datacenter.
//
// Usage:
//
//	zc-keygen -replicas 4 -datacenters 2 -out keys.json
package main

import (
	"flag"
	"fmt"
	"os"

	"zugchain/internal/keyring"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zc-keygen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		replicas    = flag.Int("replicas", 4, "number of replica key pairs (n >= 3f+1)")
		datacenters = flag.Int("datacenters", 1, "number of data center key pairs")
		out         = flag.String("out", "keys.json", "output keyring path")
	)
	flag.Parse()

	if *replicas < 4 {
		return fmt.Errorf("need at least 4 replicas for f >= 1, got %d", *replicas)
	}
	f, err := keyring.Generate(*replicas, *datacenters)
	if err != nil {
		return err
	}
	if err := f.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d replica and %d data center keys to %s\n",
		*replicas, *datacenters, *out)
	return nil
}
